package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// numericCell matches a cell holding a bare number or a speedup like 2.31x.
var numericCell = regexp.MustCompile(`^-?\d+(\.\d+)?x?$`)

// normalizeCSV keeps the header row and every label cell verbatim but
// replaces numeric cells with "#": timings and counter values vary run to
// run; the column set, row labels and row count must not.
func normalizeCSV(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		cells := strings.Split(lines[i], ",")
		for j, c := range cells {
			if numericCell.MatchString(c) {
				cells[j] = "#"
			}
		}
		lines[i] = strings.Join(cells, ",")
	}
	return strings.Join(lines, "\n") + "\n"
}

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run go test -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenCSV pins the CSV structure (columns incl. the counter-derived
// per-stage ones, row labels, row counts) of the experiments the
// observability work extended.
func TestGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiment grids")
	}
	for _, exp := range []string{"fig4", "fig9", "ingest"} {
		t.Run(exp, func(t *testing.T) {
			dir := t.TempDir()
			var out, errb bytes.Buffer
			err := run([]string{"-exp", exp, "-quick", "-queries", "1", "-csv", "-out", dir}, &out, &errb)
			if err != nil {
				t.Fatalf("benchrunner -exp %s: %v\nstderr:\n%s", exp, err, errb.String())
			}
			data, err := os.ReadFile(filepath.Join(dir, exp+".csv"))
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, exp+"_csv", normalizeCSV(string(data)))
		})
	}
}

// TestRunErrors pins the CLI failure modes: they must return errors, never
// exit the process.
func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "nosuch"},
		{"-badflag"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("benchrunner %v succeeded, want error", args)
		}
	}
}
