// Command benchrunner regenerates the tables and figures of the paper's
// experimental evaluation (§4) and prints them as text tables (optionally
// CSV).
//
// Usage:
//
//	benchrunner                  # every experiment, paper-scale grids
//	benchrunner -quick           # shrunken grids for a fast smoke run
//	benchrunner -exp fig9        # one experiment
//	benchrunner -csv -out results/  # also write one CSV per experiment
//	benchrunner -exp fig4 -metrics-addr :9090   # live /metrics + pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"repro/internal/bench"
)

var experiments = map[string]func(bench.Options) (*bench.Report, error){
	"fig4":      bench.Fig4,
	"fig4par":   bench.Fig4Parallel,
	"fig4shard": bench.Fig4Shard,
	"fig4col":   bench.Fig4Col,
	"serve":     bench.FigServe,
	"table1":    bench.Table1,
	"fig6":      bench.Fig6,
	"fig7":      bench.Fig7,
	"fig8":      bench.Fig8,
	"fig9":      bench.Fig9,
	"fig10":     bench.Fig10,
	"ingest":    bench.Ingest,
	"failover":  bench.Failover,
	"stream":    bench.Stream,
}

// experimentNames returns the registered experiment names, sorted, for the
// -exp flag's help text and its unknown-name error.
func experimentNames() []string {
	names := make([]string, 0, len(experiments))
	for name := range experiments {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
		}
		os.Exit(1)
	}
}

// run is the whole CLI behind a testable seam: output goes to the supplied
// writers and failures are returned, never os.Exit'ed.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment: all, "+strings.Join(experimentNames(), ", "))
		quick   = fs.Bool("quick", false, "shrink every grid for a fast smoke run")
		queries = fs.Int("queries", 5, "identical queries per measurement (best-of)")
		csv     = fs.Bool("csv", false, "also write CSV files")
		out     = fs.String("out", ".", "directory for CSV output")
		timeout = fs.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	)
	oo := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsDone, err := oo.start(stdout, stderr)
	if err != nil {
		return err
	}
	defer obsDone()

	// Experiments run under a context cancelled by Ctrl-C (SIGINT/SIGTERM)
	// or -timeout, so a long sweep aborts between (or inside) executor
	// phases instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := bench.Options{Quick: *quick, Queries: *queries, Ctx: ctx}

	var reports []*bench.Report
	if *exp == "all" {
		reports, err = bench.All(opts)
		if err != nil {
			return err
		}
	} else {
		fn, ok := experiments[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q (available: all, %s)",
				*exp, strings.Join(experimentNames(), ", "))
		}
		rep, err := fn(opts)
		if err != nil {
			return err
		}
		reports = []*bench.Report{rep}
	}

	for _, rep := range reports {
		fmt.Fprintln(stdout, rep.String())
		if *csv {
			path := filepath.Join(*out, rep.ID+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "   (csv written to %s)\n\n", path)
		}
	}
	return nil
}
