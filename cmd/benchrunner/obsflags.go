package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/obs"
)

// obsOpts carries the observability flags shared by the subcommands:
//
//	-metrics-addr  serve the metrics JSON dump (/metrics) and net/http/pprof
//	               (/debug/pprof) on an address for the command's lifetime
//	-slow-query    emit a structured slow_query line to stderr for every
//	               query at or above the threshold
//	-metrics-dump  write one final metrics JSON dump when the command ends
//	               ("-" for stdout)
type obsOpts struct {
	addr string
	slow time.Duration
	dump string
}

func registerObsFlags(fs *flag.FlagSet) *obsOpts {
	o := &obsOpts{}
	fs.StringVar(&o.addr, "metrics-addr", "", "serve /metrics (JSON) and /debug/pprof on this address")
	fs.DurationVar(&o.slow, "slow-query", 0, "log queries slower than this to stderr (0 = off)")
	fs.StringVar(&o.dump, "metrics-dump", "", `write a final metrics JSON dump to this file ("-" = stdout)`)
	return o
}

// start applies the parsed flags and returns a cleanup that stops the
// endpoint, detaches the slow-query log, and writes the final dump.
func (o *obsOpts) start(stdout, stderr io.Writer) (func(), error) {
	if o.slow > 0 {
		obs.SetSlowLog(stderr, o.slow)
	}
	var closeFn func() error
	if o.addr != "" {
		bound, c, err := obs.Serve(o.addr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "metrics: /metrics and /debug/pprof on http://%s\n", bound)
		closeFn = c
	}
	return func() {
		if o.slow > 0 {
			obs.SetSlowLog(nil, 0)
		}
		if closeFn != nil {
			closeFn()
		}
		switch o.dump {
		case "":
		case "-":
			obs.Default.WriteJSON(stdout)
		default:
			if f, err := os.Create(o.dump); err == nil {
				obs.Default.WriteJSON(f)
				f.Close()
			} else {
				fmt.Fprintln(stderr, "metrics-dump:", err)
			}
		}
	}, nil
}
