// Command loadgen offers open-loop query load to a running provd and
// reports client-side latency quantiles and throughput. Open loop means
// requests fire at the configured rate whether or not earlier ones have
// completed, so saturation shows up as shed load and tail latency instead
// of silently slowing the generator.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:7468 -tenant t0 -run testbed_l10-0001 \
//	        -binding '2TO1_FINAL:product[0,0]' -focus LISTGEN_1 \
//	        -qps 200 -duration 30s
//
// The summary line is machine-greppable; -csv appends a CSV row instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.String("url", "http://127.0.0.1:7468", "provd base URL")
	tenant := fs.String("tenant", "t0", "tenant namespace to query")
	runID := fs.String("run", "", "run ID for single-run queries")
	runsArg := fs.String("runs", "", "comma-separated run IDs for multi-run queries")
	binding := fs.String("binding", "", "query binding, e.g. '2TO1_FINAL:product[0,0]'")
	focus := fs.String("focus", "", "comma-separated focus processors")
	method := fs.String("method", "indexproj", "lineage algorithm: indexproj or naive")
	parallel := fs.Int("parallel", 1, "multi-run worker parallelism")
	values := fs.Bool("values", false, "ask the server to render bound values")
	qps := fs.Float64("qps", 100, "offered load in requests/sec")
	duration := fs.Duration("duration", 10*time.Second, "how long to offer load")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	waitReady := fs.Duration("wait-ready", 10*time.Second, "poll the server's /readyz this long before offering load (0 disables)")
	csv := fs.Bool("csv", false, "emit a CSV row (offered,sent,ok,ratelimited,rejected,errors,throughput,p50_ms,p99_ms,p999_ms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *binding == "" {
		return fmt.Errorf("loadgen requires -binding")
	}
	if *runID == "" && *runsArg == "" {
		return fmt.Errorf("loadgen requires -run or -runs")
	}

	params := url.Values{}
	params.Set("tenant", *tenant)
	params.Set("binding", *binding)
	params.Set("method", *method)
	params.Set("values", fmt.Sprint(*values))
	if *focus != "" {
		params.Set("focus", *focus)
	}
	if *runsArg != "" {
		params.Set("runs", *runsArg)
		params.Set("parallel", fmt.Sprint(*parallel))
	} else {
		params.Set("run", *runID)
	}
	full := strings.TrimRight(*base, "/") + "/v1/query?" + params.Encode()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *waitReady > 0 {
		if err := loadgen.WaitReady(ctx, *base, *waitReady); err != nil {
			return err
		}
	}
	res, err := loadgen.Run(ctx, loadgen.Options{
		URL:      full,
		QPS:      *qps,
		Duration: *duration,
		Timeout:  *timeout,
	})
	if err != nil {
		return err
	}
	if *csv {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		fmt.Fprintf(stdout, "%.1f,%d,%d,%d,%d,%d,%.1f,%.3f,%.3f,%.3f\n",
			res.Offered, res.Sent, res.OK, res.RateLimited, res.Rejected, res.Errors, res.Throughput(),
			ms(res.Quantile(0.50)), ms(res.Quantile(0.99)), ms(res.Quantile(0.999)))
		return nil
	}
	fmt.Fprintln(stdout, res)
	return nil
}
