// Command provq runs the bundled workflows, stores their provenance traces
// in a relational store, and answers focused lineage queries with either the
// naïve traversal (NI) or the INDEXPROJ algorithm.
//
// Usage:
//
//	provq run   -store file:prov.db -wf testbed -l 10 -d 25
//	provq run   -store 'shard:provdir?n=4' -wf gk -lists 3 -genes 4
//	provq run   -store file:prov.db -wf pd -query "apoptosis" -max 8
//	provq runs  -store file:prov.db
//	provq query -store file:prov.db -run testbed_l10-0001 \
//	            -binding '2TO1_FINAL:product[3,7]' -focus LISTGEN_1 -method indexproj
//	provq query -store file:prov.db -runs run1,run2,run3 -parallel 4 \
//	            -binding 'workflow:out[]'
//	provq stats -store file:prov.db -run testbed_l10-0001
//	provq graph -store file:prov.db -run testbed_l10-0001 -o prov.dot
//	provq verify -store file:prov.db
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/queryfmt"
	"repro/internal/shard"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "provq:", err)
		}
		os.Exit(1)
	}
}

// run dispatches the subcommands. It is the whole CLI behind a testable
// seam: output goes to the supplied writers and failures are returned, never
// os.Exit'ed. Every subcommand runs under a context cancelled by Ctrl-C
// (SIGINT/SIGTERM), so long multi-run queries stop cleanly instead of being
// killed mid-write.
func run(args []string, stdout, stderr io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if len(args) == 0 {
		usage(stderr)
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "runs":
		return cmdRuns(args[1:], stdout, stderr)
	case "query":
		return cmdQuery(ctx, args[1:], stdout, stderr)
	case "stats":
		return cmdStats(args[1:], stdout, stderr)
	case "graph":
		return cmdGraph(args[1:], stdout, stderr)
	case "verify":
		return cmdVerify(args[1:], stdout, stderr)
	case "ingest":
		return cmdIngest(ctx, args[1:], stdout, stderr)
	case "dlq":
		return cmdDLQ(ctx, args[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return nil
	default:
		usage(stderr)
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `provq <run|runs|query|stats> [flags]

  run    execute a bundled workflow (testbed/gk/pd) and store its trace
  runs   list the stored runs
  query  answer a lineage query: lin(<proc:port[index]>, focus)
  stats  report trace record counts
  graph  export a run's provenance graph in Graphviz DOT
  verify check a stored run's integrity (values, indices, Prop. 1)
  ingest stream an NDJSON event feed into a store (live tail ingest)
  dlq    inspect the ingest dead-letter queue (-retry replays it)

Run "provq <command> -h" for command flags.`)
}

// newFlagSet builds a flag set that reports parse errors instead of exiting
// and prints its own usage to stderr.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// saveSnapshot persists snapshot-backed stores: file: stores snapshot to
// their path, file-backed sharded stores into their own directories
// (durable-backed stores are WAL'd already; Save is a no-op for them).
func saveSnapshot(sys *core.System, dsn string) error {
	switch {
	case strings.HasPrefix(dsn, "file:"):
		return sys.Save(strings.TrimPrefix(dsn, "file:"))
	case shard.IsShardDSN(dsn):
		return sys.Save("")
	}
	return nil
}

// newSystem opens a system over the store DSN and registers the bundled
// workflows and their behaviours, plus any extra definitions loaded from
// JSON files (comma-separated paths). Extra definitions have no registered
// behaviours — they cannot be Run, but lineage queries and verification
// against their stored runs work (both only read the specification).
func newSystem(dsn string, testbedL int, wfJSON string) (*core.System, error) {
	sys, err := core.NewSystem(core.WithStoreDSN(dsn))
	if err != nil {
		return nil, err
	}
	reg := sys.Registry()
	gen.RegisterTestbed(reg)
	gen.RegisterGK(reg, gen.DefaultKEGG())
	gen.RegisterPD(reg, gen.DefaultPubMed())
	for _, w := range gen.BundledWorkflows(testbedL) {
		if err := sys.RegisterWorkflow(w); err != nil {
			sys.Close()
			return nil, err
		}
	}
	for _, path := range strings.Split(wfJSON, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			sys.Close()
			return nil, err
		}
		var w workflow.Workflow
		if err := json.Unmarshal(data, &w); err != nil {
			sys.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := sys.RegisterWorkflow(&w); err != nil {
			sys.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return sys, nil
}

func cmdRun(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("run", stderr)
	dsn := fs.String("store", "file:prov.db", "store DSN (file:<path>, durable:<dir>, memory:<name>, shard:<dir>?n=N&r=R)")
	wf := fs.String("wf", "testbed", "workflow: testbed, gk, pd")
	wfJSON := fs.String("wfjson", "", "comma-separated extra workflow definition JSON files")
	l := fs.Int("l", 10, "testbed chain length")
	d := fs.Int("d", 10, "testbed list size")
	lists := fs.Int("lists", 3, "gk: number of gene sub-lists")
	genes := fs.Int("genes", 4, "gk: genes per sub-list")
	query := fs.String("query", "protein binding", "pd: search query")
	maxAbs := fs.Int("max", 8, "pd: abstract budget")
	save := fs.Bool("save", true, "snapshot file-backed stores after the run")
	inputsJSON := fs.String("inputs", "", `override inputs as JSON, e.g. '{"list_of_geneIDList": [["mmu:1"],["mmu:2"]]}'`)
	oo := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsDone, err := oo.start(stdout, stderr)
	if err != nil {
		return err
	}
	defer obsDone()

	sys, err := newSystem(*dsn, *l, *wfJSON)
	if err != nil {
		return err
	}
	defer sys.Close()

	var name string
	var inputs map[string]value.Value
	switch *wf {
	case "testbed":
		name = fmt.Sprintf("testbed_l%d", *l)
		inputs = gen.TestbedInputs(*d)
	case "gk":
		name = "genes2Kegg"
		inputs = gen.GKInputs(*lists, *genes)
	case "pd":
		name = "protein_discovery"
		inputs = gen.PDInputs(*query, *maxAbs)
	default:
		return fmt.Errorf("unknown workflow %q", *wf)
	}
	if *inputsJSON != "" {
		var raw map[string]any
		if err := json.Unmarshal([]byte(*inputsJSON), &raw); err != nil {
			return fmt.Errorf("bad -inputs: %w", err)
		}
		for port, jv := range raw {
			v, err := value.FromJSON(jv)
			if err != nil {
				return fmt.Errorf("bad -inputs for port %q: %w", port, err)
			}
			inputs[port] = v
		}
	}
	res, err := sys.Run(name, inputs)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "run %s completed\n", res.RunID)
	var ports []string
	for port := range res.Outputs {
		ports = append(ports, port)
	}
	sort.Strings(ports)
	for _, port := range ports {
		fmt.Fprintf(stdout, "  %s = %s\n", port, truncate(value.Encode(res.Outputs[port]), 160))
	}
	total, err := sys.Store().TotalRecords(res.RunID)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "  trace records: %d\n", total)
	if *save {
		return saveSnapshot(sys, *dsn)
	}
	return nil
}

func cmdRuns(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("runs", stderr)
	dsn := fs.String("store", "file:prov.db", "store DSN (file:<path>, durable:<dir>, memory:<name>, shard:<dir>?n=N&r=R)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := newSystem(*dsn, 10, "")
	if err != nil {
		return err
	}
	defer sys.Close()
	runs, err := sys.Store().ListRuns()
	if err != nil {
		return err
	}
	if len(runs) == 0 {
		fmt.Fprintln(stdout, "no runs stored")
		return nil
	}
	for _, r := range runs {
		total, err := sys.Store().TotalRecords(r.RunID)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-30s workflow=%-20s records=%d\n", r.RunID, r.Workflow, total)
	}
	return nil
}

func cmdQuery(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("query", stderr)
	dsn := fs.String("store", "file:prov.db", "store DSN (file:<path>, durable:<dir>, memory:<name>, shard:<dir>?n=N&r=R)")
	timeout := fs.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
	runID := fs.String("run", "", "run ID (see provq runs)")
	runsArg := fs.String("runs", "", "comma-separated run IDs for a multi-run query (shares one compiled plan)")
	parallel := fs.Int("parallel", 1, "worker parallelism for multi-run queries")
	batch := fs.Int("batch", 0, "runs per batched store probe (0 = default)")
	colscan := fs.String("colscan", "auto", "columnar probe stage for multi-run queries: auto, on or off (false = off)")
	partial := fs.Bool("partial", false, "degraded mode: answer multi-run queries from surviving shards when a replicated shard is fully unavailable")
	binding := fs.String("binding", "", "query binding, e.g. '2TO1_FINAL:product[3,7]' or 'workflow:out[]'")
	focusArg := fs.String("focus", "", "comma-separated focus processors")
	method := fs.String("method", "indexproj", "lineage algorithm: indexproj or naive")
	direction := fs.String("direction", "back", "back (lineage) or forward (impact)")
	l := fs.Int("l", 10, "testbed chain length used when the run's workflow is a testbed")
	wfJSON := fs.String("wfjson", "", "comma-separated extra workflow definition JSON files")
	values := fs.Bool("values", true, "print the bound element values")
	oo := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsDone, err := oo.start(stdout, stderr)
	if err != nil {
		return err
	}
	defer obsDone()

	var runIDs []string
	for _, r := range strings.Split(*runsArg, ",") {
		if r = strings.TrimSpace(r); r != "" {
			runIDs = append(runIDs, r)
		}
	}
	if *runID == "" && len(runIDs) == 0 {
		return fmt.Errorf("query requires -run (or -runs) and -binding")
	}
	if *binding == "" {
		return fmt.Errorf("query requires -run (or -runs) and -binding")
	}
	m, err := core.ParseMethod(*method)
	if err != nil {
		return err
	}
	proc, port, idx, err := queryfmt.ParseBinding(*binding)
	if err != nil {
		return err
	}
	focus := queryfmt.ParseFocus(*focusArg)
	// Parsed up front so a bad value fails the command even on single-run
	// queries, where the mode has nothing to select.
	csMode, err := lineage.ParseColScanMode(*colscan)
	if err != nil {
		return err
	}
	q := queryfmt.Query{Direction: *direction, Proc: proc, Port: port, Idx: idx, Focus: focus, Method: m}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sys, err := newSystem(*dsn, *l, *wfJSON)
	if err != nil {
		return err
	}
	defer sys.Close()
	var res *lineage.Result
	switch {
	case len(runIDs) > 0:
		if *direction != "back" && *direction != "backward" {
			return fmt.Errorf("multi-run queries only support -direction back")
		}
		if *partial && m != core.IndexProj {
			return fmt.Errorf("-partial requires -method indexproj")
		}
		opt := lineage.MultiRunOptions{Parallelism: *parallel, BatchSize: *batch, ColScan: csMode, Partial: *partial}
		res, err = sys.LineageMultiRunParallel(ctx, m, runIDs, proc, port, idx, focus, opt)
		if err != nil {
			return err
		}
		q.WriteMultiRunHeader(stdout, len(runIDs), *parallel, res)
		queryfmt.WriteDegraded(stdout, res)
	default:
		switch *direction {
		case "back", "backward":
			res, err = sys.Lineage(m, *runID, proc, port, idx, focus)
		case "forward", "fwd":
			res, err = sys.Affected(*runID, proc, port, idx, focus)
		default:
			return fmt.Errorf("unknown direction %q (want back or forward)", *direction)
		}
		if err != nil {
			return err
		}
		q.WriteHeader(stdout, res)
	}
	queryfmt.WriteEntries(stdout, res, *values)
	return nil
}

func cmdStats(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("stats", stderr)
	dsn := fs.String("store", "file:prov.db", "store DSN (file:<path>, durable:<dir>, memory:<name>, shard:<dir>?n=N&r=R)")
	runID := fs.String("run", "", "run ID ('' for all runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := newSystem(*dsn, 10, "")
	if err != nil {
		return err
	}
	defer sys.Close()
	in, out, xf, err := sys.Store().RecordCounts(*runID)
	if err != nil {
		return err
	}
	scope := *runID
	if scope == "" {
		scope = "(all runs)"
	}
	fmt.Fprintf(stdout, "scope %s\n  xform input rows:  %d\n  xform output rows: %d\n  xfer rows:         %d\n  total:             %d\n",
		scope, in, out, xf, in+out+xf)
	return nil
}

func cmdGraph(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("graph", stderr)
	dsn := fs.String("store", "file:prov.db", "store DSN (file:<path>, durable:<dir>, memory:<name>, shard:<dir>?n=N&r=R)")
	runID := fs.String("run", "", "run ID (see provq runs)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runID == "" {
		return fmt.Errorf("graph requires -run")
	}
	sys, err := newSystem(*dsn, 10, "")
	if err != nil {
		return err
	}
	defer sys.Close()
	tr, err := sys.Store().LoadTrace(*runID)
	if err != nil {
		return err
	}
	g := trace.BuildGraph(tr)
	dot := g.DOT()
	if *out == "" {
		fmt.Fprint(stdout, dot)
		return nil
	}
	if err := os.WriteFile(*out, []byte(dot), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d nodes, %d arcs to %s\n", g.NumNodes(), g.NumArcs(), *out)
	return nil
}

func cmdVerify(args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("verify", stderr)
	dsn := fs.String("store", "file:prov.db", "store DSN (file:<path>, durable:<dir>, memory:<name>, shard:<dir>?n=N&r=R)")
	runID := fs.String("run", "", "run ID ('' verifies every stored run)")
	l := fs.Int("l", 10, "testbed chain length for testbed runs")
	wfJSON := fs.String("wfjson", "", "comma-separated extra workflow definition JSON files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := newSystem(*dsn, *l, *wfJSON)
	if err != nil {
		return err
	}
	defer sys.Close()
	var ids []string
	if *runID != "" {
		ids = []string{*runID}
	} else {
		runs, err := sys.Store().ListRuns()
		if err != nil {
			return err
		}
		for _, r := range runs {
			ids = append(ids, r.RunID)
		}
	}
	bad := 0
	for _, id := range ids {
		runs, err := sys.Store().ListRuns()
		if err != nil {
			return err
		}
		var wfName string
		for _, r := range runs {
			if r.RunID == id {
				wfName = r.Workflow
			}
		}
		wf, _ := sys.Workflow(wfName) // nil => structural checks only
		rep, err := sys.Store().Verify(id, wf)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, rep)
		if !rep.OK() {
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d run(s) failed verification", bad)
	}
	return nil
}

func truncate(s string, n int) string { return queryfmt.Truncate(s, n) }
