package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCompare checks got against testdata/<name>.golden, rewriting the
// file when -update is set.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run go test -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenRunAndQuery pins the exact CLI output of a run and the queries
// against it. The testbed engine is deterministic and run IDs are sequential
// per workflow, so the full stdout is stable.
func TestGoldenRunAndQuery(t *testing.T) {
	dsn := "file:" + filepath.Join(t.TempDir(), "prov.db")

	out := mustCLI(t, "run", "-store", dsn, "-wf", "testbed", "-l", "4", "-d", "3")
	goldenCompare(t, "run_testbed", out)

	out = mustCLI(t, "query", "-store", dsn, "-run", "testbed_l4-0001", "-l", "4",
		"-binding", "2TO1_FINAL:product[0,0]", "-focus", "LISTGEN_1")
	goldenCompare(t, "query_focused", out)

	out = mustCLI(t, "query", "-store", dsn, "-run", "testbed_l4-0001", "-l", "4",
		"-binding", "workflow:product[0,0]", "-method", "naive", "-values=false")
	goldenCompare(t, "query_naive", out)
}

// numberRe matches JSON numeric values after a key, for normalization.
var numberRe = regexp.MustCompile(`(": )-?\d+(\.\d+)?`)

// TestGoldenMetricsDumpShape pins the shape of the -metrics-dump JSON: the
// full set of registered metric names and the per-histogram field layout.
// Values are normalized to 0 — they vary run to run; the names and structure
// must not.
func TestGoldenMetricsDumpShape(t *testing.T) {
	dsn := "file:" + filepath.Join(t.TempDir(), "prov.db")
	mustCLI(t, "run", "-store", dsn, "-wf", "testbed", "-l", "4", "-d", "3")
	out := mustCLI(t, "query", "-store", dsn, "-run", "testbed_l4-0001", "-l", "4",
		"-binding", "2TO1_FINAL:product[0,0]", "-focus", "LISTGEN_1",
		"-metrics-dump", "-")

	// The dump is the trailing JSON object on stdout, after the query answer.
	start := strings.Index(out, "{")
	if start < 0 {
		t.Fatalf("no JSON dump in output:\n%s", out)
	}
	dump := out[start:]
	var parsed map[string]any
	if err := json.Unmarshal([]byte(dump), &parsed); err != nil {
		t.Fatalf("metrics dump is not valid JSON: %v\n%s", err, dump)
	}
	for _, section := range []string{"counters", "histograms"} {
		if _, ok := parsed[section]; !ok {
			t.Errorf("metrics dump missing %q section", section)
		}
	}
	goldenCompare(t, "metrics_dump_shape", numberRe.ReplaceAllString(dump, "${1}0"))
}
