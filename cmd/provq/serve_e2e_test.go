package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"

	"repro/internal/server"
)

// TestServerMatchesCLIByteForByte is the end-to-end differential test for
// provd: the HTTP server and the provq CLI are two front ends over the same
// query engine and the same queryfmt rendering, so for any query the
// server's text response body must equal the CLI's stdout byte for byte.
// Covered paths: INDEXPROJ, the naïve traversal, forward impact, and the
// parallel multi-run executor.
//
// Linking internal/server into this test binary registers the server.*
// metrics, which is why cmd/provq's metrics_dump_shape golden includes them.
func TestServerMatchesCLIByteForByte(t *testing.T) {
	dir := t.TempDir()
	dsn := "file:" + filepath.Join(dir, "t0.db")

	// Seed tenant t0's store through the CLI itself.
	id1 := runID(t, mustCLI(t, "run", "-store", dsn, "-wf", "testbed", "-l", "4", "-d", "3"))
	id2 := runID(t, mustCLI(t, "run", "-store", dsn, "-wf", "testbed", "-l", "4", "-d", "2"))

	srv, err := server.New(server.Config{
		StoreTemplate: "file:" + filepath.Join(dir, "{tenant}.db"),
		TestbedL:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	serverBody := func(params url.Values) string {
		t.Helper()
		params.Set("tenant", "t0")
		resp, err := http.Get(ts.URL + "/v1/query?" + params.Encode())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("server status %d: %s", resp.StatusCode, body)
		}
		return string(body)
	}

	cases := []struct {
		name   string
		cli    []string
		params url.Values
	}{
		{
			name: "indexproj",
			cli: []string{"query", "-store", dsn, "-run", id1, "-l", "4",
				"-binding", "2TO1_FINAL:product[0,0]", "-focus", "LISTGEN_1", "-method", "indexproj"},
			params: url.Values{"run": {id1}, "binding": {"2TO1_FINAL:product[0,0]"},
				"focus": {"LISTGEN_1"}, "method": {"indexproj"}},
		},
		{
			name: "naive",
			cli: []string{"query", "-store", dsn, "-run", id1, "-l", "4",
				"-binding", "2TO1_FINAL:product[0,0]", "-focus", "LISTGEN_1", "-method", "naive"},
			params: url.Values{"run": {id1}, "binding": {"2TO1_FINAL:product[0,0]"},
				"focus": {"LISTGEN_1"}, "method": {"naive"}},
		},
		{
			name: "forward",
			cli: []string{"query", "-store", dsn, "-run", id1, "-l", "4",
				"-direction", "forward", "-binding", "LISTGEN_1:list[0]", "-focus", "2TO1_FINAL"},
			params: url.Values{"run": {id1}, "direction": {"forward"},
				"binding": {"LISTGEN_1:list[0]"}, "focus": {"2TO1_FINAL"}},
		},
		{
			name: "multirun-parallel",
			cli: []string{"query", "-store", dsn, "-runs", id1 + "," + id2, "-l", "4",
				"-parallel", "4", "-batch", "2",
				"-binding", "workflow:product[0,0]", "-focus", "LISTGEN_1"},
			params: url.Values{"runs": {id1 + "," + id2}, "parallel": {"4"}, "batch": {"2"},
				"binding": {"workflow:product[0,0]"}, "focus": {"LISTGEN_1"}},
		},
		{
			name: "novalues",
			cli: []string{"query", "-store", dsn, "-run", id2, "-l", "4",
				"-binding", "2TO1_FINAL:product[0,0]", "-focus", "LISTGEN_1", "-values=false"},
			params: url.Values{"run": {id2}, "binding": {"2TO1_FINAL:product[0,0]"},
				"focus": {"LISTGEN_1"}, "values": {"false"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := mustCLI(t, tc.cli...)
			got := serverBody(tc.params)
			if got != want {
				t.Errorf("server response != CLI output\nCLI:\n%s\nserver:\n%s", want, got)
			}
		})
	}
}
