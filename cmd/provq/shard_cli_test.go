package main

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// TestCLIShardedStore walks the provq surface against a shard: DSN: two runs
// land on a 2-shard store in a temp dir, and runs/query/stats/verify all work
// through the scatter-gather layer. Reopening with the bare directory (no
// ?n=) must pick the topology up from the persisted manifest.
func TestCLIShardedStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prov")
	dsn := "shard:" + dir + "?n=2"

	id1 := runID(t, mustCLI(t, "run", "-store", dsn, "-wf", "testbed", "-l", "4", "-d", "3"))
	id2 := runID(t, mustCLI(t, "run", "-store", dsn, "-wf", "testbed", "-l", "4", "-d", "2"))

	// The manifest pins the topology, so the bare DSN is enough from here on.
	bare := "shard:" + dir
	out := mustCLI(t, "runs", "-store", bare)
	for _, id := range []string{id1, id2} {
		if !strings.Contains(out, id) {
			t.Errorf("runs output missing %s:\n%s", id, out)
		}
	}

	// Single-run query, both methods, through the routed shard path.
	q := []string{"query", "-store", bare, "-run", id1, "-l", "4",
		"-binding", "2TO1_FINAL:product[0,0]", "-focus", "LISTGEN_1"}
	ipOut := mustCLI(t, append(q, "-method", "indexproj")...)
	niOut := mustCLI(t, append(q, "-method", "naive")...)
	trim := func(s string) string { _, rest, _ := strings.Cut(s, "\n"); return rest }
	if trim(ipOut) != trim(niOut) {
		t.Errorf("indexproj and naive disagree on sharded store:\n%s\nvs\n%s", ipOut, niOut)
	}

	// Multi-run parallel query: both runs scatter across the two shards.
	out = mustCLI(t, "query", "-store", bare, "-runs", id1+","+id2, "-l", "4",
		"-parallel", "4", "-batch", "2",
		"-binding", "workflow:product[0,0]", "-focus", "LISTGEN_1")
	if !strings.Contains(out, "over 2 runs (parallelism 4)") {
		t.Errorf("multi-run header missing:\n%s", out)
	}
	for _, id := range []string{id1, id2} {
		if !strings.Contains(out, id) {
			t.Errorf("multi-run answer has no binding from %s:\n%s", id, out)
		}
	}

	out = mustCLI(t, "stats", "-store", bare, "-run", id1)
	if !strings.Contains(out, "xform input rows") {
		t.Errorf("stats output malformed:\n%s", out)
	}

	out = mustCLI(t, "verify", "-store", bare, "-l", "4")
	if c := strings.Count(out, "OK"); c != 2 {
		t.Errorf("verify reported %d OK runs, want 2:\n%s", c, out)
	}

	// A conflicting topology must be rejected, not silently resharded.
	if _, err := runCLI(t, "runs", "-store", "shard:"+dir+"?n=5"); err == nil ||
		!strings.Contains(err.Error(), "manifest") {
		t.Errorf("conflicting ?n=5 reopen: got %v, want manifest error", err)
	}
}

// TestCLIUnknownRunQueryErrors is the silent-empty-answer regression: asking
// a multi-run (or single-run) lineage question about a run the store has
// never seen must fail with store.ErrUnknownRun, not print zero bindings.
func TestCLIUnknownRunQueryErrors(t *testing.T) {
	dsn := "file:" + filepath.Join(t.TempDir(), "prov.db")
	id1 := runID(t, mustCLI(t, "run", "-store", dsn, "-wf", "testbed", "-l", "3", "-d", "2"))

	for _, tc := range [][]string{
		{"query", "-store", dsn, "-runs", id1 + ",no-such-run", "-l", "3",
			"-binding", "workflow:product[0,0]", "-focus", "LISTGEN_1"},
		{"query", "-store", dsn, "-runs", id1 + ",no-such-run", "-l", "3", "-parallel", "4",
			"-binding", "workflow:product[0,0]", "-focus", "LISTGEN_1"},
		{"query", "-store", dsn, "-run", "no-such-run", "-l", "3",
			"-binding", "workflow:product[0,0]", "-focus", "LISTGEN_1"},
	} {
		out, err := runCLI(t, tc...)
		if err == nil {
			t.Errorf("provq %v succeeded with output:\n%s\nwant unknown-run error", tc, out)
			continue
		}
		if !errors.Is(err, store.ErrUnknownRun) {
			t.Errorf("provq %v: error %v does not wrap store.ErrUnknownRun", tc, err)
		}
		if !strings.Contains(err.Error(), "no-such-run") {
			t.Errorf("provq %v: error %q does not name the offending run", tc, err)
		}
	}
}
