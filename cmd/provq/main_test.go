package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/queryfmt"
	"repro/internal/value"
)

// runCLI drives the provq entry point exactly as main does, capturing stdout.
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), err
}

// mustCLI fails the test on error and returns stdout.
func mustCLI(t *testing.T, args ...string) string {
	t.Helper()
	out, err := runCLI(t, args...)
	if err != nil {
		t.Fatalf("provq %s: %v\noutput:\n%s", strings.Join(args, " "), err, out)
	}
	return out
}

// runID extracts the run ID from "run <id> completed".
func runID(t *testing.T, runOut string) string {
	t.Helper()
	line, _, _ := strings.Cut(runOut, "\n")
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "run" || fields[2] != "completed" {
		t.Fatalf("unexpected run output line %q", line)
	}
	return fields[1]
}

// TestCLIEndToEnd walks the whole provq surface against one file-backed
// store in a temp dir: run (twice), runs, single-run and multi-run query,
// forward query, stats, graph and verify.
func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	dsn := "file:" + filepath.Join(dir, "prov.db")

	id1 := runID(t, mustCLI(t, "run", "-store", dsn, "-wf", "testbed", "-l", "4", "-d", "3"))
	id2 := runID(t, mustCLI(t, "run", "-store", dsn, "-wf", "testbed", "-l", "4", "-d", "2"))
	if id1 == id2 {
		t.Fatalf("two runs share the ID %q", id1)
	}

	out := mustCLI(t, "runs", "-store", dsn)
	for _, id := range []string{id1, id2} {
		if !strings.Contains(out, id) {
			t.Errorf("runs output missing %s:\n%s", id, out)
		}
	}

	// Single-run query, both methods: the answers must agree line for line.
	q := []string{"query", "-store", dsn, "-run", id1, "-l", "4",
		"-binding", "2TO1_FINAL:product[0,0]", "-focus", "LISTGEN_1"}
	ipOut := mustCLI(t, append(q, "-method", "indexproj")...)
	niOut := mustCLI(t, append(q, "-method", "naive")...)
	trim := func(s string) string { _, rest, _ := strings.Cut(s, "\n"); return rest }
	if trim(ipOut) != trim(niOut) {
		t.Errorf("indexproj and naive disagree:\n%s\nvs\n%s", ipOut, niOut)
	}
	if !strings.Contains(ipOut, "LISTGEN_1") {
		t.Errorf("focused query returned no LISTGEN_1 binding:\n%s", ipOut)
	}

	// Multi-run parallel query over both runs.
	out = mustCLI(t, "query", "-store", dsn, "-runs", id1+","+id2, "-l", "4",
		"-parallel", "4", "-batch", "2",
		"-binding", "workflow:product[0,0]", "-focus", "LISTGEN_1")
	if !strings.Contains(out, "over 2 runs (parallelism 4)") {
		t.Errorf("multi-run header missing:\n%s", out)
	}
	for _, id := range []string{id1, id2} {
		if !strings.Contains(out, id) {
			t.Errorf("multi-run answer has no binding from %s:\n%s", id, out)
		}
	}

	// Forward (impact) query from the list generator's output.
	out = mustCLI(t, "query", "-store", dsn, "-run", id1, "-l", "4",
		"-direction", "forward", "-binding", "LISTGEN_1:list[0]", "-focus", "2TO1_FINAL")
	if !strings.Contains(out, "forward(") {
		t.Errorf("forward query header missing:\n%s", out)
	}

	out = mustCLI(t, "stats", "-store", dsn, "-run", id1)
	if !strings.Contains(out, "xform input rows") {
		t.Errorf("stats output malformed:\n%s", out)
	}

	dot := filepath.Join(dir, "prov.dot")
	out = mustCLI(t, "graph", "-store", dsn, "-run", id1, "-o", dot)
	if !strings.Contains(out, "wrote") {
		t.Errorf("graph output malformed:\n%s", out)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "digraph") {
		t.Errorf("DOT file does not start with digraph: %.40q", data)
	}
	if out = mustCLI(t, "graph", "-store", dsn, "-run", id1); !strings.HasPrefix(out, "digraph") {
		t.Errorf("graph on stdout does not start with digraph: %.40q", out)
	}

	out = mustCLI(t, "verify", "-store", dsn, "-l", "4")
	if c := strings.Count(out, "OK"); c != 2 {
		t.Errorf("verify reported %d OK runs, want 2:\n%s", c, out)
	}
}

// TestCLIMultiRunMatchesSingleRuns: the multi-run query must return exactly
// the union of the per-run answers (binding lines are prefixed by run IDs, so
// set equality of lines is the right comparison).
func TestCLIMultiRunMatchesSingleRuns(t *testing.T) {
	dir := t.TempDir()
	dsn := "file:" + filepath.Join(dir, "prov.db")
	id1 := runID(t, mustCLI(t, "run", "-store", dsn, "-wf", "gk", "-lists", "2", "-genes", "2"))
	id2 := runID(t, mustCLI(t, "run", "-store", dsn, "-wf", "gk", "-lists", "3", "-genes", "2"))

	bindings := func(out string) map[string]bool {
		set := map[string]bool{}
		for _, line := range strings.Split(out, "\n")[1:] {
			if line = strings.TrimSpace(line); line != "" {
				set[line] = true
			}
		}
		return set
	}
	single := map[string]bool{}
	for _, id := range []string{id1, id2} {
		out := mustCLI(t, "query", "-store", dsn, "-run", id,
			"-binding", "workflow:paths_per_gene[0,0]", "-focus", "get_pathways_by_genes")
		for b := range bindings(out) {
			single[b] = true
		}
	}
	multi := bindings(mustCLI(t, "query", "-store", dsn, "-runs", id1+","+id2, "-parallel", "2",
		"-binding", "workflow:paths_per_gene[0,0]", "-focus", "get_pathways_by_genes"))
	if len(multi) != len(single) {
		t.Fatalf("multi-run returned %d bindings, per-run union has %d", len(multi), len(single))
	}
	for b := range single {
		if !multi[b] {
			t.Errorf("multi-run answer missing %s", b)
		}
	}
}

// TestCLIErrors pins the failure modes that must return errors, not exit or
// panic.
func TestCLIErrors(t *testing.T) {
	dsn := "file:" + filepath.Join(t.TempDir(), "prov.db")
	for _, tc := range [][]string{
		nil,                      // no command
		{"frobnicate"},           // unknown command
		{"query", "-store", dsn}, // missing -run/-runs and -binding
		{"query", "-store", dsn, "-run", "r1", "-binding", "no-colon"},
		{"query", "-store", dsn, "-runs", "r1,r2", "-binding", "workflow:out[]", "-direction", "forward"},
		{"graph", "-store", dsn}, // missing -run
		{"run", "-store", dsn, "-wf", "nosuch"},
		{"query", "-store", dsn, "-run", "r1", "-binding", "workflow:out[]", "-method", "bogus"},
	} {
		if _, err := runCLI(t, tc...); err == nil {
			t.Errorf("provq %v succeeded, want error", tc)
		}
	}
	// help must succeed and not error.
	if _, err := runCLI(t, "help"); err != nil {
		t.Errorf("provq help: %v", err)
	}
}

// TestParseBinding pins the binding syntax.
func TestParseBinding(t *testing.T) {
	proc, port, idx, err := queryfmt.ParseBinding("2TO1_FINAL:product[3,7]")
	if err != nil || proc != "2TO1_FINAL" || port != "product" || idx.String() != value.Ix(3, 7).String() {
		t.Errorf("parseBinding = %q %q %v, %v", proc, port, idx, err)
	}
	proc, port, idx, err = queryfmt.ParseBinding("workflow:out[]")
	if err != nil || proc != "" || port != "out" || len(idx) != 0 {
		t.Errorf("parseBinding(workflow) = %q %q %v, %v", proc, port, idx, err)
	}
	for _, bad := range []string{"noport", "p:", "p:x[bad", "p:x[1,a]"} {
		if _, _, _, err := queryfmt.ParseBinding(bad); err == nil {
			t.Errorf("parseBinding(%q) succeeded", bad)
		}
	}
}
