package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/store"
	"repro/internal/trace"
)

// This file holds the streaming-ingest operator commands:
//
//	provq ingest -store DSN [-events feed.ndjson]   stream events into a store
//	provq dlq    -store DSN [-retry]                inspect / replay the DLQ
//
// ingest reads an NDJSON feed (one trace.Event per line; "-" or no flag
// reads stdin) and applies it through the store's streaming ingest path.
// Invalid events land in the store's persistent dead-letter queue; dlq lists
// them and -retry replays the queue through the same validation.

func cmdIngest(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("ingest", stderr)
	dsn := fs.String("store", "file:prov.db", "store DSN (file:<path>, durable:<dir>, memory:<name>, shard:<dir>?n=N&r=R)")
	wfJSON := fs.String("wfjson", "", "comma-separated extra workflow definition JSON files")
	l := fs.Int("l", 10, "testbed chain length (for spec validation)")
	eventsPath := fs.String("events", "-", `NDJSON event feed ("-" = stdin)`)
	batch := fs.Int("batch", 0, "writer batch rows (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if *eventsPath != "" && *eventsPath != "-" {
		f, err := os.Open(*eventsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	sys, err := newSystem(*dsn, *l, *wfJSON)
	if err != nil {
		return err
	}
	defer sys.Close()

	events := make(chan trace.Event, 64)
	feedErr := make(chan error, 1)
	go func() {
		defer close(events)
		dec := json.NewDecoder(in)
		for {
			var ev trace.Event
			if err := dec.Decode(&ev); err != nil {
				if !errors.Is(err, io.EOF) {
					feedErr <- fmt.Errorf("decoding feed: %w", err)
				}
				return
			}
			select {
			case events <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	stats, err := sys.TailIngest(ctx, events, store.TailOptions{
		Specs:     sys.Workflows(),
		BatchRows: *batch,
	})
	fmt.Fprintf(stdout, "applied=%d dead_lettered=%d runs_started=%d runs_ended=%d\n",
		stats.Applied, stats.DeadLettered, stats.RunsStarted, stats.RunsEnded)
	if err != nil {
		return err
	}
	select {
	case err := <-feedErr:
		return err
	default:
	}
	return saveSnapshot(sys, *dsn)
}

func cmdDLQ(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := newFlagSet("dlq", stderr)
	dsn := fs.String("store", "file:prov.db", "store DSN (file:<path>, durable:<dir>, memory:<name>, shard:<dir>?n=N&r=R)")
	wfJSON := fs.String("wfjson", "", "comma-separated extra workflow definition JSON files")
	l := fs.Int("l", 10, "testbed chain length (for spec validation on retry)")
	retry := fs.Bool("retry", false, "replay the queue through ingest validation")
	asJSON := fs.Bool("json", false, "list entries as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := newSystem(*dsn, *l, *wfJSON)
	if err != nil {
		return err
	}
	defer sys.Close()
	q, ok := sys.Store().(store.DeadLetterQueue)
	if !ok {
		return fmt.Errorf("store %q has no dead-letter queue", *dsn)
	}
	if *retry {
		retried, failed, err := q.RetryDeadLetters(ctx, store.TailOptions{Specs: sys.Workflows()})
		fmt.Fprintf(stdout, "retried=%d failed=%d\n", retried, failed)
		if err != nil {
			return err
		}
		return saveSnapshot(sys, *dsn)
	}
	letters, err := q.ListDeadLetters()
	if err != nil {
		return err
	}
	if *asJSON {
		return json.NewEncoder(stdout).Encode(letters)
	}
	if len(letters) == 0 {
		fmt.Fprintln(stdout, "dead-letter queue empty")
		return nil
	}
	for _, dl := range letters {
		fmt.Fprintf(stdout, "%6d  %-12s %-24s retries=%d  %s\n", dl.Seq, dl.Kind, truncate(dl.RunID, 24), dl.Retries, dl.Reason)
	}
	return nil
}
