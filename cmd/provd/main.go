// Command provd is the long-running multi-tenant provenance query service.
// It serves the lineage query API over HTTP, one isolated store namespace
// per tenant, with per-tenant rate limits, global admission control, a
// shared compiled-plan cache and a graceful drain on SIGTERM (stop
// admitting, finish in-flight queries, checkpoint and close every store).
//
// Usage:
//
//	provd -addr 127.0.0.1:7468 -store 'file:/var/prov/{tenant}.db'
//	provd -addr :7468 -store 'shard:/var/prov/{tenant}?n=4&r=2' -tenant-rate 100
//
// Endpoints:
//
//	GET /v1/query?tenant=T&run=R&binding=proc:port[i,j]&focus=P1,P2
//	GET /v1/query?tenant=T&runs=R1,R2&parallel=4&binding=workflow:out[]
//	GET /v1/query?tenant=T&runs=R1,R2&partial=1&...  degraded answers when a shard is down
//	GET /v1/runs?tenant=T
//	GET /readyz         200 while serving, 503 once draining (readiness)
//	GET /healthz        always 200 (liveness); JSON with per-shard replica and breaker state
//	GET /metrics        engine + server counters and histograms (JSON)
//	GET /debug/pprof/*  standard profiling endpoints
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "provd:", err)
		}
		os.Exit(1)
	}
}

// run is the whole daemon behind a testable seam: it listens, serves until
// the context is cancelled (SIGINT/SIGTERM), drains and exits. Output goes
// to the supplied writers; the bound address is announced on stdout as
// "provd listening on <addr>" so tests and scripts can scrape it.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("provd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7468", "listen address (host:port, port 0 picks one)")
	storeTmpl := fs.String("store", "file:prov-{tenant}.db",
		"store DSN template with a {tenant} placeholder (file:, durable:, memory:, shard:<dir>?n=N&r=R)")
	l := fs.Int("l", 10, "testbed chain length for the bundled testbed workflow")
	wfJSON := fs.String("wfjson", "", "comma-separated extra workflow definition JSON files")
	maxTenants := fs.Int("max-tenants", 8, "open tenant store handles kept before LRU eviction")
	maxInflight := fs.Int("max-inflight", 64, "global bound on concurrently executing queries")
	queueWait := fs.Duration("queue-wait", time.Second, "longest a request waits for an admission slot")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant request rate limit in requests/sec (0 = unlimited)")
	tenantBurst := fs.Int("tenant-burst", 16, "per-tenant rate-limit burst")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "hard cap on client-requested deadlines")
	planCache := fs.Int("plancache", 0, "shared plan cache capacity (0 = default)")
	drainWait := fs.Duration("drain-wait", 30*time.Second, "how long shutdown waits for the listener to close")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv, err := server.New(server.Config{
		StoreTemplate:  *storeTmpl,
		TestbedL:       *l,
		WorkflowJSON:   *wfJSON,
		MaxTenants:     *maxTenants,
		MaxInflight:    *maxInflight,
		QueueWait:      *queueWait,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		PlanCacheSize:  *planCache,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "provd listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Drain()
		return err
	case <-ctx.Done():
	}

	// Drain while the listener is still open: in-flight requests complete,
	// new ones get an explicit 503 instead of a connection refused. Only
	// then close the listener.
	fmt.Fprintln(stdout, "provd draining")
	drainErr := srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	fmt.Fprintln(stdout, "provd stopped")
	return drainErr
}
