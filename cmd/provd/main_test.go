package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the daemon goroutine writes
// its log lines while the test polls for them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// seedTenant runs the bundled testbed workflow into tenant t0's file store,
// as `provq run` would, and returns the run ID.
func seedTenant(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "t0.db")
	sys, err := core.NewSystem(core.WithStoreDSN("file:" + path))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	gen.RegisterTestbed(sys.Registry())
	for _, w := range gen.BundledWorkflows(4) {
		if err := sys.RegisterWorkflow(w); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sys.Run("testbed_l4", gen.TestbedInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(path); err != nil {
		t.Fatal(err)
	}
	return res.RunID
}

// waitAddr polls stdout for the "provd listening on <addr>" announcement.
func waitAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := out.String()
		if i := strings.Index(s, "provd listening on "); i >= 0 {
			rest := s[i+len("provd listening on "):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				return rest[:j]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("provd never announced its address; output so far:\n%s", out.String())
	return ""
}

// TestProvdSIGTERMDrain boots the real daemon entry point, serves queries,
// then delivers a mid-flight SIGTERM: the daemon must announce the drain,
// finish every request it accepted (each concurrent client sees only 200s
// and explicit 503 sheds, never a torn response), and exit cleanly.
func TestProvdSIGTERMDrain(t *testing.T) {
	dir := t.TempDir()
	runID := seedTenant(t, dir)

	var out, errb syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-store", "file:" + filepath.Join(dir, "{tenant}.db"),
			"-l", "4",
		}, &out, &errb)
	}()
	addr := waitAddr(t, &out)

	params := url.Values{}
	params.Set("tenant", "t0")
	params.Set("run", runID)
	params.Set("binding", "2TO1_FINAL:product[0,0]")
	params.Set("focus", "LISTGEN_1")
	queryURL := "http://" + addr + "/v1/query?" + params.Encode()

	// The server answers before the signal.
	resp, err := http.Get(queryURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain query: status %d: %s", resp.StatusCode, body)
	}
	if resp, err = http.Get("http://" + addr + "/metrics"); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}

	// Hammer the daemon from concurrent clients while SIGTERM lands.
	// Accepted requests must complete (200), refused ones must be explicit
	// 503 sheds; once the listener closes, clients see connection errors
	// and stop.
	var wg sync.WaitGroup
	badc := make(chan error, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for {
				resp, err := client.Get(queryURL)
				if err != nil {
					return // listener closed: drain finished
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if !strings.Contains(string(body), "LISTGEN_1") {
						badc <- fmt.Errorf("torn 200 response:\n%s", body)
						return
					}
				case http.StatusServiceUnavailable:
					// explicit shed during drain — acceptable
				default:
					badc <- fmt.Errorf("status %d during drain: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the clients get in flight
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("provd exited with error: %v\nstderr:\n%s", err, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("provd did not drain within 30s; output:\n%s", out.String())
	}
	wg.Wait()
	close(badc)
	for err := range badc {
		t.Error(err)
	}
	for _, want := range []string{"provd draining", "provd stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	// The drained daemon checkpointed and closed its stores; a fresh system
	// over the same file must still answer.
	sys, err := core.NewSystem(core.WithStoreDSN("file:" + filepath.Join(dir, "t0.db")))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Store().TotalRecords(runID); err != nil {
		t.Errorf("store unreadable after drain: %v", err)
	}
}

// TestProvdBadConfig pins startup failures: a template without {tenant}
// and an unparsable listen address must error out, not serve.
func TestProvdBadConfig(t *testing.T) {
	var out, errb syncBuffer
	if err := run([]string{"-store", "file:fixed.db"}, &out, &errb); err == nil {
		t.Error("template without {tenant} accepted")
	}
	if err := run([]string{"-store", "file:{tenant}.db", "-addr", "256.0.0.1:bad"}, &out, &errb); err == nil {
		t.Error("bad listen address accepted")
	}
}
