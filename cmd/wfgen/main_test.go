package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/workflow"
)

// TestGenerateKinds generates every workflow kind to a file and to stdout:
// the JSON must unmarshal back into a valid workflow.
func TestGenerateKinds(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		kind string
		args []string
		name string
	}{
		{"testbed", []string{"-wf", "testbed", "-l", "7"}, "testbed_l7"},
		{"gk", []string{"-wf", "gk"}, "genes2Kegg"},
		{"pd", []string{"-wf", "pd"}, "protein_discovery"},
	} {
		path := filepath.Join(dir, tc.kind+".json")
		var out, errb bytes.Buffer
		if err := run(append(tc.args, "-o", path), &out, &errb); err != nil {
			t.Fatalf("wfgen %v: %v", tc.args, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var w workflow.Workflow
		if err := json.Unmarshal(data, &w); err != nil {
			t.Fatalf("%s: bad JSON: %v", tc.kind, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: generated workflow invalid: %v", tc.kind, err)
		}
		if w.Name != tc.name {
			t.Errorf("%s: workflow name %q, want %q", tc.kind, w.Name, tc.name)
		}

		// Same generation to stdout must produce the same bytes.
		out.Reset()
		if err := run(tc.args, &out, &errb); err != nil {
			t.Fatalf("wfgen %v to stdout: %v", tc.args, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Errorf("%s: stdout output differs from file output", tc.kind)
		}
		if !strings.HasSuffix(out.String(), "\n") {
			t.Errorf("%s: output is not newline-terminated", tc.kind)
		}
	}
}

// TestGenerateErrors pins the failure modes.
func TestGenerateErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-wf", "nosuch"},
		{"-wf", "testbed", "-l", "0"},
		{"-badflag"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("wfgen %v succeeded, want error", args)
		}
	}
}

// TestIngestModes runs the execute-and-ingest path across workflow kinds and
// batch/parallel settings, checking the throughput line and — for a durable
// store — that the ingested runs survive a reopen.
func TestIngestModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"testbed batched parallel", []string{"-wf", "testbed", "-l", "5", "-d", "5", "-runs", "3", "-parallel", "2", "-batch", "64"}},
		{"testbed per-row", []string{"-wf", "testbed", "-l", "5", "-d", "5", "-runs", "2", "-parallel", "1", "-batch", "1"}},
		{"gk", []string{"-wf", "gk", "-runs", "2", "-d", "2"}},
		{"pd", []string{"-wf", "pd", "-runs", "2", "-d", "3"}},
	} {
		var out, errb bytes.Buffer
		if err := run(append(tc.args, "-o", filepath.Join(t.TempDir(), "wf.json")), &out, &errb); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.Contains(out.String(), "rows/sec") {
			t.Errorf("%s: no throughput line in output: %q", tc.name, out.String())
		}
	}
}

// TestIngestDurable ingests into a durable store and reopens it: every run
// and its records must still be there.
func TestIngestDurable(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	args := []string{"-wf", "testbed", "-l", "5", "-d", "5", "-runs", "3",
		"-store", "durable:" + dir, "-o", filepath.Join(t.TempDir(), "wf.json")}
	if err := run(args, &out, &errb); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open("durable:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	runs, err := st.ListRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("reopened store has %d runs, want 3", len(runs))
	}
	total, err := st.TotalRecords("")
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("reopened store has no records")
	}
}

// TestIngestErrors pins the ingest failure modes.
func TestIngestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-wf", "testbed", "-runs", "1", "-d", "0"},
		{"-wf", "testbed", "-runs", "1", "-store", "bogus:zzz"},
	} {
		var out, errb bytes.Buffer
		if err := run(append(args, "-o", filepath.Join(t.TempDir(), "wf.json")), &out, &errb); err == nil {
			t.Errorf("wfgen %v succeeded, want error", args)
		}
	}
}
