package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workflow"
)

// TestGenerateKinds generates every workflow kind to a file and to stdout:
// the JSON must unmarshal back into a valid workflow.
func TestGenerateKinds(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		kind string
		args []string
		name string
	}{
		{"testbed", []string{"-wf", "testbed", "-l", "7"}, "testbed_l7"},
		{"gk", []string{"-wf", "gk"}, "genes2Kegg"},
		{"pd", []string{"-wf", "pd"}, "protein_discovery"},
	} {
		path := filepath.Join(dir, tc.kind+".json")
		var out, errb bytes.Buffer
		if err := run(append(tc.args, "-o", path), &out, &errb); err != nil {
			t.Fatalf("wfgen %v: %v", tc.args, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var w workflow.Workflow
		if err := json.Unmarshal(data, &w); err != nil {
			t.Fatalf("%s: bad JSON: %v", tc.kind, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: generated workflow invalid: %v", tc.kind, err)
		}
		if w.Name != tc.name {
			t.Errorf("%s: workflow name %q, want %q", tc.kind, w.Name, tc.name)
		}

		// Same generation to stdout must produce the same bytes.
		out.Reset()
		if err := run(tc.args, &out, &errb); err != nil {
			t.Fatalf("wfgen %v to stdout: %v", tc.args, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Errorf("%s: stdout output differs from file output", tc.kind)
		}
		if !strings.HasSuffix(out.String(), "\n") {
			t.Errorf("%s: output is not newline-terminated", tc.kind)
		}
	}
}

// TestGenerateErrors pins the failure modes.
func TestGenerateErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-wf", "nosuch"},
		{"-wf", "testbed", "-l", "0"},
		{"-badflag"},
	} {
		var out, errb bytes.Buffer
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("wfgen %v succeeded, want error", args)
		}
	}
}
