// Command wfgen generates workflow specifications as JSON: the synthetic
// testbed family of Fig. 5 (parameterized by chain length l) and the GK/PD
// reconstructions.
//
// Usage:
//
//	wfgen -wf testbed -l 75 -o testbed75.json
//	wfgen -wf gk
//	wfgen -wf pd -o pd.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "wfgen:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("wfgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("wf", "testbed", "workflow to generate: testbed, gk, pd")
	l := fs.Int("l", 10, "testbed chain length")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var w *workflow.Workflow
	switch *kind {
	case "testbed":
		if *l < 1 {
			return fmt.Errorf("testbed chain length must be positive, got %d", *l)
		}
		w = gen.Testbed(*l)
	case "gk":
		w = gen.GenesToKegg()
	case "pd":
		w = gen.ProteinDiscovery()
	default:
		return fmt.Errorf("unknown workflow kind %q (want testbed, gk or pd)", *kind)
	}
	if err := w.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(w)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
