// Command wfgen generates workflow specifications as JSON: the synthetic
// testbed family of Fig. 5 (parameterized by chain length l) and the GK/PD
// reconstructions. With -runs it also executes the generated workflow and
// bulk-ingests the traces into a provenance store, reporting throughput.
//
// Usage:
//
//	wfgen -wf testbed -l 75 -o testbed75.json
//	wfgen -wf gk
//	wfgen -wf pd -o pd.json
//	wfgen -wf testbed -l 75 -d 50 -runs 8 -parallel 4 -batch 512
//	wfgen -wf testbed -runs 4 -store durable:/tmp/prov
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != flag.ErrHelp {
			fmt.Fprintln(os.Stderr, "wfgen:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	// Ingest runs under a context cancelled by Ctrl-C (SIGINT/SIGTERM) or by
	// -timeout, so a long bulk load stops cleanly: in-flight batch flushes
	// finish or roll back, and the store stays reopenable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fs := flag.NewFlagSet("wfgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("wf", "testbed", "workflow to generate: testbed, gk, pd")
	l := fs.Int("l", 10, "testbed chain length")
	out := fs.String("o", "", "output file (default stdout)")
	runs := fs.Int("runs", 0, "execute the workflow this many times and ingest the traces")
	d := fs.Int("d", 10, "input size per run (testbed list size, GK gene lists, PD abstracts)")
	dsn := fs.String("store", "", "ingest target DSN (memory:<name>, file:<path>, durable:<dir>, shard:<dir>?n=N&r=R; default private memory)")
	parallel := fs.Int("parallel", store.DefaultIngestParallelism, "runs ingested concurrently")
	batch := fs.Int("batch", store.DefaultBatchRows, "buffered-writer flush threshold in rows (1 = per-row)")
	timeout := fs.Duration("timeout", 0, "abort ingest after this long (0 = no limit)")
	oo := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	obsDone, err := oo.start(stdout, stderr)
	if err != nil {
		return err
	}
	defer obsDone()
	var w *workflow.Workflow
	switch *kind {
	case "testbed":
		if *l < 1 {
			return fmt.Errorf("testbed chain length must be positive, got %d", *l)
		}
		w = gen.Testbed(*l)
	case "gk":
		w = gen.GenesToKegg()
	case "pd":
		w = gen.ProteinDiscovery()
	default:
		return fmt.Errorf("unknown workflow kind %q (want testbed, gk or pd)", *kind)
	}
	if err := w.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(w)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}

	if *runs > 0 {
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		return ingest(ctx, stdout, w, *kind, *runs, *d, *dsn, *parallel, *batch)
	}
	return nil
}

// ingest executes the workflow `runs` times and loads the traces through the
// store's concurrent bulk-ingest executor, streaming each run's events
// straight into a buffered writer.
func ingest(ctx context.Context, stdout io.Writer, w *workflow.Workflow, kind string, runs, d int, dsn string, parallel, batch int) error {
	if d < 1 {
		return fmt.Errorf("input size must be positive, got %d", d)
	}
	inputs := func(r int) map[string]value.Value {
		switch kind {
		case "gk":
			return gen.GKInputs(d, 4)
		case "pd":
			return gen.PDInputs(fmt.Sprintf("query sweep %d", r), d)
		default:
			return gen.TestbedInputs(d)
		}
	}
	eng := engine.New(gen.Registry())

	var st store.Backend
	var err error
	switch {
	case dsn == "":
		st, err = store.OpenMemory()
	case shard.IsShardDSN(dsn):
		st, err = shard.Open(dsn)
	default:
		st, err = store.Open(dsn)
	}
	if err != nil {
		return err
	}
	defer st.Close()

	tasks := make([]store.IngestTask, runs)
	for r := 0; r < runs; r++ {
		r := r
		tasks[r] = store.IngestTask{
			RunID:    fmt.Sprintf("%s-run%03d", w.Name, r),
			Workflow: w.Name,
			Emit: func(col trace.Collector) error {
				_, err := eng.Run(w, inputs(r), col)
				return err
			},
		}
	}
	start := time.Now()
	if err := st.Ingest(ctx, tasks, store.IngestOptions{Parallelism: parallel, BatchRows: batch}); err != nil {
		return err
	}
	elapsed := time.Since(start)
	rows, err := st.TotalRecords("")
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ingested %d runs (%d records) in %v: %.0f rows/sec (parallel=%d, batch=%d)\n",
		runs, rows, elapsed.Round(time.Millisecond), float64(rows)/elapsed.Seconds(), parallel, batch)
	return nil
}
