package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/reldb"
	"repro/internal/resilience"
	"repro/internal/sqlike"
	"repro/internal/store"
	"repro/internal/value"
)

// This file is the chaos harness for the replicated shard layer: randomized
// replica kill/stall schedules applied while concurrent multi-run queries
// execute. The availability contract under test is the tentpole's: as long
// as at least one replica of every shard survives, every query succeeds and
// its answer is byte-identical to the unreplicated baseline; when a whole
// shard is down, -partial queries return the surviving shards' rows with the
// Degraded marker while non-partial queries fail with a joined,
// shard-attributed error matching resilience.ErrUnavailable.

// chaosSchedules returns the chaos schedule count, overridable via
// CHAOS_SCHEDULES for the nightly long sweep.
func chaosSchedules(def int) int {
	if s := os.Getenv("CHAOS_SCHEDULES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// chaosSeed returns the schedule seed — random per process so the sweep
// covers fresh schedules, logged by the caller and pinnable via CHAOS_SEED
// for replay.
func chaosSeed() int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return n
		}
	}
	return time.Now().UnixNano()
}

// shardWaitNoLeaks polls until the goroutine count returns to the baseline;
// abandoned replica attempts must all drain once stalls are released.
func shardWaitNoLeaks(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosPolicy is tuned for the harness: fail over off a stalled replica
// quickly, but leave the operation bound generous enough that a query under
// -race on a loaded CI box never trips it while a healthy replica remains.
func chaosPolicy() resilience.Policy {
	return resilience.Policy{
		AttemptTimeout: 25 * time.Millisecond,
		OpTimeout:      30 * time.Second,
		Retries:        2,
		Backoff:        time.Millisecond,
	}
}

// TestChaosReplicaFailover kills and stalls single replicas — at most one
// victim at any moment, so every shard always keeps a live replica — while
// concurrent multi-run queries execute. Every query must succeed and match
// the unreplicated single-store baseline exactly.
func TestChaosReplicaFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized chaos test")
	}
	const (
		l, d, nRuns = 4, 3, 10
		shards, r   = 4, 2
	)
	traces := testbedTraces(t, l, d, nRuns)
	wf := gen.Testbed(l)
	runIDs := make([]string, len(traces))
	for i, tr := range traces {
		runIDs[i] = tr.RunID
	}
	focus := lineage.NewFocus(gen.ListGenName)
	idx := value.Ix(1, 1)

	single, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.IngestTraces(context.Background(), traces, store.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	ipSingle, err := lineage.NewIndexProj(single, wf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ipSingle.LineageMultiRun(runIDs, gen.FinalName, "product", idx, focus)
	if err != nil {
		t.Fatal(err)
	}

	seed := chaosSeed()
	t.Logf("chaos seed %d (replay with CHAOS_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))
	failoversBefore := obsFailover.Load()

	for sched := 0; sched < chaosSchedules(4); sched++ {
		baseline := runtime.NumGoroutine()
		sh, err := OpenMemoryReplicated(shards, r)
		if err != nil {
			t.Fatal(err)
		}
		sh.SetPolicy(chaosPolicy())
		sh.SetBreakerConfig(resilience.BreakerConfig{FailureThreshold: 2, OpenFor: 50 * time.Millisecond})
		if err := sh.IngestTraces(context.Background(), traces, store.IngestOptions{Parallelism: 2}); err != nil {
			t.Fatal(err)
		}
		ip, err := lineage.NewIndexProj(sh, wf)
		if err != nil {
			t.Fatal(err)
		}

		// One chaos goroutine, one victim at a time: pick a random replica,
		// kill it or stall it for a few milliseconds, undo, repeat. Because
		// faults never overlap, every shard keeps >= 1 live replica and the
		// availability contract demands zero failed queries.
		type fault struct {
			shard, rep  int
			stall       bool
			holdMs      int
			settleDelay int
		}
		var faults []fault
		for i := 0; i < 12; i++ {
			faults = append(faults, fault{
				shard:       rng.Intn(shards),
				rep:         rng.Intn(r),
				stall:       rng.Intn(2) == 0,
				holdMs:      1 + rng.Intn(15),
				settleDelay: rng.Intn(3),
			})
		}
		stop := make(chan struct{})
		var chaosWG sync.WaitGroup
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			for _, f := range faults {
				select {
				case <-stop:
					return
				default:
				}
				if f.stall {
					release := sh.StallReplica(f.shard, f.rep)
					time.Sleep(time.Duration(f.holdMs) * time.Millisecond)
					release()
				} else {
					sh.KillReplica(f.shard, f.rep)
					time.Sleep(time.Duration(f.holdMs) * time.Millisecond)
					sh.ReviveReplica(f.shard, f.rep)
				}
				time.Sleep(time.Duration(f.settleDelay) * time.Millisecond)
			}
		}()

		const queriers = 4
		errCh := make(chan error, queriers)
		var qWG sync.WaitGroup
		for q := 0; q < queriers; q++ {
			qWG.Add(1)
			opt := lineage.MultiRunOptions{
				Parallelism: 1 + rng.Intn(3),
				BatchSize:   rng.Intn(3),
				ColScan:     []lineage.ColScanMode{lineage.ColScanAuto, lineage.ColScanOn, lineage.ColScanOff}[rng.Intn(3)],
			}
			go func(q int, opt lineage.MultiRunOptions) {
				defer qWG.Done()
				for i := 0; i < 5; i++ {
					got, err := ip.LineageMultiRunParallel(context.Background(), runIDs,
						gen.FinalName, "product", idx, focus, opt)
					if err != nil {
						errCh <- fmt.Errorf("schedule %d querier %d iter %d (%+v): %v", sched, q, i, opt, err)
						return
					}
					if !got.Equal(want) {
						errCh <- fmt.Errorf("schedule %d querier %d iter %d (%+v): answer diverged from baseline", sched, q, i, opt)
						return
					}
					if got.Degraded() {
						errCh <- fmt.Errorf("schedule %d querier %d iter %d: degraded answer with a live replica per shard", sched, q, i)
						return
					}
				}
			}(q, opt)
		}
		qWG.Wait()
		close(stop)
		chaosWG.Wait()
		close(errCh)
		for err := range errCh {
			t.Error(err)
		}
		if t.Failed() {
			sh.Close()
			t.FailNow()
		}
		if err := sh.Close(); err != nil {
			t.Fatal(err)
		}
		shardWaitNoLeaks(t, baseline)
	}
	if got := obsFailover.Load(); got == failoversBefore {
		t.Errorf("chaos sweep recorded no shard.failover events (still %d)", got)
	}
}

// TestChaosWholeShardDown pins the degraded-mode contract: with every
// replica of one shard dead, a Partial multi-run query answers from the
// surviving shards and marks exactly the dead shard's runs Degraded, while
// the same query without Partial fails with a joined, shard-attributed error
// matching resilience.ErrUnavailable.
func TestChaosWholeShardDown(t *testing.T) {
	const (
		l, d, nRuns = 4, 3, 12
		shards, r   = 4, 2
	)
	traces := testbedTraces(t, l, d, nRuns)
	wf := gen.Testbed(l)
	runIDs := make([]string, len(traces))
	for i, tr := range traces {
		runIDs[i] = tr.RunID
	}
	focus := lineage.NewFocus(gen.ListGenName)
	idx := value.Ix(1, 1)

	sh, err := OpenMemoryReplicated(shards, r)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	sh.SetPolicy(chaosPolicy())
	sh.SetBreakerConfig(resilience.BreakerConfig{FailureThreshold: 2, OpenFor: 50 * time.Millisecond})
	if err := sh.IngestTraces(context.Background(), traces, store.IngestOptions{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}

	// Pick a victim shard that owns some but not all runs, so the partial
	// answer has both degraded and surviving runs.
	byShard := make(map[int][]string)
	for _, run := range runIDs {
		i := sh.ShardOf(run)
		byShard[i] = append(byShard[i], run)
	}
	dead := -1
	for i, runs := range byShard {
		if len(runs) > 0 && len(runs) < len(runIDs) {
			dead = i
			break
		}
	}
	if dead < 0 {
		t.Fatalf("no shard owns a strict subset of %d runs: %v", len(runIDs), byShard)
	}
	var survivors []string
	for _, run := range runIDs {
		if sh.ShardOf(run) != dead {
			survivors = append(survivors, run)
		}
	}
	for j := 0; j < r; j++ {
		sh.KillReplica(dead, j)
	}

	ip, err := lineage.NewIndexProj(sh, wf)
	if err != nil {
		t.Fatal(err)
	}

	// Non-partial: the whole query fails, the error names the dead shard and
	// matches the resilience sentinel through the join.
	_, err = ip.LineageMultiRunParallel(context.Background(), runIDs,
		gen.FinalName, "product", idx, focus, lineage.MultiRunOptions{Parallelism: 2})
	if err == nil {
		t.Fatal("multi-run query over a dead shard succeeded without Partial")
	}
	if !errors.Is(err, resilience.ErrUnavailable) {
		t.Fatalf("whole-shard-down error = %v, want errors.Is(resilience.ErrUnavailable)", err)
	}
	if want := fmt.Sprintf("shard %d", dead); !strings.Contains(err.Error(), want) {
		t.Fatalf("whole-shard-down error %q does not attribute %q", err, want)
	}

	// Partial: the surviving shards' answer, byte-identical to querying the
	// survivors alone, with exactly the dead shard's runs marked Degraded.
	res, err := ip.LineageMultiRunParallel(context.Background(), runIDs,
		gen.FinalName, "product", idx, focus, lineage.MultiRunOptions{Parallelism: 2, Partial: true})
	if err != nil {
		t.Fatalf("Partial query over a dead shard: %v", err)
	}
	if !res.Degraded() {
		t.Fatal("Partial answer over a dead shard is not marked Degraded")
	}
	wantDegraded := append([]string(nil), byShard[dead]...)
	sort.Strings(wantDegraded)
	if got := res.DegradedRuns(); !equalStrings(got, wantDegraded) {
		t.Fatalf("DegradedRuns() = %v, want %v", got, wantDegraded)
	}
	want, err := ip.LineageMultiRunParallel(context.Background(), survivors,
		gen.FinalName, "product", idx, focus, lineage.MultiRunOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatal("Partial answer diverged from querying the surviving runs directly")
	}

	// Revival restores full answers: no sticky degraded state.
	for j := 0; j < r; j++ {
		sh.ReviveReplica(dead, j)
	}
	time.Sleep(60 * time.Millisecond) // let the breakers' open windows lapse
	full, err := ip.LineageMultiRunParallel(context.Background(), runIDs,
		gen.FinalName, "product", idx, focus, lineage.MultiRunOptions{Parallelism: 2})
	if err != nil {
		t.Fatalf("query after revival: %v", err)
	}
	if full.Degraded() {
		t.Fatal("answer after revival still marked Degraded")
	}
}

// TestScatterStallRespectsDeadline is the scatter-cancellation coverage: a
// deterministic faultfs stall pinning one shard's disk mid-query must not
// block ExecuteMultiRun past its context deadline and must not leak
// goroutines once the stall is released (the abandoned attempt drains into
// its buffered channel). Column segments load lazily from disk at query
// time, which is what puts the stalled VFS on the query path.
func TestScatterStallRespectsDeadline(t *testing.T) {
	const vfsName = "shard-chaos-stall"
	dir := t.TempDir()
	dsn := "shard:" + dir + "?n=2&backend=durable"
	sh, err := Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	traces := testbedTraces(t, 3, 2, 8)
	runIDs := make([]string, len(traces))
	for i, tr := range traces {
		runIDs[i] = tr.RunID
	}
	if err := sh.IngestTraces(context.Background(), traces, store.IngestOptions{Parallelism: 2}); err != nil {
		sh.Close()
		t.Fatal(err)
	}
	if err := sh.Checkpoint(); err != nil { // persist column segments
		sh.Close()
		t.Fatal(err)
	}
	wf := gen.Testbed(3)
	focus := lineage.NewFocus(gen.ListGenName)
	ipWarm, err := lineage.NewIndexProj(sh, wf)
	if err != nil {
		sh.Close()
		t.Fatal(err)
	}
	want, err := ipWarm.LineageMultiRun(runIDs, gen.FinalName, "product", value.Ix(1, 1), focus)
	if err != nil {
		sh.Close()
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with shard 1's store behind a fault-injecting VFS. The segment
	// cache starts cold, so the first colscan probe reads shard 1's segments
	// through the (about to be stalled) filesystem.
	ffs := faultfs.New(reldb.OSFS{})
	sqlike.RegisterVFS(vfsName, ffs)
	defer sqlike.RegisterVFS(vfsName, nil)
	man, existing, err := loadManifest(dir)
	if err != nil || !existing {
		t.Fatalf("manifest after close: %v (existing=%v)", err, existing)
	}
	dsns := [][]string{
		{"durable:" + filepath.Join(dir, shardDirName(0))},
		{"durablefs:" + vfsName + ":" + filepath.Join(dir, shardDirName(1))},
	}
	sh2, err := open(dsn, dir, man, dsns)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	ip, err := lineage.NewIndexProj(sh2, wf)
	if err != nil {
		sh2.Close()
		t.Fatal(err)
	}

	ffs.StallAt(1) // every subsequent disk operation blocks until Release
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = ip.LineageMultiRunParallel(ctx, runIDs, gen.FinalName, "product", value.Ix(1, 1), focus,
		lineage.MultiRunOptions{Parallelism: 2, ColScan: lineage.ColScanOn})
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("query against a stalled shard = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("query took %s to honor a 250ms deadline", elapsed)
	}

	// Releasing the stall drains the abandoned attempt; the store stays
	// usable and answers exactly as before.
	ffs.Release()
	shardWaitNoLeaks(t, baseline)
	got, err := ip.LineageMultiRunParallel(context.Background(), runIDs, gen.FinalName, "product",
		value.Ix(1, 1), focus, lineage.MultiRunOptions{Parallelism: 2, ColScan: lineage.ColScanOn})
	if err != nil {
		sh2.Close()
		t.Fatalf("query after release: %v", err)
	}
	if !got.Equal(want) {
		sh2.Close()
		t.Fatal("answer after release diverged from the pre-stall baseline")
	}
	if err := sh2.Close(); err != nil {
		t.Fatal(err)
	}
	shardWaitNoLeaks(t, baseline)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
