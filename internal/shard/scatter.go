package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// This file implements the sharded query surface. Single-run operations
// route to the run's owning shard; the batched multi-run probes scatter:
// the batch is grouped by owning shard, one batched probe per shard runs
// concurrently (each shard has its own engine and its own lock, so the
// probes proceed truly in parallel), and the per-shard answers merge into
// one map keyed exactly like the single-store answer. The lineage executors
// are oblivious — they talk to a store.LineageQuerier either way — so
// ExecuteMultiRun's worker pool gets cross-shard parallelism inside every
// single batched probe, on top of its own probe-level parallelism.
//
// Every read goes through the shard's replica set (replica.go): primary-
// preferred with failover, scatter probes hedged. Per-shard failures are
// annotated with their shard index and aggregated with errors.Join, so a
// multi-shard failure reports every failing shard — and the sentinel chains
// (reldb.ErrCorrupt, store.ErrUnknownRun, resilience.ErrUnavailable) stay
// matchable through the join.

// InputBindings answers the trace probe Q(P, X, p) for one run.
func (s *ShardedStore) InputBindings(runID, proc, port string, idx value.Index) ([]store.Binding, error) {
	return s.InputBindingsCtx(context.Background(), runID, proc, port, idx)
}

// InputBindingsCtx implements store.ContextLineageQuerier: like
// InputBindings but bounded by ctx — a stalled replica cannot hold the
// caller past its deadline.
func (s *ShardedStore) InputBindingsCtx(ctx context.Context, runID, proc, port string, idx value.Index) ([]store.Binding, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	bs, err := replicaRead(ctx, s.replicaSets[i], false, func(st *store.Store) ([]store.Binding, error) {
		return st.InputBindings(runID, proc, port, idx)
	})
	return bs, shardErr(i, err)
}

// InputBindingsBatch answers the probe for a set of runs by scatter-gather:
// the runs are grouped by owning shard and each shard answers its group with
// one batched probe, concurrently. The merged result has an entry for every
// requested run, exactly like the single-store batch.
func (s *ShardedStore) InputBindingsBatch(runIDs []string, proc, port string, idx value.Index) (map[string][]store.Binding, error) {
	return s.InputBindingsBatchCtx(context.Background(), runIDs, proc, port, idx)
}

// InputBindingsBatchCtx is the ctx-bounded batched probe the multi-run
// executor calls; the per-shard probes are hedged.
func (s *ShardedStore) InputBindingsBatchCtx(ctx context.Context, runIDs []string, proc, port string, idx value.Index) (map[string][]store.Binding, error) {
	out := make(map[string][]store.Binding, len(runIDs))
	if len(runIDs) == 0 {
		return out, nil
	}
	groups := s.groupRuns(runIDs)
	parts := make([]map[string][]store.Binding, len(s.replicaSets))
	err := eachShard(s, ctx, groups, func(ctx context.Context, i int, runs []string) error {
		m, err := replicaRead(ctx, s.replicaSets[i], true, func(st *store.Store) (map[string][]store.Binding, error) {
			return st.InputBindingsBatch(runs, proc, port, idx)
		})
		if err != nil {
			return err
		}
		parts[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, m := range parts {
		for r, bs := range m {
			out[r] = bs
		}
	}
	return out, nil
}

// Value materializes one stored port value from the run's owning shard.
func (s *ShardedStore) Value(runID string, valID int64) (value.Value, error) {
	return s.ValueCtx(context.Background(), runID, valID)
}

// ValueCtx implements store.ContextLineageQuerier.
func (s *ShardedStore) ValueCtx(ctx context.Context, runID string, valID int64) (value.Value, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	v, err := replicaRead(ctx, s.replicaSets[i], false, func(st *store.Store) (value.Value, error) {
		return st.Value(runID, valID)
	})
	return v, shardErr(i, err)
}

// ValuesBatch materializes a set of values by scatter-gather: refs group by
// their run's owning shard, each shard answers its group with one batched
// lookup, and the per-shard maps merge.
func (s *ShardedStore) ValuesBatch(refs []store.ValueRef) (map[store.ValueRef]value.Value, error) {
	return s.ValuesBatchCtx(context.Background(), refs)
}

// ValuesBatchCtx is the ctx-bounded batched value fetch; hedged like the
// batched probes.
func (s *ShardedStore) ValuesBatchCtx(ctx context.Context, refs []store.ValueRef) (map[store.ValueRef]value.Value, error) {
	out := make(map[store.ValueRef]value.Value, len(refs))
	if len(refs) == 0 {
		return out, nil
	}
	groups := make(map[int][]store.ValueRef)
	for _, ref := range refs {
		i := s.ring.owner(ref.RunID)
		groups[i] = append(groups[i], ref)
	}
	parts := make([]map[store.ValueRef]value.Value, len(s.replicaSets))
	err := eachShard(s, ctx, groups, func(ctx context.Context, i int, g []store.ValueRef) error {
		m, err := replicaRead(ctx, s.replicaSets[i], true, func(st *store.Store) (map[store.ValueRef]value.Value, error) {
			return st.ValuesBatch(g)
		})
		if err != nil {
			return err
		}
		parts[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, m := range parts {
		for ref, v := range m {
			out[ref] = v
		}
	}
	return out, nil
}

// HasRun reports whether the owning shard holds the run.
func (s *ShardedStore) HasRun(runID string) (bool, error) {
	return s.HasRunCtx(context.Background(), runID)
}

// HasRunCtx implements store.ContextTraceQuerier.
func (s *ShardedStore) HasRunCtx(ctx context.Context, runID string) (bool, error) {
	i := s.ring.owner(runID)
	ok, err := replicaRead(ctx, s.replicaSets[i], false, func(st *store.Store) (bool, error) {
		return st.HasRun(runID)
	})
	return ok, shardErr(i, err)
}

// XformsByOutput routes the extensional probe to the owning shard.
func (s *ShardedStore) XformsByOutput(runID, proc, port string, idx value.Index) ([]store.Xform, error) {
	return s.XformsByOutputCtx(context.Background(), runID, proc, port, idx)
}

// XformsByOutputCtx implements store.ContextTraceQuerier: the probe is
// bounded by ctx, so a stalled replica cannot hold a naive-method query past
// its request deadline.
func (s *ShardedStore) XformsByOutputCtx(ctx context.Context, runID, proc, port string, idx value.Index) ([]store.Xform, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	xs, err := replicaRead(ctx, s.replicaSets[i], false, func(st *store.Store) ([]store.Xform, error) {
		return st.XformsByOutput(runID, proc, port, idx)
	})
	return xs, shardErr(i, err)
}

// XformsByInput routes the forward extensional probe to the owning shard.
func (s *ShardedStore) XformsByInput(runID, proc, port string, idx value.Index) ([]store.ForwardXform, error) {
	return s.XformsByInputCtx(context.Background(), runID, proc, port, idx)
}

// XformsByInputCtx implements store.ContextTraceQuerier.
func (s *ShardedStore) XformsByInputCtx(ctx context.Context, runID, proc, port string, idx value.Index) ([]store.ForwardXform, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	xs, err := replicaRead(ctx, s.replicaSets[i], false, func(st *store.Store) ([]store.ForwardXform, error) {
		return st.XformsByInput(runID, proc, port, idx)
	})
	return xs, shardErr(i, err)
}

// XfersTo routes to the owning shard.
func (s *ShardedStore) XfersTo(runID, proc, port string) ([]store.Xfer, error) {
	return s.XfersToCtx(context.Background(), runID, proc, port)
}

// XfersToCtx implements store.ContextTraceQuerier.
func (s *ShardedStore) XfersToCtx(ctx context.Context, runID, proc, port string) ([]store.Xfer, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	xs, err := replicaRead(ctx, s.replicaSets[i], false, func(st *store.Store) ([]store.Xfer, error) {
		return st.XfersTo(runID, proc, port)
	})
	return xs, shardErr(i, err)
}

// XfersFrom routes to the owning shard.
func (s *ShardedStore) XfersFrom(runID, proc, port string) ([]store.Xfer, error) {
	return s.XfersFromCtx(context.Background(), runID, proc, port)
}

// XfersFromCtx implements store.ContextTraceQuerier.
func (s *ShardedStore) XfersFromCtx(ctx context.Context, runID, proc, port string) ([]store.Xfer, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	xs, err := replicaRead(ctx, s.replicaSets[i], false, func(st *store.Store) ([]store.Xfer, error) {
		return st.XfersFrom(runID, proc, port)
	})
	return xs, shardErr(i, err)
}

// LoadTrace reconstructs a stored run's trace from its owning shard.
func (s *ShardedStore) LoadTrace(runID string) (*trace.Trace, error) {
	return s.LoadTraceCtx(context.Background(), runID)
}

// LoadTraceCtx implements store.ContextTraceQuerier.
func (s *ShardedStore) LoadTraceCtx(ctx context.Context, runID string) (*trace.Trace, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	tr, err := replicaRead(ctx, s.replicaSets[i], false, func(st *store.Store) (*trace.Trace, error) {
		return st.LoadTrace(runID)
	})
	return tr, shardErr(i, err)
}

// Verify checks one stored run's integrity on its owning shard.
func (s *ShardedStore) Verify(runID string, wf *workflow.Workflow) (*store.VerifyReport, error) {
	return s.VerifyCtx(context.Background(), runID, wf)
}

// VerifyCtx implements store.ContextTraceQuerier.
func (s *ShardedStore) VerifyCtx(ctx context.Context, runID string, wf *workflow.Workflow) (*store.VerifyReport, error) {
	i := s.ring.owner(runID)
	rep, err := replicaRead(ctx, s.replicaSets[i], false, func(st *store.Store) (*store.VerifyReport, error) {
		return st.Verify(runID, wf)
	})
	return rep, shardErr(i, err)
}

// PartitionRuns implements store.RunPartitioner: runs grouped by owning
// shard, in shard order. The multi-run executor forms its probe chunks
// within these groups, so every batched probe is answered by exactly one
// shard scanning only its own index — the scatter below then takes its
// single-group fast path and no whole-store scan ever covers rows the
// chunk cannot use.
func (s *ShardedStore) PartitionRuns(runIDs []string) [][]string {
	groups := s.groupRuns(runIDs)
	touched := make([]int, 0, len(groups))
	for i := range groups {
		touched = append(touched, i)
	}
	sort.Ints(touched)
	parts := make([][]string, 0, len(touched))
	for _, i := range touched {
		parts = append(parts, groups[i])
	}
	return parts
}

// groupRuns partitions run IDs by owning shard, deduplicating within each
// group (a run appears once per group even if requested twice).
func (s *ShardedStore) groupRuns(runIDs []string) map[int][]string {
	groups := make(map[int][]string)
	seen := make(map[string]bool, len(runIDs))
	for _, r := range runIDs {
		if seen[r] {
			continue
		}
		seen[r] = true
		i := s.ring.owner(r)
		groups[i] = append(groups[i], r)
	}
	return groups
}

// shardErr annotates a shard-level failure with its shard index (wrapping,
// so sentinel matching survives). nil stays nil.
func shardErr(i int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("shard %d: %w", i, err)
}

// eachShard runs fn for every shard group concurrently and records the
// scatter metrics. Each shard's failure is annotated with its shard index
// and all of them are aggregated with errors.Join — the first failing shard
// does not mask the others, and errors.Is still matches every member's
// chain.
func eachShard[G any](s *ShardedStore, ctx context.Context, groups map[int]G, fn func(ctx context.Context, i int, g G) error) error {
	touched := make([]int, 0, len(groups))
	for i := range groups {
		touched = append(touched, i)
	}
	sort.Ints(touched)
	s.noteScatter(len(groups), touched)

	if len(touched) == 1 {
		i := touched[0]
		t0 := time.Now()
		err := fn(ctx, i, groups[i])
		if obs.Enabled() {
			obsProbeNS.Observe(time.Since(t0).Nanoseconds())
		}
		return shardErr(i, err)
	}
	var wg sync.WaitGroup
	errs := make([]error, len(touched))
	for k, i := range touched {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			t0 := time.Now()
			errs[k] = shardErr(i, fn(ctx, i, groups[i]))
			if obs.Enabled() {
				obsProbeNS.Observe(time.Since(t0).Nanoseconds())
			}
		}(k, i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

var (
	_ store.ContextLineageQuerier = (*ShardedStore)(nil)
	_ store.ContextTraceQuerier   = (*ShardedStore)(nil)
)
