package shard

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// This file implements the sharded query surface. Single-run operations
// route to the run's owning shard; the batched multi-run probes scatter:
// the batch is grouped by owning shard, one batched probe per shard runs
// concurrently (each shard has its own engine and its own lock, so the
// probes proceed truly in parallel), and the per-shard answers merge into
// one map keyed exactly like the single-store answer. The lineage executors
// are oblivious — they talk to a store.LineageQuerier either way — so
// ExecuteMultiRun's worker pool gets cross-shard parallelism inside every
// single batched probe, on top of its own probe-level parallelism.

// InputBindings answers the trace probe Q(P, X, p) for one run.
func (s *ShardedStore) InputBindings(runID, proc, port string, idx value.Index) ([]store.Binding, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.shards[i].InputBindings(runID, proc, port, idx)
}

// InputBindingsBatch answers the probe for a set of runs by scatter-gather:
// the runs are grouped by owning shard and each shard answers its group with
// one batched probe, concurrently. The merged result has an entry for every
// requested run, exactly like the single-store batch.
func (s *ShardedStore) InputBindingsBatch(runIDs []string, proc, port string, idx value.Index) (map[string][]store.Binding, error) {
	out := make(map[string][]store.Binding, len(runIDs))
	if len(runIDs) == 0 {
		return out, nil
	}
	groups := s.groupRuns(runIDs)
	if len(groups) == 1 {
		for i, runs := range groups {
			s.noteScatter(1, []int{i})
			return s.shards[i].InputBindingsBatch(runs, proc, port, idx)
		}
	}
	parts := make([]map[string][]store.Binding, len(s.shards))
	err := s.eachShard(groups, func(i int, runs []string) error {
		m, err := s.shards[i].InputBindingsBatch(runs, proc, port, idx)
		if err != nil {
			return err
		}
		parts[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, m := range parts {
		for r, bs := range m {
			out[r] = bs
		}
	}
	return out, nil
}

// Value materializes one stored port value from the run's owning shard.
func (s *ShardedStore) Value(runID string, valID int64) (value.Value, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.shards[i].Value(runID, valID)
}

// ValuesBatch materializes a set of values by scatter-gather: refs group by
// their run's owning shard, each shard answers its group with one batched
// lookup, and the per-shard maps merge.
func (s *ShardedStore) ValuesBatch(refs []store.ValueRef) (map[store.ValueRef]value.Value, error) {
	out := make(map[store.ValueRef]value.Value, len(refs))
	if len(refs) == 0 {
		return out, nil
	}
	groups := make(map[int][]store.ValueRef)
	for _, ref := range refs {
		i := s.ring.owner(ref.RunID)
		groups[i] = append(groups[i], ref)
	}
	if len(groups) == 1 {
		for i, g := range groups {
			s.noteScatter(1, []int{i})
			return s.shards[i].ValuesBatch(g)
		}
	}
	touched := make([]int, 0, len(groups))
	for i := range groups {
		touched = append(touched, i)
	}
	sort.Ints(touched)
	s.noteScatter(len(groups), touched)

	parts := make([]map[store.ValueRef]value.Value, len(s.shards))
	var wg sync.WaitGroup
	errs := make([]error, len(s.shards))
	for _, i := range touched {
		wg.Add(1)
		go func(i int, g []store.ValueRef) {
			defer wg.Done()
			t0 := time.Now()
			parts[i], errs[i] = s.shards[i].ValuesBatch(g)
			if obs.Enabled() {
				obsProbeNS.Observe(time.Since(t0).Nanoseconds())
			}
		}(i, groups[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, m := range parts {
		for ref, v := range m {
			out[ref] = v
		}
	}
	return out, nil
}

// HasRun reports whether the owning shard holds the run.
func (s *ShardedStore) HasRun(runID string) (bool, error) {
	return s.shards[s.ring.owner(runID)].HasRun(runID)
}

// XformsByOutput routes the extensional probe to the owning shard.
func (s *ShardedStore) XformsByOutput(runID, proc, port string, idx value.Index) ([]store.Xform, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.shards[i].XformsByOutput(runID, proc, port, idx)
}

// XformsByInput routes the forward extensional probe to the owning shard.
func (s *ShardedStore) XformsByInput(runID, proc, port string, idx value.Index) ([]store.ForwardXform, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.shards[i].XformsByInput(runID, proc, port, idx)
}

// XfersTo routes to the owning shard.
func (s *ShardedStore) XfersTo(runID, proc, port string) ([]store.Xfer, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.shards[i].XfersTo(runID, proc, port)
}

// XfersFrom routes to the owning shard.
func (s *ShardedStore) XfersFrom(runID, proc, port string) ([]store.Xfer, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.shards[i].XfersFrom(runID, proc, port)
}

// LoadTrace reconstructs a stored run's trace from its owning shard.
func (s *ShardedStore) LoadTrace(runID string) (*trace.Trace, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.shards[i].LoadTrace(runID)
}

// Verify checks one stored run's integrity on its owning shard.
func (s *ShardedStore) Verify(runID string, wf *workflow.Workflow) (*store.VerifyReport, error) {
	return s.shards[s.ring.owner(runID)].Verify(runID, wf)
}

// PartitionRuns implements store.RunPartitioner: runs grouped by owning
// shard, in shard order. The multi-run executor forms its probe chunks
// within these groups, so every batched probe is answered by exactly one
// shard scanning only its own index — the scatter below then takes its
// single-group fast path and no whole-store scan ever covers rows the
// chunk cannot use.
func (s *ShardedStore) PartitionRuns(runIDs []string) [][]string {
	groups := s.groupRuns(runIDs)
	touched := make([]int, 0, len(groups))
	for i := range groups {
		touched = append(touched, i)
	}
	sort.Ints(touched)
	parts := make([][]string, 0, len(touched))
	for _, i := range touched {
		parts = append(parts, groups[i])
	}
	return parts
}

// groupRuns partitions run IDs by owning shard, deduplicating within each
// group (a run appears once per group even if requested twice).
func (s *ShardedStore) groupRuns(runIDs []string) map[int][]string {
	groups := make(map[int][]string)
	seen := make(map[string]bool, len(runIDs))
	for _, r := range runIDs {
		if seen[r] {
			continue
		}
		seen[r] = true
		i := s.ring.owner(r)
		groups[i] = append(groups[i], r)
	}
	return groups
}

// eachShard runs fn(i, runs) for every shard group concurrently, records the
// scatter metrics, and returns the first error.
func (s *ShardedStore) eachShard(groups map[int][]string, fn func(i int, runs []string) error) error {
	touched := make([]int, 0, len(groups))
	for i := range groups {
		touched = append(touched, i)
	}
	sort.Ints(touched)
	s.noteScatter(len(groups), touched)

	if len(touched) == 1 {
		i := touched[0]
		t0 := time.Now()
		err := fn(i, groups[i])
		if obs.Enabled() {
			obsProbeNS.Observe(time.Since(t0).Nanoseconds())
		}
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, len(touched))
	for k, i := range touched {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			t0 := time.Now()
			errs[k] = fn(i, groups[i])
			if obs.Enabled() {
				obsProbeNS.Observe(time.Since(t0).Nanoseconds())
			}
		}(k, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
