package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
)

// shardCounts returns the shard counts exercised by the smoke and crash
// tests. SHARDS pins a single count (the CI shard-matrix loops it over
// 1/2/4); the default covers all three in one run.
func shardCounts() []int {
	if s := os.Getenv("SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return []int{n}
		}
	}
	return []int{1, 2, 4}
}

// testbedTraces executes Testbed(l) `runs` times with list size d and
// returns the recorded traces.
func testbedTraces(t *testing.T, l, d, runs int) []*trace.Trace {
	t.Helper()
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)
	wf := gen.Testbed(l)
	traces := make([]*trace.Trace, 0, runs)
	for r := 0; r < runs; r++ {
		_, tr, err := eng.RunTrace(wf, fmt.Sprintf("run%03d", r), gen.TestbedInputs(d))
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	return traces
}

func TestRingRoutingIsDeterministicAndCovers(t *testing.T) {
	a, err := OpenMemory(4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenMemory(4)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	hit := make(map[int]int)
	for i := 0; i < 1000; i++ {
		run := fmt.Sprintf("run-%04d", i)
		sa, sb := a.ShardOf(run), b.ShardOf(run)
		if sa != sb {
			t.Fatalf("run %q routed to shard %d on one store, %d on another", run, sa, sb)
		}
		hit[sa]++
	}
	for s := 0; s < 4; s++ {
		if hit[s] == 0 {
			t.Fatalf("shard %d owns none of 1000 runs: %v", s, hit)
		}
		// FNV ring with 64 vnodes keeps imbalance modest; anything wildly
		// skewed indicates a broken ring.
		if hit[s] < 50 {
			t.Fatalf("shard %d owns only %d of 1000 runs: %v", s, hit[s], hit)
		}
	}
}

// TestShardSmoke is the CI shard-matrix smoke: for each shard count, the
// sharded store must hold exactly the data a single store holds and answer
// single-run and multi-run queries identically.
func TestShardSmoke(t *testing.T) {
	l, d, runs := 4, 3, 6
	traces := testbedTraces(t, l, d, runs)
	wf := gen.Testbed(l)

	single, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.IngestTraces(context.Background(), traces, store.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	wantTotal, err := single.TotalRecords("")
	if err != nil {
		t.Fatal(err)
	}
	runIDs := make([]string, len(traces))
	for i, tr := range traces {
		runIDs[i] = tr.RunID
	}
	ipSingle, err := lineage.NewIndexProj(single, wf)
	if err != nil {
		t.Fatal(err)
	}
	focus := lineage.NewFocus(gen.ListGenName)
	idx := value.Ix(d/2, d/2)
	want, err := ipSingle.LineageMultiRun(runIDs, gen.FinalName, "product", idx, focus)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range shardCounts() {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			sh, err := OpenMemory(n)
			if err != nil {
				t.Fatal(err)
			}
			defer sh.Close()
			if err := sh.IngestTraces(context.Background(), traces, store.IngestOptions{Parallelism: 4}); err != nil {
				t.Fatal(err)
			}
			total, err := sh.TotalRecords("")
			if err != nil {
				t.Fatal(err)
			}
			if total != wantTotal {
				t.Fatalf("sharded store holds %d records, single store %d", total, wantTotal)
			}
			listed, err := sh.ListRuns()
			if err != nil {
				t.Fatal(err)
			}
			if len(listed) != runs {
				t.Fatalf("ListRuns returned %d runs, want %d", len(listed), runs)
			}
			for i := 1; i < len(listed); i++ {
				if listed[i-1].RunID >= listed[i].RunID {
					t.Fatalf("ListRuns not sorted: %q before %q", listed[i-1].RunID, listed[i].RunID)
				}
			}
			for _, r := range runIDs {
				ok, err := sh.HasRun(r)
				if err != nil || !ok {
					t.Fatalf("HasRun(%q) = %v, %v", r, ok, err)
				}
				tr, err := sh.LoadTrace(r)
				if err != nil {
					t.Fatal(err)
				}
				if tr.RunID != r {
					t.Fatalf("LoadTrace(%q) returned run %q", r, tr.RunID)
				}
				rep, err := sh.Verify(r, wf)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.OK() {
					t.Fatalf("run %q fails verification on %d shards: %v", r, n, rep)
				}
			}
			// Multi-run INDEXPROJ, sequential and parallel, and NI must all
			// match the single-store answer.
			ip, err := lineage.NewIndexProj(sh, wf)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ip.LineageMultiRun(runIDs, gen.FinalName, "product", idx, focus)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("sharded INDEXPROJ (n=%d) diverged:\n got %v\nwant %v", n, got, want)
			}
			for _, p := range []int{1, 2, 4} {
				gp, err := ip.LineageMultiRunParallel(context.Background(), runIDs, gen.FinalName, "product", idx, focus,
					lineage.MultiRunOptions{Parallelism: p})
				if err != nil {
					t.Fatal(err)
				}
				if !gp.Equal(want) {
					t.Fatalf("sharded parallel P=%d (n=%d) diverged", p, n)
				}
			}
			ni := lineage.NewNaive(sh)
			gn, err := ni.LineageMultiRun(runIDs, gen.FinalName, "product", idx, focus)
			if err != nil {
				t.Fatal(err)
			}
			if !gn.Equal(want) {
				t.Fatalf("sharded NI (n=%d) diverged", n)
			}
			// Unknown runs surface the store sentinel through the sharded path.
			if _, err := ip.LineageMultiRun([]string{runIDs[0], "no-such-run"}, gen.FinalName, "product", idx, focus); !errors.Is(err, store.ErrUnknownRun) {
				t.Fatalf("unknown run through sharded store: got %v, want ErrUnknownRun", err)
			}
			// DeleteRun routes to the owning shard and removes the run.
			if _, err := sh.DeleteRun(runIDs[0]); err != nil {
				t.Fatal(err)
			}
			if ok, _ := sh.HasRun(runIDs[0]); ok {
				t.Fatalf("run %q still present after DeleteRun", runIDs[0])
			}
		})
	}
}

func TestShardDSNParsing(t *testing.T) {
	good := map[string]struct {
		dir     string
		n, r    int
		backend string
	}{
		"shard:/tmp/x":                  {"/tmp/x", 0, 0, ""},
		"shard:dir?n=4":                 {"dir", 4, 0, ""},
		"shard:dir?n=2&backend=durable": {"dir", 2, 0, "durable"},
		"shard:a/b/c?backend=file":      {"a/b/c", 0, 0, "file"},
		"shard:dir?n=2&r=2":             {"dir", 2, 2, ""},
		"shard:dir?r=3&backend=durable": {"dir", 0, 3, "durable"},
	}
	for dsn, want := range good {
		dir, n, r, backend, err := parseDSN(dsn)
		if err != nil {
			t.Fatalf("parseDSN(%q): %v", dsn, err)
		}
		if dir != want.dir || n != want.n || r != want.r || backend != want.backend {
			t.Fatalf("parseDSN(%q) = (%q, %d, %d, %q), want %+v", dsn, dir, n, r, backend, want)
		}
	}
	for _, dsn := range []string{
		"file:x", "shard:", "shard:dir?n=0", "shard:dir?n=-2", "shard:dir?n=x",
		"shard:dir?backend=weird", "shard:dir?bogus=1",
		"shard:dir?r=0", "shard:dir?r=-1", "shard:dir?r=x",
	} {
		if _, _, _, _, err := parseDSN(dsn); err == nil {
			t.Fatalf("parseDSN(%q) accepted a bad DSN", dsn)
		}
	}
}

// TestShardManifestPersistence checks the file-backed lifecycle: create with
// an explicit n, ingest, save, reopen without n (topology from the
// manifest), and reject a conflicting reopen.
func TestShardManifestPersistence(t *testing.T) {
	dir := t.TempDir()
	dsn := "shard:" + dir + "?n=3"
	sh, err := Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	traces := testbedTraces(t, 3, 2, 5)
	if err := sh.IngestTraces(context.Background(), traces, store.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	wantTotal, err := sh.TotalRecords("")
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Save(""); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the bare directory: shard count comes from the manifest.
	back, err := Open("shard:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.NumShards() != 3 {
		t.Fatalf("reopened store has %d shards, want 3 from the manifest", back.NumShards())
	}
	total, err := back.TotalRecords("")
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal {
		t.Fatalf("reopened store holds %d records, want %d", total, wantTotal)
	}
	for _, tr := range traces {
		if ok, err := back.HasRun(tr.RunID); err != nil || !ok {
			t.Fatalf("run %q missing after reopen: %v, %v", tr.RunID, ok, err)
		}
	}

	// A conflicting shard count must be rejected, not silently re-hashed.
	if _, err := Open("shard:" + dir + "?n=5"); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("conflicting n reopen: got %v, want a manifest-pinning error", err)
	}
}

// TestShardedCrashSweep is the sharded durability sweep: durable-backed
// shards, one injection point per shard — garbage appended to that shard's
// WAL tail (a torn final write). Reopening must drop only the torn bytes:
// every acknowledged run stays present and verifiable on every shard.
func TestShardedCrashSweep(t *testing.T) {
	for _, n := range shardCounts() {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			dsn := fmt.Sprintf("shard:%s?n=%d&backend=durable", dir, n)
			sh, err := Open(dsn)
			if err != nil {
				t.Fatal(err)
			}
			traces := testbedTraces(t, 3, 2, 2*n+3) // enough runs to hit every shard with high odds
			if err := sh.IngestTraces(context.Background(), traces, store.IngestOptions{Parallelism: 2}); err != nil {
				sh.Close()
				t.Fatal(err)
			}
			if err := sh.Close(); err != nil {
				t.Fatal(err)
			}

			for i := 0; i < n; i++ {
				// Injection point for shard i: torn tail on its WAL.
				wal := filepath.Join(dir, shardDirName(i), "wal.log")
				f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte("\x7ftorn-write-garbage")); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}

				back, err := Open(dsn)
				if err != nil {
					t.Fatalf("reopen after torn tail on shard %d: %v", i, err)
				}
				for _, tr := range traces {
					ok, err := back.HasRun(tr.RunID)
					if err != nil || !ok {
						back.Close()
						t.Fatalf("run %q lost after torn tail on shard %d: %v, %v", tr.RunID, i, ok, err)
					}
					rep, err := back.Verify(tr.RunID, nil)
					if err != nil {
						back.Close()
						t.Fatal(err)
					}
					if !rep.OK() {
						back.Close()
						t.Fatalf("run %q fails verification after torn tail on shard %d: %v", tr.RunID, i, rep)
					}
				}
				if err := back.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
