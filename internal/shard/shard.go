// Package shard partitions a provenance store across N independent
// reldb-backed store.Store instances by consistent hash of the run ID.
//
// The paper's multi-run story (§3.4 — one compiled plan, probed once per
// run) is embarrassingly partitionable by run: every event row carries its
// run_id and no query joins rows of different runs, so a run is an atomic
// unit of placement. A ShardedStore routes single-run operations (writers,
// trace loads, point probes) to the owning shard and answers the batched
// multi-run queries (InputBindingsBatch, ValuesBatch) by scatter-gather:
// group the batch by owning shard, issue one batched probe per shard
// concurrently, merge the per-shard answers. Each shard is a full
// store.Store over its own reldb engine, so shards never share a lock —
// ingest batches commit concurrently and probe scans cover only the owning
// shard's rows.
//
// The topology (shard count, hash function, virtual-node count) is persisted
// in a manifest next to the shard databases, so a store reopened later
// routes every run to the shard that already holds it.
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/resilience"
	"repro/internal/sqlike"
	"repro/internal/store"
)

// DefaultShards is the shard count used when a shard DSN names none.
const DefaultShards = 4

// DefaultReplicas is the replication factor used when a shard DSN names none:
// unreplicated, matching every store created before replication existed.
const DefaultReplicas = 1

// vnodesPerShard is the number of virtual points each shard contributes to
// the consistent-hash ring. 64 points keep the expected imbalance across
// shards within a few percent while the ring stays tiny (n·64 entries).
const vnodesPerShard = 64

// manifestFile is the topology manifest's name inside the shard directory.
const manifestFile = "manifest.json"

// Manifest is the persisted topology of a sharded store. It pins everything
// run routing depends on: a store reopened with a different shard count or
// hash would look up runs on the wrong shard, so Open validates the DSN
// against the manifest and the manifest wins.
type Manifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Backend string `json:"backend"` // "file" or "durable"
	Hash    string `json:"hash"`    // ring hash function identifier
	Vnodes  int    `json:"vnodes"`  // virtual points per shard
	// Replicas is the number of store copies behind each logical shard
	// (primary + followers). Absent in pre-replication manifests, which
	// load as 1. Replication does not affect run routing, so it is not
	// part of the topology generation.
	Replicas int `json:"replicas,omitempty"`
}

// hashName identifies the ring construction; changing the hash or the vnode
// key layout must change this string so old manifests are rejected loudly
// instead of misrouting runs.
const hashName = "fnv64a-mix-ring-v1"

// ring is a consistent-hash ring: sorted virtual points, each owned by a
// shard. A run is placed on the shard owning the first point at or after the
// run ID's hash (wrapping around).
type ring struct {
	hashes []uint64
	owners []int
}

func buildRing(shards, vnodes int) ring {
	type pt struct {
		h     uint64
		shard int
	}
	pts := make([]pt, 0, shards*vnodes)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, pt{hash64(fmt.Sprintf("shard-%d#%d", s, v)), s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].shard < pts[j].shard
	})
	r := ring{hashes: make([]uint64, len(pts)), owners: make([]int, len(pts))}
	for i, p := range pts {
		r.hashes[i] = p.h
		r.owners[i] = p.shard
	}
	return r
}

// owner returns the shard owning a run ID.
func (r ring) owner(runID string) int {
	h := hash64(runID)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap: the first point owns the arc past the last one
	}
	return r.owners[i]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a's trailing bytes barely reach the high bits, and ring placement
	// compares full 64-bit values — sequential run IDs ("run-0001", ...)
	// would cluster on a few arcs. A splitmix64-style finalizer avalanches
	// every input byte across the word.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardedStore is a provenance store partitioned across N independent
// store.Store shards by consistent hash of the run ID. It implements
// store.Backend, so every consumer of a single store — the System facade,
// the lineage executors, the CLIs, the benchmark harness — works unchanged
// on a sharded one.
type ShardedStore struct {
	dsn      string
	dir      string // "" for memory-backed stores
	backend  string // "file", "durable" or "memory"
	manifest Manifest
	ring     ring
	// replicaSets holds the R replicas behind each logical shard; the
	// resilient read path over them lives in replica.go.
	replicaSets []*replicaSet
	policy      resilience.Policy
	hedgeOn     bool

	// Per-shard probe counters (shard.probes.s<i>), resolved once at open.
	probeCounters []counterHandle
}

// primary returns shard i's primary store — the single-store fast paths and
// the write paths anchor here.
func (s *ShardedStore) primary(i int) *store.Store { return s.replicaSets[i].primary() }

// Open opens (and if necessary initializes) a sharded provenance store.
//
// DSN form:
//
//	shard:<dir>[?n=N][&r=R][&backend=file|durable]
//
// <dir> holds the topology manifest and one database per shard replica
// (shard-000.db snapshots for the file backend, shard-000/ WAL directories
// for the durable backend; followers add a .r<j> suffix: shard-000.r1.db,
// shard-000.r1/). When the manifest already exists it defines the topology;
// a conflicting ?n or ?r is an error. A fresh directory is initialized with
// N shards × R replicas (DefaultShards / DefaultReplicas when absent). With
// R > 1, followers catch up to their primary by checkpoint copy on open.
func Open(dsn string) (*ShardedStore, error) {
	dir, n, r, backend, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	man, existing, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if existing {
		if n != 0 && n != man.Shards {
			return nil, fmt.Errorf("shard: DSN requests n=%d but manifest at %s pins %d shards", n, dir, man.Shards)
		}
		if r != 0 && r != man.Replicas {
			return nil, fmt.Errorf("shard: DSN requests r=%d but manifest at %s pins %d replicas", r, dir, man.Replicas)
		}
		if backend != "" && backend != man.Backend {
			return nil, fmt.Errorf("shard: DSN requests backend=%s but manifest at %s pins %s", backend, dir, man.Backend)
		}
	} else {
		if n == 0 {
			n = DefaultShards
		}
		if r == 0 {
			r = DefaultReplicas
		}
		if backend == "" {
			backend = "file"
		}
		man = Manifest{Version: 1, Shards: n, Backend: backend, Hash: hashName, Vnodes: vnodesPerShard, Replicas: r}
		if err := writeManifest(dir, man); err != nil {
			return nil, err
		}
	}
	if man.Hash != hashName {
		return nil, fmt.Errorf("shard: manifest at %s uses hash %q, this build implements %q", dir, man.Hash, hashName)
	}
	dsns := make([][]string, man.Shards)
	for i := range dsns {
		dsns[i] = make([]string, man.Replicas)
		for j := range dsns[i] {
			switch man.Backend {
			case "file":
				dsns[i][j] = "file:" + filepath.Join(dir, replicaFileName(i, j))
			case "durable":
				dsns[i][j] = "durable:" + filepath.Join(dir, replicaDirName(i, j))
			default:
				return nil, fmt.Errorf("shard: manifest at %s names unknown backend %q", dir, man.Backend)
			}
		}
	}
	s, err := open(dsn, dir, man, dsns)
	if err != nil {
		return nil, err
	}
	if existing && man.Replicas > 1 {
		// Catch-up via checkpoint copy on open: a follower that missed
		// writes (opened fresh, or behind a primary that took single-run
		// writers) converges before serving reads.
		var errs []error
		for _, rs := range s.replicaSets {
			if err := rs.syncFollowers(); err != nil {
				errs = append(errs, err)
			}
		}
		if err := errors.Join(errs...); err != nil {
			s.Close()
			return nil, fmt.Errorf("shard: follower catch-up on open: %w", err)
		}
	}
	return s, nil
}

// OpenMemory opens a fresh sharded store over n private in-memory shards —
// no directory, no manifest. Tests and benchmarks use it to compare shard
// topologies without touching disk.
func OpenMemory(n int) (*ShardedStore, error) { return OpenMemoryReplicated(n, 1) }

// OpenMemoryReplicated opens a fresh sharded store over n logical shards of
// r private in-memory replicas each. The chaos harness and the failover
// experiment use it to exercise failover without touching disk.
func OpenMemoryReplicated(n, r int) (*ShardedStore, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", n)
	}
	if r < 1 {
		return nil, fmt.Errorf("shard: replica count must be positive, got %d", r)
	}
	man := Manifest{Version: 1, Shards: n, Backend: "memory", Hash: hashName, Vnodes: vnodesPerShard, Replicas: r}
	dsns := make([][]string, n)
	for i := range dsns {
		dsns[i] = make([]string, r)
		for j := range dsns[i] {
			dsns[i][j] = sqlike.MemoryDSN()
		}
	}
	return open(fmt.Sprintf("shard:mem?n=%d&r=%d", n, r), "", man, dsns)
}

func open(dsn, dir string, man Manifest, replicaDSNs [][]string) (*ShardedStore, error) {
	if man.Replicas < 1 {
		man.Replicas = 1
	}
	s := &ShardedStore{
		dsn:         dsn,
		dir:         dir,
		backend:     man.Backend,
		manifest:    man,
		ring:        buildRing(man.Shards, man.Vnodes),
		replicaSets: make([]*replicaSet, len(replicaDSNs)),
		policy:      resilience.Policy{Retries: 2}.Normalized(),
		hedgeOn:     true,
	}
	closeOpened := func() {
		for _, rs := range s.replicaSets {
			if rs == nil {
				continue
			}
			for _, rep := range rs.reps {
				rep.st.Close()
			}
		}
	}
	for i, sds := range replicaDSNs {
		rs := &replicaSet{owner: s, shard: i, hedge: resilience.NewHedgeTracker(0)}
		s.replicaSets[i] = rs
		for j, sd := range sds {
			st, err := store.Open(sd)
			if err != nil {
				closeOpened()
				return nil, fmt.Errorf("shard: opening shard %d replica %d: %w", i, j, err)
			}
			rs.reps = append(rs.reps, &replica{st: st, br: resilience.NewBreaker(resilience.BreakerConfig{})})
		}
	}
	s.probeCounters = perShardCounters(len(s.replicaSets))
	return s, nil
}

func shardFileName(i int) string { return fmt.Sprintf("shard-%03d.db", i) }
func shardDirName(i int) string  { return fmt.Sprintf("shard-%03d", i) }

// replicaFileName and replicaDirName name replica j of shard i: the primary
// keeps the pre-replication names (so r=1 stores are bit-compatible with
// old ones), followers get a .r<j> suffix.
func replicaFileName(i, j int) string {
	if j == 0 {
		return shardFileName(i)
	}
	return fmt.Sprintf("shard-%03d.r%d.db", i, j)
}

func replicaDirName(i, j int) string {
	if j == 0 {
		return shardDirName(i)
	}
	return fmt.Sprintf("shard-%03d.r%d", i, j)
}

// parseDSN splits "shard:<dir>?n=N&r=R&backend=b". n == 0 / r == 0 mean
// "not given".
func parseDSN(dsn string) (dir string, n, r int, backend string, err error) {
	rest, ok := strings.CutPrefix(dsn, "shard:")
	if !ok {
		return "", 0, 0, "", fmt.Errorf("shard: bad DSN %q (want shard:<dir>?n=N)", dsn)
	}
	rest, query, _ := strings.Cut(rest, "?")
	if rest == "" {
		return "", 0, 0, "", fmt.Errorf("shard: bad DSN %q: empty directory", dsn)
	}
	for _, kv := range strings.Split(query, "&") {
		if kv == "" {
			continue
		}
		k, v, _ := strings.Cut(kv, "=")
		switch k {
		case "n":
			n, err = strconv.Atoi(v)
			if err != nil || n < 1 {
				return "", 0, 0, "", fmt.Errorf("shard: bad DSN %q: n must be a positive integer", dsn)
			}
		case "r":
			r, err = strconv.Atoi(v)
			if err != nil || r < 1 {
				return "", 0, 0, "", fmt.Errorf("shard: bad DSN %q: r must be a positive integer", dsn)
			}
		case "backend":
			if v != "file" && v != "durable" {
				return "", 0, 0, "", fmt.Errorf("shard: bad DSN %q: backend must be file or durable", dsn)
			}
			backend = v
		default:
			return "", 0, 0, "", fmt.Errorf("shard: bad DSN %q: unknown option %q", dsn, k)
		}
	}
	return rest, n, r, backend, nil
}

// IsShardDSN reports whether a DSN selects the sharded store.
func IsShardDSN(dsn string) bool { return strings.HasPrefix(dsn, "shard:") }

// DirOf returns the shard directory named by a shard DSN.
func DirOf(dsn string) (string, bool) {
	if !IsShardDSN(dsn) {
		return "", false
	}
	dir, _, _, _, err := parseDSN(dsn)
	if err != nil {
		return "", false
	}
	return dir, true
}

func loadManifest(dir string) (Manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("shard: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("shard: manifest at %s: %w", dir, err)
	}
	if m.Shards < 1 {
		return Manifest{}, false, fmt.Errorf("shard: manifest at %s names %d shards", dir, m.Shards)
	}
	if m.Vnodes < 1 {
		m.Vnodes = vnodesPerShard
	}
	if m.Replicas < 1 {
		m.Replicas = 1 // pre-replication manifests carry no replica count
	}
	return m, true, nil
}

func writeManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	// Atomic replacement, same discipline as the engine's checkpoints: a
	// crash between create and rename leaves either the old manifest or none.
	tmp := filepath.Join(dir, manifestFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// TopologyGen implements store.TopologyVersioner: a fingerprint of every
// manifest parameter run routing depends on. Two opens of a sharded store
// report the same generation exactly when they route every run identically,
// so plan-cache keys carrying the generation can never serve entries cached
// against a different ring.
func (s *ShardedStore) TopologyGen() string {
	return fmt.Sprintf("%s/n=%d/v=%d", s.manifest.Hash, s.manifest.Shards, s.manifest.Vnodes)
}

// Checkpoint implements store.Checkpointer: followers first catch up to
// their primary (copying runs written through single-run writers since the
// last checkpoint), then every durable replica snapshots its own data and
// truncates its WAL; non-durable replicas are no-ops. Errors are aggregated
// across shards and replicas — one failing replica does not hide another's.
// provd's graceful drain calls this before closing a tenant.
func (s *ShardedStore) Checkpoint() error {
	var errs []error
	for i, rs := range s.replicaSets {
		if err := rs.syncFollowers(); err != nil {
			errs = append(errs, err)
		}
		for j, rep := range rs.reps {
			if err := rep.st.Checkpoint(); err != nil {
				errs = append(errs, fmt.Errorf("shard: checkpointing shard %d replica %d: %w", i, j, err))
			}
		}
	}
	return errors.Join(errs...)
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.replicaSets) }

// NumReplicas returns the replication factor.
func (s *ShardedStore) NumReplicas() int { return s.manifest.Replicas }

// Manifest returns the persisted topology.
func (s *ShardedStore) Manifest() Manifest { return s.manifest }

// ShardOf returns the index of the shard owning a run ID.
func (s *ShardedStore) ShardOf(runID string) int { return s.ring.owner(runID) }

// Shard exposes one underlying shard's primary store (tests and the
// verifier use it).
func (s *ShardedStore) Shard(i int) *store.Store { return s.primary(i) }

// Replica exposes one physical replica store (tests and the chaos harness
// use it).
func (s *ShardedStore) Replica(i, j int) *store.Store { return s.replicaSets[i].reps[j].st }

// DSN returns the sharded store's data source name.
func (s *ShardedStore) DSN() string { return s.dsn }

// Dir returns the shard directory ("" for memory-backed stores).
func (s *ShardedStore) Dir() string { return s.dir }

// Close releases every replica of every shard. Errors are annotated with
// their shard and replica and aggregated with errors.Join — closing a
// 4-shard store with two failing shards reports both, not just one.
func (s *ShardedStore) Close() error {
	var errs []error
	for i, rs := range s.replicaSets {
		for j, rep := range rs.reps {
			if err := rep.st.Close(); err != nil {
				errs = append(errs, fmt.Errorf("shard: closing shard %d replica %d: %w", i, j, err))
			}
		}
	}
	return errors.Join(errs...)
}

// Save snapshots every file- or memory-backed shard into dir (one
// shard-<i>.db per shard) and refreshes the manifest, so Open(shard:<dir>)
// sees the saved state. Durable shards are write-ahead logged already and
// need no snapshot; Save is a no-op for them.
func (s *ShardedStore) Save(dir string) error {
	if s.backend == "durable" {
		return nil
	}
	if dir == "" {
		dir = s.dir
	}
	if dir == "" {
		return fmt.Errorf("shard: memory-backed store needs an explicit directory to save to")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	// Primaries are the source of truth; followers rebuild from them by
	// catch-up copy when the saved store is reopened.
	for i := range s.replicaSets {
		if err := s.primary(i).Save(filepath.Join(dir, shardFileName(i))); err != nil {
			return fmt.Errorf("shard: saving shard %d: %w", i, err)
		}
	}
	man := s.manifest
	if man.Backend == "memory" {
		man.Backend = "file" // a saved memory store reopens from snapshots
	}
	return writeManifest(dir, man)
}
