package shard

import (
	"context"
	"sort"
	"sync"

	"repro/internal/store"
	"repro/internal/trace"
)

// This file implements the sharded write path and the administrative
// operations. Writers route to the owning shard; bulk ingest groups its
// tasks by owning shard and runs one store-level Ingest per shard
// concurrently. Because every shard is an independent engine with its own
// lock, per-shard ingests never serialize against each other — this is the
// sharded store's ingest win: N group-committing writers instead of one.

// NewRunWriter registers a run on its owning shard and returns an
// unbuffered collector.
func (s *ShardedStore) NewRunWriter(runID, workflowName string) (*store.RunWriter, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.shards[i].NewRunWriter(runID, workflowName)
}

// NewBufferedRunWriter registers a run on its owning shard and returns a
// batching collector.
func (s *ShardedStore) NewBufferedRunWriter(ctx context.Context, runID, workflowName string, batchRows int) (*store.RunWriter, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.shards[i].NewBufferedRunWriter(ctx, runID, workflowName, batchRows)
}

// StoreTrace persists one complete in-memory trace on its owning shard.
func (s *ShardedStore) StoreTrace(t *trace.Trace) error {
	i := s.ring.owner(t.RunID)
	s.noteRouted(i)
	return s.shards[i].StoreTrace(t)
}

// Ingest loads the tasks' runs concurrently, grouped by owning shard: each
// shard ingests its group through its own store-level worker pool, and the
// groups run concurrently against independent engines. The requested
// parallelism is divided across the shards actually touched (at least one
// worker per shard), so total in-flight writers stay close to the caller's
// budget while every shard makes progress. CheckpointEveryRuns applies per
// shard — each durable shard checkpoints after every N of its own completed
// runs, so each shard's WAL (and its crash-replay work) stays bounded by N
// runs of events, and each periodic snapshot covers one shard's ~1/Nth of
// the data instead of the whole store.
func (s *ShardedStore) Ingest(ctx context.Context, tasks []store.IngestTask, opt store.IngestOptions) error {
	if ctx == nil {
		ctx = context.Background()
	}
	groups := make(map[int][]store.IngestTask)
	for _, t := range tasks {
		i := s.ring.owner(t.RunID)
		groups[i] = append(groups[i], t)
	}
	if len(groups) <= 1 {
		for i, g := range groups {
			s.noteRouted(i)
			return s.shards[i].Ingest(ctx, g, opt)
		}
		return nil
	}
	touched := make([]int, 0, len(groups))
	for i := range groups {
		touched = append(touched, i)
	}
	sort.Ints(touched)
	s.noteScatter(len(groups), touched)

	perShard := opt
	p := opt.Parallelism
	if p <= 0 {
		p = store.DefaultIngestParallelism
	}
	perShard.Parallelism = p / len(touched)
	if perShard.Parallelism < 1 {
		perShard.Parallelism = 1
	}

	// The first shard-level failure cancels the others, mirroring the
	// store-level pool's first-error semantics.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(touched))
	for k, i := range touched {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			if err := s.shards[i].Ingest(wctx, groups[i], perShard); err != nil {
				errs[k] = err
				cancel()
			}
		}(k, i)
	}
	wg.Wait()
	return store.FirstError(ctx, errs)
}

// IngestTraces bulk-loads a set of recorded traces across the shards.
func (s *ShardedStore) IngestTraces(ctx context.Context, traces []*trace.Trace, opt store.IngestOptions) error {
	return s.Ingest(ctx, store.TraceIngestTasks(traces), opt)
}

// ListRuns returns all stored runs across every shard, sorted by run ID so
// the merged listing is deterministic regardless of shard layout.
func (s *ShardedStore) ListRuns() ([]store.RunInfo, error) {
	var out []store.RunInfo
	for _, st := range s.shards {
		runs, err := st.ListRuns()
		if err != nil {
			return nil, err
		}
		out = append(out, runs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RunID < out[j].RunID })
	return out, nil
}

// RunsOf returns the IDs of all runs of the named workflow, across shards,
// sorted.
func (s *ShardedStore) RunsOf(workflow string) ([]string, error) {
	var out []string
	for _, st := range s.shards {
		runs, err := st.RunsOf(workflow)
		if err != nil {
			return nil, err
		}
		out = append(out, runs...)
	}
	sort.Strings(out)
	return out, nil
}

// RecordCounts reports per-table event rows for a run — or, with runID "",
// summed across every shard.
func (s *ShardedStore) RecordCounts(runID string) (xformIn, xformOut, xfers int, err error) {
	if runID != "" {
		return s.shards[s.ring.owner(runID)].RecordCounts(runID)
	}
	for _, st := range s.shards {
		in, out, xf, err := st.RecordCounts("")
		if err != nil {
			return 0, 0, 0, err
		}
		xformIn += in
		xformOut += out
		xfers += xf
	}
	return xformIn, xformOut, xfers, nil
}

// TotalRecords returns the Table 1 record count ("" sums all shards).
func (s *ShardedStore) TotalRecords(runID string) (int, error) {
	in, out, xf, err := s.RecordCounts(runID)
	return in + out + xf, err
}

// DeleteRun removes every record of a run from its owning shard.
func (s *ShardedStore) DeleteRun(runID string) (int, error) {
	return s.shards[s.ring.owner(runID)].DeleteRun(runID)
}

var _ store.Backend = (*ShardedStore)(nil)
