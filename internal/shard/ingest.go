package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/store"
	"repro/internal/trace"
)

// This file implements the sharded write path and the administrative
// operations. Writers route to the owning shard; bulk ingest groups its
// tasks by owning shard and runs one ingest pool per shard concurrently.
// Because every shard is an independent engine with its own lock, per-shard
// ingests never serialize against each other — this is the sharded store's
// ingest win: N group-committing writers instead of one.
//
// With replication (R > 1) bulk ingest dual-writes: each run's events fan
// out through a trace.MultiCollector to a buffered writer on every replica
// of the owning shard, so followers are populated inline instead of waiting
// for the next checkpoint's catch-up copy. Single-run writers
// (NewRunWriter / NewBufferedRunWriter) hand the caller a live collector
// bound to one engine, so they land on the primary only and followers
// converge at the next Checkpoint.

// NewRunWriter registers a run on its owning shard's primary and returns an
// unbuffered collector. With R > 1 the followers converge at the next
// Checkpoint (or Open) via catch-up copy.
func (s *ShardedStore) NewRunWriter(runID, workflowName string) (*store.RunWriter, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.primary(i).NewRunWriter(runID, workflowName)
}

// NewBufferedRunWriter registers a run on its owning shard's primary and
// returns a batching collector; followers converge at the next Checkpoint.
func (s *ShardedStore) NewBufferedRunWriter(ctx context.Context, runID, workflowName string, batchRows int) (*store.RunWriter, error) {
	i := s.ring.owner(runID)
	s.noteRouted(i)
	return s.primary(i).NewBufferedRunWriter(ctx, runID, workflowName, batchRows)
}

// StoreTrace persists one complete in-memory trace on every replica of its
// owning shard (primary first; follower writes retry per the resilience
// policy). If any replica fails, the run is rolled back everywhere and the
// joined, replica-attributed error is returned.
func (s *ShardedStore) StoreTrace(t *trace.Trace) error {
	i := s.ring.owner(t.RunID)
	s.noteRouted(i)
	rs := s.replicaSets[i]
	if err := rs.reps[0].st.StoreTrace(t); err != nil {
		return shardErr(i, err)
	}
	pol := s.policy
	var errs []error
	for j := 1; j < len(rs.reps); j++ {
		f := rs.reps[j].st
		if err := pol.Do(nil, func() error { return f.StoreTrace(t) }); err != nil {
			errs = append(errs, fmt.Errorf("shard %d replica %d: %w", i, j, err))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	for _, rep := range rs.reps {
		rep.st.DeleteRun(t.RunID) // best-effort rollback; strays also fixed at checkpoint
	}
	return errors.Join(errs...)
}

// Ingest loads the tasks' runs concurrently, grouped by owning shard: each
// shard ingests its group through its own worker pool, and the groups run
// concurrently against independent engines. The requested parallelism is
// divided across the shards actually touched (at least one worker per
// shard), so total in-flight writers stay close to the caller's budget while
// every shard makes progress. CheckpointEveryRuns applies per shard — each
// durable shard checkpoints after every N of its own completed runs, so each
// shard's WAL (and its crash-replay work) stays bounded by N runs of events,
// and each periodic snapshot covers one shard's ~1/Nth of the data instead
// of the whole store. With R > 1, each run dual-writes to every replica of
// its shard and the checkpoint cadence checkpoints the whole replica set.
func (s *ShardedStore) Ingest(ctx context.Context, tasks []store.IngestTask, opt store.IngestOptions) error {
	if ctx == nil {
		ctx = context.Background()
	}
	groups := make(map[int][]store.IngestTask)
	for _, t := range tasks {
		i := s.ring.owner(t.RunID)
		groups[i] = append(groups[i], t)
	}
	if len(groups) <= 1 {
		for i, g := range groups {
			s.noteRouted(i)
			return shardErr(i, s.ingestShard(ctx, i, g, opt))
		}
		return nil
	}
	touched := make([]int, 0, len(groups))
	for i := range groups {
		touched = append(touched, i)
	}
	sort.Ints(touched)
	s.noteScatter(len(groups), touched)

	perShard := opt
	p := opt.Parallelism
	if p <= 0 {
		p = store.DefaultIngestParallelism
	}
	perShard.Parallelism = p / len(touched)
	if perShard.Parallelism < 1 {
		perShard.Parallelism = 1
	}

	// The first shard-level failure cancels the others, mirroring the
	// store-level pool's first-error semantics.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(touched))
	for k, i := range touched {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			if err := s.ingestShard(wctx, i, groups[i], perShard); err != nil {
				errs[k] = shardErr(i, err)
				cancel()
			}
		}(k, i)
	}
	wg.Wait()
	return store.FirstError(ctx, errs)
}

// ingestShard ingests one shard's task group. Unreplicated shards delegate
// to the store-level pool; replicated shards run the dual-writing pool.
func (s *ShardedStore) ingestShard(ctx context.Context, i int, tasks []store.IngestTask, opt store.IngestOptions) error {
	rs := s.replicaSets[i]
	if len(rs.reps) == 1 {
		return rs.reps[0].st.Ingest(ctx, tasks, opt)
	}
	return s.ingestReplicated(ctx, rs, tasks, opt)
}

// ingestReplicated is the R>1 ingest pool for one shard: every run's events
// tee through a trace.MultiCollector into a buffered writer on each replica,
// so all copies commit the run before the task counts as done. A failed run
// is rolled back on every replica. The checkpoint cadence checkpoints the
// whole replica set together.
func (s *ShardedStore) ingestReplicated(ctx context.Context, rs *replicaSet, tasks []store.IngestTask, opt store.IngestOptions) error {
	o := opt
	if o.Parallelism == 0 {
		o.Parallelism = store.DefaultIngestParallelism
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}

	var (
		ckptMu sync.Mutex
		done   int
	)
	maybeCheckpoint := func() error {
		if o.CheckpointEveryRuns <= 0 {
			return nil
		}
		ckptMu.Lock()
		defer ckptMu.Unlock()
		done++
		if done%o.CheckpointEveryRuns != 0 {
			return nil
		}
		var errs []error
		for j, rep := range rs.reps {
			if err := rep.st.Checkpoint(); err != nil {
				errs = append(errs, fmt.Errorf("replica %d: %w", j, err))
			}
		}
		return errors.Join(errs...)
	}

	ingestOne := func(t store.IngestTask) error {
		ws := make([]*store.RunWriter, 0, len(rs.reps))
		mc := make(trace.MultiCollector, 0, len(rs.reps))
		rollback := func() {
			for _, rep := range rs.reps {
				rep.st.DeleteRun(t.RunID)
			}
		}
		for j, rep := range rs.reps {
			w, err := rep.st.NewBufferedRunWriter(ctx, t.RunID, t.Workflow, o.BatchRows)
			if err != nil {
				rollback()
				return fmt.Errorf("replica %d: ingesting run %q: %w", j, t.RunID, err)
			}
			ws = append(ws, w)
			mc = append(mc, w)
		}
		if err := t.Emit(mc); err != nil {
			rollback()
			return fmt.Errorf("ingesting run %q: %w", t.RunID, err)
		}
		var errs []error
		for j, w := range ws {
			if err := w.Close(); err != nil {
				errs = append(errs, fmt.Errorf("replica %d: ingesting run %q: %w", j, t.RunID, err))
			}
		}
		if len(errs) > 0 {
			rollback()
			return errors.Join(errs...)
		}
		return maybeCheckpoint()
	}

	if o.Parallelism == 1 {
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := ingestOne(t); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	taskC := make(chan store.IngestTask)
	errs := make([]error, o.Parallelism)
	var wg sync.WaitGroup
	for w := 0; w < o.Parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := range taskC {
				if wctx.Err() != nil {
					return
				}
				if err := ingestOne(t); err != nil {
					errs[w] = err
					cancel()
					return
				}
			}
		}(w)
	}
feed:
	for _, t := range tasks {
		select {
		case taskC <- t:
		case <-wctx.Done():
			break feed
		}
	}
	close(taskC)
	wg.Wait()
	return store.FirstError(ctx, errs)
}

// IngestTraces bulk-loads a set of recorded traces across the shards.
func (s *ShardedStore) IngestTraces(ctx context.Context, traces []*trace.Trace, opt store.IngestOptions) error {
	return s.Ingest(ctx, store.TraceIngestTasks(traces), opt)
}

// ListRuns returns all stored runs across every shard, sorted by run ID so
// the merged listing is deterministic regardless of shard layout. Each
// shard's listing reads through its replica set (failover, no hedging).
func (s *ShardedStore) ListRuns() ([]store.RunInfo, error) {
	var out []store.RunInfo
	for i, rs := range s.replicaSets {
		runs, err := replicaRead(context.Background(), rs, false, func(st *store.Store) ([]store.RunInfo, error) {
			return st.ListRuns()
		})
		if err != nil {
			return nil, shardErr(i, err)
		}
		out = append(out, runs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RunID < out[j].RunID })
	return out, nil
}

// RunsOf returns the IDs of all runs of the named workflow, across shards,
// sorted.
func (s *ShardedStore) RunsOf(workflow string) ([]string, error) {
	var out []string
	for i, rs := range s.replicaSets {
		runs, err := replicaRead(context.Background(), rs, false, func(st *store.Store) ([]string, error) {
			return st.RunsOf(workflow)
		})
		if err != nil {
			return nil, shardErr(i, err)
		}
		out = append(out, runs...)
	}
	sort.Strings(out)
	return out, nil
}

// RecordCounts reports per-table event rows for a run — or, with runID "",
// summed across every shard.
func (s *ShardedStore) RecordCounts(runID string) (xformIn, xformOut, xfers int, err error) {
	type counts struct{ in, out, xf int }
	count := func(i int, run string) (counts, error) {
		return replicaRead(context.Background(), s.replicaSets[i], false, func(st *store.Store) (counts, error) {
			in, out, xf, err := st.RecordCounts(run)
			return counts{in, out, xf}, err
		})
	}
	if runID != "" {
		i := s.ring.owner(runID)
		c, err := count(i, runID)
		if err != nil {
			return 0, 0, 0, shardErr(i, err)
		}
		return c.in, c.out, c.xf, nil
	}
	for i := range s.replicaSets {
		c, err := count(i, "")
		if err != nil {
			return 0, 0, 0, shardErr(i, err)
		}
		xformIn += c.in
		xformOut += c.out
		xfers += c.xf
	}
	return xformIn, xformOut, xfers, nil
}

// TotalRecords returns the Table 1 record count ("" sums all shards).
func (s *ShardedStore) TotalRecords(runID string) (int, error) {
	in, out, xf, err := s.RecordCounts(runID)
	return in + out + xf, err
}

// DeleteRun removes every record of a run from every replica of its owning
// shard; per-replica failures are joined. The returned count is the
// primary's.
func (s *ShardedStore) DeleteRun(runID string) (int, error) {
	i := s.ring.owner(runID)
	rs := s.replicaSets[i]
	n, err := rs.reps[0].st.DeleteRun(runID)
	var errs []error
	if err != nil {
		errs = append(errs, fmt.Errorf("shard %d replica 0: %w", i, err))
	}
	for j := 1; j < len(rs.reps); j++ {
		if _, err := rs.reps[j].st.DeleteRun(runID); err != nil && !errors.Is(err, store.ErrUnknownRun) {
			errs = append(errs, fmt.Errorf("shard %d replica %d: %w", i, j, err))
		}
	}
	return n, errors.Join(errs...)
}

var _ store.Backend = (*ShardedStore)(nil)
