package shard

import (
	"context"
	"errors"
	"sort"
	"sync"

	"repro/internal/store"
	"repro/internal/trace"
)

// This file implements streaming ingest over the sharded store: one inbound
// feed demultiplexes by run ownership into a per-shard session running
// store.TailIngest against the shard's primary. Each shard's session is an
// independent engine with its own group-committing writer, so the feed
// ingests on N engines concurrently — the same win the bulk path gets.
// Followers converge at the next Checkpoint via the snapshot-fenced catch-up
// copy, exactly like single-run writers.
//
// Dead letters land in the owning shard's primary DLQ; ListDeadLetters and
// RetryDeadLetters aggregate across the shards so the operator surface
// (provq -dlq) is the same either way.

// tailFeedBuf is the per-shard channel depth: deep enough that one shard's
// group-commit pause does not stall demux for the others.
const tailFeedBuf = 256

// TailIngest implements store.TailIngester by demultiplexing the feed across
// the shards' primaries. Stats are summed over the per-shard sessions;
// per-shard infrastructure failures are joined and shard-annotated.
func (s *ShardedStore) TailIngest(ctx context.Context, events <-chan trace.Event, opt store.TailOptions) (store.TailStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		total  store.TailStats
		errs   []error
		feeds  = make(map[int]chan trace.Event)
		feedOf = func(i int) chan trace.Event {
			ch, ok := feeds[i]
			if !ok {
				ch = make(chan trace.Event, tailFeedBuf)
				feeds[i] = ch
				s.noteRouted(i)
				wg.Add(1)
				go func(i int, ch <-chan trace.Event) {
					defer wg.Done()
					st, err := s.primary(i).TailIngest(ctx, ch, opt)
					mu.Lock()
					defer mu.Unlock()
					total.Applied += st.Applied
					total.DeadLettered += st.DeadLettered
					total.RunsStarted += st.RunsStarted
					total.RunsEnded += st.RunsEnded
					if err != nil && !errors.Is(err, ctx.Err()) {
						errs = append(errs, shardErr(i, err))
					}
				}(i, ch)
			}
			return ch
		}
	)
	drain := func() (store.TailStats, []error) {
		for _, ch := range feeds {
			close(ch)
		}
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		return total, errs
	}
feed:
	for {
		select {
		case <-ctx.Done():
			break feed
		case ev, ok := <-events:
			if !ok {
				break feed
			}
			select {
			case feedOf(s.ring.owner(ev.RunID)) <- ev:
			case <-ctx.Done():
				break feed
			}
		}
	}
	st, errList := drain()
	if err := ctx.Err(); err != nil {
		errList = append(errList, err)
	}
	return st, errors.Join(errList...)
}

// ListDeadLetters aggregates every shard's primary dead-letter queue, in
// shard order (arrival order within each shard).
func (s *ShardedStore) ListDeadLetters() ([]store.DeadLetter, error) {
	var out []store.DeadLetter
	for i := range s.replicaSets {
		ls, err := s.primary(i).ListDeadLetters()
		if err != nil {
			return nil, shardErr(i, err)
		}
		out = append(out, ls...)
	}
	return out, nil
}

// RetryDeadLetters drains and replays every shard's primary DLQ; counts sum
// and per-shard failures join. Shards are replayed in index order.
func (s *ShardedStore) RetryDeadLetters(ctx context.Context, opt store.TailOptions) (retried, failed int, err error) {
	var errs []error
	shards := make([]int, 0, len(s.replicaSets))
	for i := range s.replicaSets {
		shards = append(shards, i)
	}
	sort.Ints(shards)
	for _, i := range shards {
		r, f, err := s.primary(i).RetryDeadLetters(ctx, opt)
		retried += r
		failed += f
		if err != nil {
			errs = append(errs, shardErr(i, err))
		}
	}
	return retried, failed, errors.Join(errs...)
}

var _ store.TailIngester = (*ShardedStore)(nil)
