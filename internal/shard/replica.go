package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/store"
)

// This file implements the replica set: the R store.Store copies behind one
// logical shard and the resilient read path over them. Reads are
// primary-preferred — the primary holds the freshest data (single-run
// writers land there first; followers catch up at checkpoints) — and fail
// over to followers when the primary errors, its breaker is open, or an
// attempt stalls past the policy's attempt timeout. Batched scatter probes
// additionally hedge: a follower attempt fires after a p99-based delay even
// without a failure, so one slow replica stops defining the query's tail.
//
// Store calls are synchronous and cannot be interrupted, so a stalled
// attempt is abandoned, not cancelled: the caller moves on (next replica, or
// the context's deadline) while the attempt finishes in a background
// goroutine whose result lands in a buffered channel and whose latency and
// error still feed the replica's breaker.

// errReplicaKilled is what calls against a chaos-killed replica fail with.
var errReplicaKilled = errors.New("shard: replica killed (chaos)")

// replica is one physical copy of a logical shard.
type replica struct {
	st *store.Store
	br *resilience.Breaker

	// Chaos hooks, used by failure drills, the chaos harness and the
	// failover experiment: down forces every call to fail fast; gate, when
	// non-nil, blocks every call until the channel is closed.
	down atomic.Bool
	gate atomic.Pointer[chan struct{}]
}

// call runs fn against this replica, honoring the chaos hooks and feeding
// the breaker. A store.ErrUnknownRun is a correct answer from a healthy
// replica, not a fault — it feeds the breaker as a success.
func (r *replica) call(fn func(*store.Store) (any, error)) (any, error) {
	if gp := r.gate.Load(); gp != nil {
		<-*gp
	}
	if r.down.Load() {
		r.br.Record(0, errReplicaKilled)
		return nil, errReplicaKilled
	}
	t0 := time.Now()
	v, err := fn(r.st)
	d := time.Since(t0)
	if err != nil && errors.Is(err, store.ErrUnknownRun) {
		r.br.Record(d, nil)
	} else {
		r.br.Record(d, err)
	}
	return v, err
}

// replicaSet is the resilient face of one logical shard.
type replicaSet struct {
	owner *ShardedStore
	shard int
	reps  []*replica // reps[0] is the primary
	hedge *resilience.HedgeTracker
}

func (rs *replicaSet) primary() *store.Store { return rs.reps[0].st }

// isSemantic reports whether an error is a correct per-run answer rather
// than a replica fault; semantic errors from the primary surface immediately
// instead of triggering failover (a follower cannot answer them better — at
// best it is stale and wrong).
func isSemantic(err error) bool {
	return errors.Is(err, store.ErrUnknownRun) || errors.Is(err, store.ErrDuplicateRun)
}

// unavailable wraps the accumulated attempt errors into the shard's
// "all replicas exhausted" failure.
func (rs *replicaSet) unavailable(attempts []error) error {
	return resilience.Unavailable(
		fmt.Sprintf("shard %d: all %d replica(s) unavailable", rs.shard, len(rs.reps)),
		attempts...)
}

type attemptRes struct {
	i   int
	v   any
	err error
}

// read runs fn against the replica set: primary first, failover on
// error/breaker-open/stall, optional hedging. The single-replica,
// no-deadline case runs inline (no goroutine) — the common unreplicated
// configuration pays nothing for the machinery.
func (rs *replicaSet) read(ctx context.Context, hedged bool, fn func(*store.Store) (any, error)) (any, error) {
	if len(rs.reps) == 1 && (ctx == nil || ctx.Done() == nil) {
		v, err := rs.reps[0].call(fn)
		if err == nil || isSemantic(err) {
			return v, err
		}
		return nil, rs.unavailable([]error{fmt.Errorf("replica 0: %w", err)})
	}
	return rs.readEngine(ctx, hedged, fn)
}

func (rs *replicaSet) readEngine(ctx context.Context, hedged bool, fn func(*store.Store) (any, error)) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pol := rs.owner.policy
	ch := make(chan attemptRes, len(rs.reps)) // buffered: abandoned attempts drain without a reader
	var (
		next     int   // next replica in preference order
		skipped  []int // breaker-open replicas, kept as last resorts
		launched int
		pending  int
		errs     []error
	)
	// candidate returns the next replica worth trying: preference order,
	// breaker-open ones deferred to the end (total unavailability is worse
	// than probing a tripped breaker).
	candidate := func() int {
		for next < len(rs.reps) {
			i := next
			next++
			if rs.reps[i].br.Allow() {
				return i
			}
			obsBreakerOpen.Add(1)
			skipped = append(skipped, i)
		}
		if len(skipped) > 0 {
			i := skipped[0]
			skipped = skipped[1:]
			return i
		}
		return -1
	}
	launch := func(i int) {
		launched++
		pending++
		go func() {
			v, err := rs.reps[i].call(fn)
			ch <- attemptRes{i: i, v: v, err: err}
		}()
	}

	launch(candidate()) // always >= 0: every replica is at worst a last resort

	var hedgeC <-chan time.Time
	if hedged && rs.owner.hedgeOn && len(rs.reps) > 1 {
		ht := time.NewTimer(rs.hedge.Delay())
		defer ht.Stop()
		hedgeC = ht.C
	}
	attemptT := time.NewTimer(pol.AttemptTimeout)
	defer attemptT.Stop()
	resetAttempt := func() {
		if !attemptT.Stop() {
			select {
			case <-attemptT.C:
			default:
			}
		}
		attemptT.Reset(pol.AttemptTimeout)
	}
	var opC <-chan time.Time
	if _, ok := ctx.Deadline(); !ok {
		ot := time.NewTimer(pol.OpTimeout)
		defer ot.Stop()
		opC = ot.C
	}

	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return r.v, nil
			}
			if r.i == 0 && isSemantic(r.err) {
				return nil, r.err
			}
			errs = append(errs, fmt.Errorf("replica %d: %w", r.i, r.err))
			if i := candidate(); i >= 0 {
				obsFailover.Add(1)
				launch(i)
				resetAttempt()
			} else if pending == 0 {
				return nil, rs.unavailable(errs)
			}
		case <-hedgeC:
			hedgeC = nil
			if i := candidate(); i >= 0 {
				obsHedge.Add(1)
				launch(i)
			}
		case <-attemptT.C:
			if i := candidate(); i >= 0 {
				obsFailover.Add(1)
				launch(i)
				resetAttempt()
			}
			// Nothing left to try: wait for a pending attempt, the operation
			// bound, or the caller's deadline.
		case <-opC:
			return nil, rs.unavailable(append(errs,
				fmt.Errorf("shard %d: operation timeout after %s with %d attempt(s) in flight", rs.shard, pol.OpTimeout, pending)))
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// replicaRead is the typed wrapper every query path goes through.
func replicaRead[T any](ctx context.Context, rs *replicaSet, hedged bool, fn func(*store.Store) (T, error)) (T, error) {
	t0 := time.Now()
	v, err := rs.read(ctx, hedged, func(st *store.Store) (any, error) { return fn(st) })
	if err != nil {
		var zero T
		return zero, err
	}
	rs.hedge.Observe(time.Since(t0))
	return v.(T), nil
}

// syncFollowers brings every follower to the primary's run set by checkpoint
// copy: runs missing on a follower are copied whole (LoadTrace from the
// primary, StoreTrace into the follower); runs the primary no longer has are
// deleted. It runs at open and at every Checkpoint, so single-run writers —
// which land on the primary only, because they hand the engine a live
// collector — converge by the next checkpoint.
//
// The whole pass reads the primary through one pinned snapshot View: the run
// list and every trace copied come from the same committed epoch. Without
// the pin, a DeleteRun or a concurrent ingest racing the catch-up could make
// the pass copy a run it also decided was absent (or load a half-visible
// run); with it, followers converge to a state the primary actually held.
// Runs the primary deletes after the pin are removed on the next sync.
func (rs *replicaSet) syncFollowers() error {
	if len(rs.reps) == 1 {
		return nil
	}
	pri, err := rs.primary().View()
	if err != nil {
		return fmt.Errorf("shard %d: pinning primary snapshot: %w", rs.shard, err)
	}
	defer pri.Close()
	priRuns, err := pri.ListRuns()
	if err != nil {
		return fmt.Errorf("shard %d: listing primary runs: %w", rs.shard, err)
	}
	want := make(map[string]bool, len(priRuns))
	for _, ri := range priRuns {
		want[ri.RunID] = true
	}
	pol := rs.owner.policy
	var errs []error
	for j := 1; j < len(rs.reps); j++ {
		f := rs.reps[j].st
		fRuns, err := f.ListRuns()
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d replica %d: listing runs: %w", rs.shard, j, err))
			continue
		}
		have := make(map[string]bool, len(fRuns))
		for _, ri := range fRuns {
			have[ri.RunID] = true
			if !want[ri.RunID] {
				if _, err := f.DeleteRun(ri.RunID); err != nil {
					errs = append(errs, fmt.Errorf("shard %d replica %d: deleting stray run %q: %w", rs.shard, j, ri.RunID, err))
				}
			}
		}
		for _, ri := range priRuns {
			if have[ri.RunID] {
				continue
			}
			tr, err := pri.LoadTrace(ri.RunID)
			if err != nil {
				errs = append(errs, fmt.Errorf("shard %d: loading run %q for catch-up: %w", rs.shard, ri.RunID, err))
				continue
			}
			if err := pol.Do(nil, func() error { return f.StoreTrace(tr) }); err != nil {
				errs = append(errs, fmt.Errorf("shard %d replica %d: catching up run %q: %w", rs.shard, j, ri.RunID, err))
			}
		}
	}
	return errors.Join(errs...)
}

// --- chaos / failure-drill surface -----------------------------------------

// KillReplica forces every call against one replica of one shard to fail
// fast until ReviveReplica. The chaos harness and the failover experiment
// use it to simulate a dead replica process.
func (s *ShardedStore) KillReplica(shard, replica int) {
	s.replicaSets[shard].reps[replica].down.Store(true)
}

// ReviveReplica undoes KillReplica. The replica's breaker recovers on its
// own through a half-open probe.
func (s *ShardedStore) ReviveReplica(shard, replica int) {
	s.replicaSets[shard].reps[replica].down.Store(false)
}

// StallReplica blocks every call against one replica until the returned
// release function runs (idempotent). It simulates a hung disk: the call
// neither fails nor returns, so only deadlines and failover make progress.
func (s *ShardedStore) StallReplica(shard, replica int) (release func()) {
	gate := make(chan struct{})
	rep := s.replicaSets[shard].reps[replica]
	rep.gate.Store(&gate)
	var once sync.Once
	return func() {
		once.Do(func() {
			rep.gate.CompareAndSwap(&gate, nil)
			close(gate)
		})
	}
}

// SetPolicy replaces the resilience policy (attempt/operation timeouts,
// write retries). Zero fields take the package defaults.
func (s *ShardedStore) SetPolicy(p resilience.Policy) { s.policy = p.Normalized() }

// SetHedging enables or disables hedged scatter probes.
func (s *ShardedStore) SetHedging(on bool) { s.hedgeOn = on }

// SetBreakerConfig replaces every replica's breaker with a fresh one built
// from cfg. Intended for configuration before traffic (tests, drills):
// accumulated breaker state is discarded.
func (s *ShardedStore) SetBreakerConfig(cfg resilience.BreakerConfig) {
	for _, rs := range s.replicaSets {
		for _, rep := range rs.reps {
			rep.br = resilience.NewBreaker(cfg)
		}
	}
}

// ReplicaHealth implements store.HealthReporter: one row per replica with
// its role, breaker state, call accounting and committed epoch (a follower
// whose epoch trails its primary's is still catching up). provd's /healthz
// renders it.
func (s *ShardedStore) ReplicaHealth() []store.ReplicaHealth {
	out := make([]store.ReplicaHealth, 0, len(s.replicaSets)*s.manifest.Replicas)
	for i, rs := range s.replicaSets {
		for j, rep := range rs.reps {
			role := "primary"
			if j > 0 {
				role = "follower"
			}
			succ, fail, opens := rep.br.Stats()
			out = append(out, store.ReplicaHealth{
				Shard:     i,
				Replica:   j,
				Role:      role,
				Breaker:   rep.br.State(),
				Down:      rep.down.Load(),
				Successes: succ,
				Failures:  fail,
				Trips:     opens,
				Epoch:     rep.st.Epoch(),
			})
		}
	}
	return out
}

var _ store.HealthReporter = (*ShardedStore)(nil)
