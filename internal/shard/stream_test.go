package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// This file tests the streaming-ingest and snapshot story at the shard
// layer: demuxed tail ingest, context-bounded topology reads (the scatter.go
// replicaRead(context.Background()) regression), the snapshot-fenced
// follower catch-up racing DeleteRun, and the epoch-pinned differential —
// a query pinned at epoch E answers byte-identically before, during and
// after a concurrent ingest burst, across the row, colscan and sharded
// executors.

// interleaveEvents merges per-run feeds round-robin, the worst case for the
// demux (every consecutive event lands on a potentially different shard).
func interleaveEvents(traces []*trace.Trace) []trace.Event {
	streams := make([][]trace.Event, len(traces))
	for i, tr := range traces {
		streams[i] = tr.Events()
	}
	var out []trace.Event
	for progress := true; progress; {
		progress = false
		for i := range streams {
			if len(streams[i]) > 0 {
				out = append(out, streams[i][0])
				streams[i] = streams[i][1:]
				progress = true
			}
		}
	}
	return out
}

// streamInto feeds events through a channel into a TailIngester.
func streamInto(ti store.TailIngester, specs map[string]*workflow.Workflow, events []trace.Event) (store.TailStats, error) {
	ch := make(chan trace.Event)
	go func() {
		defer close(ch)
		for _, ev := range events {
			ch <- ev
		}
	}()
	return ti.TailIngest(context.Background(), ch, store.TailOptions{Specs: specs})
}

func TestShardedTailIngest(t *testing.T) {
	const l, d, nRuns = 3, 3, 8
	traces := testbedTraces(t, l, d, nRuns)
	wf := gen.Testbed(l)
	specs := map[string]*workflow.Workflow{wf.Name: wf}
	runIDs := make([]string, len(traces))
	for i, tr := range traces {
		runIDs[i] = tr.RunID
	}

	single, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.IngestTraces(context.Background(), traces, store.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	ipSingle, err := lineage.NewIndexProj(single, wf)
	if err != nil {
		t.Fatal(err)
	}
	idx := value.Ix(1, 1)
	focus := lineage.NewFocus(gen.ListGenName)
	want, err := ipSingle.LineageMultiRun(runIDs, gen.FinalName, "product", idx, focus)
	if err != nil {
		t.Fatal(err)
	}

	sh, err := OpenMemory(4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	events := interleaveEvents(traces)
	stats, err := streamInto(sh, specs, events)
	if err != nil {
		t.Fatalf("sharded TailIngest: %v", err)
	}
	if stats.Applied != len(events) || stats.DeadLettered != 0 {
		t.Fatalf("stats = %+v, want %d applied", stats, len(events))
	}
	if stats.RunsStarted != nRuns || stats.RunsEnded != nRuns {
		t.Fatalf("stats = %+v, want %d runs", stats, nRuns)
	}

	ip, err := lineage.NewIndexProj(sh, wf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip.LineageMultiRun(runIDs, gen.FinalName, "product", idx, focus)
	if err != nil {
		t.Fatalf("query after demuxed ingest: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("demuxed tail ingest diverged from the bulk-loaded baseline")
	}

	// A stray event dead-letters into its owning shard's queue; the
	// aggregated DLQ surfaces it and a retry without its run_start re-fails.
	stray := trace.Event{Kind: trace.EventXform, RunID: "stray", Seq: 7}
	if _, err := streamInto(sh, specs, []trace.Event{stray}); err != nil {
		t.Fatal(err)
	}
	letters, err := sh.ListDeadLetters()
	if err != nil || len(letters) != 1 {
		t.Fatalf("aggregated DLQ = %v (%v), want 1 letter", letters, err)
	}
	retried, failed, err := sh.RetryDeadLetters(context.Background(), store.TailOptions{Specs: specs})
	if err != nil || retried != 0 || failed != 1 {
		t.Fatalf("retry: retried=%d failed=%d err=%v, want 0/1", retried, failed, err)
	}
	letters, _ = sh.ListDeadLetters()
	if len(letters) != 1 || letters[0].Retries != 1 {
		t.Fatalf("after retry: %+v, want one letter with retries=1", letters)
	}
}

// TestTopologyReadsHonorDeadline pins the scatter.go regression: the
// topology and metadata reads must honor the caller's context. With every
// replica of the owning shard stalled (a hung disk), each Ctx read must
// return once its deadline expires — before the stall releases — instead of
// hanging on replicaRead(context.Background()).
func TestTopologyReadsHonorDeadline(t *testing.T) {
	const shards, r = 2, 2
	traces := testbedTraces(t, 3, 3, 4)
	wf := gen.Testbed(3)

	sh, err := OpenMemoryReplicated(shards, r)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if err := sh.IngestTraces(context.Background(), traces, store.IngestOptions{}); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	runID := traces[0].RunID
	victim := sh.ShardOf(runID)
	releases := make([]func(), 0, r)
	for j := 0; j < r; j++ {
		releases = append(releases, sh.StallReplica(victim, j))
	}

	calls := []struct {
		name string
		call func(ctx context.Context) error
	}{
		{"HasRunCtx", func(ctx context.Context) error { _, err := sh.HasRunCtx(ctx, runID); return err }},
		{"XformsByOutputCtx", func(ctx context.Context) error {
			_, err := sh.XformsByOutputCtx(ctx, runID, gen.FinalName, "product", value.Ix(0, 0))
			return err
		}},
		{"XformsByInputCtx", func(ctx context.Context) error {
			_, err := sh.XformsByInputCtx(ctx, runID, gen.FinalName, "product", value.Ix(0, 0))
			return err
		}},
		{"XfersToCtx", func(ctx context.Context) error {
			_, err := sh.XfersToCtx(ctx, runID, gen.FinalName, "product")
			return err
		}},
		{"XfersFromCtx", func(ctx context.Context) error {
			_, err := sh.XfersFromCtx(ctx, runID, gen.FinalName, "product")
			return err
		}},
		{"LoadTraceCtx", func(ctx context.Context) error { _, err := sh.LoadTraceCtx(ctx, runID); return err }},
		{"VerifyCtx", func(ctx context.Context) error { _, err := sh.VerifyCtx(ctx, runID, wf); return err }},
	}
	for _, c := range calls {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		t0 := time.Now()
		err := c.call(ctx)
		elapsed := time.Since(t0)
		cancel()
		if err == nil {
			t.Errorf("%s: succeeded against a fully stalled shard", c.name)
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want deadline exceeded", c.name, err)
		}
		if elapsed > 2*time.Second {
			t.Errorf("%s: took %v, the deadline did not bound the stalled read", c.name, elapsed)
		}
	}
	for _, release := range releases {
		release()
	}
	// Reads recover once the stall lifts.
	ok, err := sh.HasRunCtx(context.Background(), runID)
	if err != nil || !ok {
		t.Fatalf("HasRun after release = %v, %v", ok, err)
	}
	shardWaitNoLeaks(t, baseline)
}

// TestSyncFollowersDeleteRace races DeleteRun against the snapshot-fenced
// follower catch-up: runs land primary-only via streaming ingest, then
// checkpoints (each pinning a primary View for its catch-up pass) run
// concurrently with deletions. The pass must never error, and once quiescent
// a final checkpoint converges every follower to exactly the primary's runs.
func TestSyncFollowersDeleteRace(t *testing.T) {
	const l, d, nRuns = 3, 3, 12
	traces := testbedTraces(t, l, d, nRuns)
	wf := gen.Testbed(l)
	specs := map[string]*workflow.Workflow{wf.Name: wf}

	sh, err := OpenMemoryReplicated(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	// Streamed runs land on primaries only — followers must converge through
	// the fenced catch-up under test.
	if _, err := streamInto(sh, specs, interleaveEvents(traces)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	errCh := make(chan error, nRuns+8)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := sh.Checkpoint(); err != nil {
				errCh <- fmt.Errorf("checkpoint %d during deletes: %w", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < nRuns/2; i++ {
			if _, err := sh.DeleteRun(traces[i].RunID); err != nil {
				errCh <- fmt.Errorf("delete %s: %w", traces[i].RunID, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Quiescent convergence: one more checkpoint, then every follower's run
	// set must equal its primary's, and every surviving run must verify.
	if err := sh.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	for i, rs := range sh.replicaSets {
		priRuns, err := rs.primary().ListRuns()
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(rs.reps); j++ {
			fRuns, err := rs.reps[j].st.ListRuns()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(runSet(priRuns), runSet(fRuns)) {
				t.Fatalf("shard %d replica %d diverged after quiescent checkpoint:\nprimary %v\nfollower %v",
					i, j, runSet(priRuns), runSet(fRuns))
			}
		}
	}
	for i := nRuns / 2; i < nRuns; i++ {
		rep, err := sh.Verify(traces[i].RunID, wf)
		if err != nil {
			t.Fatalf("verify %s: %v", traces[i].RunID, err)
		}
		if !rep.OK() {
			t.Fatalf("run %s failed verification after catch-up race: %+v", traces[i].RunID, rep)
		}
	}
}

func runSet(runs []store.RunInfo) map[string]bool {
	out := make(map[string]bool, len(runs))
	for _, ri := range runs {
		out[ri.RunID] = true
	}
	return out
}

// TestEpochPinnedDifferential is the satellite differential: a query pinned
// at epoch E — a store.View for the row and colscan executors, and
// base-run-only queries against the live sharded store — must answer
// byte-identically before, during and after a concurrent TailIngest burst.
// DIFF_TRIALS scales the sweep for nightly CI; run under -race the during-
// burst queries genuinely race the ingest goroutine.
func TestEpochPinnedDifferential(t *testing.T) {
	trials := diffTrials(4)
	rng := rand.New(rand.NewSource(20260808))
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)

	for trial := 0; trial < trials; trial++ {
		l := 2 + rng.Intn(4)
		d := 2 + rng.Intn(3)
		wf := gen.Testbed(l)
		specs := map[string]*workflow.Workflow{wf.Name: wf}
		mkRuns := func(tag string, n int) ([]*trace.Trace, []string) {
			traces := make([]*trace.Trace, n)
			ids := make([]string, n)
			for r := 0; r < n; r++ {
				ids[r] = fmt.Sprintf("t%d-%s%03d", trial, tag, r)
				_, tr, err := eng.RunTrace(wf, ids[r], gen.TestbedInputs(d))
				if err != nil {
					t.Fatalf("trial %d: engine: %v", trial, err)
				}
				traces[r] = tr
			}
			return traces, ids
		}
		base, baseIDs := mkRuns("base", 3)
		burst, _ := mkRuns("burst", 3)
		idx := value.Ix(rng.Intn(d), rng.Intn(d))
		focus := lineage.NewFocus(gen.ListGenName)

		single, err := store.OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		if err := single.IngestTraces(context.Background(), base, store.IngestOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := single.BuildColumnSegments(); err != nil {
			t.Fatal(err)
		}
		sh, err := OpenMemory(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.IngestTraces(context.Background(), base, store.IngestOptions{}); err != nil {
			t.Fatal(err)
		}

		// Pin the view at epoch E, build the executors under test.
		v, err := single.View()
		if err != nil {
			t.Fatal(err)
		}
		ipView, err := lineage.NewIndexProj(v, wf)
		if err != nil {
			t.Fatal(err)
		}
		niView := lineage.NewNaive(v)
		ipShard, err := lineage.NewIndexProj(sh, wf)
		if err != nil {
			t.Fatal(err)
		}

		type executor struct {
			name string
			run  func() (*lineage.Result, error)
		}
		executors := []executor{
			{"view-row", func() (*lineage.Result, error) {
				return ipView.LineageMultiRunParallel(context.Background(), baseIDs,
					gen.FinalName, "product", idx, focus, lineage.MultiRunOptions{Parallelism: 2, ColScan: lineage.ColScanOff})
			}},
			{"view-colscan", func() (*lineage.Result, error) {
				return ipView.LineageMultiRunParallel(context.Background(), baseIDs,
					gen.FinalName, "product", idx, focus, lineage.MultiRunOptions{Parallelism: 2, ColScan: lineage.ColScanOn})
			}},
			{"view-naive", func() (*lineage.Result, error) {
				return niView.LineageMultiRun(baseIDs, gen.FinalName, "product", idx, focus)
			}},
			{"sharded", func() (*lineage.Result, error) {
				return ipShard.LineageMultiRunParallel(context.Background(), baseIDs,
					gen.FinalName, "product", idx, focus, lineage.MultiRunOptions{Parallelism: 2})
			}},
		}

		// Before the burst: every executor agrees; these are the pinned
		// answers everything later must match byte for byte.
		want := make([]*lineage.Result, len(executors))
		for i, ex := range executors {
			res, err := ex.run()
			if err != nil {
				t.Fatalf("trial %d %s before burst: %v", trial, ex.name, err)
			}
			want[i] = res
			if !res.Equal(want[0]) {
				t.Fatalf("trial %d: executors disagree before burst (%s vs %s)", trial, ex.name, executors[0].name)
			}
		}
		pinnedBindings, err := v.InputBindingsBatch(baseIDs, gen.FinalName, "product", idx)
		if err != nil {
			t.Fatal(err)
		}

		// During the burst: stream the burst runs into both stores while the
		// executors re-answer concurrently.
		var ingestWG sync.WaitGroup
		ingestErr := make(chan error, 2)
		ingestWG.Add(2)
		go func() {
			defer ingestWG.Done()
			if _, err := streamInto(single, specs, interleaveEvents(burst)); err != nil {
				ingestErr <- fmt.Errorf("single burst: %w", err)
			}
		}()
		go func() {
			defer ingestWG.Done()
			if _, err := streamInto(sh, specs, interleaveEvents(burst)); err != nil {
				ingestErr <- fmt.Errorf("sharded burst: %w", err)
			}
		}()
		queryErr := make(chan error, len(executors))
		var queryWG sync.WaitGroup
		for i, ex := range executors {
			queryWG.Add(1)
			go func(i int, ex executor) {
				defer queryWG.Done()
				for iter := 0; iter < 4; iter++ {
					res, err := ex.run()
					if err != nil {
						queryErr <- fmt.Errorf("%s during burst: %w", ex.name, err)
						return
					}
					if !res.Equal(want[i]) {
						queryErr <- fmt.Errorf("%s: answer changed during burst (iter %d)", ex.name, iter)
						return
					}
				}
			}(i, ex)
		}
		queryWG.Wait()
		ingestWG.Wait()
		close(ingestErr)
		close(queryErr)
		for err := range ingestErr {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for err := range queryErr {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// After the burst: the pinned answers are unchanged, down to the raw
		// bindings the view serves.
		for i, ex := range executors {
			res, err := ex.run()
			if err != nil {
				t.Fatalf("trial %d %s after burst: %v", trial, ex.name, err)
			}
			if !res.Equal(want[i]) {
				t.Fatalf("trial %d: %s answer changed after burst", trial, ex.name)
			}
		}
		after, err := v.InputBindingsBatch(baseIDs, gen.FinalName, "product", idx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(after, pinnedBindings) {
			t.Fatalf("trial %d: pinned view bindings drifted across the burst", trial)
		}
		if ok, _ := v.HasRun(burst[0].RunID); ok {
			t.Fatalf("trial %d: pinned view sees a burst run", trial)
		}
		ok, err := single.HasRun(burst[0].RunID)
		if err != nil || !ok {
			t.Fatalf("trial %d: live store missing burst run (%v, %v)", trial, ok, err)
		}

		v.Close()
		single.Close()
		sh.Close()
	}
}
