package shard

import (
	"fmt"

	"repro/internal/obs"
)

// Shard-layer metrics. The scatter-gather path records the fan-out of every
// multi-run operation (how many shards a batch actually touched) and the
// wall-clock of each per-shard probe, so the overhead of sharding — and the
// skew between shards — is visible next to the store-layer probe counters.
var (
	// obsFanout records, per scatter-gather operation, the number of shards
	// the batch was routed to (1 ≤ fanout ≤ NumShards).
	obsFanout = obs.H("shard.fanout")
	// obsProbeNS records the wall-clock nanoseconds of each per-shard probe
	// issued by a scatter-gather operation.
	obsProbeNS = obs.H("shard.probe_ns")
	// obsScatterOps counts scatter-gather operations (batched multi-run
	// probes answered by the shard layer).
	obsScatterOps = obs.C("shard.scatter_ops")
	// obsRouted counts single-run operations routed directly to one shard.
	obsRouted = obs.C("shard.routed_ops")
	// obsFailover counts read attempts moved to another replica after a
	// failure or a stalled attempt timeout.
	obsFailover = obs.C("shard.failover")
	// obsHedge counts hedged probes: redundant follower attempts fired on
	// tail latency alone, before the primary attempt failed.
	obsHedge = obs.C("shard.hedge")
	// obsBreakerOpen counts replicas skipped in preference order because
	// their circuit breaker was open.
	obsBreakerOpen = obs.C("shard.breaker_open")
)

// counterHandle is a pre-resolved per-shard counter.
type counterHandle = *obs.Counter

// perShardCounters resolves one routed-operation counter per shard
// (shard.s<i>.ops), so per-shard load — and hash imbalance — shows up in a
// metrics dump without any per-event registry lookups.
func perShardCounters(n int) []counterHandle {
	cs := make([]counterHandle, n)
	for i := range cs {
		cs[i] = obs.C(fmt.Sprintf("shard.s%d.ops", i))
	}
	return cs
}

// noteRouted records one single-run operation landing on shard i.
func (s *ShardedStore) noteRouted(i int) {
	obsRouted.Add(1)
	s.probeCounters[i].Add(1)
}

// noteScatter records one scatter-gather operation touching `fanout` shards.
func (s *ShardedStore) noteScatter(fanout int, shardsTouched []int) {
	obsScatterOps.Add(1)
	if obs.Enabled() {
		obsFanout.Observe(int64(fanout))
	}
	for _, i := range shardsTouched {
		s.probeCounters[i].Add(1)
	}
}
