package shard

import (
	"context"
	"sync"

	"repro/internal/store"
	"repro/internal/value"
)

// Columnar scatter-gather: each shard maintains its own column segments
// (built by its own checkpoints), so the sharded store implements
// store.ColumnScanner by scattering a columnar probe the same way it
// scatters the batched row probes. The multi-run executor's chunks are
// already partition-pruned (PartitionRuns), so in practice every
// ColScanBindings call lands on exactly one shard and scans only that
// shard's segments — the composition of PR 5's pruning with the columnar
// projection. Like the row probes, columnar probes read through the shard's
// replica set with hedging.

var (
	_ store.ColumnScanner        = (*ShardedStore)(nil)
	_ store.ContextColumnScanner = (*ShardedStore)(nil)
)

// ColScanBindings implements store.ColumnScanner by scatter-gather over the
// owning shards; missing lists (runs that must use the row path) concatenate
// across shards.
func (s *ShardedStore) ColScanBindings(runIDs []string, proc, port string, idx value.Index) (map[string][]store.Binding, []string, error) {
	return s.ColScanBindingsCtx(context.Background(), runIDs, proc, port, idx)
}

// ColScanBindingsCtx is the ctx-bounded columnar probe; column-segment loads
// go through the VFS at query time, so the ctx bound is what keeps a stalled
// disk from holding a query past its deadline.
func (s *ShardedStore) ColScanBindingsCtx(ctx context.Context, runIDs []string, proc, port string, idx value.Index) (map[string][]store.Binding, []string, error) {
	out := make(map[string][]store.Binding, len(runIDs))
	if len(runIDs) == 0 {
		return out, nil, nil
	}
	groups := s.groupRuns(runIDs)
	type colRes struct {
		m    map[string][]store.Binding
		miss []string
	}
	parts := make([]colRes, len(s.replicaSets))
	err := eachShard(s, ctx, groups, func(ctx context.Context, i int, runs []string) error {
		r, err := replicaRead(ctx, s.replicaSets[i], true, func(st *store.Store) (colRes, error) {
			m, miss, err := st.ColScanBindings(runs, proc, port, idx)
			return colRes{m: m, miss: miss}, err
		})
		if err != nil {
			return err
		}
		parts[i] = r
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var missing []string
	for i := range parts {
		for r, bs := range parts[i].m {
			out[r] = bs
		}
		missing = append(missing, parts[i].miss...)
	}
	return out, missing, nil
}

// ColScanAvailable reports whether any shard has column segments.
func (s *ShardedStore) ColScanAvailable() bool {
	// Shards answer from in-memory state or one directory stat each; ask
	// the primaries concurrently and take the OR.
	results := make([]bool, len(s.replicaSets))
	var wg sync.WaitGroup
	for i := range s.replicaSets {
		wg.Add(1)
		go func(i int, st *store.Store) {
			defer wg.Done()
			results[i] = st.ColScanAvailable()
		}(i, s.primary(i))
	}
	wg.Wait()
	for _, ok := range results {
		if ok {
			return true
		}
	}
	return false
}
