package shard

import (
	"sync"

	"repro/internal/store"
	"repro/internal/value"
)

// Columnar scatter-gather: each shard maintains its own column segments
// (built by its own checkpoints), so the sharded store implements
// store.ColumnScanner by scattering a columnar probe the same way it
// scatters the batched row probes. The multi-run executor's chunks are
// already partition-pruned (PartitionRuns), so in practice every
// ColScanBindings call lands on exactly one shard and scans only that
// shard's segments — the composition of PR 5's pruning with the columnar
// projection.

var _ store.ColumnScanner = (*ShardedStore)(nil)

// ColScanBindings implements store.ColumnScanner by scatter-gather over the
// owning shards; missing lists (runs that must use the row path) concatenate
// across shards.
func (s *ShardedStore) ColScanBindings(runIDs []string, proc, port string, idx value.Index) (map[string][]store.Binding, []string, error) {
	out := make(map[string][]store.Binding, len(runIDs))
	if len(runIDs) == 0 {
		return out, nil, nil
	}
	groups := s.groupRuns(runIDs)
	if len(groups) == 1 {
		for i, runs := range groups {
			s.noteScatter(1, []int{i})
			return s.shards[i].ColScanBindings(runs, proc, port, idx)
		}
	}
	parts := make([]map[string][]store.Binding, len(s.shards))
	missParts := make([][]string, len(s.shards))
	err := s.eachShard(groups, func(i int, runs []string) error {
		m, miss, err := s.shards[i].ColScanBindings(runs, proc, port, idx)
		if err != nil {
			return err
		}
		parts[i], missParts[i] = m, miss
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var missing []string
	for i := range parts {
		for r, bs := range parts[i] {
			out[r] = bs
		}
		missing = append(missing, missParts[i]...)
	}
	return out, missing, nil
}

// ColScanAvailable reports whether any shard has column segments.
func (s *ShardedStore) ColScanAvailable() bool {
	// Shards answer from in-memory state or one directory stat each; ask
	// them concurrently and take the OR.
	results := make([]bool, len(s.shards))
	var wg sync.WaitGroup
	for i, st := range s.shards {
		wg.Add(1)
		go func(i int, st *store.Store) {
			defer wg.Done()
			results[i] = st.ColScanAvailable()
		}(i, st)
	}
	wg.Wait()
	for _, ok := range results {
		if ok {
			return true
		}
	}
	return false
}
