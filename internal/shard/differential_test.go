package shard

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
)

// This file holds the sharded differential property test: on randomized
// testbed traces, the sharded NI and sharded INDEXPROJ executors must agree
// with the single-store executors for every (shards, parallelism, batch)
// combination. Run under -race it also exercises the scatter-gather
// concurrency (per-shard probes run on goroutines inside each batched
// probe, below the executor's own worker pool).

// diffTrials returns the trial count, overridable via DIFF_TRIALS for the
// nightly CI job which runs a much larger sweep.
func diffTrials(def int) int {
	if s := os.Getenv("DIFF_TRIALS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func TestShardedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized differential test")
	}
	trials := diffTrials(10)
	rng := rand.New(rand.NewSource(20260807))
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)

	for trial := 0; trial < trials; trial++ {
		l := 2 + rng.Intn(5)
		d := 2 + rng.Intn(4)
		nRuns := 2 + rng.Intn(5)
		wf := gen.Testbed(l)
		traces := make([]*trace.Trace, nRuns)
		runIDs := make([]string, nRuns)
		for r := 0; r < nRuns; r++ {
			runIDs[r] = fmt.Sprintf("t%d-run%03d", trial, r)
			_, tr, err := eng.RunTrace(wf, runIDs[r], gen.TestbedInputs(d))
			if err != nil {
				t.Fatalf("trial %d: engine: %v", trial, err)
			}
			traces[r] = tr
		}

		single, err := store.OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		if err := single.IngestTraces(context.Background(), traces, store.IngestOptions{}); err != nil {
			t.Fatal(err)
		}
		ipSingle, err := lineage.NewIndexProj(single, wf)
		if err != nil {
			t.Fatal(err)
		}
		niSingle := lineage.NewNaive(single)

		// Random query target: a recorded element of the final product, a
		// random granularity (full index, row prefix, or whole collection),
		// and a random focus.
		idx := value.Ix(rng.Intn(d), rng.Intn(d))
		switch rng.Intn(3) {
		case 1:
			idx = idx.Truncate(1)
		case 2:
			idx = value.EmptyIndex
		}
		focus := lineage.NewFocus(gen.ListGenName)
		if rng.Intn(2) == 0 {
			for _, p := range wf.Processors {
				focus[p.Name] = true
			}
		}

		want, err := ipSingle.LineageMultiRun(runIDs, gen.FinalName, "product", idx, focus)
		if err != nil {
			t.Fatalf("trial %d: single-store INDEXPROJ: %v", trial, err)
		}
		wantNI, err := niSingle.LineageMultiRun(runIDs, gen.FinalName, "product", idx, focus)
		if err != nil {
			t.Fatalf("trial %d: single-store NI: %v", trial, err)
		}
		if !want.Equal(wantNI) {
			t.Fatalf("trial %d: single-store executors disagree (l=%d d=%d idx=%v)", trial, l, d, idx)
		}

		for _, n := range []int{1, 2, 4} {
			sh, err := OpenMemory(n)
			if err != nil {
				t.Fatal(err)
			}
			if err := sh.IngestTraces(context.Background(), traces, store.IngestOptions{Parallelism: 1 + rng.Intn(4)}); err != nil {
				t.Fatalf("trial %d shards=%d: ingest: %v", trial, n, err)
			}
			ip, err := lineage.NewIndexProj(sh, wf)
			if err != nil {
				t.Fatal(err)
			}
			ni := lineage.NewNaive(sh)

			gotNI, err := ni.LineageMultiRun(runIDs, gen.FinalName, "product", idx, focus)
			if err != nil {
				t.Fatalf("trial %d shards=%d: sharded NI: %v", trial, n, err)
			}
			if !gotNI.Equal(want) {
				t.Fatalf("trial %d: sharded NI (n=%d) diverged (l=%d d=%d idx=%v focus=%v)",
					trial, n, l, d, idx, focus.Names())
			}
			for _, p := range []int{1, 2, 4} {
				for _, batch := range []int{0, 1, 2} { // 0 = default, 1 = per-run, 2 = pairs
					opt := lineage.MultiRunOptions{Parallelism: p, BatchSize: batch}
					got, err := ip.LineageMultiRunParallel(context.Background(), runIDs,
						gen.FinalName, "product", idx, focus, opt)
					if err != nil {
						t.Fatalf("trial %d shards=%d opt=%+v: %v", trial, n, opt, err)
					}
					if !got.Equal(want) {
						t.Fatalf("trial %d: sharded INDEXPROJ (n=%d, %+v) diverged (l=%d d=%d idx=%v focus=%v)",
							trial, n, opt, l, d, idx, focus.Names())
					}
				}
			}
			sh.Close()
		}
		single.Close()
	}
}
