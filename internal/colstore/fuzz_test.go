package colstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/reldb"
)

// FuzzSegmentDecode drives Decode with arbitrary bytes. The contract under
// test: Decode never panics, any accepted input re-encodes canonically, and
// deliberate corruption of an accepted input (truncated tail, flipped tail
// byte, appended garbage) is always rejected with reldb.ErrCorrupt.
func FuzzSegmentDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 10, 200} {
		enc := Build("seed", randRows(rng, n)).Encode()
		f.Add(enc)
		f.Add(enc[:len(enc)/2])                // truncated
		f.Add(append([]byte(nil), enc[1:]...)) // clipped magic
		mut := append([]byte(nil), enc...)
		mut[len(mut)-1] ^= 0xFF // corrupt CRC tail
		f.Add(mut)
	}
	f.Add([]byte(segMagic))
	f.Add([]byte("not a segment"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, reldb.ErrCorrupt) {
				t.Fatalf("Decode error %v does not wrap reldb.ErrCorrupt", err)
			}
			return
		}
		// Re-encoding an accepted segment must reach a stable canonical
		// form: Encode → Decode → Encode is byte-identical. (The input
		// itself may differ from the canonical bytes only through
		// non-minimal varint padding, which Uvarint tolerates.)
		enc := s.Encode()
		s2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded segment does not decode: %v", err)
		}
		if !bytes.Equal(s2.Encode(), enc) {
			t.Fatal("re-encode is not a fixed point")
		}
		// Corrupting the tail or truncating must always be caught.
		if _, err := Decode(data[:len(data)-1]); !errors.Is(err, reldb.ErrCorrupt) {
			t.Fatalf("truncated segment accepted: %v", err)
		}
		mut := append([]byte(nil), data...)
		mut[len(mut)-1] ^= 0x01
		if _, err := Decode(mut); !errors.Is(err, reldb.ErrCorrupt) {
			t.Fatalf("corrupt-tail segment accepted: %v", err)
		}
		if _, err := Decode(append(append([]byte(nil), data...), 0xA5)); !errors.Is(err, reldb.ErrCorrupt) {
			t.Fatalf("segment with trailing garbage accepted: %v", err)
		}
		// Scans over a decoded segment must stay in bounds for any probe.
		for _, proc := range s.procs {
			for _, port := range s.ports {
				s.ScanPrefix(proc, port, "", nil)
				s.ScanPrefix(proc, port, "000001.", nil)
				s.ScanExact(proc, port, "000001.", nil)
			}
		}
	})
}
