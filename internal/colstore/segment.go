// Package colstore implements an immutable, per-run-partition columnar
// projection of the provenance bindings table: the vectorized counterpart of
// the row store's xin_ppi (proc, port, idx) B-tree index.
//
// One Segment holds every input binding of one run — the run is the
// partition — decomposed into columns: processor and port names are
// dictionary-encoded and run-length-collapsed into a (proc, port) group
// directory, index keys live in one flat fixed-width byte column (the store's
// dotted IdxKey encoding is already fixed width per component, so a padded
// cell supports prefix matching with plain byte compares), and value IDs are
// dictionary-encoded. Per-segment zone maps (the run ID, and the min/max
// processor name) let a multi-run probe skip whole segments without touching
// a column.
//
// Segments are immutable once built; the row store remains the source of
// truth. They serialize to a single CRC-guarded file written through the
// engine's VFS, and a corrupt or truncated file decodes to reldb.ErrCorrupt —
// never a panic — so readers can always fall back to row scans.
package colstore

import (
	"bytes"
	"sort"
)

// Row is one bindings row handed to Build: the (proc, port, idx key, ctx,
// value id) projection of one xform_in row. Key is the store's fixed-width
// dotted index key and must not contain a NUL byte (the column pad).
type Row struct {
	Proc  string
	Port  string
	Key   string
	Ctx   int32
	ValID int64
}

// group is one run of rows sharing a (proc, port) pair: the dictionary-coded
// pair plus the start offset of its rows in the column arrays. Groups are
// sorted by (proc, port), so the per-row processor and port columns collapse
// to this directory (perfect run-length encoding over the sorted layout).
type group struct {
	proc, port uint32
	start      uint32
}

// Segment is the immutable columnar projection of one run's bindings.
type Segment struct {
	runID string

	procs []string // sorted processor dictionary; position = id
	ports []string // sorted port dictionary

	groups []group // (proc, port) directory, sorted; rows of group g are [start_g, start_{g+1})

	keyW int    // fixed key-cell width in bytes (0 when every key is empty)
	keys []byte // nRows * keyW, each cell zero-padded to keyW

	ctxs    []int32  // per-row context depth
	valDict []int64  // sorted distinct value IDs
	valIdx  []uint32 // per-row index into valDict

	nRows int
}

// Build constructs a segment from one run's bindings. The rows must be in
// the row store's per-run insertion order: Build sorts them stably by
// (proc, port, key), which then reproduces exactly the (proc, port, idx,
// rowid) order of the row store's xin_ppi index scan — the property that
// makes columnar probe answers byte-identical to row-scan answers.
func Build(runID string, rows []Row) *Segment {
	sorted := make([]Row, len(rows))
	copy(sorted, rows)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Key < b.Key
	})

	s := &Segment{runID: runID, nRows: len(sorted)}

	procSet := make(map[string]uint32)
	portSet := make(map[string]uint32)
	valSet := make(map[int64]uint32)
	for _, r := range sorted {
		procSet[r.Proc] = 0
		portSet[r.Port] = 0
		valSet[r.ValID] = 0
		if len(r.Key) > s.keyW {
			s.keyW = len(r.Key)
		}
	}
	s.procs = sortedKeys(procSet)
	s.ports = sortedKeys(portSet)
	for i, p := range s.procs {
		procSet[p] = uint32(i)
	}
	for i, p := range s.ports {
		portSet[p] = uint32(i)
	}
	s.valDict = make([]int64, 0, len(valSet))
	for v := range valSet {
		s.valDict = append(s.valDict, v)
	}
	sort.Slice(s.valDict, func(i, j int) bool { return s.valDict[i] < s.valDict[j] })
	for i, v := range s.valDict {
		valSet[v] = uint32(i)
	}

	s.keys = make([]byte, len(sorted)*s.keyW)
	s.ctxs = make([]int32, len(sorted))
	s.valIdx = make([]uint32, len(sorted))
	for i, r := range sorted {
		copy(s.keys[i*s.keyW:(i+1)*s.keyW], r.Key) // remainder stays zero-padded
		s.ctxs[i] = r.Ctx
		s.valIdx[i] = valSet[r.ValID]
		pid, qid := procSet[r.Proc], portSet[r.Port]
		if n := len(s.groups); n == 0 || s.groups[n-1].proc != pid || s.groups[n-1].port != qid {
			s.groups = append(s.groups, group{proc: pid, port: qid, start: uint32(i)})
		}
	}
	return s
}

func sortedKeys(m map[string]uint32) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RunID returns the run this segment projects — the segment's run zone map:
// a per-run partition covers exactly one run, so run pruning is an ID
// comparison.
func (s *Segment) RunID() string { return s.runID }

// NumRows returns the number of binding rows in the segment.
func (s *Segment) NumRows() int { return s.nRows }

// MayContainProc is the processor zone-map check: whether proc falls within
// the segment's [min, max] processor-name range. A false answer proves the
// segment holds no rows for proc, so a probe can skip it without touching a
// column (the caller counts these as zone-map prunes).
func (s *Segment) MayContainProc(proc string) bool {
	if len(s.procs) == 0 {
		return false
	}
	return proc >= s.procs[0] && proc <= s.procs[len(s.procs)-1]
}

// Match is one row produced by a segment scan. Key aliases the segment's
// key column (unpadded); callers must not retain it past the segment.
type Match struct {
	Key   []byte
	Ctx   int32
	ValID int64
}

// dictID returns the dictionary position of name, or false when absent.
func dictID(dict []string, name string) (uint32, bool) {
	i := sort.SearchStrings(dict, name)
	if i < len(dict) && dict[i] == name {
		return uint32(i), true
	}
	return 0, false
}

// groupBounds returns the row range [start, end) of the (proc, port) group,
// or ok=false when the segment has no such group.
func (s *Segment) groupBounds(proc, port string) (start, end int, ok bool) {
	pid, ok := dictID(s.procs, proc)
	if !ok {
		return 0, 0, false
	}
	qid, ok := dictID(s.ports, port)
	if !ok {
		return 0, 0, false
	}
	g := sort.Search(len(s.groups), func(i int) bool {
		gi := s.groups[i]
		return gi.proc > pid || (gi.proc == pid && gi.port >= qid)
	})
	if g == len(s.groups) || s.groups[g].proc != pid || s.groups[g].port != qid {
		return 0, 0, false
	}
	start = int(s.groups[g].start)
	if g+1 < len(s.groups) {
		end = int(s.groups[g+1].start)
	} else {
		end = s.nRows
	}
	return start, end, true
}

// cell returns row i's padded key cell.
func (s *Segment) cell(i int) []byte { return s.keys[i*s.keyW : (i+1)*s.keyW] }

// trimCell strips a cell's zero padding, yielding the stored key.
func trimCell(cell []byte) []byte {
	if n := bytes.IndexByte(cell, 0); n >= 0 {
		return cell[:n]
	}
	return cell
}

// ScanPrefix appends to dst every row of the (proc, port) group whose key
// extends prefix — the columnar form of the row store's `idx LIKE 'prefix%'`
// probe — and reports how many key cells the loop examined (the caller's
// rows-filtered counter is examined − matched). Keys are sorted within the
// group, so matches are contiguous: the loop runs over the fixed-width key
// column and stops at the first non-match after the match run ends. Rows
// append in column order, which equals the row store's index-scan order.
func (s *Segment) ScanPrefix(proc, port, prefix string, dst []Match) (out []Match, examined int) {
	out = dst
	start, end, ok := s.groupBounds(proc, port)
	if !ok {
		return out, 0
	}
	if prefix == "" {
		for i := start; i < end; i++ {
			out = append(out, s.match(i))
		}
		return out, end - start
	}
	if s.keyW < len(prefix) {
		return out, 0
	}
	p := []byte(prefix)
	matchedAny := false
	for i := start; i < end; i++ {
		examined++
		if bytes.HasPrefix(s.cell(i), p) {
			matchedAny = true
			out = append(out, s.match(i))
		} else if matchedAny {
			break // sorted keys: the contiguous match run has ended
		}
	}
	return out, examined
}

// ScanExact appends the rows whose key equals key exactly (the granularity-
// fallback probe `idx = ?`), with the same contract as ScanPrefix.
func (s *Segment) ScanExact(proc, port, key string, dst []Match) (out []Match, examined int) {
	out = dst
	start, end, ok := s.groupBounds(proc, port)
	if !ok {
		return out, 0
	}
	if s.keyW < len(key) {
		if s.keyW == len(key) && key == "" {
			// keyW == 0: every stored key is empty, so "" matches all rows.
			for i := start; i < end; i++ {
				out = append(out, Match{Ctx: s.ctxs[i], ValID: s.valDict[s.valIdx[i]]})
			}
			return out, end - start
		}
		return out, 0
	}
	k := []byte(key)
	matchedAny := false
	for i := start; i < end; i++ {
		examined++
		cell := s.cell(i)
		// Exact match: the cell starts with key and the remainder is padding.
		if bytes.HasPrefix(cell, k) && (len(k) == s.keyW || cell[len(k)] == 0) {
			matchedAny = true
			out = append(out, s.match(i))
		} else if matchedAny {
			break
		}
	}
	return out, examined
}

func (s *Segment) match(i int) Match {
	m := Match{Ctx: s.ctxs[i], ValID: s.valDict[s.valIdx[i]]}
	if s.keyW > 0 {
		m.Key = trimCell(s.cell(i))
	}
	return m
}
