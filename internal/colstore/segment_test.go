package colstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/reldb"
)

// refScan is the row-at-a-time oracle: filter rows in the segment's sorted
// order with plain string compares.
func refScan(rows []Row, proc, port, key string, exact bool) []Match {
	var out []Match
	for _, r := range rows {
		if r.Proc != proc || r.Port != port {
			continue
		}
		if exact {
			if r.Key != key {
				continue
			}
		} else if len(r.Key) < len(key) || r.Key[:len(key)] != key {
			continue
		}
		out = append(out, Match{Key: []byte(r.Key), Ctx: r.Ctx, ValID: r.ValID})
	}
	return out
}

// sortRows applies Build's ordering so the oracle sees the same row order.
func sortRows(rows []Row) []Row {
	s := Build("oracle", rows)
	var out []Row
	var last Match
	_ = last
	for gi, g := range s.groups {
		end := s.nRows
		if gi+1 < len(s.groups) {
			end = int(s.groups[gi+1].start)
		}
		for i := int(g.start); i < end; i++ {
			out = append(out, Row{
				Proc:  s.procs[g.proc],
				Port:  s.ports[g.port],
				Key:   string(trimCell0(s, i)),
				Ctx:   s.ctxs[i],
				ValID: s.valDict[s.valIdx[i]],
			})
		}
	}
	return out
}

func trimCell0(s *Segment, i int) []byte {
	if s.keyW == 0 {
		return nil
	}
	return trimCell(s.cell(i))
}

func randRows(rng *rand.Rand, n int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		depth := rng.Intn(4)
		key := ""
		for d := 0; d < depth; d++ {
			key += fmt.Sprintf("%06d.", rng.Intn(30))
		}
		rows[i] = Row{
			Proc:  fmt.Sprintf("proc%02d", rng.Intn(6)),
			Port:  fmt.Sprintf("port%d", rng.Intn(3)),
			Key:   key,
			Ctx:   int32(rng.Intn(5)),
			ValID: int64(rng.Intn(40)),
		}
	}
	return rows
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || a[i].Ctx != b[i].Ctx || a[i].ValID != b[i].ValID {
			return false
		}
	}
	return true
}

func TestScansMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows := randRows(rng, rng.Intn(200))
		seg := Build("run1", rows)
		sorted := sortRows(rows)
		probes := []struct {
			proc, port, key string
		}{
			{"proc00", "port0", ""},
			{"proc01", "port1", "000001."},
			{"proc05", "port2", "000002.000003."},
			{"nosuch", "port0", ""},
			{"proc02", "noport", "000001."},
		}
		for p := 0; p < 20; p++ {
			key := ""
			for d := 0; d < rng.Intn(4); d++ {
				key += fmt.Sprintf("%06d.", rng.Intn(30))
			}
			probes = append(probes, struct{ proc, port, key string }{
				fmt.Sprintf("proc%02d", rng.Intn(6)), fmt.Sprintf("port%d", rng.Intn(3)), key,
			})
		}
		for _, pr := range probes {
			got, _ := seg.ScanPrefix(pr.proc, pr.port, pr.key, nil)
			want := refScan(sorted, pr.proc, pr.port, pr.key, false)
			if !matchesEqual(got, want) {
				t.Fatalf("trial %d ScanPrefix(%q,%q,%q): got %v want %v", trial, pr.proc, pr.port, pr.key, got, want)
			}
			got, _ = seg.ScanExact(pr.proc, pr.port, pr.key, nil)
			want = refScan(sorted, pr.proc, pr.port, pr.key, true)
			if !matchesEqual(got, want) {
				t.Fatalf("trial %d ScanExact(%q,%q,%q): got %v want %v", trial, pr.proc, pr.port, pr.key, got, want)
			}
		}
	}
}

func TestZoneMap(t *testing.T) {
	seg := Build("r", []Row{
		{Proc: "bb", Port: "p", Key: "000001.", ValID: 1},
		{Proc: "dd", Port: "p", Key: "000002.", ValID: 2},
	})
	for proc, want := range map[string]bool{
		"aa": false, "bb": true, "cc": true, "dd": true, "ee": false,
	} {
		if got := seg.MayContainProc(proc); got != want {
			t.Errorf("MayContainProc(%q) = %v, want %v", proc, got, want)
		}
	}
	empty := Build("e", nil)
	if empty.MayContainProc("bb") {
		t.Error("empty segment claims it may contain a proc")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		seg := Build(fmt.Sprintf("run-%d", trial), randRows(rng, rng.Intn(300)))
		enc := seg.Encode()
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("trial %d: Decode: %v", trial, err)
		}
		if !bytes.Equal(dec.Encode(), enc) {
			t.Fatalf("trial %d: re-encode differs", trial)
		}
		if dec.RunID() != seg.RunID() || dec.NumRows() != seg.NumRows() {
			t.Fatalf("trial %d: header drift", trial)
		}
		a, _ := seg.ScanPrefix("proc01", "port0", "", nil)
		b, _ := dec.ScanPrefix("proc01", "port0", "", nil)
		if !matchesEqual(a, b) {
			t.Fatalf("trial %d: decoded segment scans differently", trial)
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seg := Build("run-c", randRows(rng, 120))
	enc := seg.Encode()

	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := Decode(enc[:cut]); !errors.Is(err, reldb.ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
	for i := 0; i < len(enc); i += 3 {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); !errors.Is(err, reldb.ErrCorrupt) {
			t.Fatalf("bit flip at %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0x00)); !errors.Is(err, reldb.ErrCorrupt) {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	d := &DiskStore{FS: reldb.OSFS{}, Dir: t.TempDir() + "/colseg"}
	rng := rand.New(rand.NewSource(5))
	seg := Build("run/odd id%", randRows(rng, 50))
	if err := d.Write(seg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := d.Load("run/odd id%")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got == nil || !bytes.Equal(got.Encode(), seg.Encode()) {
		t.Fatal("loaded segment differs")
	}
	if missing, err := d.Load("never-written"); err != nil || missing != nil {
		t.Fatalf("missing segment: (%v, %v), want (nil, nil)", missing, err)
	}
	if err := d.Remove("run/odd id%"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if gone, err := d.Load("run/odd id%"); err != nil || gone != nil {
		t.Fatalf("after Remove: (%v, %v), want (nil, nil)", gone, err)
	}
	if err := d.Remove("never-written"); err != nil {
		t.Fatalf("Remove of missing file: %v", err)
	}
}

func TestDiskStoreRejectsSwappedFile(t *testing.T) {
	d := &DiskStore{FS: reldb.OSFS{}, Dir: t.TempDir()}
	seg := Build("real-run", []Row{{Proc: "p", Port: "q", Key: "000001.", ValID: 9}})
	if err := d.Write(seg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// A valid segment under the wrong file name (e.g. a botched restore)
	// must not be served as another run's data.
	if err := (reldb.OSFS{}).Rename(d.Path("real-run"), d.Path("other-run")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Load("other-run"); !errors.Is(err, reldb.ErrCorrupt) {
		t.Fatalf("Load of swapped file: %v, want ErrCorrupt", err)
	}
}
