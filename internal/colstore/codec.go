package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/reldb"
)

// segMagic versions the on-disk segment format. The layout after the magic:
//
//	runID, proc dictionary, port dictionary, value dictionary,
//	group directory, nRows, keyW, key column bytes,
//	ctx column (zigzag varints), valIdx column (uvarints)
//
// all varint-framed, followed by a 4-byte little-endian CRC32 (IEEE) of
// everything before it. Dictionaries are strictly sorted and the group
// directory strictly increasing, so Decode can validate the invariants the
// scan code relies on and refuse anything else with reldb.ErrCorrupt.
const segMagic = "RELDBCOLSEG\x01"

// decode caps: a segment projects one run's bindings, so any header claiming
// sizes beyond these is corruption, and rejecting early keeps a hostile
// header from driving a huge allocation before the length checks run.
const (
	maxKeyWidth = 1 << 20
	maxDictLen  = 1 << 24
)

// Encode serializes the segment.
func (s *Segment) Encode() []byte {
	buf := make([]byte, 0, len(segMagic)+len(s.keys)+8*s.nRows+64)
	buf = append(buf, segMagic...)
	buf = appendString(buf, s.runID)
	buf = appendUvarint(buf, uint64(len(s.procs)))
	for _, p := range s.procs {
		buf = appendString(buf, p)
	}
	buf = appendUvarint(buf, uint64(len(s.ports)))
	for _, p := range s.ports {
		buf = appendString(buf, p)
	}
	buf = appendUvarint(buf, uint64(len(s.valDict)))
	for _, v := range s.valDict {
		buf = binary.AppendVarint(buf, v)
	}
	buf = appendUvarint(buf, uint64(len(s.groups)))
	for _, g := range s.groups {
		buf = appendUvarint(buf, uint64(g.proc))
		buf = appendUvarint(buf, uint64(g.port))
		buf = appendUvarint(buf, uint64(g.start))
	}
	buf = appendUvarint(buf, uint64(s.nRows))
	buf = appendUvarint(buf, uint64(s.keyW))
	buf = append(buf, s.keys...)
	for _, c := range s.ctxs {
		buf = binary.AppendVarint(buf, int64(c))
	}
	for _, v := range s.valIdx {
		buf = appendUvarint(buf, uint64(v))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// Decode parses an encoded segment, validating the checksum and every
// structural invariant the scan paths rely on. Any truncation, bit flip, or
// inconsistent header yields an error wrapping reldb.ErrCorrupt — never a
// panic — so callers can treat a bad segment file as "absent" and fall back
// to row scans.
func Decode(data []byte) (*Segment, error) {
	if len(data) < len(segMagic)+4 {
		return nil, fmt.Errorf("%w: segment too short (%d bytes)", reldb.ErrCorrupt, len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("%w: bad segment magic", reldb.ErrCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: segment checksum mismatch", reldb.ErrCorrupt)
	}

	r := &segReader{data: body, pos: len(segMagic)}
	s := &Segment{}
	var err error
	if s.runID, err = r.str(); err != nil {
		return nil, err
	}
	if s.procs, err = r.dict("proc"); err != nil {
		return nil, err
	}
	if s.ports, err = r.dict("port"); err != nil {
		return nil, err
	}
	nVals, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nVals > maxDictLen {
		return nil, fmt.Errorf("%w: value dictionary length %d", reldb.ErrCorrupt, nVals)
	}
	s.valDict = make([]int64, nVals)
	for i := range s.valDict {
		if s.valDict[i], err = r.varint(); err != nil {
			return nil, err
		}
		if i > 0 && s.valDict[i] <= s.valDict[i-1] {
			return nil, fmt.Errorf("%w: value dictionary not sorted", reldb.ErrCorrupt)
		}
	}

	nGroups, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nGroups > maxDictLen {
		return nil, fmt.Errorf("%w: group directory length %d", reldb.ErrCorrupt, nGroups)
	}
	s.groups = make([]group, nGroups)
	for i := range s.groups {
		g := &s.groups[i]
		var p, q, st uint64
		if p, err = r.uvarint(); err != nil {
			return nil, err
		}
		if q, err = r.uvarint(); err != nil {
			return nil, err
		}
		if st, err = r.uvarint(); err != nil {
			return nil, err
		}
		if p >= uint64(len(s.procs)) || q >= uint64(len(s.ports)) || st > math.MaxUint32 {
			return nil, fmt.Errorf("%w: group %d out of range", reldb.ErrCorrupt, i)
		}
		g.proc, g.port, g.start = uint32(p), uint32(q), uint32(st)
		if i == 0 {
			if g.start != 0 {
				return nil, fmt.Errorf("%w: first group starts at %d", reldb.ErrCorrupt, g.start)
			}
		} else {
			prev := s.groups[i-1]
			if g.proc < prev.proc || (g.proc == prev.proc && g.port <= prev.port) {
				return nil, fmt.Errorf("%w: group directory not sorted", reldb.ErrCorrupt)
			}
			if g.start <= prev.start {
				return nil, fmt.Errorf("%w: group starts not increasing", reldb.ErrCorrupt)
			}
		}
	}

	nRows, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	keyW, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nRows > uint64(len(body)) || keyW > maxKeyWidth {
		return nil, fmt.Errorf("%w: segment header claims %d rows, key width %d", reldb.ErrCorrupt, nRows, keyW)
	}
	s.nRows = int(nRows)
	s.keyW = int(keyW)
	if nGroups > 0 {
		if nRows == 0 {
			return nil, fmt.Errorf("%w: groups with zero rows", reldb.ErrCorrupt)
		}
		if last := s.groups[nGroups-1].start; uint64(last) >= nRows {
			return nil, fmt.Errorf("%w: group start %d beyond %d rows", reldb.ErrCorrupt, last, nRows)
		}
	} else if nRows != 0 {
		return nil, fmt.Errorf("%w: rows without groups", reldb.ErrCorrupt)
	}
	if s.keys, err = r.bytes(uint64(s.nRows) * uint64(s.keyW)); err != nil {
		return nil, err
	}
	s.ctxs = make([]int32, s.nRows)
	for i := range s.ctxs {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		if v < math.MinInt32 || v > math.MaxInt32 {
			return nil, fmt.Errorf("%w: ctx %d out of range", reldb.ErrCorrupt, v)
		}
		s.ctxs[i] = int32(v)
	}
	s.valIdx = make([]uint32, s.nRows)
	for i := range s.valIdx {
		v, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= nVals {
			return nil, fmt.Errorf("%w: value index %d beyond dictionary", reldb.ErrCorrupt, v)
		}
		s.valIdx[i] = uint32(v)
	}
	if r.pos != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after segment", reldb.ErrCorrupt, len(body)-r.pos)
	}
	return s, nil
}

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// segReader is a bounds-checked cursor over the segment body; every decode
// failure maps to reldb.ErrCorrupt.
type segReader struct {
	data []byte
	pos  int
}

func (r *segReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", reldb.ErrCorrupt, r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *segReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", reldb.ErrCorrupt, r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *segReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.data)-r.pos) {
		return nil, fmt.Errorf("%w: segment needs %d bytes, %d remain", reldb.ErrCorrupt, n, len(r.data)-r.pos)
	}
	out := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

func (r *segReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *segReader) dict(what string) ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxDictLen {
		return nil, fmt.Errorf("%w: %s dictionary length %d", reldb.ErrCorrupt, what, n)
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = r.str(); err != nil {
			return nil, err
		}
		if i > 0 && out[i] <= out[i-1] {
			return nil, fmt.Errorf("%w: %s dictionary not sorted", reldb.ErrCorrupt, what)
		}
	}
	return out, nil
}
