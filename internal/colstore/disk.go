package colstore

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/reldb"
)

// DiskStore persists encoded segments as one file per run inside Dir, doing
// all I/O through a reldb.VFS so the fault-injection filesystem covers
// segment writes exactly like the engine's own snapshot and WAL files.
//
// Writes follow the engine's atomic-replace discipline: write to a temp name,
// sync, rename over the final name, sync the directory. A crash at any point
// leaves either the old file, the new file, or a stray .tmp that Load
// ignores — never a half-written segment visible under the final name (and
// even a torn rename is caught by the CRC, surfacing as reldb.ErrCorrupt).
type DiskStore struct {
	FS  reldb.VFS
	Dir string
}

// Path returns the file a run's segment lives at.
func (d *DiskStore) Path(runID string) string {
	return filepath.Join(d.Dir, encodeRunFile(runID))
}

// Write atomically persists the segment's encoding.
func (d *DiskStore) Write(s *Segment) error {
	if err := d.FS.MkdirAll(d.Dir); err != nil {
		return err
	}
	final := d.Path(s.RunID())
	tmp := final + ".tmp"
	f, err := d.FS.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(s.Encode()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := d.FS.Rename(tmp, final); err != nil {
		return err
	}
	return d.FS.SyncDir(d.Dir)
}

// Load reads and decodes a run's segment. A missing file returns
// (nil, nil); a present but corrupt file returns an error wrapping
// reldb.ErrCorrupt.
func (d *DiskStore) Load(runID string) (*Segment, error) {
	data, err := d.FS.ReadFile(d.Path(runID))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if s.RunID() != runID {
		return nil, fmt.Errorf("%w: segment file for %q holds run %q", reldb.ErrCorrupt, runID, s.RunID())
	}
	return s, nil
}

// Remove deletes a run's segment file; a missing file is not an error.
func (d *DiskStore) Remove(runID string) error {
	err := d.FS.Remove(d.Path(runID))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// encodeRunFile maps a run ID to a safe file name: alphanumerics, '-', '_',
// and '.' pass through, everything else is %XX-escaped (so distinct run IDs
// never collide on disk), with the segment extension appended.
func encodeRunFile(runID string) string {
	out := make([]byte, 0, len(runID)+8)
	for i := 0; i < len(runID); i++ {
		c := runID[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-' || c == '_' || c == '.':
			out = append(out, c)
		default:
			out = append(out, fmt.Sprintf("%%%02X", c)...)
		}
	}
	return string(out) + ".colseg"
}
