package workflow

import (
	"fmt"

	"repro/internal/iter"
)

// Validate checks the structural well-formedness of the workflow:
//
//   - processor names are unique and non-empty, port names unique per side;
//   - workflow-level input/output port names are unique;
//   - every arc references existing ports with correct directionality
//     (sources are processor outputs or workflow inputs; sinks are processor
//     inputs or workflow outputs);
//   - every input port and every workflow output is the sink of at most one
//     arc (Taverna input ports have a single producer);
//   - the processor graph is acyclic;
//   - declared depths are non-negative;
//   - default values on unconnected inputs match the declared depth;
//   - nested dataflows are themselves valid, and composite processors' ports
//     match their sub-workflow's ports by name and depth.
//
// It returns the first problem found.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workflow has no name")
	}
	if err := uniquePortNames("workflow input", w.Inputs); err != nil {
		return err
	}
	if err := uniquePortNames("workflow output", w.Outputs); err != nil {
		return err
	}
	for _, in := range w.Inputs {
		if _, ok := w.Output(in.Name); ok {
			return fmt.Errorf("workflow %q uses %q as both input and output port", w.Name, in.Name)
		}
	}
	for _, p := range w.Inputs {
		if p.DeclaredDepth < 0 {
			return fmt.Errorf("workflow input %q: negative declared depth", p.Name)
		}
	}
	for _, p := range w.Outputs {
		if p.DeclaredDepth < 0 {
			return fmt.Errorf("workflow output %q: negative declared depth", p.Name)
		}
	}

	seen := make(map[string]bool, len(w.Processors))
	for _, p := range w.Processors {
		if p.Name == "" {
			return fmt.Errorf("workflow %q: processor with empty name", w.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("workflow %q: duplicate processor %q", w.Name, p.Name)
		}
		seen[p.Name] = true
		if err := uniquePortNames("input of "+p.Name, p.Inputs); err != nil {
			return err
		}
		if err := uniquePortNames("output of "+p.Name, p.Outputs); err != nil {
			return err
		}
		// Input and output port names must be disjoint: trace bindings
		// identify ports by (processor, port) alone.
		for _, in := range p.Inputs {
			if _, _, ok := p.Output(in.Name); ok {
				return fmt.Errorf("processor %q uses %q as both input and output port", p.Name, in.Name)
			}
		}
		for _, port := range p.Inputs {
			if port.DeclaredDepth < 0 {
				return fmt.Errorf("processor %q input %q: negative declared depth", p.Name, port.Name)
			}
			if port.HasDefault && port.Default.Depth() != port.DeclaredDepth {
				return fmt.Errorf("processor %q input %q: default value depth %d != declared depth %d",
					p.Name, port.Name, port.Default.Depth(), port.DeclaredDepth)
			}
		}
		for _, port := range p.Outputs {
			if port.DeclaredDepth < 0 {
				return fmt.Errorf("processor %q output %q: negative declared depth", p.Name, port.Name)
			}
		}
		tree, err := p.IterTree()
		if err != nil {
			return err
		}
		// The combinator's leaves must cover every input port exactly once.
		if _, err := iter.NewPlanTree(make([]int, len(p.Inputs)), tree); err != nil {
			return fmt.Errorf("processor %q: %w", p.Name, err)
		}
		if p.Sub != nil {
			if err := p.Sub.Validate(); err != nil {
				return fmt.Errorf("nested dataflow %q (processor %q): %w", p.Sub.Name, p.Name, err)
			}
			if err := compositePortsMatch(p); err != nil {
				return err
			}
		}
	}

	sinks := make(map[PortID]bool, len(w.Arcs))
	for _, a := range w.Arcs {
		if err := w.portExists(a.From, true); err != nil {
			return fmt.Errorf("arc %s: %w", a, err)
		}
		if err := w.portExists(a.To, false); err != nil {
			return fmt.Errorf("arc %s: %w", a, err)
		}
		if sinks[a.To] {
			return fmt.Errorf("port %s is the sink of more than one arc", a.To)
		}
		sinks[a.To] = true
	}

	if _, err := w.Toposort(); err != nil {
		return err
	}
	return nil
}

func uniquePortNames(context string, ports []Port) error {
	seen := make(map[string]bool, len(ports))
	for _, p := range ports {
		if p.Name == "" {
			return fmt.Errorf("%s: port with empty name", context)
		}
		if seen[p.Name] {
			return fmt.Errorf("%s: duplicate port %q", context, p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

func compositePortsMatch(p *Processor) error {
	if len(p.Inputs) != len(p.Sub.Inputs) || len(p.Outputs) != len(p.Sub.Outputs) {
		return fmt.Errorf("composite %q: port count differs from sub-workflow %q", p.Name, p.Sub.Name)
	}
	for i, port := range p.Inputs {
		sp := p.Sub.Inputs[i]
		if port.Name != sp.Name || port.DeclaredDepth != sp.DeclaredDepth {
			return fmt.Errorf("composite %q input %d (%q depth %d) does not match sub-workflow port (%q depth %d)",
				p.Name, i, port.Name, port.DeclaredDepth, sp.Name, sp.DeclaredDepth)
		}
	}
	for i, port := range p.Outputs {
		sp := p.Sub.Outputs[i]
		if port.Name != sp.Name || port.DeclaredDepth != sp.DeclaredDepth {
			return fmt.Errorf("composite %q output %d (%q depth %d) does not match sub-workflow port (%q depth %d)",
				p.Name, i, port.Name, port.DeclaredDepth, sp.Name, sp.DeclaredDepth)
		}
	}
	return nil
}
