// Package workflow implements the Taverna-style dataflow specification model
// of §2.1 of the paper: a directed acyclic graph of black-box processors with
// ordered, depth-typed input and output ports, connected by arcs. A processor
// may itself be a nested dataflow. The package also implements the static
// analyses the lineage algorithms rely on: topological sorting and the
// PROPAGATEDEPTHS algorithm (Alg. 1, §3.1) which computes the actual depth
// and the depth mismatch δs(X) of every port from the specification alone.
package workflow

import (
	"fmt"

	"repro/internal/iter"
	"repro/internal/value"
)

// WorkflowPseudoProc is the processor name under which a workflow's own
// input and output ports appear in arcs, traces and lineage queries,
// mirroring the paper's notation "workflow:paths_per_gene".
const WorkflowPseudoProc = ""

// PortID names a port of a processor within one workflow. Proc is the
// processor name, or WorkflowPseudoProc for the workflow's own ports.
type PortID struct {
	Proc string
	Port string
}

func (id PortID) String() string {
	if id.Proc == WorkflowPseudoProc {
		return "workflow:" + id.Port
	}
	return id.Proc + ":" + id.Port
}

// Port is an input or output port with a declared depth dd(X): 0 for an
// atomic type, k for a k-nested list type. Input ports may carry a default
// value, used when the port is not the destination of any arc (§2.1).
type Port struct {
	Name          string
	DeclaredDepth int
	Default       value.Value
	HasDefault    bool
}

// In constructs an input port declaration.
func In(name string, declaredDepth int) Port {
	return Port{Name: name, DeclaredDepth: declaredDepth}
}

// InDefault constructs an input port declaration with a default value.
func InDefault(name string, declaredDepth int, def value.Value) Port {
	return Port{Name: name, DeclaredDepth: declaredDepth, Default: def, HasDefault: true}
}

// Out constructs an output port declaration.
func Out(name string, declaredDepth int) Port {
	return Port{Name: name, DeclaredDepth: declaredDepth}
}

// Processor is a node of the dataflow graph: a black-box software component
// with ordered input and output ports. Type names the behaviour (resolved by
// the engine's registry at run time); Name identifies this instance within
// its workflow. If Sub is non-nil the processor is a nested dataflow whose
// own input/output ports must match Inputs/Outputs by name.
type Processor struct {
	Name    string
	Type    string
	Inputs  []Port
	Outputs []Port
	Sub     *Workflow
	// Dot selects the flat dot ("zip") iteration combinator of footnote 7
	// for this processor instead of the default cross product: iterated
	// inputs are combined pairwise and share one output index.
	Dot bool
	// Iter, when set, gives the full combinator expression over the input
	// ports (footnote 7's "complex expressions"), overriding Dot. Leaves
	// name input ports; internal nodes combine children with cross or dot.
	Iter *IterSpec
}

// IterSpec is a combinator expression over a processor's input ports: a
// leaf (Port set) or an internal node combining Kids with the cross product
// (Dot false) or the dot product (Dot true).
type IterSpec struct {
	Port string
	Dot  bool
	Kids []*IterSpec
}

// IterLeaf builds a leaf referencing an input port by name.
func IterLeaf(port string) *IterSpec { return &IterSpec{Port: port} }

// IterCross combines sub-expressions with the cross product.
func IterCross(kids ...*IterSpec) *IterSpec { return &IterSpec{Kids: kids} }

// IterDot combines sub-expressions with the dot product.
func IterDot(kids ...*IterSpec) *IterSpec { return &IterSpec{Dot: true, Kids: kids} }

// IterTree normalizes the processor's iteration combinator to a
// position-based tree: the explicit Iter expression if present, else the
// flat cross (or, with Dot set, flat dot) over all inputs in order.
func (p *Processor) IterTree() (*iter.Node, error) {
	if p.Iter == nil {
		kids := make([]*iter.Node, len(p.Inputs))
		for i := range p.Inputs {
			kids[i] = iter.LeafNode(i)
		}
		if p.Dot {
			return iter.DotNode(kids...), nil
		}
		return iter.CrossNode(kids...), nil
	}
	var convert func(s *IterSpec) (*iter.Node, error)
	convert = func(s *IterSpec) (*iter.Node, error) {
		if s == nil {
			return nil, fmt.Errorf("processor %q: nil iteration node", p.Name)
		}
		if len(s.Kids) == 0 {
			if s.Port == "" {
				return nil, fmt.Errorf("processor %q: iteration leaf without a port", p.Name)
			}
			_, pos, ok := p.Input(s.Port)
			if !ok {
				return nil, fmt.Errorf("processor %q: iteration leaf references unknown input %q", p.Name, s.Port)
			}
			return iter.LeafNode(pos), nil
		}
		if s.Port != "" {
			return nil, fmt.Errorf("processor %q: iteration node has both a port and children", p.Name)
		}
		kids := make([]*iter.Node, len(s.Kids))
		for i, k := range s.Kids {
			n, err := convert(k)
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		if s.Dot {
			return iter.DotNode(kids...), nil
		}
		return iter.CrossNode(kids...), nil
	}
	return convert(p.Iter)
}

// Input returns the input port with the given name and its position, or
// ok=false if absent.
func (p *Processor) Input(name string) (Port, int, bool) {
	for i, port := range p.Inputs {
		if port.Name == name {
			return port, i, true
		}
	}
	return Port{}, -1, false
}

// Output returns the output port with the given name and its position, or
// ok=false if absent.
func (p *Processor) Output(name string) (Port, int, bool) {
	for i, port := range p.Outputs {
		if port.Name == name {
			return port, i, true
		}
	}
	return Port{}, -1, false
}

// IsComposite reports whether the processor is a nested dataflow.
func (p *Processor) IsComposite() bool { return p.Sub != nil }

// Arc is a data dependency from an output port (or a workflow input) to an
// input port (or a workflow output).
type Arc struct {
	From PortID
	To   PortID
}

func (a Arc) String() string { return a.From.String() + " -> " + a.To.String() }

// Workflow is a dataflow specification D = (N, E).
type Workflow struct {
	Name       string
	Inputs     []Port
	Outputs    []Port
	Processors []*Processor
	Arcs       []Arc

	byName map[string]*Processor
}

// New returns an empty workflow with the given name.
func New(name string) *Workflow {
	return &Workflow{Name: name, byName: make(map[string]*Processor)}
}

// AddInput declares a workflow-level input port and returns the workflow for
// chaining.
func (w *Workflow) AddInput(name string, declaredDepth int) *Workflow {
	w.Inputs = append(w.Inputs, Port{Name: name, DeclaredDepth: declaredDepth})
	return w
}

// AddOutput declares a workflow-level output port.
func (w *Workflow) AddOutput(name string, declaredDepth int) *Workflow {
	w.Outputs = append(w.Outputs, Port{Name: name, DeclaredDepth: declaredDepth})
	return w
}

// AddProcessor adds a processor node. Ports are given in order: all inputs,
// then all outputs, distinguished by the constructors In/Out at call sites.
func (w *Workflow) AddProcessor(name, typ string, inputs []Port, outputs []Port) *Processor {
	p := &Processor{Name: name, Type: typ, Inputs: inputs, Outputs: outputs}
	w.Processors = append(w.Processors, p)
	if w.byName == nil {
		w.byName = make(map[string]*Processor)
	}
	w.byName[name] = p
	return p
}

// AddComposite adds a nested-dataflow processor whose ports are derived from
// the sub-workflow's own input and output ports.
func (w *Workflow) AddComposite(name string, sub *Workflow) *Processor {
	inputs := make([]Port, len(sub.Inputs))
	copy(inputs, sub.Inputs)
	outputs := make([]Port, len(sub.Outputs))
	copy(outputs, sub.Outputs)
	p := &Processor{Name: name, Type: "dataflow:" + sub.Name, Inputs: inputs, Outputs: outputs, Sub: sub}
	w.Processors = append(w.Processors, p)
	if w.byName == nil {
		w.byName = make(map[string]*Processor)
	}
	w.byName[name] = p
	return p
}

// Connect adds an arc fromProc:fromPort -> toProc:toPort. Use
// WorkflowPseudoProc ("") as the processor name for workflow-level ports.
func (w *Workflow) Connect(fromProc, fromPort, toProc, toPort string) *Workflow {
	w.Arcs = append(w.Arcs, Arc{
		From: PortID{Proc: fromProc, Port: fromPort},
		To:   PortID{Proc: toProc, Port: toPort},
	})
	return w
}

// Processor returns the processor with the given name, or nil.
func (w *Workflow) Processor(name string) *Processor {
	if w.byName != nil {
		if p, ok := w.byName[name]; ok {
			return p
		}
	}
	for _, p := range w.Processors {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Input returns the workflow-level input port with the given name.
func (w *Workflow) Input(name string) (Port, bool) {
	for _, p := range w.Inputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// Output returns the workflow-level output port with the given name.
func (w *Workflow) Output(name string) (Port, bool) {
	for _, p := range w.Outputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// IncomingArc returns the (unique, by validation) arc whose sink is the given
// port, or ok=false if the port is unconnected.
func (w *Workflow) IncomingArc(to PortID) (Arc, bool) {
	for _, a := range w.Arcs {
		if a.To == to {
			return a, true
		}
	}
	return Arc{}, false
}

// OutgoingArcs returns every arc whose source is the given port.
func (w *Workflow) OutgoingArcs(from PortID) []Arc {
	var out []Arc
	for _, a := range w.Arcs {
		if a.From == from {
			out = append(out, a)
		}
	}
	return out
}

// NumNodes returns the number of processor nodes, counting nested dataflows
// recursively (the "total number of nodes in the graph" parameter of §4.1).
func (w *Workflow) NumNodes() int {
	n := 0
	for _, p := range w.Processors {
		n++
		if p.Sub != nil {
			n += p.Sub.NumNodes()
		}
	}
	return n
}

// rebuildIndex recomputes the name index; used after JSON decoding.
func (w *Workflow) rebuildIndex() {
	w.byName = make(map[string]*Processor, len(w.Processors))
	for _, p := range w.Processors {
		w.byName[p.Name] = p
		if p.Sub != nil {
			p.Sub.rebuildIndex()
		}
	}
}

// portExists checks that id names a real port, in the direction implied by
// asSource (true: the id must be an output port or a workflow input).
func (w *Workflow) portExists(id PortID, asSource bool) error {
	if id.Proc == WorkflowPseudoProc {
		if asSource {
			if _, ok := w.Input(id.Port); !ok {
				return fmt.Errorf("workflow %q has no input port %q", w.Name, id.Port)
			}
		} else {
			if _, ok := w.Output(id.Port); !ok {
				return fmt.Errorf("workflow %q has no output port %q", w.Name, id.Port)
			}
		}
		return nil
	}
	p := w.Processor(id.Proc)
	if p == nil {
		return fmt.Errorf("workflow %q has no processor %q", w.Name, id.Proc)
	}
	if asSource {
		if _, _, ok := p.Output(id.Port); !ok {
			return fmt.Errorf("processor %q has no output port %q", id.Proc, id.Port)
		}
	} else {
		if _, _, ok := p.Input(id.Port); !ok {
			return fmt.Errorf("processor %q has no input port %q", id.Proc, id.Port)
		}
	}
	return nil
}
