package workflow

import (
	"fmt"

	"repro/internal/iter"
)

// Depths holds the result of the PROPAGATEDEPTHS static analysis (Alg. 1,
// §3.1): the actual depth of every port, and the depth mismatch
// δs(X) = depth(X) − dd(X) of every input port, computed from the workflow
// specification alone. Both the execution engine (to drive implicit
// iteration) and the INDEXPROJ lineage algorithm (to invert it) consume this.
type Depths struct {
	wf       *Workflow
	depth    map[PortID]int
	mismatch map[PortID]int
	iterDep  map[string]int        // per-processor iteration depth m(P)
	offsets  map[string][]int      // per-processor index-projection offsets o_i
	plans    map[string]*iter.Plan // per-processor iteration plans
	subs     map[string]*Depths    // depths of nested dataflows, by composite name
}

// PropagateDepths runs Alg. 1 on w. Per the paper's assumptions (§3.1),
// top-level workflow inputs carry values of their declared depth, and every
// processor produces values of its declared output depth per activation, so
// all actual depths are statically determined. The workflow must be valid.
func PropagateDepths(w *Workflow) (*Depths, error) {
	order, err := w.Toposort()
	if err != nil {
		return nil, err
	}
	d := &Depths{
		wf:       w,
		depth:    make(map[PortID]int),
		mismatch: make(map[PortID]int),
		iterDep:  make(map[string]int, len(w.Processors)),
		offsets:  make(map[string][]int, len(w.Processors)),
		plans:    make(map[string]*iter.Plan, len(w.Processors)),
		subs:     make(map[string]*Depths),
	}

	// Assumption 2: top-level inputs are bound to values of declared depth.
	for _, p := range w.Inputs {
		d.depth[PortID{Proc: WorkflowPseudoProc, Port: p.Name}] = p.DeclaredDepth
	}

	for _, proc := range order {
		deltas := make([]int, len(proc.Inputs))
		for i, port := range proc.Inputs {
			id := PortID{Proc: proc.Name, Port: port.Name}
			var dep int
			if arc, ok := w.IncomingArc(id); ok {
				srcDep, ok := d.depth[arc.From]
				if !ok {
					return nil, fmt.Errorf("workflow %q: depth of %s unavailable when processing %s (graph not topologically consistent)",
						w.Name, arc.From, id)
				}
				dep = srcDep
			} else {
				// Rule 1: unconnected ports are bound to defaults of
				// declared depth.
				dep = port.DeclaredDepth
			}
			d.depth[id] = dep
			deltas[i] = dep - port.DeclaredDepth
			d.mismatch[id] = deltas[i]
		}
		// The iteration depth m(P) and the per-port index-projection
		// offsets follow from the processor's combinator expression over
		// the mismatches (flat cross by default; Rule 2's plain sum is the
		// flat-cross case).
		tree, err := proc.IterTree()
		if err != nil {
			return nil, fmt.Errorf("workflow %q: %w", w.Name, err)
		}
		plan, err := iter.NewPlanTree(deltas, tree)
		if err != nil {
			return nil, fmt.Errorf("workflow %q: processor %q: %w", w.Name, proc.Name, err)
		}
		total := plan.IterationDepth()
		d.iterDep[proc.Name] = total
		d.offsets[proc.Name] = plan.Offsets()
		d.plans[proc.Name] = plan

		// A nested dataflow may produce values deeper than its declared
		// output depth (its internal iterations add nesting): use its own
		// propagated output depths as the effective declared depths.
		effDD := func(port Port) (int, error) { return port.DeclaredDepth, nil }
		if proc.Sub != nil {
			sub, err := PropagateDepths(proc.Sub)
			if err != nil {
				return nil, fmt.Errorf("nested dataflow %q: %w", proc.Sub.Name, err)
			}
			d.subs[proc.Name] = sub
			effDD = func(port Port) (int, error) {
				dep, ok := sub.Depth(PortID{Proc: WorkflowPseudoProc, Port: port.Name})
				if !ok {
					return 0, fmt.Errorf("nested dataflow %q has no output %q", proc.Sub.Name, port.Name)
				}
				return dep, nil
			}
		}
		// Rule 2: depth(P:Y) = dd(Y) + Σ max(δs(Xi), 0). The paper writes
		// the plain sum; negative mismatches cause singleton wrapping rather
		// than iteration and contribute no nesting (see DESIGN.md §3).
		for _, port := range proc.Outputs {
			dd, err := effDD(port)
			if err != nil {
				return nil, err
			}
			d.depth[PortID{Proc: proc.Name, Port: port.Name}] = dd + total
		}
	}

	// Workflow outputs take the depth of their producing port.
	for _, p := range w.Outputs {
		id := PortID{Proc: WorkflowPseudoProc, Port: p.Name}
		if arc, ok := w.IncomingArc(id); ok {
			srcDep, ok := d.depth[arc.From]
			if !ok {
				return nil, fmt.Errorf("workflow %q: depth of %s unavailable for output %s", w.Name, arc.From, id)
			}
			d.depth[id] = srcDep
			d.mismatch[id] = srcDep - p.DeclaredDepth
		} else {
			d.depth[id] = p.DeclaredDepth
			d.mismatch[id] = 0
		}
	}
	return d, nil
}

// Workflow returns the workflow these depths were computed for.
func (d *Depths) Workflow() *Workflow { return d.wf }

// Depth returns the statically computed actual depth of the given port.
func (d *Depths) Depth(id PortID) (int, bool) {
	dep, ok := d.depth[id]
	return dep, ok
}

// Mismatch returns δs(X) for an input port (or a workflow output port). It
// is 0 for ports it has no record of.
func (d *Depths) Mismatch(id PortID) int { return d.mismatch[id] }

// IterationDepth returns m(P) = Σ_i max(δs(Xi), 0), the number of implicit
// iteration levels the engine wraps around processor P's declared outputs.
// This equals the length of the per-activation output index q (Prop. 1).
func (d *Depths) IterationDepth(proc string) int { return d.iterDep[proc] }

// InputOffsets returns, for each input port of P in declaration order, the
// offset o_i = Σ_{j<i} max(δs(Xj), 0) at which that port's fragment of an
// output index q begins (index projection rule, Def. 4 / Prop. 1).
func (d *Depths) InputOffsets(proc string) []int { return d.offsets[proc] }

// InputMismatches returns max(δs(Xi), 0) for each input port of P in
// declaration order: the length of each port's fragment of q.
func (d *Depths) InputMismatches(p *Processor) []int {
	out := make([]int, len(p.Inputs))
	for i, port := range p.Inputs {
		if delta := d.mismatch[PortID{Proc: p.Name, Port: port.Name}]; delta > 0 {
			out[i] = delta
		}
	}
	return out
}

// Sub returns the depths of the nested dataflow bound to the named composite
// processor, or nil if the processor is not a composite.
func (d *Depths) Sub(proc string) *Depths { return d.subs[proc] }

// Plan returns the statically-computed iteration plan of a processor: its
// combinator expression instantiated with the propagated depth mismatches.
func (d *Depths) Plan(proc string) *iter.Plan { return d.plans[proc] }

// RawMismatches returns the signed δs(Xi) for each input port of P in
// declaration order (negative values indicate singleton wrapping).
func (d *Depths) RawMismatches(p *Processor) []int {
	out := make([]int, len(p.Inputs))
	for i, port := range p.Inputs {
		out[i] = d.mismatch[PortID{Proc: p.Name, Port: port.Name}]
	}
	return out
}
