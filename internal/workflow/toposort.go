package workflow

import (
	"fmt"
	"sort"
)

// Toposort returns the processors of w in a topological order of the
// data-dependency graph (arcs between processor ports induce edges between
// processors; workflow-level ports do not participate). Ties are broken by
// processor name so the order is deterministic. It returns an error if the
// graph contains a cycle, naming one processor on it.
//
// Alg. 1 (PROPAGATEDEPTHS) requires this order so that the depths of a
// processor's input ports are known before its output depths are computed.
func (w *Workflow) Toposort() ([]*Processor, error) {
	indegree := make(map[string]int, len(w.Processors))
	succ := make(map[string]map[string]bool, len(w.Processors))
	for _, p := range w.Processors {
		indegree[p.Name] = 0
	}
	for _, a := range w.Arcs {
		if a.From.Proc == WorkflowPseudoProc || a.To.Proc == WorkflowPseudoProc {
			continue
		}
		if a.From.Proc == a.To.Proc {
			return nil, fmt.Errorf("workflow %q: self-loop on processor %q", w.Name, a.From.Proc)
		}
		set := succ[a.From.Proc]
		if set == nil {
			set = make(map[string]bool)
			succ[a.From.Proc] = set
		}
		if !set[a.To.Proc] {
			set[a.To.Proc] = true
			indegree[a.To.Proc]++
		}
	}

	// Kahn's algorithm with a deterministic (sorted) ready queue.
	var ready []string
	for name, deg := range indegree {
		if deg == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)

	out := make([]*Processor, 0, len(w.Processors))
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		out = append(out, w.Processor(name))
		next := make([]string, 0, len(succ[name]))
		for s := range succ[name] {
			indegree[s]--
			if indegree[s] == 0 {
				next = append(next, s)
			}
		}
		sort.Strings(next)
		ready = mergeSorted(ready, next)
	}

	if len(out) != len(w.Processors) {
		for name, deg := range indegree {
			if deg > 0 {
				return nil, fmt.Errorf("workflow %q: dependency cycle involving processor %q", w.Name, name)
			}
		}
		return nil, fmt.Errorf("workflow %q: dependency cycle", w.Name)
	}
	return out, nil
}

// mergeSorted merges two sorted string slices into one sorted slice.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
