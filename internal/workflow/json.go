package workflow

import (
	"encoding/json"
	"fmt"

	"repro/internal/value"
)

// JSON serialization of workflow specifications, used by the CLIs to store
// and exchange definitions. Default values are carried in the canonical
// textual value encoding.

type portJSON struct {
	Name    string `json:"name"`
	Depth   int    `json:"depth"`
	Default string `json:"default,omitempty"`
}

type processorJSON struct {
	Name    string        `json:"name"`
	Type    string        `json:"type"`
	Inputs  []portJSON    `json:"inputs,omitempty"`
	Outputs []portJSON    `json:"outputs,omitempty"`
	Sub     *workflowJSON `json:"sub,omitempty"`
	Dot     bool          `json:"dot,omitempty"`
	Iter    *iterJSON     `json:"iter,omitempty"`
}

type iterJSON struct {
	Port string      `json:"port,omitempty"`
	Dot  bool        `json:"dot,omitempty"`
	Kids []*iterJSON `json:"kids,omitempty"`
}

func iterToJSON(s *IterSpec) *iterJSON {
	if s == nil {
		return nil
	}
	out := &iterJSON{Port: s.Port, Dot: s.Dot}
	for _, k := range s.Kids {
		out.Kids = append(out.Kids, iterToJSON(k))
	}
	return out
}

func iterFromJSON(s *iterJSON) *IterSpec {
	if s == nil {
		return nil
	}
	out := &IterSpec{Port: s.Port, Dot: s.Dot}
	for _, k := range s.Kids {
		out.Kids = append(out.Kids, iterFromJSON(k))
	}
	return out
}

type arcJSON struct {
	From string `json:"from"` // "proc:port" or ":port" for workflow ports
	To   string `json:"to"`
}

type workflowJSON struct {
	Name       string          `json:"name"`
	Inputs     []portJSON      `json:"inputs,omitempty"`
	Outputs    []portJSON      `json:"outputs,omitempty"`
	Processors []processorJSON `json:"processors,omitempty"`
	Arcs       []arcJSON       `json:"arcs,omitempty"`
}

func portsToJSON(ports []Port) []portJSON {
	out := make([]portJSON, len(ports))
	for i, p := range ports {
		out[i] = portJSON{Name: p.Name, Depth: p.DeclaredDepth}
		if p.HasDefault {
			out[i].Default = value.Encode(p.Default)
		}
	}
	return out
}

func portsFromJSON(ports []portJSON) ([]Port, error) {
	out := make([]Port, len(ports))
	for i, p := range ports {
		out[i] = Port{Name: p.Name, DeclaredDepth: p.Depth}
		if p.Default != "" {
			v, err := value.Decode(p.Default)
			if err != nil {
				return nil, fmt.Errorf("port %q: bad default: %w", p.Name, err)
			}
			out[i].Default = v
			out[i].HasDefault = true
		}
	}
	return out, nil
}

func portIDString(id PortID) string { return id.Proc + ":" + id.Port }

func parsePortID(s string) (PortID, error) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return PortID{Proc: s[:i], Port: s[i+1:]}, nil
		}
	}
	return PortID{}, fmt.Errorf("malformed port reference %q (want \"proc:port\")", s)
}

func toJSON(w *Workflow) *workflowJSON {
	out := &workflowJSON{
		Name:    w.Name,
		Inputs:  portsToJSON(w.Inputs),
		Outputs: portsToJSON(w.Outputs),
	}
	for _, p := range w.Processors {
		pj := processorJSON{
			Name:    p.Name,
			Type:    p.Type,
			Inputs:  portsToJSON(p.Inputs),
			Outputs: portsToJSON(p.Outputs),
			Dot:     p.Dot,
			Iter:    iterToJSON(p.Iter),
		}
		if p.Sub != nil {
			pj.Sub = toJSON(p.Sub)
		}
		out.Processors = append(out.Processors, pj)
	}
	for _, a := range w.Arcs {
		out.Arcs = append(out.Arcs, arcJSON{From: portIDString(a.From), To: portIDString(a.To)})
	}
	return out
}

func fromJSON(wj *workflowJSON) (*Workflow, error) {
	w := New(wj.Name)
	var err error
	if w.Inputs, err = portsFromJSON(wj.Inputs); err != nil {
		return nil, fmt.Errorf("workflow %q: %w", wj.Name, err)
	}
	if w.Outputs, err = portsFromJSON(wj.Outputs); err != nil {
		return nil, fmt.Errorf("workflow %q: %w", wj.Name, err)
	}
	for _, pj := range wj.Processors {
		inputs, err := portsFromJSON(pj.Inputs)
		if err != nil {
			return nil, fmt.Errorf("processor %q: %w", pj.Name, err)
		}
		outputs, err := portsFromJSON(pj.Outputs)
		if err != nil {
			return nil, fmt.Errorf("processor %q: %w", pj.Name, err)
		}
		p := w.AddProcessor(pj.Name, pj.Type, inputs, outputs)
		p.Dot = pj.Dot
		p.Iter = iterFromJSON(pj.Iter)
		if pj.Sub != nil {
			sub, err := fromJSON(pj.Sub)
			if err != nil {
				return nil, err
			}
			p.Sub = sub
		}
	}
	for _, aj := range wj.Arcs {
		from, err := parsePortID(aj.From)
		if err != nil {
			return nil, err
		}
		to, err := parsePortID(aj.To)
		if err != nil {
			return nil, err
		}
		w.Arcs = append(w.Arcs, Arc{From: from, To: to})
	}
	w.rebuildIndex()
	return w, nil
}

// MarshalJSON encodes the workflow specification.
func (w *Workflow) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(toJSON(w), "", "  ")
}

// UnmarshalJSON decodes a workflow specification. The result is not
// automatically validated; call Validate.
func (w *Workflow) UnmarshalJSON(data []byte) error {
	var wj workflowJSON
	if err := json.Unmarshal(data, &wj); err != nil {
		return err
	}
	dec, err := fromJSON(&wj)
	if err != nil {
		return err
	}
	*w = *dec
	return nil
}
