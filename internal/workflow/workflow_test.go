package workflow

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/value"
)

// fig3 builds the abstract workflow of Fig. 3 of the paper: Q maps elements
// of input list v, R maps atom w to a list, and P consumes one element of a
// (from Q), the whole list c, and one element of b (from R) per activation.
func fig3() *Workflow {
	w := New("fig3")
	w.AddInput("v", 1).AddInput("w", 0).AddInput("c", 1)
	w.AddOutput("y", 2)
	w.AddProcessor("Q", "map", []Port{In("X", 0)}, []Port{Out("Y", 0)})
	w.AddProcessor("R", "tolist", []Port{In("X", 0)}, []Port{Out("Y", 1)})
	w.AddProcessor("P", "combine",
		[]Port{In("X1", 0), In("X2", 1), In("X3", 0)},
		[]Port{Out("Y", 0)})
	w.Connect("", "v", "Q", "X")
	w.Connect("", "w", "R", "X")
	w.Connect("", "c", "P", "X2")
	w.Connect("Q", "Y", "P", "X1")
	w.Connect("R", "Y", "P", "X3")
	w.Connect("P", "Y", "", "y")
	return w
}

func TestValidateFig3(t *testing.T) {
	if err := fig3().Validate(); err != nil {
		t.Fatalf("fig3 invalid: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(w *Workflow)
		want   string
	}{
		{"empty workflow name", func(w *Workflow) { w.Name = "" }, "no name"},
		{"duplicate processor", func(w *Workflow) {
			w.AddProcessor("Q", "map", []Port{In("X", 0)}, []Port{Out("Y", 0)})
		}, "duplicate processor"},
		{"duplicate input port", func(w *Workflow) {
			p := w.Processor("Q")
			p.Inputs = append(p.Inputs, In("X", 0))
		}, "duplicate port"},
		{"duplicate workflow input", func(w *Workflow) { w.AddInput("v", 1) }, "duplicate port"},
		{"arc to unknown processor", func(w *Workflow) {
			w.Connect("Q", "Y", "nosuch", "X")
		}, "no processor"},
		{"arc to unknown port", func(w *Workflow) {
			w.Connect("Q", "Y", "R", "nope")
		}, "no input port"},
		{"arc from input port", func(w *Workflow) {
			w.Connect("Q", "X", "R", "X")
		}, "no output port"},
		{"arc from unknown workflow input", func(w *Workflow) {
			w.Connect("", "nosuch", "R", "X")
		}, "no input port"},
		{"two arcs into one port", func(w *Workflow) {
			w.Connect("R", "Y", "P", "X1")
		}, "more than one arc"},
		{"cycle", func(w *Workflow) {
			w.Processor("Q").Inputs = append(w.Processor("Q").Inputs, In("Z", 0))
			w.Connect("P", "Y", "Q", "Z")
		}, "cycle"},
		{"self loop", func(w *Workflow) {
			w.Processor("Q").Inputs = append(w.Processor("Q").Inputs, In("Z", 0))
			w.Connect("Q", "Y", "Q", "Z")
		}, "self-loop"},
		{"negative depth", func(w *Workflow) {
			w.Processor("Q").Inputs[0].DeclaredDepth = -1
		}, "negative declared depth"},
		{"bad default depth", func(w *Workflow) {
			w.Processor("Q").Inputs[0] = InDefault("X", 0, value.Strs("a"))
		}, "default value depth"},
		{"empty processor name", func(w *Workflow) {
			w.AddProcessor("", "t", nil, nil)
		}, "empty name"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := fig3()
			c.mutate(w)
			err := w.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestToposort(t *testing.T) {
	w := fig3()
	order, err := w.Toposort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, p := range order {
		pos[p.Name] = i
	}
	if len(pos) != 3 {
		t.Fatalf("toposort returned %d processors", len(pos))
	}
	if pos["Q"] > pos["P"] || pos["R"] > pos["P"] {
		t.Errorf("toposort order violates dependencies: %v", pos)
	}
	// Determinism: repeated sorts agree.
	again, err := w.Toposort()
	if err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i].Name != again[i].Name {
			t.Fatalf("toposort not deterministic: %v vs %v", order[i].Name, again[i].Name)
		}
	}
}

func TestToposortChainAndDiamond(t *testing.T) {
	w := New("diamond")
	w.AddInput("in", 0)
	w.AddProcessor("a", "t", []Port{In("x", 0)}, []Port{Out("y", 0)})
	w.AddProcessor("b", "t", []Port{In("x", 0)}, []Port{Out("y", 0)})
	w.AddProcessor("c", "t", []Port{In("x", 0)}, []Port{Out("y", 0)})
	w.AddProcessor("d", "t", []Port{In("x1", 0), In("x2", 0)}, []Port{Out("y", 0)})
	w.Connect("", "in", "a", "x")
	w.Connect("a", "y", "b", "x")
	w.Connect("a", "y", "c", "x")
	w.Connect("b", "y", "d", "x1")
	w.Connect("c", "y", "d", "x2")
	order, err := w.Toposort()
	if err != nil {
		t.Fatal(err)
	}
	if order[0].Name != "a" || order[3].Name != "d" {
		t.Errorf("diamond order = %v", names(order))
	}
}

func names(ps []*Processor) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

func TestPropagateDepthsFig3(t *testing.T) {
	w := fig3()
	d, err := PropagateDepths(w)
	if err != nil {
		t.Fatal(err)
	}
	wantDepth := map[PortID]int{
		{Proc: "", Port: "v"}:   1,
		{Proc: "", Port: "w"}:   0,
		{Proc: "", Port: "c"}:   1,
		{Proc: "Q", Port: "X"}:  1,
		{Proc: "Q", Port: "Y"}:  1, // dd 0 + δ 1
		{Proc: "R", Port: "X"}:  0,
		{Proc: "R", Port: "Y"}:  1, // dd 1 + δ 0
		{Proc: "P", Port: "X1"}: 1,
		{Proc: "P", Port: "X2"}: 1,
		{Proc: "P", Port: "X3"}: 1,
		{Proc: "P", Port: "Y"}:  2, // dd 0 + (1 + 0 + 1)
		{Proc: "", Port: "y"}:   2,
	}
	for id, want := range wantDepth {
		got, ok := d.Depth(id)
		if !ok {
			t.Errorf("no depth recorded for %s", id)
			continue
		}
		if got != want {
			t.Errorf("depth(%s) = %d, want %d", id, got, want)
		}
	}
	wantMismatch := map[PortID]int{
		{Proc: "Q", Port: "X"}:  1,
		{Proc: "R", Port: "X"}:  0,
		{Proc: "P", Port: "X1"}: 1,
		{Proc: "P", Port: "X2"}: 0,
		{Proc: "P", Port: "X3"}: 1,
	}
	for id, want := range wantMismatch {
		if got := d.Mismatch(id); got != want {
			t.Errorf("δs(%s) = %d, want %d", id, got, want)
		}
	}
	if got := d.IterationDepth("P"); got != 2 {
		t.Errorf("m(P) = %d, want 2", got)
	}
	if got := d.IterationDepth("Q"); got != 1 {
		t.Errorf("m(Q) = %d, want 1", got)
	}
	if got := d.IterationDepth("R"); got != 0 {
		t.Errorf("m(R) = %d, want 0", got)
	}
	offs := d.InputOffsets("P")
	if len(offs) != 3 || offs[0] != 0 || offs[1] != 1 || offs[2] != 1 {
		t.Errorf("InputOffsets(P) = %v, want [0 1 1]", offs)
	}
	mism := d.InputMismatches(w.Processor("P"))
	if len(mism) != 3 || mism[0] != 1 || mism[1] != 0 || mism[2] != 1 {
		t.Errorf("InputMismatches(P) = %v, want [1 0 1]", mism)
	}
}

func TestPropagateDepthsNegativeMismatch(t *testing.T) {
	// An atom fed into a port declaring a list: δs = -1, no iteration, and
	// the output depth is not reduced.
	w := New("neg")
	w.AddInput("in", 0)
	w.AddOutput("out", 1)
	w.AddProcessor("p", "t", []Port{In("x", 1)}, []Port{Out("y", 1)})
	w.Connect("", "in", "p", "x")
	w.Connect("p", "y", "", "out")
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := PropagateDepths(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Mismatch(PortID{Proc: "p", Port: "x"}); got != -1 {
		t.Errorf("δs = %d, want -1", got)
	}
	if got := d.IterationDepth("p"); got != 0 {
		t.Errorf("m(p) = %d, want 0", got)
	}
	if got, _ := d.Depth(PortID{Proc: "p", Port: "y"}); got != 1 {
		t.Errorf("depth(p:y) = %d, want 1", got)
	}
	raw := d.RawMismatches(w.Processor("p"))
	if len(raw) != 1 || raw[0] != -1 {
		t.Errorf("RawMismatches = %v, want [-1]", raw)
	}
}

func TestPropagateDepthsUnconnectedInput(t *testing.T) {
	// Unconnected input ports take their declared depth (rule 1 of Alg. 1).
	w := New("unconn")
	w.AddInput("in", 0)
	w.AddOutput("out", 0)
	w.AddProcessor("p", "t",
		[]Port{In("x", 0), InDefault("opt", 1, value.Strs("d"))},
		[]Port{Out("y", 0)})
	w.Connect("", "in", "p", "x")
	w.Connect("p", "y", "", "out")
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := PropagateDepths(w)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Depth(PortID{Proc: "p", Port: "opt"}); got != 1 {
		t.Errorf("depth of unconnected port = %d, want declared 1", got)
	}
	if got := d.Mismatch(PortID{Proc: "p", Port: "opt"}); got != 0 {
		t.Errorf("δs of unconnected port = %d, want 0", got)
	}
}

func TestPropagateDepthsDeepChain(t *testing.T) {
	// Each stage with δ=1 on an atom-consuming port adds one nesting level.
	w := New("chain")
	w.AddInput("in", 1)
	w.AddOutput("out", 3)
	w.AddProcessor("s1", "t", []Port{In("x", 0)}, []Port{Out("y", 1)})
	w.AddProcessor("s2", "t", []Port{In("x", 1)}, []Port{Out("y", 1)})
	w.AddProcessor("s3", "t", []Port{In("x", 0)}, []Port{Out("y", 1)})
	w.Connect("", "in", "s1", "x")  // depth 1 vs dd 0: δ=1 → out depth 2
	w.Connect("s1", "y", "s2", "x") // depth 2 vs dd 1: δ=1 → out depth 2
	w.Connect("s2", "y", "s3", "x") // depth 2 vs dd 0: δ=2 → out depth 3
	w.Connect("s3", "y", "", "out")
	d, err := PropagateDepths(w)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Depth(PortID{Proc: "s1", Port: "y"}); got != 2 {
		t.Errorf("depth(s1:y) = %d, want 2", got)
	}
	if got, _ := d.Depth(PortID{Proc: "s2", Port: "y"}); got != 2 {
		t.Errorf("depth(s2:y) = %d, want 2", got)
	}
	if got := d.IterationDepth("s3"); got != 2 {
		t.Errorf("m(s3) = %d, want 2", got)
	}
	if got, _ := d.Depth(PortID{Proc: "", Port: "out"}); got != 3 {
		t.Errorf("depth(out) = %d, want 3", got)
	}
}

func TestCompositeValidation(t *testing.T) {
	sub := New("inner")
	sub.AddInput("a", 0)
	sub.AddOutput("b", 0)
	sub.AddProcessor("id", "t", []Port{In("x", 0)}, []Port{Out("y", 0)})
	sub.Connect("", "a", "id", "x")
	sub.Connect("id", "y", "", "b")

	w := New("outer")
	w.AddInput("in", 1)
	w.AddOutput("out", 1)
	w.AddComposite("nested", sub)
	w.Connect("", "in", "nested", "a")
	w.Connect("nested", "b", "", "out")
	if err := w.Validate(); err != nil {
		t.Fatalf("composite workflow invalid: %v", err)
	}
	if w.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", w.NumNodes())
	}

	// Composite ports that disagree with the sub-workflow are rejected.
	w.Processor("nested").Inputs[0].DeclaredDepth = 1
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("composite port mismatch not detected: %v", err)
	}
}

func TestCompositeDepths(t *testing.T) {
	sub := New("inner")
	sub.AddInput("a", 0)
	sub.AddOutput("b", 0)
	sub.AddProcessor("id", "t", []Port{In("x", 0)}, []Port{Out("y", 0)})
	sub.Connect("", "a", "id", "x")
	sub.Connect("id", "y", "", "b")

	w := New("outer")
	w.AddInput("in", 1)
	w.AddOutput("out", 1)
	w.AddComposite("nested", sub)
	w.Connect("", "in", "nested", "a")
	w.Connect("nested", "b", "", "out")

	d, err := PropagateDepths(w)
	if err != nil {
		t.Fatal(err)
	}
	// The composite iterates (δ=1 on port a), producing a depth-1 output.
	if got := d.IterationDepth("nested"); got != 1 {
		t.Errorf("m(nested) = %d, want 1", got)
	}
	if got, _ := d.Depth(PortID{Proc: "nested", Port: "b"}); got != 1 {
		t.Errorf("depth(nested:b) = %d, want 1", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sub := New("inner")
	sub.AddInput("a", 0)
	sub.AddOutput("b", 0)
	sub.AddProcessor("id", "t", []Port{In("x", 0)}, []Port{Out("y", 0)})
	sub.Connect("", "a", "id", "x")
	sub.Connect("id", "y", "", "b")

	w := fig3()
	w.AddComposite("nested", sub)
	w.Processor("Q").Inputs[0] = InDefault("X", 0, value.Str("dflt"))
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Workflow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("JSON round trip not stable:\n%s\nvs\n%s", data, data2)
	}
	if back.Processor("nested") == nil || back.Processor("nested").Sub == nil {
		t.Fatal("nested dataflow lost in round trip")
	}
	if !back.Processor("Q").Inputs[0].HasDefault {
		t.Error("default value lost in round trip")
	}
	got, _ := back.Processor("Q").Inputs[0].Default.StringVal()
	if got != "dflt" {
		t.Errorf("default value = %q", got)
	}
}

func TestPortIDParse(t *testing.T) {
	id, err := parsePortID("proc:port")
	if err != nil || id.Proc != "proc" || id.Port != "port" {
		t.Errorf("parsePortID = %v, %v", id, err)
	}
	id, err = parsePortID(":wfport")
	if err != nil || id.Proc != "" || id.Port != "wfport" {
		t.Errorf("parsePortID workflow port = %v, %v", id, err)
	}
	if _, err := parsePortID("nocolon"); err == nil {
		t.Error("malformed port id accepted")
	}
}

func TestPortIDString(t *testing.T) {
	if got := (PortID{Proc: "P", Port: "X"}).String(); got != "P:X" {
		t.Errorf("String = %q", got)
	}
	if got := (PortID{Proc: WorkflowPseudoProc, Port: "in"}).String(); got != "workflow:in" {
		t.Errorf("String = %q", got)
	}
}

func TestArcQueries(t *testing.T) {
	w := fig3()
	if _, ok := w.IncomingArc(PortID{Proc: "P", Port: "X1"}); !ok {
		t.Error("IncomingArc missed existing arc")
	}
	if _, ok := w.IncomingArc(PortID{Proc: "Q", Port: "nope"}); ok {
		t.Error("IncomingArc invented an arc")
	}
	outs := w.OutgoingArcs(PortID{Proc: "Q", Port: "Y"})
	if len(outs) != 1 || outs[0].To.Proc != "P" {
		t.Errorf("OutgoingArcs = %v", outs)
	}
}

func TestIterSpecValidationAndDepths(t *testing.T) {
	w := New("comb")
	w.AddInput("a", 1).AddInput("b", 1).AddInput("c", 2)
	w.AddOutput("out", 2)
	p := w.AddProcessor("mix", "t",
		[]Port{In("x", 0), In("y", 0), In("z", 0)},
		[]Port{Out("r", 0)})
	p.Iter = IterDot(IterCross(IterLeaf("x"), IterLeaf("y")), IterLeaf("z"))
	w.Connect("", "a", "mix", "x")
	w.Connect("", "b", "mix", "y")
	w.Connect("", "c", "mix", "z")
	w.Connect("mix", "r", "", "out")
	if err := w.Validate(); err != nil {
		t.Fatalf("combinator workflow invalid: %v", err)
	}
	d, err := PropagateDepths(w)
	if err != nil {
		t.Fatal(err)
	}
	// m(mix) = max(1+1, 2) = 2 under the dot root.
	if got := d.IterationDepth("mix"); got != 2 {
		t.Errorf("m(mix) = %d, want 2", got)
	}
	offs := d.InputOffsets("mix")
	if offs[0] != 0 || offs[1] != 1 || offs[2] != 0 {
		t.Errorf("offsets = %v", offs)
	}
	if d.Plan("mix") == nil {
		t.Error("no cached plan")
	}

	// Bad specs are rejected by Validate.
	bad := []*IterSpec{
		IterCross(IterLeaf("x"), IterLeaf("y")),                // missing z
		IterCross(IterLeaf("x"), IterLeaf("y"), IterLeaf("q")), // unknown port
		IterCross(IterLeaf("x"), IterLeaf("x"), IterLeaf("z")), // duplicate
		{Port: "x", Kids: []*IterSpec{IterLeaf("y")}},          // port+children
		IterCross(IterLeaf("x"), IterLeaf("y"), IterCross()),   // empty node
		IterCross(IterLeaf("x"), IterLeaf("y"), IterLeaf("")),  // empty leaf
	}
	for i, spec := range bad {
		p.Iter = spec
		if err := w.Validate(); err == nil {
			t.Errorf("bad iter spec %d accepted", i)
		}
	}
}

func TestIterSpecJSONRoundTrip(t *testing.T) {
	w := New("comb")
	w.AddInput("a", 1).AddInput("b", 1)
	w.AddOutput("out", 1)
	p := w.AddProcessor("zip", "t", []Port{In("x", 0), In("y", 0)}, []Port{Out("r", 0)})
	p.Iter = IterDot(IterLeaf("x"), IterLeaf("y"))
	w.Connect("", "a", "zip", "x")
	w.Connect("", "b", "zip", "y")
	w.Connect("zip", "r", "", "out")
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Workflow
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	bp := back.Processor("zip")
	if bp.Iter == nil || !bp.Iter.Dot || len(bp.Iter.Kids) != 2 || bp.Iter.Kids[0].Port != "x" {
		t.Fatalf("Iter after round trip = %+v", bp.Iter)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}
