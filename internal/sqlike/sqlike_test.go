package sqlike

import (
	"database/sql"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/reldb"
)

func TestLexer(t *testing.T) {
	toks, err := lex(`SELECT a, b FROM t WHERE x = 'it''s' AND n = -3 LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	if texts[0] != "SELECT" || kinds[0] != tokKeyword {
		t.Errorf("first token = %v", toks[0])
	}
	found := false
	for _, tok := range toks {
		if tok.kind == tokString && tok.text == "it's" {
			found = true
		}
	}
	if !found {
		t.Error("escaped string literal not lexed")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestParseStatements(t *testing.T) {
	cases := []string{
		`CREATE TABLE t (a TEXT, b INT, c FLOAT, d BLOB)`,
		`CREATE INDEX i ON t (a, b)`,
		`DROP TABLE t`,
		`INSERT INTO t (a, b) VALUES (?, ?), ('x', 3)`,
		`SELECT * FROM t`,
		`SELECT COUNT(*) FROM t WHERE a = ?`,
		`SELECT a, b FROM t WHERE a = 'v' AND b = 2 ORDER BY b DESC, a LIMIT 5`,
		`SELECT a FROM t WHERE a LIKE 'pfx%'`,
		`SELECT a, b FROM t WHERE a = 'v' AND b > 2 AND b <= 9`,
		`DELETE FROM t WHERE b >= 5`,
		`DELETE FROM t WHERE b = 1`,
		`SAVE TO '/tmp/x.db'`,
		`LOAD FROM '/tmp/x.db'`,
		`SELECT * FROM t;`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELEC * FROM t`,
		`CREATE VIEW v`,
		`CREATE TABLE t (a JSONB)`,
		`CREATE TABLE t (a TEXT`,
		`INSERT INTO t (a, b) VALUES (1)`,
		`INSERT t (a) VALUES (1)`,
		`SELECT a FROM t WHERE a LIKE '%suffix'`,
		`SELECT a FROM t WHERE a LIKE 'a%b%'`,
		`SELECT a FROM t WHERE a !! 3`,
		`SELECT * FROM t LIMIT -1`,
		`SELECT * FROM t LIMIT x`,
		`SELECT * FROM t extra`,
		`DELETE t`,
		`SAVE '/x'`,
		`LOAD FROM 3`,
	}
	for _, src := range cases {
		if st, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted as %T", src, st)
		}
	}
}

func TestPlaceholderOrdinals(t *testing.T) {
	st, err := Parse(`INSERT INTO t (a, b, c) VALUES (?, 'lit', ?)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if !ins.Rows[0][0].Placeholder || ins.Rows[0][0].Ordinal != 0 {
		t.Errorf("first placeholder = %+v", ins.Rows[0][0])
	}
	if ins.Rows[0][1].Placeholder {
		t.Error("literal marked as placeholder")
	}
	if !ins.Rows[0][2].Placeholder || ins.Rows[0][2].Ordinal != 1 {
		t.Errorf("second placeholder = %+v", ins.Rows[0][2])
	}
	if NumPlaceholders(st) != 2 {
		t.Errorf("NumPlaceholders = %d", NumPlaceholders(st))
	}
}

func mustExec(t *testing.T, db *sql.DB, query string, args ...any) sql.Result {
	t.Helper()
	res, err := db.Exec(query, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", query, err)
	}
	return res
}

func openTestDB(t *testing.T) *sql.DB {
	t.Helper()
	db, err := sql.Open(DriverName, MemoryDSN())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestEndToEndSQL(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE events (run TEXT, proc TEXT, idx TEXT, val INT)`)
	mustExec(t, db, `CREATE INDEX ev_ix ON events (run, proc, idx)`)

	stmt, err := db.Prepare(`INSERT INTO events (run, proc, idx, val) VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 50; i++ {
		run := "r1"
		if i%2 == 0 {
			run = "r0"
		}
		if _, err := stmt.Exec(run, "P", "["+strings.Repeat("9", i%3+1)+"]", i); err != nil {
			t.Fatal(err)
		}
	}

	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM events WHERE run = ?`, "r0").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("count = %d, want 25", n)
	}

	rows, err := db.Query(`SELECT idx, val FROM events WHERE run = ? AND proc = ? ORDER BY val DESC LIMIT 3`, "r1", "P")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var vals []int
	for rows.Next() {
		var idx string
		var val int
		if err := rows.Scan(&idx, &val); err != nil {
			t.Fatal(err)
		}
		vals = append(vals, val)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []int{49, 47, 45}) {
		t.Errorf("ordered vals = %v", vals)
	}

	// LIKE prefix query.
	if err := db.QueryRow(`SELECT COUNT(*) FROM events WHERE run = 'r0' AND proc = 'P' AND idx LIKE '[99%'`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("LIKE query returned nothing")
	}

	// DELETE with affected rows.
	res := mustExec(t, db, `DELETE FROM events WHERE run = ?`, "r0")
	if aff, _ := res.RowsAffected(); aff != 25 {
		t.Errorf("affected = %d", aff)
	}
	if err := db.QueryRow(`SELECT COUNT(*) FROM events`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("count after delete = %d", n)
	}
}

func TestSQLNullsAndTypes(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (s TEXT, i INT, f FLOAT, b BLOB)`)
	mustExec(t, db, `INSERT INTO t (s, i, f, b) VALUES (?, ?, ?, ?)`, nil, int64(7), 2.5, []byte{1, 2})
	mustExec(t, db, `INSERT INTO t (s, i, f, b) VALUES ('x', NULL, NULL, NULL)`)

	rows, err := db.Query(`SELECT s, i, f, b FROM t ORDER BY i`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var s sql.NullString
		var i sql.NullInt64
		var f sql.NullFloat64
		var b []byte
		if err := rows.Scan(&s, &i, &f, &b); err != nil {
			t.Fatal(err)
		}
		got = append(got, s.String)
		_ = i
		_ = f
		_ = b
	}
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	// Booleans arrive as integers.
	mustExec(t, db, `INSERT INTO t (s, i, f, b) VALUES ('bool', ?, 0.0, ?)`, true, []byte{})
	var i int
	if err := db.QueryRow(`SELECT i FROM t WHERE s = 'bool'`).Scan(&i); err != nil {
		t.Fatal(err)
	}
	if i != 1 {
		t.Errorf("bool stored as %d", i)
	}
}

func TestMultiRowInsert(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a TEXT, n INT)`)
	res := mustExec(t, db, `INSERT INTO t (a, n) VALUES ('x', 1), ('y', 2), (?, ?)`, "z", 3)
	if aff, _ := res.RowsAffected(); aff != 3 {
		t.Errorf("affected = %d", aff)
	}
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM t`).Scan(&n); err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestSharedDSN(t *testing.T) {
	dsn := MemoryDSN()
	a, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	mustExec(t, a, `CREATE TABLE t (a INT)`)
	mustExec(t, a, `INSERT INTO t (a) VALUES (1)`)
	var n int
	if err := b.QueryRow(`SELECT COUNT(*) FROM t`).Scan(&n); err != nil || n != 1 {
		t.Fatalf("shared DSN invisible: %d, %v", n, err)
	}
	// Distinct DSNs are isolated.
	c, err := sql.Open(DriverName, MemoryDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.QueryRow(`SELECT COUNT(*) FROM t`).Scan(&n); err == nil {
		t.Error("fresh DSN sees another database's table")
	}
}

func TestSaveLoadSQL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.db")
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a TEXT)`)
	mustExec(t, db, `INSERT INTO t (a) VALUES ('persisted')`)
	mustExec(t, db, `SAVE TO '`+path+`'`)

	// A fresh database loads the snapshot.
	other := openTestDB(t)
	mustExec(t, other, `LOAD FROM '`+path+`'`)
	var a string
	if err := other.QueryRow(`SELECT a FROM t`).Scan(&a); err != nil || a != "persisted" {
		t.Fatalf("loaded value = %q, %v", a, err)
	}

	// file: DSN loads the snapshot on open.
	fdb, err := sql.Open(DriverName, "file:"+path)
	if err != nil {
		t.Fatal(err)
	}
	defer fdb.Close()
	if err := fdb.QueryRow(`SELECT a FROM t`).Scan(&a); err != nil || a != "persisted" {
		t.Fatalf("file DSN value = %q, %v", a, err)
	}
	Forget("file:" + path)
}

func TestFileDSNNewFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.db")
	db, err := sql.Open(DriverName, "file:"+path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	Forget("file:" + path)
}

func TestBadDSN(t *testing.T) {
	db, err := sql.Open(DriverName, "bogus://x")
	if err != nil {
		t.Fatal(err) // Open is lazy; the error surfaces on first use.
	}
	defer db.Close()
	if err := db.Ping(); err == nil {
		t.Error("bad DSN accepted")
	}
}

func TestExecErrors(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (a TEXT, n INT)`)
	if _, err := db.Exec(`INSERT INTO nosuch (a) VALUES (1)`); err == nil {
		t.Error("insert into missing table accepted")
	}
	if _, err := db.Exec(`INSERT INTO t (nosuch) VALUES (1)`); err == nil {
		t.Error("insert into missing column accepted")
	}
	if _, err := db.Query(`SELECT nosuch FROM t`); err == nil {
		t.Error("projection of missing column accepted")
	}
	if _, err := db.Query(`SELECT * FROM t ORDER BY nosuch`); err == nil {
		t.Error("order by missing column accepted")
	}
	if _, err := db.Query(`SELECT * FROM nosuch`); err == nil {
		t.Error("select from missing table accepted")
	}
	if _, err := db.Exec(`CREATE TABLE t (a TEXT)`); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := db.Exec(`LOAD FROM '/nonexistent/path.db'`); err == nil {
		t.Error("load from missing file accepted")
	}
	// Transactions are accepted as no-ops.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t (a, n) VALUES ('x', 1)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDBFor(t *testing.T) {
	dsn := MemoryDSN()
	db := openSQL(t, dsn)
	mustExec(t, db, `CREATE TABLE t (a INT)`)
	raw, err := DBFor(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.Table("t"); !ok {
		t.Error("DBFor returned a different database")
	}
	if _, err := DBFor("bogus"); err == nil {
		t.Error("DBFor accepted a bad DSN")
	}
}

func openSQL(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestExecDirect(t *testing.T) {
	// Exercise Exec without the database/sql machinery.
	rdb := reldb.NewDB()
	st, err := Parse(`CREATE TABLE t (a TEXT)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(rdb, st, nil); err != nil {
		t.Fatal(err)
	}
	st, _ = Parse(`INSERT INTO t (a) VALUES (?)`)
	if _, err := Exec(rdb, st, nil); err == nil {
		t.Error("missing placeholder args accepted")
	}
	if _, err := Exec(rdb, st, []reldb.Datum{reldb.S("v")}); err != nil {
		t.Fatal(err)
	}
	st, _ = Parse(`SELECT * FROM t`)
	res, err := Exec(rdb, st, nil)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].Str() != "v" {
		t.Fatalf("select = %+v, %v", res, err)
	}
}

func TestRangeQueries(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (grp TEXT, n INT)`)
	mustExec(t, db, `CREATE INDEX t_gn ON t (grp, n)`)
	for i := 0; i < 20; i++ {
		grp := "a"
		if i%2 == 1 {
			grp = "b"
		}
		mustExec(t, db, `INSERT INTO t (grp, n) VALUES (?, ?)`, grp, i)
	}
	var n int
	if err := db.QueryRow(`SELECT COUNT(*) FROM t WHERE grp = 'a' AND n >= 4 AND n < 10`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 3 { // a holds evens: 4, 6, 8
		t.Errorf("range count = %d, want 3", n)
	}
	if err := db.QueryRow(`SELECT COUNT(*) FROM t WHERE n <= 5`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("unindexed range count = %d, want 6", n)
	}
	rows, err := db.Query(`SELECT n FROM t WHERE grp = ? AND n > ? ORDER BY n LIMIT 2`, "b", 10)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []int
	for rows.Next() {
		var v int
		if err := rows.Scan(&v); err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 11 || got[1] != 13 {
		t.Errorf("range rows = %v", got)
	}
	// Type errors surface.
	if _, err := db.Query(`SELECT * FROM t WHERE n > 'x'`); err == nil {
		t.Error("type-mismatched range accepted")
	}
	if _, err := db.Query(`SELECT * FROM t WHERE n > ?`, nil); err == nil {
		t.Error("NULL range accepted")
	}
}

func TestDurableDSN(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dur")
	dsn := "durable:" + dir
	db := openSQL(t, dsn)
	mustExec(t, db, `CREATE TABLE t (a TEXT)`)
	mustExec(t, db, `INSERT INTO t (a) VALUES ('logged')`)
	db.Close()
	Forget(dsn)

	// A fresh handle recovers the state from the write-ahead log.
	db2 := openSQL(t, dsn)
	var a string
	if err := db2.QueryRow(`SELECT a FROM t`).Scan(&a); err != nil || a != "logged" {
		t.Fatalf("recovered value = %q, %v", a, err)
	}
	db2.Close()
	Forget(dsn)
}

func TestAggregates(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (grp TEXT, n INT, f FLOAT)`)
	for i := 1; i <= 6; i++ {
		grp := "a"
		if i > 4 {
			grp = "b"
		}
		mustExec(t, db, `INSERT INTO t (grp, n, f) VALUES (?, ?, ?)`, grp, i, float64(i)/2)
	}
	mustExec(t, db, `INSERT INTO t (grp, n, f) VALUES ('a', NULL, NULL)`)

	var mn, mx, sum int
	var avg float64
	if err := db.QueryRow(`SELECT MIN(n), MAX(n), SUM(n), AVG(n) FROM t WHERE grp = 'a'`).Scan(&mn, &mx, &sum, &avg); err != nil {
		t.Fatal(err)
	}
	if mn != 1 || mx != 4 || sum != 10 || avg != 2.5 {
		t.Errorf("aggregates = %d %d %d %g", mn, mx, sum, avg)
	}
	// COUNT(col) ignores NULLs; COUNT(*) does not.
	var cCol, cStar int
	if err := db.QueryRow(`SELECT COUNT(n), COUNT(*) FROM t WHERE grp = 'a'`).Scan(&cCol, &cStar); err != nil {
		t.Fatal(err)
	}
	if cCol != 4 || cStar != 5 {
		t.Errorf("counts = %d %d", cCol, cStar)
	}
	// SUM over floats.
	var fs float64
	if err := db.QueryRow(`SELECT SUM(f) FROM t WHERE grp = 'b'`).Scan(&fs); err != nil {
		t.Fatal(err)
	}
	if fs != 5.5 {
		t.Errorf("float sum = %g", fs)
	}
	// Empty group: SUM/AVG are NULL, COUNT is 0.
	var nsum sql.NullFloat64
	var zero int
	if err := db.QueryRow(`SELECT SUM(n), COUNT(n) FROM t WHERE grp = 'z'`).Scan(&nsum, &zero); err != nil {
		t.Fatal(err)
	}
	if nsum.Valid || zero != 0 {
		t.Errorf("empty aggregates = %v %d", nsum, zero)
	}
	// Errors.
	if _, err := db.Query(`SELECT SUM(grp) FROM t`); err == nil {
		t.Error("SUM over TEXT accepted")
	}
	if _, err := db.Query(`SELECT MIN(*) FROM t`); err == nil {
		t.Error("MIN(*) accepted")
	}
	if _, err := db.Query(`SELECT MIN(n), grp FROM t`); err == nil {
		t.Error("mixed aggregate and column accepted")
	}
	if _, err := db.Query(`SELECT MAX(nosuch) FROM t`); err == nil {
		t.Error("aggregate over missing column accepted")
	}
}
