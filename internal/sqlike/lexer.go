// Package sqlike implements a small SQL dialect over the reldb storage
// engine and exposes it as a database/sql driver (registered under the name
// "provsql"). It stands in for the MySQL + JDBC stack of the paper's
// implementation: the provenance store issues prepared statements against
// it exactly as the paper's Java implementation did against MySQL.
//
// Supported statements:
//
//	CREATE TABLE t (col TYPE, ...)
//	CREATE INDEX i ON t (col, ...)
//	DROP TABLE t
//	INSERT INTO t (col, ...) VALUES (expr, ...) [, (expr, ...) ...]
//	SELECT * | COUNT(*) | col, ... FROM t
//	       [WHERE col = expr [AND ...] | col LIKE 'prefix%']
//	       [ORDER BY col [ASC|DESC], ...] [LIMIT n]
//	DELETE FROM t [WHERE ...]
//	SAVE TO 'path'        -- snapshot the database
//	LOAD FROM 'path'      -- replace the database with a snapshot
//
// Expressions are literals (strings, numbers, NULL) or ? placeholders.
package sqlike

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokPlaceholder
	tokPunct // ( ) , = * ; < <= > >=
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; strings are unquoted
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of statement"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "INDEX": true, "ON": true, "DROP": true,
	"INSERT": true, "INTO": true, "VALUES": true, "SELECT": true, "FROM": true,
	"WHERE": true, "AND": true, "ORDER": true, "BY": true, "ASC": true,
	"DESC": true, "LIMIT": true, "DELETE": true, "COUNT": true, "NULL": true,
	"LIKE": true, "SAVE": true, "LOAD": true, "TO": true,
	"MIN": true, "MAX": true, "SUM": true, "AVG": true,
}

// lex tokenizes a statement.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '?':
			toks = append(toks, token{kind: tokPlaceholder, text: "?", pos: i})
			i++
		case c == '(' || c == ')' || c == ',' || c == '=' || c == '*' || c == ';':
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{kind: tokPunct, text: op, pos: i})
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= len(src) {
					return nil, fmt.Errorf("sqlike: unterminated string literal at offset %d", start)
				}
				if src[i] == '\'' {
					if i+1 < len(src) && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			i++
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '+' || src[i] == '-') && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: src[start:i], pos: start})
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentPart(src[i]) {
				i++
			}
			word := src[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			return nil, fmt.Errorf("sqlike: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
