package sqlike

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/reldb"
)

// Result is the outcome of executing a statement: a row set for SELECT, an
// affected-row count for everything else.
type Result struct {
	Cols     []string
	Rows     [][]reldb.Datum
	Affected int64
}

// Queryer is the read surface a SELECT executes against: either the live
// database (latest committed state) or a pinned reldb.Snapshot (the state
// at one epoch). Both *reldb.DB and *reldb.Snapshot satisfy it.
type Queryer interface {
	Table(name string) (*reldb.Table, bool)
	Select(table string, preds []reldb.Pred, limit int) ([]reldb.Row, error)
	Count(table string, preds []reldb.Pred) (int, error)
}

var (
	_ Queryer = (*reldb.DB)(nil)
	_ Queryer = (*reldb.Snapshot)(nil)
)

// Exec runs a parsed statement against a database with the given placeholder
// bindings; reads go against the latest committed state.
func Exec(db *reldb.DB, st Stmt, args []reldb.Datum) (*Result, error) {
	return ExecOn(db, db, st, args)
}

// ExecOn is Exec with reads routed through q: a pinned snapshot makes every
// SELECT see one epoch, while mutations still commit to the live database
// (the engine's transactions isolate reads, not writes).
func ExecOn(db *reldb.DB, q Queryer, st Stmt, args []reldb.Datum) (*Result, error) {
	if want := NumPlaceholders(st); want != len(args) {
		return nil, fmt.Errorf("sqlike: statement has %d placeholders, got %d arguments", want, len(args))
	}
	bind := func(e Expr) reldb.Datum {
		if e.Placeholder {
			return args[e.Ordinal]
		}
		return e.Lit
	}

	switch s := st.(type) {
	case *CreateTableStmt:
		if _, err := db.CreateTable(s.Table, s.Schema); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *CreateIndexStmt:
		if err := db.CreateIndex(s.Index, s.Table, s.Cols...); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *DropTableStmt:
		if err := db.DropTable(s.Table); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *InsertStmt:
		tab, ok := db.Table(s.Table)
		if !ok {
			return nil, fmt.Errorf("sqlike: no table %q", s.Table)
		}
		positions := make([]int, len(s.Cols))
		for i, c := range s.Cols {
			pos, ok := tab.Schema.ColIndex(c)
			if !ok {
				return nil, fmt.Errorf("sqlike: table %q has no column %q", s.Table, c)
			}
			positions[i] = pos
		}
		rows := make([]reldb.Row, 0, len(s.Rows))
		for _, exprRow := range s.Rows {
			row := make(reldb.Row, len(tab.Schema))
			for i, e := range exprRow {
				row[positions[i]] = bind(e)
			}
			rows = append(rows, row)
		}
		if err := db.InsertBatch(s.Table, rows); err != nil {
			return nil, err
		}
		return &Result{Affected: int64(len(rows))}, nil

	case *SelectStmt:
		return execSelect(q, s, bind)

	case *DeleteStmt:
		preds, err := conds(s.Where, bind)
		if err != nil {
			return nil, err
		}
		n, err := db.Delete(s.Table, preds)
		if err != nil {
			return nil, err
		}
		return &Result{Affected: int64(n)}, nil

	case *SaveStmt:
		if err := db.Save(s.Path); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *LoadStmt:
		loaded, err := reldb.Load(s.Path)
		if err != nil {
			return nil, err
		}
		db.Adopt(loaded)
		return &Result{}, nil

	default:
		return nil, fmt.Errorf("sqlike: unsupported statement %T", st)
	}
}

func conds(ws []Cond, bind func(Expr) reldb.Datum) ([]reldb.Pred, error) {
	out := make([]reldb.Pred, len(ws))
	for i, c := range ws {
		v := bind(c.Val)
		if c.IsPrefix {
			if v.Type() != reldb.TString {
				return nil, fmt.Errorf("sqlike: LIKE on column %q requires a string", c.Col)
			}
			pfx := v.Str()
			if c.RawPattern {
				var err error
				if pfx, err = likePrefix(pfx); err != nil {
					return nil, err
				}
			}
			out[i] = reldb.Prefix(c.Col, pfx)
		} else {
			switch c.Op {
			case "", "=":
				out[i] = reldb.Eq(c.Col, v)
			case "<":
				out[i] = reldb.Lt(c.Col, v)
			case "<=":
				out[i] = reldb.Le(c.Col, v)
			case ">":
				out[i] = reldb.Gt(c.Col, v)
			case ">=":
				out[i] = reldb.Ge(c.Col, v)
			default:
				return nil, fmt.Errorf("sqlike: unsupported comparison %q", c.Op)
			}
		}
	}
	return out, nil
}

func execSelect(q Queryer, s *SelectStmt, bind func(Expr) reldb.Datum) (*Result, error) {
	preds, err := conds(s.Where, bind)
	if err != nil {
		return nil, err
	}
	if s.CountAll {
		n, err := q.Count(s.Table, preds)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: []string{"count"}, Rows: [][]reldb.Datum{{reldb.I(int64(n))}}}, nil
	}
	if len(s.Aggs) > 0 {
		return execAggregates(q, s, preds)
	}

	tab, ok := q.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("sqlike: no table %q", s.Table)
	}
	// When ordering, the limit must be applied after the sort.
	fetchLimit := s.Limit
	if len(s.OrderBy) > 0 {
		fetchLimit = -1
	}
	rows, err := q.Select(s.Table, preds, fetchLimit)
	if err != nil {
		return nil, err
	}

	if len(s.OrderBy) > 0 {
		keys := make([]int, len(s.OrderBy))
		for i, k := range s.OrderBy {
			pos, ok := tab.Schema.ColIndex(k.Col)
			if !ok {
				return nil, fmt.Errorf("sqlike: table %q has no column %q", s.Table, k.Col)
			}
			keys[i] = pos
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for i, pos := range keys {
				c := rows[a][pos].Compare(rows[b][pos])
				if c == 0 {
					continue
				}
				if s.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if s.Limit >= 0 && len(rows) > s.Limit {
			rows = rows[:s.Limit]
		}
	}

	// Projection.
	var colNames []string
	var positions []int
	if s.Cols == nil {
		colNames = make([]string, len(tab.Schema))
		positions = make([]int, len(tab.Schema))
		for i, c := range tab.Schema {
			colNames[i] = c.Name
			positions[i] = i
		}
	} else {
		colNames = s.Cols
		positions = make([]int, len(s.Cols))
		for i, c := range s.Cols {
			pos, ok := tab.Schema.ColIndex(c)
			if !ok {
				return nil, fmt.Errorf("sqlike: table %q has no column %q", s.Table, c)
			}
			positions[i] = pos
		}
	}
	out := make([][]reldb.Datum, len(rows))
	for i, row := range rows {
		proj := make([]reldb.Datum, len(positions))
		for j, pos := range positions {
			proj[j] = row[pos]
		}
		out[i] = proj
	}
	return &Result{Cols: colNames, Rows: out}, nil
}

// execAggregates evaluates a SELECT of aggregate functions in one scan.
func execAggregates(q Queryer, s *SelectStmt, preds []reldb.Pred) (*Result, error) {
	tab, ok := q.Table(s.Table)
	if !ok {
		return nil, fmt.Errorf("sqlike: no table %q", s.Table)
	}
	type accum struct {
		count int64
		sum   float64
		min   reldb.Datum
		max   reldb.Datum
		isInt bool
	}
	positions := make([]int, len(s.Aggs))
	accums := make([]accum, len(s.Aggs))
	cols := make([]string, len(s.Aggs))
	for i, a := range s.Aggs {
		if a.Star {
			positions[i] = -1
			cols[i] = "count"
			continue
		}
		pos, ok := tab.Schema.ColIndex(a.Col)
		if !ok {
			return nil, fmt.Errorf("sqlike: table %q has no column %q", s.Table, a.Col)
		}
		ct := tab.Schema[pos].Type
		if (a.Fn == "SUM" || a.Fn == "AVG") && ct != reldb.TInt && ct != reldb.TFloat {
			return nil, fmt.Errorf("sqlike: %s(%s) requires a numeric column", a.Fn, a.Col)
		}
		positions[i] = pos
		accums[i].isInt = ct == reldb.TInt
		cols[i] = strings.ToLower(a.Fn) + "_" + a.Col
	}
	rows, err := q.Select(s.Table, preds, -1)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		for i, a := range s.Aggs {
			if a.Star {
				accums[i].count++
				continue
			}
			d := row[positions[i]]
			if d.IsNull() {
				continue // SQL semantics: aggregates ignore NULLs
			}
			acc := &accums[i]
			acc.count++
			switch d.Type() {
			case reldb.TInt:
				acc.sum += float64(d.Int())
			case reldb.TFloat:
				acc.sum += d.Float()
			}
			if acc.min.IsNull() || d.Compare(acc.min) < 0 {
				acc.min = d
			}
			if acc.max.IsNull() || d.Compare(acc.max) > 0 {
				acc.max = d
			}
		}
	}
	out := make([]reldb.Datum, len(s.Aggs))
	for i, a := range s.Aggs {
		acc := accums[i]
		switch a.Fn {
		case "COUNT":
			out[i] = reldb.I(acc.count)
		case "MIN":
			out[i] = acc.min
		case "MAX":
			out[i] = acc.max
		case "SUM":
			if acc.count == 0 {
				out[i] = reldb.Null
			} else if acc.isInt {
				out[i] = reldb.I(int64(acc.sum))
			} else {
				out[i] = reldb.F(acc.sum)
			}
		case "AVG":
			if acc.count == 0 {
				out[i] = reldb.Null
			} else {
				out[i] = reldb.F(acc.sum / float64(acc.count))
			}
		default:
			return nil, fmt.Errorf("sqlike: unknown aggregate %q", a.Fn)
		}
	}
	return &Result{Cols: cols, Rows: [][]reldb.Datum{out}}, nil
}
