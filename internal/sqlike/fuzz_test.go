package sqlike

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary input to the SQL parser: malformed statements
// must be rejected with an error, never a panic, and accepted statements
// must survive placeholder counting (which walks the whole AST).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT a, b FROM t WHERE x = ? AND y LIKE 'p%'`,
		`SELECT COUNT(*) FROM t`,
		`SELECT val_id, payload FROM vals WHERE run_id = ? AND val_id >= ? AND val_id <= ?`,
		`INSERT INTO t (a, b) VALUES (?, 'x'), (2, NULL)`,
		`CREATE TABLE t (a TEXT, b INT, c REAL)`,
		`CREATE INDEX ix ON t (a, b)`,
		`DROP TABLE t`,
		`DELETE FROM t WHERE a = 1.5`,
		`SAVE TO 'snap.db'`,
		`LOAD FROM 'snap.db'`,
		`SELECT * FROM t ORDER BY a LIMIT 3;`,
		`select 'unterminated`,
		`SELECT ((((`,
		`INSERT INTO`,
		"SELECT a FROM t WHERE a = 'quo''ted'",
		`-- comment only`,
		`SELECT a FROM t WHERE a >= -9223372036854775808`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // bound parser work per input
		}
		st, err := Parse(src)
		if err != nil {
			if st != nil {
				t.Fatalf("Parse returned both a statement and error %v", err)
			}
			return
		}
		if n := NumPlaceholders(st); n < 0 || n > len(src) {
			t.Fatalf("NumPlaceholders = %d for %q", n, src)
		}
		// A parsed statement must not round-trip into a lexer panic either:
		// re-parsing the same input must stay deterministic.
		st2, err2 := Parse(src)
		if (err2 == nil) != (st2 != nil) {
			t.Fatalf("re-parse of %q inconsistent: %v", src, err2)
		}
	})
}

// FuzzLex feeds arbitrary bytes to the lexer alone (Parse exercises it only
// on token sequences the parser requests).
func FuzzLex(f *testing.F) {
	f.Add(`SELECT 'a' || "b" /* c */ -- d`)
	f.Add("'")
	f.Add("\x00\xff≤≥")
	f.Add("1e309 .5 5. 0x1")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		toks, err := lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 {
			t.Fatalf("lex(%q) returned no tokens and no error (want at least EOF)", src)
		}
		if last := toks[len(toks)-1]; last.kind != tokEOF {
			t.Fatalf("lex(%q) did not end with EOF: %v", src, last)
		}
		for _, tok := range toks {
			if tok.kind != tokEOF && tok.text == "" && !strings.Contains(src, "''") && !strings.Contains(src, `""`) {
				// Empty literals are only reachable from empty quoted strings.
				if tok.kind != tokString {
					t.Fatalf("lex(%q) produced an empty non-string token %v", src, tok)
				}
			}
		}
	})
}
