package sqlike

import "repro/internal/reldb"

// Stmt is a parsed statement.
type Stmt interface{ isStmt() }

// Expr is a literal or a placeholder in a statement.
type Expr struct {
	Placeholder bool
	Ordinal     int // placeholder position, 0-based
	Lit         reldb.Datum
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Table  string
	Schema reldb.Schema
}

// CreateIndexStmt is CREATE INDEX.
type CreateIndexStmt struct {
	Index string
	Table string
	Cols  []string
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table string
}

// InsertStmt is INSERT INTO ... VALUES.
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// Cond is one WHERE conjunct: col <op> expr, where Op is one of
// "=", "<", "<=", ">", ">="; or col LIKE 'prefix%' when IsPrefix is set
// (the pattern's trailing % is stripped into the expr).
type Cond struct {
	Col      string
	Op       string
	Val      Expr
	IsPrefix bool
	// RawPattern marks a LIKE ? condition: the bound argument is the full
	// pattern, validated and stripped of its trailing % at execution time.
	RawPattern bool
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  string
	Desc bool
}

// Aggregate is a SELECT aggregate: FN(col) or COUNT(*).
type Aggregate struct {
	Fn   string // COUNT, MIN, MAX, SUM, AVG
	Col  string // "" for COUNT(*)
	Star bool
}

// SelectStmt is SELECT.
type SelectStmt struct {
	Table    string
	Cols     []string // nil means * (unless aggregates are present)
	CountAll bool     // SELECT COUNT(*) (legacy shorthand; also in Aggs)
	Aggs     []Aggregate
	Where    []Cond
	OrderBy  []OrderKey
	Limit    int // -1 means no limit
}

// DeleteStmt is DELETE FROM.
type DeleteStmt struct {
	Table string
	Where []Cond
}

// SaveStmt snapshots the database to a file.
type SaveStmt struct {
	Path string
}

// LoadStmt replaces the database content from a snapshot file.
type LoadStmt struct {
	Path string
}

func (*CreateTableStmt) isStmt() {}
func (*CreateIndexStmt) isStmt() {}
func (*DropTableStmt) isStmt()   {}
func (*InsertStmt) isStmt()      {}
func (*SelectStmt) isStmt()      {}
func (*DeleteStmt) isStmt()      {}
func (*SaveStmt) isStmt()        {}
func (*LoadStmt) isStmt()        {}

// NumPlaceholders returns the number of ? placeholders in the statement.
func NumPlaceholders(s Stmt) int {
	n := 0
	count := func(e Expr) {
		if e.Placeholder {
			n++
		}
	}
	switch st := s.(type) {
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				count(e)
			}
		}
	case *SelectStmt:
		for _, c := range st.Where {
			count(c.Val)
		}
	case *DeleteStmt:
		for _, c := range st.Where {
			count(c.Val)
		}
	}
	return n
}
