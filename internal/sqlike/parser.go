package sqlike

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/reldb"
)

// Parse parses one SQL statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokPunct && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlike: trailing input at %s", p.peek())
	}
	return st, nil
}

type parser struct {
	toks         []token
	pos          int
	placeholders int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sqlike: expected %s, got %s", kw, t)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("sqlike: expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptPunct(s string) bool {
	if p.peek().kind == tokPunct && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlike: expected identifier, got %s", t)
	}
	return t.text, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.next()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("sqlike: expected statement keyword, got %s", t)
	}
	switch t.text {
	case "CREATE":
		switch {
		case p.acceptKeyword("TABLE"):
			return p.createTable()
		case p.acceptKeyword("INDEX"):
			return p.createIndex()
		default:
			return nil, fmt.Errorf("sqlike: expected TABLE or INDEX after CREATE, got %s", p.peek())
		}
	case "DROP":
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Table: name}, nil
	case "INSERT":
		return p.insert()
	case "SELECT":
		return p.sel()
	case "DELETE":
		return p.del()
	case "SAVE":
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		path := p.next()
		if path.kind != tokString {
			return nil, fmt.Errorf("sqlike: expected path string, got %s", path)
		}
		return &SaveStmt{Path: path.text}, nil
	case "LOAD":
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		path := p.next()
		if path.kind != tokString {
			return nil, fmt.Errorf("sqlike: expected path string, got %s", path)
		}
		return &LoadStmt{Path: path.text}, nil
	default:
		return nil, fmt.Errorf("sqlike: unsupported statement %s", t)
	}
}

func (p *parser) createTable() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var schema reldb.Schema
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		tname := p.next()
		if tname.kind != tokIdent && tname.kind != tokKeyword {
			return nil, fmt.Errorf("sqlike: expected column type, got %s", tname)
		}
		ctype, ok := reldb.ParseColType(strings.ToUpper(tname.text))
		if !ok {
			return nil, fmt.Errorf("sqlike: unknown column type %q", tname.text)
		}
		schema = append(schema, reldb.Column{Name: col, Type: ctype})
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTableStmt{Table: name, Schema: schema}, nil
}

func (p *parser) createIndex() (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.identList()
	if err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Index: name, Table: table, Cols: cols}, nil
}

// identList parses "( ident [, ident ...] )".
func (p *parser) identList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if p.acceptPunct(",") {
			continue
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return cols, nil
	}
}

func (p *parser) insert() (Stmt, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.identList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]Expr
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptPunct(",") {
				continue
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			break
		}
		if len(row) != len(cols) {
			return nil, fmt.Errorf("sqlike: INSERT row has %d values for %d columns", len(row), len(cols))
		}
		rows = append(rows, row)
		if !p.acceptPunct(",") {
			break
		}
	}
	return &InsertStmt{Table: table, Cols: cols, Rows: rows}, nil
}

func (p *parser) sel() (Stmt, error) {
	st := &SelectStmt{Limit: -1}
	isAgg := func() bool {
		t := p.peek()
		if t.kind != tokKeyword {
			return false
		}
		switch t.text {
		case "COUNT", "MIN", "MAX", "SUM", "AVG":
			return true
		}
		return false
	}
	switch {
	case p.acceptPunct("*"):
	case isAgg():
		for {
			fn := p.next().text
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			agg := Aggregate{Fn: fn}
			if p.acceptPunct("*") {
				if fn != "COUNT" {
					return nil, fmt.Errorf("sqlike: %s(*) is not supported", fn)
				}
				agg.Star = true
			} else {
				col, err := p.ident()
				if err != nil {
					return nil, err
				}
				agg.Col = col
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			st.Aggs = append(st.Aggs, agg)
			if !p.acceptPunct(",") {
				break
			}
			if !isAgg() {
				return nil, fmt.Errorf("sqlike: cannot mix aggregates and plain columns")
			}
		}
		if len(st.Aggs) == 1 && st.Aggs[0].Fn == "COUNT" && st.Aggs[0].Star {
			st.CountAll = true
		}
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if p.acceptKeyword("WHERE") {
		st.Where, err = p.whereClause()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: col}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sqlike: expected LIMIT count, got %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlike: bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) del() (Stmt, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		st.Where, err = p.whereClause()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) whereClause() ([]Cond, error) {
	var out []Cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch {
		case p.acceptPunct("="), p.acceptPunct("<"), p.acceptPunct("<="), p.acceptPunct(">"), p.acceptPunct(">="):
			op := p.toks[p.pos-1].text
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			out = append(out, Cond{Col: col, Op: op, Val: e})
		case p.acceptKeyword("LIKE"):
			t := p.peek()
			switch t.kind {
			case tokString:
				p.next()
				pfx, err := likePrefix(t.text)
				if err != nil {
					return nil, err
				}
				out = append(out, Cond{Col: col, Val: Expr{Lit: reldb.S(pfx)}, IsPrefix: true})
			case tokPlaceholder:
				// The pattern arrives as a bound argument; it is validated
				// and its trailing % stripped at execution time.
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				out = append(out, Cond{Col: col, Val: e, IsPrefix: true, RawPattern: true})
			default:
				return nil, fmt.Errorf("sqlike: LIKE requires a string pattern or placeholder, got %s", t)
			}
		default:
			return nil, fmt.Errorf("sqlike: expected = or LIKE after column %q, got %s", col, p.peek())
		}
		if !p.acceptKeyword("AND") {
			return out, nil
		}
	}
}

// likePrefix validates a LIKE pattern (only trailing-% prefix patterns are
// supported) and returns the prefix with the wildcard stripped.
func likePrefix(pat string) (string, error) {
	if !strings.HasSuffix(pat, "%") || strings.ContainsAny(pat[:len(pat)-1], "%_") {
		return "", fmt.Errorf("sqlike: only prefix patterns 'text%%' are supported, got %q", pat)
	}
	return pat[:len(pat)-1], nil
}

func (p *parser) expr() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokPlaceholder:
		e := Expr{Placeholder: true, Ordinal: p.placeholders}
		p.placeholders++
		return e, nil
	case tokString:
		return Expr{Lit: reldb.S(t.text)}, nil
	case tokNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Expr{}, fmt.Errorf("sqlike: bad float literal %q", t.text)
			}
			return Expr{Lit: reldb.F(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Expr{}, fmt.Errorf("sqlike: bad integer literal %q", t.text)
		}
		return Expr{Lit: reldb.I(n)}, nil
	case tokKeyword:
		if t.text == "NULL" {
			return Expr{Lit: reldb.Null}, nil
		}
	}
	return Expr{}, fmt.Errorf("sqlike: expected literal or placeholder, got %s", t)
}
