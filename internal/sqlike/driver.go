package sqlike

import (
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/reldb"
)

// DriverName is the name the sqlike driver registers under with database/sql.
const DriverName = "provsql"

// Driver is the database/sql driver. DSN forms:
//
//	memory:<name>   — a named in-memory database; connections with the same
//	                  DSN share one database (the connection-pool contract).
//	file:<path>     — loaded from the snapshot at <path> if it exists,
//	                  created empty otherwise; persist with SAVE TO.
//	durable:<dir>   — write-ahead-logged database in <dir>: every mutation
//	                  is synchronously logged and replayed on open.
//	durablefs:<name>:<dir>
//	                — like durable:, but all I/O goes through the VFS
//	                  registered under <name> with RegisterVFS. Fault- and
//	                  stall-injection tests use it to put a misbehaving
//	                  filesystem under a fully assembled store.
type Driver struct{}

var (
	registryMu sync.Mutex
	registry   = make(map[string]*reldb.DB)
	memCounter atomic.Int64

	vfsMu       sync.Mutex
	vfsRegistry = make(map[string]reldb.VFS)
)

// RegisterVFS makes a virtual filesystem addressable from a
// durablefs:<name>:<dir> DSN. Registering nil deletes the name.
func RegisterVFS(name string, fs reldb.VFS) {
	vfsMu.Lock()
	defer vfsMu.Unlock()
	if fs == nil {
		delete(vfsRegistry, name)
		return
	}
	vfsRegistry[name] = fs
}

func vfsFor(name string) (reldb.VFS, bool) {
	vfsMu.Lock()
	defer vfsMu.Unlock()
	fs, ok := vfsRegistry[name]
	return fs, ok
}

// MemoryDSN returns a DSN naming a fresh, private in-memory database.
func MemoryDSN() string {
	return fmt.Sprintf("memory:anon-%d", memCounter.Add(1))
}

// DBFor returns the underlying reldb database for a DSN, creating it the
// same way Open would. It gives harness code direct access for statistics
// and snapshots without a SQL round trip.
func DBFor(dsn string) (*reldb.DB, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	return dbForLocked(dsn)
}

func dbForLocked(dsn string) (*reldb.DB, error) {
	if db, ok := registry[dsn]; ok {
		return db, nil
	}
	switch {
	case strings.HasPrefix(dsn, "memory:") || dsn == "memory":
		db := reldb.NewDB()
		registry[dsn] = db
		return db, nil
	case strings.HasPrefix(dsn, "durable:"):
		db, err := reldb.OpenDurable(strings.TrimPrefix(dsn, "durable:"))
		if err != nil {
			return nil, err
		}
		registry[dsn] = db
		return db, nil
	case strings.HasPrefix(dsn, "durablefs:"):
		rest := strings.TrimPrefix(dsn, "durablefs:")
		name, dir, ok := strings.Cut(rest, ":")
		if !ok || name == "" || dir == "" {
			return nil, fmt.Errorf("sqlike: bad DSN %q (want durablefs:<vfs>:<dir>)", dsn)
		}
		fs, ok := vfsFor(name)
		if !ok {
			return nil, fmt.Errorf("sqlike: DSN %q names unregistered VFS %q", dsn, name)
		}
		db, err := reldb.OpenDurableVFS(fs, dir)
		if err != nil {
			return nil, err
		}
		registry[dsn] = db
		return db, nil
	case strings.HasPrefix(dsn, "file:"):
		path := strings.TrimPrefix(dsn, "file:")
		if _, err := os.Stat(path); err == nil {
			db, err := reldb.Load(path)
			if err != nil {
				return nil, err
			}
			registry[dsn] = db
			return db, nil
		}
		db := reldb.NewDB()
		registry[dsn] = db
		return db, nil
	default:
		return nil, fmt.Errorf("sqlike: bad DSN %q (want memory:<name>, file:<path> or durable:<dir>)", dsn)
	}
}

// Forget drops a DSN from the driver registry, releasing the in-memory
// database once all open handles are gone. Harness code uses it to bound
// memory across many benchmark databases.
func Forget(dsn string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if db, ok := registry[dsn]; ok && (strings.HasPrefix(dsn, "durable:") || strings.HasPrefix(dsn, "durablefs:")) {
		db.CloseDurable()
	}
	delete(registry, dsn)
}

// Open implements driver.Driver.
func (Driver) Open(dsn string) (driver.Conn, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	db, err := dbForLocked(dsn)
	if err != nil {
		return nil, err
	}
	return &conn{db: db}, nil
}

func init() { sql.Register(DriverName, Driver{}) }

type conn struct {
	db *reldb.DB
	// snap is the snapshot pinned by an open transaction: while set, every
	// SELECT through this connection reads the pinned epoch. database/sql
	// serializes access to a driver connection, so no further locking is
	// needed.
	snap *reldb.Snapshot
}

// EpochQuery is the statement that reports the epoch reads through the
// connection observe: the pinned snapshot's epoch inside a transaction, the
// latest committed epoch outside one. It returns a single row with a single
// integer column named "epoch".
const EpochQuery = "SELECT EPOCH()"

func isEpochQuery(q string) bool {
	q = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(q), ";"))
	return strings.EqualFold(q, EpochQuery)
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	if isEpochQuery(query) {
		return &epochStmt{c: c}, nil
	}
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return &stmt{c: c, st: st, numInput: NumPlaceholders(st)}, nil
}

// Close implements driver.Conn. The shared database outlives connections.
func (c *conn) Close() error { return nil }

// Begin implements driver.Conn. A transaction pins a snapshot of the
// current committed epoch: every read through the transaction sees exactly
// the data committed at or before that epoch, regardless of concurrent
// ingest. Writes inside a transaction are NOT buffered — they commit to the
// live database immediately (and stay invisible to the transaction's own
// reads); both Commit and Rollback simply release the pinned snapshot.
func (c *conn) Begin() (driver.Tx, error) {
	if c.snap != nil {
		return nil, fmt.Errorf("sqlike: nested transactions are not supported")
	}
	c.snap = c.db.Snapshot()
	return &snapTx{c: c}, nil
}

type snapTx struct{ c *conn }

func (tx *snapTx) Commit() error   { tx.c.endTx(); return nil }
func (tx *snapTx) Rollback() error { tx.c.endTx(); return nil }

func (c *conn) endTx() {
	if c.snap != nil {
		c.snap.Release()
		c.snap = nil
	}
}

// epochStmt serves EpochQuery without going through the SQL parser.
type epochStmt struct{ c *conn }

func (s *epochStmt) Close() error  { return nil }
func (s *epochStmt) NumInput() int { return 0 }

func (s *epochStmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, fmt.Errorf("sqlike: %s is a query", EpochQuery)
}

func (s *epochStmt) Query(args []driver.Value) (driver.Rows, error) {
	var epoch uint64
	if s.c.snap != nil {
		epoch = s.c.snap.Epoch()
	} else {
		epoch = s.c.db.Epoch()
	}
	return &rows{cols: []string{"epoch"}, data: [][]reldb.Datum{{reldb.I(int64(epoch))}}}, nil
}

type stmt struct {
	c        *conn
	st       Stmt
	numInput int
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return s.numInput }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	res, err := s.run(args)
	if err != nil {
		return nil, err
	}
	return execResult{affected: res.Affected}, nil
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	res, err := s.run(args)
	if err != nil {
		return nil, err
	}
	return &rows{cols: res.Cols, data: res.Rows}, nil
}

func (s *stmt) run(args []driver.Value) (*Result, error) {
	datums := make([]reldb.Datum, len(args))
	for i, a := range args {
		d, err := toDatum(a)
		if err != nil {
			return nil, err
		}
		datums[i] = d
	}
	if snap := s.c.snap; snap != nil {
		return ExecOn(s.c.db, snap, s.st, datums)
	}
	return Exec(s.c.db, s.st, datums)
}

func toDatum(v driver.Value) (reldb.Datum, error) {
	switch x := v.(type) {
	case nil:
		return reldb.Null, nil
	case int64:
		return reldb.I(x), nil
	case float64:
		return reldb.F(x), nil
	case bool:
		if x {
			return reldb.I(1), nil
		}
		return reldb.I(0), nil
	case string:
		return reldb.S(x), nil
	case []byte:
		return reldb.B(append([]byte(nil), x...)), nil
	default:
		return reldb.Null, fmt.Errorf("sqlike: unsupported argument type %T", v)
	}
}

type execResult struct {
	affected int64
}

func (r execResult) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("sqlike: LastInsertId is not supported")
}

func (r execResult) RowsAffected() (int64, error) { return r.affected, nil }

type rows struct {
	cols []string
	data [][]reldb.Datum
	pos  int
}

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.data) {
		return io.EOF
	}
	row := r.data[r.pos]
	r.pos++
	for i, d := range row {
		switch d.Type() {
		case 0:
			dest[i] = nil
		case reldb.TInt:
			dest[i] = d.Int()
		case reldb.TFloat:
			dest[i] = d.Float()
		case reldb.TString:
			dest[i] = d.Str()
		case reldb.TBytes:
			dest[i] = d.Bytes()
		}
	}
	return nil
}
