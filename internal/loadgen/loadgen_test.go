package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunClassifiesResponses: 200s count as OK with latencies, 429 as
// rate-limited, 503 as rejected, 500 as errors, and the offered request
// count honours QPS × duration (open loop: every tick fires regardless of
// outcomes).
func TestRunClassifiesResponses(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 0:
			http.Error(w, "slow down", http.StatusTooManyRequests)
		case 1:
			http.Error(w, "full", http.StatusServiceUnavailable)
		case 2:
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			w.Write([]byte("ok"))
		}
	}))
	defer ts.Close()

	res, err := Run(context.Background(), Options{
		URL:      ts.URL,
		QPS:      200,
		Duration: 250 * time.Millisecond,
		Timeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent < 20 {
		t.Errorf("open loop at 200qps for 250ms sent only %d requests", res.Sent)
	}
	if res.OK == 0 || res.RateLimited == 0 || res.Rejected == 0 || res.Errors == 0 {
		t.Errorf("classification missed a class: %+v", res)
	}
	if got := res.OK + res.RateLimited + res.Rejected + res.Errors; got != res.Sent {
		t.Errorf("classes sum to %d, sent %d", got, res.Sent)
	}
	if res.Quantile(0.5) <= 0 || res.Quantile(0.999) < res.Quantile(0.5) {
		t.Errorf("quantiles inconsistent: p50=%s p999=%s", res.Quantile(0.5), res.Quantile(0.999))
	}
	if res.Throughput() <= 0 {
		t.Errorf("throughput %f with %d OK", res.Throughput(), res.OK)
	}
}

// TestRunValidates pins the option errors.
func TestRunValidates(t *testing.T) {
	for _, opts := range []Options{
		{URL: "http://x", QPS: 0, Duration: time.Second},
		{URL: "http://x", QPS: 10, Duration: 0},
		{URL: "://bad", QPS: 10, Duration: time.Second},
	} {
		if _, err := Run(context.Background(), opts); err == nil {
			t.Errorf("Run(%+v) accepted invalid options", opts)
		}
	}
}

// TestRunCancel: cancelling the context stops the loop early and still
// returns the partial aggregate.
func TestRunCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); cancel() }()
	start := time.Now()
	res, err := Run(ctx, Options{URL: ts.URL, QPS: 50, Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancel did not stop the loop (ran %s)", time.Since(start))
	}
	if res.Sent == 0 {
		t.Error("no requests fired before cancel")
	}
}
