// Package loadgen drives a provd server with open-loop load: requests fire
// at a fixed offered rate regardless of how fast responses come back, so an
// overloaded server shows up as queueing, shed load and tail latency rather
// than as a politely slowed-down generator (closed-loop generators
// coordinate with the system under test and hide saturation). The fig-serve
// experiment and the cmd/loadgen CLI share this package.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options configures one open-loop run.
type Options struct {
	// URL is the full request URL, parameters included, e.g.
	// "http://127.0.0.1:7468/v1/query?tenant=t0&run=r1&binding=...".
	URL string

	// QPS is the offered load in requests per second. Required, > 0.
	QPS float64

	// Duration is how long to keep offering load. Required, > 0.
	Duration time.Duration

	// Timeout bounds each request (default 30s).
	Timeout time.Duration

	// Client overrides the HTTP client (default: http.Client with Timeout).
	Client *http.Client
}

// Result aggregates one run. The server's two shed responses are tallied
// apart — RateLimited (429, the per-tenant token bucket) and Rejected (503,
// admission control and drain) point at different remedies — and both apart
// from Errors, which counts transport failures and any other non-200 status:
// a saturated-but-healthy server shows shed counts with zero errors, while
// rising errors mean requests are not reaching the server at all.
type Result struct {
	Offered     float64       // requested QPS
	Sent        int           // requests fired
	OK          int           // 200 responses
	RateLimited int           // 429 responses (per-tenant rate limit)
	Rejected    int           // 503 responses (admission control / drain)
	Errors      int           // transport failures and other statuses
	Elapsed     time.Duration // fire of first request to last response
	lats        []time.Duration
}

// Throughput is the completed-OK rate in requests per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// Quantile returns the exact q-quantile (0 < q <= 1) of the OK-response
// latencies, or 0 when none completed.
func (r *Result) Quantile(q float64) time.Duration {
	if len(r.lats) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.lats))
	copy(sorted, r.lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("offered=%.1fqps sent=%d ok=%d ratelimited=%d rejected=%d errors=%d throughput=%.1fqps p50=%s p99=%s p999=%s",
		r.Offered, r.Sent, r.OK, r.RateLimited, r.Rejected, r.Errors, r.Throughput(),
		r.Quantile(0.50).Round(time.Microsecond),
		r.Quantile(0.99).Round(time.Microsecond),
		r.Quantile(0.999).Round(time.Microsecond))
}

// WaitReady polls baseURL's /readyz until it answers 200, patience runs out,
// or ctx is cancelled. Connection refused — the server process is still
// binding its listener — and non-200 readiness answers both count as "not
// yet", so a generator started alongside a readiness-gated server waits for
// it instead of erroring on the first request. Patience <= 0 defaults to 10s.
func WaitReady(ctx context.Context, baseURL string, patience time.Duration) error {
	if patience <= 0 {
		patience = 10 * time.Second
	}
	if ctx == nil {
		ctx = context.Background()
	}
	readyz := strings.TrimRight(baseURL, "/") + "/readyz"
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(patience)
	var last error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, readyz, nil)
		if err != nil {
			return fmt.Errorf("loadgen: bad base URL: %w", err)
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("readyz answered %d", resp.StatusCode)
		} else {
			last = err // connection refused while the listener binds, usually
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: server not ready after %s: %w", patience, last)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Run offers load until the duration elapses or ctx is cancelled, then waits
// for stragglers and returns the aggregate.
func Run(ctx context.Context, opts Options) (*Result, error) {
	if opts.QPS <= 0 {
		return nil, fmt.Errorf("loadgen: QPS must be > 0 (got %g)", opts.QPS)
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be > 0 (got %s)", opts.Duration)
	}
	if _, err := url.Parse(opts.URL); err != nil {
		return nil, fmt.Errorf("loadgen: bad URL: %w", err)
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: timeout}
	}

	res := &Result{Offered: opts.QPS}
	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(lat time.Duration, status int, err error) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err != nil:
			res.Errors++
		case status == http.StatusOK:
			res.OK++
			res.lats = append(res.lats, lat)
		case status == http.StatusTooManyRequests:
			res.RateLimited++
		case status == http.StatusServiceUnavailable:
			res.Rejected++
		default:
			res.Errors++
		}
	}

	interval := time.Duration(float64(time.Second) / opts.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	start := time.Now()
	deadline := start.Add(opts.Duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()

fire:
	for now := start; now.Before(deadline); {
		wg.Add(1)
		res.Sent++
		go func() {
			defer wg.Done()
			t0 := time.Now()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, opts.URL, nil)
			if err != nil {
				record(0, 0, err)
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				record(0, 0, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			record(time.Since(t0), resp.StatusCode, nil)
		}()
		select {
		case now = <-tick.C:
		case <-ctx.Done():
			break fire
		}
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil && err != context.Canceled {
		return res, err
	}
	return res, nil
}
