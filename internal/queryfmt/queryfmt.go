// Package queryfmt holds the query-request syntax and answer rendering
// shared by the provq CLI and the provd HTTP server. Both front ends parse
// the same "proc:port[index]" binding notation and print byte-identical
// answers — a property the end-to-end server tests assert by comparing provd
// response bodies against provq output for the same queries.
package queryfmt

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/lineage"
	"repro/internal/value"
)

// ParseBinding splits "proc:port[i,j]" (use proc "workflow" or "" for
// workflow-level ports).
func ParseBinding(s string) (proc, port string, idx value.Index, err error) {
	bracket := strings.IndexByte(s, '[')
	idx = value.EmptyIndex
	core := s
	if bracket >= 0 {
		core = s[:bracket]
		idx, err = value.ParseIndex(s[bracket:])
		if err != nil {
			return "", "", nil, err
		}
	}
	colon := strings.LastIndexByte(core, ':')
	if colon < 0 {
		return "", "", nil, fmt.Errorf("binding %q must look like proc:port[index]", s)
	}
	proc, port = core[:colon], core[colon+1:]
	if proc == "workflow" {
		proc = ""
	}
	if port == "" {
		return "", "", nil, fmt.Errorf("binding %q has an empty port", s)
	}
	return proc, port, idx, nil
}

// ParseFocus splits a comma-separated focus list into a Focus set.
func ParseFocus(s string) lineage.Focus {
	focus := lineage.NewFocus()
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			focus[p] = true
		}
	}
	return focus
}

// DisplayProc renders the processor name of a binding ("" is the
// workflow-level pseudo-processor).
func DisplayProc(proc string) string {
	if proc == "" {
		return "workflow"
	}
	return proc
}

// Truncate clips s to at most n bytes, marking the cut with an ellipsis.
func Truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Query names one parsed lineage query, method and direction included; it
// carries everything the answer header mentions.
type Query struct {
	Direction string // "back", "backward", "forward", "fwd"
	Proc      string
	Port      string
	Idx       value.Index
	Focus     lineage.Focus
	Method    fmt.Stringer // core.Method; any Stringer naming the algorithm
}

// WriteHeader prints the single-run answer header, exactly as provq does.
func (q Query) WriteHeader(w io.Writer, res *lineage.Result) {
	fmt.Fprintf(w, "%s(<%s:%s%s>, %v) via %s: %d bindings\n",
		q.Direction, DisplayProc(q.Proc), q.Port, q.Idx, q.Focus.Names(), q.Method, res.Len())
}

// WriteMultiRunHeader prints the multi-run answer header, exactly as provq
// does.
func (q Query) WriteMultiRunHeader(w io.Writer, runs, parallelism int, res *lineage.Result) {
	fmt.Fprintf(w, "%s(<%s:%s%s>, %v) via %s over %d runs (parallelism %d): %d bindings\n",
		q.Direction, DisplayProc(q.Proc), q.Port, q.Idx, q.Focus.Names(), q.Method, runs, parallelism, res.Len())
}

// WriteDegraded prints the degraded-mode marker of a partial answer: one
// line naming the runs whose shard was unavailable. Silent for healthy
// answers, byte-identical between provq and provd.
func WriteDegraded(w io.Writer, res *lineage.Result) {
	if !res.Degraded() {
		return
	}
	runs := res.DegradedRuns()
	fmt.Fprintf(w, "DEGRADED: %d run(s) unavailable: %s\n", len(runs), strings.Join(runs, ", "))
}

// WriteEntries prints the answer's entries in their canonical order, one
// indented line each, with the bound element value when values is set —
// byte-identical to provq's query output.
func WriteEntries(w io.Writer, res *lineage.Result, values bool) {
	for _, e := range res.Entries() {
		if values {
			el, err := e.Element()
			detail := ""
			if err == nil {
				detail = " = " + Truncate(value.Encode(el), 100)
			}
			fmt.Fprintf(w, "  %s%s\n", e, detail)
		} else {
			fmt.Fprintf(w, "  %s\n", e)
		}
	}
}
