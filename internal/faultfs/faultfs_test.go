package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/reldb"
)

func writeFile(t *testing.T, fs *FS, path, content string, sync bool) error {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(content)); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func readBase(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return "<absent>"
		}
		t.Fatalf("read %s: %v", path, err)
	}
	return string(data)
}

// With no faults armed, the wrapper is a faithful proxy: everything written
// and closed lands in the base filesystem.
func TestCleanPassthrough(t *testing.T) {
	dir := t.TempDir()
	fs := New(reldb.OSFS{})
	path := filepath.Join(dir, "a.txt")
	if err := writeFile(t, fs, path, "hello", true); err != nil {
		t.Fatalf("writeFile: %v", err)
	}
	if got := readBase(t, path); got != "hello" {
		t.Fatalf("base content = %q, want %q", got, "hello")
	}
	if fs.Ops() != 4 { // create, write, sync, close
		t.Fatalf("Ops() = %d, want 4", fs.Ops())
	}
	if fs.Crashed() || fs.Failed() {
		t.Fatalf("clean run reports crashed=%v failed=%v", fs.Crashed(), fs.Failed())
	}
}

// FailAt injects exactly one error, at the armed operation; the error is the
// ErrInjected sentinel and is transient (so retry loops engage), and the
// operation after it succeeds.
func TestFailAtIsOneShotAndTransient(t *testing.T) {
	dir := t.TempDir()
	fs := New(reldb.OSFS{})
	fs.FailAt(2) // the Write
	path := filepath.Join(dir, "a.txt")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	_, err = f.Write([]byte("hello"))
	if err == nil {
		t.Fatal("armed write succeeded")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v is not ErrInjected", err)
	}
	if !reldb.IsTransient(err) {
		t.Fatalf("injected error %v is not transient", err)
	}
	if !fs.Failed() {
		t.Fatal("Failed() = false after injection")
	}
	// One-shot: the retry goes through.
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("retried write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := readBase(t, path); got != "hello" {
		t.Fatalf("base content = %q, want %q", got, "hello")
	}
}

// A crash at a Write loses everything not yet synced, acknowledges the write
// anyway, and silences every later operation.
func TestCrashAtWriteLosesUnsyncedData(t *testing.T) {
	dir := t.TempDir()
	fs := New(reldb.OSFS{})
	fs.CrashAt(2) // the Write
	path := filepath.Join(dir, "a.txt")
	if err := writeFile(t, fs, path, "hello", true); err != nil {
		t.Fatalf("writeFile reported error despite crash semantics: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() = false")
	}
	if got := readBase(t, path); got != "" {
		t.Fatalf("base content = %q, want empty (file created, nothing persisted)", got)
	}
}

// A crash at a Sync persists half the pending bytes: a torn tail for
// recovery code to detect.
func TestCrashAtSyncTearsPendingBytes(t *testing.T) {
	dir := t.TempDir()
	fs := New(reldb.OSFS{})
	fs.CrashAt(3) // the Sync
	path := filepath.Join(dir, "a.txt")
	if err := writeFile(t, fs, path, "0123456789", true); err != nil {
		t.Fatalf("writeFile: %v", err)
	}
	if got := readBase(t, path); got != "01234" {
		t.Fatalf("base content = %q, want torn prefix %q", got, "01234")
	}
}

// After the crash point, file creations and renames silently do nothing.
func TestPostCrashOperationsAreSilent(t *testing.T) {
	dir := t.TempDir()
	fs := New(reldb.OSFS{})
	before := filepath.Join(dir, "before.txt")
	if err := writeFile(t, fs, before, "durable", true); err != nil {
		t.Fatalf("writeFile: %v", err)
	}
	fs.CrashAt(fs.Ops() + 1)
	after := filepath.Join(dir, "after.txt")
	if err := writeFile(t, fs, after, "lost", true); err != nil {
		t.Fatalf("post-crash writeFile: %v", err)
	}
	if err := fs.Rename(before, filepath.Join(dir, "renamed.txt")); err != nil {
		t.Fatalf("post-crash rename: %v", err)
	}
	if err := fs.Truncate(before, 0); err != nil {
		t.Fatalf("post-crash truncate: %v", err)
	}
	if got := readBase(t, before); got != "durable" {
		t.Fatalf("pre-crash file = %q, want %q", got, "durable")
	}
	if got := readBase(t, after); got != "<absent>" {
		t.Fatalf("post-crash file = %q, want absent", got)
	}
}

// The operation count of a fixed workload is deterministic, which is what
// lets a sweep enumerate every injection point from a single probe run.
func TestOpsCountIsDeterministic(t *testing.T) {
	run := func() int {
		dir := t.TempDir()
		fs := New(reldb.OSFS{})
		for i := 0; i < 3; i++ {
			if err := writeFile(t, fs, filepath.Join(dir, "f.txt"), "data", true); err != nil {
				t.Fatalf("writeFile: %v", err)
			}
		}
		fs.SyncDir(dir)
		return fs.Ops()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("op counts differ or zero: %d vs %d", a, b)
	}
}
