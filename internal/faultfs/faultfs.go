// Package faultfs provides a fault-injecting implementation of the reldb
// virtual filesystem. It wraps a real VFS, counts every durability-relevant
// operation, and can be armed to misbehave at the N-th one in either of two
// ways:
//
//   - FailAt(n): the n-th operation returns an injected error (marked
//     transient) and has no effect. Everything before and after works
//     normally — this models a one-off I/O error the caller may retry.
//
//   - CrashAt(n): from the n-th operation on, nothing is persisted and no
//     error is reported — this models the process dying mid-operation. The
//     state left behind in the base filesystem is exactly what a real crash
//     would leave: writes are buffered per file until Sync, so un-synced
//     data is lost, and a crash triggered by a Sync flushes only half of
//     the pending bytes, producing a torn tail.
//
//   - StallAt(n): the n-th operation and every later one block inside the
//     VFS until Release is called, then proceed normally — this models a
//     hung disk or NFS mount: the call neither fails nor returns, so only
//     callers with their own deadlines (replica failover, context-bounded
//     executors) make progress.
//
// A crash-point sweep runs a deterministic workload once to learn the total
// operation count, then replays it with CrashAt(n) (or FailAt(n)) for every
// n, reopening the database afterwards and asserting the recovery
// invariants. See internal/reldb's crash-point tests for the driver.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"repro/internal/reldb"
)

// ErrInjected is the sentinel matched by errors.Is for every injected fault.
var ErrInjected = errors.New("faultfs: injected fault")

// injectedError is the concrete error returned at an armed FailAt point. It
// reports itself transient (reldb.IsTransient returns true), since it models
// a one-off I/O error that a retry would get past.
type injectedError struct {
	op string
	n  int
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("faultfs: injected fault at operation %d (%s)", e.n, e.op)
}

func (e *injectedError) Transient() bool { return true }

func (e *injectedError) Is(target error) bool { return target == ErrInjected }

// FS wraps a base VFS and injects faults by operation count. Counted
// operations: ReadFile, Create, Append, Rename, Remove, Truncate, SyncDir,
// and per-file Write, Sync, Close. Stat and MkdirAll are passthrough
// (they do not affect durability). The zero fault configuration is a
// faithful proxy apart from write buffering, which Close and Sync flush —
// so a run that closes its files ends with the base identical to a direct
// run.
type FS struct {
	base reldb.VFS

	mu      sync.Mutex
	ops     int
	failAt  int // 1-based op index to fail; 0 = disarmed
	failed  bool
	crashAt int // 1-based op index from which nothing persists; 0 = disarmed
	crashed bool
	stallAt int           // 1-based op index from which ops block; 0 = disarmed
	stalled int           // ops currently blocked on the gate
	gate    chan struct{} // closed by Release; nil until armed
}

// New wraps base with fault injection disarmed.
func New(base reldb.VFS) *FS {
	return &FS{base: base}
}

// FailAt arms a one-shot injected error at the n-th counted operation
// (1-based). Zero disarms.
func (f *FS) FailAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAt, f.failed = n, false
}

// CrashAt arms a simulated crash at the n-th counted operation (1-based):
// that operation and every later one silently stops persisting. Zero disarms.
func (f *FS) CrashAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// StallAt arms a stall at the n-th counted operation (1-based): that
// operation and every later one block until Release. Zero disarms (already
// blocked operations stay blocked until Release).
func (f *FS) StallAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stallAt = n
	if n > 0 && f.gate == nil {
		f.gate = make(chan struct{})
	}
}

// Release disarms the stall and unblocks every operation waiting on it.
func (f *FS) Release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stallAt = 0
	if f.gate != nil {
		close(f.gate)
		f.gate = nil
	}
}

// Stalled returns how many operations are currently blocked on the stall
// gate.
func (f *FS) Stalled() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stalled
}

// Ops returns how many counted operations have run.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Failed reports whether the armed FailAt point has fired.
func (f *FS) Failed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failed
}

// Crashed reports whether the simulated crash has happened. Once true, every
// acknowledgment the caller receives is a lie — the crash-point driver uses
// this to decide which commits count as acknowledged.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// tick advances the operation counter and resolves what the current
// operation should do: block on an armed stall gate (outside the lock, so
// Release and other operations proceed), return an injected error, behave as
// the first crashed operation (justCrashed), continue in the crashed state,
// or proceed normally.
func (f *FS) tick(op string) (err error, justCrashed, crashed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.stallAt > 0 && f.ops >= f.stallAt && f.gate != nil {
		gate := f.gate
		f.stalled++
		f.mu.Unlock()
		<-gate
		f.mu.Lock()
		f.stalled--
	}
	if f.failAt > 0 && !f.failed && f.ops >= f.failAt {
		f.failed = true
		return &injectedError{op: op, n: f.ops}, false, f.crashed
	}
	if f.crashAt > 0 && f.ops >= f.crashAt {
		justCrashed = !f.crashed
		f.crashed = true
	}
	return nil, justCrashed, f.crashed
}

// ReadFile reads from the base filesystem: reads always see exactly what was
// persisted, crashed or not.
func (f *FS) ReadFile(path string) ([]byte, error) {
	if err, _, _ := f.tick("readfile " + path); err != nil {
		return nil, err
	}
	return f.base.ReadFile(path)
}

func (f *FS) Create(path string) (reldb.File, error) {
	err, _, crashed := f.tick("create " + path)
	if err != nil {
		return nil, err
	}
	if crashed {
		// The process "died" before the file could be created: hand back a
		// file that swallows everything and never touches the base.
		return &file{fs: f}, nil
	}
	bf, err := f.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, base: bf}, nil
}

func (f *FS) Append(path string) (reldb.File, error) {
	err, _, crashed := f.tick("append " + path)
	if err != nil {
		return nil, err
	}
	if crashed {
		return &file{fs: f}, nil
	}
	bf, err := f.base.Append(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, base: bf}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	err, _, crashed := f.tick("rename " + newpath)
	if err != nil || crashed {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FS) Remove(path string) error {
	err, _, crashed := f.tick("remove " + path)
	if err != nil || crashed {
		return err
	}
	return f.base.Remove(path)
}

func (f *FS) Truncate(path string, size int64) error {
	err, _, crashed := f.tick("truncate " + path)
	if err != nil || crashed {
		return err
	}
	return f.base.Truncate(path, size)
}

func (f *FS) SyncDir(path string) error {
	err, _, crashed := f.tick("syncdir " + path)
	if err != nil || crashed {
		return err
	}
	return f.base.SyncDir(path)
}

// Stat and MkdirAll pass through uncounted: they carry no durability
// decision worth injecting on, and counting them would only inflate sweeps.

func (f *FS) Stat(path string) (fs.FileInfo, error) { return f.base.Stat(path) }

func (f *FS) MkdirAll(path string) error { return f.base.MkdirAll(path) }

// file buffers writes until Sync (or Close) so that a simulated crash loses
// exactly the un-synced bytes, like a real one.
type file struct {
	fs      *FS
	base    reldb.File // nil when the file was "created" after the crash
	pending []byte
}

func (fl *file) Write(p []byte) (int, error) {
	err, _, crashed := fl.fs.tick("write")
	if err != nil {
		return 0, err
	}
	if crashed {
		// Acknowledged but never persisted — the essence of a crash.
		return len(p), nil
	}
	fl.pending = append(fl.pending, p...)
	return len(p), nil
}

func (fl *file) Sync() error {
	err, justCrashed, crashed := fl.fs.tick("sync")
	if err != nil {
		return err
	}
	if crashed {
		if justCrashed && fl.base != nil && len(fl.pending) > 0 {
			// A crash during fsync persists an arbitrary prefix of the
			// pending bytes: flush half, producing a torn record for
			// recovery to detect and drop.
			fl.base.Write(fl.pending[:len(fl.pending)/2])
		}
		fl.pending = nil
		return nil
	}
	if len(fl.pending) > 0 {
		if _, werr := fl.base.Write(fl.pending); werr != nil {
			return werr
		}
		fl.pending = fl.pending[:0]
	}
	return fl.base.Sync()
}

func (fl *file) Close() error {
	err, _, crashed := fl.fs.tick("close")
	if crashed || err != nil {
		// Close the real handle either way so file descriptors do not leak
		// across a sweep of hundreds of simulated crashes, but persist
		// nothing new.
		fl.pending = nil
		if fl.base != nil {
			fl.base.Close()
			fl.base = nil
		}
		return err
	}
	if fl.base == nil {
		return nil
	}
	if len(fl.pending) > 0 {
		// Data written but never synced survives a clean close (the OS gets
		// it even if the disk hasn't confirmed); only crashes lose it.
		if _, werr := fl.base.Write(fl.pending); werr != nil {
			fl.base.Close()
			fl.base = nil
			return werr
		}
		fl.pending = nil
	}
	berr := fl.base.Close()
	fl.base = nil
	return berr
}

var _ reldb.VFS = (*FS)(nil)
