package core

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/trace"
	"repro/internal/value"
)

func newTestbedSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	sys, err := NewSystem(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	gen.RegisterTestbed(sys.Registry())
	if err := sys.RegisterWorkflow(gen.Testbed(5)); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemEndToEnd(t *testing.T) {
	sys := newTestbedSystem(t)
	run, err := sys.Run("testbed_l5", gen.TestbedInputs(4))
	if err != nil {
		t.Fatal(err)
	}
	if run.RunID == "" || run.Outputs["product"].Len() != 4 {
		t.Fatalf("run = %+v", run)
	}
	focus := lineage.NewFocus(gen.ListGenName)
	a, err := sys.Lineage(Naive, run.RunID, gen.FinalName, "product", value.Ix(2, 1), focus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Lineage(IndexProj, run.RunID, gen.FinalName, "product", value.Ix(2, 1), focus)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || a.Len() != 1 {
		t.Errorf("lineage = %v vs %v", a, b)
	}
	runs, err := sys.Runs("testbed_l5")
	if err != nil || len(runs) != 1 || runs[0] != run.RunID {
		t.Errorf("Runs = %v, %v", runs, err)
	}
}

func TestSystemMultiRun(t *testing.T) {
	sys := newTestbedSystem(t)
	var runIDs []string
	for i := 0; i < 3; i++ {
		run, err := sys.Run("testbed_l5", gen.TestbedInputs(3))
		if err != nil {
			t.Fatal(err)
		}
		runIDs = append(runIDs, run.RunID)
	}
	focus := lineage.NewFocus("A_001")
	a, err := sys.LineageMultiRun(Naive, runIDs, gen.FinalName, "product", value.Ix(0, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.LineageMultiRun(IndexProj, runIDs, gen.FinalName, "product", value.Ix(0, 0), focus)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || a.Len() != 3 {
		t.Errorf("multi-run lineage = %v vs %v", a, b)
	}
	empty, err := sys.LineageMultiRun(IndexProj, nil, gen.FinalName, "product", value.Ix(0, 0), focus)
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty multi-run = %v, %v", empty, err)
	}
}

func TestSystemErrors(t *testing.T) {
	sys := newTestbedSystem(t)
	if _, err := sys.Run("nosuch", nil); err == nil {
		t.Error("run of unregistered workflow accepted")
	}
	if err := sys.RegisterWorkflow(gen.Testbed(5)); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := sys.Lineage(IndexProj, "norun", "P", "X", nil, nil); err == nil {
		t.Error("lineage on unknown run accepted")
	}
	if _, err := sys.Lineage(Method(99), "r", "P", "X", nil, nil); err == nil {
		t.Error("unknown method accepted")
	}
	run, err := sys.Run("testbed_l5", gen.TestbedInputs(2))
	if err != nil {
		t.Fatal(err)
	}
	// Multi-run across different workflows is rejected.
	gen.RegisterGK(sys.Registry(), gen.DefaultKEGG())
	if err := sys.RegisterWorkflow(gen.GenesToKegg()); err != nil {
		t.Fatal(err)
	}
	gkRun, err := sys.Run("genes2Kegg", gen.GKInputs(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.LineageMultiRun(IndexProj, []string{run.RunID, gkRun.RunID}, gen.FinalName, "product", nil, lineage.NewFocus()); err == nil {
		t.Error("cross-workflow multi-run accepted")
	}
}

func TestSystemPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.db")
	sys := newTestbedSystem(t)
	run, err := sys.Run("testbed_l5", gen.TestbedInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(path); err != nil {
		t.Fatal(err)
	}

	// A new system over the saved store sees the run after re-registering
	// the definition.
	sys2, err := NewSystem(WithStoreDSN("file:" + path))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	gen.RegisterTestbed(sys2.Registry())
	if err := sys2.RegisterWorkflow(gen.Testbed(5)); err != nil {
		t.Fatal(err)
	}
	res, err := sys2.Lineage(IndexProj, run.RunID, gen.FinalName, "product", value.Ix(1, 1), lineage.NewFocus(gen.ListGenName))
	if err != nil || res.Len() != 1 {
		t.Fatalf("lineage after reload = %v, %v", res, err)
	}
	// Run IDs continue without collision semantics enforced by the store.
	if _, err := sys2.Run("testbed_l5", gen.TestbedInputs(2)); err == nil {
		// The fresh system restarts its sequence, so the first ID collides
		// with the stored run; the store must reject it.
		t.Log("note: run accepted — sequence did not collide")
	}
}

func TestSystemConcurrentEngine(t *testing.T) {
	sys := newTestbedSystem(t, WithConcurrentEngine())
	run, err := sys.Run("testbed_l5", gen.TestbedInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Lineage(Naive, run.RunID, trace.WorkflowProc, "product", value.Ix(1, 2), lineage.NewFocus("B_003"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Lineage(IndexProj, run.RunID, trace.WorkflowProc, "product", value.Ix(1, 2), lineage.NewFocus("B_003"))
	if err != nil || !a.Equal(b) {
		t.Errorf("concurrent-engine lineage = %v vs %v (err %v)", a, b, err)
	}
	if want := "<B_003:x[2]>@" + run.RunID; a.Len() != 1 || a.Keys()[0] != want {
		t.Errorf("lineage = %v, want [%s]", a.Keys(), want)
	}
}

func TestMethodParsing(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Method
	}{{"indexproj", IndexProj}, {"ip", IndexProj}, {"naive", Naive}, {"ni", Naive}} {
		got, err := ParseMethod(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseMethod(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
	if IndexProj.String() != "indexproj" || Naive.String() != "naive" {
		t.Error("Method.String mismatch")
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Error("unknown method rendering")
	}
}

func TestSystemAffected(t *testing.T) {
	sys := newTestbedSystem(t)
	run, err := sys.Run("testbed_l5", gen.TestbedInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Affected(run.RunID, "A_001", "x", value.Ix(2), lineage.NewFocus(gen.FinalName))
	if err != nil {
		t.Fatal(err)
	}
	// Element 2 of branch A feeds the three products [2,*].
	if res.Len() != 3 {
		t.Fatalf("affected = %v", res)
	}
	for _, e := range res.Entries() {
		if e.Proc != gen.FinalName || e.Index[0] != 2 {
			t.Errorf("affected entry = %s", e)
		}
	}
}
