// Package core is the top-level facade of the library: a System couples a
// workflow registry, the execution engine, a relational provenance store,
// and the lineage query algorithms behind one small API. Examples, CLIs and
// the benchmark harness all drive the reproduction through this package.
//
//	sys, _ := core.NewSystem()
//	defer sys.Close()
//	gen.RegisterTestbed(sys.Registry())
//	sys.RegisterWorkflow(gen.Testbed(10))
//	run, _ := sys.Run("testbed_l10", gen.TestbedInputs(5))
//	res, _ := sys.Lineage(core.IndexProj, run.RunID,
//	    gen.FinalName, "product", value.Ix(1, 2), lineage.NewFocus(gen.ListGenName))
package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/lineage"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Method selects a lineage algorithm.
type Method uint8

const (
	// IndexProj is the paper's intensional algorithm (Alg. 2): it traverses
	// the workflow specification graph and touches the trace only at focus
	// processors. The default.
	IndexProj Method = iota
	// Naive is the NI baseline: an extensional traversal of the stored
	// provenance graph.
	Naive
)

func (m Method) String() string {
	switch m {
	case IndexProj:
		return "indexproj"
	case Naive:
		return "naive"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// ParseMethod maps a method name to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "indexproj", "ip":
		return IndexProj, nil
	case "naive", "ni":
		return Naive, nil
	default:
		return 0, fmt.Errorf("core: unknown lineage method %q (want indexproj or naive)", s)
	}
}

// System is a provenance-enabled workflow system instance.
type System struct {
	reg       *engine.Registry
	eng       *engine.Engine
	st        store.Backend
	planCache lineage.PlanCache
	planScope string

	mu        sync.Mutex
	workflows map[string]*workflow.Workflow
	ips       map[string]*lineage.IndexProj
	runWf     map[string]string // run ID -> workflow name
	runSeq    int
}

// Option configures a System.
type Option func(*config)

type config struct {
	dsn        string
	concurrent bool
	planCache  lineage.PlanCache
	planScope  string
}

// WithStoreDSN directs provenance to the given DSN — a sqlike DSN
// ("memory:<name>", "file:<path>", "durable:<dir>") or a sharded store
// ("shard:<dir>?n=N"); the default is a fresh in-memory store.
func WithStoreDSN(dsn string) Option { return func(c *config) { c.dsn = dsn } }

// WithConcurrentEngine executes independent processors in parallel.
func WithConcurrentEngine() Option { return func(c *config) { c.concurrent = true } }

// WithPlanCache routes every evaluator this System builds through a shared
// compiled-plan cache under the given scope. provd passes one
// lineage.SharedPlanCache for the whole process and each tenant's namespace
// as the scope, so plans are reused across requests but never across
// tenants (or across store-topology generations — see lineage's plan-cache
// key).
func WithPlanCache(cache lineage.PlanCache, scope string) Option {
	return func(c *config) {
		c.planCache = cache
		c.planScope = scope
	}
}

// NewSystem creates a System with an empty processor registry.
func NewSystem(opts ...Option) (*System, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	var st store.Backend
	var err error
	switch {
	case cfg.dsn == "":
		st, err = store.OpenMemory()
	case shard.IsShardDSN(cfg.dsn):
		st, err = shard.Open(cfg.dsn)
	default:
		st, err = store.Open(cfg.dsn)
	}
	if err != nil {
		return nil, err
	}
	reg := engine.NewRegistry()
	var engOpts []engine.Option
	if cfg.concurrent {
		engOpts = append(engOpts, engine.Concurrent())
	}
	s := &System{
		reg:       reg,
		eng:       engine.New(reg, engOpts...),
		st:        st,
		planCache: cfg.planCache,
		planScope: cfg.planScope,
		workflows: make(map[string]*workflow.Workflow),
		ips:       make(map[string]*lineage.IndexProj),
		runWf:     make(map[string]string),
	}
	// Adopt any runs already present (a store reopened from a file).
	runs, err := st.ListRuns()
	if err != nil {
		st.Close()
		return nil, err
	}
	for _, r := range runs {
		s.runWf[r.RunID] = r.Workflow
	}
	return s, nil
}

// Close releases the provenance store.
func (s *System) Close() error { return s.st.Close() }

// Registry exposes the processor-type registry for behaviour registration.
func (s *System) Registry() *engine.Registry { return s.reg }

// Store exposes the underlying provenance store (a single *store.Store or a
// sharded shard.ShardedStore, behind the common Backend surface).
func (s *System) Store() store.Backend { return s.st }

// RegisterWorkflow validates and registers a workflow definition, preparing
// the INDEXPROJ evaluator (Alg. 1 runs here, once per definition).
func (s *System) RegisterWorkflow(w *workflow.Workflow) error {
	ip, err := lineage.NewIndexProj(s.st, w)
	if err != nil {
		return err
	}
	if s.planCache != nil {
		ip.UsePlanCache(s.planCache, s.planScope)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.workflows[w.Name]; ok {
		return fmt.Errorf("core: workflow %q already registered", w.Name)
	}
	s.workflows[w.Name] = w
	s.ips[w.Name] = ip
	return nil
}

// Workflow returns a registered workflow definition.
func (s *System) Workflow(name string) (*workflow.Workflow, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.workflows[name]
	return w, ok
}

// Workflows returns a snapshot of the registered workflow definitions keyed
// by name — the spec map streaming ingest validates feeds against.
func (s *System) Workflows() map[string]*workflow.Workflow {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*workflow.Workflow, len(s.workflows))
	for n, w := range s.workflows {
		out[n] = w
	}
	return out
}

// TailIngest streams a live event feed into the provenance store and, when
// the session ends, adopts the newly stored runs into the run-to-workflow
// map so they are immediately queryable. The store backend must support
// streaming ingest (both *store.Store and shard.ShardedStore do).
func (s *System) TailIngest(ctx context.Context, events <-chan trace.Event, opt store.TailOptions) (store.TailStats, error) {
	ti, ok := s.st.(store.TailIngester)
	if !ok {
		return store.TailStats{}, fmt.Errorf("core: store %T does not support streaming ingest", s.st)
	}
	stats, err := ti.TailIngest(ctx, events, opt)
	if aerr := s.adoptRuns(); aerr != nil && err == nil {
		err = aerr
	}
	return stats, err
}

// adoptRuns refreshes the run-to-workflow map from the store (runs can
// appear outside Run — streaming ingest, bulk loads after open).
func (s *System) adoptRuns() error {
	runs, err := s.st.ListRuns()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range runs {
		s.runWf[r.RunID] = r.Workflow
	}
	return nil
}

// RunResult reports one workflow execution.
type RunResult struct {
	RunID    string
	Outputs  map[string]value.Value
	Workflow string
}

// Run executes a registered workflow on the given inputs, persists its
// provenance trace under a fresh run ID, and returns the outputs.
func (s *System) Run(workflowName string, inputs map[string]value.Value) (*RunResult, error) {
	s.mu.Lock()
	w, ok := s.workflows[workflowName]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: workflow %q not registered", workflowName)
	}
	// Skip over run IDs already present (e.g. in a reopened store).
	var runID string
	for {
		s.runSeq++
		runID = fmt.Sprintf("%s-%04d", workflowName, s.runSeq)
		if _, taken := s.runWf[runID]; !taken {
			break
		}
	}
	s.mu.Unlock()

	writer, err := s.st.NewRunWriter(runID, workflowName)
	if err != nil {
		return nil, err
	}
	defer writer.Close()
	outs, err := s.eng.Run(w, inputs, writer)
	if err != nil {
		return nil, fmt.Errorf("core: run %s: %w", runID, err)
	}
	s.mu.Lock()
	s.runWf[runID] = workflowName
	s.mu.Unlock()
	return &RunResult{RunID: runID, Outputs: outs, Workflow: workflowName}, nil
}

// Runs returns the stored run IDs of a workflow, oldest first.
func (s *System) Runs(workflowName string) ([]string, error) {
	return s.st.RunsOf(workflowName)
}

// Lineage answers lin(⟨proc:port[idx]⟩, focus) for one run using the chosen
// algorithm.
func (s *System) Lineage(m Method, runID, proc, port string, idx value.Index, focus lineage.Focus) (*lineage.Result, error) {
	switch m {
	case Naive:
		return lineage.NewNaive(s.st).Lineage(runID, proc, port, idx, focus)
	case IndexProj:
		ip, err := s.indexProjFor(runID)
		if err != nil {
			return nil, err
		}
		return ip.Lineage(runID, proc, port, idx, focus)
	default:
		return nil, fmt.Errorf("core: unknown method %v", m)
	}
}

// LineageMultiRun answers the query across several runs of one workflow.
func (s *System) LineageMultiRun(m Method, runIDs []string, proc, port string, idx value.Index, focus lineage.Focus) (*lineage.Result, error) {
	if len(runIDs) == 0 {
		return lineage.NewResult(), nil
	}
	switch m {
	case Naive:
		return lineage.NewNaive(s.st).LineageMultiRun(runIDs, proc, port, idx, focus)
	case IndexProj:
		ip, err := s.indexProjFor(runIDs[0])
		if err != nil {
			return nil, err
		}
		if err := s.checkSameWorkflow(runIDs); err != nil {
			return nil, err
		}
		return ip.LineageMultiRun(runIDs, proc, port, idx, focus)
	default:
		return nil, fmt.Errorf("core: unknown method %v", m)
	}
}

// LineageMultiRunParallel answers the query across several runs of one
// workflow using the parallel multi-run executor (worker pool + batched
// store probes). Only INDEXPROJ supports parallel execution; the naïve
// method falls back to its sequential multi-run traversal.
func (s *System) LineageMultiRunParallel(ctx context.Context, m Method, runIDs []string, proc, port string, idx value.Index, focus lineage.Focus, opt lineage.MultiRunOptions) (*lineage.Result, error) {
	if len(runIDs) == 0 {
		return lineage.NewResult(), nil
	}
	if m != IndexProj {
		return s.LineageMultiRun(m, runIDs, proc, port, idx, focus)
	}
	ip, err := s.indexProjFor(runIDs[0])
	if err != nil {
		return nil, err
	}
	if err := s.checkSameWorkflow(runIDs); err != nil {
		return nil, err
	}
	return ip.LineageMultiRunParallel(ctx, runIDs, proc, port, idx, focus, opt)
}

// checkSameWorkflow rejects a multi-run query whose runs are unknown or span
// several workflow definitions. Unknown runs surface store.ErrUnknownRun, so
// callers (and the provq CLI) can distinguish "no such run" from a genuinely
// empty lineage answer.
func (s *System) checkSameWorkflow(runIDs []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range runIDs[1:] {
		wf, ok := s.runWf[r]
		if !ok {
			return fmt.Errorf("core: %w: %q", store.ErrUnknownRun, r)
		}
		if wf != s.runWf[runIDs[0]] {
			return fmt.Errorf("core: multi-run query spans different workflows (%s vs %s)", runIDs[0], r)
		}
	}
	return nil
}

func (s *System) indexProjFor(runID string) (*lineage.IndexProj, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wfName, ok := s.runWf[runID]
	if !ok {
		return nil, fmt.Errorf("core: %w: %q", store.ErrUnknownRun, runID)
	}
	ip, ok := s.ips[wfName]
	if !ok {
		return nil, fmt.Errorf("core: run %q belongs to unregistered workflow %q (register the definition first)", runID, wfName)
	}
	return ip, nil
}

// Affected answers the forward (impact) query: the output bindings of focus
// processors that depend on the given binding. Forward queries always use
// the extensional traversal (see lineage.Impact).
func (s *System) Affected(runID, proc, port string, idx value.Index, focus lineage.Focus) (*lineage.Result, error) {
	return lineage.NewImpact(s.st).Affected(runID, proc, port, idx, focus)
}

// Save snapshots the provenance store to a file.
func (s *System) Save(path string) error { return s.st.Save(path) }
