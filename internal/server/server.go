// Package server implements provd's multi-tenant provenance query service:
// an HTTP/JSON front end over the collection-provenance store and the
// parallel multi-run lineage executor.
//
// Each tenant is an isolated namespace — its own store handle (opened
// lazily from a DSN template, LRU-evicted beyond a budget) and its own
// token-bucket rate limit — while all tenants share one compiled-plan cache
// (keyed by tenant scope, workflow and store topology, so plans never leak
// across namespaces or survive a resharding) and one global admission
// semaphore bounding in-flight query work.
//
// Shutdown is a drain: the server stops admitting, lets in-flight requests
// finish, checkpoints every open store, and closes. The ops surface
// (/metrics and /debug/pprof/*) is mounted on the same mux via obs.Mount.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/obs"
	"repro/internal/workflow"
)

// Config sizes the server. The zero value of every field gets a sensible
// default except StoreTemplate, which is required.
type Config struct {
	// StoreTemplate is the store DSN with a {tenant} placeholder, e.g.
	// "file:/var/prov/{tenant}.db", "shard:/var/prov/{tenant}?n=4" or
	// "memory:{tenant}". Every tenant opens its own substituted DSN.
	StoreTemplate string

	// TestbedL is the chain length used when registering the bundled
	// testbed workflow (mirrors provq's -l flag).
	TestbedL int

	// WorkflowJSON lists extra workflow definition files (comma-separated)
	// registered in every tenant's system, like provq's -wfjson.
	WorkflowJSON string

	MaxTenants  int           // open store handles kept before LRU eviction (default 8)
	MaxInflight int           // global bound on concurrently executing queries (default 64)
	QueueWait   time.Duration // longest a request waits for an admission slot (default 1s)

	TenantRate  float64 // per-tenant request rate, tokens/sec (0 = unlimited)
	TenantBurst int     // per-tenant burst size (default 1 when rate limited)

	DefaultTimeout time.Duration // per-request deadline when none is given (default 30s)
	MaxTimeout     time.Duration // hard cap on client-requested deadlines (default 2m)

	PlanCacheSize int // shared plan cache capacity (default lineage.DefaultPlanCacheSize)
}

func (c *Config) fillDefaults() error {
	if !strings.Contains(c.StoreTemplate, "{tenant}") {
		return fmt.Errorf("server: store template %q has no {tenant} placeholder", c.StoreTemplate)
	}
	if c.TestbedL <= 0 {
		c.TestbedL = 10
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 8
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = lineage.DefaultPlanCacheSize
	}
	return nil
}

// Server is the provenance query service. Create with New, expose with
// Handler, stop with Drain.
type Server struct {
	cfg       Config
	tenants   *tenantManager
	adm       *admission
	planCache *lineage.SharedPlanCache
	mux       *http.ServeMux

	// Drain protocol: handlers hold drainMu.RLock for their whole life and
	// re-check draining after acquiring it; Drain sets the flag, then takes
	// the write lock as a barrier that falls only when every in-flight
	// request has finished. The flag is checked before RLock too, so new
	// requests fail fast with 503 instead of queuing behind the barrier.
	drainMu  sync.RWMutex
	draining atomic.Bool
	inflight atomic.Int64
	drained  sync.Once
	drainErr error
}

// New builds a server from cfg. No listener is started; mount Handler on an
// http.Server (or httptest.Server) owned by the caller.
func New(cfg Config) (*Server, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		adm:       newAdmission(cfg.MaxInflight, cfg.QueueWait),
		planCache: lineage.NewSharedPlanCache(cfg.PlanCacheSize),
	}
	s.tenants = newTenantManager(s.openTenant, cfg.MaxTenants, cfg.TenantRate, cfg.TenantBurst)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/runs", s.handleRuns)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	obs.Mount(s.mux, obs.Default)
	return s, nil
}

// Handler returns the server's HTTP surface: /v1/query, /v1/runs,
// /v1/ingest, /healthz, /readyz, /metrics and /debug/pprof/*.
func (s *Server) Handler() http.Handler { return s.mux }

// PlanCache exposes the shared cross-tenant plan cache (for tests and
// introspection).
func (s *Server) PlanCache() *lineage.SharedPlanCache { return s.planCache }

// OpenTenants reports how many tenant store handles are currently open.
func (s *Server) OpenTenants() int { return s.tenants.openCount() }

// openTenant builds a tenant's core.System: the tenant's substituted store
// DSN, the bundled workflow registry (same set provq registers), any extra
// JSON-defined workflows, and the server's shared plan cache scoped to the
// tenant name.
func (s *Server) openTenant(name string) (*core.System, error) {
	dsn := strings.ReplaceAll(s.cfg.StoreTemplate, "{tenant}", name)
	sys, err := core.NewSystem(core.WithStoreDSN(dsn), core.WithPlanCache(s.planCache, name))
	if err != nil {
		return nil, err
	}
	reg := sys.Registry()
	gen.RegisterTestbed(reg)
	gen.RegisterGK(reg, gen.DefaultKEGG())
	gen.RegisterPD(reg, gen.DefaultPubMed())
	for _, w := range gen.BundledWorkflows(s.cfg.TestbedL) {
		if err := sys.RegisterWorkflow(w); err != nil {
			sys.Close()
			return nil, err
		}
	}
	for _, path := range strings.Split(s.cfg.WorkflowJSON, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			sys.Close()
			return nil, err
		}
		var w workflow.Workflow
		if err := json.Unmarshal(data, &w); err != nil {
			sys.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := sys.RegisterWorkflow(&w); err != nil {
			sys.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return sys, nil
}

// begin registers an in-flight request with the drain barrier. It returns
// ok=false when the server is draining; otherwise the caller must invoke the
// returned func when the request finishes.
func (s *Server) begin() (func(), bool) {
	if s.draining.Load() {
		return nil, false
	}
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		return nil, false
	}
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		s.drainMu.RUnlock()
	}, true
}

// Drain performs the graceful shutdown: stop admitting new requests, wait
// for every in-flight request to complete, then checkpoint and close every
// tenant store. Idempotent — later calls return the first drain's result.
// The number of requests that were in flight when the drain began is
// recorded in server.drained.
func (s *Server) Drain() error {
	s.drained.Do(func() {
		s.draining.Store(true)
		srvDrained.Add(s.inflight.Load())
		s.drainMu.Lock() // barrier: falls when all in-flight requests end
		s.drainMu.Unlock()
		s.drainErr = s.tenants.closeAll()
	})
	return s.drainErr
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }
