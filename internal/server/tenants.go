package server

import (
	"container/list"
	"fmt"
	"regexp"
	"sync"

	"repro/internal/core"
	"repro/internal/store"
)

// tenantName pins the accepted namespace alphabet. Tenant names are spliced
// into store DSNs (paths), so the alphabet excludes every path
// metacharacter: no separators, no dots, no leading dash.
var tenantName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_-]{0,63}$`)

// tenant is one open namespace: a full core.System (store handle + workflow
// registry + evaluators) plus the bookkeeping the LRU needs. A tenant's
// evaluators compile through the server's shared plan cache under the
// tenant's name as scope.
type tenant struct {
	name    string
	sys     *core.System
	refs    int           // in-flight requests holding the handle
	el      *list.Element // position in the manager's LRU list
	evicted bool          // dropped from the table; close when refs drains
}

// tenantManager owns the per-tenant namespaces: store handles are opened
// lazily on first use and evicted least-recently-used beyond the open-handle
// budget. Eviction never interrupts a request — a tenant with in-flight
// references is skipped (the table may transiently exceed the budget) and an
// evicted tenant's store closes when its last reference releases.
//
// Rate-limiter buckets live in a separate table keyed by name that survives
// eviction: a tenant cannot reset its own bucket by flooding hard enough to
// get its store handle evicted.
type tenantManager struct {
	open  func(name string) (*core.System, error)
	max   int
	rate  float64
	burst int

	mu       sync.Mutex
	tenants  map[string]*tenant
	order    *list.List // front = most recently used
	limiters map[string]*tokenBucket
	closed   bool
}

func newTenantManager(open func(string) (*core.System, error), max int, rate float64, burst int) *tenantManager {
	if max < 1 {
		max = 1
	}
	return &tenantManager{
		open:     open,
		max:      max,
		rate:     rate,
		burst:    burst,
		tenants:  make(map[string]*tenant),
		order:    list.New(),
		limiters: make(map[string]*tokenBucket),
	}
}

// limiter returns the tenant's rate-limit bucket, creating it on first use.
func (m *tenantManager) limiter(name string) *tokenBucket {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.limiters[name]
	if !ok {
		b = newTokenBucket(m.rate, m.burst)
		m.limiters[name] = b
	}
	return b
}

// acquire returns the named tenant's handle, opening it if necessary, and a
// release function the caller must invoke when the request finishes. The
// store open happens under the table lock: opens are local (file/memory)
// and serializing them keeps double-open races impossible.
func (m *tenantManager) acquire(name string) (*tenant, func(), error) {
	if !tenantName.MatchString(name) {
		return nil, nil, fmt.Errorf("server: invalid tenant name %q", name)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, nil, fmt.Errorf("server: draining")
	}
	t, ok := m.tenants[name]
	if ok {
		t.refs++
		m.order.MoveToFront(t.el)
		m.mu.Unlock()
		return t, func() { m.release(t) }, nil
	}
	sys, err := m.open(name)
	if err != nil {
		m.mu.Unlock()
		return nil, nil, err
	}
	srvTenantsOpened.Add(1)
	t = &tenant{name: name, sys: sys, refs: 1}
	t.el = m.order.PushFront(t)
	m.tenants[name] = t
	victims := m.evictLocked()
	m.mu.Unlock()
	for _, v := range victims {
		closeTenant(v)
	}
	return t, func() { m.release(t) }, nil
}

// evictLocked drops least-recently-used idle tenants until the table fits
// the budget, returning the victims for the caller to close outside the
// lock. Tenants with in-flight references are left alone.
func (m *tenantManager) evictLocked() []*tenant {
	var victims []*tenant
	over := len(m.tenants) - m.max
	for el := m.order.Back(); el != nil && over > 0; {
		prev := el.Prev()
		t := el.Value.(*tenant)
		if t.refs == 0 {
			m.order.Remove(el)
			delete(m.tenants, t.name)
			t.evicted = true
			srvTenantsEvicted.Add(1)
			victims = append(victims, t)
			over--
		}
		el = prev
	}
	return victims
}

func (m *tenantManager) release(t *tenant) {
	m.mu.Lock()
	t.refs--
	closeNow := t.evicted && t.refs == 0
	m.mu.Unlock()
	if closeNow {
		closeTenant(t)
	}
}

// openCount returns the number of open tenant handles.
func (m *tenantManager) openCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tenants)
}

// healthSnapshot returns the per-replica health rows of every open tenant
// whose store reports them (store.HealthReporter). Tenants on single-engine
// stores are omitted — liveness is all there is to say about them.
func (m *tenantManager) healthSnapshot() map[string][]store.ReplicaHealth {
	m.mu.Lock()
	type probe struct {
		t  *tenant
		hr store.HealthReporter
	}
	probes := make([]probe, 0, len(m.tenants))
	for _, t := range m.tenants {
		if hr, ok := t.sys.Store().(store.HealthReporter); ok {
			t.refs++ // hold the handle so eviction cannot close it mid-report
			probes = append(probes, probe{t: t, hr: hr})
		}
	}
	m.mu.Unlock()
	if len(probes) == 0 {
		return nil
	}
	out := make(map[string][]store.ReplicaHealth, len(probes))
	for _, p := range probes {
		out[p.t.name] = p.hr.ReplicaHealth()
		m.release(p.t)
	}
	return out
}

// closeAll checkpoints and closes every open tenant and refuses further
// acquires. The server calls it after the drain barrier, so no tenant has
// in-flight references.
func (m *tenantManager) closeAll() error {
	m.mu.Lock()
	m.closed = true
	victims := make([]*tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		t.evicted = true
		victims = append(victims, t)
	}
	m.tenants = make(map[string]*tenant)
	m.order.Init()
	m.mu.Unlock()
	var first error
	for _, t := range victims {
		if err := closeTenant(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// closeTenant checkpoints a tenant's store when the backend supports it
// (bounding the replay work of the next open) and closes it.
func closeTenant(t *tenant) error {
	if cp, ok := t.sys.Store().(store.Checkpointer); ok {
		if err := cp.Checkpoint(); err != nil {
			t.sys.Close()
			return err
		}
	}
	return t.sys.Close()
}
