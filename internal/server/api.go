package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lineage"
	"repro/internal/obs"
	"repro/internal/queryfmt"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/value"
)

// queryRequest is one parsed /v1/query call.
type queryRequest struct {
	tenant   string
	runID    string
	runIDs   []string
	method   core.Method
	parallel int
	batch    int
	timeout  time.Duration
	values   bool
	partial  bool
	format   string // "text" or "json"
	q        queryfmt.Query
}

// parseQueryRequest decodes the request parameters (query string or form
// body) into a queryRequest. Defaults mirror the provq CLI flags so that the
// same logical query renders the same answer bytes through either front end.
func (s *Server) parseQueryRequest(r *http.Request) (*queryRequest, error) {
	if err := r.ParseForm(); err != nil {
		return nil, fmt.Errorf("bad form: %w", err)
	}
	get := func(key, def string) string {
		if v := r.Form.Get(key); v != "" {
			return v
		}
		return def
	}
	req := &queryRequest{
		tenant: r.Form.Get("tenant"),
		runID:  r.Form.Get("run"),
		format: get("format", "text"),
	}
	if !tenantName.MatchString(req.tenant) {
		return nil, fmt.Errorf("invalid tenant %q", req.tenant)
	}
	if req.format != "text" && req.format != "json" {
		return nil, fmt.Errorf("unknown format %q (want text or json)", req.format)
	}
	for _, id := range strings.Split(r.Form.Get("runs"), ",") {
		if id = strings.TrimSpace(id); id != "" {
			req.runIDs = append(req.runIDs, id)
		}
	}
	if req.runID == "" && len(req.runIDs) == 0 {
		return nil, fmt.Errorf("query requires run (or runs) and binding")
	}
	binding := r.Form.Get("binding")
	if binding == "" {
		return nil, fmt.Errorf("query requires run (or runs) and binding")
	}
	var err error
	if req.method, err = core.ParseMethod(get("method", "indexproj")); err != nil {
		return nil, err
	}
	proc, port, idx, err := queryfmt.ParseBinding(binding)
	if err != nil {
		return nil, err
	}
	direction := get("direction", "back")
	switch direction {
	case "back", "backward", "forward", "fwd":
	default:
		return nil, fmt.Errorf("unknown direction %q (want back or forward)", direction)
	}
	if len(req.runIDs) > 0 && direction != "back" && direction != "backward" {
		return nil, fmt.Errorf("multi-run queries only support direction back")
	}
	req.q = queryfmt.Query{
		Direction: direction,
		Proc:      proc,
		Port:      port,
		Idx:       idx,
		Focus:     queryfmt.ParseFocus(r.Form.Get("focus")),
		Method:    req.method,
	}
	if req.parallel, err = intParam(r, "parallel", 1); err != nil {
		return nil, err
	}
	if req.batch, err = intParam(r, "batch", 0); err != nil {
		return nil, err
	}
	if req.values, err = boolParam(r, "values", true); err != nil {
		return nil, err
	}
	if req.partial, err = boolParam(r, "partial", false); err != nil {
		return nil, err
	}
	if req.partial && len(req.runIDs) == 0 {
		return nil, fmt.Errorf("partial answers require a multi-run query (runs=)")
	}
	req.timeout = s.cfg.DefaultTimeout
	if t := r.Form.Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil {
			return nil, fmt.Errorf("bad timeout: %w", err)
		}
		if d > 0 {
			req.timeout = d
		}
	}
	if req.timeout > s.cfg.MaxTimeout {
		req.timeout = s.cfg.MaxTimeout
	}
	return req, nil
}

func intParam(r *http.Request, key string, def int) (int, error) {
	v := r.Form.Get(key)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %w", key, err)
	}
	return n, nil
}

func boolParam(r *http.Request, key string, def bool) (bool, error) {
	v := r.Form.Get(key)
	if v == "" {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("bad %s: %w", key, err)
	}
	return b, nil
}

// reject writes an error response and bumps the rejection counters for one
// of the three shed classes.
func reject(w http.ResponseWriter, class *obs.Counter, code int, msg string) {
	srvRejected.Add(1)
	class.Add(1)
	http.Error(w, msg, code)
}

// handleQuery answers lineage queries. The request walks the shed pipeline
// in order — drain check, parse, per-tenant rate limit, global admission —
// and only then touches the tenant's store. Text responses are rendered by
// the same queryfmt code the provq CLI uses, so body bytes equal CLI stdout
// for the same query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	srvRequests.Add(1)
	end, ok := s.begin()
	if !ok {
		reject(w, srvRejDraining, http.StatusServiceUnavailable, "draining")
		return
	}
	defer end()
	sp := obs.Start(srvRequestNs)
	defer sp.End()

	req, err := s.parseQueryRequest(r)
	if err != nil {
		srvErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.tenants.limiter(req.tenant).allow(time.Now()) {
		reject(w, srvRejRatelimit, http.StatusTooManyRequests, "tenant rate limit exceeded")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), req.timeout)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		reject(w, srvRejAdmission, http.StatusServiceUnavailable, "server at capacity")
		return
	}
	defer s.adm.release()
	srvAdmitted.Add(1)

	t, release, err := s.tenants.acquire(req.tenant)
	if err != nil {
		srvErrors.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer release()

	res, err := s.execute(ctx, t, req)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	if req.format == "json" {
		writeJSONAnswer(w, req, res)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(req.runIDs) > 0 {
		req.q.WriteMultiRunHeader(w, len(req.runIDs), req.parallel, res)
	} else {
		req.q.WriteHeader(w, res)
	}
	queryfmt.WriteDegraded(w, res)
	queryfmt.WriteEntries(w, res, req.values)
}

// testHookExecute, when non-nil, runs at the start of every admitted
// query's execution — a seam the drain and admission tests use to hold a
// request in flight deterministically.
var testHookExecute func()

// execute runs the parsed query against the tenant's system, mirroring
// provq's dispatch: multi-run parallel, single-run backward by method, or
// forward impact.
func (s *Server) execute(ctx context.Context, t *tenant, req *queryRequest) (*lineage.Result, error) {
	if testHookExecute != nil {
		testHookExecute()
	}
	q := req.q
	if len(req.runIDs) > 0 {
		opt := lineage.MultiRunOptions{Parallelism: req.parallel, BatchSize: req.batch, Partial: req.partial}
		return t.sys.LineageMultiRunParallel(ctx, req.method, req.runIDs, q.Proc, q.Port, q.Idx, q.Focus, opt)
	}
	// Single-run paths have no context plumbing in core.System; the request
	// deadline still bounds admission queue time, and these queries are the
	// short ones.
	switch q.Direction {
	case "forward", "fwd":
		return t.sys.Affected(req.runID, q.Proc, q.Port, q.Idx, q.Focus)
	default:
		return t.sys.Lineage(req.method, req.runID, q.Proc, q.Port, q.Idx, q.Focus)
	}
}

// writeQueryError maps execution failures onto HTTP statuses: unknown run
// 404, shard unavailable (every replica down, non-partial query) 503,
// deadline 504, cancelled 499 (client gone), anything else 500. Unknown-run
// wins over unavailable when both appear in a joined scatter error — the
// semantic answer is the more specific diagnosis.
func writeQueryError(w http.ResponseWriter, err error) {
	srvErrors.Add(1)
	switch {
	case errors.Is(err, store.ErrUnknownRun):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, resilience.ErrUnavailable):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), 499)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// jsonAnswer is the format=json response shape.
type jsonAnswer struct {
	Direction    string      `json:"direction"`
	Binding      string      `json:"binding"`
	Focus        []string    `json:"focus"`
	Method       string      `json:"method"`
	Runs         int         `json:"runs,omitempty"`
	Bindings     int         `json:"bindings"`
	Degraded     bool        `json:"degraded,omitempty"`
	DegradedRuns []string    `json:"degraded_runs,omitempty"`
	Entries      []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Binding string `json:"binding"`
	Value   string `json:"value,omitempty"`
}

func writeJSONAnswer(w http.ResponseWriter, req *queryRequest, res *lineage.Result) {
	ans := jsonAnswer{
		Direction:    req.q.Direction,
		Binding:      fmt.Sprintf("%s:%s%s", queryfmt.DisplayProc(req.q.Proc), req.q.Port, req.q.Idx),
		Focus:        req.q.Focus.Names(),
		Method:       req.method.String(),
		Runs:         len(req.runIDs),
		Bindings:     res.Len(),
		Degraded:     res.Degraded(),
		DegradedRuns: res.DegradedRuns(),
	}
	for _, e := range res.Entries() {
		je := jsonEntry{Binding: e.String()}
		if req.values {
			if el, err := e.Element(); err == nil {
				je.Value = value.Encode(el)
			}
		}
		ans.Entries = append(ans.Entries, je)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ans)
}

// handleRuns lists a tenant's stored runs; text output matches `provq runs`.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	srvRequests.Add(1)
	end, ok := s.begin()
	if !ok {
		reject(w, srvRejDraining, http.StatusServiceUnavailable, "draining")
		return
	}
	defer end()
	sp := obs.Start(srvRequestNs)
	defer sp.End()

	tenantArg := r.URL.Query().Get("tenant")
	if !tenantName.MatchString(tenantArg) {
		srvErrors.Add(1)
		http.Error(w, fmt.Sprintf("invalid tenant %q", tenantArg), http.StatusBadRequest)
		return
	}
	srvAdmitted.Add(1)
	t, release, err := s.tenants.acquire(tenantArg)
	if err != nil {
		srvErrors.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer release()
	runs, err := t.sys.Store().ListRuns()
	if err != nil {
		srvErrors.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		ids := make([]string, 0, len(runs))
		for _, run := range runs {
			ids = append(ids, run.RunID)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"tenant": tenantArg, "runs": ids})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(runs) == 0 {
		fmt.Fprintln(w, "no runs stored")
		return
	}
	for _, run := range runs {
		total, err := t.sys.Store().TotalRecords(run.RunID)
		if err != nil {
			srvErrors.Add(1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "%-30s workflow=%-20s records=%d\n", run.RunID, run.Workflow, total)
	}
}

// handleReadyz reports readiness: 200 "ok" while accepting queries, 503 once
// draining. Load balancers and loadgen's startup gate poll this; it is the
// signal that flips during graceful shutdown.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// healthReport is the /healthz response body.
type healthReport struct {
	Status  string                           `json:"status"` // "ok" or "draining"
	Tenants map[string][]store.ReplicaHealth `json:"tenants,omitempty"`
}

// handleHealthz reports liveness plus detail: always 200 while the process
// serves HTTP, with a JSON body carrying the drain state and, for every open
// tenant whose store tracks replicas (a replicated sharded store), the
// per-replica health rows — role, breaker state, call accounting. Readiness
// gating belongs to /readyz; this endpoint is for operators asking "which
// replica is limping".
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rep := healthReport{Status: "ok", Tenants: s.tenants.healthSnapshot()}
	if s.draining.Load() {
		rep.Status = "draining"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}
