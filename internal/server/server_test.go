package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

// seedTenant materialises a tenant's file-backed store under dir by running
// the bundled testbed workflow n times, exactly as `provq run` would, and
// returns the run IDs.
func seedTenant(t *testing.T, dir, tenant string, l, d, n int) []string {
	t.Helper()
	path := filepath.Join(dir, tenant+".db")
	sys, err := core.NewSystem(core.WithStoreDSN("file:" + path))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	gen.RegisterTestbed(sys.Registry())
	for _, w := range gen.BundledWorkflows(l) {
		if err := sys.RegisterWorkflow(w); err != nil {
			t.Fatal(err)
		}
	}
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		res, err := sys.Run(fmt.Sprintf("testbed_l%d", l), gen.TestbedInputs(d))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, res.RunID)
	}
	if err := sys.Save(path); err != nil {
		t.Fatal(err)
	}
	return ids
}

// newTestServer builds a Server over a file template in dir and an
// httptest front end. Callers own Drain; Close is registered for cleanup.
func newTestServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.StoreTemplate = "file:" + filepath.Join(dir, "{tenant}.db")
	if cfg.TestbedL == 0 {
		cfg.TestbedL = 4
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// get issues a GET and returns status and body.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// queryURL renders a /v1/query URL for the standard testbed probe.
func queryURL(base, tenant, runParam, runValue string, extra url.Values) string {
	params := url.Values{}
	params.Set("tenant", tenant)
	params.Set(runParam, runValue)
	params.Set("binding", "2TO1_FINAL:product[0,0]")
	params.Set("focus", "LISTGEN_1")
	for k, vs := range extra {
		for _, v := range vs {
			params.Add(k, v)
		}
	}
	return base + "/v1/query?" + params.Encode()
}

// waitGoroutines polls until the goroutine count returns to the baseline.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeQueryTenantIsolation: a run stored under tenant t0 answers for
// t0 and is invisible (404) from tenant t1 — namespaces never share data
// even though both tenants share the plan cache and admission machinery.
func TestServeQueryTenantIsolation(t *testing.T) {
	dir := t.TempDir()
	ids := seedTenant(t, dir, "t0", 4, 3, 1)
	_, ts := newTestServer(t, dir, Config{})

	status, body := get(t, queryURL(ts.URL, "t0", "run", ids[0], nil))
	if status != http.StatusOK {
		t.Fatalf("t0 query: status %d, body %s", status, body)
	}
	if !strings.HasPrefix(body, "back(<2TO1_FINAL:product[0,0]>") {
		t.Errorf("unexpected answer header:\n%s", body)
	}
	if !strings.Contains(body, "LISTGEN_1") {
		t.Errorf("focused answer has no LISTGEN_1 binding:\n%s", body)
	}

	// Same run ID through a different namespace: unknown run.
	status, body = get(t, queryURL(ts.URL, "t1", "run", ids[0], nil))
	if status != http.StatusNotFound {
		t.Errorf("t1 sees t0's run: status %d, body %s", status, body)
	}

	// Both methods agree through the HTTP surface (headers differ by name).
	_, ni := get(t, queryURL(ts.URL, "t0", "run", ids[0], url.Values{"method": {"naive"}}))
	_, ip := get(t, queryURL(ts.URL, "t0", "run", ids[0], url.Values{"method": {"indexproj"}}))
	trim := func(s string) string { _, rest, _ := strings.Cut(s, "\n"); return rest }
	if trim(ni) != trim(ip) {
		t.Errorf("NI and INDEXPROJ answers disagree over HTTP:\n%s\nvs\n%s", ni, ip)
	}
}

// TestServeBadRequests pins the 400 surface: bad tenant names (the DSN
// splice guard), missing parameters, unknown directions and methods.
func TestServeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), Config{})
	for _, q := range []string{
		"tenant=../../etc&run=r1&binding=workflow:out[]", // path metachars
		"tenant=&run=r1&binding=workflow:out[]",          // empty tenant
		"tenant=t0&binding=workflow:out[]",               // no run
		"tenant=t0&run=r1",                               // no binding
		"tenant=t0&run=r1&binding=no-colon",
		"tenant=t0&run=r1&binding=workflow:out[]&direction=sideways",
		"tenant=t0&run=r1&binding=workflow:out[]&method=bogus",
		"tenant=t0&runs=r1,r2&binding=workflow:out[]&direction=forward",
		"tenant=t0&run=r1&binding=workflow:out[]&format=xml",
		"tenant=t0&run=r1&binding=workflow:out[]&timeout=fast",
		"tenant=t0&run=r1&binding=workflow:out[]&partial=1",      // partial needs runs=
		"tenant=t0&runs=r1,r2&binding=workflow:out[]&partial=so", // bad bool
	} {
		if status, body := get(t, ts.URL+"/v1/query?"+q); status != http.StatusBadRequest {
			t.Errorf("query?%s: status %d (want 400), body %q", q, status, body)
		}
	}
	if status, _ := get(t, ts.URL+"/v1/runs?tenant=has/slash"); status != http.StatusBadRequest {
		t.Errorf("runs with bad tenant: status %d, want 400", status)
	}
}

// TestServeRateLimit: a burst over the tenant's token bucket sheds with 429
// and the rejection is observable in server.rejected.ratelimit.
func TestServeRateLimit(t *testing.T) {
	dir := t.TempDir()
	ids := seedTenant(t, dir, "t0", 4, 2, 1)
	_, ts := newTestServer(t, dir, Config{TenantRate: 1, TenantBurst: 2})

	rejBefore, rlBefore := srvRejected.Load(), srvRejRatelimit.Load()
	var ok200, ok429 int
	for i := 0; i < 6; i++ {
		switch status, body := get(t, queryURL(ts.URL, "t0", "run", ids[0], nil)); status {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			ok429++
		default:
			t.Fatalf("unexpected status %d: %s", status, body)
		}
	}
	if ok200 == 0 || ok429 == 0 {
		t.Fatalf("burst of 6 at burst=2: got %d OK, %d rate-limited — want both > 0", ok200, ok429)
	}
	if d := srvRejRatelimit.Load() - rlBefore; d != int64(ok429) {
		t.Errorf("server.rejected.ratelimit advanced by %d, want %d", d, ok429)
	}
	if d := srvRejected.Load() - rejBefore; d != int64(ok429) {
		t.Errorf("server.rejected advanced by %d, want %d", d, ok429)
	}
}

// TestServeAdmissionReject: with one execution slot occupied and a tiny
// queue-wait budget, the next query sheds with 503 and bumps
// server.rejected.admission.
func TestServeAdmissionReject(t *testing.T) {
	dir := t.TempDir()
	ids := seedTenant(t, dir, "t0", 4, 2, 1)
	srv, ts := newTestServer(t, dir, Config{MaxInflight: 1, QueueWait: 20 * time.Millisecond})

	entered := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	testHookExecute = func() {
		if first.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}
	defer func() { testHookExecute = nil }()

	admBefore := srvRejAdmission.Load()
	done := make(chan int, 1)
	go func() {
		status, _ := get(t, queryURL(ts.URL, "t0", "run", ids[0], nil))
		done <- status
	}()
	<-entered // slot holder is mid-execution

	if status, body := get(t, queryURL(ts.URL, "t0", "run", ids[0], nil)); status != http.StatusServiceUnavailable {
		t.Errorf("second query with full slot: status %d, body %s", status, body)
	}
	if d := srvRejAdmission.Load() - admBefore; d != 1 {
		t.Errorf("server.rejected.admission advanced by %d, want 1", d)
	}
	close(release)
	if status := <-done; status != http.StatusOK {
		t.Errorf("slot holder finished with %d, want 200", status)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestServeDrainMidFlight is the drain contract end to end: with a request
// held mid-execution, Drain blocks, new requests and health checks get 503,
// the in-flight request still completes with 200, and after the barrier
// falls every tenant store is checkpointed shut and no goroutines linger.
func TestServeDrainMidFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	ids := seedTenant(t, dir, "t0", 4, 2, 1)
	srv, ts := newTestServer(t, dir, Config{})

	entered := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	testHookExecute = func() {
		if first.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}
	defer func() { testHookExecute = nil }()

	drainingBefore := srvRejDraining.Load()
	inFlight := make(chan int, 1)
	go func() {
		status, _ := get(t, queryURL(ts.URL, "t0", "run", ids[0], nil))
		inFlight <- status
	}()
	<-entered

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain() }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while the old request is still being served.
	if status, body := get(t, queryURL(ts.URL, "t0", "run", ids[0], nil)); status != http.StatusServiceUnavailable {
		t.Errorf("query during drain: status %d, body %s", status, body)
	}
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: status %d, want 503", status)
	}
	// Liveness stays 200 during drain; the body says draining.
	if status, body := get(t, ts.URL+"/healthz"); status != http.StatusOK || !strings.Contains(body, `"draining"`) {
		t.Errorf("healthz during drain: status %d, body %q, want 200 draining", status, body)
	}
	if d := srvRejDraining.Load() - drainingBefore; d < 1 {
		t.Errorf("server.rejected.draining advanced by %d, want >= 1", d)
	}
	select {
	case err := <-drainDone:
		t.Fatalf("drain completed with request still in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if status := <-inFlight; status != http.StatusOK {
		t.Errorf("in-flight request dropped by drain: status %d, want 200", status)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := srv.OpenTenants(); n != 0 {
		t.Errorf("%d tenant stores still open after drain", n)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	waitGoroutines(t, baseline)
}

// TestServeConcurrentTenants hammers the full stack under the race
// detector: 4 tenants × 4 clients × 8 mixed queries with a tenant budget of
// 2, so handles are evicted and reopened while other requests hold them.
// Every response must be a clean 200, LRU eviction must actually occur, and
// drain must leave nothing behind.
func TestServeConcurrentTenants(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	tenants := []string{"t0", "t1", "t2", "t3"}
	runIDs := make(map[string][]string, len(tenants))
	for _, tn := range tenants {
		runIDs[tn] = seedTenant(t, dir, tn, 4, 2, 2)
	}
	srv, ts := newTestServer(t, dir, Config{MaxTenants: 2, MaxInflight: 8})
	client := ts.Client()

	evictedBefore := srvTenantsEvicted.Load()
	var wg sync.WaitGroup
	errc := make(chan error, len(tenants)*4)
	for _, tn := range tenants {
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(tn string, c int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					var u string
					switch i % 3 {
					case 0:
						u = queryURL(ts.URL, tn, "run", runIDs[tn][0], url.Values{"method": {"naive"}})
					case 1:
						u = queryURL(ts.URL, tn, "run", runIDs[tn][1], nil)
					default:
						u = queryURL(ts.URL, tn, "runs", strings.Join(runIDs[tn], ","),
							url.Values{"parallel": {"2"}})
					}
					resp, err := client.Get(u)
					if err != nil {
						errc <- err
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("tenant %s client %d: status %d: %s", tn, c, resp.StatusCode, body)
						return
					}
					if !strings.Contains(string(body), "LISTGEN_1") {
						errc <- fmt.Errorf("tenant %s: answer missing LISTGEN_1:\n%s", tn, body)
						return
					}
				}
			}(tn, c)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if d := srvTenantsEvicted.Load() - evictedBefore; d < 1 {
		t.Errorf("4 tenants under a budget of 2 evicted %d handles, want >= 1", d)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := srv.OpenTenants(); n != 0 {
		t.Errorf("%d tenant stores still open after drain", n)
	}
	ts.Close()
	client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	waitGoroutines(t, baseline)
}

// TestServeRunsAndHealth covers the non-query endpoints: runs listing in
// provq's format, the empty-store message, JSON format, and healthz.
func TestServeRunsAndHealth(t *testing.T) {
	dir := t.TempDir()
	ids := seedTenant(t, dir, "t0", 4, 2, 1)
	srv, ts := newTestServer(t, dir, Config{})

	if status, body := get(t, ts.URL+"/readyz"); status != http.StatusOK || body != "ok\n" {
		t.Errorf("readyz: %d %q", status, body)
	}
	if status, body := get(t, ts.URL+"/healthz"); status != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("healthz: %d %q", status, body)
	}
	status, body := get(t, ts.URL+"/v1/runs?tenant=t0")
	if status != http.StatusOK || !strings.Contains(body, ids[0]) {
		t.Errorf("runs listing: %d\n%s", status, body)
	}
	if status, body = get(t, ts.URL+"/v1/runs?tenant=empty"); status != http.StatusOK || body != "no runs stored\n" {
		t.Errorf("empty tenant runs: %d %q", status, body)
	}
	status, body = get(t, ts.URL+"/v1/runs?tenant=t0&format=json")
	if status != http.StatusOK || !strings.Contains(body, `"runs":["`+ids[0]+`"]`) {
		t.Errorf("json runs listing: %d\n%s", status, body)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	// Drained servers refuse the whole API, idempotently.
	if status, _ = get(t, ts.URL+"/v1/runs?tenant=t0"); status != http.StatusServiceUnavailable {
		t.Errorf("runs after drain: status %d, want 503", status)
	}
	if err := srv.Drain(); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestServePartialMultiRun: partial=1 over a healthy store answers exactly
// like the non-partial query and carries no degraded marker in either
// rendering — degradation only surfaces when a replicated shard is down,
// which the chaos tests in internal/shard exercise at the lineage layer.
func TestServePartialMultiRun(t *testing.T) {
	dir := t.TempDir()
	ids := seedTenant(t, dir, "t0", 4, 2, 2)
	_, ts := newTestServer(t, dir, Config{})

	runs := strings.Join(ids, ",")
	status, full := get(t, queryURL(ts.URL, "t0", "runs", runs, nil))
	if status != http.StatusOK {
		t.Fatalf("multi-run query: %d %s", status, full)
	}
	status, partial := get(t, queryURL(ts.URL, "t0", "runs", runs, url.Values{"partial": {"1"}}))
	if status != http.StatusOK {
		t.Fatalf("partial multi-run query: %d %s", status, partial)
	}
	if partial != full {
		t.Errorf("partial answer over a healthy store diverges:\n%s\nvs\n%s", partial, full)
	}
	if strings.Contains(partial, "DEGRADED") {
		t.Errorf("healthy partial answer carries a degraded marker:\n%s", partial)
	}
	status, body := get(t, queryURL(ts.URL, "t0", "runs", runs, url.Values{"partial": {"1"}, "format": {"json"}}))
	if status != http.StatusOK {
		t.Fatalf("partial json query: %d %s", status, body)
	}
	if strings.Contains(body, `"degraded"`) {
		t.Errorf("healthy json answer sets degraded fields:\n%s", body)
	}
}

// TestServeJSONFormat: format=json returns a parseable answer whose binding
// count matches the text rendering.
func TestServeJSONFormat(t *testing.T) {
	dir := t.TempDir()
	ids := seedTenant(t, dir, "t0", 4, 2, 1)
	_, ts := newTestServer(t, dir, Config{})

	status, body := get(t, queryURL(ts.URL, "t0", "run", ids[0], url.Values{"format": {"json"}}))
	if status != http.StatusOK {
		t.Fatalf("json query: %d %s", status, body)
	}
	for _, want := range []string{`"direction":"back"`, `"binding":"2TO1_FINAL:product[0,0]"`, `"method":"indexproj"`, `"entries":[`} {
		if !strings.Contains(body, want) {
			t.Errorf("json answer missing %s:\n%s", want, body)
		}
	}
}
