package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
)

var (
	srvIngests      = obs.C("server.ingest_requests")
	srvIngestEvents = obs.C("server.ingest_events")
)

// ingestResponse is the POST /v1/ingest response body.
type ingestResponse struct {
	store.TailStats
	// DecodeError reports a malformed NDJSON line that terminated the feed;
	// events decoded before it were still applied (or dead-lettered).
	DecodeError string `json:"decode_error,omitempty"`
}

// handleIngest accepts a streamed provenance feed: POST /v1/ingest?tenant=T
// with an NDJSON body, one trace.Event per line. Events flow through the
// tenant store's streaming ingest while queries keep answering from pinned
// snapshots — this is the live half of the snapshot-isolation story. Events
// that fail validation land in the tenant's dead-letter queue (inspect with
// provq -dlq) and do not fail the request; only a line that is not valid
// JSON terminates the feed early, reported in the response alongside the
// stats for everything before it.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	srvRequests.Add(1)
	srvIngests.Add(1)
	end, ok := s.begin()
	if !ok {
		reject(w, srvRejDraining, http.StatusServiceUnavailable, "draining")
		return
	}
	defer end()

	if r.Method != http.MethodPost {
		srvErrors.Add(1)
		http.Error(w, "ingest requires POST", http.StatusMethodNotAllowed)
		return
	}
	tenantArg := r.URL.Query().Get("tenant")
	if !tenantName.MatchString(tenantArg) {
		srvErrors.Add(1)
		http.Error(w, fmt.Sprintf("invalid tenant %q", tenantArg), http.StatusBadRequest)
		return
	}
	t, release, err := s.tenants.acquire(tenantArg)
	if err != nil {
		srvErrors.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer release()

	// Decode in this goroutine, ingest in another: the feed channel gives the
	// store's session its natural streaming shape, and a client disconnect
	// (ctx cancel) flushes the open runs rather than dropping them.
	events := make(chan trace.Event, 64)
	type result struct {
		stats store.TailStats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		stats, err := t.sys.TailIngest(r.Context(), events, store.TailOptions{Specs: t.sys.Workflows()})
		done <- result{stats, err}
	}()

	var decodeErr string
	dec := json.NewDecoder(r.Body)
	for {
		var ev trace.Event
		if err := dec.Decode(&ev); err != nil {
			if !errors.Is(err, io.EOF) {
				decodeErr = err.Error()
			}
			break
		}
		srvIngestEvents.Add(1)
		select {
		case events <- ev:
		case <-r.Context().Done():
		}
		if r.Context().Err() != nil {
			break
		}
	}
	close(events)
	res := <-done

	if res.err != nil && !errors.Is(res.err, r.Context().Err()) {
		srvErrors.Add(1)
		http.Error(w, res.err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(ingestResponse{TailStats: res.stats, DecodeError: decodeErr})
}
