package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// errAdmission is returned when a request cannot get an execution slot
// within its queue-wait budget; the handler maps it to 503.
var errAdmission = errors.New("server: admission queue full")

// admission is the global admission controller: a counting semaphore
// bounding the queries executing concurrently, with a bounded queue wait.
// Bounding in-flight work keeps a burst from convoying every tenant's
// queries behind each other's store probes; the wait bound keeps the queue
// from absorbing an open-loop overload silently (shed instead of buffer —
// the rejected counter makes the overload observable).
type admission struct {
	slots   chan struct{}
	maxWait time.Duration
}

func newAdmission(inflight int, maxWait time.Duration) *admission {
	if inflight < 1 {
		inflight = 1
	}
	return &admission{slots: make(chan struct{}, inflight), maxWait: maxWait}
}

// acquire blocks until a slot is free, the queue-wait budget is spent, or
// ctx is done. The wait (even for immediate grants) is recorded in
// server.queue_wait_ns.
func (a *admission) acquire(ctx context.Context) error {
	sp := obs.Start(srvQueueWaitNs)
	defer sp.End()
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return errAdmission
	}
}

func (a *admission) release() { <-a.slots }

// tokenBucket is a per-tenant rate limiter: capacity `burst` tokens,
// refilled continuously at `rate` tokens per second. A zero or negative
// rate disables limiting.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// allow consumes one token if available.
func (b *tokenBucket) allow(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
