package server

import "repro/internal/obs"

// Metric handles for the query server, resolved once at package init and
// exposed on the server's own /metrics endpoint (obs.Mount). server.rejected
// is always the sum of the three rejection classes, and every request is
// accounted for exactly once:
//
//	requests = admitted + rejected + malformed  (malformed ⊆ errors)
//
// server.errors also counts execution failures of admitted requests. The two
// histograms split a request's life: queue_wait_ns is time spent waiting for
// an admission slot, request_ns is end-to-end handler time (queue wait
// included).
var (
	srvRequests = obs.C("server.requests")
	srvAdmitted = obs.C("server.admitted")

	srvRejected       = obs.C("server.rejected")
	srvRejRatelimit   = obs.C("server.rejected.ratelimit")
	srvRejAdmission   = obs.C("server.rejected.admission")
	srvRejDraining    = obs.C("server.rejected.draining")
	srvErrors         = obs.C("server.errors")
	srvDrained        = obs.C("server.drained")
	srvTenantsOpened  = obs.C("server.tenants.opened")
	srvTenantsEvicted = obs.C("server.tenants.evicted")

	srvQueueWaitNs = obs.H("server.queue_wait_ns")
	srvRequestNs   = obs.H("server.request_ns")
)
