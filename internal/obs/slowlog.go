package obs

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The slow-query log emits one structured line per query whose total
// duration meets a configured threshold:
//
//	slow_query kind=lineage.indexproj total_ns=1234567 run=trial-0001 probes=3 bindings=12
//
// The line is fully built in memory and handed to the sink as a single
// Write under a mutex, so concurrent slow queries never interleave bytes
// within (or across) records — the log cannot tear.

var (
	slowMu        sync.Mutex
	slowSink      io.Writer
	slowThreshold atomic.Int64
	slowRecords   = C("obs.slow_queries")
)

// SetSlowLog configures the slow-query sink and threshold. A nil writer or
// non-positive threshold disables the log. Safe to call concurrently with
// queries in flight.
func SetSlowLog(w io.Writer, threshold time.Duration) {
	slowMu.Lock()
	slowSink = w
	slowMu.Unlock()
	if w == nil || threshold <= 0 {
		slowThreshold.Store(0)
		return
	}
	slowThreshold.Store(threshold.Nanoseconds())
}

// SlowExceeded reports whether a query of the given duration should be
// logged. It is the cheap guard call sites use before assembling fields:
// one atomic load when the log is disabled.
func SlowExceeded(d time.Duration) bool {
	t := slowThreshold.Load()
	return t > 0 && d.Nanoseconds() >= t
}

// Slow emits one slow-query record. kv lists alternating field names and
// values; values containing spaces or quotes are quoted. The record is
// written with a single Write call.
func Slow(kind string, total time.Duration, kv ...string) {
	var b strings.Builder
	b.Grow(64 + 16*len(kv))
	b.WriteString("slow_query kind=")
	b.WriteString(kind)
	b.WriteString(" total_ns=")
	b.WriteString(strconv.FormatInt(total.Nanoseconds(), 10))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(kv[i])
		b.WriteByte('=')
		v := kv[i+1]
		if strings.ContainsAny(v, " \t\n\"=") {
			v = strconv.Quote(v)
		}
		b.WriteString(v)
	}
	b.WriteByte('\n')
	line := b.String()

	slowMu.Lock()
	w := slowSink
	if w != nil {
		io.WriteString(w, line)
	}
	slowMu.Unlock()
	slowRecords.Add(1)
}
