package obs

import (
	"sync/atomic"
	"time"
)

// Span measures one stage of a query (plan, probe, traverse, merge, WAL
// append, ...) into a histogram. Spans are values, not allocations: Start
// returns a zero Span when recording is disabled, and End on a zero Span is
// a no-op, so a disabled call site costs one atomic load and a branch.
//
// The package keeps global started/ended tallies (ungated, so a span armed
// while recording was on still balances if it ends after recording is turned
// off). After every armed span has ended, SpansStarted() == SpansEnded() —
// the "span nesting balanced" invariant the differential tests assert.
type Span struct {
	h  *Histogram
	t0 time.Time
}

var (
	spansStarted atomic.Int64
	spansEnded   atomic.Int64
)

// Start begins a span recording into h. When recording is disabled the
// returned span is inert.
func Start(h *Histogram) Span {
	if !enabled.Load() {
		return Span{}
	}
	spansStarted.Add(1)
	return Span{h: h, t0: time.Now()}
}

// End finishes the span, records its duration, and returns it. Ending a
// zero (disabled) span returns 0 without recording.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.t0)
	spansEnded.Add(1)
	s.h.Observe(d.Nanoseconds())
	return d
}

// SpansStarted returns the number of armed spans started process-wide.
func SpansStarted() int64 { return spansStarted.Load() }

// SpansEnded returns the number of armed spans ended process-wide.
func SpansEnded() int64 { return spansEnded.Load() }
