package obs

import (
	"testing"
)

// The disabled path is the cost every instrumented hot loop pays when
// metrics are off: one atomic load and a branch. The budget (ISSUE 4) is "a
// few ns/op"; these benchmarks guard it.

func BenchmarkCounterAddDisabled(b *testing.B) {
	defer SetEnabled(true)
	SetEnabled(false)
	c := NewRegistry().Counter("bench.c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	c := NewRegistry().Counter("bench.c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	defer SetEnabled(true)
	SetEnabled(false)
	h := NewRegistry().Histogram("bench.h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Histogram("bench.h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	defer SetEnabled(true)
	SetEnabled(false)
	h := NewRegistry().Histogram("bench.span")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(h)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	h := NewRegistry().Histogram("bench.span")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := Start(h)
		sp.End()
	}
}

// TestDisabledPathBudget is the cheap, deterministic form of the overhead
// guard: with recording off, a counter add must not fall back to any slow
// path (map lookup, lock). We can't assert wall time portably in a unit
// test, but we can assert the disabled path allocates nothing.
func TestDisabledPathBudget(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	c := NewRegistry().Counter("budget.c")
	h := NewRegistry().Histogram("budget.h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(17)
		sp := Start(h)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates: %v allocs/op", allocs)
	}
}
