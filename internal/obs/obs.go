// Package obs is the engine's zero-dependency observability layer: an
// atomic-counter/histogram metrics registry, lightweight span tracing for
// per-query stage breakdown (the paper's t1/t2 decomposition, §4), and a
// threshold-based slow-query log.
//
// Design constraints, in order:
//
//  1. The disabled path costs a few ns per call site (one atomic load and a
//     branch) — cheap enough to leave instrumentation in the hottest loops.
//  2. The enabled path never takes a lock: counters and histogram buckets
//     are plain atomics, so concurrent writers never serialize and a
//     concurrent reader sees a consistent-enough snapshot (each cell is
//     individually atomic; cross-cell skew is bounded by in-flight updates).
//  3. Metric handles are resolved once, at package init, by name
//     (obs.C/obs.H); the per-event path never touches the registry map.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates every recording path. Metrics are on by default: the steady
// -state cost is a handful of atomic adds per query, and the benchmark
// harness reads the counters to report per-stage columns.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns recording on or off. Counters keep their values when
// disabled; they just stop moving.
func SetEnabled(on bool) { enabled.Store(on) }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter when recording is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// holds observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i);
// bucket 0 holds zero. 48 buckets cover durations up to ~3 days in
// nanoseconds.
const histBuckets = 48

// Histogram records int64 observations (typically nanosecond durations or
// sizes) into power-of-two buckets, with exact count/sum/min/max. Every cell
// is an independent atomic: recording takes no lock and concurrent snapshots
// cannot observe torn per-cell values.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one value when recording is enabled. Negative values are
// clamped to zero.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Count returns the number of observations recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// snap captures the histogram's cells.
func (h *Histogram) snap() HistSnap {
	s := HistSnap{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min = 0
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Registry holds named metrics. The zero value is not usable; use
// NewRegistry or the package-level Default. Lookup (C/H) is guarded by a
// mutex, but callers resolve handles once at init — the recording path never
// enters the registry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every engine package registers into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{name: name}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram(name)
	r.hists[name] = h
	return h
}

// C resolves a counter in the Default registry; engine packages bind their
// metric handles with it at init.
func C(name string) *Counter { return Default.Counter(name) }

// H resolves a histogram in the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// HistSnap is a point-in-time copy of one histogram's cells.
type HistSnap struct {
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
	Buckets [histBuckets]int64
}

// Sub returns the delta s - prev. Count, Sum and Buckets subtract; Min and
// Max are copied from s (extrema are not delta-able).
func (s HistSnap) Sub(prev HistSnap) HistSnap {
	d := HistSnap{
		Count: s.Count - prev.Count,
		Sum:   s.Sum - prev.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Merge returns the union of two snapshots, as if their observations had
// been recorded into one histogram.
func (s HistSnap) Merge(o HistSnap) HistSnap {
	m := HistSnap{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
	}
	switch {
	case s.Count == 0:
		m.Min, m.Max = o.Min, o.Max
	case o.Count == 0:
		m.Min, m.Max = s.Min, s.Max
	default:
		m.Min, m.Max = s.Min, s.Max
		if o.Min < m.Min {
			m.Min = o.Min
		}
		if o.Max > m.Max {
			m.Max = o.Max
		}
	}
	for i := range s.Buckets {
		m.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return m
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) from the
// bucket counts; the answer is exact to within one power of two.
func (s HistSnap) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			upper := int64(1) << uint(i)
			if upper > s.Max && s.Max > 0 {
				return s.Max
			}
			return upper
		}
	}
	return s.Max
}

// Snapshot is a point-in-time copy of a whole registry.
type Snapshot struct {
	Counters   map[string]int64
	Histograms map[string]HistSnap
}

// Snapshot copies every metric's current value. Each cell is read
// atomically; the snapshot as a whole is taken without stopping writers, so
// cross-metric skew is bounded by the updates in flight while it runs.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	cs := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		cs = append(cs, c)
	}
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	r.mu.RUnlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(cs)),
		Histograms: make(map[string]HistSnap, len(hs)),
	}
	for _, c := range cs {
		s.Counters[c.name] = c.Load()
	}
	for _, h := range hs {
		s.Histograms[h.name] = h.snap()
	}
	return s
}

// Sub returns the per-metric delta s - prev. Metrics absent from prev keep
// their value from s.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Histograms: make(map[string]HistSnap, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		d.Counters[name] = v - prev.Counters[name]
	}
	for name, h := range s.Histograms {
		d.Histograms[name] = h.Sub(prev.Histograms[name])
	}
	return d
}

// Counter returns a counter's value from the snapshot (0 if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Hist returns a histogram snapshot by name (zero value if absent).
func (s Snapshot) Hist(name string) HistSnap { return s.Histograms[name] }

// HistSum returns a histogram's sum from the snapshot (0 if absent).
func (s Snapshot) HistSum(name string) int64 { return s.Histograms[name].Sum }

// histJSON is the JSON shape of one histogram in a metrics dump.
type histJSON struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Avg   float64 `json:"avg"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
}

// dumpJSON is the JSON shape of a metrics dump: expvar-style maps keyed by
// metric name. encoding/json emits map keys sorted, so the dump is
// deterministic for a fixed metric set.
type dumpJSON struct {
	Counters   map[string]int64    `json:"counters"`
	Histograms map[string]histJSON `json:"histograms"`
}

// WriteJSON writes the registry's current state as one JSON document. The
// document is built from an atomic-cell snapshot and marshalled in memory
// before any byte reaches w, so a dump taken under concurrent writers is
// always well-formed JSON (never torn mid-value).
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	d := dumpJSON{
		Counters:   s.Counters,
		Histograms: make(map[string]histJSON, len(s.Histograms)),
	}
	for name, h := range s.Histograms {
		j := histJSON{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
		if h.Count > 0 {
			j.Avg = float64(h.Sum) / float64(h.Count)
			j.P50 = h.Quantile(0.50)
			j.P99 = h.Quantile(0.99)
		}
		d.Histograms[name] = j
	}
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// Names returns the sorted names of every registered metric, counters and
// histograms together. The engine registers all its metrics at package init,
// so the name set is deterministic per binary — golden tests pin it.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.counters)+len(r.hists))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// String renders a counter for debugging.
func (c *Counter) String() string { return fmt.Sprintf("%s=%d", c.name, c.Load()) }
