package obs

import (
	"encoding/binary"
	"testing"
)

// snapFromSeed deterministically builds a histogram snapshot from fuzz
// bytes by replaying them as observations into a real histogram, so every
// fuzzed snapshot is one a Histogram could actually produce.
func snapFromSeed(data []byte) HistSnap {
	h := newHistogram("fuzz")
	for len(data) >= 8 {
		v := int64(binary.LittleEndian.Uint64(data[:8]))
		h.Observe(v)
		data = data[8:]
	}
	return h.snap()
}

// FuzzHistSnapMerge checks the merge algebra on arbitrary realizable
// snapshots: commutativity, identity, count/sum/bucket additivity, and
// extrema correctness.
func FuzzHistSnapMerge(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, []byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Add(
		[]byte{10, 0, 0, 0, 0, 0, 0, 0, 200, 0, 0, 0, 0, 0, 0, 0},
		[]byte{5, 0, 0, 0, 0, 0, 0, 0},
	)
	f.Fuzz(func(t *testing.T, a, b []byte) {
		sa, sb := snapFromSeed(a), snapFromSeed(b)
		m := sa.Merge(sb)

		if m.Count != sa.Count+sb.Count {
			t.Fatalf("count: %d != %d+%d", m.Count, sa.Count, sb.Count)
		}
		if m.Sum != sa.Sum+sb.Sum {
			t.Fatalf("sum: %d != %d+%d", m.Sum, sa.Sum, sb.Sum)
		}
		for i := range m.Buckets {
			if m.Buckets[i] != sa.Buckets[i]+sb.Buckets[i] {
				t.Fatalf("bucket %d: %d != %d+%d", i, m.Buckets[i], sa.Buckets[i], sb.Buckets[i])
			}
		}
		if rev := sb.Merge(sa); rev != m {
			t.Fatalf("merge not commutative:\n %+v\n %+v", m, rev)
		}
		if sa.Count > 0 && sb.Count > 0 {
			wantMin, wantMax := sa.Min, sa.Max
			if sb.Min < wantMin {
				wantMin = sb.Min
			}
			if sb.Max > wantMax {
				wantMax = sb.Max
			}
			if m.Min != wantMin || m.Max != wantMax {
				t.Fatalf("extrema: got %d/%d want %d/%d", m.Min, m.Max, wantMin, wantMax)
			}
		}
		// Merging a delta back reproduces the union: m.Sub(sa) == sb on the
		// additive cells (extrema are lossy in Sub by design).
		d := m.Sub(sa)
		if d.Count != sb.Count || d.Sum != sb.Sum {
			t.Fatalf("sub does not invert merge: %+v vs %+v", d, sb)
		}
		for i := range d.Buckets {
			if d.Buckets[i] != sb.Buckets[i] {
				t.Fatalf("sub bucket %d: %d != %d", i, d.Buckets[i], sb.Buckets[i])
			}
		}
		// The identity element really is the zero snapshot.
		var zero HistSnap
		if got := sa.Merge(zero); got != sa {
			t.Fatalf("zero not identity: %+v != %+v", got, sa)
		}
	})
}

// FuzzCounterDelta checks the snapshot subtraction path for counters under
// arbitrary interleavings of adds.
func FuzzCounterDelta(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(5), int64(7))
	f.Add(int64(1)<<40, int64(3))
	f.Fuzz(func(t *testing.T, a, b int64) {
		if a < 0 || b < 0 || a > 1<<40 || b > 1<<40 {
			t.Skip()
		}
		r := NewRegistry()
		c := r.Counter("fuzz.c")
		c.Add(a)
		s0 := r.Snapshot()
		c.Add(b)
		s1 := r.Snapshot()
		if d := s1.Sub(s0).Counter("fuzz.c"); d != b {
			t.Fatalf("delta = %d, want %d", d, b)
		}
	})
}
