package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability HTTP mux for a registry:
//
//	/metrics        expvar-style JSON dump of every counter and histogram
//	/debug/pprof/*  the standard net/http/pprof profiling endpoints
//
// The mux is deliberately built by hand (not http.DefaultServeMux) so that
// linking obs never mutates global HTTP state.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, r)
	return mux
}

// Mount registers the observability endpoints (/metrics and /debug/pprof/*)
// on an existing mux. Long-running servers (provd) mount the ops surface on
// their own API mux instead of running a second listener.
func Mount(mux *http.ServeMux, r *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve exposes the Default registry's Handler on addr (e.g. ":9090" or
// "127.0.0.1:0"). It returns the bound address and a function that shuts the
// listener down. The server runs on a background goroutine; CLI binaries
// call Serve when the -metrics-addr flag is set.
func Serve(addr string) (bound string, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: Handler(Default)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
