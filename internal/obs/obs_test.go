package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	c.Add(3)
	c.Add(4)
	if got := c.Load(); got != 7 {
		t.Fatalf("Load = %d, want 7", got)
	}
	if r.Counter("test.counter") != c {
		t.Fatal("second lookup returned a different counter")
	}
	if c.Name() != "test.counter" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestCounterDisabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("test.gated")
	SetEnabled(false)
	c.Add(5)
	if got := c.Load(); got != 0 {
		t.Fatalf("disabled Add recorded: %d", got)
	}
	SetEnabled(true)
	c.Add(5)
	if got := c.Load(); got != 5 {
		t.Fatalf("enabled Add lost: %d", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist")
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, -5} {
		h.Observe(v)
	}
	s := h.snap()
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if s.Sum != 1106 { // -5 clamps to 0
		t.Fatalf("Sum = %d, want 1106", s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("Min/Max = %d/%d, want 0/1000", s.Min, s.Max)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestHistogramEmptySnap(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("test.empty").snap()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
}

func TestQuantileBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.q")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.snap()
	p50 := s.Quantile(0.5)
	// The true median is 500; the bucketed answer is exact to a power of 2.
	if p50 < 500 || p50 > 1024 {
		t.Fatalf("p50 = %d, want within [500,1024]", p50)
	}
	p100 := s.Quantile(1)
	if p100 < 1000 || p100 > 1024 {
		t.Fatalf("p100 = %d, want within [1000,1024]", p100)
	}
	if s.Quantile(0) == 0 && s.Min > 0 {
		// rank clamps to 1, so the 0-quantile is the smallest bucket bound
		t.Fatalf("q0 = 0 for all-positive data")
	}
}

func TestSnapshotSubAndMerge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.c")
	h := r.Histogram("test.h")
	c.Add(10)
	h.Observe(100)
	s0 := r.Snapshot()
	c.Add(5)
	h.Observe(200)
	h.Observe(50)
	s1 := r.Snapshot()
	d := s1.Sub(s0)
	if d.Counter("test.c") != 5 {
		t.Fatalf("counter delta = %d, want 5", d.Counter("test.c"))
	}
	hd := d.Hist("test.h")
	if hd.Count != 2 || hd.Sum != 250 {
		t.Fatalf("hist delta = %+v, want count 2 sum 250", hd)
	}

	m := s0.Hist("test.h").Merge(hd)
	if m.Count != 3 || m.Sum != 350 {
		t.Fatalf("merge = %+v, want count 3 sum 350", m)
	}
}

func TestHistSnapMergeEmpty(t *testing.T) {
	var empty HistSnap
	full := HistSnap{Count: 2, Sum: 30, Min: 10, Max: 20}
	full.Buckets[4] = 1
	full.Buckets[5] = 1
	if m := empty.Merge(full); m != full {
		t.Fatalf("empty.Merge(full) = %+v", m)
	}
	if m := full.Merge(empty); m != full {
		t.Fatalf("full.Merge(empty) = %+v", m)
	}
	if m := empty.Merge(empty); m.Count != 0 || m.Min != 0 || m.Max != 0 {
		t.Fatalf("empty merge = %+v", m)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// concurrent get-or-create of the same names, recording, and snapshotting —
// and checks nothing is lost or torn. Run under -race this is the
// registry's primary concurrency guarantee.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("conc.counter")
			h := r.Histogram("conc.hist")
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				h.Observe(int64(i))
				if i%256 == 0 {
					_ = r.Snapshot() // readers race with writers
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("conc.counter"); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	h := s.Hist("conc.hist")
	if h.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", h.Count, workers*perWorker)
	}
	var total int64
	for _, n := range h.Buckets {
		total += n
	}
	if total != h.Count {
		t.Fatalf("bucket total %d != count %d", total, h.Count)
	}
	if h.Min != 0 || h.Max != perWorker-1 {
		t.Fatalf("min/max = %d/%d", h.Min, h.Max)
	}
}

// TestWriteJSONConcurrent dumps the registry while writers are recording:
// every dump must be a complete, well-formed JSON document (the dump is
// marshalled in memory before any byte is written, so it cannot tear).
func TestWriteJSONConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dump.counter")
	h := r.Histogram("dump.hist")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Add(1)
					h.Observe(42)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		var doc struct {
			Counters   map[string]int64           `json:"counters"`
			Histograms map[string]json.RawMessage `json:"histograms"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("dump %d is not valid JSON: %v\n%s", i, err, buf.String())
		}
		if _, ok := doc.Counters["dump.counter"]; !ok {
			t.Fatalf("dump %d missing counter", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestSlowLogNoTearing writes slow-query records from many goroutines into
// one sink and asserts every line in the output is a complete record — no
// interleaving, no partial lines.
func TestSlowLogNoTearing(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	sink := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	SetSlowLog(sink, time.Nanosecond)
	defer SetSlowLog(nil, 0)

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				Slow("test.kind", time.Duration(i+1)*time.Microsecond,
					"worker", fmt.Sprint(w), "iter", fmt.Sprint(i), "msg", "has spaces here")
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != workers*perWorker {
		t.Fatalf("got %d lines, want %d", len(lines), workers*perWorker)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "slow_query kind=test.kind total_ns=") {
			t.Fatalf("line %d malformed: %q", i, line)
		}
		if !strings.Contains(line, `msg="has spaces here"`) {
			t.Fatalf("line %d lost quoted field: %q", i, line)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestSlowExceeded(t *testing.T) {
	SetSlowLog(io.Discard, 10*time.Millisecond)
	defer SetSlowLog(nil, 0)
	if SlowExceeded(9 * time.Millisecond) {
		t.Fatal("below threshold reported slow")
	}
	if !SlowExceeded(10 * time.Millisecond) {
		t.Fatal("at threshold not reported slow")
	}
	SetSlowLog(nil, 0)
	if SlowExceeded(time.Hour) {
		t.Fatal("disabled log reported slow")
	}
}

func TestSpanBalanceAndRecording(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	h := r.Histogram("span.h")

	before := SpansStarted() - SpansEnded()
	sp := Start(h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Fatalf("span duration %v too short", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if got := SpansStarted() - SpansEnded(); got != before {
		t.Fatalf("span balance drifted: %d -> %d", before, got)
	}

	SetEnabled(false)
	sp = Start(h)
	if sp.End() != 0 {
		t.Fatal("disabled span recorded a duration")
	}
	if h.Count() != 1 {
		t.Fatalf("disabled span observed into histogram: count = %d", h.Count())
	}
}

func TestNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last")
	r.Histogram("a.first")
	r.Counter("m.mid")
	names := r.Names()
	want := []string{"a.first", "m.mid", "z.last"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestHandlerMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.c").Add(7)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.Counters["http.c"] != 7 {
		t.Fatalf("metrics dump = %+v", doc)
	}

	resp2, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof index: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp2.StatusCode)
	}
}

func TestServe(t *testing.T) {
	addr, closeFn, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer closeFn()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.extreme")
	h.Observe(math.MaxInt64)
	s := h.snap()
	if s.Max != math.MaxInt64 || s.Count != 1 {
		t.Fatalf("extreme observe: %+v", s)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != 1 {
		t.Fatalf("extreme value not bucketed")
	}
}
