// Package store implements the relational provenance store of the paper
// (§2.3, §4): xform and xfer events are persisted through database/sql
// (backed by the sqlike driver) in indexed tables keyed by
// (run, processor, port, index), so that both the naïve traversal and the
// INDEXPROJ algorithm issue only index-backed point and prefix lookups.
package store

import (
	"fmt"

	"repro/internal/value"
)

// Index keys: list indices are stored as strings in a fixed-width dotted
// encoding ("000001.000002." for [1,2], "" for []) chosen so that string
// prefix relationships coincide exactly with index prefix relationships.
// This is what lets a single `idx LIKE '<key>%'` retrieve every event at
// equal or finer granularity than a query index, with no false positives
// (every component is terminated by '.', so "[1]" can never match "[10]").

const idxComponentWidth = 6

// maxIdxComponent is the largest list position representable in a key.
const maxIdxComponent = 999999

// IdxKey renders an index as its stored key.
func IdxKey(p value.Index) (string, error) {
	if len(p) == 0 {
		return "", nil
	}
	buf := make([]byte, len(p)*(idxComponentWidth+1))
	for i, c := range p {
		if c < 0 || c > maxIdxComponent {
			return "", fmt.Errorf("store: index component %d out of range [0, %d]", c, maxIdxComponent)
		}
		at := i * (idxComponentWidth + 1)
		for j := idxComponentWidth - 1; j >= 0; j-- {
			buf[at+j] = byte('0' + c%10)
			c /= 10
		}
		buf[at+idxComponentWidth] = '.'
	}
	return string(buf), nil
}

// MustIdxKey is IdxKey for indices already validated by construction.
func MustIdxKey(p value.Index) string {
	k, err := IdxKey(p)
	if err != nil {
		panic(err)
	}
	return k
}

// ParseIdxKey decodes a stored key back into an index.
func ParseIdxKey(key string) (value.Index, error) {
	if key == "" {
		return value.Index{}, nil
	}
	if len(key)%(idxComponentWidth+1) != 0 {
		return nil, fmt.Errorf("store: malformed index key %q", key)
	}
	n := len(key) / (idxComponentWidth + 1)
	out := make(value.Index, n)
	for i := 0; i < n; i++ {
		seg := key[i*(idxComponentWidth+1) : (i+1)*(idxComponentWidth+1)]
		if seg[idxComponentWidth] != '.' {
			return nil, fmt.Errorf("store: malformed index key %q: missing separator", key)
		}
		v := 0
		for j := 0; j < idxComponentWidth; j++ {
			c := seg[j]
			if c < '0' || c > '9' {
				return nil, fmt.Errorf("store: malformed index key %q: bad digit", key)
			}
			v = v*10 + int(c-'0')
		}
		out[i] = v
	}
	return out, nil
}
