package store

import (
	"context"
	"database/sql"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workflow"
)

// This file implements streaming ingest: TailIngest consumes a live feed of
// trace.Events (run_start / xform / xfer / run_end) and applies it through
// the same buffered run writers the bulk path uses, while readers keep
// querying — a View pinned before a burst is byte-stable through it, and
// the colstore fencing in colseg.go keeps segments fresh-or-absent as the
// epoch advances under the feed.
//
// Events that cannot be applied — malformed payloads, out-of-order sequence
// numbers, events for runs that were never started (or already ended),
// processors absent from the workflow spec — are not dropped and do not
// fail the feed: they land in a persistent dead-letter queue (the dlq
// table, part of the store schema, durable wherever the store is). The DLQ
// is inspected with ListDeadLetters and drained with RetryDeadLetters,
// which replays the letters through the same validation; letters that fail
// again return to the queue with their retry count bumped.

var (
	obsTailApplied = obs.C("tail.events_applied")
	obsTailDead    = obs.C("tail.events_dead_lettered")
	obsTailRetried = obs.C("tail.dlq_retried")
)

// TailOptions configures a streaming ingest session.
type TailOptions struct {
	// Specs, when non-nil, validates the feed against workflow definitions:
	// run_start events must name a spec in the map, and xform/xfer events
	// must reference processors the spec declares; violations dead-letter.
	// A nil map skips spec validation.
	Specs map[string]*workflow.Workflow
	// BatchRows is the buffered writer flush threshold per run
	// (DefaultBatchRows when 0).
	BatchRows int
}

// TailStats summarizes a streaming ingest session.
type TailStats struct {
	Applied      int `json:"applied"`       // events validated and applied
	DeadLettered int `json:"dead_lettered"` // events routed to the DLQ
	RunsStarted  int `json:"runs_started"`
	RunsEnded    int `json:"runs_ended"`
}

// TailIngester is the optional streaming-ingest surface of a store backend;
// *Store implements it directly, shard.ShardedStore by demultiplexing the
// feed across its shards' primaries and followers.
type TailIngester interface {
	TailIngest(ctx context.Context, events <-chan trace.Event, opt TailOptions) (TailStats, error)
}

// DeadLetterQueue is the optional operator surface of the dead-letter queue;
// provq's -dlq and -dlq-retry commands type-assert the backend for it.
type DeadLetterQueue interface {
	ListDeadLetters() ([]DeadLetter, error)
	RetryDeadLetters(ctx context.Context, opt TailOptions) (retried, failed int, err error)
}

var (
	_ TailIngester    = (*Store)(nil)
	_ DeadLetterQueue = (*Store)(nil)
)

// TailIngest consumes events until the channel closes or ctx is canceled,
// applying valid events through per-run buffered writers and dead-lettering
// invalid ones. Runs still open when the feed ends are flushed and closed
// (their events up to that point are durable and queryable).
//
// Only infrastructure failures — the engine rejecting a write, the DLQ
// itself failing — abort the session with an error; per-event problems
// never do.
func (s *Store) TailIngest(ctx context.Context, events <-chan trace.Event, opt TailOptions) (TailStats, error) {
	t := &tailSession{s: s, opt: opt, open: make(map[string]*tailRun)}
	for {
		select {
		case <-ctx.Done():
			err := t.finish(ctx)
			if err == nil {
				err = ctx.Err()
			}
			return t.stats, err
		case ev, ok := <-events:
			if !ok {
				return t.stats, t.finish(ctx)
			}
			if err := t.offer(ctx, ev, 0); err != nil {
				t.finish(ctx)
				return t.stats, err
			}
		}
	}
}

// tailRun is the per-run state of an open feed: its writer and the last
// sequence number accepted.
type tailRun struct {
	w       *RunWriter
	spec    *workflow.Workflow // nil when spec validation is off
	lastSeq int64
}

type tailSession struct {
	s     *Store
	opt   TailOptions
	open  map[string]*tailRun
	stats TailStats
}

// offer validates and applies one event; validation failures dead-letter it
// (with the given retry count), infrastructure failures are returned.
func (t *tailSession) offer(ctx context.Context, ev trace.Event, retries int) error {
	reason, err := t.apply(ctx, ev)
	if err != nil {
		return err
	}
	if reason != "" {
		t.stats.DeadLettered++
		obsTailDead.Add(1)
		return t.s.deadLetterEvent(ev, reason, retries)
	}
	t.stats.Applied++
	obsTailApplied.Add(1)
	return nil
}

// apply applies one event, returning a non-empty dead-letter reason when the
// event is invalid and an error only for infrastructure failures.
func (t *tailSession) apply(ctx context.Context, ev trace.Event) (reason string, err error) {
	if ev.RunID == "" {
		return "malformed: missing run_id", nil
	}
	run, isOpen := t.open[ev.RunID]
	if isOpen && ev.Seq <= run.lastSeq {
		return fmt.Sprintf("out of order: seq %d after %d", ev.Seq, run.lastSeq), nil
	}
	switch ev.Kind {
	case trace.EventRunStart:
		if isOpen {
			return "duplicate run_start", nil
		}
		var spec *workflow.Workflow
		if t.opt.Specs != nil {
			if spec = t.opt.Specs[ev.Workflow]; spec == nil {
				return fmt.Sprintf("unknown workflow %q", ev.Workflow), nil
			}
		}
		w, err := t.s.NewBufferedRunWriter(ctx, ev.RunID, ev.Workflow, t.opt.BatchRows)
		if errors.Is(err, ErrDuplicateRun) {
			return "run already stored", nil
		}
		if err != nil {
			return "", err
		}
		t.open[ev.RunID] = &tailRun{w: w, spec: spec, lastSeq: ev.Seq}
		t.stats.RunsStarted++
		return "", nil

	case trace.EventXform:
		if !isOpen {
			return "unknown run: no run_start", nil
		}
		if ev.Xform == nil {
			return "malformed: xform event without payload", nil
		}
		if reason := specCheck(run.spec, ev.Xform.Proc); reason != "" {
			return reason, nil
		}
		if err := run.w.Xform(*ev.Xform); err != nil {
			return "", err
		}
		run.lastSeq = ev.Seq
		return "", nil

	case trace.EventXfer:
		if !isOpen {
			return "unknown run: no run_start", nil
		}
		if ev.Xfer == nil {
			return "malformed: xfer event without payload", nil
		}
		for _, proc := range []string{ev.Xfer.From.Proc, ev.Xfer.To.Proc} {
			if reason := specCheck(run.spec, proc); reason != "" {
				return reason, nil
			}
		}
		if err := run.w.Xfer(*ev.Xfer); err != nil {
			return "", err
		}
		run.lastSeq = ev.Seq
		return "", nil

	case trace.EventRunEnd:
		if !isOpen {
			return "unknown run: no run_start", nil
		}
		delete(t.open, ev.RunID)
		if err := run.w.Close(); err != nil {
			return "", err
		}
		t.stats.RunsEnded++
		return "", nil

	default:
		return fmt.Sprintf("malformed: unknown event kind %q", ev.Kind), nil
	}
}

// specCheck validates a (possibly path-qualified) processor name against the
// run's workflow spec; the empty name is the workflow's own port space and
// always valid.
func specCheck(spec *workflow.Workflow, proc string) string {
	if spec == nil || proc == trace.WorkflowProc {
		return ""
	}
	root := proc
	if i := strings.IndexByte(root, '/'); i >= 0 {
		root = root[:i]
	}
	if spec.Processor(root) == nil {
		return fmt.Sprintf("unknown processor %q", proc)
	}
	return ""
}

// finish flushes and closes every run still open, keeping the first error.
func (t *tailSession) finish(ctx context.Context) error {
	var first error
	for runID, run := range t.open {
		delete(t.open, runID)
		if err := run.w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DeadLetter is one entry of the dead-letter queue.
type DeadLetter struct {
	Seq     int64  `json:"seq"`
	RunID   string `json:"run_id"`
	Kind    string `json:"kind"`
	Reason  string `json:"reason"`
	Event   string `json:"event"` // the original event, JSON-encoded
	Retries int    `json:"retries"`
}

// deadLetterEvent persists one rejected event to the DLQ.
func (s *Store) deadLetterEvent(ev trace.Event, reason string, retries int) error {
	payload, err := json.Marshal(ev)
	if err != nil {
		// The event cannot even be re-encoded; keep a diagnostic stub so the
		// rejection is still visible in the queue.
		payload = []byte(fmt.Sprintf(`{"kind":%q,"run_id":%q}`, ev.Kind, ev.RunID))
	}
	return s.dlqInsert(ev.RunID, string(ev.Kind), reason, string(payload), retries)
}

func (s *Store) dlqInsert(runID, kind, reason, eventJSON string, retries int) error {
	seq, err := s.nextDLQSeq()
	if err != nil {
		return err
	}
	_, err = s.db.Exec(
		`INSERT INTO dlq (seq, run_id, kind, reason, event, retries) VALUES (?, ?, ?, ?, ?, ?)`,
		seq, runID, kind, reason, eventJSON, retries)
	if err != nil {
		return fmt.Errorf("store: dead-lettering event: %w", err)
	}
	return nil
}

// nextDLQSeq allocates the next dead-letter sequence number, seeding the
// counter from the stored maximum on first use (the queue is persistent, so
// the counter must survive reopen).
func (s *Store) nextDLQSeq() (int64, error) {
	s.dlqMu.Lock()
	defer s.dlqMu.Unlock()
	if s.dlqNext == 0 {
		var max sql.NullInt64
		if err := s.db.QueryRow(`SELECT MAX(seq) FROM dlq`).Scan(&max); err != nil {
			return 0, fmt.Errorf("store: reading dlq sequence: %w", err)
		}
		s.dlqNext = max.Int64 + 1
	}
	seq := s.dlqNext
	s.dlqNext++
	return seq, nil
}

// ListDeadLetters returns the dead-letter queue in arrival order.
func (s *Store) ListDeadLetters() ([]DeadLetter, error) {
	rows, err := s.db.Query(
		`SELECT seq, run_id, kind, reason, event, retries FROM dlq ORDER BY seq`)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []DeadLetter
	for rows.Next() {
		var dl DeadLetter
		if err := rows.Scan(&dl.Seq, &dl.RunID, &dl.Kind, &dl.Reason, &dl.Event, &dl.Retries); err != nil {
			return nil, err
		}
		out = append(out, dl)
	}
	return out, rows.Err()
}

// RetryDeadLetters drains the queue and replays every letter through the
// same validation as live ingest, in original arrival order. Letters that
// apply cleanly are gone for good; letters that fail again return to the
// queue with their retry count incremented. It returns how many letters
// were replayed successfully and how many re-dead-lettered.
func (s *Store) RetryDeadLetters(ctx context.Context, opt TailOptions) (retried, failed int, err error) {
	letters, err := s.ListDeadLetters()
	if err != nil || len(letters) == 0 {
		return 0, 0, err
	}
	if _, err := s.db.Exec(`DELETE FROM dlq WHERE seq <= ?`, letters[len(letters)-1].Seq); err != nil {
		return 0, 0, fmt.Errorf("store: draining dlq: %w", err)
	}
	t := &tailSession{s: s, opt: opt, open: make(map[string]*tailRun)}
	for _, dl := range letters {
		var ev trace.Event
		if err := json.Unmarshal([]byte(dl.Event), &ev); err != nil {
			// The stored payload itself is unreadable; park it again rather
			// than lose it.
			if err := s.dlqInsert(dl.RunID, dl.Kind, "undecodable: "+err.Error(), dl.Event, dl.Retries+1); err != nil {
				return retried, failed + 1, err
			}
			failed++
			continue
		}
		before := t.stats.DeadLettered
		if err := t.offer(ctx, ev, dl.Retries+1); err != nil {
			t.finish(ctx)
			return retried, failed, err
		}
		if t.stats.DeadLettered > before {
			failed++
		} else {
			retried++
			obsTailRetried.Add(1)
		}
	}
	return retried, failed, t.finish(ctx)
}

// dlqMu/dlqNext live here rather than on Store's main block to keep the DLQ
// machinery self-contained; see nextDLQSeq.
type dlqState struct {
	dlqMu   sync.Mutex
	dlqNext int64 // 0 = unseeded; seeded to MAX(seq)+1 on first use
}
