package store

import (
	"database/sql"
	"fmt"
	"sync/atomic"

	"repro/internal/value"
)

// Binding is a stored fine-grained binding ⟨P:X[p], v⟩; the value is carried
// by reference (ValID) and materialized on demand with Store.Value.
type Binding struct {
	RunID string
	Proc  string
	Port  string
	Index value.Index
	Ctx   int
	ValID int64
}

func (b Binding) String() string {
	proc := b.Proc
	if proc == "" {
		proc = "workflow"
	}
	return fmt.Sprintf("%s:%s%s@%s", proc, b.Port, b.Index, b.RunID)
}

// Xform is a stored xform event matched through one of its output bindings.
type Xform struct {
	RunID   string
	EventID int64
	Proc    string
	Inputs  []Binding // in port-declaration order
	Output  Binding   // the matched output binding
}

// Xfer is a stored xfer event.
type Xfer struct {
	From Binding
	To   Binding
}

// queryCount counts the SQL queries issued by the lineage-facing accessors;
// the benchmark harness uses it to verify the per-algorithm query-complexity
// claims (NI issues O(path length) queries, INDEXPROJ O(|focus|)).
var queryCount atomic.Int64

// QueryCount returns the cumulative number of lineage-facing SQL queries
// issued through this package.
func QueryCount() int64 { return queryCount.Load() }

// ResetQueryCount zeroes the counter and returns the previous value.
func ResetQueryCount() int64 { return queryCount.Swap(0) }

// XformsByOutput returns the xform events of processor proc (in one run)
// with an output binding on the given port matching idx under the
// granularity rules of §2.3/§2.4:
//
//   - events recorded at the same or finer granularity (their index extends
//     idx) match directly — one prefix query retrieves them;
//   - otherwise the event granularity is coarser: the longest proper prefix
//     of idx with recorded events matches (the answer degrades gracefully,
//     as for many-to-many processors).
//
// Each returned event carries its full ordered input bindings.
func (s *Store) XformsByOutput(runID, proc, port string, idx value.Index) ([]Xform, error) {
	return s.xformsByOutputOn(s, runID, proc, port, idx)
}

func (s *Store) xformsByOutputOn(r runner, runID, proc, port string, idx value.Index) ([]Xform, error) {
	key, err := IdxKey(idx)
	if err != nil {
		return nil, err
	}
	events, err := s.outsByPrefix(r, runID, proc, port, key)
	if err != nil {
		return nil, err
	}
	if len(events) == 0 {
		// Coarser events: probe successively shorter exact prefixes.
		for n := len(idx) - 1; n >= 0 && len(events) == 0; n-- {
			events, err = s.outsExact(r, runID, proc, port, MustIdxKey(idx.Truncate(n)))
			if err != nil {
				return nil, err
			}
		}
	}
	out := make([]Xform, 0, len(events))
	for _, ev := range events {
		inputs, err := s.eventInputs(r, runID, ev.eventID)
		if err != nil {
			return nil, err
		}
		out = append(out, Xform{RunID: runID, EventID: ev.eventID, Proc: proc, Inputs: inputs, Output: ev.Binding})
	}
	return out, nil
}

// outRow is a row of xform_out plus its event id.
type outRow struct {
	Binding
	eventID int64
}

func (s *Store) outsByPrefix(r runner, runID, proc, port, keyPrefix string) ([]outRow, error) {
	countQuery(1)
	rows, err := r.stmt(s.qOutsPrefix).Query(runID, proc, port, keyPrefix+"%")
	if err != nil {
		return nil, err
	}
	return s.scanOuts(rows, runID, proc, port)
}

func (s *Store) outsExact(r runner, runID, proc, port, key string) ([]outRow, error) {
	countQuery(1)
	rows, err := r.stmt(s.qOutsExact).Query(runID, proc, port, key)
	if err != nil {
		return nil, err
	}
	return s.scanOuts(rows, runID, proc, port)
}

func (s *Store) scanOuts(rows *sql.Rows, runID, proc, port string) ([]outRow, error) {
	defer rows.Close()
	var out []outRow
	for rows.Next() {
		var eventID, ctx, valID int64
		var key string
		if err := rows.Scan(&eventID, &key, &ctx, &valID); err != nil {
			return nil, err
		}
		idx, err := ParseIdxKey(key)
		if err != nil {
			return nil, err
		}
		out = append(out, outRow{
			Binding: Binding{RunID: runID, Proc: proc, Port: port, Index: idx, Ctx: int(ctx), ValID: valID},
			eventID: eventID,
		})
	}
	return out, rows.Err()
}

func (s *Store) eventInputs(r runner, runID string, eventID int64) ([]Binding, error) {
	countQuery(1)
	rows, err := r.stmt(s.qEventIns).Query(runID, eventID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []Binding
	for rows.Next() {
		var pos, ctx, valID int64
		var proc, port, key string
		if err := rows.Scan(&pos, &proc, &port, &key, &ctx, &valID); err != nil {
			return nil, err
		}
		idx, err := ParseIdxKey(key)
		if err != nil {
			return nil, err
		}
		out = append(out, Binding{RunID: runID, Proc: proc, Port: port, Index: idx, Ctx: int(ctx), ValID: valID})
	}
	return out, rows.Err()
}

// InputBindings is the trace query Q(P, X_i, p_i) of Alg. 2: it returns the
// stored input bindings of processor proc on the given port matching idx,
// applying the same granularity rules as XformsByOutput (exact or finer
// first, else the longest coarser prefix).
func (s *Store) InputBindings(runID, proc, port string, idx value.Index) ([]Binding, error) {
	return s.inputBindingsOn(s, runID, proc, port, idx)
}

func (s *Store) inputBindingsOn(r runner, runID, proc, port string, idx value.Index) ([]Binding, error) {
	key, err := IdxKey(idx)
	if err != nil {
		return nil, err
	}
	out, err := s.insByPrefix(r, runID, proc, port, key)
	if err != nil {
		return nil, err
	}
	for n := len(idx) - 1; n >= 0 && len(out) == 0; n-- {
		out, err = s.insExact(r, runID, proc, port, MustIdxKey(idx.Truncate(n)))
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (s *Store) insByPrefix(r runner, runID, proc, port, keyPrefix string) ([]Binding, error) {
	countQuery(1)
	rows, err := r.stmt(s.qInsPrefix).Query(runID, proc, port, keyPrefix+"%")
	if err != nil {
		return nil, err
	}
	return s.scanIns(rows, runID, proc, port)
}

func (s *Store) insExact(r runner, runID, proc, port, key string) ([]Binding, error) {
	countQuery(1)
	rows, err := r.stmt(s.qInsExact).Query(runID, proc, port, key)
	if err != nil {
		return nil, err
	}
	return s.scanIns(rows, runID, proc, port)
}

func (s *Store) scanIns(rows *sql.Rows, runID, proc, port string) ([]Binding, error) {
	defer rows.Close()
	var out []Binding
	for rows.Next() {
		var ctx, valID int64
		var key string
		if err := rows.Scan(&key, &ctx, &valID); err != nil {
			return nil, err
		}
		idx, err := ParseIdxKey(key)
		if err != nil {
			return nil, err
		}
		out = append(out, Binding{RunID: runID, Proc: proc, Port: port, Index: idx, Ctx: int(ctx), ValID: valID})
	}
	return out, rows.Err()
}

// XfersTo returns the xfer events whose sink is the given port.
func (s *Store) XfersTo(runID, proc, port string) ([]Xfer, error) {
	return s.xfersToOn(s, runID, proc, port)
}

func (s *Store) xfersToOn(r runner, runID, proc, port string) ([]Xfer, error) {
	countQuery(1)
	rows, err := r.stmt(s.qXfersTo).Query(runID, proc, port)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []Xfer
	for rows.Next() {
		var fromProc, fromPort, fromKey, toKey string
		var fromCtx, toCtx, valID int64
		if err := rows.Scan(&fromProc, &fromPort, &fromKey, &fromCtx, &toKey, &toCtx, &valID); err != nil {
			return nil, err
		}
		fromIdx, err := ParseIdxKey(fromKey)
		if err != nil {
			return nil, err
		}
		toIdx, err := ParseIdxKey(toKey)
		if err != nil {
			return nil, err
		}
		out = append(out, Xfer{
			From: Binding{RunID: runID, Proc: fromProc, Port: fromPort, Index: fromIdx, Ctx: int(fromCtx), ValID: valID},
			To:   Binding{RunID: runID, Proc: proc, Port: port, Index: toIdx, Ctx: int(toCtx), ValID: valID},
		})
	}
	return out, rows.Err()
}

// Value materializes a stored port value.
func (s *Store) Value(runID string, valID int64) (value.Value, error) {
	return s.valueOn(s, runID, valID)
}

func (s *Store) valueOn(r runner, runID string, valID int64) (value.Value, error) {
	countQuery(1)
	var payload string
	err := r.stmt(s.qValue).QueryRow(runID, valID).Scan(&payload)
	if err == sql.ErrNoRows {
		return value.Value{}, fmt.Errorf("store: no value %d in run %q", valID, runID)
	}
	if err != nil {
		return value.Value{}, err
	}
	return value.Decode(payload)
}

// Forward-direction accessors, used by impact (descendant) queries: the dual
// of the lineage direction.

// XformsByInput returns the xform events of proc with an input binding on
// the given port matching idx (same granularity rules as XformsByOutput),
// each carrying its full output bindings.
func (s *Store) XformsByInput(runID, proc, port string, idx value.Index) ([]ForwardXform, error) {
	return s.xformsByInputOn(s, runID, proc, port, idx)
}

func (s *Store) xformsByInputOn(r runner, runID, proc, port string, idx value.Index) ([]ForwardXform, error) {
	key, err := IdxKey(idx)
	if err != nil {
		return nil, err
	}
	countQuery(1)
	rows, err := r.query(
		`SELECT event_id, idx, ctx, val_id FROM xform_in WHERE run_id = ? AND proc = ? AND port = ? AND idx LIKE ?`,
		runID, proc, port, key+"%")
	if err != nil {
		return nil, err
	}
	matched, err := s.scanOuts(rows, runID, proc, port) // same row shape
	if err != nil {
		return nil, err
	}
	if len(matched) == 0 {
		for n := len(idx) - 1; n >= 0 && len(matched) == 0; n-- {
			countQuery(1)
			rows, err := r.query(
				`SELECT event_id, idx, ctx, val_id FROM xform_in WHERE run_id = ? AND proc = ? AND port = ? AND idx = ?`,
				runID, proc, port, MustIdxKey(idx.Truncate(n)))
			if err != nil {
				return nil, err
			}
			matched, err = s.scanOuts(rows, runID, proc, port)
			if err != nil {
				return nil, err
			}
		}
	}
	out := make([]ForwardXform, 0, len(matched))
	seen := make(map[int64]bool, len(matched))
	for _, m := range matched {
		if seen[m.eventID] {
			continue
		}
		seen[m.eventID] = true
		outs, err := s.eventOutputs(r, runID, m.eventID)
		if err != nil {
			return nil, err
		}
		out = append(out, ForwardXform{RunID: runID, EventID: m.eventID, Proc: proc, Input: m.Binding, Outputs: outs})
	}
	return out, nil
}

// ForwardXform is a stored xform event matched through one of its inputs.
type ForwardXform struct {
	RunID   string
	EventID int64
	Proc    string
	Input   Binding
	Outputs []Binding
}

func (s *Store) eventOutputs(r runner, runID string, eventID int64) ([]Binding, error) {
	countQuery(1)
	rows, err := r.query(
		`SELECT proc, port, idx, ctx, val_id FROM xform_out WHERE run_id = ? AND event_id = ?`,
		runID, eventID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []Binding
	for rows.Next() {
		var ctx, valID int64
		var proc, port, key string
		if err := rows.Scan(&proc, &port, &key, &ctx, &valID); err != nil {
			return nil, err
		}
		idx, err := ParseIdxKey(key)
		if err != nil {
			return nil, err
		}
		out = append(out, Binding{RunID: runID, Proc: proc, Port: port, Index: idx, Ctx: int(ctx), ValID: valID})
	}
	return out, rows.Err()
}

// XfersFrom returns the xfer events whose source is the given port.
func (s *Store) XfersFrom(runID, proc, port string) ([]Xfer, error) {
	return s.xfersFromOn(s, runID, proc, port)
}

func (s *Store) xfersFromOn(r runner, runID, proc, port string) ([]Xfer, error) {
	countQuery(1)
	rows, err := r.query(
		`SELECT from_idx, from_ctx, to_proc, to_port, to_idx, to_ctx, val_id FROM xfer WHERE run_id = ? AND from_proc = ? AND from_port = ?`,
		runID, proc, port)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []Xfer
	for rows.Next() {
		var fromKey, toProc, toPort, toKey string
		var fromCtx, toCtx, valID int64
		if err := rows.Scan(&fromKey, &fromCtx, &toProc, &toPort, &toKey, &toCtx, &valID); err != nil {
			return nil, err
		}
		fromIdx, err := ParseIdxKey(fromKey)
		if err != nil {
			return nil, err
		}
		toIdx, err := ParseIdxKey(toKey)
		if err != nil {
			return nil, err
		}
		out = append(out, Xfer{
			From: Binding{RunID: runID, Proc: proc, Port: port, Index: fromIdx, Ctx: int(fromCtx), ValID: valID},
			To:   Binding{RunID: runID, Proc: toProc, Port: toPort, Index: toIdx, Ctx: int(toCtx), ValID: valID},
		})
	}
	return out, rows.Err()
}
