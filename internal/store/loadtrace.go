package store

import (
	"database/sql"
	"errors"
	"fmt"

	"repro/internal/trace"
	"repro/internal/value"
)

// LoadTrace reconstructs the full in-memory trace of a stored run — the
// inverse of StoreTrace. It is used to export provenance graphs of stored
// runs and to run the in-memory reference algorithms over persisted data.
// Event grouping is recovered from the stored event IDs; xform inputs come
// back in port-declaration order.
func (s *Store) LoadTrace(runID string) (*trace.Trace, error) {
	return s.loadTraceOn(s, runID)
}

func (s *Store) loadTraceOn(r runner, runID string) (*trace.Trace, error) {
	var wfName string
	err := r.queryRow(`SELECT workflow FROM runs WHERE run_id = ?`, runID).Scan(&wfName)
	if errors.Is(err, sql.ErrNoRows) {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	t := &trace.Trace{RunID: runID, Workflow: wfName}

	// Values, interned by ID.
	vals := make(map[int64]value.Value)
	rows, err := r.query(`SELECT val_id, payload FROM vals WHERE run_id = ?`, runID)
	if err != nil {
		return nil, err
	}
	for rows.Next() {
		var id int64
		var payload string
		if err := rows.Scan(&id, &payload); err != nil {
			rows.Close()
			return nil, err
		}
		v, err := value.Decode(payload)
		if err != nil {
			rows.Close()
			return nil, fmt.Errorf("store: value %d of run %q: %w", id, runID, err)
		}
		vals[id] = v
	}
	if err := closeRows(rows); err != nil {
		return nil, err
	}
	lookup := func(id int64) (value.Value, error) {
		v, ok := vals[id]
		if !ok {
			return value.Value{}, fmt.Errorf("store: run %q references missing value %d", runID, id)
		}
		return v, nil
	}

	// Xform events, rebuilt by event ID.
	events := make(map[int64]*trace.XformEvent)
	order := []int64{}
	rows, err = r.query(
		`SELECT event_id, proc, port, idx, ctx, val_id FROM xform_in WHERE run_id = ? ORDER BY event_id, pos`, runID)
	if err != nil {
		return nil, err
	}
	for rows.Next() {
		var eventID, ctx, valID int64
		var proc, port, key string
		if err := rows.Scan(&eventID, &proc, &port, &key, &ctx, &valID); err != nil {
			rows.Close()
			return nil, err
		}
		b, err := rebuildBinding(proc, port, key, ctx, valID, lookup)
		if err != nil {
			rows.Close()
			return nil, err
		}
		ev, ok := events[eventID]
		if !ok {
			ev = &trace.XformEvent{Proc: proc}
			events[eventID] = ev
			order = append(order, eventID)
		}
		ev.Inputs = append(ev.Inputs, b)
	}
	if err := closeRows(rows); err != nil {
		return nil, err
	}
	rows, err = r.query(
		`SELECT event_id, proc, port, idx, ctx, val_id FROM xform_out WHERE run_id = ? ORDER BY event_id`, runID)
	if err != nil {
		return nil, err
	}
	for rows.Next() {
		var eventID, ctx, valID int64
		var proc, port, key string
		if err := rows.Scan(&eventID, &proc, &port, &key, &ctx, &valID); err != nil {
			rows.Close()
			return nil, err
		}
		b, err := rebuildBinding(proc, port, key, ctx, valID, lookup)
		if err != nil {
			rows.Close()
			return nil, err
		}
		ev, ok := events[eventID]
		if !ok {
			// An event may have no inputs (a source processor with only
			// defaults); create it from its first output.
			ev = &trace.XformEvent{Proc: proc}
			events[eventID] = ev
			order = append(order, eventID)
		}
		ev.Outputs = append(ev.Outputs, b)
	}
	if err := closeRows(rows); err != nil {
		return nil, err
	}
	for _, id := range order {
		t.Xforms = append(t.Xforms, *events[id])
	}

	// Xfer events.
	rows, err = r.query(
		`SELECT from_proc, from_port, from_idx, from_ctx, to_proc, to_port, to_idx, to_ctx, val_id FROM xfer WHERE run_id = ?`, runID)
	if err != nil {
		return nil, err
	}
	for rows.Next() {
		var fromProc, fromPort, fromKey, toProc, toPort, toKey string
		var fromCtx, toCtx, valID int64
		if err := rows.Scan(&fromProc, &fromPort, &fromKey, &fromCtx, &toProc, &toPort, &toKey, &toCtx, &valID); err != nil {
			rows.Close()
			return nil, err
		}
		from, err := rebuildBinding(fromProc, fromPort, fromKey, fromCtx, valID, lookup)
		if err != nil {
			rows.Close()
			return nil, err
		}
		to, err := rebuildBinding(toProc, toPort, toKey, toCtx, valID, lookup)
		if err != nil {
			rows.Close()
			return nil, err
		}
		t.Xfers = append(t.Xfers, trace.XferEvent{From: from, To: to})
	}
	if err := closeRows(rows); err != nil {
		return nil, err
	}
	return t, nil
}

func rebuildBinding(proc, port, key string, ctx, valID int64, lookup func(int64) (value.Value, error)) (trace.Binding, error) {
	idx, err := ParseIdxKey(key)
	if err != nil {
		return trace.Binding{}, err
	}
	v, err := lookup(valID)
	if err != nil {
		return trace.Binding{}, err
	}
	return trace.Binding{Proc: proc, Port: port, Index: idx, Ctx: int(ctx), Value: v}, nil
}

// closeRows closes a row set and surfaces both iteration and close errors.
type rowsCloser interface {
	Close() error
	Err() error
}

func closeRows(rows rowsCloser) error {
	if err := rows.Err(); err != nil {
		rows.Close()
		return err
	}
	return rows.Close()
}
