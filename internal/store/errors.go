package store

import (
	"context"
	"errors"
	"time"

	"repro/internal/reldb"
)

// Sentinel errors for the conditions callers branch on; they are wrapped
// with %w so errors.Is sees them through the added context.
var (
	// ErrDuplicateRun reports an attempt to register a run ID that the
	// store already holds.
	ErrDuplicateRun = errors.New("store: run already exists")
	// ErrUnknownRun reports an operation against a run ID the store does
	// not hold.
	ErrUnknownRun = errors.New("store: unknown run")
)

// Retry policy for transient storage errors (reldb.IsTransient): a failed
// commit leaves the engine rolled back and the log repaired, so retrying is
// safe — a retried batch can never be applied twice.
const (
	retryAttempts = 3
	retryBackoff  = time.Millisecond
)

// withRetry runs op, retrying transient failures with exponential backoff
// until the attempt budget or the context runs out. Non-transient errors
// return immediately.
func withRetry(ctx context.Context, op func() error) error {
	backoff := retryBackoff
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || !reldb.IsTransient(err) || attempt >= retryAttempts {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}
