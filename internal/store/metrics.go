package store

import "repro/internal/obs"

// Metric handles for the store layer, resolved once at package init.
//
// store.probes mirrors the pre-existing QueryCount (every lineage-facing SQL
// query), counted through countQuery below so both move together.
// probe_batches counts batched multi-run probes (InputBindingsBatch calls
// that issue a range scan); since every batch issues at least one query,
// probes >= probe_batches always holds — an invariant the differential
// tests assert.
var (
	obsProbes       = obs.C("store.probes")
	obsProbeBatches = obs.C("store.probe_batches")
	obsBatchRuns    = obs.H("store.probe_batch_runs")
	obsValueHits    = obs.C("store.value_cache_hits")
	obsValueMisses  = obs.C("store.value_cache_misses")

	obsIngestRuns    = obs.C("store.ingest.runs")
	obsIngestBatches = obs.C("store.ingest.batches")
	obsIngestRows    = obs.C("store.ingest.rows")
	obsFlushNs       = obs.H("store.ingest.flush_ns")
)

// countQuery records n lineage-facing SQL queries into both the legacy
// QueryCount (always on: the benchmark harness resets and reads it around
// measurements) and the obs registry (gated).
func countQuery(n int64) {
	queryCount.Add(n)
	obsProbes.Add(n)
}
