package store

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// VerifyReport is the outcome of an integrity check of one stored run — the
// provenance analogue of a filesystem fsck.
type VerifyReport struct {
	RunID    string
	Workflow string
	Events   int
	Xfers    int
	Problems []string
}

// OK reports whether the run passed every check.
func (r *VerifyReport) OK() bool { return len(r.Problems) == 0 }

func (r *VerifyReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "run %s (workflow %s): %d xform events, %d xfers: ", r.RunID, r.Workflow, r.Events, r.Xfers)
	if r.OK() {
		sb.WriteString("OK")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%d problem(s)", len(r.Problems))
	for _, p := range r.Problems {
		sb.WriteString("\n  - ")
		sb.WriteString(p)
	}
	return sb.String()
}

// Verify checks the integrity of one stored run:
//
//   - every stored value payload decodes and is depth-uniform;
//   - every binding's index addresses an element of its value (net of the
//     nested-dataflow context prefix);
//   - every event's bindings reference existing values;
//   - if the workflow definition is supplied (non-nil), every xform event
//     satisfies the index projection property (Prop. 1 / its combinator
//     generalization): the recorded input fragments equal the projection of
//     the recorded output index through the processor's statically-computed
//     iteration plan.
//
// Problems are accumulated (capped) rather than failing fast, so one report
// describes the run's overall health.
func (s *Store) Verify(runID string, wf *workflow.Workflow) (*VerifyReport, error) {
	t, err := s.LoadTrace(runID)
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{RunID: runID, Workflow: t.Workflow, Events: len(t.Xforms), Xfers: len(t.Xfers)}
	const maxProblems = 20
	problem := func(format string, args ...any) {
		if len(rep.Problems) < maxProblems {
			rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
		}
	}

	checkBinding := func(where string, b trace.Binding) {
		if err := b.Value.CheckUniform(); err != nil {
			problem("%s: %s: non-uniform value: %v", where, b, err)
			return
		}
		if _, err := b.Element(); err != nil {
			problem("%s: %s: index does not address the value: %v", where, b, err)
		}
	}

	var depths *workflow.Depths
	if wf != nil {
		if err := wf.Validate(); err != nil {
			return nil, fmt.Errorf("store: verify: %w", err)
		}
		if wf.Name != t.Workflow {
			problem("run was recorded for workflow %q, verification requested against %q", t.Workflow, wf.Name)
		}
		depths, err = workflow.PropagateDepths(wf)
		if err != nil {
			return nil, fmt.Errorf("store: verify: %w", err)
		}
	}

	for i, ev := range t.Xforms {
		where := fmt.Sprintf("xform %d (%s)", i, ev.Proc)
		for _, b := range ev.Inputs {
			checkBinding(where, b)
		}
		for _, b := range ev.Outputs {
			checkBinding(where, b)
		}
		if depths == nil || strings.Contains(ev.Proc, "/") {
			// Nested-dataflow events would need the sub-workflow's depths;
			// structural checks above still apply.
			continue
		}
		p := wf.Processor(ev.Proc)
		if p == nil {
			problem("%s: processor not in the workflow definition", where)
			continue
		}
		plan := depths.Plan(ev.Proc)
		if plan == nil {
			problem("%s: no iteration plan", where)
			continue
		}
		if len(ev.Inputs) != len(p.Inputs) {
			problem("%s: %d input bindings for %d ports", where, len(ev.Inputs), len(p.Inputs))
			continue
		}
		for _, out := range ev.Outputs {
			q := out.Index.Slice(out.Ctx, len(out.Index))
			if len(q) != plan.IterationDepth() {
				problem("%s: output index %s has length %d, iteration depth is %d",
					where, out.Index, len(q), plan.IterationDepth())
				continue
			}
			for j, in := range ev.Inputs {
				frag, _ := plan.Project(q, j)
				got := in.Index.Slice(in.Ctx, len(in.Index))
				if !got.Equal(frag) {
					problem("%s: Prop. 1 violated on input %d: recorded %s, projected %s",
						where, j, value.Index(got), frag)
				}
			}
		}
	}

	// Xfer endpoints must be addressable, and sinks must carry the value
	// their source transferred.
	for i, ev := range t.Xfers {
		where := fmt.Sprintf("xfer %d", i)
		checkBinding(where, ev.From)
		checkBinding(where, ev.To)
	}
	sort.Strings(rep.Problems)
	return rep, nil
}
