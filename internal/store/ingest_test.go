package store_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
)

// makeTraces executes the testbed and GK workflows a few times and returns
// the recorded traces, so both ingest paths load byte-identical inputs.
func makeTraces(t *testing.T) []*trace.Trace {
	t.Helper()
	var traces []*trace.Trace

	tbWF := gen.Testbed(10)
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)
	for r := 0; r < 4; r++ {
		_, tr, err := eng.RunTrace(tbWF, fmt.Sprintf("tb%03d", r), gen.TestbedInputs(10))
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}

	gkWF := gen.GenesToKegg()
	gkEng := engine.New(gen.Registry())
	for r := 0; r < 3; r++ {
		_, tr, err := gkEng.RunTrace(gkWF, fmt.Sprintf("gk%03d", r), gen.GKInputs(3+r, 4))
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	return traces
}

// TestIngestEquivalence loads the same traces per-row and batched+parallel
// and checks the two stores answer identically: integrity verification
// passes, record counts match, reconstructed traces match, and focused and
// unfocused INDEXPROJ lineage queries return equal results. Run under
// -race this also exercises the concurrent ingest path for data races.
func TestIngestEquivalence(t *testing.T) {
	traces := makeTraces(t)

	perRow, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer perRow.Close()
	for _, tr := range traces {
		if err := perRow.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
	}

	batched, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer batched.Close()
	if err := batched.IngestTraces(context.Background(), traces, store.IngestOptions{Parallelism: 4, BatchRows: 64}); err != nil {
		t.Fatal(err)
	}

	tbWF := gen.Testbed(10)
	gkWF := gen.GenesToKegg()

	for _, tr := range traces {
		in1, out1, xf1, err := perRow.RecordCounts(tr.RunID)
		if err != nil {
			t.Fatal(err)
		}
		in2, out2, xf2, err := batched.RecordCounts(tr.RunID)
		if err != nil {
			t.Fatal(err)
		}
		if in1 != in2 || out1 != out2 || xf1 != xf2 {
			t.Fatalf("run %s: counts per-row (%d,%d,%d) != batched (%d,%d,%d)",
				tr.RunID, in1, out1, xf1, in2, out2, xf2)
		}

		wf := tbWF
		if tr.Workflow == gkWF.Name {
			wf = gkWF
		}
		for name, s := range map[string]*store.Store{"per-row": perRow, "batched": batched} {
			rep, err := s.Verify(tr.RunID, wf)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("run %s (%s ingest): verify failed:\n%s", tr.RunID, name, rep)
			}
		}

		t1, err := perRow.LoadTrace(tr.RunID)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := batched.LoadTrace(tr.RunID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(t1, t2) {
			t.Fatalf("run %s: reconstructed traces differ between ingest modes", tr.RunID)
		}
	}

	// Lineage queries must agree between the two stores.
	tbFocus := lineage.NewFocus(gen.ListGenName)
	tbUnfocused := lineage.NewFocus()
	for _, p := range tbWF.Processors {
		tbUnfocused[p.Name] = true
	}
	gkFocus := lineage.NewFocus("get_pathways_by_genes")

	ip1, err := lineage.NewIndexProj(perRow, tbWF)
	if err != nil {
		t.Fatal(err)
	}
	ip2, err := lineage.NewIndexProj(batched, tbWF)
	if err != nil {
		t.Fatal(err)
	}
	for _, focus := range []lineage.Focus{tbFocus, tbUnfocused} {
		r1, err := ip1.Lineage("tb001", gen.FinalName, "product", value.Ix(5, 5), focus)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ip2.Lineage("tb001", gen.FinalName, "product", value.Ix(5, 5), focus)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Equal(r2) {
			t.Fatalf("testbed lineage (|focus|=%d) differs between ingest modes", len(focus))
		}
	}

	gp1, err := lineage.NewIndexProj(perRow, gkWF)
	if err != nil {
		t.Fatal(err)
	}
	gp2, err := lineage.NewIndexProj(batched, gkWF)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := gp1.Lineage("gk001", trace.WorkflowProc, "paths_per_gene", value.Ix(0, 0), gkFocus)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := gp2.Lineage("gk001", trace.WorkflowProc, "paths_per_gene", value.Ix(0, 0), gkFocus)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatal("GK lineage differs between ingest modes")
	}
}

// TestBufferedWriterFlushBoundaries checks the buffered writer across batch
// sizes that do and do not divide the row count, including BatchRows 1
// (flush per row) and a threshold larger than the whole run (single final
// flush on Close).
func TestBufferedWriterFlushBoundaries(t *testing.T) {
	tbWF := gen.Testbed(5)
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)
	_, tr, err := eng.RunTrace(tbWF, "ref", gen.TestbedInputs(7))
	if err != nil {
		t.Fatal(err)
	}

	ref, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.StoreTrace(tr); err != nil {
		t.Fatal(err)
	}
	in0, out0, xf0, err := ref.RecordCounts("ref")
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 3, 64, 1 << 20} {
		s, err := store.OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.StoreTraceBatched(tr, batch); err != nil {
			t.Fatal(err)
		}
		in, out, xf, err := s.RecordCounts("ref")
		if err != nil {
			t.Fatal(err)
		}
		if in != in0 || out != out0 || xf != xf0 {
			t.Fatalf("batch=%d: counts (%d,%d,%d) != per-row (%d,%d,%d)",
				batch, in, out, xf, in0, out0, xf0)
		}
		rep, err := s.Verify("ref", tbWF)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("batch=%d: verify failed:\n%s", batch, rep)
		}
		s.Close()
	}
}

// TestIngestDuplicateRun checks that a duplicate run ID fails the ingest
// without corrupting the store's existing data.
func TestIngestDuplicateRun(t *testing.T) {
	tbWF := gen.Testbed(5)
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)
	_, tr, err := eng.RunTrace(tbWF, "dup", gen.TestbedInputs(5))
	if err != nil {
		t.Fatal(err)
	}

	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.IngestTraces(context.Background(), []*trace.Trace{tr}, store.IngestOptions{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.IngestTraces(context.Background(), []*trace.Trace{tr}, store.IngestOptions{Parallelism: 2}); err == nil {
		t.Fatal("re-ingesting an existing run succeeded; want an error")
	}
	rep, err := s.Verify("dup", tbWF)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store corrupted after duplicate-run failure:\n%s", rep)
	}
}

// TestIngestCheckpointBounded loads the same traces into two durable stores,
// one checkpointing after every completed run and one never, and checks that
// (a) the checkpoint counter advanced once per boundary crossed, (b) the
// checkpointing store's WAL stays bounded (far smaller than the full-load
// WAL), and (c) a reopen of the checkpointed store recovers every run intact.
func TestIngestCheckpointBounded(t *testing.T) {
	traces := makeTraces(t)

	open := func(dir string) *store.Store {
		t.Helper()
		s, err := store.Open("durable:" + dir)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	walSize := func(dir string) int64 {
		t.Helper()
		fi, err := os.Stat(filepath.Join(dir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}

	plainDir, ckptDir := t.TempDir(), t.TempDir()

	plain := open(plainDir)
	if err := plain.IngestTraces(context.Background(), traces, store.IngestOptions{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	before := obs.Default.Snapshot()
	ckpt := open(ckptDir)
	if err := ckpt.IngestTraces(context.Background(), traces, store.IngestOptions{Parallelism: 2, CheckpointEveryRuns: 1}); err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	delta := obs.Default.Snapshot().Sub(before)
	if got, want := delta.Counter("reldb.checkpoints"), int64(len(traces)); got != want {
		t.Fatalf("reldb.checkpoints delta = %d, want %d (one per completed run)", got, want)
	}

	// Every boundary truncated the log, so the checkpointed WAL holds at most
	// one run's events; the plain WAL holds all of them.
	if cw, pw := walSize(ckptDir), walSize(plainDir); cw*2 >= pw {
		t.Fatalf("checkpointed WAL not bounded: %d bytes vs %d unchecked", cw, pw)
	}

	back := open(ckptDir)
	defer back.Close()
	for _, tr := range traces {
		ok, err := back.HasRun(tr.RunID)
		if err != nil || !ok {
			t.Fatalf("run %q lost after checkpointed ingest: ok=%v err=%v", tr.RunID, ok, err)
		}
		got, err := back.LoadTrace(tr.RunID)
		if err != nil {
			t.Fatal(err)
		}
		if got.RunID != tr.RunID || len(got.Xforms) != len(tr.Xforms) || len(got.Xfers) != len(tr.Xfers) {
			t.Fatalf("run %q: reloaded %d xforms/%d xfers, want %d/%d",
				tr.RunID, len(got.Xforms), len(got.Xfers), len(tr.Xforms), len(tr.Xfers))
		}
	}

	// A memory-backed store ignores the option (no log to truncate).
	mem, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if err := mem.IngestTraces(context.Background(), traces, store.IngestOptions{CheckpointEveryRuns: 2}); err != nil {
		t.Fatalf("CheckpointEveryRuns on a memory store: %v", err)
	}
}
