package store

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// This file implements the concurrent bulk-ingest executor: many runs loaded
// into one store through buffered writers over a worker pool. Runs are
// independent rows partitioned by run_id, so their writers never conflict
// logically; physically each batch flush is one engine-level multi-row
// insert (one lock acquisition, one group-committed WAL record per table),
// so workers contend once per batch instead of once per row. The pool
// mirrors the multi-run query executor in internal/lineage: a buffered task
// channel, per-worker error slots, drain-after-failure, no shared state
// until the final error sweep.
//
// Cancellation: the caller's context is fanned out to every writer; the
// first worker failure cancels a derived context so the other workers stop
// at their next task (or their writer's next event) instead of finishing the
// backlog. A panicking task is confined to its worker, converted into an
// error carrying the stack, and cancels the rest the same way.

// DefaultIngestParallelism is the worker count used when
// IngestOptions.Parallelism is unset.
const DefaultIngestParallelism = 4

// IngestOptions tunes the bulk-ingest executor.
type IngestOptions struct {
	// Parallelism is the number of runs ingested concurrently. Values <= 0
	// select DefaultIngestParallelism; 1 ingests sequentially.
	Parallelism int
	// BatchRows is the buffered writer's flush threshold (rows across all
	// event tables per multi-row flush). 0 means DefaultBatchRows; 1
	// effectively disables batching, reproducing per-row ingest.
	BatchRows int
	// CheckpointEveryRuns, when > 0 on a durable store, checkpoints the
	// store after every N completed runs: a fresh snapshot is written and
	// the write-ahead log truncated, so the WAL's disk footprint — and the
	// replay work a crash-recovery Open must do — stays bounded by N runs
	// of events no matter how large the bulk load is. 0 never checkpoints
	// (the WAL grows for the whole load). Non-durable stores ignore it.
	CheckpointEveryRuns int
}

func (o IngestOptions) normalize() IngestOptions {
	if o.Parallelism <= 0 {
		o.Parallelism = DefaultIngestParallelism
	}
	if o.BatchRows <= 0 {
		o.BatchRows = DefaultBatchRows
	}
	return o
}

// IngestTask is one run to load: Emit replays the run's provenance events
// into the collector the executor provides (typically by executing a
// workflow with the engine, or replaying a recorded trace).
type IngestTask struct {
	RunID    string
	Workflow string
	Emit     func(trace.Collector) error
}

// Ingest loads every task's run into the store concurrently through
// buffered writers. Each run gets its own writer (run registration stays
// serialized through the SQL layer; event rows flush as multi-row batches).
// The first error cancels remaining work and is returned; completed runs
// stay in the store. Cancelling ctx aborts the load with the context's
// error; runs whose final flush was acknowledged before the cancellation
// remain.
func (s *Store) Ingest(ctx context.Context, tasks []IngestTask, opt IngestOptions) error {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.normalize()
	var done atomic.Int64
	var ckptMu sync.Mutex
	maybeCheckpoint := func() error {
		if opt.CheckpointEveryRuns <= 0 {
			return nil
		}
		if done.Add(1)%int64(opt.CheckpointEveryRuns) != 0 {
			return nil
		}
		// Only the completion that crossed the boundary checkpoints; the
		// mutex keeps two boundaries crossed close together from stacking
		// overlapping snapshot writes.
		ckptMu.Lock()
		defer ckptMu.Unlock()
		return s.Checkpoint()
	}
	ingestOne := func(ctx context.Context, t IngestTask) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if t.Emit == nil {
			return fmt.Errorf("store: ingest task %q has no Emit", t.RunID)
		}
		w, err := s.NewBufferedRunWriter(ctx, t.RunID, t.Workflow, opt.BatchRows)
		if err != nil {
			return err
		}
		if err := t.Emit(w); err != nil {
			w.Close()
			return fmt.Errorf("store: ingesting run %q: %w", t.RunID, err)
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("store: ingesting run %q: %w", t.RunID, err)
		}
		obsIngestRuns.Add(1)
		return maybeCheckpoint()
	}

	if opt.Parallelism == 1 || len(tasks) <= 1 {
		for _, t := range tasks {
			if err := ingestOne(ctx, t); err != nil {
				return err
			}
		}
		return nil
	}

	workers := opt.Parallelism
	if workers > len(tasks) {
		workers = len(tasks)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	work := make(chan IngestTask, len(tasks))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A panic in task code must not take down the process or wedge
			// the pool: confine it to this worker, keep the error (with the
			// stack), and cancel the others.
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("store: ingest worker panic: %v\n%s", r, debug.Stack())
					cancel()
				}
			}()
			for t := range work {
				if errs[w] != nil {
					continue // drain after a failure
				}
				if err := ingestOne(wctx, t); err != nil {
					errs[w] = err
					cancel() // first error stops the other workers
				}
			}
		}(w)
	}
	for _, t := range tasks {
		work <- t
	}
	close(work)
	wg.Wait()
	return firstError(ctx, errs)
}

// FirstError selects the error to surface from a pool run: a real failure
// beats a secondary cancellation error, and if the caller's own context was
// cancelled, its error is authoritative. Exported for the sharded store,
// whose per-shard ingest pools need the same first-error semantics.
func FirstError(ctx context.Context, errs []error) error { return firstError(ctx, errs) }

func firstError(ctx context.Context, errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
			continue
		}
		if isCancellation(first) && !isCancellation(err) {
			first = err
		}
	}
	if first != nil && isCancellation(first) && ctx.Err() != nil {
		return ctx.Err()
	}
	return first
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IngestTraces loads a set of recorded traces with the given options — the
// bulk counterpart of calling StoreTrace per trace.
func (s *Store) IngestTraces(ctx context.Context, traces []*trace.Trace, opt IngestOptions) error {
	return s.Ingest(ctx, TraceIngestTasks(traces), opt)
}

// TraceIngestTasks converts recorded traces into the task set IngestTraces
// runs. Exported so the sharded store can regroup trace loads by owning
// shard before handing each group to a shard-level Ingest.
func TraceIngestTasks(traces []*trace.Trace) []IngestTask {
	tasks := make([]IngestTask, len(traces))
	for i, t := range traces {
		t := t
		tasks[i] = IngestTask{
			RunID:    t.RunID,
			Workflow: t.Workflow,
			Emit: func(c trace.Collector) error {
				for _, e := range t.Xforms {
					if err := c.Xform(e); err != nil {
						return err
					}
				}
				for _, e := range t.Xfers {
					if err := c.Xfer(e); err != nil {
						return err
					}
				}
				return nil
			},
		}
	}
	return tasks
}
