package store

import (
	"database/sql"
	"fmt"

	"repro/internal/obs"
	"repro/internal/value"
)

// This file implements the batched (multi-run) read path: the trace probe
// Q(P, X, p, T) answered for a whole set of runs in one index-range scan,
// instead of one round-trip per run. This is what lets the parallel
// multi-run lineage executor break Fig. 4's linear growth in the number of
// runs: the per-probe cost becomes one scan over xin_ppi (proc, port, idx)
// shared by every run, plus one bounded value scan per run.

// LineageQuerier is the read-side surface the INDEXPROJ executor needs from
// a provenance store. Implementations must be safe for concurrent use by
// multiple goroutines: the parallel multi-run executor issues overlapping
// probes from its worker pool against one shared querier.
type LineageQuerier interface {
	// InputBindings answers Q(P, X, p) for one run (Alg. 2's trace probe).
	InputBindings(runID, proc, port string, idx value.Index) ([]Binding, error)
	// InputBindingsBatch answers the same probe for a set of runs in one
	// pass, grouped by run ID. Every requested run has an entry (possibly
	// empty); per-run granularity fallback matches InputBindings exactly.
	InputBindingsBatch(runIDs []string, proc, port string, idx value.Index) (map[string][]Binding, error)
	// Value materializes one stored port value.
	Value(runID string, valID int64) (value.Value, error)
	// ValuesBatch materializes a set of values, minimizing round-trips.
	ValuesBatch(refs []ValueRef) (map[ValueRef]value.Value, error)
	// HasRun reports whether the store holds the given run; the multi-run
	// executors use it to reject unknown runs with ErrUnknownRun instead of
	// silently returning empty results.
	HasRun(runID string) (bool, error)
}

var _ LineageQuerier = (*Store)(nil)

// ValueRef identifies one stored port value.
type ValueRef struct {
	RunID string
	ValID int64
}

// InputBindingsBatch is the batched form of InputBindings: one prefix scan
// over the (proc, port, idx) index retrieves the matching bindings of every
// run at once, and the granularity fallback (successively shorter exact
// prefixes, per §2.3/§2.4) runs once per truncation level for the runs the
// prefix scan left empty — instead of once per run.
//
// The result maps every requested run ID to its bindings (never nil). Runs
// not requested are filtered out, so the answer is exactly the union of the
// per-run InputBindings answers.
func (s *Store) InputBindingsBatch(runIDs []string, proc, port string, idx value.Index) (map[string][]Binding, error) {
	return s.inputBindingsBatchOn(s, runIDs, proc, port, idx)
}

func (s *Store) inputBindingsBatchOn(r runner, runIDs []string, proc, port string, idx value.Index) (map[string][]Binding, error) {
	out := make(map[string][]Binding, len(runIDs))
	if len(runIDs) == 0 {
		return out, nil
	}
	if len(runIDs) == 1 {
		bs, err := s.inputBindingsOn(r, runIDs[0], proc, port, idx)
		if err != nil {
			return nil, err
		}
		out[runIDs[0]] = bs
		return out, nil
	}
	obsProbeBatches.Add(1)
	if obs.Enabled() {
		obsBatchRuns.Observe(int64(len(runIDs)))
	}
	want := make(map[string]bool, len(runIDs))
	for _, r := range runIDs {
		want[r] = true
		out[r] = nil
	}
	key, err := IdxKey(idx)
	if err != nil {
		return nil, err
	}
	countQuery(1)
	rows, err := r.stmt(s.qInsBatchPrefix).Query(proc, port, key+"%")
	if err != nil {
		return nil, err
	}
	if err := s.scanInsByRun(rows, proc, port, want, out); err != nil {
		return nil, err
	}

	// Granularity fallback, batched: runs with no events at the query
	// granularity (or finer) match the longest proper prefix of idx that has
	// recorded events — probed per truncation level for the still-empty runs.
	empty := make(map[string]bool)
	for r := range want {
		if len(out[r]) == 0 {
			empty[r] = true
		}
	}
	for n := len(idx) - 1; n >= 0 && len(empty) > 0; n-- {
		countQuery(1)
		rows, err := r.stmt(s.qInsBatchExact).Query(proc, port, MustIdxKey(idx.Truncate(n)))
		if err != nil {
			return nil, err
		}
		level := make(map[string][]Binding)
		if err := s.scanInsByRun(rows, proc, port, empty, level); err != nil {
			return nil, err
		}
		for r, bs := range level {
			if len(bs) > 0 {
				out[r] = bs
				delete(empty, r)
			}
		}
	}
	return out, nil
}

// scanInsByRun drains a (run_id, idx, ctx, val_id) row set into dst, keeping
// only rows whose run is in want.
func (s *Store) scanInsByRun(rows rowScanner, proc, port string, want map[string]bool, dst map[string][]Binding) error {
	defer rows.Close()
	for rows.Next() {
		var runID, key string
		var ctx, valID int64
		if err := rows.Scan(&runID, &key, &ctx, &valID); err != nil {
			return err
		}
		if !want[runID] {
			continue
		}
		idx, err := ParseIdxKey(key)
		if err != nil {
			return err
		}
		dst[runID] = append(dst[runID], Binding{RunID: runID, Proc: proc, Port: port, Index: idx, Ctx: int(ctx), ValID: valID})
	}
	return rows.Err()
}

// rowScanner is the subset of *sql.Rows the scan helpers need.
type rowScanner interface {
	Next() bool
	Scan(dest ...any) error
	Close() error
	Err() error
}

// valsRangeOverscan bounds how sparse a [min, max] val_id window may be
// before ValuesBatch falls back to point lookups: a window is scanned only
// when it holds at most 4 candidate IDs (plus slack) per requested one.
const valsRangeOverscan = 4

// valsCrossRunOverscan bounds the cross-run scan the same way, but per
// *query saved* rather than per row: a single scan over vals_vid touches
// roughly (stored runs × id span) rows, and replaces up to one query per
// requested run, each worth a couple dozen rows of fixed overhead.
const valsCrossRunOverscan = 24

// ValuesBatch materializes a set of stored values with as few queries as
// possible: the refs are grouped by run, and each run's IDs are fetched with
// one bounded index-range scan over (run_id, val_id) when they are dense
// enough, falling back to point lookups for sparse or singleton sets.
// Missing values are reported as an error, matching Value.
func (s *Store) ValuesBatch(refs []ValueRef) (map[ValueRef]value.Value, error) {
	return s.valuesBatchOn(s, refs)
}

func (s *Store) valuesBatchOn(r runner, refs []ValueRef) (map[ValueRef]value.Value, error) {
	out := make(map[ValueRef]value.Value, len(refs))
	byRun := make(map[string][]int64)
	for _, ref := range refs {
		if _, dup := out[ref]; dup {
			continue
		}
		out[ref] = value.Value{} // placeholder marking the ref as requested
		byRun[ref.RunID] = append(byRun[ref.RunID], ref.ValID)
	}

	// Runs of a deterministic workflow intern identical payloads (values are
	// deduplicated per run, not across runs), so a batch spanning many runs
	// decodes the same payload over and over — decode each distinct payload
	// once and share the resulting Value (callers treat values as immutable).
	decoded := make(map[string]value.Value)
	dec := func(payload string) (value.Value, error) {
		if v, ok := decoded[payload]; ok {
			obsValueHits.Add(1)
			return v, nil
		}
		obsValueMisses.Add(1)
		v, err := value.Decode(payload)
		if err == nil {
			decoded[payload] = v
		}
		return v, err
	}

	// Cross-run fast path: deterministic workflows intern the same values in
	// the same order, so the wanted IDs of different runs often share a tight
	// global window — one scan of the vals_vid (val_id) index then answers
	// every run together, where the per-run loop below pays at least one
	// query per run. Scanned rows ≈ stored runs × id span, so the window is
	// only used when that stays proportional to the number of refs.
	if len(byRun) >= 2 {
		minID, maxID := refs[0].ValID, refs[0].ValID
		for ref := range out {
			if ref.ValID < minID {
				minID = ref.ValID
			}
			if ref.ValID > maxID {
				maxID = ref.ValID
			}
		}
		span := maxID - minID + 1
		if s.runsEstimate()*span <= int64(valsCrossRunOverscan*len(out)+64) {
			countQuery(1)
			rows, err := r.stmt(s.qValsRangeAll).Query(minID, maxID)
			if err != nil {
				return nil, err
			}
			got := 0
			for rows.Next() {
				var runID string
				var id int64
				var payload string
				if err := rows.Scan(&runID, &id, &payload); err != nil {
					rows.Close()
					return nil, err
				}
				ref := ValueRef{RunID: runID, ValID: id}
				if _, requested := out[ref]; !requested {
					continue
				}
				v, err := dec(payload)
				if err != nil {
					rows.Close()
					return nil, err
				}
				out[ref] = v
				got++
			}
			rows.Close()
			if err := rows.Err(); err != nil {
				return nil, err
			}
			if got != len(out) {
				return nil, fmt.Errorf("store: %d value(s) missing across %d run(s)", len(out)-got, len(byRun))
			}
			return out, nil
		}
	}

	for runID, ids := range byRun {
		minID, maxID := ids[0], ids[0]
		wanted := make(map[int64]bool, len(ids))
		for _, id := range ids {
			wanted[id] = true
			if id < minID {
				minID = id
			}
			if id > maxID {
				maxID = id
			}
		}
		span := maxID - minID + 1
		if len(wanted) == 1 || span > int64(valsRangeOverscan*len(wanted)+16) {
			for id := range wanted {
				countQuery(1)
				var payload string
				err := r.stmt(s.qValue).QueryRow(runID, id).Scan(&payload)
				if err == sql.ErrNoRows {
					return nil, fmt.Errorf("store: no value %d in run %q", id, runID)
				}
				if err != nil {
					return nil, err
				}
				v, err := dec(payload)
				if err != nil {
					return nil, err
				}
				out[ValueRef{RunID: runID, ValID: id}] = v
			}
			continue
		}
		countQuery(1)
		rows, err := r.stmt(s.qValsRange).Query(runID, minID, maxID)
		if err != nil {
			return nil, err
		}
		got := 0
		for rows.Next() {
			var id int64
			var payload string
			if err := rows.Scan(&id, &payload); err != nil {
				rows.Close()
				return nil, err
			}
			if !wanted[id] {
				continue
			}
			v, err := dec(payload)
			if err != nil {
				rows.Close()
				return nil, err
			}
			out[ValueRef{RunID: runID, ValID: id}] = v
			got++
		}
		rows.Close()
		if err := rows.Err(); err != nil {
			return nil, err
		}
		if got != len(wanted) {
			return nil, fmt.Errorf("store: %d value(s) missing in run %q", len(wanted)-got, runID)
		}
	}
	return out, nil
}
