package store

import (
	"database/sql"
	"fmt"

	"repro/internal/trace"
	"repro/internal/value"
)

// RunWriter persists the provenance events of one run. It implements
// trace.Collector, so it can be handed directly to the engine. Port values
// are deduplicated within the run (bindings reference value IDs), mirroring
// the paper's relational trace layout.
type RunWriter struct {
	s        *Store
	runID    string
	eventSeq int64
	valIDs   map[string]int64

	insVal  *sql.Stmt
	insIn   *sql.Stmt
	insOut  *sql.Stmt
	insXfer *sql.Stmt
}

// NewRunWriter registers a run and returns a collector that persists its
// events. The run ID must be unique within the store.
func (s *Store) NewRunWriter(runID, workflowName string) (*RunWriter, error) {
	var n int
	if err := s.db.QueryRow(`SELECT COUNT(*) FROM runs WHERE run_id = ?`, runID).Scan(&n); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if n > 0 {
		return nil, fmt.Errorf("store: run %q already exists", runID)
	}
	if _, err := s.db.Exec(`INSERT INTO runs (run_id, workflow) VALUES (?, ?)`, runID, workflowName); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.runsEst.Store(-1)
	w := &RunWriter{s: s, runID: runID, valIDs: make(map[string]int64)}
	var err error
	if w.insVal, err = s.db.Prepare(`INSERT INTO vals (run_id, val_id, payload) VALUES (?, ?, ?)`); err != nil {
		return nil, err
	}
	if w.insIn, err = s.db.Prepare(`INSERT INTO xform_in (run_id, event_id, pos, proc, port, idx, ctx, val_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?)`); err != nil {
		return nil, err
	}
	if w.insOut, err = s.db.Prepare(`INSERT INTO xform_out (run_id, event_id, proc, port, idx, ctx, val_id) VALUES (?, ?, ?, ?, ?, ?, ?)`); err != nil {
		return nil, err
	}
	if w.insXfer, err = s.db.Prepare(`INSERT INTO xfer (run_id, from_proc, from_port, from_idx, from_ctx, to_proc, to_port, to_idx, to_ctx, val_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`); err != nil {
		return nil, err
	}
	return w, nil
}

// RunID returns the run this writer persists.
func (w *RunWriter) RunID() string { return w.runID }

// Close releases the writer's prepared statements.
func (w *RunWriter) Close() error {
	for _, st := range []*sql.Stmt{w.insVal, w.insIn, w.insOut, w.insXfer} {
		if st != nil {
			st.Close()
		}
	}
	return nil
}

// valID interns a port value within the run and returns its ID.
func (w *RunWriter) valID(v value.Value) (int64, error) {
	payload := value.Encode(v)
	if id, ok := w.valIDs[payload]; ok {
		return id, nil
	}
	id := int64(len(w.valIDs))
	if _, err := w.insVal.Exec(w.runID, id, payload); err != nil {
		return 0, err
	}
	w.valIDs[payload] = id
	return id, nil
}

// Xform implements trace.Collector.
func (w *RunWriter) Xform(e trace.XformEvent) error {
	eventID := w.eventSeq
	w.eventSeq++
	for pos, b := range e.Inputs {
		vid, err := w.valID(b.Value)
		if err != nil {
			return err
		}
		key, err := IdxKey(b.Index)
		if err != nil {
			return err
		}
		if _, err := w.insIn.Exec(w.runID, eventID, int64(pos), b.Proc, b.Port, key, int64(b.Ctx), vid); err != nil {
			return err
		}
	}
	for _, b := range e.Outputs {
		vid, err := w.valID(b.Value)
		if err != nil {
			return err
		}
		key, err := IdxKey(b.Index)
		if err != nil {
			return err
		}
		if _, err := w.insOut.Exec(w.runID, eventID, b.Proc, b.Port, key, int64(b.Ctx), vid); err != nil {
			return err
		}
	}
	return nil
}

// Xfer implements trace.Collector.
func (w *RunWriter) Xfer(e trace.XferEvent) error {
	vid, err := w.valID(e.To.Value)
	if err != nil {
		return err
	}
	fromKey, err := IdxKey(e.From.Index)
	if err != nil {
		return err
	}
	toKey, err := IdxKey(e.To.Index)
	if err != nil {
		return err
	}
	_, err = w.insXfer.Exec(w.runID,
		e.From.Proc, e.From.Port, fromKey, int64(e.From.Ctx),
		e.To.Proc, e.To.Port, toKey, int64(e.To.Ctx), vid)
	return err
}

// StoreTrace persists a complete in-memory trace in one call.
func (s *Store) StoreTrace(t *trace.Trace) error {
	w, err := s.NewRunWriter(t.RunID, t.Workflow)
	if err != nil {
		return err
	}
	defer w.Close()
	for _, e := range t.Xforms {
		if err := w.Xform(e); err != nil {
			return err
		}
	}
	for _, e := range t.Xfers {
		if err := w.Xfer(e); err != nil {
			return err
		}
	}
	return nil
}
