package store

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/reldb"
	"repro/internal/trace"
	"repro/internal/value"
)

// DefaultBatchRows is the buffered writer's flush threshold when none is
// given: the number of rows accumulated (across all four event tables)
// before one multi-row flush.
const DefaultBatchRows = 512

// RunWriter persists the provenance events of one run. It implements
// trace.Collector, so it can be handed directly to the engine. Port values
// are deduplicated within the run (bindings reference value IDs), mirroring
// the paper's relational trace layout.
//
// A writer is either unbuffered — each row is written through the store's
// shared prepared INSERT statements as it arrives — or buffered (see
// NewBufferedRunWriter): rows accumulate in memory and are flushed as
// multi-row batches straight into the embedded engine, one lock acquisition
// and one group-committed WAL record per table per flush.
type RunWriter struct {
	s        *Store
	ctx      context.Context
	runID    string
	eventSeq int64
	valIDs   map[string]int64

	// Fast interning caches in front of valIDs: the engine shares immutable
	// values across many bindings, so most valID calls see a value already
	// interned. These look it up without re-encoding — by raw content for
	// string/int atoms, by backing-array identity for lists — which is the
	// bulk of ingest time otherwise.
	strIDs  map[string]int64
	intIDs  map[int64]int64
	listIDs map[value.Handle]int64

	// Buffered mode: batchRows > 0. Rows pending flush, in schema column
	// order, per table. Their datums live in arena, one allocation per
	// batch; each flush hands the arena-backed rows to the engine with
	// ownership (reldb.InsertBatchOwned), so the arena is abandoned — never
	// reused — after a flush.
	batchRows int
	arena     []reldb.Datum
	bufVals   []reldb.Row
	bufIn     []reldb.Row
	bufOut    []reldb.Row
	bufXfer   []reldb.Row

	// closed guards the columnar-projection fence: the first Close lifts
	// the run's write fence (making it eligible for segment builds), later
	// Closes only re-flush.
	closed bool
}

// arenaBase readies the batch arena and returns the offset the next row's
// datums start at.
func (w *RunWriter) arenaBase() int {
	if w.arena == nil {
		// Largest schema arity is xfer's 10 columns.
		w.arena = make([]reldb.Datum, 0, w.batchRows*10+16)
	}
	return len(w.arena)
}

// takeRow returns the arena datums appended since base as one row, capped so
// later arena appends cannot alias it.
func (w *RunWriter) takeRow(base int) reldb.Row {
	return reldb.Row(w.arena[base:len(w.arena):len(w.arena)])
}

// NewRunWriter registers a run and returns an unbuffered collector that
// persists its events row by row. The run ID must be unique within the
// store.
func (s *Store) NewRunWriter(runID, workflowName string) (*RunWriter, error) {
	return s.newRunWriter(context.Background(), runID, workflowName, 0)
}

// NewBufferedRunWriter registers a run and returns a collector that buffers
// its events and flushes them as multi-row batches of about batchRows rows
// (<= 0 selects DefaultBatchRows; 1 effectively disables buffering). The
// caller must Close the writer to flush the final partial batch. On a
// durable store each flush is one group-committed WAL record per table, so
// a crash loses at most the unflushed tail, never part of a flushed batch.
//
// The context governs the writer's lifetime: once it is cancelled, event
// collection and flushes stop with the context's error. Transient storage
// errors during a flush are retried with bounded backoff (the engine rolls
// back and repairs its log on a failed commit, so a retry can never apply a
// batch twice).
func (s *Store) NewBufferedRunWriter(ctx context.Context, runID, workflowName string, batchRows int) (*RunWriter, error) {
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	return s.newRunWriter(ctx, runID, workflowName, batchRows)
}

func (s *Store) newRunWriter(ctx context.Context, runID, workflowName string, batchRows int) (*RunWriter, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var n int
	if err := s.db.QueryRow(`SELECT COUNT(*) FROM runs WHERE run_id = ?`, runID).Scan(&n); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if n > 0 {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateRun, runID)
	}
	// Fence the columnar projection before the run becomes visible: any
	// reader that can see this run's rows must also see it marked open, so
	// no stale column segment can shadow rows still being written.
	s.beginRunWrite(runID)
	if _, err := s.db.Exec(`INSERT INTO runs (run_id, workflow) VALUES (?, ?)`, runID, workflowName); err != nil {
		s.endRunWrite(runID)
		return nil, fmt.Errorf("store: %w", err)
	}
	s.invalidateRunCaches()
	return &RunWriter{
		s:         s,
		ctx:       ctx,
		runID:     runID,
		valIDs:    make(map[string]int64),
		strIDs:    make(map[string]int64),
		intIDs:    make(map[int64]int64),
		listIDs:   make(map[value.Handle]int64),
		batchRows: batchRows,
	}, nil
}

// RunID returns the run this writer persists.
func (w *RunWriter) RunID() string { return w.runID }

// buffered reports whether the writer accumulates batches.
func (w *RunWriter) buffered() bool { return w.batchRows > 0 }

// pending returns the number of buffered rows awaiting a flush.
func (w *RunWriter) pending() int {
	return len(w.bufVals) + len(w.bufIn) + len(w.bufOut) + len(w.bufXfer)
}

// Flush writes every buffered row as multi-row batches (values first, so a
// crash cannot persist an event row whose value is still in memory). It is
// a no-op for unbuffered writers. Transient storage errors are retried with
// bounded backoff; cancellation of the writer's context aborts the flush.
func (w *RunWriter) Flush() error {
	if !w.buffered() || w.pending() == 0 {
		return nil
	}
	if err := w.ctxErr(); err != nil {
		return err
	}
	sp := obs.Start(obsFlushNs)
	defer sp.End()
	rows := int64(w.pending())
	for _, part := range []struct {
		table string
		rows  *[]reldb.Row
	}{
		{"vals", &w.bufVals},
		{"xform_in", &w.bufIn},
		{"xform_out", &w.bufOut},
		{"xfer", &w.bufXfer},
	} {
		if len(*part.rows) == 0 {
			continue
		}
		// Ownership of the rows — and of the arena backing them — passes to
		// the engine; only the buffer headers are reusable afterwards.
		rows := *part.rows
		err := withRetry(w.ctx, func() error {
			return w.s.rdb.InsertBatchOwned(part.table, rows)
		})
		if err != nil {
			return fmt.Errorf("store: flushing %s: %w", part.table, err)
		}
		*part.rows = (*part.rows)[:0]
	}
	w.arena = nil
	obsIngestBatches.Add(1)
	obsIngestRows.Add(rows)
	return nil
}

// ctxErr reports the writer's context error, if any.
func (w *RunWriter) ctxErr() error {
	if w.ctx == nil {
		return nil
	}
	return w.ctx.Err()
}

func (w *RunWriter) maybeFlush() error {
	if w.pending() >= w.batchRows {
		return w.Flush()
	}
	return nil
}

// Close flushes any buffered rows and lifts the run's columnar-projection
// write fence: from here on, a checkpoint may build a column segment for the
// run. The store's prepared statements are shared across writers and stay
// open.
func (w *RunWriter) Close() error {
	if err := w.Flush(); err != nil {
		// The fence stays down: a run whose final flush failed keeps using
		// row scans (whatever rows did land), it never gets a segment from
		// a writer in an unknown state.
		return err
	}
	if !w.closed {
		w.closed = true
		w.s.endRunWrite(w.runID)
	}
	return nil
}

// valID interns a port value within the run and returns its ID. Repeat
// values hit one of the non-encoding caches; only first occurrences pay for
// the canonical encoding and the row write.
func (w *RunWriter) valID(v value.Value) (int64, error) {
	if s, ok := v.StringVal(); ok {
		if id, ok := w.strIDs[s]; ok {
			return id, nil
		}
		id, err := w.internPayload(value.Encode(v))
		if err == nil {
			w.strIDs[s] = id
		}
		return id, err
	}
	if i, ok := v.IntVal(); ok {
		if id, ok := w.intIDs[i]; ok {
			return id, nil
		}
		id, err := w.internPayload(value.Encode(v))
		if err == nil {
			w.intIDs[i] = id
		}
		return id, err
	}
	if h := v.Handle(); h.Valid() {
		if id, ok := w.listIDs[h]; ok {
			return id, nil
		}
		id, err := w.internPayload(value.Encode(v))
		if err == nil {
			w.listIDs[h] = id
		}
		return id, err
	}
	return w.internPayload(value.Encode(v))
}

// internPayload interns a canonically encoded value by payload, writing the
// vals row on first sight.
func (w *RunWriter) internPayload(payload string) (int64, error) {
	if id, ok := w.valIDs[payload]; ok {
		return id, nil
	}
	id := int64(len(w.valIDs))
	if w.buffered() {
		base := w.arenaBase()
		w.arena = append(w.arena, reldb.S(w.runID), reldb.I(id), reldb.S(payload))
		w.bufVals = append(w.bufVals, w.takeRow(base))
	} else if _, err := w.s.insVal.Exec(w.runID, id, payload); err != nil {
		return 0, err
	}
	w.valIDs[payload] = id
	return id, nil
}

// Xform implements trace.Collector.
func (w *RunWriter) Xform(e trace.XformEvent) error {
	if err := w.ctxErr(); err != nil {
		return err
	}
	eventID := w.eventSeq
	w.eventSeq++
	for pos, b := range e.Inputs {
		vid, err := w.valID(b.Value)
		if err != nil {
			return err
		}
		key, err := IdxKey(b.Index)
		if err != nil {
			return err
		}
		if w.buffered() {
			base := w.arenaBase()
			w.arena = append(w.arena,
				reldb.S(w.runID), reldb.I(eventID), reldb.I(int64(pos)),
				reldb.S(b.Proc), reldb.S(b.Port), reldb.S(key), reldb.I(int64(b.Ctx)), reldb.I(vid))
			w.bufIn = append(w.bufIn, w.takeRow(base))
		} else if _, err := w.s.insIn.Exec(w.runID, eventID, int64(pos), b.Proc, b.Port, key, int64(b.Ctx), vid); err != nil {
			return err
		}
	}
	for _, b := range e.Outputs {
		vid, err := w.valID(b.Value)
		if err != nil {
			return err
		}
		key, err := IdxKey(b.Index)
		if err != nil {
			return err
		}
		if w.buffered() {
			base := w.arenaBase()
			w.arena = append(w.arena,
				reldb.S(w.runID), reldb.I(eventID),
				reldb.S(b.Proc), reldb.S(b.Port), reldb.S(key), reldb.I(int64(b.Ctx)), reldb.I(vid))
			w.bufOut = append(w.bufOut, w.takeRow(base))
		} else if _, err := w.s.insOut.Exec(w.runID, eventID, b.Proc, b.Port, key, int64(b.Ctx), vid); err != nil {
			return err
		}
	}
	return w.maybeFlush()
}

// Xfer implements trace.Collector.
func (w *RunWriter) Xfer(e trace.XferEvent) error {
	if err := w.ctxErr(); err != nil {
		return err
	}
	vid, err := w.valID(e.To.Value)
	if err != nil {
		return err
	}
	fromKey, err := IdxKey(e.From.Index)
	if err != nil {
		return err
	}
	toKey, err := IdxKey(e.To.Index)
	if err != nil {
		return err
	}
	if w.buffered() {
		base := w.arenaBase()
		w.arena = append(w.arena,
			reldb.S(w.runID),
			reldb.S(e.From.Proc), reldb.S(e.From.Port), reldb.S(fromKey), reldb.I(int64(e.From.Ctx)),
			reldb.S(e.To.Proc), reldb.S(e.To.Port), reldb.S(toKey), reldb.I(int64(e.To.Ctx)), reldb.I(vid))
		w.bufXfer = append(w.bufXfer, w.takeRow(base))
		return w.maybeFlush()
	}
	_, err = w.s.insXfer.Exec(w.runID,
		e.From.Proc, e.From.Port, fromKey, int64(e.From.Ctx),
		e.To.Proc, e.To.Port, toKey, int64(e.To.Ctx), vid)
	return err
}

// StoreTrace persists a complete in-memory trace in one call, row by row.
func (s *Store) StoreTrace(t *trace.Trace) error {
	return s.storeTrace(t, 0)
}

// StoreTraceBatched persists a complete in-memory trace through a buffered
// writer flushing batches of about batchRows rows (<= 0 selects
// DefaultBatchRows).
func (s *Store) StoreTraceBatched(t *trace.Trace, batchRows int) error {
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	return s.storeTrace(t, batchRows)
}

func (s *Store) storeTrace(t *trace.Trace, batchRows int) error {
	w, err := s.newRunWriter(context.Background(), t.RunID, t.Workflow, batchRows)
	if err != nil {
		return err
	}
	for _, e := range t.Xforms {
		if err := w.Xform(e); err != nil {
			w.Close()
			return err
		}
	}
	for _, e := range t.Xfers {
		if err := w.Xfer(e); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
