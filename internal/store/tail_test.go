package store

import (
	"context"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// feed pushes a slice of events through a channel into TailIngest.
func feed(t *testing.T, s *Store, specs map[string]*workflow.Workflow, events []trace.Event) TailStats {
	t.Helper()
	ch := make(chan trace.Event)
	go func() {
		defer close(ch)
		for _, ev := range events {
			ch <- ev
		}
	}()
	stats, err := s.TailIngest(context.Background(), ch, TailOptions{Specs: specs})
	if err != nil {
		t.Fatalf("TailIngest: %v", err)
	}
	return stats
}

func TestTailIngestAppliesFeed(t *testing.T) {
	w, tr := fig3Trace(t, "run1")
	s, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	events := tr.Events()
	stats := feed(t, s, map[string]*workflow.Workflow{"fig3": w}, events)
	if stats.Applied != len(events) || stats.DeadLettered != 0 {
		t.Fatalf("stats = %+v, want %d applied, 0 dead-lettered", stats, len(events))
	}
	if stats.RunsStarted != 1 || stats.RunsEnded != 1 {
		t.Fatalf("stats = %+v, want 1 run started and ended", stats)
	}

	// The streamed run must equal the batch-stored one, record for record.
	ref, _ := storeFig3(t)
	refTotal, err := ref.TotalRecords("run1")
	if err != nil {
		t.Fatal(err)
	}
	total, err := s.TotalRecords("run1")
	if err != nil || total != refTotal {
		t.Fatalf("TotalRecords = %d (%v), want %d", total, err, refTotal)
	}
	want, err := ref.XformsByOutput("run1", "P", "Y", value.Ix(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.XformsByOutput("run1", "P", "Y", value.Ix(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("probe after tail ingest: %d events, want %d", len(got), len(want))
	}
}

func TestTailIngestDeadLetters(t *testing.T) {
	w, tr := fig3Trace(t, "run1")
	specs := map[string]*workflow.Workflow{"fig3": w}
	s, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	good := tr.Events()
	xf := good[1] // first xform of the valid feed
	bad := []trace.Event{
		{Kind: trace.EventXform, Seq: 0},                                       // missing run_id
		{Kind: trace.EventRunStart, RunID: "rX", Workflow: "nosuch", Seq: 0},   // unknown workflow
		{Kind: trace.EventXform, RunID: "orphan", Seq: 0, Xform: xf.Xform},     // no run_start
		{Kind: trace.EventRunStart, RunID: "run1", Workflow: "fig3", Seq: 0},   // opens run1
		{Kind: trace.EventRunStart, RunID: "run1", Workflow: "fig3", Seq: 1},   // duplicate run_start
		{Kind: trace.EventXform, RunID: "run1", Seq: 2, Xform: xf.Xform},       // ok
		{Kind: trace.EventXform, RunID: "run1", Seq: 2, Xform: xf.Xform},       // out of order
		{Kind: trace.EventXform, RunID: "run1", Seq: 3},                        // no payload
		{Kind: trace.EventKind("bogus"), RunID: "run1", Seq: 4},                // unknown kind
		{Kind: trace.EventXform, RunID: "run1", Seq: 5, Xform: &trace.XformEvent{Proc: "GHOST"}}, // unknown processor
		{Kind: trace.EventRunEnd, RunID: "run1", Seq: 6},                       // ok
	}
	stats := feed(t, s, specs, bad)
	if stats.Applied != 3 {
		t.Fatalf("applied = %d, want 3 (run_start, one xform, run_end)", stats.Applied)
	}
	if stats.DeadLettered != 8 {
		t.Fatalf("dead-lettered = %d, want 8", stats.DeadLettered)
	}

	letters, err := s.ListDeadLetters()
	if err != nil {
		t.Fatal(err)
	}
	if len(letters) != 8 {
		t.Fatalf("DLQ holds %d letters, want 8", len(letters))
	}
	wantReasons := []string{
		"missing run_id",
		"unknown workflow",
		"no run_start",
		"duplicate run_start",
		"out of order",
		"without payload",
		"unknown event kind",
		"unknown processor",
	}
	for i, want := range wantReasons {
		if !strings.Contains(letters[i].Reason, want) {
			t.Errorf("letter %d reason = %q, want it to mention %q", i, letters[i].Reason, want)
		}
	}
	// Sequence numbers are strictly increasing (arrival order preserved).
	for i := 1; i < len(letters); i++ {
		if letters[i].Seq <= letters[i-1].Seq {
			t.Fatalf("DLQ order broken: seq %d after %d", letters[i].Seq, letters[i-1].Seq)
		}
	}

	// Re-streaming an already stored run dead-letters the whole run.
	again := feed(t, s, specs, tr.Events())
	if again.Applied != 0 {
		t.Fatalf("re-streamed stored run applied %d events", again.Applied)
	}
	letters, _ = s.ListDeadLetters()
	if !strings.Contains(letters[8].Reason, "run already stored") {
		t.Errorf("re-stream reason = %q", letters[8].Reason)
	}
}

func TestRetryDeadLetters(t *testing.T) {
	w, tr := fig3Trace(t, "run1")
	s, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Ingest with no spec for fig3: every event dead-letters (the run_start
	// hits "unknown workflow", the rest "unknown run").
	events := tr.Events()
	stats := feed(t, s, map[string]*workflow.Workflow{}, events)
	if stats.Applied != 0 || stats.DeadLettered != len(events) {
		t.Fatalf("stats = %+v, want everything dead-lettered", stats)
	}

	// First retry still lacks the spec: everything fails again, retry counts
	// climb, the queue is intact.
	retried, failed, err := s.RetryDeadLetters(context.Background(), TailOptions{Specs: map[string]*workflow.Workflow{}})
	if err != nil {
		t.Fatal(err)
	}
	if retried != 0 || failed != len(events) {
		t.Fatalf("retry without spec: retried=%d failed=%d", retried, failed)
	}
	letters, _ := s.ListDeadLetters()
	if len(letters) != len(events) || letters[0].Retries != 1 {
		t.Fatalf("after failed retry: %d letters, retries[0]=%d", len(letters), letters[0].Retries)
	}

	// With the spec registered, the replay drains the queue and the run is
	// stored whole.
	retried, failed, err = s.RetryDeadLetters(context.Background(), TailOptions{Specs: map[string]*workflow.Workflow{"fig3": w}})
	if err != nil {
		t.Fatal(err)
	}
	if retried != len(events) || failed != 0 {
		t.Fatalf("retry with spec: retried=%d failed=%d, want %d/0", retried, failed, len(events))
	}
	if letters, _ := s.ListDeadLetters(); len(letters) != 0 {
		t.Fatalf("queue not drained: %d letters remain", len(letters))
	}
	ok, err := s.HasRun("run1")
	if err != nil || !ok {
		t.Fatalf("run not stored after retry: %v %v", ok, err)
	}
	total, err := s.TotalRecords("run1")
	if err != nil || total != tr.NumRecords() {
		t.Fatalf("TotalRecords = %d (%v), want %d", total, err, tr.NumRecords())
	}
}

func TestDLQSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open("durable:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	ev := trace.Event{Kind: trace.EventXform, RunID: "r1", Seq: 3}
	feed(t, s, nil, []trace.Event{ev}) // no run_start: dead-letters
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open("durable:" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	letters, err := s2.ListDeadLetters()
	if err != nil || len(letters) != 1 {
		t.Fatalf("reopened DLQ: %v letters (%v), want 1", len(letters), err)
	}
	// The sequence counter reseeds past the stored maximum.
	feed(t, s2, nil, []trace.Event{ev})
	letters, _ = s2.ListDeadLetters()
	if len(letters) != 2 || letters[1].Seq <= letters[0].Seq {
		t.Fatalf("post-reopen DLQ sequencing broken: %+v", letters)
	}
}

func TestTailIngestSnapshotIsolation(t *testing.T) {
	w, tr1 := fig3Trace(t, "run1")
	_, tr2 := fig3Trace(t, "run2")
	s, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StoreTrace(tr1); err != nil {
		t.Fatal(err)
	}

	v, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	before, err := v.InputBindings("run1", "P", "X1", value.Ix(1))
	if err != nil {
		t.Fatal(err)
	}
	epoch := v.Epoch()

	// Concurrent burst: run2 streams in while the view stays pinned.
	feed(t, s, map[string]*workflow.Workflow{"fig3": w}, tr2.Events())
	if s.Epoch() <= epoch {
		t.Fatalf("ingest did not advance the epoch: %d -> %d", epoch, s.Epoch())
	}

	// The pinned view answers identically and never sees run2.
	after, err := v.InputBindings("run1", "P", "X1", value.Ix(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("pinned view changed under ingest: %d vs %d bindings", len(after), len(before))
	}
	if ok, err := v.HasRun("run2"); err != nil || ok {
		t.Fatalf("pinned view sees run ingested after the pin (ok=%v err=%v)", ok, err)
	}
	runs, err := v.ListRuns()
	if err != nil || len(runs) != 1 {
		t.Fatalf("pinned ListRuns = %v (%v), want only run1", runs, err)
	}

	// A fresh view sees both runs.
	v2, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.Epoch() <= epoch {
		t.Fatalf("fresh view epoch %d not past pinned %d", v2.Epoch(), epoch)
	}
	if ok, _ := v2.HasRun("run2"); !ok {
		t.Fatal("fresh view misses the streamed run")
	}
}
