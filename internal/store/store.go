package store

import (
	"database/sql"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/reldb"
	"repro/internal/sqlike"
)

// Store is a handle on a provenance database. It is safe for concurrent use
// (the underlying engine serializes statements). The lineage-facing queries
// are prepared once per store, as the paper's JDBC implementation did.
type Store struct {
	db  *sql.DB
	dsn string
	// rdb is the embedded engine behind dsn. Buffered run writers flush
	// multi-row batches straight into it (one lock acquisition + one
	// group-committed WAL record per batch), bypassing the per-row SQL path.
	rdb *reldb.DB

	// The four event INSERT statements, prepared once per store and shared
	// by every (unbuffered) RunWriter; *sql.Stmt is safe for concurrent use.
	insVal  *sql.Stmt
	insIn   *sql.Stmt
	insOut  *sql.Stmt
	insXfer *sql.Stmt

	qOutsPrefix *sql.Stmt
	qOutsExact  *sql.Stmt
	qEventIns   *sql.Stmt
	qInsPrefix  *sql.Stmt
	qInsExact   *sql.Stmt
	qXfersTo    *sql.Stmt
	qValue      *sql.Stmt

	// Batched (multi-run) probe statements: keyed by (proc, port, idx)
	// without a run filter, they answer Q(P, X, p) for every run in one
	// index-range scan over xin_ppi (see InputBindingsBatch).
	qInsBatchPrefix *sql.Stmt
	qInsBatchExact  *sql.Stmt
	qValsRange      *sql.Stmt
	qValsRangeAll   *sql.Stmt

	// runsEst caches the number of stored runs (-1 = unknown); ValuesBatch
	// uses it to estimate the row cost of a cross-run value scan.
	runsEst atomic.Int64

	// runSet caches the stored run IDs (nil = unknown) so HasRun — called
	// once per run by every multi-run query's validation pass — is a map
	// lookup, not a COUNT over the runs table. Writers invalidate it
	// alongside runsEst.
	runSetMu sync.RWMutex
	runSet   map[string]bool

	// Columnar projection state (see colseg.go). segs caches one immutable
	// colstore.Segment per checkpointed run; openWriters and segGen fence
	// segment installs against concurrent ingest so a probe can never see a
	// segment that lags the row store; segEpoch records the engine epoch each
	// cached segment became current at, so pinned Views can tell which
	// segments their epoch covers; segDisk (durable stores only) persists
	// segments next to the WAL through the engine's VFS.
	segMu       sync.RWMutex
	segs        map[string]*colstore.Segment
	openWriters map[string]int
	segGen      map[string]uint64
	segEpoch    map[string]uint64
	segDisk     *colstore.DiskStore

	// Dead-letter queue sequencing (see tail.go).
	dlqState
}

// schema is the DDL of the provenance database, mirroring the relational
// implementation described in §4 of the paper: one row per xform input
// binding, one per xform output binding, one per xfer event, plus runs and
// deduplicated port values. Every query issued by the lineage algorithms is
// covered by one of the composite indexes.
var schema = []string{
	`CREATE TABLE runs (run_id TEXT, workflow TEXT)`,
	`CREATE INDEX runs_id ON runs (run_id)`,

	`CREATE TABLE vals (run_id TEXT, val_id INT, payload TEXT)`,
	`CREATE INDEX vals_id ON vals (run_id, val_id)`,
	`CREATE INDEX vals_vid ON vals (val_id)`,

	`CREATE TABLE xform_in (run_id TEXT, event_id INT, pos INT, proc TEXT, port TEXT, idx TEXT, ctx INT, val_id INT)`,
	`CREATE INDEX xin_evt ON xform_in (run_id, event_id, pos)`,
	`CREATE INDEX xin_port ON xform_in (run_id, proc, port, idx)`,
	`CREATE INDEX xin_ppi ON xform_in (proc, port, idx)`,

	`CREATE TABLE xform_out (run_id TEXT, event_id INT, proc TEXT, port TEXT, idx TEXT, ctx INT, val_id INT)`,
	`CREATE INDEX xout_port ON xform_out (run_id, proc, port, idx)`,
	`CREATE INDEX xout_evt ON xform_out (run_id, event_id)`,

	`CREATE TABLE xfer (run_id TEXT, from_proc TEXT, from_port TEXT, from_idx TEXT, from_ctx INT,
	                    to_proc TEXT, to_port TEXT, to_idx TEXT, to_ctx INT, val_id INT)`,
	`CREATE INDEX xfer_to ON xfer (run_id, to_proc, to_port)`,
	`CREATE INDEX xfer_from ON xfer (run_id, from_proc, from_port)`,

	// The streaming-ingest dead-letter queue (see tail.go): events TailIngest
	// rejects, kept durably for inspection and replay.
	`CREATE TABLE dlq (seq INT, run_id TEXT, kind TEXT, reason TEXT, event TEXT, retries INT)`,
	`CREATE INDEX dlq_seq ON dlq (seq)`,
}

// Open opens (and if necessary initializes) a provenance store at the given
// sqlike DSN ("memory:<name>" or "file:<path>").
func Open(dsn string) (*Store, error) {
	db, err := sql.Open(sqlike.DriverName, dsn)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{db: db, dsn: dsn}
	s.runsEst.Store(-1)
	if err := s.ensureSchema(); err != nil {
		db.Close()
		return nil, err
	}
	if err := s.prepareQueries(); err != nil {
		db.Close()
		return nil, err
	}
	if s.rdb, err = sqlike.DBFor(dsn); err != nil {
		db.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.initColSegs()
	return s, nil
}

func (s *Store) prepareQueries() error {
	prep := func(dst **sql.Stmt, query string) error {
		st, err := s.db.Prepare(query)
		if err != nil {
			return fmt.Errorf("store: preparing %q: %w", query, err)
		}
		*dst = st
		return nil
	}
	if err := prep(&s.qOutsPrefix,
		`SELECT event_id, idx, ctx, val_id FROM xform_out WHERE run_id = ? AND proc = ? AND port = ? AND idx LIKE ?`); err != nil {
		return err
	}
	if err := prep(&s.qOutsExact,
		`SELECT event_id, idx, ctx, val_id FROM xform_out WHERE run_id = ? AND proc = ? AND port = ? AND idx = ?`); err != nil {
		return err
	}
	if err := prep(&s.qEventIns,
		`SELECT pos, proc, port, idx, ctx, val_id FROM xform_in WHERE run_id = ? AND event_id = ? ORDER BY pos`); err != nil {
		return err
	}
	if err := prep(&s.qInsPrefix,
		`SELECT idx, ctx, val_id FROM xform_in WHERE run_id = ? AND proc = ? AND port = ? AND idx LIKE ?`); err != nil {
		return err
	}
	if err := prep(&s.qInsExact,
		`SELECT idx, ctx, val_id FROM xform_in WHERE run_id = ? AND proc = ? AND port = ? AND idx = ?`); err != nil {
		return err
	}
	if err := prep(&s.qXfersTo,
		`SELECT from_proc, from_port, from_idx, from_ctx, to_idx, to_ctx, val_id FROM xfer WHERE run_id = ? AND to_proc = ? AND to_port = ?`); err != nil {
		return err
	}
	if err := prep(&s.qInsBatchPrefix,
		`SELECT run_id, idx, ctx, val_id FROM xform_in WHERE proc = ? AND port = ? AND idx LIKE ?`); err != nil {
		return err
	}
	if err := prep(&s.qInsBatchExact,
		`SELECT run_id, idx, ctx, val_id FROM xform_in WHERE proc = ? AND port = ? AND idx = ?`); err != nil {
		return err
	}
	if err := prep(&s.qValsRange,
		`SELECT val_id, payload FROM vals WHERE run_id = ? AND val_id >= ? AND val_id <= ?`); err != nil {
		return err
	}
	if err := prep(&s.qValsRangeAll,
		`SELECT run_id, val_id, payload FROM vals WHERE val_id >= ? AND val_id <= ?`); err != nil {
		return err
	}
	if err := prep(&s.insVal,
		`INSERT INTO vals (run_id, val_id, payload) VALUES (?, ?, ?)`); err != nil {
		return err
	}
	if err := prep(&s.insIn,
		`INSERT INTO xform_in (run_id, event_id, pos, proc, port, idx, ctx, val_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?)`); err != nil {
		return err
	}
	if err := prep(&s.insOut,
		`INSERT INTO xform_out (run_id, event_id, proc, port, idx, ctx, val_id) VALUES (?, ?, ?, ?, ?, ?, ?)`); err != nil {
		return err
	}
	if err := prep(&s.insXfer,
		`INSERT INTO xfer (run_id, from_proc, from_port, from_idx, from_ctx, to_proc, to_port, to_idx, to_ctx, val_id) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)`); err != nil {
		return err
	}
	return prep(&s.qValue, `SELECT payload FROM vals WHERE run_id = ? AND val_id = ?`)
}

// OpenMemory opens a fresh, private in-memory provenance store.
func OpenMemory() (*Store, error) { return Open(sqlike.MemoryDSN()) }

func (s *Store) ensureSchema() error {
	// The runs table existing means the schema is already in place; stores
	// created before an index was added to the schema still need it built.
	var n int
	if err := s.db.QueryRow(`SELECT COUNT(*) FROM runs`).Scan(&n); err == nil {
		return s.migrateIndexes()
	}
	for _, stmt := range schema {
		if _, err := s.db.Exec(stmt); err != nil {
			return fmt.Errorf("store: initializing schema: %w", err)
		}
	}
	return nil
}

// migrateIndexes backfills schema objects added after a store was created:
// indexes (e.g. xin_ppi, which the batched multi-run probes rely on) and
// whole tables (e.g. dlq, the streaming-ingest dead-letter queue).
func (s *Store) migrateIndexes() error {
	for _, stmt := range schema {
		if !strings.HasPrefix(stmt, "CREATE INDEX") && !strings.HasPrefix(stmt, "CREATE TABLE") {
			continue
		}
		if _, err := s.db.Exec(stmt); err != nil {
			if errors.Is(err, reldb.ErrIndexExists) || errors.Is(err, reldb.ErrTableExists) {
				continue
			}
			return fmt.Errorf("store: migrating schema: %w", err)
		}
	}
	return nil
}

// Close releases the database handle. In-memory stores also release their
// contents.
func (s *Store) Close() error {
	for _, st := range []*sql.Stmt{s.qOutsPrefix, s.qOutsExact, s.qEventIns, s.qInsPrefix, s.qInsExact, s.qXfersTo, s.qValue,
		s.qInsBatchPrefix, s.qInsBatchExact, s.qValsRange, s.qValsRangeAll,
		s.insVal, s.insIn, s.insOut, s.insXfer} {
		if st != nil {
			st.Close()
		}
	}
	err := s.db.Close()
	sqlike.Forget(s.dsn)
	return err
}

// DB exposes the database/sql handle for ad-hoc queries (used by the CLIs
// and the benchmark harness).
func (s *Store) DB() *sql.DB { return s.db }

// DSN returns the store's data source name.
func (s *Store) DSN() string { return s.dsn }

// Save snapshots the store to a file; a store opened later with DSN
// "file:<path>" sees the saved state.
func (s *Store) Save(path string) error {
	_, err := s.db.Exec(`SAVE TO '` + sqlEscape(path) + `'`)
	return err
}

// Checkpoint writes a fresh snapshot of a durable store and truncates its
// write-ahead log, bounding both the WAL's disk footprint and the replay
// work a later Open must do. On a non-durable (memory- or file-backed)
// store there is no log to truncate and that step is a no-op.
//
// Checkpoint is also when the store brings its columnar projection up to
// date: every quiescent run without a fresh column segment gets one built
// from the row store (and, on durable stores, persisted beside the WAL).
// Segment maintenance is best-effort — a build failure leaves the affected
// runs on the row-scan path, it never fails the checkpoint.
func (s *Store) Checkpoint() error {
	if err := s.rdb.Checkpoint(); err != nil {
		if !errors.Is(err, reldb.ErrNotDurable) {
			return err
		}
	}
	_, err := s.BuildColumnSegments()
	return err
}

// TopologyGen implements TopologyVersioner: a single store is one undivided
// keyspace, so every open shares the same generation.
func (s *Store) TopologyGen() string { return "single" }

func sqlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'', '\'')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

// runsEstimate returns the (cached) number of stored runs. It only steers
// the cross-run scan heuristic in ValuesBatch, so a stale value is harmless;
// writers invalidate the cache rather than keep it exact.
func (s *Store) runsEstimate() int64 {
	if n := s.runsEst.Load(); n >= 0 {
		return n
	}
	var n int
	if err := s.db.QueryRow(`SELECT COUNT(*) FROM runs`).Scan(&n); err != nil {
		return 1 << 30 // unknown: make cross-run scans look expensive
	}
	s.runsEst.Store(int64(n))
	return int64(n)
}

// RunInfo describes one stored run.
type RunInfo struct {
	RunID    string
	Workflow string
}

// ListRuns returns all stored runs.
func (s *Store) ListRuns() ([]RunInfo, error) { return s.listRunsOn(s) }

func (s *Store) listRunsOn(r runner) ([]RunInfo, error) {
	rows, err := r.query(`SELECT run_id, workflow FROM runs`)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []RunInfo
	for rows.Next() {
		var ri RunInfo
		if err := rows.Scan(&ri.RunID, &ri.Workflow); err != nil {
			return nil, err
		}
		out = append(out, ri)
	}
	return out, rows.Err()
}

// HasRun reports whether the store holds the given run. It is not counted as
// a lineage probe: existence checks are bookkeeping, not trace access. The
// answer comes from a cached run-ID set (built on first use, invalidated by
// writers), so validating a large multi-run query costs one map lookup per
// run, not one table scan per run.
func (s *Store) HasRun(runID string) (bool, error) {
	s.runSetMu.RLock()
	set := s.runSet
	s.runSetMu.RUnlock()
	if set == nil {
		runs, err := s.ListRuns()
		if err != nil {
			return false, err
		}
		set = make(map[string]bool, len(runs))
		for _, ri := range runs {
			set[ri.RunID] = true
		}
		s.runSetMu.Lock()
		s.runSet = set
		s.runSetMu.Unlock()
	}
	return set[runID], nil
}

// invalidateRunCaches drops the cached run count and run-ID set after a
// mutation of the runs table.
func (s *Store) invalidateRunCaches() {
	s.runsEst.Store(-1)
	s.runSetMu.Lock()
	s.runSet = nil
	s.runSetMu.Unlock()
}

// RunsOf returns the IDs of all runs of the named workflow.
func (s *Store) RunsOf(workflow string) ([]string, error) {
	runs, err := s.ListRuns()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, r := range runs {
		if r.Workflow == workflow {
			out = append(out, r.RunID)
		}
	}
	return out, nil
}

// RecordCounts reports the number of rows each event table holds for a run
// (pass "" for all runs). This is the metric of Table 1 of the paper: xform
// input rows + xform output rows + xfer rows.
func (s *Store) RecordCounts(runID string) (xformIn, xformOut, xfers int, err error) {
	return s.recordCountsOn(s, runID)
}

func (s *Store) recordCountsOn(r runner, runID string) (xformIn, xformOut, xfers int, err error) {
	count := func(table string) (int, error) {
		var n int
		var err error
		if runID == "" {
			err = r.queryRow(`SELECT COUNT(*) FROM ` + table).Scan(&n)
		} else {
			err = r.queryRow(`SELECT COUNT(*) FROM `+table+` WHERE run_id = ?`, runID).Scan(&n)
		}
		return n, err
	}
	if xformIn, err = count("xform_in"); err != nil {
		return
	}
	if xformOut, err = count("xform_out"); err != nil {
		return
	}
	xfers, err = count("xfer")
	return
}

// TotalRecords returns the Table 1 record count for a run ("" for all runs).
func (s *Store) TotalRecords(runID string) (int, error) {
	in, out, xf, err := s.RecordCounts(runID)
	return in + out + xf, err
}

// DeleteRun removes every record of a run (events, transfers, values and
// the run row itself), returning the number of event rows removed.
func (s *Store) DeleteRun(runID string) (int, error) {
	var n int
	if err := s.db.QueryRow(`SELECT COUNT(*) FROM runs WHERE run_id = ?`, runID).Scan(&n); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	// Drop the run's column segment before touching its rows (so no probe
	// serves the run from a segment while rows disappear underneath it) …
	s.invalidateSegment(runID)
	removed := 0
	for _, table := range []string{"xform_in", "xform_out", "xfer"} {
		res, err := s.db.Exec(`DELETE FROM `+table+` WHERE run_id = ?`, runID)
		if err != nil {
			return removed, err
		}
		if aff, err := res.RowsAffected(); err == nil {
			removed += int(aff)
		}
	}
	if _, err := s.db.Exec(`DELETE FROM vals WHERE run_id = ?`, runID); err != nil {
		return removed, err
	}
	if _, err := s.db.Exec(`DELETE FROM runs WHERE run_id = ?`, runID); err != nil {
		return removed, err
	}
	// … and again afterwards, bumping the generation a second time so a
	// segment build that raced the deletes (reading a half-deleted run)
	// can never install its result.
	s.invalidateSegment(runID)
	s.invalidateRunCaches()
	return removed, nil
}
