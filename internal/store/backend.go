package store

import (
	"context"

	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// TraceQuerier is the extensional read surface the NI and Impact evaluators
// need from a provenance store: direct navigation of the stored provenance
// graph, one event at a time. Implementations must be safe for concurrent
// use.
type TraceQuerier interface {
	// XformsByOutput returns the xform events with an output binding on the
	// given port matching idx (granularity rules of §2.3/§2.4).
	XformsByOutput(runID, proc, port string, idx value.Index) ([]Xform, error)
	// XformsByInput is the forward dual: events matched through an input.
	XformsByInput(runID, proc, port string, idx value.Index) ([]ForwardXform, error)
	// XfersTo returns the xfer events whose sink is the given port.
	XfersTo(runID, proc, port string) ([]Xfer, error)
	// XfersFrom returns the xfer events whose source is the given port.
	XfersFrom(runID, proc, port string) ([]Xfer, error)
	// Value materializes one stored port value.
	Value(runID string, valID int64) (value.Value, error)
	// HasRun reports whether the store holds the given run.
	HasRun(runID string) (bool, error)
}

// Backend is the full store surface the System facade, the CLIs and the
// benchmark harness program against: both lineage read paths, the write and
// bulk-ingest paths, and the administrative operations. *Store implements it
// directly; shard.ShardedStore implements it by routing each run to its
// owning shard and scatter-gathering the multi-run operations.
type Backend interface {
	LineageQuerier
	TraceQuerier

	// NewRunWriter registers a run and returns an unbuffered collector.
	NewRunWriter(runID, workflowName string) (*RunWriter, error)
	// NewBufferedRunWriter registers a run and returns a batching collector.
	NewBufferedRunWriter(ctx context.Context, runID, workflowName string, batchRows int) (*RunWriter, error)
	// Ingest loads every task's run concurrently through buffered writers.
	Ingest(ctx context.Context, tasks []IngestTask, opt IngestOptions) error
	// IngestTraces bulk-loads a set of recorded traces.
	IngestTraces(ctx context.Context, traces []*trace.Trace, opt IngestOptions) error
	// StoreTrace persists one complete in-memory trace.
	StoreTrace(t *trace.Trace) error
	// LoadTrace reconstructs the full in-memory trace of a stored run.
	LoadTrace(runID string) (*trace.Trace, error)

	// ListRuns returns all stored runs.
	ListRuns() ([]RunInfo, error)
	// RunsOf returns the IDs of all runs of the named workflow.
	RunsOf(workflow string) ([]string, error)
	// RecordCounts reports per-table event rows for a run ("" for all runs).
	RecordCounts(runID string) (xformIn, xformOut, xfers int, err error)
	// TotalRecords returns the Table 1 record count ("" for all runs).
	TotalRecords(runID string) (int, error)
	// DeleteRun removes every record of a run.
	DeleteRun(runID string) (int, error)
	// Verify checks the integrity of one stored run.
	Verify(runID string, wf *workflow.Workflow) (*VerifyReport, error)

	// Save snapshots the store to the given path.
	Save(path string) error
	// DSN returns the store's data source name.
	DSN() string
	// Close releases the store.
	Close() error
}

var _ Backend = (*Store)(nil)

// TopologyVersioner is an optional interface a store implements when its
// physical layout can differ between opens of "the same" data (a sharded
// store's consistent-hash ring). TopologyGen returns a stable fingerprint of
// that layout; consumers that cache state derived against one layout — the
// lineage plan cache — pin the generation into their cache keys so a store
// reopened under a different topology never answers from stale entries.
// Stores without partitioned layout return a constant.
type TopologyVersioner interface {
	TopologyGen() string
}

// Checkpointer is an optional interface a store implements when it can bound
// its recovery work on demand: Checkpoint snapshots durable state and
// truncates the write-ahead log. provd's graceful drain checkpoints every
// open tenant store through this interface before closing it.
type Checkpointer interface {
	Checkpoint() error
}

// ContextLineageQuerier is an optional interface a LineageQuerier implements
// when its probes can honor a caller deadline (shard.ShardedStore: a stalled
// or dead replica must not hold a query past its context). The multi-run
// executor prefers these ctx-bounded variants when the store offers them;
// semantics otherwise match the LineageQuerier methods exactly.
type ContextLineageQuerier interface {
	LineageQuerier
	InputBindingsCtx(ctx context.Context, runID, proc, port string, idx value.Index) ([]Binding, error)
	InputBindingsBatchCtx(ctx context.Context, runIDs []string, proc, port string, idx value.Index) (map[string][]Binding, error)
	ValueCtx(ctx context.Context, runID string, valID int64) (value.Value, error)
	ValuesBatchCtx(ctx context.Context, refs []ValueRef) (map[ValueRef]value.Value, error)
}

// ContextTraceQuerier is an optional interface a TraceQuerier implements
// when its extensional probes and run-metadata reads can honor a caller
// deadline (shard.ShardedStore: every one of these routes through a replica
// set whose members may be stalled or dead). Callers holding a request
// context — the provd query path, provq with -timeout — prefer these
// variants; semantics otherwise match the plain methods exactly.
type ContextTraceQuerier interface {
	TraceQuerier
	XformsByOutputCtx(ctx context.Context, runID, proc, port string, idx value.Index) ([]Xform, error)
	XformsByInputCtx(ctx context.Context, runID, proc, port string, idx value.Index) ([]ForwardXform, error)
	XfersToCtx(ctx context.Context, runID, proc, port string) ([]Xfer, error)
	XfersFromCtx(ctx context.Context, runID, proc, port string) ([]Xfer, error)
	HasRunCtx(ctx context.Context, runID string) (bool, error)
	LoadTraceCtx(ctx context.Context, runID string) (*trace.Trace, error)
	VerifyCtx(ctx context.Context, runID string, wf *workflow.Workflow) (*VerifyReport, error)
}

// ContextColumnScanner is the ctx-bounded variant of ColumnScanner; column
// segments load lazily from disk at query time, so the deadline genuinely
// bounds I/O.
type ContextColumnScanner interface {
	ColumnScanner
	ColScanBindingsCtx(ctx context.Context, runIDs []string, proc, port string, idx value.Index) (byRun map[string][]Binding, missing []string, err error)
}

// ReplicaHealth is one replica's health row as reported by a HealthReporter:
// its role in the replica set, its circuit-breaker state, and the breaker's
// lifetime call accounting. provd's /healthz renders these.
type ReplicaHealth struct {
	Shard     int    `json:"shard"`
	Replica   int    `json:"replica"`
	Role      string `json:"role"`    // "primary" or "follower"
	Breaker   string `json:"breaker"` // "closed", "open" or "half-open"
	Down      bool   `json:"down,omitempty"`
	Successes int64  `json:"successes"`
	Failures  int64  `json:"failures"`
	Trips     int64  `json:"trips"`
	// Epoch is the replica's committed snapshot epoch; a follower whose epoch
	// trails its primary's is still catching up.
	Epoch uint64 `json:"epoch"`
}

// HealthReporter is an optional interface a store implements when it tracks
// per-replica health (shard.ShardedStore with replication). Single-engine
// stores do not implement it; a health endpoint then reports only liveness.
type HealthReporter interface {
	ReplicaHealth() []ReplicaHealth
}

// RunPartitioner is an optional interface a LineageQuerier implements when
// its runs are physically partitioned (shard.ShardedStore: one independent
// store per shard). PartitionRuns splits a run set into groups of
// co-resident runs; the multi-run executor forms its probe chunks within
// one group at a time, so every batched probe lands on a single partition
// and scans only that partition's index — partition pruning — instead of
// paying one whole-store index scan per chunk. The groups must cover
// exactly the input runs, without duplicates.
type RunPartitioner interface {
	PartitionRuns(runIDs []string) [][]string
}
