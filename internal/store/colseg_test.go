package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/colstore"
	"repro/internal/engine"
	"repro/internal/faultfs"
	"repro/internal/obs"
	"repro/internal/reldb"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// colFixtureWorkflow is storeFig3's workflow, reusable across several runs.
func colFixtureWorkflow() (*workflow.Workflow, *engine.Registry) {
	w := workflow.New("fig3")
	w.AddInput("v", 1).AddInput("w", 0).AddInput("c", 1)
	w.AddOutput("y", 2)
	w.AddProcessor("Q", "upper", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 0)})
	w.AddProcessor("R", "tolist", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 1)})
	w.AddProcessor("P", "combine",
		[]workflow.Port{workflow.In("X1", 0), workflow.In("X2", 1), workflow.In("X3", 0)},
		[]workflow.Port{workflow.Out("Y", 0)})
	w.Connect("", "v", "Q", "X")
	w.Connect("", "w", "R", "X")
	w.Connect("", "c", "P", "X2")
	w.Connect("Q", "Y", "P", "X1")
	w.Connect("R", "Y", "P", "X3")
	w.Connect("P", "Y", "", "y")

	reg := engine.NewRegistry()
	reg.Register("upper", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Str("U" + s)}, nil
	})
	reg.Register("tolist", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Strs(s+"a", s+"b")}, nil
	})
	reg.Register("combine", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str(value.Encode(args[0]) + "+" + value.Encode(args[2]))}, nil
	})
	return w, reg
}

// storeColRuns ingests n runs of the fixture workflow into s and returns the
// run IDs.
func storeColRuns(t *testing.T, s *Store, n int) []string {
	t.Helper()
	w, reg := colFixtureWorkflow()
	e := engine.New(reg)
	runs := make([]string, n)
	for i := range runs {
		runID := fmt.Sprintf("colrun-%03d", i)
		_, tr, err := e.RunTrace(w, runID, map[string]value.Value{
			"v": value.Strs(fmt.Sprintf("a%d", i), "b", fmt.Sprintf("c%d", i%3)),
			"w": value.Str(fmt.Sprintf("w%d", i)),
			"c": value.Strs("k"),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.StoreTrace(tr); err != nil {
			t.Fatal(err)
		}
		runs[i] = runID
	}
	return runs
}

// colProbes enumerates probe shapes covering the prefix path, the
// granularity fallback, zone-map prunes, and absent ports.
func colProbes() []struct {
	proc, port string
	idx        value.Index
} {
	return []struct {
		proc, port string
		idx        value.Index
	}{
		{"Q", "X", value.Index{0}},
		{"Q", "X", value.Index{1}},
		{"Q", "X", value.Index{}},
		{"Q", "X", value.Index{0, 0}}, // finer than recorded: exact-prefix fallback
		{"R", "X", value.Index{}},
		{"P", "X1", value.Index{2}},
		{"P", "X2", value.Index{0}},
		{"P", "X3", value.Index{1}},
		{"P", "X3", value.Index{9}},                  // no match at any level
		{"P", "nope", value.Index{0}},                // unknown port
		{"A", "X", value.Index{0}},                   // below the proc zone map
		{"Z", "X", value.Index{0}},                   // above the proc zone map
		{trace.WorkflowProc, "v", value.Index{0, 0}}, // workflow-level bindings
	}
}

// assertColEqualsRows checks that the columnar answer plus its row-path
// fill-in for missing runs is deep-equal to InputBindingsBatch for every
// probe shape.
func assertColEqualsRows(t *testing.T, s *Store, runs []string, wantMissing int) {
	t.Helper()
	for _, p := range colProbes() {
		want, err := s.InputBindingsBatch(runs, p.proc, p.port, p.idx)
		if err != nil {
			t.Fatal(err)
		}
		got, missing, err := s.ColScanBindings(runs, p.proc, p.port, p.idx)
		if err != nil {
			t.Fatal(err)
		}
		if wantMissing >= 0 && len(missing) != wantMissing {
			t.Fatalf("probe %s:%s%v: %d missing runs, want %d", p.proc, p.port, p.idx, len(missing), wantMissing)
		}
		sub, err := s.InputBindingsBatch(missing, p.proc, p.port, p.idx)
		if err != nil {
			t.Fatal(err)
		}
		for r, bs := range sub {
			got[r] = bs
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("probe %s:%s%v: colscan answer differs\n got: %v\nwant: %v", p.proc, p.port, p.idx, got, want)
		}
	}
}

func TestColScanMatchesRowBatch(t *testing.T) {
	s, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	runs := storeColRuns(t, s, 8)

	// Before any checkpoint there are no segments: everything falls back.
	if s.ColScanAvailable() {
		t.Fatal("segments available before the first checkpoint")
	}
	assertColEqualsRows(t, s, runs, len(runs))

	s0 := obs.Default.Snapshot()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d := obs.Default.Snapshot().Sub(s0)
	if got := d.Counter("colscan.builds"); got != int64(len(runs)) {
		t.Fatalf("checkpoint built %d segments, want %d", got, len(runs))
	}
	if !s.ColScanAvailable() {
		t.Fatal("segments not available after checkpoint")
	}
	assertColEqualsRows(t, s, runs, 0)

	// Zone-map prunes must fire for out-of-range processors.
	s0 = obs.Default.Snapshot()
	if _, _, err := s.ColScanBindings(runs, "A", "X", value.Index{0}); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.Snapshot().Sub(s0).Counter("colscan.zonemap_prunes"); got != int64(len(runs)) {
		t.Fatalf("zone-map prunes = %d, want %d", got, len(runs))
	}

	// A run ingested after the checkpoint has no segment until the next
	// checkpoint; the mixed answer must still agree with the row path.
	w, reg := colFixtureWorkflow()
	_, tr, err := engine.New(reg).RunTrace(w, "colrun-late", map[string]value.Value{
		"v": value.Strs("x", "y", "z"), "w": value.Str("late"), "c": value.Strs("k"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StoreTrace(tr); err != nil {
		t.Fatal(err)
	}
	assertColEqualsRows(t, s, append(append([]string(nil), runs...), "colrun-late"), 1)

	// The second checkpoint is incremental: only the late run gets built.
	s0 = obs.Default.Snapshot()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.Snapshot().Sub(s0).Counter("colscan.builds"); got != 1 {
		t.Fatalf("incremental checkpoint built %d segments, want 1", got)
	}
	assertColEqualsRows(t, s, append(append([]string(nil), runs...), "colrun-late"), 0)
}

func TestColScanDeleteRunInvalidates(t *testing.T) {
	s, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	runs := storeColRuns(t, s, 3)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DeleteRun(runs[1]); err != nil {
		t.Fatal(err)
	}
	got, missing, err := s.ColScanBindings(runs[1:2], "Q", "X", value.Index{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || len(got) != 0 {
		t.Fatalf("deleted run still served from a segment: got=%v missing=%v", got, missing)
	}
}

func TestColScanDurablePersistReopenAndCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	dsn := "durable:" + filepath.Join(dir, "db")
	s, err := Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	runs := storeColRuns(t, s, 4)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	assertColEqualsRows(t, s, runs, 0)
	segDir := s.segDisk.Dir
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: segments lazily load from disk, no rebuild needed.
	s, err = Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if !s.ColScanAvailable() {
		t.Fatal("persisted segments not visible after reopen")
	}
	s0 := obs.Default.Snapshot()
	assertColEqualsRows(t, s, runs, 0)
	if got := obs.Default.Snapshot().Sub(s0).Counter("colscan.builds"); got != 0 {
		t.Fatalf("reopen rebuilt %d segments, want 0 (disk load)", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one segment file on disk: the store must serve that run from
	// row scans (counted as a fallback), byte-identically.
	disk := &colstore.DiskStore{FS: reldb.OSFS{}, Dir: segDir}
	path := disk.Path(runs[2])
	data, err := reldb.OSFS{}.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	f, err := reldb.OSFS{}.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s0 = obs.Default.Snapshot()
	assertColEqualsRows(t, s, runs, 1)
	if got := obs.Default.Snapshot().Sub(s0).Counter("colscan.fallbacks"); got == 0 {
		t.Fatal("corrupt segment produced no fallback count")
	}
	// The next checkpoint repairs the corrupt segment from the row store.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	assertColEqualsRows(t, s, runs, 0)
}

// TestColSegPersistFaultSweep drives the segment build+persist path through
// a fault-injecting VFS: for every injected one-shot error and every crash
// point, the store must keep answering probes byte-identically to the row
// path (falling back where the segment is unusable), and a segment file left
// on disk after a simulated crash must decode to exactly the expected bytes
// or be rejected as corrupt/absent — never load as wrong data.
func TestColSegPersistFaultSweep(t *testing.T) {
	// Baseline: build the expected segment encodings from an undisturbed
	// store.
	mem, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	runs := storeColRuns(t, mem, 3)
	if err := mem.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantEnc := make(map[string][]byte, len(runs))
	for _, r := range runs {
		seg := mem.segmentFor(r)
		if seg == nil {
			t.Fatalf("baseline store has no segment for %s", r)
		}
		wantEnc[r] = seg.Encode()
	}

	// Learn the op count of a clean persist pass over a fresh directory.
	countOps := func() int {
		ffs := faultfs.New(reldb.OSFS{})
		d := &colstore.DiskStore{FS: ffs, Dir: filepath.Join(t.TempDir(), "colseg")}
		for _, r := range runs {
			seg := mem.segmentFor(r)
			if err := d.Write(seg); err != nil {
				t.Fatalf("clean persist pass failed: %v", err)
			}
		}
		return ffs.Ops()
	}
	total := countOps()
	if total == 0 {
		t.Fatal("persist pass performed no VFS operations")
	}

	for n := 1; n <= total; n++ {
		for _, mode := range []string{"fail", "crash"} {
			ffs := faultfs.New(reldb.OSFS{})
			segDir := filepath.Join(t.TempDir(), "colseg")
			injected := &colstore.DiskStore{FS: ffs, Dir: segDir}
			if mode == "fail" {
				ffs.FailAt(n)
			} else {
				ffs.CrashAt(n)
			}
			// Swap the fault-injecting disk store into a store whose rows
			// live in memory, then run the checkpoint-time persist.
			mem.segMu.Lock()
			saved := mem.segDisk
			mem.segDisk = injected
			for r := range mem.segs {
				delete(mem.segs, r) // force rebuild + persist
			}
			mem.segMu.Unlock()
			if _, err := mem.BuildColumnSegments(); err != nil {
				t.Fatalf("%s@%d: BuildColumnSegments: %v", mode, n, err)
			}
			// Queries must stay byte-identical to row scans regardless of
			// what the persist did.
			assertColEqualsRows(t, mem, runs, -1)
			mem.segMu.Lock()
			mem.segDisk = saved
			mem.segMu.Unlock()

			// Whatever the fault left on disk must read back as the right
			// segment or as absent/corrupt — never as wrong data.
			after := &colstore.DiskStore{FS: reldb.OSFS{}, Dir: segDir}
			for _, r := range runs {
				seg, err := after.Load(r)
				if err != nil || seg == nil {
					continue // absent or corrupt: the row path covers it
				}
				if !bytes.Equal(seg.Encode(), wantEnc[r]) {
					t.Fatalf("%s@%d: run %s loaded a wrong segment from disk", mode, n, r)
				}
			}
		}
	}
}
