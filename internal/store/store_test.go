package store

import (
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

func TestIdxKeyRoundTrip(t *testing.T) {
	cases := []value.Index{
		{}, value.Ix(0), value.Ix(1, 2, 3), value.Ix(999999), value.Ix(0, 0, 0),
	}
	for _, p := range cases {
		key, err := IdxKey(p)
		if err != nil {
			t.Fatalf("IdxKey(%v): %v", p, err)
		}
		back, err := ParseIdxKey(key)
		if err != nil || !back.Equal(p) {
			t.Errorf("round trip %v -> %q -> %v (%v)", p, key, back, err)
		}
	}
	if _, err := IdxKey(value.Ix(1000000)); err == nil {
		t.Error("overflowing component accepted")
	}
	if _, err := IdxKey(value.Index{-1}); err == nil {
		t.Error("negative component accepted")
	}
	for _, bad := range []string{"123", "000001x", "00000a."} {
		if _, err := ParseIdxKey(bad); err == nil {
			t.Errorf("ParseIdxKey(%q) accepted", bad)
		}
	}
}

func TestIdxKeyPrefixProperty(t *testing.T) {
	// String prefix relationships must coincide with index prefix
	// relationships — the property the LIKE queries rely on.
	f := func(rawA, rawB []uint8) bool {
		a := make(value.Index, len(rawA)%5)
		for i := range a {
			a[i] = int(rawA[i]) % 50
		}
		b := make(value.Index, len(rawB)%5)
		for i := range b {
			b[i] = int(rawB[i]) % 50
		}
		ka, kb := MustIdxKey(a), MustIdxKey(b)
		strPrefix := len(ka) <= len(kb) && kb[:len(ka)] == ka
		return strPrefix == b.HasPrefix(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// fig3Trace runs the Fig. 3 workflow and returns its definition and trace
// under the given run ID.
func fig3Trace(t *testing.T, runID string) (*workflow.Workflow, *trace.Trace) {
	t.Helper()
	w := workflow.New("fig3")
	w.AddInput("v", 1).AddInput("w", 0).AddInput("c", 1)
	w.AddOutput("y", 2)
	w.AddProcessor("Q", "upper", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 0)})
	w.AddProcessor("R", "tolist", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 1)})
	w.AddProcessor("P", "combine",
		[]workflow.Port{workflow.In("X1", 0), workflow.In("X2", 1), workflow.In("X3", 0)},
		[]workflow.Port{workflow.Out("Y", 0)})
	w.Connect("", "v", "Q", "X")
	w.Connect("", "w", "R", "X")
	w.Connect("", "c", "P", "X2")
	w.Connect("Q", "Y", "P", "X1")
	w.Connect("R", "Y", "P", "X3")
	w.Connect("P", "Y", "", "y")

	reg := engine.NewRegistry()
	reg.Register("upper", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Str("U" + s)}, nil
	})
	reg.Register("tolist", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Strs(s+"a", s+"b")}, nil
	})
	reg.Register("combine", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str(value.Encode(args[0]) + "+" + value.Encode(args[2]))}, nil
	})
	e := engine.New(reg)
	_, tr, err := e.RunTrace(w, runID, map[string]value.Value{
		"v": value.Strs("a", "b", "c"),
		"w": value.Str("w"),
		"c": value.Strs("k"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, tr
}

// storeFig3 runs the Fig. 3 workflow and persists its trace.
func storeFig3(t *testing.T) (*Store, *trace.Trace) {
	t.Helper()
	_, tr := fig3Trace(t, "run1")
	s, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.StoreTrace(tr); err != nil {
		t.Fatal(err)
	}
	return s, tr
}

func TestStoreTraceAndCounts(t *testing.T) {
	s, tr := storeFig3(t)
	in, out, xf, err := s.RecordCounts("run1")
	if err != nil {
		t.Fatal(err)
	}
	if xf != len(tr.Xfers) {
		t.Errorf("xfer rows = %d, want %d", xf, len(tr.Xfers))
	}
	wantIn, wantOut := 0, 0
	for _, ev := range tr.Xforms {
		wantIn += len(ev.Inputs)
		wantOut += len(ev.Outputs)
	}
	if in != wantIn || out != wantOut {
		t.Errorf("xform rows = %d/%d, want %d/%d", in, out, wantIn, wantOut)
	}
	total, err := s.TotalRecords("run1")
	if err != nil || total != tr.NumRecords() {
		t.Errorf("TotalRecords = %d, want %d (%v)", total, tr.NumRecords(), err)
	}
	runs, err := s.ListRuns()
	if err != nil || len(runs) != 1 || runs[0].RunID != "run1" || runs[0].Workflow != "fig3" {
		t.Errorf("ListRuns = %v, %v", runs, err)
	}
	ids, err := s.RunsOf("fig3")
	if err != nil || len(ids) != 1 {
		t.Errorf("RunsOf = %v, %v", ids, err)
	}
	if ids, _ := s.RunsOf("nosuch"); len(ids) != 0 {
		t.Errorf("RunsOf(nosuch) = %v", ids)
	}
}

func TestDuplicateRunRejected(t *testing.T) {
	s, _ := storeFig3(t)
	if _, err := s.NewRunWriter("run1", "fig3"); err == nil {
		t.Error("duplicate run accepted")
	}
}

func TestXformsByOutputExactAndFiner(t *testing.T) {
	s, _ := storeFig3(t)
	// Exact: P:Y[1,0] is one activation.
	evs, err := s.XformsByOutput("run1", "P", "Y", value.Ix(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("exact match = %d events", len(evs))
	}
	ev := evs[0]
	if len(ev.Inputs) != 3 {
		t.Fatalf("inputs = %d", len(ev.Inputs))
	}
	if !ev.Inputs[0].Index.Equal(value.Ix(1)) || !ev.Inputs[1].Index.Equal(value.EmptyIndex) || !ev.Inputs[2].Index.Equal(value.Ix(0)) {
		t.Errorf("input indices = %v %v %v", ev.Inputs[0].Index, ev.Inputs[1].Index, ev.Inputs[2].Index)
	}
	// Coarse query [1] matches the two activations with q extending [1].
	evs, err = s.XformsByOutput("run1", "P", "Y", value.Ix(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Errorf("prefix match = %d events, want 2", len(evs))
	}
	// Whole-value query [] matches all six activations.
	evs, err = s.XformsByOutput("run1", "P", "Y", value.EmptyIndex)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 6 {
		t.Errorf("whole-value match = %d events, want 6", len(evs))
	}
}

func TestXformsByOutputCoarserFallback(t *testing.T) {
	s, _ := storeFig3(t)
	// R records a single coarse event (R:Y[]); querying a finer index must
	// fall back to it.
	evs, err := s.XformsByOutput("run1", "R", "Y", value.Ix(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || !evs[0].Output.Index.Equal(value.EmptyIndex) {
		t.Fatalf("coarser fallback = %v", evs)
	}
	// Unknown port yields nothing.
	evs, err = s.XformsByOutput("run1", "R", "nosuch", value.Ix(1))
	if err != nil || len(evs) != 0 {
		t.Errorf("unknown port = %v, %v", evs, err)
	}
}

func TestInputBindings(t *testing.T) {
	s, _ := storeFig3(t)
	// Exact.
	bs, err := s.InputBindings("run1", "Q", "X", value.Ix(2))
	if err != nil || len(bs) != 1 {
		t.Fatalf("exact input bindings = %v, %v", bs, err)
	}
	v, err := s.Value("run1", bs[0].ValID)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(v, value.Strs("a", "b", "c")) {
		t.Errorf("bound value = %s", v)
	}
	// Coarse query returns all three.
	bs, err = s.InputBindings("run1", "Q", "X", value.EmptyIndex)
	if err != nil || len(bs) != 3 {
		t.Fatalf("coarse input bindings = %d, %v", len(bs), err)
	}
	// Finer-than-recorded falls back to the coarse binding.
	bs, err = s.InputBindings("run1", "P", "X2", value.Ix(0))
	if err != nil || len(bs) == 0 {
		t.Fatalf("fallback input bindings = %v, %v", bs, err)
	}
	if !bs[0].Index.Equal(value.EmptyIndex) {
		t.Errorf("fallback index = %v", bs[0].Index)
	}
}

func TestXfersTo(t *testing.T) {
	s, _ := storeFig3(t)
	xs, err := s.XfersTo("run1", "P", "X1")
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 1 || xs[0].From.Proc != "Q" || xs[0].From.Port != "Y" {
		t.Fatalf("XfersTo = %v", xs)
	}
	// Workflow output sink.
	xs, err = s.XfersTo("run1", trace.WorkflowProc, "y")
	if err != nil || len(xs) != 1 || xs[0].From.Proc != "P" {
		t.Fatalf("workflow output xfer = %v, %v", xs, err)
	}
	// Nothing flows into workflow inputs.
	xs, err = s.XfersTo("run1", trace.WorkflowProc, "v")
	if err != nil || len(xs) != 0 {
		t.Errorf("workflow input xfer = %v, %v", xs, err)
	}
}

func TestValueErrors(t *testing.T) {
	s, _ := storeFig3(t)
	if _, err := s.Value("run1", 99999); err == nil {
		t.Error("missing value accepted")
	}
	if _, err := s.Value("norun", 0); err == nil {
		t.Error("missing run accepted")
	}
}

func TestValueDeduplication(t *testing.T) {
	s, tr := storeFig3(t)
	var n int
	if err := s.DB().QueryRow(`SELECT COUNT(*) FROM vals WHERE run_id = ?`, "run1").Scan(&n); err != nil {
		t.Fatal(err)
	}
	// Distinct port values are far fewer than bindings.
	if n >= tr.NumRecords() {
		t.Errorf("values not deduplicated: %d values for %d records", n, tr.NumRecords())
	}
	if n == 0 {
		t.Error("no values stored")
	}
}

func TestPersistAndReopen(t *testing.T) {
	s, _ := storeFig3(t)
	path := filepath.Join(t.TempDir(), "prov.db")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Open("file:" + path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	total, err := back.TotalRecords("run1")
	if err != nil || total == 0 {
		t.Fatalf("reopened store has %d records, %v", total, err)
	}
	evs, err := back.XformsByOutput("run1", "P", "Y", value.Ix(0, 0))
	if err != nil || len(evs) != 1 {
		t.Fatalf("query on reopened store = %v, %v", evs, err)
	}
}

func TestMultiRunIsolation(t *testing.T) {
	s, _ := storeFig3(t)
	// A second run with different input sizes.
	w := workflow.New("fig3b")
	w.AddInput("v", 1)
	w.AddOutput("y", 1)
	w.AddProcessor("Q", "upper", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 0)})
	w.Connect("", "v", "Q", "X")
	w.Connect("Q", "Y", "", "y")
	reg := engine.NewRegistry()
	reg.Register("upper", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{args[0]}, nil
	})
	_, tr, err := engine.New(reg).RunTrace(w, "run2", map[string]value.Value{"v": value.Strs("x", "y")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StoreTrace(tr); err != nil {
		t.Fatal(err)
	}
	// Queries stay scoped per run.
	evs, err := s.XformsByOutput("run1", "Q", "Y", value.EmptyIndex)
	if err != nil || len(evs) != 3 {
		t.Fatalf("run1 events = %d, %v", len(evs), err)
	}
	evs, err = s.XformsByOutput("run2", "Q", "Y", value.EmptyIndex)
	if err != nil || len(evs) != 2 {
		t.Fatalf("run2 events = %d, %v", len(evs), err)
	}
	total1, _ := s.TotalRecords("run1")
	totalAll, _ := s.TotalRecords("")
	if totalAll <= total1 {
		t.Errorf("all-runs total %d not greater than run1 total %d", totalAll, total1)
	}
}

func TestQueryCount(t *testing.T) {
	s, _ := storeFig3(t)
	ResetQueryCount()
	if _, err := s.InputBindings("run1", "Q", "X", value.Ix(0)); err != nil {
		t.Fatal(err)
	}
	if QueryCount() == 0 {
		t.Error("query counter not incremented")
	}
	if prev := ResetQueryCount(); prev == 0 {
		t.Error("reset returned zero")
	}
	if QueryCount() != 0 {
		t.Error("counter not reset")
	}
}

func TestLoadTraceRoundTrip(t *testing.T) {
	s, tr := storeFig3(t)
	back, err := s.LoadTrace("run1")
	if err != nil {
		t.Fatal(err)
	}
	if back.RunID != "run1" || back.Workflow != "fig3" {
		t.Errorf("metadata = %s/%s", back.RunID, back.Workflow)
	}
	if back.NumRecords() != tr.NumRecords() {
		t.Fatalf("records = %d, want %d", back.NumRecords(), tr.NumRecords())
	}
	// Compare as event sets: grouping, indices, and values all round-trip.
	want := map[string]bool{}
	for _, e := range tr.SortedXforms() {
		want["xform:"+e.String()] = true
	}
	for _, e := range tr.SortedXfers() {
		want["xfer:"+e.String()] = true
	}
	for _, e := range back.SortedXforms() {
		if !want["xform:"+e.String()] {
			t.Errorf("unexpected xform %s", e)
		}
		delete(want, "xform:"+e.String())
	}
	for _, e := range back.SortedXfers() {
		if !want["xfer:"+e.String()] {
			t.Errorf("unexpected xfer %s", e)
		}
		delete(want, "xfer:"+e.String())
	}
	for k := range want {
		t.Errorf("missing event %s", k)
	}
	// Values decode correctly and bindings resolve.
	for _, e := range back.Xforms {
		for _, b := range e.Inputs {
			if _, err := b.Element(); err != nil {
				t.Errorf("binding %s: %v", b, err)
			}
		}
	}
	// The rebuilt trace supports the in-memory reference algorithm.
	g := trace.BuildGraph(back)
	if err := g.CheckAcyclic(); err != nil {
		t.Error(err)
	}
	if _, err := s.LoadTrace("nosuch"); err == nil {
		t.Error("missing run accepted")
	}
}

func TestVerifyCleanRun(t *testing.T) {
	s, _ := storeFig3(t)
	// Structural checks only.
	rep, err := s.Verify("run1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean run reported problems: %s", rep)
	}
	if rep.Events == 0 || rep.Xfers == 0 {
		t.Errorf("report counts = %+v", rep)
	}
	// With the definition: Prop. 1 checks too.
	wf := fig3Def()
	rep, err = s.Verify("run1", wf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("Prop. 1 verification failed on clean run: %s", rep)
	}
	if !strings.Contains(rep.String(), "OK") {
		t.Errorf("report rendering: %s", rep)
	}
	if _, err := s.Verify("nosuch", nil); err == nil {
		t.Error("missing run accepted")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	s, _ := storeFig3(t)
	// Corrupt one recorded input index: point it at a wrong fragment.
	if _, err := s.DB().Exec(
		`DELETE FROM xform_in WHERE run_id = 'run1' AND proc = 'P' AND port = 'X1' AND idx = ?`,
		MustIdxKey(value.Ix(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB().Exec(
		`INSERT INTO xform_in (run_id, event_id, pos, proc, port, idx, ctx, val_id) VALUES ('run1', 999, 0, 'P', 'X1', ?, 0, 0)`,
		MustIdxKey(value.Ix(2, 7))); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Verify("run1", fig3Def())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupted run verified clean")
	}
	// Corrupt a stored value payload: structural check must catch it.
	s2, _ := storeFig3(t)
	if _, err := s2.DB().Exec(`DELETE FROM vals WHERE run_id = 'run1' AND val_id = 0`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.DB().Exec(`INSERT INTO vals (run_id, val_id, payload) VALUES ('run1', 0, 'not-a-value')`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Verify("run1", nil); err == nil {
		t.Error("undecodable value accepted")
	}
}

// fig3Def rebuilds the fig3 workflow definition for verification.
func fig3Def() *workflow.Workflow {
	w := workflow.New("fig3")
	w.AddInput("v", 1).AddInput("w", 0).AddInput("c", 1)
	w.AddOutput("y", 2)
	w.AddProcessor("Q", "upper", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 0)})
	w.AddProcessor("R", "tolist", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 1)})
	w.AddProcessor("P", "combine",
		[]workflow.Port{workflow.In("X1", 0), workflow.In("X2", 1), workflow.In("X3", 0)},
		[]workflow.Port{workflow.Out("Y", 0)})
	w.Connect("", "v", "Q", "X")
	w.Connect("", "w", "R", "X")
	w.Connect("", "c", "P", "X2")
	w.Connect("Q", "Y", "P", "X1")
	w.Connect("R", "Y", "P", "X3")
	w.Connect("P", "Y", "", "y")
	return w
}

func TestForwardAccessors(t *testing.T) {
	s, _ := storeFig3(t)
	// Exact input match: Q consumed v[1] in one activation.
	evs, err := s.XformsByInput("run1", "Q", "X", value.Ix(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || len(evs[0].Outputs) != 1 {
		t.Fatalf("forward exact = %v", evs)
	}
	if !evs[0].Outputs[0].Index.Equal(value.Ix(1)) {
		t.Errorf("forward output index = %v", evs[0].Outputs[0].Index)
	}
	// Coarse query: all three activations.
	evs, err = s.XformsByInput("run1", "Q", "X", value.EmptyIndex)
	if err != nil || len(evs) != 3 {
		t.Fatalf("forward coarse = %d events, %v", len(evs), err)
	}
	// Finer than recorded: falls back to the coarse binding (P:X2 recorded
	// at [] only).
	evs, err = s.XformsByInput("run1", "P", "X2", value.Ix(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 6 {
		t.Fatalf("forward fallback = %d events, want all 6 activations", len(evs))
	}
	// Event deduplication: each event appears once even when several of its
	// inputs match.
	seen := map[int64]bool{}
	for _, ev := range evs {
		if seen[ev.EventID] {
			t.Errorf("event %d duplicated", ev.EventID)
		}
		seen[ev.EventID] = true
	}

	// XfersFrom: Q:Y feeds P:X1.
	xs, err := s.XfersFrom("run1", "Q", "Y")
	if err != nil || len(xs) != 1 || xs[0].To.Proc != "P" || xs[0].To.Port != "X1" {
		t.Fatalf("XfersFrom = %v, %v", xs, err)
	}
	// Nothing flows out of workflow outputs.
	xs, err = s.XfersFrom("run1", trace.WorkflowProc, "y")
	if err != nil || len(xs) != 0 {
		t.Errorf("XfersFrom(workflow:y) = %v, %v", xs, err)
	}
	// Bad index component.
	if _, err := s.XformsByInput("run1", "Q", "X", value.Index{-1}); err == nil {
		t.Error("negative index accepted")
	}
}

func TestDeleteRun(t *testing.T) {
	s, tr := storeFig3(t)
	removed, err := s.DeleteRun("run1")
	if err != nil {
		t.Fatal(err)
	}
	if removed != tr.NumRecords() {
		t.Errorf("removed %d records, want %d", removed, tr.NumRecords())
	}
	if runs, _ := s.ListRuns(); len(runs) != 0 {
		t.Errorf("runs after delete = %v", runs)
	}
	if total, _ := s.TotalRecords(""); total != 0 {
		t.Errorf("records after delete = %d", total)
	}
	if _, err := s.Value("run1", 0); err == nil {
		t.Error("values survived run deletion")
	}
	if _, err := s.DeleteRun("run1"); err == nil {
		t.Error("double delete accepted")
	}
}
