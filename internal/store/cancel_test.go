package store_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
)

// This file pins the cancellation semantics of the ingest pipeline: a
// cancelled context aborts the load with context.Canceled (a deadline with
// context.DeadlineExceeded), no worker goroutines are left behind, and the
// store stays fully usable afterwards. Run under -race these tests also
// exercise the cancel/drain paths of the worker pool for data races.

// replayTask builds an IngestTask that replays a recorded trace's events,
// calling hook (if non-nil) after each event.
func replayTask(tr *trace.Trace, hook func(n int)) store.IngestTask {
	return store.IngestTask{
		RunID:    tr.RunID,
		Workflow: tr.Workflow,
		Emit: func(c trace.Collector) error {
			n := 0
			for _, e := range tr.Xforms {
				if err := c.Xform(e); err != nil {
					return err
				}
				n++
				if hook != nil {
					hook(n)
				}
			}
			for _, e := range tr.Xfers {
				if err := c.Xfer(e); err != nil {
					return err
				}
				n++
				if hook != nil {
					hook(n)
				}
			}
			return nil
		},
	}
}

// waitNoLeaks polls until the goroutine count returns to the baseline, and
// dumps all stacks if it does not within the deadline.
func waitNoLeaks(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIngestCancelMidway cancels the context from inside one task's Emit
// while several workers are loading runs: Ingest must return
// context.Canceled, leak no goroutines, and leave the store usable —
// fully-acknowledged runs intact, new ingests accepted.
func TestIngestCancelMidway(t *testing.T) {
	traces := makeTraces(t)
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	tasks := make([]store.IngestTask, 0, len(traces))
	for i, tr := range traces {
		var hook func(int)
		if i == 1 {
			// Cancel partway through the second run's event stream, while
			// other workers are mid-flight on theirs.
			hook = func(n int) {
				if n == 3 {
					once.Do(cancel)
				}
			}
		}
		tasks = append(tasks, replayTask(tr, hook))
	}

	err = s.Ingest(ctx, tasks, store.IngestOptions{Parallelism: 4, BatchRows: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Ingest after mid-flight cancel = %v, want context.Canceled", err)
	}
	waitNoLeaks(t, baseline)

	// The store must remain fully usable: load the same traces under fresh
	// run IDs and query them back.
	retry := make([]store.IngestTask, 0, len(traces))
	for i, tr := range traces {
		task := replayTask(tr, nil)
		task.RunID = fmt.Sprintf("retry%03d", i)
		retry = append(retry, task)
	}
	if err := s.Ingest(context.Background(), retry, store.IngestOptions{Parallelism: 4}); err != nil {
		t.Fatalf("ingest after cancellation: %v", err)
	}
	for i := range traces {
		in, out, xf, err := s.RecordCounts(fmt.Sprintf("retry%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if in+out+xf == 0 {
			t.Fatalf("retry%03d stored no event rows after recovery from cancellation", i)
		}
	}
}

// TestIngestDeadlineExceeded runs an ingest under an already-expired
// deadline: the executor must refuse up front with DeadlineExceeded.
func TestIngestDeadlineExceeded(t *testing.T) {
	traces := makeTraces(t)
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err = s.IngestTraces(ctx, traces, store.IngestOptions{Parallelism: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("IngestTraces under expired deadline = %v, want context.DeadlineExceeded", err)
	}
	runs, err := s.ListRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("expired-deadline ingest registered runs %v, want none", runs)
	}
}

// TestIngestWorkerPanic confines a panicking Emit to its worker: Ingest
// returns an error carrying the panic, the pool shuts down without leaking
// goroutines, and the store accepts further work.
func TestIngestWorkerPanic(t *testing.T) {
	traces := makeTraces(t)
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	baseline := runtime.NumGoroutine()

	tasks := make([]store.IngestTask, 0, len(traces))
	for i, tr := range traces {
		if i == 2 {
			tasks = append(tasks, store.IngestTask{
				RunID:    tr.RunID,
				Workflow: tr.Workflow,
				Emit:     func(trace.Collector) error { panic("boom: injected task panic") },
			})
			continue
		}
		tasks = append(tasks, replayTask(tr, nil))
	}
	err = s.Ingest(context.Background(), tasks, store.IngestOptions{Parallelism: 4})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Ingest with panicking task = %v, want a panic-carrying error", err)
	}
	waitNoLeaks(t, baseline)

	task := replayTask(traces[2], nil)
	task.RunID = "after-panic"
	if err := s.Ingest(context.Background(), []store.IngestTask{task}, store.IngestOptions{}); err != nil {
		t.Fatalf("ingest after worker panic: %v", err)
	}
}

// TestBufferedWriterCancelledContext checks the writer-level contract: a
// writer cannot be created under a cancelled context, and a live writer
// whose context is cancelled rejects further events and its final flush
// with the context's error.
func TestBufferedWriterCancelledContext(t *testing.T) {
	traces := makeTraces(t)
	s, err := store.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	if _, err := s.NewBufferedRunWriter(dead, "w1", "wf", 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewBufferedRunWriter under cancelled ctx = %v, want context.Canceled", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w, err := s.NewBufferedRunWriter(ctx, "w2", traces[0].Workflow, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Xform(traces[0].Xforms[0]); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := w.Xform(traces[0].Xforms[1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Xform after cancel = %v, want context.Canceled", err)
	}
	if err := w.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close after cancel = %v, want context.Canceled", err)
	}
}
