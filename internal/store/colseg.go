package store

import (
	"path/filepath"
	"sort"

	"repro/internal/colstore"
	"repro/internal/obs"
	"repro/internal/value"
)

// This file maintains the store's columnar projection: one immutable
// colstore.Segment per checkpointed run, held beside the B-tree row store
// and answering multi-run probes with vectorized column scans instead of
// row-at-a-time index walks. The row store stays the source of truth —
// segments are built from it at Checkpoint time, invalidated the moment a
// writer touches their run, persisted (durable stores only) through the
// engine's VFS so fault injection covers them, and rebuilt on demand. Any
// run without a fresh segment simply falls back to the row-scan path, so
// the projection can never change an answer, only its cost.
//
// Locking: the in-memory cache (segs), the writer fence (openWriters,
// segGen), and every segment-file operation are all serialized under segMu.
// Keeping disk I/O inside the lock is what makes invalidation airtight — a
// reader can never observe a bumped generation while a stale file still
// lingers — and it is cheap: segment files are touched once per run per
// checkpoint (build) or per process (lazy load), never per probe.

// obs handles for the columnar path.
var (
	obsColSegsScanned = obs.C("colscan.segments_scanned")
	obsColRowsFilt    = obs.C("colscan.rows_filtered")
	obsColZonePrunes  = obs.C("colscan.zonemap_prunes")
	obsColFallbacks   = obs.C("colscan.fallbacks")
	obsColBuilds      = obs.C("colscan.builds")
	obsColPersistErrs = obs.C("colscan.persist_errors")
	obsColBuildNs     = obs.H("colscan.build_ns")
)

// ColumnScanner is the optional columnar fast path of a LineageQuerier. The
// multi-run executors type-assert for it; when absent (or when every run
// lands in the missing list) they use the batched row probes instead, with
// byte-identical results.
type ColumnScanner interface {
	// ColScanBindings answers the batched trace probe Q(P, X, p) from column
	// segments for every run that has a fresh one, returning those answers
	// grouped by run plus the runs that must fall back to row scans. The
	// per-run answers are exactly what InputBindingsBatch would produce.
	ColScanBindings(runIDs []string, proc, port string, idx value.Index) (byRun map[string][]Binding, missing []string, err error)
	// ColScanAvailable reports whether any column segments exist (in memory
	// or on disk), so an executor can decide the columnar path is worth
	// attempting without probing per run.
	ColScanAvailable() bool
}

var _ ColumnScanner = (*Store)(nil)

// initColSegs readies the columnar state for a freshly opened store; called
// once from Open, after the embedded engine handle is available.
func (s *Store) initColSegs() {
	s.segs = make(map[string]*colstore.Segment)
	s.openWriters = make(map[string]int)
	s.segGen = make(map[string]uint64)
	s.segEpoch = make(map[string]uint64)
	if dir := s.rdb.DurableDir(); dir != "" {
		s.segDisk = &colstore.DiskStore{FS: s.rdb.FS(), Dir: filepath.Join(dir, "colseg")}
	}
}

// beginRunWrite fences a run against the columnar projection before its
// first row is written: the in-memory segment is dropped, the on-disk one
// removed, and the run marked open so no builder installs a segment while
// rows are still arriving. Called before the runs-table insert, so any
// reader that can see the run's rows also sees the fence.
func (s *Store) beginRunWrite(runID string) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	s.openWriters[runID]++
	s.segGen[runID]++
	delete(s.segs, runID)
	delete(s.segEpoch, runID)
	s.removeSegFileLocked(runID)
}

// endRunWrite lifts the fence once a writer is done (or failed to start);
// the run becomes eligible for segment builds again at the next checkpoint.
func (s *Store) endRunWrite(runID string) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	if s.openWriters[runID]--; s.openWriters[runID] <= 0 {
		delete(s.openWriters, runID)
	}
}

// invalidateSegment drops a run's segment everywhere (after DeleteRun).
func (s *Store) invalidateSegment(runID string) {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	s.segGen[runID]++
	delete(s.segs, runID)
	delete(s.segEpoch, runID)
	s.removeSegFileLocked(runID)
}

func (s *Store) removeSegFileLocked(runID string) {
	if s.segDisk == nil {
		return
	}
	if err := s.segDisk.Remove(runID); err != nil {
		obsColPersistErrs.Add(1)
	}
}

// BuildColumnSegments brings the columnar projection up to date: every run
// that has no fresh segment and no writer in flight gets one built from the
// row store. On durable stores, newly built segments are also persisted
// under <wal dir>/colseg/ through the engine's VFS; persist failures are
// counted and swallowed (the in-memory segment still serves, and a later
// checkpoint retries). It returns the number of segments built. Reading the
// row store is the only failure that surfaces — on error, affected runs stay
// on the row-scan path.
func (s *Store) BuildColumnSegments() (int, error) {
	runs, err := s.ListRuns()
	if err != nil {
		return 0, err
	}
	built := 0
	for _, ri := range runs {
		runID := ri.RunID
		s.segMu.Lock()
		_, have := s.segs[runID]
		open := s.openWriters[runID] > 0
		gen := s.segGen[runID]
		if !have && !open && s.segDisk != nil {
			// A persisted segment from an earlier checkpoint (or previous
			// process) satisfies the run without a rebuild; a corrupt file
			// reads as absent and is replaced by the rebuild below.
			if seg, err := s.segDisk.Load(runID); err == nil && seg != nil {
				s.segs[runID] = seg
				s.segEpoch[runID] = s.rdb.Epoch()
				have = true
			}
		}
		s.segMu.Unlock()
		if have || open {
			continue
		}
		sp := obs.Start(obsColBuildNs)
		seg, err := s.buildSegment(runID)
		sp.End()
		if err != nil {
			return built, err
		}
		if !s.installSegment(runID, gen, seg, true) {
			continue // a writer reopened the run mid-build: discard
		}
		obsColBuilds.Add(1)
		built++
	}
	return built, nil
}

// installSegment publishes a built segment (persisting it when persist is
// set and the store is durable) unless the run was written to or deleted
// since gen was observed — the fence that keeps a stale segment from ever
// shadowing newer rows.
//
// The install also stamps the segment with the engine epoch current at
// install time (segEpoch). The stamp is what lets a pinned View at epoch E
// use a cached segment when segEpoch ≤ E: every row in the segment was
// committed at or before segEpoch (the build read finished before the
// stamp), and the segment is complete as of the stamp (any row of the run
// committed between the build read and the install would have bumped the
// generation through beginRunWrite, failing the check below). Because a run
// mutation always drops the cached segment, a segment still cached when the
// View probes is fresh-or-absent: fresh for every epoch from segEpoch to
// now, absent otherwise.
func (s *Store) installSegment(runID string, gen uint64, seg *colstore.Segment, persist bool) bool {
	s.segMu.Lock()
	defer s.segMu.Unlock()
	if s.segGen[runID] != gen || s.openWriters[runID] > 0 {
		return false
	}
	s.segs[runID] = seg
	s.segEpoch[runID] = s.rdb.Epoch()
	if persist && s.segDisk != nil {
		if err := s.segDisk.Write(seg); err != nil {
			obsColPersistErrs.Add(1)
		}
	}
	return true
}

// buildSegment projects one run's xform_in rows into a column segment. The
// rows are sorted by (event_id, pos) — the row store's insertion order —
// before the columnar build, so segment scan order reproduces the xin_ppi
// index scan order exactly.
func (s *Store) buildSegment(runID string) (*colstore.Segment, error) {
	rows, err := s.db.Query(
		`SELECT event_id, pos, proc, port, idx, ctx, val_id FROM xform_in WHERE run_id = ?`, runID)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	type buildRow struct {
		evt, pos int64
		row      colstore.Row
	}
	var brs []buildRow
	for rows.Next() {
		var br buildRow
		var ctx, valID int64
		if err := rows.Scan(&br.evt, &br.pos, &br.row.Proc, &br.row.Port, &br.row.Key, &ctx, &valID); err != nil {
			return nil, err
		}
		br.row.Ctx = int32(ctx)
		br.row.ValID = valID
		brs = append(brs, br)
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	sort.Slice(brs, func(i, j int) bool {
		if brs[i].evt != brs[j].evt {
			return brs[i].evt < brs[j].evt
		}
		return brs[i].pos < brs[j].pos
	})
	crows := make([]colstore.Row, len(brs))
	for i, br := range brs {
		crows[i] = br.row
	}
	return colstore.Build(runID, crows), nil
}

// segmentFor returns the run's fresh segment, lazily loading a persisted one
// on first touch; nil means the run must use the row-scan path.
func (s *Store) segmentFor(runID string) *colstore.Segment {
	s.segMu.RLock()
	seg := s.segs[runID]
	open := s.openWriters[runID] > 0
	disk := s.segDisk
	s.segMu.RUnlock()
	if seg != nil {
		return seg
	}
	if open || disk == nil {
		return nil
	}
	s.segMu.Lock()
	defer s.segMu.Unlock()
	if seg := s.segs[runID]; seg != nil { // raced with another loader
		return seg
	}
	if s.openWriters[runID] > 0 {
		return nil
	}
	loaded, err := s.segDisk.Load(runID)
	if err != nil || loaded == nil {
		return nil // absent, or corrupt: Checkpoint will rebuild it
	}
	s.segs[runID] = loaded
	s.segEpoch[runID] = s.rdb.Epoch()
	return loaded
}

// ColScanAvailable implements ColumnScanner: true when any segment is cached
// or the durable segment directory exists (a previous checkpoint persisted
// segments that segmentFor can lazily load).
func (s *Store) ColScanAvailable() bool {
	s.segMu.RLock()
	n := len(s.segs)
	disk := s.segDisk
	s.segMu.RUnlock()
	if n > 0 {
		return true
	}
	if disk == nil {
		return false
	}
	_, err := disk.FS.Stat(disk.Dir)
	return err == nil
}

// ColScanBindings implements ColumnScanner: the vectorized form of
// InputBindingsBatch. Each run with a fresh segment is answered by at most
// one tight pass over the segment's key column — zone-map filter first, then
// the prefix scan, then the granularity-fallback exact scans (§2.3/§2.4) at
// successively shorter prefixes while the answer is empty — appending into
// one scratch buffer reused across the whole chunk. Runs without a fresh
// segment are returned in missing for the caller to resolve through the row
// path. Per-run answers are byte-identical to InputBindingsBatch: same
// bindings, same order.
func (s *Store) ColScanBindings(runIDs []string, proc, port string, idx value.Index) (map[string][]Binding, []string, error) {
	return colScanBindings(s.segmentFor, runIDs, proc, port, idx)
}

// colScanBindings is the scan core shared by the live store and pinned
// Views; segFor decides which runs have a usable segment (and under what
// visibility rules — latest state for the store, the pinned epoch for a
// View).
func colScanBindings(segFor func(string) *colstore.Segment, runIDs []string, proc, port string, idx value.Index) (map[string][]Binding, []string, error) {
	key, err := IdxKey(idx)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string][]Binding, len(runIDs))
	var missing []string
	var scratch []colstore.Match
	var examined, scanned int64
	for _, runID := range runIDs {
		seg := segFor(runID)
		if seg == nil {
			missing = append(missing, runID)
			continue
		}
		scanned++
		if !seg.MayContainProc(proc) {
			// The zone map proves the run has no rows for proc at all, so
			// the granularity fallback would come up empty at every level:
			// the run's answer is simply empty.
			obsColZonePrunes.Add(1)
			out[runID] = nil
			continue
		}
		scratch = scratch[:0]
		var ex int
		scratch, ex = seg.ScanPrefix(proc, port, key, scratch)
		examined += int64(ex)
		for n := len(idx) - 1; n >= 0 && len(scratch) == 0; n-- {
			scratch, ex = seg.ScanExact(proc, port, MustIdxKey(idx.Truncate(n)), scratch)
			examined += int64(ex)
		}
		bs, err := bindingsFromMatches(runID, proc, port, scratch)
		if err != nil {
			return nil, nil, err
		}
		out[runID] = bs
	}
	obsColSegsScanned.Add(scanned)
	obsColRowsFilt.Add(examined)
	if len(missing) > 0 {
		obsColFallbacks.Add(int64(len(missing)))
	}
	return out, missing, nil
}

// bindingsFromMatches converts segment matches into Bindings, in match
// (= index scan) order; empty in, nil out, matching the row path.
func bindingsFromMatches(runID, proc, port string, ms []colstore.Match) ([]Binding, error) {
	if len(ms) == 0 {
		return nil, nil
	}
	out := make([]Binding, len(ms))
	for i, m := range ms {
		idx, err := ParseIdxKey(string(m.Key))
		if err != nil {
			return nil, err
		}
		out[i] = Binding{RunID: runID, Proc: proc, Port: port, Index: idx, Ctx: int(m.Ctx), ValID: m.ValID}
	}
	return out, nil
}
