package store

import (
	"database/sql"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/colstore"
	"repro/internal/sqlike"
	"repro/internal/trace"
	"repro/internal/value"
)

// A View is a snapshot-isolated read handle on a store: it pins the engine
// epoch current at View() time, and every query through it — single-run
// probes, batched probes, column scans, full trace loads — answers from
// exactly the data committed at or before that epoch, no matter how much
// concurrent ingest lands while the view is open. Views are what keep
// long-running reads (checkpointing a replica, a differential comparison, a
// follower catch-up) coherent under live TailIngest traffic.
//
// A View holds one engine transaction; database/sql serializes access to it,
// so a View is safe for concurrent use but probes through one View do not
// parallelize. Close it promptly — a pinned epoch holds the frozen tables it
// references alive.
type View struct {
	s     *Store
	tx    *sql.Tx
	epoch uint64

	mu     sync.Mutex
	stmts  map[*sql.Stmt]*sql.Stmt // store-prepared → tx-bound, built on demand
	runSet map[string]bool         // lazily built; immutable once built (the data is pinned)

	closed atomic.Bool
}

// runner is the execution seam between the live store and a pinned View:
// every read helper in this package executes through one. The Store itself
// runs statements on the connection pool (latest committed state); a View
// rebinds them to its snapshot transaction.
type runner interface {
	// stmt rebinds a store-prepared statement for this runner.
	stmt(st *sql.Stmt) *sql.Stmt
	// query runs an ad-hoc query.
	query(query string, args ...any) (*sql.Rows, error)
	// queryRow runs an ad-hoc single-row query.
	queryRow(query string, args ...any) *sql.Row
}

func (s *Store) stmt(st *sql.Stmt) *sql.Stmt { return st }
func (s *Store) query(query string, args ...any) (*sql.Rows, error) {
	return s.db.Query(query, args...)
}
func (s *Store) queryRow(query string, args ...any) *sql.Row {
	return s.db.QueryRow(query, args...)
}

// Epoch returns the latest committed engine epoch: the epoch a View opened
// now would pin.
func (s *Store) Epoch() uint64 { return s.rdb.Epoch() }

// View opens a snapshot-isolated read handle pinned at the latest committed
// epoch. The caller must Close it.
func (s *Store) View() (*View, error) {
	tx, err := s.db.Begin()
	if err != nil {
		return nil, fmt.Errorf("store: opening view: %w", err)
	}
	var epoch uint64
	if err := tx.QueryRow(sqlike.EpochQuery).Scan(&epoch); err != nil {
		tx.Rollback()
		return nil, fmt.Errorf("store: reading view epoch: %w", err)
	}
	return &View{s: s, tx: tx, epoch: epoch, stmts: make(map[*sql.Stmt]*sql.Stmt)}, nil
}

// Epoch returns the epoch this view is pinned at.
func (v *View) Epoch() uint64 { return v.epoch }

// Close releases the view's transaction (idempotent).
func (v *View) Close() error {
	if v.closed.Swap(true) {
		return nil
	}
	return v.tx.Rollback()
}

func (v *View) stmt(st *sql.Stmt) *sql.Stmt {
	v.mu.Lock()
	defer v.mu.Unlock()
	if ts, ok := v.stmts[st]; ok {
		return ts
	}
	ts := v.tx.Stmt(st)
	v.stmts[st] = ts
	return ts
}

func (v *View) query(query string, args ...any) (*sql.Rows, error) {
	return v.tx.Query(query, args...)
}

func (v *View) queryRow(query string, args ...any) *sql.Row {
	return v.tx.QueryRow(query, args...)
}

// The read surface, mirroring Store's: every method answers at the pinned
// epoch. *View satisfies the same read interfaces as *Store.
var (
	_ LineageQuerier = (*View)(nil)
	_ TraceQuerier   = (*View)(nil)
	_ ColumnScanner  = (*View)(nil)
)

// XformsByOutput is Store.XformsByOutput at the pinned epoch.
func (v *View) XformsByOutput(runID, proc, port string, idx value.Index) ([]Xform, error) {
	return v.s.xformsByOutputOn(v, runID, proc, port, idx)
}

// XformsByInput is Store.XformsByInput at the pinned epoch.
func (v *View) XformsByInput(runID, proc, port string, idx value.Index) ([]ForwardXform, error) {
	return v.s.xformsByInputOn(v, runID, proc, port, idx)
}

// XfersTo is Store.XfersTo at the pinned epoch.
func (v *View) XfersTo(runID, proc, port string) ([]Xfer, error) {
	return v.s.xfersToOn(v, runID, proc, port)
}

// XfersFrom is Store.XfersFrom at the pinned epoch.
func (v *View) XfersFrom(runID, proc, port string) ([]Xfer, error) {
	return v.s.xfersFromOn(v, runID, proc, port)
}

// InputBindings is Store.InputBindings at the pinned epoch.
func (v *View) InputBindings(runID, proc, port string, idx value.Index) ([]Binding, error) {
	return v.s.inputBindingsOn(v, runID, proc, port, idx)
}

// InputBindingsBatch is Store.InputBindingsBatch at the pinned epoch.
func (v *View) InputBindingsBatch(runIDs []string, proc, port string, idx value.Index) (map[string][]Binding, error) {
	return v.s.inputBindingsBatchOn(v, runIDs, proc, port, idx)
}

// Value is Store.Value at the pinned epoch.
func (v *View) Value(runID string, valID int64) (value.Value, error) {
	return v.s.valueOn(v, runID, valID)
}

// ValuesBatch is Store.ValuesBatch at the pinned epoch.
func (v *View) ValuesBatch(refs []ValueRef) (map[ValueRef]value.Value, error) {
	return v.s.valuesBatchOn(v, refs)
}

// HasRun reports whether the pinned epoch holds the given run. The run set
// is built once per view (the pinned data cannot change), so multi-run
// validation costs one map lookup per run.
func (v *View) HasRun(runID string) (bool, error) {
	v.mu.Lock()
	set := v.runSet
	v.mu.Unlock()
	if set == nil {
		runs, err := v.ListRuns()
		if err != nil {
			return false, err
		}
		set = make(map[string]bool, len(runs))
		for _, ri := range runs {
			set[ri.RunID] = true
		}
		v.mu.Lock()
		v.runSet = set
		v.mu.Unlock()
	}
	return set[runID], nil
}

// ListRuns is Store.ListRuns at the pinned epoch.
func (v *View) ListRuns() ([]RunInfo, error) { return v.s.listRunsOn(v) }

// RecordCounts is Store.RecordCounts at the pinned epoch.
func (v *View) RecordCounts(runID string) (xformIn, xformOut, xfers int, err error) {
	return v.s.recordCountsOn(v, runID)
}

// LoadTrace is Store.LoadTrace at the pinned epoch: the trace as of the
// view's epoch, even while later events for the same run are streaming in.
func (v *View) LoadTrace(runID string) (*trace.Trace, error) {
	return v.s.loadTraceOn(v, runID)
}

// pinnedSegment returns the run's column segment only when it is provably
// usable at the pinned epoch: cached, and installed at an epoch the view
// covers (see colseg.go's fencing notes). Unlike Store.segmentFor it never
// lazily loads from disk — a segment loaded now would carry the current
// epoch, which a pinned view cannot use.
func (v *View) pinnedSegment(runID string) *colstore.Segment {
	v.s.segMu.RLock()
	defer v.s.segMu.RUnlock()
	seg := v.s.segs[runID]
	if seg == nil || v.s.segEpoch[runID] > v.epoch {
		return nil
	}
	return seg
}

// ColScanAvailable implements ColumnScanner for the pinned view: true when
// any cached segment is usable at the view's epoch.
func (v *View) ColScanAvailable() bool {
	v.s.segMu.RLock()
	defer v.s.segMu.RUnlock()
	for runID, e := range v.s.segEpoch {
		if _, ok := v.s.segs[runID]; ok && e <= v.epoch {
			return true
		}
	}
	return false
}

// ColScanBindings implements ColumnScanner at the pinned epoch: runs whose
// segment is not usable at the view's epoch land in missing and resolve
// through the view's row path, so answers never leak past the pin.
func (v *View) ColScanBindings(runIDs []string, proc, port string, idx value.Index) (map[string][]Binding, []string, error) {
	return colScanBindings(v.pinnedSegment, runIDs, proc, port, idx)
}
