package bench

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
)

// GenerateTestbedTraces executes Testbed(l) `runs` times with input list
// size d and returns the recorded traces without storing them — the input
// of the ingest-throughput experiment, pre-generated so the measurement
// covers ingestion only, not workflow execution.
func GenerateTestbedTraces(l, d, runs int) ([]*trace.Trace, error) {
	wf := gen.Testbed(l)
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)
	traces := make([]*trace.Trace, 0, runs)
	for r := 0; r < runs; r++ {
		_, tr, err := eng.RunTrace(wf, fmt.Sprintf("run%03d", r), gen.TestbedInputs(d))
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

// ingestMode is one measured configuration of the ingest experiment.
type ingestMode struct {
	label string
	load  func(*store.Store, []*trace.Trace) error
}

// Ingest measures bulk trace-ingest throughput on the Fig. 5 testbed
// workload (l=75, d=50, 8 runs; reduced in quick mode): the same
// pre-generated traces loaded per-row, through buffered batch writers, and
// through the concurrent ingest executor. Rows/sec counts the Table 1
// event records (xform_in + xform_out + xfer); every mode stores an
// identical database, checked via record counts after each load.
func Ingest(o Options) (*Report, error) {
	l, d, runs := 75, 50, 8
	if o.Quick {
		l, d, runs = 10, 10, 3
	}
	traces, err := GenerateTestbedTraces(l, d, runs)
	if err != nil {
		return nil, err
	}

	ctx := o.ctx()
	modes := []ingestMode{
		{"per-row", func(s *store.Store, ts []*trace.Trace) error {
			for _, tr := range ts {
				if err := s.StoreTrace(tr); err != nil {
					return err
				}
			}
			return nil
		}},
		{"batched P=1", func(s *store.Store, ts []*trace.Trace) error {
			return s.IngestTraces(ctx, ts, store.IngestOptions{Parallelism: 1})
		}},
		{"batched P=4", func(s *store.Store, ts []*trace.Trace) error {
			return s.IngestTraces(ctx, ts, store.IngestOptions{Parallelism: 4})
		}},
	}

	rep := &Report{
		ID:    "ingest",
		Title: "Bulk trace-ingest throughput: per-row vs. batched vs. batched+parallel",
		Caption: fmt.Sprintf("Testbed l=%d, d=%d, %d runs, pre-generated traces; batch = %d rows.\n"+
			"rows = Table 1 event records stored; every mode loads an identical\n"+
			"database. speedup is rows/sec over the per-row baseline. flushes and\n"+
			"flush_ms come from the store's obs counters (per rep / per flush).",
			l, d, runs, store.DefaultBatchRows),
		Columns: []string{"mode", "runs", "rows", "elapsed_ms", "rows_per_sec", "speedup",
			"flushes", "flush_ms"},
	}

	var wantRows, baselineRate int
	reps := o.queries()
	if reps > 3 {
		reps = 3 // ingest runs are long; best-of-3 is enough
	}
	for _, m := range modes {
		var best time.Duration
		var rows int
		s0 := obs.Default.Snapshot()
		for rep := 0; rep < reps; rep++ {
			st, err := store.OpenMemory()
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := m.load(st, traces); err != nil {
				st.Close()
				return nil, err
			}
			elapsed := time.Since(start)
			rows, err = st.TotalRecords("")
			st.Close()
			if err != nil {
				return nil, err
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		if wantRows == 0 {
			wantRows = rows
		} else if rows != wantRows {
			return nil, fmt.Errorf("bench: ingest mode %q stored %d rows, baseline stored %d", m.label, rows, wantRows)
		}
		// Counter-derived flush stats across the reps of this mode: number of
		// buffered-writer flushes per rep and mean wall time per flush.
		dm := obs.Default.Snapshot().Sub(s0)
		flushes := dm.Counter("store.ingest.batches")
		rate := int(float64(rows) / best.Seconds())
		if baselineRate == 0 {
			baselineRate = rate
		}
		rep.Rows = append(rep.Rows, []string{
			m.label, fmt.Sprint(runs), fmt.Sprint(rows), ms(best),
			fmt.Sprint(rate),
			fmt.Sprintf("%.2fx", float64(rate)/float64(baselineRate)),
			fmt.Sprint(flushes / int64(reps)),
			msNs(dm.HistSum("store.ingest.flush_ns"), flushes),
		})
	}
	return rep, nil
}
