package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

var quick = Options{Quick: true, Queries: 2}

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:      "x",
		Title:   "demo",
		Caption: "line1\nline2",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := r.String()
	if !strings.Contains(s, "== x: demo ==") || !strings.Contains(s, "line2") {
		t.Errorf("String = %q", s)
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestBestOf(t *testing.T) {
	calls := 0
	d, err := bestOf(3, func() error { calls++; time.Sleep(time.Microsecond); return nil })
	if err != nil || calls != 3 || d <= 0 {
		t.Errorf("bestOf = %v, calls %d, err %v", d, calls, err)
	}
}

func TestTable1Quick(t *testing.T) {
	rep, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[2] != row[3] {
			t.Errorf("measured %s != predicted %s for d=%s l=%s", row[2], row[3], row[0], row[1])
		}
	}
	// The (10,10) configuration lines up with the paper's order of magnitude.
	if rep.Rows[0][4] != "626" {
		t.Errorf("paper reference = %s", rep.Rows[0][4])
	}
	measured, _ := strconv.Atoi(rep.Rows[0][2])
	if measured < 300 || measured > 1500 {
		t.Errorf("measured (10,10) = %d, expected same order as paper's 626", measured)
	}
}

func TestFig4Quick(t *testing.T) {
	rep, err := Fig4(quick)
	if err != nil {
		t.Fatal(err)
	}
	// 4 query configs x 3 run counts.
	if len(rep.Rows) != 12 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// t1 is constant per config while runs grow.
	if rep.Rows[0][2] != rep.Rows[1][2] {
		t.Errorf("t1 varies across run counts: %v vs %v", rep.Rows[0], rep.Rows[1])
	}
}

func TestFig6Quick(t *testing.T) {
	rep, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Records strictly accumulate.
	prev := 0
	for _, row := range rep.Rows {
		n, _ := strconv.Atoi(row[1])
		if n <= prev {
			t.Errorf("records did not grow: %v", rep.Rows)
		}
		prev = n
	}
}

func TestFig7Quick(t *testing.T) {
	rep, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig8Quick(t *testing.T) {
	rep, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Graph nodes follow 2l+2.
	if rep.Rows[0][1] != "12" {
		t.Errorf("nodes for l=5 = %s, want 12", rep.Rows[0][1])
	}
}

func TestFig9Quick(t *testing.T) {
	rep, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFig10Quick(t *testing.T) {
	rep, err := Fig10(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Focus sizes do not shrink along the sweep.
	prev := 0
	for _, row := range rep.Rows {
		k, _ := strconv.Atoi(row[0])
		if k < prev {
			t.Errorf("focus sizes shrink: %v", rep.Rows)
		}
		prev = k
	}
}

func TestFig4ColQuick(t *testing.T) {
	rep, err := Fig4Col(quick)
	if err != nil {
		t.Fatal(err)
	}
	// 2 queries x 2 topologies x 2 modes; Fig4Col itself fails if the
	// colscan answer diverges from the row path.
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d: %v", len(rep.Rows), rep.Rows)
	}
	for _, row := range rep.Rows {
		segs, falls := row[7], row[10]
		switch row[4] {
		case "rows":
			if segs != "0" {
				t.Errorf("row path scanned %s segments: %v", segs, row)
			}
		case "colscan":
			if segs == "0" {
				t.Errorf("colscan scanned no segments: %v", row)
			}
			if falls != "0" {
				t.Errorf("colscan fell back on %s runs after a checkpoint: %v", falls, row)
			}
		default:
			t.Errorf("unexpected mode %q", row[4])
		}
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	reps, err := All(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 14 {
		t.Fatalf("reports = %d", len(reps))
	}
	ids := []string{"fig4", "fig4par", "fig4shard", "fig4col", "table1", "fig6", "fig7", "fig8", "fig9", "fig10", "ingest", "serve", "failover", "stream"}
	for i, rep := range reps {
		if rep.ID != ids[i] {
			t.Errorf("report %d = %s, want %s", i, rep.ID, ids[i])
		}
		if len(rep.Rows) == 0 {
			t.Errorf("report %s is empty", rep.ID)
		}
	}
}

func TestIngestQuick(t *testing.T) {
	rep, err := Ingest(quick)
	if err != nil {
		t.Fatal(err)
	}
	// per-row, batched P=1, batched P=4.
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Every mode stores the same number of records, and the baseline's
	// speedup column is exactly 1.00x.
	for _, row := range rep.Rows {
		if row[2] != rep.Rows[0][2] {
			t.Errorf("record counts differ across modes: %v", rep.Rows)
		}
	}
	if rep.Rows[0][5] != "1.00x" {
		t.Errorf("baseline speedup = %s, want 1.00x", rep.Rows[0][5])
	}
}

func TestGenerateTestbedTraces(t *testing.T) {
	traces, err := GenerateTestbedTraces(5, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("traces = %d", len(traces))
	}
	for i, tr := range traces {
		if tr.RunID == "" || len(tr.Xforms) == 0 || len(tr.Xfers) == 0 {
			t.Errorf("trace %d is empty: %+v", i, tr.RunID)
		}
	}
}

// TestFigServeQuick smoke-runs the serving benchmark: one row per
// (shards, offered load) cell, every row with completed requests and
// ordered quantiles.
func TestFigServeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("drives open-loop HTTP load for seconds")
	}
	rep, err := FigServe(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 { // {1,4} shards x 3 offered loads
		t.Fatalf("rows = %d, want 6", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		ok, _ := strconv.Atoi(row[3])
		if ok == 0 {
			t.Errorf("cell %v completed no requests", row)
		}
		p50, _ := strconv.ParseFloat(row[8], 64)
		p999, _ := strconv.ParseFloat(row[10], 64)
		if p50 <= 0 || p999 < p50 {
			t.Errorf("cell %v has inconsistent quantiles", row)
		}
	}
}

func TestFailoverQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timed availability windows")
	}
	rep, err := Failover(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 { // {1,2} replicas x {healthy,kill}
		t.Fatalf("rows = %d, want 4", len(rep.Rows))
	}
	cell := func(replicas, phase string) []string {
		for _, row := range rep.Rows {
			if row[0] == replicas && row[1] == phase {
				return row
			}
		}
		t.Fatalf("no cell for r=%s phase=%s in %v", replicas, phase, rep.Rows)
		return nil
	}
	for _, r := range []string{"1", "2"} {
		avail, _ := strconv.ParseFloat(cell(r, "healthy")[5], 64)
		if avail < 99 {
			t.Errorf("healthy availability at r=%s is %.1f%%, want >= 99%%", r, avail)
		}
	}
	// The acceptance contract: the unreplicated store loses every query in
	// the kill window; the replicated one keeps answering through failover.
	if avail, _ := strconv.ParseFloat(cell("1", "kill")[5], 64); avail != 0 {
		t.Errorf("kill-window availability at r=1 is %.1f%%, want 0%%", avail)
	}
	killR2 := cell("2", "kill")
	if avail, _ := strconv.ParseFloat(killR2[5], 64); avail < 99 {
		t.Errorf("kill-window availability at r=2 is %.1f%%, want >= 99%%", avail)
	}
	if failovers, _ := strconv.Atoi(killR2[8]); failovers == 0 {
		t.Errorf("kill window at r=2 recorded no failovers: %v", killR2)
	}
}

func TestStreamQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timed ingest windows")
	}
	rep, err := Stream(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 { // {row,colscan} x {idle,tail-ingest}
		t.Fatalf("rows = %d, want 4", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		n, _ := strconv.Atoi(row[2])
		if n == 0 {
			t.Errorf("cell %s/%s completed no queries", row[0], row[1])
		}
		applied, _ := strconv.Atoi(row[6])
		if row[1] == "tail-ingest" && applied == 0 {
			t.Errorf("cell %s/%s streamed no events", row[0], row[1])
		}
		if row[1] == "idle" && applied != 0 {
			t.Errorf("idle cell %s recorded ingest: %v", row[0], row)
		}
	}
}
