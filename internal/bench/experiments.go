package bench

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Fig4 regenerates Figure 4: response times of focused and fully unfocused
// INDEXPROJ queries over the GK and PD workflows, as the query scope grows
// from one run to many. The defining shape: the specification-graph
// traversal (s1/t1) is shared across runs, so total time grows with t2 only;
// unfocused PD has a much larger t2 and grows proportionally faster.
func Fig4(o Options) (*Report, error) {
	runCounts := o.grid([]int{1, 2, 5, 10, 20}, []int{1, 2, 3})
	env, err := PopulateGKPD(runCounts[len(runCounts)-1])
	if err != nil {
		return nil, err
	}
	defer env.Close()

	type queryCfg struct {
		label string
		wf    *workflow.Workflow
		runs  []string
		port  string
		idx   value.Index
		focus lineage.Focus
	}
	cfgs := []queryCfg{
		{"GK focused", env.GK, env.GKRuns, "paths_per_gene", value.Ix(0, 0),
			lineage.NewFocus("get_pathways_by_genes")},
		{"GK unfocused", env.GK, env.GKRuns, "paths_per_gene", value.Ix(0, 0), AllProcs(env.GK)},
		{"PD focused", env.PD, env.PDRuns, "discovered_proteins", value.Ix(0),
			lineage.NewFocus("fetch_abstract")},
		{"PD unfocused", env.PD, env.PDRuns, "discovered_proteins", value.Ix(0), AllProcs(env.PD)},
	}

	rep := &Report{
		ID:    "fig4",
		Title: "Query response time for focused/unfocused queries ranging over multiple runs",
		Caption: "INDEXPROJ, GK and PD reconstructions. t1 = spec-graph traversal (shared\n" +
			"across runs), t2 = per-run trace queries. Paper shape: totals grow with t2\n" +
			"only; unfocused PD grows fastest (its t2 is ~10x focused). ctr_* columns\n" +
			"and probes come from the engine's obs counters (per measured query).",
		Columns: []string{"query", "runs", "t1_ms", "t2_ms", "total_ms", "probes", "ctr_t1_ms", "ctr_t2_ms"},
	}
	for _, cfg := range cfgs {
		// t1: fresh evaluator + compile, best-of-N. The obs snapshot delta
		// around the loop yields the counter-derived per-compile plan time
		// (every repetition is a cache miss on a fresh evaluator).
		s0 := obs.Default.Snapshot()
		t1, err := bestOf(o.queries(), func() error {
			ip, err := lineage.NewIndexProj(env.Store, cfg.wf)
			if err != nil {
				return err
			}
			_, err = ip.Compile(trace.WorkflowProc, cfg.port, cfg.idx, cfg.focus)
			return err
		})
		if err != nil {
			return nil, err
		}
		d1 := obs.Default.Snapshot().Sub(s0)
		ctrT1 := msNs(d1.HistSum("lineage.indexproj.plan_ns"), d1.Counter("lineage.indexproj.plan_cache_misses"))
		ip, err := lineage.NewIndexProj(env.Store, cfg.wf)
		if err != nil {
			return nil, err
		}
		plan, err := ip.Compile(trace.WorkflowProc, cfg.port, cfg.idx, cfg.focus)
		if err != nil {
			return nil, err
		}
		for _, n := range runCounts {
			runs := cfg.runs[:n]
			q0 := obs.Default.Snapshot()
			t2, err := bestOf(o.queries(), func() error {
				for _, r := range runs {
					if _, err := ip.Execute(plan, r); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			dq := obs.Default.Snapshot().Sub(q0)
			reps := int64(o.queries())
			rep.Rows = append(rep.Rows, []string{
				cfg.label, fmt.Sprint(n), ms(t1), ms(t2), ms(t1 + t2),
				fmt.Sprint(dq.Counter("store.probes") / reps),
				ctrT1,
				msNs(dq.HistSum("lineage.indexproj.probe_ns"), reps),
			})
		}
	}
	return rep, nil
}

// Fig4Parallel extends Fig. 4 beyond the paper: the probe phase t2 of a
// multi-run query executed by the parallel multi-run executor with batched
// store probes, against the sequential per-run baseline. The paper's Fig. 4
// grows linearly with the number of runs because runs are probed one after
// another; runs are independent by construction, so the executor batches
// the probes (one index-range scan per (P, X, p) per batch of runs) and
// fans the batches out over a worker pool.
func Fig4Parallel(o Options) (*Report, error) {
	runs := 20
	if o.Quick {
		runs = 4
	}
	env, err := PopulateGKPD(runs)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	type queryCfg struct {
		label string
		wf    *workflow.Workflow
		runs  []string
		port  string
		idx   value.Index
		focus lineage.Focus
	}
	cfgs := []queryCfg{
		{"GK focused", env.GK, env.GKRuns, "paths_per_gene", value.Ix(0, 0),
			lineage.NewFocus("get_pathways_by_genes")},
		{"GK unfocused", env.GK, env.GKRuns, "paths_per_gene", value.Ix(0, 0), AllProcs(env.GK)},
		{"PD focused", env.PD, env.PDRuns, "discovered_proteins", value.Ix(0),
			lineage.NewFocus("fetch_abstract")},
		{"PD unfocused", env.PD, env.PDRuns, "discovered_proteins", value.Ix(0), AllProcs(env.PD)},
	}

	rep := &Report{
		ID:    "fig4par",
		Title: "Parallel multi-run query execution vs. the sequential per-run baseline",
		Caption: fmt.Sprintf("Fig. 4 workload, %d runs. t2 = probe phase only (shared plan, compiled\n"+
			"once). sequential = one probe round-trip per run per plan probe; parallel\n"+
			"P=n = n workers over run batches, one batched index-range scan per probe\n"+
			"per batch. queries = store round-trips per execution.", runs),
		Columns: []string{"query", "runs", "mode", "t2_ms", "queries", "speedup"},
	}
	for _, cfg := range cfgs {
		ip, err := lineage.NewIndexProj(env.Store, cfg.wf)
		if err != nil {
			return nil, err
		}
		plan, err := ip.Compile(trace.WorkflowProc, cfg.port, cfg.idx, cfg.focus)
		if err != nil {
			return nil, err
		}
		seqOpt := lineage.MultiRunOptions{Parallelism: 1, BatchSize: 1}
		var baseline *lineage.Result
		seqT, err := bestOfScaled(o.queries(), func() error {
			baseline, err = ip.ExecuteMultiRun(o.ctx(), plan, cfg.runs, seqOpt)
			return err
		})
		if err != nil {
			return nil, err
		}
		addRow := func(mode string, opt lineage.MultiRunOptions, t time.Duration) error {
			store.ResetQueryCount()
			got, err := ip.ExecuteMultiRun(o.ctx(), plan, cfg.runs, opt)
			if err != nil {
				return err
			}
			if !got.Equal(baseline) {
				return fmt.Errorf("bench: %s %s diverged from the sequential baseline", cfg.label, mode)
			}
			rep.Rows = append(rep.Rows, []string{
				cfg.label, fmt.Sprint(len(cfg.runs)), mode, ms(t),
				fmt.Sprint(store.QueryCount()),
				fmt.Sprintf("%.2fx", float64(seqT)/float64(t)),
			})
			return nil
		}
		if err := addRow("sequential", seqOpt, seqT); err != nil {
			return nil, err
		}
		for _, p := range []int{1, 2, 4, 8} {
			opt := lineage.MultiRunOptions{Parallelism: p}
			t, err := bestOfScaled(o.queries(), func() error {
				_, err := ip.ExecuteMultiRun(o.ctx(), plan, cfg.runs, opt)
				return err
			})
			if err != nil {
				return nil, err
			}
			if err := addRow(fmt.Sprintf("parallel P=%d", p), opt, t); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// paperTable1 holds the record counts reported in Table 1 of the paper, by
// [d][l] over the grids below; used for side-by-side comparison.
var paperTable1 = map[int]map[int]int{
	10: {10: 626, 28: 1346, 50: 2226, 75: 3226, 100: 4226, 150: 6226},
	25: {10: 2306, 28: 4106, 50: 6306, 75: 8806, 100: 11306, 150: 16306},
	50: {10: 7106, 28: 11000, 50: 15106, 75: 20106, 100: 25106, 150: 35106},
	75: {10: 14406, 28: 15479, 50: 26406, 75: 33906, 100: 41406, 150: 49561},
}

// Table1 regenerates Table 1: the number of trace-database records for one
// run of each testbed configuration. Our counts follow the closed form
// gen.TestbedRecords (validated against the store), and share the paper's
// structure: linear growth in l·d plus a d² term from the final product.
func Table1(o Options) (*Report, error) {
	ls := o.grid([]int{10, 28, 50, 75, 100, 150}, []int{10, 28})
	ds := o.grid([]int{10, 25, 50, 75}, []int{10, 25})
	rep := &Report{
		ID:    "table1",
		Title: "Number of trace database records for one run and one test dataflow",
		Caption: "measured = rows stored (xform_in + xform_out + xfer); predicted = closed\n" +
			"form (2l+4) + 2 + 4ld + 3d^2; paper = value reported in Table 1.",
		Columns: []string{"d", "l", "measured", "predicted", "paper"},
	}
	for _, d := range ds {
		for _, l := range ls {
			env, err := PopulateTestbed(l, d, 1)
			if err != nil {
				return nil, err
			}
			got, err := env.Store.TotalRecords(env.RunIDs[0])
			env.Close()
			if err != nil {
				return nil, err
			}
			paper := "-"
			if row, ok := paperTable1[d]; ok {
				if v, ok := row[l]; ok {
					paper = fmt.Sprint(v)
				}
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(d), fmt.Sprint(l),
				fmt.Sprint(got), fmt.Sprint(gen.TestbedRecords(l, d)), paper,
			})
		}
	}
	return rep, nil
}

// Fig6 regenerates Figure 6: NI single-run query response time as traces
// accumulate in the database (l=75, d=50, 1..10 runs; roughly 15k -> 150k
// records). Paper shape: a modest increase (~20%) despite a 10-fold record
// growth, because every access path is index-backed.
func Fig6(o Options) (*Report, error) {
	l, d, maxRuns := 75, 50, 10
	if o.Quick {
		l, d, maxRuns = 10, 10, 3
	}
	env, err := PopulateTestbed(l, d, 1)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)

	rep := &Report{
		ID:    "fig6",
		Title: "Lineage query response times for NI for varying trace size",
		Caption: fmt.Sprintf("l=%d, d=%d; the same single-run query measured as runs accumulate.\n"+
			"Paper shape: ~20%% increase across a 10-fold record growth.", l, d),
		Columns: []string{"runs_stored", "records_total", "NI_ms"},
	}
	focus := FocusedSet()
	for n := 1; n <= maxRuns; n++ {
		if n > 1 {
			runID := fmt.Sprintf("run%03d", n-1)
			w, err := env.Store.NewRunWriter(runID, env.WF.Name)
			if err != nil {
				return nil, err
			}
			if _, err := eng.Run(env.WF, gen.TestbedInputs(d), w); err != nil {
				w.Close()
				return nil, err
			}
			w.Close()
		}
		total, err := env.Store.TotalRecords("")
		if err != nil {
			return nil, err
		}
		el, err := bestOf(o.queries(), func() error { return env.NaiveQuery("run000", focus) })
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{fmt.Sprint(n), fmt.Sprint(total), ms(el)})
	}
	return rep, nil
}

// Fig7 regenerates Figure 7: NI query response time as the input list size d
// varies, for several chain lengths l. Paper shape: modest growth in d — d
// inflates the trace, not the number of traversal steps.
func Fig7(o Options) (*Report, error) {
	ls := o.grid([]int{10, 75, 150}, []int{5, 10})
	ds := o.grid([]int{10, 25, 50, 75}, []int{5, 10})
	rep := &Report{
		ID:      "fig7",
		Title:   "Lineage query response times for NI for varying input list size",
		Caption: "focused query, single run; series = chain length l.",
		Columns: []string{"l", "d", "NI_ms"},
	}
	for _, l := range ls {
		for _, d := range ds {
			env, err := PopulateTestbed(l, d, 1)
			if err != nil {
				return nil, err
			}
			focus := FocusedSet()
			el, err := bestOf(o.queries(), func() error { return env.NaiveQuery(env.RunIDs[0], focus) })
			env.Close()
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, []string{fmt.Sprint(l), fmt.Sprint(d), ms(el)})
		}
	}
	return rep, nil
}

// Fig8 regenerates Figure 8: INDEXPROJ pre-processing time t1 (Alg. 1 depth
// propagation plus the spec-graph traversal of Alg. 2) against the workflow
// size. Paper shape: grows with the graph, staying small (< 1 s at 100
// nodes on 2009 hardware; far below that here).
func Fig8(o Options) (*Report, error) {
	ls := o.grid([]int{10, 25, 50, 75, 100, 150, 200}, []int{5, 10, 20})
	rep := &Report{
		ID:      "fig8",
		Title:   "Pre-processing times vs. l",
		Caption: "t1: fresh PROPAGATEDEPTHS + INDEXPROJ plan compilation (no trace access).",
		Columns: []string{"l", "graph_nodes", "t1_ms"},
	}
	for _, l := range ls {
		wf := gen.Testbed(l)
		focus := FocusedSet()
		el, err := bestOf(o.queries(), func() error {
			ip, err := lineage.NewIndexProj(nil, wf)
			if err != nil {
				return err
			}
			_, err = ip.Compile(gen.FinalName, "product", value.Ix(0, 0), focus)
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{fmt.Sprint(l), fmt.Sprint(wf.NumNodes()), ms(el)})
	}
	return rep, nil
}

// Fig9 regenerates Figure 9: lineage query response time across strategies
// as a function of l, for small and large d. Paper shape: NI grows linearly
// with l; INDEXPROJ-focused stays flat ("constantly low"); INDEXPROJ
// unfocused approaches NI; and the two d panels look alike.
func Fig9(o Options) (*Report, error) {
	ls := o.grid([]int{10, 28, 50, 75, 100, 150}, []int{5, 10})
	ds := o.grid([]int{10, 150}, []int{5, 15})
	rep := &Report{
		ID:    "fig9",
		Title: "Lineage query response time across strategies as a function of l",
		Caption: "strategies: NI, INDEXPROJ focused ({LISTGEN_1}), INDEXPROJ unfocused (all).\n" +
			"Stage columns come from engine obs counters, per measured query: NI splits\n" +
			"into traversal vs value materialization; INDEXPROJ into plan (t1, per\n" +
			"compile) vs probes (t2).",
		Columns: []string{"d", "l", "NI_ms", "IndexProj_focused_ms", "IndexProj_unfocused_ms",
			"NI_traverse_ms", "NI_probe_ms", "IPf_t1_ms", "IPf_t2_ms", "IPu_t1_ms", "IPu_t2_ms"},
	}
	for _, d := range ds {
		for _, l := range ls {
			env, err := PopulateTestbed(l, d, 1)
			if err != nil {
				return nil, err
			}
			row, err := fig9Row(o, env, d, l)
			env.Close()
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

func fig9Row(o Options, env *TestbedEnv, d, l int) ([]string, error) {
	runID := env.RunIDs[0]
	reps := int64(o.queries())

	s0 := obs.Default.Snapshot()
	niT, err := bestOf(o.queries(), func() error { return env.NaiveQuery(runID, FocusedSet()) })
	if err != nil {
		return nil, err
	}
	dNI := obs.Default.Snapshot().Sub(s0)

	ip, err := lineage.NewIndexProj(env.Store, env.WF)
	if err != nil {
		return nil, err
	}
	s0 = obs.Default.Snapshot()
	focT, err := bestOf(o.queries(), func() error {
		_, err := ip.Lineage(runID, gen.FinalName, "product", env.QueryIndex(), FocusedSet())
		return err
	})
	if err != nil {
		return nil, err
	}
	dFoc := obs.Default.Snapshot().Sub(s0)

	unf := env.UnfocusedSet()
	s0 = obs.Default.Snapshot()
	unfT, err := bestOf(o.queries(), func() error {
		_, err := ip.Lineage(runID, gen.FinalName, "product", env.QueryIndex(), unf)
		return err
	})
	if err != nil {
		return nil, err
	}
	dUnf := obs.Default.Snapshot().Sub(s0)

	// Plan time (t1) is per compile: repeated queries hit the plan cache, so
	// the delta holds one compilation, however many repetitions ran.
	ipT1 := func(delta obs.Snapshot) string {
		return msNs(delta.HistSum("lineage.indexproj.plan_ns"),
			max64(1, delta.Counter("lineage.indexproj.plan_cache_misses")))
	}
	return []string{
		fmt.Sprint(d), fmt.Sprint(l), ms(niT), ms(focT), ms(unfT),
		msNs(dNI.HistSum("lineage.ni.traverse_ns"), reps),
		msNs(dNI.HistSum("lineage.ni.probe_ns"), reps),
		ipT1(dFoc),
		msNs(dFoc.HistSum("lineage.indexproj.probe_ns"), reps),
		ipT1(dUnf),
		msNs(dUnf.HistSum("lineage.indexproj.probe_ns"), reps),
	}, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Fig10 regenerates Figure 10: INDEXPROJ response time on partially
// unfocused queries, as the target set grows to ~50% of the processors.
// Paper shape: time grows with |P| (each focus processor adds trace
// probes), approaching NI as the focus widens.
func Fig10(o Options) (*Report, error) {
	l, d := 75, 50
	if o.Quick {
		l, d = 10, 10
	}
	env, err := PopulateTestbed(l, d, 1)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	total := env.WF.NumNodes()
	fractions := []float64{0.01, 0.1, 0.2, 0.3, 0.4, 0.5}

	rep := &Report{
		ID:      "fig10",
		Title:   "Lineage query response for IndexProj on partially unfocused queries",
		Caption: fmt.Sprintf("l=%d, d=%d, %d processors total; |P| grows to ~50%%.", l, d, total),
		Columns: []string{"focus_procs", "focus_pct", "IndexProj_ms"},
	}
	ip, err := lineage.NewIndexProj(env.Store, env.WF)
	if err != nil {
		return nil, err
	}
	runID := env.RunIDs[0]
	for _, frac := range fractions {
		k := int(frac * float64(total))
		if k < 1 {
			k = 1
		}
		focus := env.PartialFocus(k)
		el, err := bestOf(o.queries(), func() error {
			_, err := ip.Lineage(runID, gen.FinalName, "product", env.QueryIndex(), focus)
			return err
		})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(len(focus)),
			fmt.Sprintf("%.0f%%", 100*float64(len(focus))/float64(total)),
			ms(el),
		})
	}
	return rep, nil
}

// All runs every experiment in paper order.
func All(o Options) ([]*Report, error) {
	type exp struct {
		name string
		fn   func(Options) (*Report, error)
	}
	exps := []exp{
		{"fig4", Fig4}, {"fig4par", Fig4Parallel}, {"fig4shard", Fig4Shard}, {"fig4col", Fig4Col}, {"table1", Table1}, {"fig6", Fig6},
		{"fig7", Fig7}, {"fig8", Fig8}, {"fig9", Fig9}, {"fig10", Fig10},
		{"ingest", Ingest}, {"serve", FigServe}, {"failover", Failover},
		{"stream", Stream},
	}
	out := make([]*Report, 0, len(exps))
	for _, e := range exps {
		start := time.Now()
		rep, err := e.fn(o)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.name, err)
		}
		rep.Caption += fmt.Sprintf("\n(regenerated in %v)", time.Since(start).Round(time.Millisecond))
		out = append(out, rep)
	}
	return out, nil
}
