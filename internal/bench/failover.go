package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Failover measures query availability and tail latency through a replica
// failure window: the same multi-run workload runs closed-loop against a
// 4-shard store at replication factors 1 and 2, first with every replica
// healthy, then with each shard's primary killed for the whole window. The
// unreplicated store loses every query the moment its only replica dies —
// the R=1 kill cells are the 0%-availability baseline — while at R=2 the
// read path fails over to the followers and availability stays at 100%,
// at the cost of the failover/hedge/breaker work the counter columns show.
func Failover(o Options) (*Report, error) {
	l, d, nRuns := 4, 3, 12
	window := 2 * time.Second
	if o.Quick {
		nRuns, window = 8, 400*time.Millisecond
	}
	const shards = 4

	rep := &Report{
		ID:    "failover",
		Title: "replica failover: availability and latency through a replica-kill window",
		Caption: fmt.Sprintf("Closed-loop multi-run lineage queries (INDEXPROJ, parallelism 2,\n"+
			"%d runs) against a %d-shard in-memory store at replication factors\n"+
			"1 and 2. In each kill window every shard's primary replica is down\n"+
			"for the whole %s cell; at r=1 that is the shard's only replica, so\n"+
			"availability collapses to 0%%, while at r=2 reads fail over to the\n"+
			"followers. failover/hedge/breaker_open/degraded are the deltas of\n"+
			"the shard.* counters across the cell.", nRuns, shards, window),
		Columns: []string{"replicas", "phase", "queries", "ok", "failed", "availability_pct",
			"p50_ms", "p99_ms", "failover", "hedge", "breaker_open", "degraded"},
	}

	traces, wf, runIDs, err := failoverTraces(l, d, nRuns)
	if err != nil {
		return nil, err
	}
	idx := value.Ix(1, 1)
	focus := FocusedSet()
	ctx := o.ctx()

	cFailover := obs.C("shard.failover")
	cHedge := obs.C("shard.hedge")
	cBreaker := obs.C("shard.breaker_open")
	cDegraded := obs.C("shard.degraded")

	for _, r := range []int{1, 2} {
		sh, err := shard.OpenMemoryReplicated(shards, r)
		if err != nil {
			return nil, err
		}
		// Fail over off a dead or stalled replica quickly; the breaker trips
		// after two consecutive failures so repeat queries skip the corpse.
		sh.SetPolicy(resilience.Policy{AttemptTimeout: 25 * time.Millisecond, Retries: 2, Backoff: time.Millisecond})
		sh.SetBreakerConfig(resilience.BreakerConfig{FailureThreshold: 2, OpenFor: 50 * time.Millisecond})
		if err := sh.IngestTraces(ctx, traces, store.IngestOptions{Parallelism: 2}); err != nil {
			sh.Close()
			return nil, err
		}
		ip, err := lineage.NewIndexProj(sh, wf)
		if err != nil {
			sh.Close()
			return nil, err
		}

		for _, phase := range []string{"healthy", "kill"} {
			if phase == "kill" {
				for i := 0; i < shards; i++ {
					sh.KillReplica(i, 0)
				}
			}
			f0, h0, b0, d0 := cFailover.Load(), cHedge.Load(), cBreaker.Load(), cDegraded.Load()
			var (
				ok, failed int
				lats       []time.Duration
			)
			for end := time.Now().Add(window); time.Now().Before(end); {
				if err := ctx.Err(); err != nil {
					sh.Close()
					return nil, err
				}
				t0 := time.Now()
				_, err := ip.LineageMultiRunParallel(ctx, runIDs, gen.FinalName, "product", idx, focus,
					lineage.MultiRunOptions{Parallelism: 2})
				if err != nil {
					failed++
					continue
				}
				ok++
				lats = append(lats, time.Since(t0))
			}
			if phase == "kill" {
				for i := 0; i < shards; i++ {
					sh.ReviveReplica(i, 0)
				}
			}
			total := ok + failed
			avail := 0.0
			if total > 0 {
				avail = 100 * float64(ok) / float64(total)
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(r), phase, fmt.Sprint(total), fmt.Sprint(ok), fmt.Sprint(failed),
				fmt.Sprintf("%.1f", avail),
				fmt.Sprintf("%.3f", msOf(latQuantile(lats, 0.50))),
				fmt.Sprintf("%.3f", msOf(latQuantile(lats, 0.99))),
				fmt.Sprint(cFailover.Load() - f0), fmt.Sprint(cHedge.Load() - h0),
				fmt.Sprint(cBreaker.Load() - b0), fmt.Sprint(cDegraded.Load() - d0),
			})
		}
		if err := sh.Close(); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// failoverTraces executes Testbed(l) nRuns times with list size d and
// returns the traces, the workflow and the run IDs.
func failoverTraces(l, d, nRuns int) ([]*trace.Trace, *workflow.Workflow, []string, error) {
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)
	wf := gen.Testbed(l)
	traces := make([]*trace.Trace, 0, nRuns)
	runIDs := make([]string, 0, nRuns)
	for r := 0; r < nRuns; r++ {
		runID := fmt.Sprintf("fo%03d", r)
		_, tr, err := eng.RunTrace(wf, runID, gen.TestbedInputs(d))
		if err != nil {
			return nil, nil, nil, err
		}
		traces = append(traces, tr)
		runIDs = append(runIDs, runID)
	}
	return traces, wf, runIDs, nil
}

// latQuantile returns the exact q-quantile of the recorded latencies, or 0
// when none were recorded (e.g. the 0%-availability cells).
func latQuantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func msOf(dur time.Duration) float64 { return float64(dur.Nanoseconds()) / 1e6 }
