package bench

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// GenerateGKPDTraces executes the GK and PD reconstructions `runs` times
// each and returns the recorded traces without storing them, plus the two
// workflow definitions — the Fig. 4 workload as raw traces, so the sharded
// experiment can load the identical data into every topology it measures.
func GenerateGKPDTraces(runs int) (gkTraces, pdTraces []*trace.Trace, gk, pd *workflow.Workflow, err error) {
	reg := gen.Registry()
	eng := engine.New(reg)
	gk, pd = gen.GenesToKegg(), gen.ProteinDiscovery()
	for r := 0; r < runs; r++ {
		_, tr, err := eng.RunTrace(gk, fmt.Sprintf("gk%03d", r), gen.GKInputs(3+r%3, 4))
		if err != nil {
			return nil, nil, nil, nil, err
		}
		gkTraces = append(gkTraces, tr)
		_, tr, err = eng.RunTrace(pd, fmt.Sprintf("pd%03d", r), gen.PDInputs(fmt.Sprintf("query sweep %d", r), 8))
		if err != nil {
			return nil, nil, nil, nil, err
		}
		pdTraces = append(pdTraces, tr)
	}
	return gkTraces, pdTraces, gk, pd, nil
}

// Fig4Shard extends Fig. 4 along the sharding axis: the same multi-run
// workload measured on sharded stores of growing shard count, against the
// 1-shard (single engine) baseline, on the durable (write-ahead-logged)
// backend under a fixed per-store recovery bound.
//
// Ingest: every topology bulk-loads the identical traces with the same
// per-store checkpoint cadence (CheckpointEveryRuns), so each store's WAL —
// and the replay a crash-recovery open must do — stays bounded by the same
// number of runs. A single store's periodic snapshot covers the whole
// database, so its checkpoint cost grows with the full load; each shard
// snapshots only its ~1/Nth, which is where the sharded ingest win comes
// from (the WAL fsync stream itself is disk-bound and roughly topology-
// independent on one spindle).
//
// Query: the probe phase of every Fig. 4 multi-run query. The executor forms
// its run chunks within shard-ownership groups (store.RunPartitioner), so
// every batched probe is answered by one shard scanning only its own runs'
// index rows — partition pruning — where the single store scans the whole
// index once per chunk. Results are checked equal across topologies.
func Fig4Shard(o Options) (*Report, error) {
	runs, ckptEvery := 192, 16
	if o.Quick {
		runs, ckptEvery = 16, 4
	}
	shardGrid := o.grid([]int{1, 2, 4}, []int{1, 2})
	ps := o.grid([]int{1, 4, 8}, []int{1, 4})
	gkTraces, pdTraces, gk, pd, err := GenerateGKPDTraces(runs)
	if err != nil {
		return nil, err
	}
	traces := append(append([]*trace.Trace{}, gkTraces...), pdTraces...)
	runsOf := func(ts []*trace.Trace) []string {
		ids := make([]string, len(ts))
		for i, t := range ts {
			ids[i] = t.RunID
		}
		return ids
	}
	gkRuns, pdRuns := runsOf(gkTraces), runsOf(pdTraces)

	type queryCfg struct {
		label string
		wf    *workflow.Workflow
		runs  []string
		port  string
		idx   value.Index
		focus lineage.Focus
	}
	cfgs := []queryCfg{
		{"GK focused", gk, gkRuns, "paths_per_gene", value.Ix(0, 0),
			lineage.NewFocus("get_pathways_by_genes")},
		{"GK unfocused", gk, gkRuns, "paths_per_gene", value.Ix(0, 0), AllProcs(gk)},
		{"PD focused", pd, pdRuns, "discovered_proteins", value.Ix(0),
			lineage.NewFocus("fetch_abstract")},
		{"PD unfocused", pd, pdRuns, "discovered_proteins", value.Ix(0), AllProcs(pd)},
	}

	rep := &Report{
		ID:    "fig4shard",
		Title: "Sharded store: multi-run query and ingest scaling vs. the single-store baseline",
		Caption: fmt.Sprintf("Fig. 4 workload (GK+PD, %d runs each), identical traces loaded into\n"+
			"durable shard:n topologies under the same per-store recovery bound\n"+
			"(checkpoint every %d runs; each checkpoint snapshots that store and\n"+
			"truncates its WAL). ingest: IngestTraces P=4, rows/sec over Table 1\n"+
			"records, wall time includes the in-line checkpoints. query:\n"+
			"ExecuteMultiRun probe phase (shared plan); run chunks align with shard\n"+
			"ownership, so each batched probe scans one shard's index only.\n"+
			"speedup is vs. shards=1 at the same parallelism; results are checked\n"+
			"equal across topologies.", runs, ckptEvery),
		Columns: []string{"phase", "query", "shards", "parallelism", "runs", "ms", "rows_per_sec", "speedup"},
	}

	// Ingest trials are disk-bound and the noise is one-sided (writeback and
	// journal stalls only ever inflate a trial), so best-of-N converges on
	// the true cost; five trials ride out a writeback storm that can span
	// three.
	ingestReps := o.queries()
	if ingestReps > 5 {
		ingestReps = 5
	}
	ctx := o.ctx()

	// Ingest phase: best-of-reps load of the identical traces into a fresh
	// durable n-shard store per trial; the last trial's store is kept open
	// so the query phase can measure every topology interleaved (one cell
	// across all topologies back-to-back — cross-topology drift in process
	// or disk state cannot masquerade as a speedup in either direction).
	stores := make([]*shard.ShardedStore, len(shardGrid))
	dirs := make([]string, len(shardGrid))
	cleanup := func() {
		for i, st := range stores {
			if st != nil {
				st.Close()
			}
			if dirs[i] != "" {
				os.RemoveAll(dirs[i])
			}
		}
	}
	defer cleanup()

	var baselineRate int // 1-shard ingest rows/sec
	for k, n := range shardGrid {
		var best time.Duration
		var rows int
		for r := 0; r < ingestReps; r++ {
			if stores[k] != nil {
				stores[k].Close()
				os.RemoveAll(dirs[k])
				stores[k], dirs[k] = nil, ""
			}
			dir, err := os.MkdirTemp("", "fig4shard-*")
			if err != nil {
				return nil, err
			}
			dirs[k] = dir
			if stores[k], err = shard.Open(fmt.Sprintf("shard:%s?n=%d&backend=durable", dir, n)); err != nil {
				return nil, err
			}
			runtime.GC() // stabilize: pay collection of the prior trial's garbage now
			start := time.Now()
			if err := stores[k].IngestTraces(ctx, traces, store.IngestOptions{Parallelism: 4, CheckpointEveryRuns: ckptEvery}); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if rows, err = stores[k].TotalRecords(""); err != nil {
				return nil, err
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		rate := int(float64(rows) / best.Seconds())
		if n == shardGrid[0] {
			baselineRate = rate
		}
		rep.Rows = append(rep.Rows, []string{
			"ingest", "-", fmt.Sprint(n), "4", fmt.Sprint(len(traces)), ms(best),
			fmt.Sprint(rate),
			fmt.Sprintf("%.2fx", float64(rate)/float64(baselineRate)),
		})
	}

	// Query phase: the probe phase of every Fig. 4 query over all runs,
	// across the executor-parallelism grid. Each (query, parallelism) cell
	// measures every topology consecutively against the stores kept from the
	// ingest phase, and the answers are checked equal across topologies.
	for _, cfg := range cfgs {
		ips := make([]*lineage.IndexProj, len(shardGrid))
		plans := make([]*lineage.CompiledPlan, len(shardGrid))
		for k := range shardGrid {
			ip, err := lineage.NewIndexProj(stores[k], cfg.wf)
			if err != nil {
				return nil, err
			}
			plan, err := ip.Compile(trace.WorkflowProc, cfg.port, cfg.idx, cfg.focus)
			if err != nil {
				return nil, err
			}
			ips[k], plans[k] = ip, plan
		}
		for _, p := range ps {
			// This experiment isolates the scatter-gather row-probe path;
			// the ingest checkpoints above built column segments, so auto
			// mode would silently switch the measurement to the columnar
			// stage (fig4col covers that comparison explicitly).
			opt := lineage.MultiRunOptions{Parallelism: p, ColScan: lineage.ColScanOff}
			var baseRes *lineage.Result
			var baseT time.Duration
			for k, n := range shardGrid {
				runtime.GC() // every cell starts from a freshly collected heap
				var got *lineage.Result
				t, err := bestOfScaled(o.queries(), func() error {
					var err error
					got, err = ips[k].ExecuteMultiRun(ctx, plans[k], cfg.runs, opt)
					return err
				})
				if err != nil {
					return nil, err
				}
				if baseRes == nil {
					baseRes, baseT = got, t
				} else if !got.Equal(baseRes) {
					return nil, fmt.Errorf("bench: %s on %d shard(s) diverged from the 1-shard result", cfg.label, n)
				}
				rep.Rows = append(rep.Rows, []string{
					"query", cfg.label, fmt.Sprint(n), fmt.Sprint(p), fmt.Sprint(len(cfg.runs)), ms(t), "-",
					fmt.Sprintf("%.2fx", float64(baseT)/float64(t)),
				})
			}
		}
	}
	return rep, nil
}
