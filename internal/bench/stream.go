package bench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Stream measures query latency under live streaming ingest: a closed-loop
// multi-run lineage query runs against a snapshot pinned before the
// measurement, first on an idle store, then again while a background
// TailIngest session streams freshly generated runs into the same store for
// the whole window. Snapshot isolation means the pinned query never waits on
// (or sees) the concurrent writers, so the ingest tax shows up only as CPU
// and allocator contention — the p99_x_idle column is the contract the
// streaming design is judged by (within 2x of idle).
func Stream(o Options) (*Report, error) {
	l, d, nBase := 6, 6, 6
	window := 2 * time.Second
	if o.Quick {
		l, d, nBase = 4, 4, 4
		window = 400 * time.Millisecond
	}

	traces, wf, runIDs, err := failoverTraces(l, d, nBase)
	if err != nil {
		return nil, err
	}
	ctx := o.ctx()
	st, err := store.OpenMemory()
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := st.IngestTraces(ctx, traces, store.IngestOptions{Parallelism: 2}); err != nil {
		return nil, err
	}
	if _, err := st.BuildColumnSegments(); err != nil {
		return nil, err
	}

	// Pin the snapshot every measured query runs against. Both executors
	// read through this one view, so idle and ingest cells answer the exact
	// same epoch.
	v, err := st.View()
	if err != nil {
		return nil, err
	}
	defer v.Close()
	pinnedEpoch := v.Epoch()
	ip, err := lineage.NewIndexProj(v, wf)
	if err != nil {
		return nil, err
	}
	idx := value.Ix(d/2, d/2)
	focus := FocusedSet()
	executors := []struct {
		name string
		scan lineage.ColScanMode
	}{
		{"row", lineage.ColScanOff},
		{"colscan", lineage.ColScanOn},
	}

	rep := &Report{
		ID:    "stream",
		Title: "streaming ingest: pinned-snapshot query latency, idle vs. live tail",
		Caption: fmt.Sprintf("Closed-loop focused multi-run lineage queries (INDEXPROJ,\n"+
			"parallelism 2, %d runs, testbed l=%d d=%d) against a store.View pinned\n"+
			"before measurement. In the tail-ingest cells a concurrent TailIngest\n"+
			"session streams freshly generated runs into the same store for the\n"+
			"whole %s window; the pinned snapshot never sees them, so p99_x_idle\n"+
			"is pure ingest interference (the acceptance bar is 2x).",
			nBase, l, d, window),
		Columns: []string{"executor", "phase", "queries", "p50_ms", "p99_ms", "p99_x_idle",
			"ingested_events", "ingest_events_per_sec", "dead_lettered"},
	}

	want, err := ip.LineageMultiRunParallel(ctx, runIDs, gen.FinalName, "product", idx, focus,
		lineage.MultiRunOptions{Parallelism: 2})
	if err != nil {
		return nil, err
	}

	for _, ex := range executors {
		idleP99 := 0.0
		for _, phase := range []string{"idle", "tail-ingest"} {
			var stop func() (store.TailStats, error)
			if phase == "tail-ingest" {
				stop = streamFeeder(ctx, st, wf, d, fmt.Sprintf("live-%s-", ex.name))
			}
			var (
				lats  []time.Duration
				count int
			)
			start := time.Now()
			for end := start.Add(window); time.Now().Before(end); {
				if err := ctx.Err(); err != nil {
					if stop != nil {
						stop()
					}
					return nil, err
				}
				t0 := time.Now()
				res, err := ip.LineageMultiRunParallel(ctx, runIDs, gen.FinalName, "product", idx, focus,
					lineage.MultiRunOptions{Parallelism: 2, ColScan: ex.scan})
				if err != nil {
					if stop != nil {
						stop()
					}
					return nil, fmt.Errorf("bench: stream %s/%s: %w", ex.name, phase, err)
				}
				if !res.Equal(want) {
					if stop != nil {
						stop()
					}
					return nil, fmt.Errorf("bench: stream %s/%s: pinned answer drifted under ingest", ex.name, phase)
				}
				lats = append(lats, time.Since(t0))
				count++
			}
			elapsed := time.Since(start)

			var stats store.TailStats
			if stop != nil {
				if stats, err = stop(); err != nil {
					return nil, fmt.Errorf("bench: stream feeder: %w", err)
				}
				if stats.Applied == 0 {
					return nil, fmt.Errorf("bench: stream %s: tail-ingest window applied no events", ex.name)
				}
			}
			p50 := msOf(latQuantile(lats, 0.50))
			p99 := msOf(latQuantile(lats, 0.99))
			ratio := "1.00"
			if phase == "idle" {
				idleP99 = p99
			} else if idleP99 > 0 {
				ratio = fmt.Sprintf("%.2f", p99/idleP99)
			}
			rep.Rows = append(rep.Rows, []string{
				ex.name, phase, fmt.Sprint(count),
				fmt.Sprintf("%.3f", p50), fmt.Sprintf("%.3f", p99), ratio,
				fmt.Sprint(stats.Applied),
				fmt.Sprintf("%.0f", float64(stats.Applied)/elapsed.Seconds()),
				fmt.Sprint(stats.DeadLettered),
			})
		}
	}

	if got := v.Epoch(); got != pinnedEpoch {
		return nil, fmt.Errorf("bench: stream: pinned view epoch moved: %d -> %d", pinnedEpoch, got)
	}
	if st.Epoch() <= pinnedEpoch {
		return nil, fmt.Errorf("bench: stream: store epoch never advanced past the pin (%d)", pinnedEpoch)
	}
	return rep, nil
}

// streamFeeder starts a background TailIngest session fed by freshly
// generated testbed runs (unique run IDs, so every event validates) and
// returns a stop function that cancels the feed, waits for the session to
// flush, and reports its stats. Cancellation is the expected way the window
// ends, so context errors from the session are not failures.
func streamFeeder(ctx context.Context, st *store.Store, wf *workflow.Workflow, d int, tag string) func() (store.TailStats, error) {
	fctx, cancel := context.WithCancel(ctx)
	events := make(chan trace.Event, 64)
	specs := map[string]*workflow.Workflow{wf.Name: wf}

	var (
		stats     store.TailStats
		ingestErr error
	)
	sessionDone := make(chan struct{})
	go func() {
		defer close(sessionDone)
		stats, ingestErr = st.TailIngest(fctx, events, store.TailOptions{Specs: specs})
	}()

	feedDone := make(chan struct{})
	go func() {
		defer close(feedDone)
		defer close(events)
		reg := engine.NewRegistry()
		gen.RegisterTestbed(reg)
		eng := engine.New(reg)
		for k := 0; fctx.Err() == nil; k++ {
			_, tr, err := eng.RunTrace(wf, fmt.Sprintf("%s%05d", tag, k), gen.TestbedInputs(d))
			if err != nil {
				return
			}
			for _, ev := range tr.Events() {
				select {
				case events <- ev:
				case <-fctx.Done():
					return
				}
			}
		}
	}()

	return func() (store.TailStats, error) {
		cancel()
		<-feedDone
		<-sessionDone
		if errors.Is(ingestErr, context.Canceled) {
			ingestErr = nil
		}
		return stats, ingestErr
	}
}
