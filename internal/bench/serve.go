package bench

import (
	"fmt"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/loadgen"
	"repro/internal/server"
)

// FigServe measures the provd serving path end to end: open-loop HTTP load
// against the multi-tenant query server, reporting client-side latency
// quantiles (p50/p99/p999) and completed throughput as the offered load
// grows, at 1 and 4 store shards.
//
// The workload is the GK focused multi-run query (the paper's Fig. 4 probe,
// compiled once into the shared plan cache and answered per request by the
// parallel executor's batched shard probes). Open-loop means the generator
// fires at the offered rate regardless of completions, so saturation shows
// up as tail latency and explicit shed (429/503) rather than as a slowed
// generator; rejections are counted, never silently dropped.
func FigServe(o Options) (*Report, error) {
	gkRuns, duration := 8, 5*time.Second
	loads := []float64{50, 100, 200}
	if o.Quick {
		gkRuns, duration = 4, 1200*time.Millisecond
		loads = []float64{40, 80, 160}
	}
	shardGrid := []int{1, 4}

	rep := &Report{
		ID:    "serve",
		Title: "provd serving: latency quantiles and throughput vs. offered load",
		Caption: fmt.Sprintf("Open-loop load against the provd HTTP server, tenant t0 on a\n"+
			"shard:n store. Each request is the GK focused multi-run lineage query\n"+
			"(workflow:paths_per_gene[0,0], focus get_pathways_by_genes) over %d\n"+
			"runs via the parallel executor (parallelism 4), answered through the\n"+
			"shared cross-request plan cache. Quantiles are client-side over OK\n"+
			"responses; ratelimited counts 429 sheds (per-tenant token bucket),\n"+
			"rejected counts 503 sheds (admission control). %s offered load\n"+
			"per cell.", gkRuns, duration),
		Columns: []string{"shards", "offered_qps", "sent", "ok", "ratelimited", "rejected", "errors",
			"throughput_qps", "p50_ms", "p99_ms", "p999_ms"},
	}

	ctx := o.ctx()
	msf := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6) }

	for _, n := range shardGrid {
		dir, err := os.MkdirTemp("", "figserve-*")
		if err != nil {
			return nil, err
		}
		template := fmt.Sprintf("shard:%s/{tenant}?n=%d", dir, n)

		// Seed tenant t0 with the GK workload through the same system the
		// server will open.
		runIDs, err := seedServeTenant(strings.ReplaceAll(template, "{tenant}", "t0"), gkRuns)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}

		srv, err := server.New(server.Config{StoreTemplate: template, MaxInflight: 64})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())

		params := url.Values{}
		params.Set("tenant", "t0")
		params.Set("runs", strings.Join(runIDs, ","))
		params.Set("parallel", "4")
		params.Set("binding", "workflow:paths_per_gene[0,0]")
		params.Set("focus", "get_pathways_by_genes")
		params.Set("values", "false")
		target := ts.URL + "/v1/query?" + params.Encode()

		for _, qps := range loads {
			res, err := loadgen.Run(ctx, loadgen.Options{
				URL:      target,
				QPS:      qps,
				Duration: duration,
				Timeout:  10 * time.Second,
			})
			if err != nil {
				ts.Close()
				srv.Drain()
				os.RemoveAll(dir)
				return nil, err
			}
			if res.OK == 0 {
				ts.Close()
				srv.Drain()
				os.RemoveAll(dir)
				return nil, fmt.Errorf("bench: serve at %d shard(s), %.0f qps: no request succeeded (%d sent, %d ratelimited, %d rejected, %d errors)",
					n, qps, res.Sent, res.RateLimited, res.Rejected, res.Errors)
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprint(n), fmt.Sprintf("%.0f", qps),
				fmt.Sprint(res.Sent), fmt.Sprint(res.OK), fmt.Sprint(res.RateLimited), fmt.Sprint(res.Rejected), fmt.Sprint(res.Errors),
				fmt.Sprintf("%.1f", res.Throughput()),
				msf(res.Quantile(0.50)), msf(res.Quantile(0.99)), msf(res.Quantile(0.999)),
			})
		}

		if err := srv.Drain(); err != nil {
			ts.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		ts.Close()
		os.RemoveAll(dir)
	}
	return rep, nil
}

// seedServeTenant executes the GK workflow `runs` times into the store
// behind dsn, exactly as the server's tenant opener will later find it.
func seedServeTenant(dsn string, runs int) ([]string, error) {
	sys, err := core.NewSystem(core.WithStoreDSN(dsn))
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	gen.RegisterGK(sys.Registry(), gen.DefaultKEGG())
	if err := sys.RegisterWorkflow(gen.GenesToKegg()); err != nil {
		return nil, err
	}
	ids := make([]string, 0, runs)
	for r := 0; r < runs; r++ {
		res, err := sys.Run("genes2Kegg", gen.GKInputs(3+r%3, 4))
		if err != nil {
			return nil, err
		}
		ids = append(ids, res.RunID)
	}
	if err := sys.Save(""); err != nil {
		return nil, err
	}
	return ids, nil
}
