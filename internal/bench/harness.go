package bench

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/store"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Options scales the experiments. The zero value reproduces the paper's
// configuration space; Quick shrinks every grid for smoke runs (used by the
// test suite and `benchrunner -quick`).
type Options struct {
	Queries int // identical queries per measurement (default 5, paper's best-of-5)
	Quick   bool
	// Ctx, when set, bounds every experiment: cancellation (Ctrl-C, a
	// -timeout) aborts the in-flight ingest or query executor cleanly.
	Ctx context.Context
}

// ctx returns the experiment context, defaulting to context.Background().
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) queries() int {
	if o.Queries > 0 {
		return o.Queries
	}
	return 5
}

// grid returns the paper grid or its quick-mode reduction.
func (o Options) grid(full, quick []int) []int {
	if o.Quick {
		return quick
	}
	return full
}

// TestbedEnv is a populated provenance database for one testbed
// configuration, exposed for the root benchmark suite.
type TestbedEnv struct {
	WF     *workflow.Workflow
	Store  *store.Store
	RunIDs []string
	L, D   int
}

func (env *TestbedEnv) Close() { env.Store.Close() }

// PopulateTestbed generates Testbed(l), executes it `runs` times with list
// size d, and stores every trace.
func PopulateTestbed(l, d, runs int) (*TestbedEnv, error) {
	wf := gen.Testbed(l)
	reg := engine.NewRegistry()
	gen.RegisterTestbed(reg)
	eng := engine.New(reg)
	st, err := store.OpenMemory()
	if err != nil {
		return nil, err
	}
	env := &TestbedEnv{WF: wf, Store: st, L: l, D: d}
	for r := 0; r < runs; r++ {
		runID := fmt.Sprintf("run%03d", r)
		w, err := st.NewRunWriter(runID, wf.Name)
		if err != nil {
			st.Close()
			return nil, err
		}
		if _, err := eng.Run(wf, gen.TestbedInputs(d), w); err != nil {
			w.Close()
			st.Close()
			return nil, err
		}
		w.Close()
		env.RunIDs = append(env.RunIDs, runID)
	}
	return env, nil
}

// QueryIndex is the element the testbed lineage queries target: a middle
// element of the final d×d product.
func (env *TestbedEnv) QueryIndex() value.Index {
	return value.Ix(env.D/2, env.D/2)
}

// FocusedSet is the paper's focused query target {LISTGEN_1}.
func FocusedSet() lineage.Focus { return lineage.NewFocus(gen.ListGenName) }

// UnfocusedSet marks every processor interesting — the fully unfocused case
// where INDEXPROJ degenerates towards NI.
func (env *TestbedEnv) UnfocusedSet() lineage.Focus {
	f := lineage.NewFocus()
	for _, p := range env.WF.Processors {
		f[p.Name] = true
	}
	return f
}

// PartialFocus returns a focus containing the first k processors of the two
// chains (alternating), for the partially-unfocused sweep of Fig. 10.
func (env *TestbedEnv) PartialFocus(k int) lineage.Focus {
	f := lineage.NewFocus(gen.ListGenName)
	for i := 1; len(f) < k && i <= env.L; i++ {
		f[fmt.Sprintf("A_%03d", i)] = true
		if len(f) < k {
			f[fmt.Sprintf("B_%03d", i)] = true
		}
	}
	return f
}

// NaiveQuery runs the NI query once.
func (env *TestbedEnv) NaiveQuery(runID string, focus lineage.Focus) error {
	ni := lineage.NewNaive(env.Store)
	_, err := ni.Lineage(runID, gen.FinalName, "product", env.QueryIndex(), focus)
	return err
}

// GKPDEnv holds populated GK and PD databases for Fig. 4.
type GKPDEnv struct {
	Store  *store.Store
	GK     *workflow.Workflow
	PD     *workflow.Workflow
	GKRuns []string
	PDRuns []string
}

func (env *GKPDEnv) Close() { env.Store.Close() }

// PopulateGKPD executes `runs` runs of both real-workflow reconstructions.
func PopulateGKPD(runs int) (*GKPDEnv, error) {
	st, err := store.OpenMemory()
	if err != nil {
		return nil, err
	}
	reg := gen.Registry()
	eng := engine.New(reg)
	env := &GKPDEnv{Store: st, GK: gen.GenesToKegg(), PD: gen.ProteinDiscovery()}
	for r := 0; r < runs; r++ {
		gkID := fmt.Sprintf("gk%03d", r)
		w, err := st.NewRunWriter(gkID, env.GK.Name)
		if err != nil {
			st.Close()
			return nil, err
		}
		// Sweep the input size across runs, as a parameter sweep would.
		if _, err := eng.Run(env.GK, gen.GKInputs(3+r%3, 4), w); err != nil {
			w.Close()
			st.Close()
			return nil, err
		}
		w.Close()
		env.GKRuns = append(env.GKRuns, gkID)

		pdID := fmt.Sprintf("pd%03d", r)
		w, err = st.NewRunWriter(pdID, env.PD.Name)
		if err != nil {
			st.Close()
			return nil, err
		}
		if _, err := eng.Run(env.PD, gen.PDInputs(fmt.Sprintf("query sweep %d", r), 8), w); err != nil {
			w.Close()
			st.Close()
			return nil, err
		}
		w.Close()
		env.PDRuns = append(env.PDRuns, pdID)
	}
	return env, nil
}

// AllProcs lists every processor name of a workflow (the unfocused set).
func AllProcs(w *workflow.Workflow) lineage.Focus {
	f := lineage.NewFocus()
	for _, p := range w.Processors {
		f[p.Name] = true
	}
	return f
}
