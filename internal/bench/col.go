package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/lineage"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Fig4Col measures the columnar probe stage against the row-at-a-time batched
// probes on a cross-run aggregate workload: "the inputs that fed any failed
// run". The store holds many runs of the GK reconstruction; a fixed fraction
// is designated failed (the engine records no failure outcome, so the sweep
// marks every 4th run — the shape that matters is a query set much smaller
// than the stored set). The batched row probe answers by one index-range scan
// over the whole xin_ppi range of a (proc, port, idx) probe — every stored
// run's rows — filtered down to the queried runs; the columnar stage touches
// only the queried runs' segments, so its advantage grows with the
// stored:queried ratio. Both topologies of PR 5 are measured: a single store
// and a 4-shard store whose executor chunks are partition-pruned before the
// segments are scanned.
//
// Results are checked equal between the two modes on every cell; the colscan
// rows carry the per-query colscan.* observability deltas (segments scanned,
// segment rows examined, zone-map prunes, row-path fallbacks).
func Fig4Col(o Options) (*Report, error) {
	stored, every := 2048, 32
	if o.Quick {
		stored, every = 32, 4
	}
	reg := gen.Registry()
	eng := engine.New(reg)
	gk := gen.GenesToKegg()
	traces := make([]*trace.Trace, 0, stored)
	for r := 0; r < stored; r++ {
		_, tr, err := eng.RunTrace(gk, fmt.Sprintf("gk%03d", r), gen.GKInputs(8+r%3, 6))
		if err != nil {
			return nil, err
		}
		traces = append(traces, tr)
	}
	var failed []string
	for i := every - 1; i < len(traces); i += every {
		failed = append(failed, traces[i].RunID)
	}

	ctx := o.ctx()
	single, err := store.OpenMemory()
	if err != nil {
		return nil, err
	}
	defer single.Close()
	sharded, err := shard.OpenMemory(4)
	if err != nil {
		return nil, err
	}
	defer sharded.Close()

	type topo struct {
		label string
		q     store.LineageQuerier
		ckpt  store.Checkpointer
	}
	topos := []topo{
		{"single", single, single},
		{"shard:4", sharded, sharded},
	}
	if err := single.IngestTraces(ctx, traces, store.IngestOptions{Parallelism: 4}); err != nil {
		return nil, err
	}
	if err := sharded.IngestTraces(ctx, traces, store.IngestOptions{Parallelism: 4}); err != nil {
		return nil, err
	}
	// One checkpoint after the bulk load builds every run's column segment
	// (the memory backend skips the snapshot itself but still projects).
	for _, tp := range topos {
		if err := tp.ckpt.Checkpoint(); err != nil {
			return nil, err
		}
	}
	traces = nil // let the generation garbage go before anything is timed

	type queryCfg struct {
		label string
		wf    *workflow.Workflow
		port  string
		idx   value.Index
		focus lineage.Focus
	}
	cfgs := []queryCfg{
		{"GK focused", gk, "paths_per_gene", value.Ix(0, 0),
			lineage.NewFocus("get_pathways_by_genes")},
		{"GK unfocused", gk, "paths_per_gene", value.Ix(0, 0), AllProcs(gk)},
	}

	rep := &Report{
		ID:    "fig4col",
		Title: "Columnar probe stage vs. row-at-a-time batched probes on a cross-run aggregate query",
		Caption: fmt.Sprintf("GK reconstruction, %d stored runs, every %dth designated failed\n"+
			"(%d queried runs): \"the inputs that fed any failed run\". rows =\n"+
			"ExecuteMultiRun with -colscan=off (PR 6 batched row probes: one\n"+
			"xin_ppi range scan per probe per chunk, all stored runs, filtered);\n"+
			"colscan = -colscan=on (zone-map filter, then the fixed-width IdxKey\n"+
			"column of the queried runs' segments only). P=4, results checked\n"+
			"equal per cell; seg_* columns are per-query colscan.* obs deltas.",
			stored, every, len(failed)),
		Columns: []string{"query", "topology", "stored", "queried", "mode", "t2_ms",
			"speedup", "segs_scanned", "seg_rows", "zone_prunes", "fallbacks"},
	}

	for _, cfg := range cfgs {
		for _, tp := range topos {
			ip, err := lineage.NewIndexProj(tp.q, cfg.wf)
			if err != nil {
				return nil, err
			}
			plan, err := ip.Compile(trace.WorkflowProc, cfg.port, cfg.idx, cfg.focus)
			if err != nil {
				return nil, err
			}
			type cell struct {
				mode string
				opt  lineage.MultiRunOptions
			}
			cells := []cell{
				{"rows", lineage.MultiRunOptions{Parallelism: 4, ColScan: lineage.ColScanOff}},
				{"colscan", lineage.MultiRunOptions{Parallelism: 4, ColScan: lineage.ColScanOn}},
			}
			results := make([]*lineage.Result, len(cells))
			fns := make([]func() error, len(cells))
			for i, c := range cells {
				i, opt := i, c.opt
				fns[i] = func() error {
					var err error
					results[i], err = ip.ExecuteMultiRun(ctx, plan, failed, opt)
					return err
				}
			}
			runtime.GC() // every cell starts from a freshly collected heap
			times, err := alternatingBest(o.queries(), fns)
			if err != nil {
				return nil, err
			}
			if !results[1].Equal(results[0]) {
				return nil, fmt.Errorf("bench: %s on %s: colscan diverged from the row path",
					cfg.label, tp.label)
			}
			for i, c := range cells {
				// One extra, untimed execution bracketed by obs snapshots
				// yields the exact per-query counter deltas for this cell.
				s0 := obs.Default.Snapshot()
				if _, err := ip.ExecuteMultiRun(ctx, plan, failed, c.opt); err != nil {
					return nil, err
				}
				d := obs.Default.Snapshot().Sub(s0)
				rep.Rows = append(rep.Rows, []string{
					cfg.label, tp.label, fmt.Sprint(stored), fmt.Sprint(len(failed)),
					c.mode, ms(times[i]),
					fmt.Sprintf("%.2fx", float64(times[0])/float64(times[i])),
					fmt.Sprint(d.Counter("colscan.segments_scanned")),
					fmt.Sprint(d.Counter("colscan.rows_filtered")),
					fmt.Sprint(d.Counter("colscan.zonemap_prunes")),
					fmt.Sprint(d.Counter("colscan.fallbacks")),
				})
			}
		}
	}
	return rep, nil
}

// alternatingBest times a set of alternatives the way bestOfScaled times one:
// each sample repeats the function often enough to last ~2ms, and the fastest
// of n samples wins. The alternatives are interleaved sample by sample — A, B,
// A, B — so a throttling or collection window that inflates one round inflates
// every alternative's sample in it, and the reported ratios stay honest on a
// noisy machine even when the absolute times wander between invocations.
func alternatingBest(n int, fns []func() error) ([]time.Duration, error) {
	const target = 2 * time.Millisecond
	reps := make([]int, len(fns))
	for i, fn := range fns {
		start := time.Now()
		if err := fn(); err != nil {
			return nil, err
		}
		once := time.Since(start)
		reps[i] = 1
		if once < target {
			reps[i] = int(target/(once+1)) + 1
		}
		if reps[i] > 1000 {
			reps[i] = 1000
		}
	}
	best := make([]time.Duration, len(fns))
	for round := 0; round < n; round++ {
		for i, fn := range fns {
			start := time.Now()
			for k := 0; k < reps[i]; k++ {
				if err := fn(); err != nil {
					return nil, err
				}
			}
			el := time.Since(start) / time.Duration(reps[i])
			if round == 0 || el < best[i] {
				best[i] = el
			}
		}
	}
	return best, nil
}
