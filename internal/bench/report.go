// Package bench implements the paper's experimental evaluation (§4): one
// regeneration function per table and figure. Each experiment populates a
// provenance store with synthetic testbed or GK/PD runs, measures the
// lineage algorithms under the paper's methodology (best of five identical
// queries, warm caches), and renders a textual report that mirrors the
// paper's rows/series. Absolute times differ from the 2009 laptop + MySQL
// testbed; the comparisons of interest are the shapes (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Report is one regenerated table or figure.
type Report struct {
	ID      string // "table1", "fig4", ...
	Title   string
	Caption string
	Columns []string
	Rows    [][]string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	if r.Caption != "" {
		for _, line := range strings.Split(r.Caption, "\n") {
			fmt.Fprintf(&sb, "   %s\n", line)
		}
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the report as comma-separated values.
func (r *Report) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ms renders a duration in milliseconds with three decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

// msNs renders totalNs/n nanoseconds as milliseconds with three decimals —
// the per-query form of a counter-derived stage total (obs snapshot delta
// over n measured repetitions).
func msNs(totalNs, n int64) string {
	if n <= 0 {
		return "0.000"
	}
	return fmt.Sprintf("%.3f", float64(totalNs)/float64(n)/1e6)
}

// bestOf runs fn n times and returns the fastest duration — the paper's
// methodology: "the best response times over a sequence of five identical
// queries ... assuming the best case of a warm cache" (§4.2, footnote 10).
func bestOf(n int, fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if el := time.Since(start); i == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

// bestOfScaled times fn like bestOf, but repeats it within each sample often
// enough that a sample lasts at least ~2ms, so sub-millisecond operations
// are measured robustly against scheduler and GC jitter.
func bestOfScaled(n int, fn func() error) (time.Duration, error) {
	const target = 2 * time.Millisecond
	start := time.Now()
	if err := fn(); err != nil {
		return 0, err
	}
	once := time.Since(start)
	reps := 1
	if once < target {
		reps = int(target/(once+1)) + 1
	}
	if reps > 1000 {
		reps = 1000
	}
	best, err := bestOf(n, func() error {
		for i := 0; i < reps; i++ {
			if err := fn(); err != nil {
				return err
			}
		}
		return nil
	})
	return best / time.Duration(reps), err
}
