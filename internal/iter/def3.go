package iter

import (
	"fmt"

	"repro/internal/value"
)

// This file is a literal transcription of the paper's Def. 2 (generalized
// cross product ⊗) and Def. 3 (eval_l). It builds the nested tuple structure
// first and then maps the black-box function over it at depth l, exactly as
// the functional formulation prescribes. It is deliberately independent of
// Plan.Enumerate/Assemble and serves as the reference implementation in
// property tests.

// Pair is one (value, depth-mismatch) operand of the generalized cross
// product, written (v, d) in Def. 2.
type Pair struct {
	V value.Value
	D int
}

// CrossDef2 computes the n-ary generalized cross product ⊗_{i:1..n}(v_i, d_i)
// of Def. 2. The result is a nested list of depth Σ max(d_i, 0) whose
// elements at exactly that depth are argument tuples, represented as flat
// lists of the n component values (atomic components included). Iteration
// expands the operands left to right, each through d_i levels, which yields
// the index correspondence of Prop. 1.
func CrossDef2(pairs []Pair) (value.Value, error) {
	n := len(pairs)
	picks := make([]value.Value, n)
	var rec func(i int, sub value.Value, remaining int) (value.Value, error)
	rec = func(i int, sub value.Value, remaining int) (value.Value, error) {
		if i == n {
			return value.List(append([]value.Value(nil), picks...)...), nil
		}
		if remaining <= 0 {
			picks[i] = sub
			next := i + 1
			var nextVal value.Value
			nextRem := 0
			if next < n {
				nextVal = pairs[next].V
				nextRem = pairs[next].D
			}
			return rec(next, nextVal, nextRem)
		}
		if !sub.IsList() {
			return value.Value{}, fmt.Errorf("iter: cross product operand %d too shallow", i)
		}
		elems := make([]value.Value, sub.Len())
		for j, e := range sub.Elems() {
			v, err := rec(i, e, remaining-1)
			if err != nil {
				return value.Value{}, err
			}
			elems[j] = v
		}
		return value.List(elems...), nil
	}
	var first value.Value
	firstRem := 0
	if n > 0 {
		first = pairs[0].V
		firstRem = pairs[0].D
	}
	return rec(0, first, firstRem)
}

// EvalDef3 evaluates a black-box function under the implicit iteration
// semantics of Def. 3: wrap negative mismatches into singletons, build the
// generalized cross product of the iterated inputs, then map the function
// over the structure at depth l = Σ max(δ_i, 0).
func EvalDef3(fn func(args []value.Value) (value.Value, error), inputs []value.Value, deltas []int) (value.Value, error) {
	if len(inputs) != len(deltas) {
		return value.Value{}, fmt.Errorf("iter: %d inputs for %d deltas", len(inputs), len(deltas))
	}
	pairs := make([]Pair, len(inputs))
	l := 0
	for i, v := range inputs {
		d := deltas[i]
		if d < 0 {
			v = value.Wrap(v, -d)
			d = 0
		}
		pairs[i] = Pair{V: v, D: d}
		l += d
	}
	cross, err := CrossDef2(pairs)
	if err != nil {
		return value.Value{}, err
	}
	return mapAtDepth(cross, l, fn)
}

// mapAtDepth applies fn to the argument tuples sitting at exactly depth l in
// the cross-product structure, preserving the wrapper nesting above them —
// the "(map (eval_{l-1} P) ...)" cascade of Def. 3.
func mapAtDepth(v value.Value, l int, fn func(args []value.Value) (value.Value, error)) (value.Value, error) {
	if l == 0 {
		return fn(v.Elems())
	}
	if !v.IsList() {
		return value.Value{}, fmt.Errorf("iter: structure too shallow while mapping at depth %d", l)
	}
	elems := make([]value.Value, v.Len())
	for j, e := range v.Elems() {
		r, err := mapAtDepth(e, l-1, fn)
		if err != nil {
			return value.Value{}, err
		}
		elems[j] = r
	}
	return value.List(elems...), nil
}

// Eval runs a black-box function through a Plan: it enumerates the
// activations, applies fn to each, and assembles the wrapped output. This is
// the engine-facing counterpart of EvalDef3 and must agree with it on every
// input (verified by property tests).
func (p *Plan) Eval(fn func(args []value.Value) (value.Value, error), inputs []value.Value) (value.Value, error) {
	acts, err := p.Enumerate(inputs)
	if err != nil {
		return value.Value{}, err
	}
	results := make([]value.Value, len(acts))
	for i, act := range acts {
		r, err := fn(act.Args)
		if err != nil {
			return value.Value{}, err
		}
		results[i] = r
	}
	return p.Assemble(inputs, results)
}
