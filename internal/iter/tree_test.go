package iter

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// TestTreeMixedExpression checks the (X0 ⊗ X1) ⊙ X2 combinator: inputs 0
// and 1 cross (producing a 2-deep structure), and input 2 zips against that
// structure's index space at its own depth.
func TestTreeMixedExpression(t *testing.T) {
	// a, b iterate (δ=1 each); c zips with the cross structure at depth 2.
	a := value.Strs("a0", "a1")
	b := value.Strs("b0", "b1", "b2")
	c := value.List(value.Strs("c00", "c01", "c02"), value.Strs("c10", "c11", "c12"))

	tree := DotNode(CrossNode(LeafNode(0), LeafNode(1)), LeafNode(2))
	plan, err := NewPlanTree([]int{1, 1, 2}, tree)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IterationDepth() != 2 {
		t.Fatalf("m = %d, want 2", plan.IterationDepth())
	}
	// Offsets: a at 0, b at 1 (cross), c shares the dot segment at 0.
	offs := plan.Offsets()
	if offs[0] != 0 || offs[1] != 1 || offs[2] != 0 {
		t.Fatalf("offsets = %v", offs)
	}

	acts, err := plan.Enumerate([]value.Value{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 6 {
		t.Fatalf("activations = %d, want 6", len(acts))
	}
	for _, act := range acts {
		q := act.OutputIndex
		if !act.InputIndices[0].Equal(value.Ix(q[0])) {
			t.Errorf("a index = %v at q=%v", act.InputIndices[0], q)
		}
		if !act.InputIndices[1].Equal(value.Ix(q[1])) {
			t.Errorf("b index = %v at q=%v", act.InputIndices[1], q)
		}
		if !act.InputIndices[2].Equal(q) {
			t.Errorf("c index = %v, want shared %v", act.InputIndices[2], q)
		}
		// The zipped argument is the matching element of c.
		cs, _ := act.Args[2].StringVal()
		want := "c" + itoa(q[0]) + itoa(q[1])
		if cs != want {
			t.Errorf("c arg = %q at q=%v, want %q", cs, q, want)
		}
	}

	out, err := plan.Eval(func(args []value.Value) (value.Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i], _ = a.StringVal()
		}
		return value.Str(strings.Join(parts, "+")), nil
	}, []value.Value{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if out.Depth() != 2 || out.Len() != 2 || out.Elems()[0].Len() != 3 {
		t.Fatalf("output shape = %s", out)
	}
	s, _ := out.MustAt(value.Ix(1, 2)).StringVal()
	if s != "a1+b2+c12" {
		t.Errorf("out[1,2] = %q", s)
	}
}

func itoa(n int) string { return string(rune('0' + n)) }

// TestTreeDotShapeMismatch: the zipped side must expose every shared index.
func TestTreeDotShapeMismatch(t *testing.T) {
	tree := DotNode(CrossNode(LeafNode(0), LeafNode(1)), LeafNode(2))
	plan, err := NewPlanTree([]int{1, 1, 2}, tree)
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.Enumerate([]value.Value{
		value.Strs("a0", "a1"),
		value.Strs("b0"),
		value.List(value.Strs("c00")), // missing [1,0]
	})
	if err == nil {
		t.Error("mismatched dot operand accepted")
	}
}

// TestTreeCrossOfDots: (X0 ⊙ X1) ⊗ X2 — zip two lists, cross the result
// with a third.
func TestTreeCrossOfDots(t *testing.T) {
	tree := CrossNode(DotNode(LeafNode(0), LeafNode(1)), LeafNode(2))
	plan, err := NewPlanTree([]int{1, 1, 1}, tree)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IterationDepth() != 2 {
		t.Fatalf("m = %d, want 2", plan.IterationDepth())
	}
	offs := plan.Offsets()
	if offs[0] != 0 || offs[1] != 0 || offs[2] != 1 {
		t.Fatalf("offsets = %v", offs)
	}
	acts, err := plan.Enumerate([]value.Value{
		value.Strs("x0", "x1"),
		value.Strs("y0", "y1"),
		value.Strs("z0", "z1", "z2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 6 {
		t.Fatalf("activations = %d, want 6", len(acts))
	}
	for _, act := range acts {
		q := act.OutputIndex
		if !act.InputIndices[0].Equal(value.Ix(q[0])) || !act.InputIndices[1].Equal(value.Ix(q[0])) {
			t.Errorf("zip pair indices = %v %v at q=%v", act.InputIndices[0], act.InputIndices[1], q)
		}
		if !act.InputIndices[2].Equal(value.Ix(q[1])) {
			t.Errorf("crossed index = %v at q=%v", act.InputIndices[2], q)
		}
	}
}

func TestTreeValidation(t *testing.T) {
	cases := []struct {
		tree  *Node
		arity int
	}{
		{CrossNode(LeafNode(0)), 2},                           // missing leaf 1
		{CrossNode(LeafNode(0), LeafNode(0)), 1},              // duplicate leaf
		{CrossNode(LeafNode(0), LeafNode(5)), 2},              // out of range
		{CrossNode(LeafNode(0), CrossNode()), 1},              // empty inner node
		{CrossNode(LeafNode(0), nil), 2},                      // nil child
		{DotNode(LeafNode(-1)), 1},                            // negative leaf
		{CrossNode(LeafNode(0), LeafNode(1), LeafNode(1)), 2}, // dup again
	}
	for i, c := range cases {
		if _, err := NewPlanTree(make([]int, c.arity), c.tree); err == nil {
			t.Errorf("case %d: invalid tree accepted", i)
		}
	}
	// Valid nested tree.
	if _, err := NewPlanTree([]int{1, 0, 2}, CrossNode(DotNode(LeafNode(1), LeafNode(2)), LeafNode(0))); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
}

func TestTreeProjectMatchesEnumeration(t *testing.T) {
	// Property: for every activation, Project recovers exactly the recorded
	// per-input fragments from q — the generalized Prop. 1.
	trees := []struct {
		deltas []int
		tree   *Node
	}{
		{[]int{1, 1, 2}, DotNode(CrossNode(LeafNode(0), LeafNode(1)), LeafNode(2))},
		{[]int{1, 1, 1}, CrossNode(DotNode(LeafNode(0), LeafNode(1)), LeafNode(2))},
		{[]int{2, 1}, CrossNode(LeafNode(0), LeafNode(1))},
		{[]int{1, 1}, DotNode(LeafNode(0), LeafNode(1))},
		{[]int{0, 1, -1}, CrossNode(LeafNode(2), DotNode(LeafNode(0), LeafNode(1)))},
	}
	inputsFor := func(deltas []int) []value.Value {
		out := make([]value.Value, len(deltas))
		for i, d := range deltas {
			depth := d
			if depth < 0 {
				depth = 0
			}
			out[i] = nested(depth, 2)
		}
		return out
	}
	for ti, cfg := range trees {
		plan, err := NewPlanTree(cfg.deltas, cfg.tree)
		if err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
		acts, err := plan.Enumerate(inputsFor(cfg.deltas))
		if err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
		if len(acts) == 0 {
			t.Fatalf("tree %d: no activations", ti)
		}
		for _, act := range acts {
			for i := range cfg.deltas {
				frag, exact := plan.Project(act.OutputIndex, i)
				if !exact {
					t.Errorf("tree %d input %d: inexact projection of full q", ti, i)
				}
				if !frag.Equal(act.InputIndices[i]) {
					t.Errorf("tree %d input %d: Project(%v) = %v, recorded %v",
						ti, i, act.OutputIndex, frag, act.InputIndices[i])
				}
			}
		}
	}
}

// nested builds a uniform value of the given depth and fan-out.
func nested(depth, fan int) value.Value {
	if depth == 0 {
		return value.Str("x")
	}
	elems := make([]value.Value, fan)
	for i := range elems {
		elems[i] = nested(depth-1, fan)
	}
	return value.List(elems...)
}
