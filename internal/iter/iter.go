// Package iter implements the implicit iteration semantics of the Taverna
// dataflow model as formalized in §3.2 of the paper: the generalized cross
// product ⊗ over (value, depth-mismatch) pairs (Def. 2), the recursive
// evaluation function eval_l (Def. 3), and the enumeration of processor
// activations whose indices obey the index projection property (Prop. 1:
// the output index q is the concatenation p1···pn of the per-input indices,
// with |pi| = max(δs(Xi), 0)).
//
// Two independent implementations are provided: Plan.Enumerate/Assemble,
// used by the execution engine, and EvalDef3, a literal transcription of
// Def. 2 + Def. 3 used as a cross-check in property tests.
//
// Beyond the flat cross product, the package implements the full combinator
// model of footnote 7: the dot ("zip") product and arbitrary expressions
// combining cross and dot (see Node). All plans — flat or tree-shaped —
// share one implementation over materialized iteration spaces.
package iter

import (
	"fmt"

	"repro/internal/value"
)

// Strategy selects how a flat plan combines its iterated inputs.
type Strategy uint8

const (
	// Cross combines iterated inputs with the generalized cross product of
	// Def. 2 (the Taverna default).
	Cross Strategy = iota
	// Dot combines iterated inputs pairwise ("zip", footnote 7). All
	// iterated inputs must expose matching index spaces.
	Dot
)

func (s Strategy) String() string {
	switch s {
	case Cross:
		return "cross"
	case Dot:
		return "dot"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Activation is one elementary execution of a processor within an implicit
// iteration: the per-input element indices p_i, the element values passed to
// the black box, and the output index q at which this activation's results
// are placed within the wrapped output collections.
type Activation struct {
	InputIndices []value.Index
	Args         []value.Value
	OutputIndex  value.Index
}

// Plan captures the statically-determined iteration behaviour of one
// processor: the signed depth mismatches δs(Xi) of its input ports in
// declaration order, and the combinator expression over them.
type Plan struct {
	deltas  []int // signed δs per input
	eff     []int // max(δs, 0) per input
	offsets []int // per-input fragment offset within q
	total   int   // iteration depth m(P) = |q|
	tree    *Node
}

// NewPlan builds a flat iteration plan: one cross (or dot) combinator over
// all inputs in declaration order.
func NewPlan(deltas []int, strat Strategy) *Plan {
	kids := make([]*Node, len(deltas))
	for i := range deltas {
		kids[i] = LeafNode(i)
	}
	root := &Node{Dot: strat == Dot, Kids: kids}
	p, err := NewPlanTree(deltas, root)
	if err != nil {
		// Flat trees over n inputs are always well-formed.
		panic(err)
	}
	return p
}

// NewPlanTree builds a plan from an explicit combinator expression. The
// tree's leaves must cover every input position exactly once. For a plan
// over zero inputs the tree is ignored.
func NewPlanTree(deltas []int, tree *Node) (*Plan, error) {
	if len(deltas) > 0 {
		if err := validateTree(tree, len(deltas)); err != nil {
			return nil, err
		}
	}
	p := &Plan{
		deltas:  append([]int(nil), deltas...),
		eff:     make([]int, len(deltas)),
		offsets: make([]int, len(deltas)),
		tree:    tree,
	}
	for i, d := range deltas {
		if d > 0 {
			p.eff[i] = d
		}
	}
	p.total = treeDepth(tree, p.eff)
	treeOffsets(tree, p.eff, 0, p.offsets)
	return p, nil
}

// Deltas returns the signed per-input mismatches.
func (p *Plan) Deltas() []int { return p.deltas }

// IterationDepth returns m(P), the number of wrapper levels (and the length
// of every activation's output index q).
func (p *Plan) IterationDepth() int { return p.total }

// Offsets returns, per input port, the offset of that port's fragment
// within an output index q.
func (p *Plan) Offsets() []int { return p.offsets }

// Tree returns the plan's combinator expression.
func (p *Plan) Tree() *Node { return p.tree }

// Project implements the index projection rule (Def. 4, generalized per
// DESIGN.md §3): it carves the fragment of an output index q belonging to
// input port i — the slice q[o_i : o_i+δ_i], where the offsets o_i are
// determined statically by the combinator tree (advancing through cross
// nodes, shared under dot nodes). Fragments extending past the end of a
// (deliberately short, i.e. coarse) q are truncated; inputs with
// non-positive mismatch yield the empty index.
//
// The second return value reports whether the fragment is exact, i.e. q was
// long enough to cover the whole fragment; callers use this to signal
// granularity loss.
func (p *Plan) Project(q value.Index, i int) (value.Index, bool) {
	d := p.eff[i]
	if d == 0 {
		return value.Index{}, true
	}
	frag := q.Slice(p.offsets[i], p.offsets[i]+d)
	return frag, len(frag) == d
}

// wrapNegative promotes inputs with negative mismatch by nesting them in
// singletons (§3.2), leaving other inputs untouched.
func (p *Plan) wrapNegative(inputs []value.Value) []value.Value {
	out := make([]value.Value, len(inputs))
	for i, v := range inputs {
		if p.deltas[i] < 0 {
			out[i] = value.Wrap(v, -p.deltas[i])
		} else {
			out[i] = v
		}
	}
	return out
}

// Enumerate lists the activations of a processor invocation on the given
// input values (one per input port, in declaration order), in lexicographic
// output-index order. It returns an error if an input value is too shallow
// to support its mismatch, or if a dot combinator's operands expose
// mismatched index spaces.
func (p *Plan) Enumerate(inputs []value.Value) ([]Activation, error) {
	space, wrapped, err := p.space(inputs)
	if err != nil {
		return nil, err
	}
	var acts []Activation
	var walk func(s *ispace, path value.Index) error
	walk = func(s *ispace, path value.Index) error {
		if s.isLeaf {
			act := Activation{
				InputIndices: make([]value.Index, len(p.deltas)),
				Args:         make([]value.Value, len(p.deltas)),
				OutputIndex:  path.Clone(),
			}
			for i := range p.deltas {
				frag := s.assign[i]
				if frag == nil {
					frag = value.Index{}
				}
				act.InputIndices[i] = frag
				arg, err := wrapped[i].At(frag)
				if err != nil {
					return fmt.Errorf("iter: input %d: %w", i, err)
				}
				act.Args[i] = arg
			}
			acts = append(acts, act)
			return nil
		}
		for j, k := range s.kids {
			if err := walk(k, append(path, j)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(space, nil); err != nil {
		return nil, err
	}
	return acts, nil
}

// space materializes the iteration space for concrete inputs, returning it
// alongside the negative-mismatch-wrapped input values.
func (p *Plan) space(inputs []value.Value) (*ispace, []value.Value, error) {
	if len(inputs) != len(p.deltas) {
		return nil, nil, fmt.Errorf("iter: %d inputs for plan over %d ports", len(inputs), len(p.deltas))
	}
	wrapped := p.wrapNegative(inputs)
	if len(p.deltas) == 0 {
		return &ispace{isLeaf: true}, wrapped, nil
	}
	space, err := p.buildSpace(p.tree, wrapped)
	if err != nil {
		return nil, nil, err
	}
	return space, wrapped, nil
}

// Assemble builds the wrapped output collection for one output port from the
// per-activation results, given in the order produced by Enumerate. The
// nesting structure mirrors the iteration space: m(P) wrapper levels whose
// shape follows the combinator expression over the inputs' index spaces.
func (p *Plan) Assemble(inputs []value.Value, results []value.Value) (value.Value, error) {
	space, _, err := p.space(inputs)
	if err != nil {
		return value.Value{}, err
	}
	next := 0
	var build func(s *ispace) (value.Value, error)
	build = func(s *ispace) (value.Value, error) {
		if s.isLeaf {
			if next >= len(results) {
				return value.Value{}, fmt.Errorf("iter: not enough activation results: have %d", len(results))
			}
			v := results[next]
			next++
			return v, nil
		}
		elems := make([]value.Value, len(s.kids))
		for j, k := range s.kids {
			v, err := build(k)
			if err != nil {
				return value.Value{}, err
			}
			elems[j] = v
		}
		return value.List(elems...), nil
	}
	out, err := build(space)
	if err != nil {
		return value.Value{}, err
	}
	if next != len(results) {
		return value.Value{}, fmt.Errorf("iter: %d unused activation results", len(results)-next)
	}
	return out, nil
}
