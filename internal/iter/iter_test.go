package iter

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/value"
)

// concatArgs is a simple black box joining atom renderings with "+".
func concatArgs(args []value.Value) (value.Value, error) {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = value.Encode(a)
	}
	return value.Str(strings.Join(parts, "+")), nil
}

func TestEvalSingleInputPaperExample(t *testing.T) {
	// §3.2: v = [[a, b]], δs(X) = 2, P x = "x isNice".
	isNice := func(args []value.Value) (value.Value, error) {
		s, _ := args[0].StringVal()
		return value.Str(s + " isNice"), nil
	}
	v := value.List(value.Strs("a", "b"))
	plan := NewPlan([]int{2}, Cross)
	got, err := plan.Eval(isNice, []value.Value{v})
	if err != nil {
		t.Fatal(err)
	}
	want := value.List(value.Strs("a isNice", "b isNice"))
	if !value.Equal(got, want) {
		t.Errorf("eval_2 = %s, want %s", got, want)
	}
}

func TestEvalFig3Example(t *testing.T) {
	// §3.2 worked example: P with inputs a (δ=1), c (δ=0), b (δ=1):
	// result is [[y_11..y_1m]..[y_n1..y_nm]] with y_ij = P(a_i, c, b_j).
	a := value.Strs("a1", "a2", "a3")
	c := value.Strs("c")
	b := value.Strs("b1", "b2")
	plan := NewPlan([]int{1, 0, 1}, Cross)
	got, err := plan.Eval(concatArgs, []value.Value{a, c, b})
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth() != 2 || got.Len() != 3 {
		t.Fatalf("shape = %s", got)
	}
	y11 := got.MustAt(value.Ix(0, 0))
	s, _ := y11.StringVal()
	if s != `"a1"+["c"]+"b1"` {
		t.Errorf("y11 = %q", s)
	}
	y32 := got.MustAt(value.Ix(2, 1))
	s, _ = y32.StringVal()
	if s != `"a3"+["c"]+"b2"` {
		t.Errorf("y32 = %q", s)
	}
}

func TestEnumerateIndicesProp1(t *testing.T) {
	// Prop. 1: q = p1···pn with |pi| = max(δs(Xi), 0).
	a := value.Strs("a1", "a2")
	c := value.Str("c")
	b := value.List(value.Strs("x", "y"), value.Strs("z"))
	plan := NewPlan([]int{1, 0, 2}, Cross)
	acts, err := plan.Enumerate([]value.Value{a, c, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2*3 {
		t.Fatalf("got %d activations, want 6", len(acts))
	}
	for _, act := range acts {
		if len(act.InputIndices[0]) != 1 || len(act.InputIndices[1]) != 0 || len(act.InputIndices[2]) != 2 {
			t.Errorf("index lengths: %v", act.InputIndices)
		}
		want := act.InputIndices[0].Concat(act.InputIndices[1]).Concat(act.InputIndices[2])
		if !act.OutputIndex.Equal(want) {
			t.Errorf("q = %v, want concat %v", act.OutputIndex, want)
		}
		// Args must equal the addressed elements.
		for i, in := range []value.Value{a, c, b} {
			el, err := in.At(act.InputIndices[i])
			if err != nil {
				t.Fatalf("activation index unresolvable: %v", err)
			}
			if !value.Equal(el, act.Args[i]) {
				t.Errorf("arg %d = %s, want %s", i, act.Args[i], el)
			}
		}
	}
	// Lexicographic q order.
	for i := 1; i < len(acts); i++ {
		if acts[i-1].OutputIndex.Compare(acts[i].OutputIndex) >= 0 {
			t.Errorf("activations out of order: %v then %v", acts[i-1].OutputIndex, acts[i].OutputIndex)
		}
	}
}

func TestNegativeMismatchWrapping(t *testing.T) {
	// δ = -2: the atom is promoted to a 2-deep singleton; no iteration.
	plan := NewPlan([]int{-2}, Cross)
	acts, err := plan.Enumerate([]value.Value{value.Str("x")})
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 1 {
		t.Fatalf("got %d activations", len(acts))
	}
	if !value.Equal(acts[0].Args[0], value.List(value.List(value.Str("x")))) {
		t.Errorf("arg = %s", acts[0].Args[0])
	}
	if !acts[0].OutputIndex.Equal(value.EmptyIndex) || !acts[0].InputIndices[0].Equal(value.EmptyIndex) {
		t.Errorf("indices = %v / %v", acts[0].OutputIndex, acts[0].InputIndices[0])
	}
}

func TestEmptyListIteration(t *testing.T) {
	plan := NewPlan([]int{1}, Cross)
	acts, err := plan.Enumerate([]value.Value{value.List()})
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 0 {
		t.Fatalf("got %d activations for empty list", len(acts))
	}
	out, err := plan.Assemble([]value.Value{value.List()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(out, value.List()) {
		t.Errorf("assembled = %s, want []", out)
	}

	// Two iterated inputs, second empty: shape is [[],[]].
	plan2 := NewPlan([]int{1, 1}, Cross)
	out2, err := plan2.Eval(concatArgs, []value.Value{value.Strs("a", "b"), value.List()})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(out2, value.List(value.List(), value.List())) {
		t.Errorf("assembled = %s, want [[],[]]", out2)
	}
}

func TestRaggedIteration(t *testing.T) {
	// Ragged nested input: index spaces follow the actual shape.
	v := value.List(value.Strs("a"), value.Strs("b", "c"), value.List())
	plan := NewPlan([]int{2}, Cross)
	acts, err := plan.Enumerate([]value.Value{v})
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 3 {
		t.Fatalf("got %d activations, want 3", len(acts))
	}
	out, err := plan.Eval(concatArgs, []value.Value{v})
	if err != nil {
		t.Fatal(err)
	}
	if out.Depth() != 2 || out.Len() != 3 || out.Elems()[2].Len() != 0 {
		t.Errorf("ragged output shape = %s", out)
	}
}

func TestTooShallowInput(t *testing.T) {
	plan := NewPlan([]int{2}, Cross)
	if _, err := plan.Enumerate([]value.Value{value.Strs("a")}); err == nil {
		t.Error("too-shallow input accepted")
	}
	if _, err := plan.Enumerate([]value.Value{value.Str("x")}); err == nil {
		t.Error("atom accepted for mismatch 2")
	}
}

func TestArityMismatch(t *testing.T) {
	plan := NewPlan([]int{1}, Cross)
	if _, err := plan.Enumerate([]value.Value{value.Strs("a"), value.Strs("b")}); err == nil {
		t.Error("wrong arity accepted by Enumerate")
	}
	if _, err := plan.Assemble([]value.Value{value.Strs("a"), value.Strs("b")}, nil); err == nil {
		t.Error("wrong arity accepted by Assemble")
	}
}

func TestAssembleResultCountChecks(t *testing.T) {
	plan := NewPlan([]int{1}, Cross)
	in := []value.Value{value.Strs("a", "b")}
	if _, err := plan.Assemble(in, []value.Value{value.Str("r")}); err == nil {
		t.Error("missing results accepted")
	}
	if _, err := plan.Assemble(in, []value.Value{value.Str("r"), value.Str("s"), value.Str("t")}); err == nil {
		t.Error("excess results accepted")
	}
}

func TestDotStrategy(t *testing.T) {
	a := value.Strs("a1", "a2", "a3")
	b := value.Strs("b1", "b2", "b3")
	plan := NewPlan([]int{1, 1}, Dot)
	if plan.IterationDepth() != 1 {
		t.Fatalf("dot iteration depth = %d, want 1", plan.IterationDepth())
	}
	acts, err := plan.Enumerate([]value.Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 3 {
		t.Fatalf("dot produced %d activations, want 3", len(acts))
	}
	for i, act := range acts {
		if !act.OutputIndex.Equal(value.Ix(i)) {
			t.Errorf("q = %v, want [%d]", act.OutputIndex, i)
		}
		if !act.InputIndices[0].Equal(value.Ix(i)) || !act.InputIndices[1].Equal(value.Ix(i)) {
			t.Errorf("shared indices = %v", act.InputIndices)
		}
	}
	out, err := plan.Eval(concatArgs, []value.Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if out.Depth() != 1 || out.Len() != 3 {
		t.Errorf("dot output = %s", out)
	}
	s, _ := out.Elems()[1].StringVal()
	if s != `"a2"+"b2"` {
		t.Errorf("dot element = %q", s)
	}
}

func TestDotStrategyMixedDepths(t *testing.T) {
	// One input iterated, one passed whole: dot behaves like a map.
	a := value.Strs("a1", "a2")
	c := value.Str("c")
	plan := NewPlan([]int{1, 0}, Dot)
	out, err := plan.Eval(concatArgs, []value.Value{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("dot map output = %s", out)
	}
}

func TestDotStrategyShapeMismatch(t *testing.T) {
	plan := NewPlan([]int{1, 1}, Dot)
	_, err := plan.Enumerate([]value.Value{value.Strs("a", "b"), value.Strs("x")})
	if err == nil {
		t.Error("dot accepted mismatched lengths")
	}
}

func TestProject(t *testing.T) {
	plan := NewPlan([]int{1, 0, 2}, Cross)
	q := value.Ix(3, 7, 9)
	p0, exact := plan.Project(q, 0)
	if !p0.Equal(value.Ix(3)) || !exact {
		t.Errorf("Project 0 = %v, %v", p0, exact)
	}
	p1, exact := plan.Project(q, 1)
	if !p1.Equal(value.EmptyIndex) || !exact {
		t.Errorf("Project 1 = %v, %v", p1, exact)
	}
	p2, exact := plan.Project(q, 2)
	if !p2.Equal(value.Ix(7, 9)) || !exact {
		t.Errorf("Project 2 = %v, %v", p2, exact)
	}
	// Short (coarse) query index: fragments truncate, exactness reported.
	p2, exact = plan.Project(value.Ix(3, 7), 2)
	if !p2.Equal(value.Ix(7)) || exact {
		t.Errorf("Project short = %v, exact=%v", p2, exact)
	}
	p2, exact = plan.Project(value.Ix(3), 2)
	if len(p2) != 0 || exact {
		t.Errorf("Project beyond = %v, exact=%v", p2, exact)
	}
	// Dot: every iterated input shares the index.
	dot := NewPlan([]int{1, 1}, Dot)
	d0, _ := dot.Project(value.Ix(5), 0)
	d1, _ := dot.Project(value.Ix(5), 1)
	if !d0.Equal(value.Ix(5)) || !d1.Equal(value.Ix(5)) {
		t.Errorf("dot projections = %v, %v", d0, d1)
	}
}

func TestCrossDef2Binary(t *testing.T) {
	// Def. 2, top case: both operands iterated.
	v := value.Strs("v1", "v2")
	w := value.Strs("w1", "w2", "w3")
	got, err := CrossDef2([]Pair{{v, 1}, {w, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Depth() != 3 || got.Len() != 2 || got.Elems()[0].Len() != 3 {
		t.Fatalf("cross shape = %s", got)
	}
	tup := got.MustAt(value.Ix(1, 2))
	if tup.Len() != 2 {
		t.Fatalf("tuple = %s", tup)
	}
	s0, _ := tup.Elems()[0].StringVal()
	s1, _ := tup.Elems()[1].StringVal()
	if s0 != "v2" || s1 != "w3" {
		t.Errorf("tuple = (%s,%s)", s0, s1)
	}

	// Second case: only the first operand iterated.
	got, err = CrossDef2([]Pair{{v, 1}, {w, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("shape = %s", got)
	}
	tup = got.MustAt(value.Ix(0))
	if !value.Equal(tup.Elems()[1], w) {
		t.Errorf("whole list not passed: %s", tup)
	}

	// Fourth case: no iteration, a bare tuple.
	got, err = CrossDef2([]Pair{{v, 0}, {w, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || !value.Equal(got.Elems()[0], v) {
		t.Errorf("bare tuple = %s", got)
	}
}

func TestEvalAgainstDef3Random(t *testing.T) {
	// Property: the engine-facing Plan.Eval agrees with the literal Def. 2/3
	// transcription on random shapes and mismatches.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(3)
		deltas := make([]int, n)
		inputs := make([]value.Value, n)
		for i := range deltas {
			deltas[i] = rng.Intn(4) - 1 // -1..2
			depth := deltas[i]
			if depth < 0 {
				depth = 0
			}
			depth += rng.Intn(2) // value may be deeper than the mismatch
			inputs[i] = randomNested(rng, depth)
		}
		plan := NewPlan(deltas, Cross)
		got, errA := plan.Eval(concatArgs, inputs)
		want, errB := EvalDef3(concatArgs, inputs, deltas)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v (deltas %v inputs %v)", trial, errA, errB, deltas, inputs)
		}
		if errA != nil {
			continue
		}
		if !value.Equal(got, want) {
			t.Fatalf("trial %d: Eval=%s Def3=%s (deltas %v inputs %v)", trial, got, want, deltas, inputs)
		}
	}
}

func TestEvalOutputDepthInvariant(t *testing.T) {
	// depth(output) = Σ max(δ,0) when the black box returns atoms.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3)
		deltas := make([]int, n)
		inputs := make([]value.Value, n)
		m := 0
		for i := range deltas {
			deltas[i] = rng.Intn(3)
			inputs[i] = randomNonEmptyNested(rng, deltas[i]+rng.Intn(2))
			m += deltas[i]
		}
		plan := NewPlan(deltas, Cross)
		out, err := plan.Eval(concatArgs, inputs)
		if err != nil {
			t.Fatalf("trial %d: %v (deltas %v inputs %v)", trial, err, deltas, inputs)
		}
		if m == 0 {
			if out.IsList() && out.Depth() != 0 {
				t.Fatalf("trial %d: expected atom, got %s", trial, out)
			}
			continue
		}
		if out.Depth() != m {
			t.Fatalf("trial %d: output depth %d, want %d (out %s)", trial, out.Depth(), m, out)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if Cross.String() != "cross" || Dot.String() != "dot" {
		t.Error("Strategy.String mismatch")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy rendering")
	}
}

// randomNested builds a random value of exactly the given depth (possibly
// with empty sublists).
func randomNested(rng *rand.Rand, depth int) value.Value {
	if depth == 0 {
		return value.Str(fmt.Sprintf("x%d", rng.Intn(100)))
	}
	n := rng.Intn(4)
	elems := make([]value.Value, n)
	for i := range elems {
		elems[i] = randomNested(rng, depth-1)
	}
	return value.List(elems...)
}

// randomNonEmptyNested is like randomNested but every list is non-empty, so
// iteration spaces are non-trivial and depth is well-defined throughout.
func randomNonEmptyNested(rng *rand.Rand, depth int) value.Value {
	if depth == 0 {
		return value.Str(fmt.Sprintf("x%d", rng.Intn(100)))
	}
	n := 1 + rng.Intn(3)
	elems := make([]value.Value, n)
	for i := range elems {
		elems[i] = randomNonEmptyNested(rng, depth-1)
	}
	return value.List(elems...)
}
