package iter

import (
	"fmt"

	"repro/internal/value"
)

// Node is a combinator-expression tree over a processor's input ports —
// the "complex expressions" of the paper's footnote 7. Leaves name input
// ports by position; internal nodes combine their children with the cross
// product (iterate independently, indices concatenate) or the dot product
// (iterate in lockstep, indices shared). The flat plans built by NewPlan are
// the two degenerate trees: one cross (or dot) node over all ports.
//
// Tree semantics generalize Prop. 1: the output index q is structured by the
// tree — a cross node contributes the concatenation of its children's
// segments, a dot node one shared segment — so every leaf's fragment is
// still a statically-known slice q[o_i : o_i+δ_i], with offsets accumulating
// only through cross nodes. INDEXPROJ therefore inverts combinator
// expressions exactly as it inverts the flat cross product.
type Node struct {
	Leaf int // input port position; valid when Kids is nil
	Dot  bool
	Kids []*Node
}

// LeafNode builds a leaf for input port position i.
func LeafNode(i int) *Node { return &Node{Leaf: i} }

// CrossNode combines children with the cross product.
func CrossNode(kids ...*Node) *Node { return &Node{Kids: kids} }

// DotNode combines children with the dot ("zip") product.
func DotNode(kids ...*Node) *Node { return &Node{Dot: true, Kids: kids} }

func (n *Node) isLeaf() bool { return n.Kids == nil }

// validateTree checks the tree's leaves cover exactly positions 0..arity-1,
// each once, and internal nodes are non-empty.
func validateTree(n *Node, arity int) error {
	seen := make([]bool, arity)
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return fmt.Errorf("iter: nil combinator node")
		}
		if n.isLeaf() {
			if n.Leaf < 0 || n.Leaf >= arity {
				return fmt.Errorf("iter: combinator leaf %d out of range [0,%d)", n.Leaf, arity)
			}
			if seen[n.Leaf] {
				return fmt.Errorf("iter: combinator uses input %d twice", n.Leaf)
			}
			seen[n.Leaf] = true
			return nil
		}
		if len(n.Kids) == 0 {
			return fmt.Errorf("iter: combinator node with no children")
		}
		for _, k := range n.Kids {
			if err := walk(k); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n); err != nil {
		return err
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("iter: combinator does not cover input %d", i)
		}
	}
	return nil
}

// treeDepth computes m(node): leaves contribute their effective mismatch,
// cross nodes the sum, dot nodes the maximum of their children.
func treeDepth(n *Node, eff []int) int {
	if n.isLeaf() {
		return eff[n.Leaf]
	}
	total := 0
	for _, k := range n.Kids {
		d := treeDepth(k, eff)
		if n.Dot {
			if d > total {
				total = d
			}
		} else {
			total += d
		}
	}
	return total
}

// treeOffsets fills, per leaf position, the offset of that leaf's fragment
// within the output index q: offsets advance through cross children; all
// children of a dot node share their parent's offset.
func treeOffsets(n *Node, eff []int, base int, out []int) {
	if n.isLeaf() {
		out[n.Leaf] = base
		return
	}
	if n.Dot {
		for _, k := range n.Kids {
			treeOffsets(k, eff, base, out)
		}
		return
	}
	off := base
	for _, k := range n.Kids {
		treeOffsets(k, eff, off, out)
		off += treeDepth(k, eff)
	}
}

// ispace is the materialized iteration space of a (sub)tree on concrete
// inputs: a nested structure mirroring the output wrapper shape, whose
// leaves carry the per-input index assignments of one activation.
type ispace struct {
	kids   []*ispace
	isLeaf bool
	// assign holds, for every input port of the plan, the index fragment
	// selected at this activation (nil = not constrained by this subtree).
	assign []value.Index
}

// leafSpace mirrors the structure of v down to the given depth; each leaf
// records the path as input i's assignment.
func leafSpace(i, arity int, v value.Value, depth int, path value.Index) (*ispace, error) {
	if depth == 0 {
		s := &ispace{isLeaf: true, assign: make([]value.Index, arity)}
		s.assign[i] = path.Clone()
		return s, nil
	}
	if !v.IsList() {
		return nil, fmt.Errorf("iter: input %d too shallow (need %d more levels)", i, depth)
	}
	s := &ispace{kids: make([]*ispace, v.Len())}
	for j, e := range v.Elems() {
		k, err := leafSpace(i, arity, e, depth-1, append(path, j))
		if err != nil {
			return nil, err
		}
		s.kids[j] = k
	}
	return s, nil
}

// graft replaces every leaf of a with a copy of b whose assignments are
// merged with the leaf's — the cross product of two spaces.
func graft(a, b *ispace) *ispace {
	if a.isLeaf {
		return mergeAssign(a.assign, b)
	}
	out := &ispace{kids: make([]*ispace, len(a.kids))}
	for j, k := range a.kids {
		out.kids[j] = graft(k, b)
	}
	return out
}

// mergeAssign deep-copies space b, merging the given assignments into every
// leaf.
func mergeAssign(assign []value.Index, b *ispace) *ispace {
	if b.isLeaf {
		merged := make([]value.Index, len(b.assign))
		for i := range merged {
			switch {
			case b.assign[i] != nil:
				merged[i] = b.assign[i]
			case assign[i] != nil:
				merged[i] = assign[i]
			}
		}
		return &ispace{isLeaf: true, assign: merged}
	}
	out := &ispace{kids: make([]*ispace, len(b.kids))}
	for j, k := range b.kids {
		out.kids[j] = mergeAssign(assign, k)
	}
	return out
}

// at returns the sub-space at index q (nil if out of range).
func (s *ispace) at(q value.Index) *ispace {
	cur := s
	for _, step := range q {
		if cur.isLeaf || step < 0 || step >= len(cur.kids) {
			return nil
		}
		cur = cur.kids[step]
	}
	return cur
}

// depth returns the uniform depth of the space (0 for a bare leaf).
func (s *ispace) depth() int {
	d := 0
	for !s.isLeaf {
		if len(s.kids) == 0 {
			return d + 1
		}
		s = s.kids[0]
		d++
	}
	return d
}

// buildSpace materializes the iteration space of a subtree.
func (p *Plan) buildSpace(n *Node, inputs []value.Value) (*ispace, error) {
	if n.isLeaf() {
		return leafSpace(n.Leaf, len(p.deltas), inputs[n.Leaf], p.eff[n.Leaf], nil)
	}
	if !n.Dot {
		// Cross: left-to-right grafting.
		out, err := p.buildSpace(n.Kids[0], inputs)
		if err != nil {
			return nil, err
		}
		for _, k := range n.Kids[1:] {
			next, err := p.buildSpace(k, inputs)
			if err != nil {
				return nil, err
			}
			out = graft(out, next)
		}
		return out, nil
	}
	// Dot: the deepest child provides the shared structure; every other
	// child must expose a matching (truncated) index space.
	spaces := make([]*ispace, len(n.Kids))
	depths := make([]int, len(n.Kids))
	maxDepth, shared := -1, -1
	for i, k := range n.Kids {
		s, err := p.buildSpace(k, inputs)
		if err != nil {
			return nil, err
		}
		spaces[i] = s
		depths[i] = treeDepth(k, p.eff)
		if depths[i] > maxDepth {
			maxDepth, shared = depths[i], i
		}
	}
	// Walk the shared structure; at each of its leaves (paths of length
	// maxDepth), merge every child's assignments at the truncated path.
	var walk func(s *ispace, path value.Index) (*ispace, error)
	walk = func(s *ispace, path value.Index) (*ispace, error) {
		if s.isLeaf {
			merged := &ispace{isLeaf: true, assign: append([]value.Index(nil), s.assign...)}
			for i, other := range spaces {
				if i == shared {
					continue
				}
				sub := other.at(path.Truncate(depths[i]))
				if sub == nil {
					return nil, fmt.Errorf("iter: dot combinator: child %d lacks index %s", i, path.Truncate(depths[i]))
				}
				// The child contributes exactly one activation at this
				// index: descend through any leaf-only structure.
				for !sub.isLeaf {
					if len(sub.kids) != 1 {
						return nil, fmt.Errorf("iter: dot combinator: child %d ambiguous at %s", i, path)
					}
					sub = sub.kids[0]
				}
				for j, a := range sub.assign {
					if a != nil {
						if merged.assign[j] != nil && !merged.assign[j].Equal(a) {
							return nil, fmt.Errorf("iter: dot combinator: conflicting assignment for input %d", j)
						}
						merged.assign[j] = a
					}
				}
			}
			return merged, nil
		}
		out := &ispace{kids: make([]*ispace, len(s.kids))}
		for j, k := range s.kids {
			merged, err := walk(k, append(path, j))
			if err != nil {
				return nil, err
			}
			out.kids[j] = merged
		}
		return out, nil
	}
	return walk(spaces[shared], nil)
}
