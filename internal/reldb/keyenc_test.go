package reldb

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeyEncodingRoundTrip(t *testing.T) {
	rows := []Row{
		{I(0), S(""), F(0), B(nil)},
		{I(-1), S("hello"), F(-1.5), B([]byte{0, 1, 2})},
		{I(math.MaxInt64), S("a\x00b"), F(math.MaxFloat64), B([]byte{0xFF, 0x00})},
		{I(math.MinInt64), S("\x00\x00"), F(-math.MaxFloat64), B([]byte{})},
		{Null, Null, Null, Null},
	}
	for _, row := range rows {
		key := EncodeKey(nil, row...)
		back, rest, err := DecodeKey(key, len(row))
		if err != nil {
			t.Fatalf("DecodeKey(%x): %v", key, err)
		}
		if len(rest) != 0 {
			t.Fatalf("DecodeKey left %d bytes", len(rest))
		}
		for i := range row {
			if !back[i].Equal(row[i]) {
				t.Errorf("column %d: %v -> %v", i, row[i], back[i])
			}
		}
	}
}

func TestKeyEncodingOrderInt(t *testing.T) {
	f := func(a, b int64) bool {
		ka := EncodeKey(nil, I(a))
		kb := EncodeKey(nil, I(b))
		return sign(bytes.Compare(ka, kb)) == sign(I(a).Compare(I(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingOrderString(t *testing.T) {
	f := func(a, b string) bool {
		ka := EncodeKey(nil, S(a))
		kb := EncodeKey(nil, S(b))
		return sign(bytes.Compare(ka, kb)) == sign(S(a).Compare(S(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestKeyEncodingOrderStringWithNuls(t *testing.T) {
	// Adversarial cases around the 0x00 escape.
	cases := []string{"", "\x00", "\x00\x00", "a", "a\x00", "a\x00b", "a\x01", "ab", "\xff"}
	for _, a := range cases {
		for _, b := range cases {
			ka := EncodeKey(nil, S(a))
			kb := EncodeKey(nil, S(b))
			if sign(bytes.Compare(ka, kb)) != sign(S(a).Compare(S(b))) {
				t.Errorf("order mismatch for %q vs %q", a, b)
			}
		}
	}
}

func TestKeyEncodingOrderFloat(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ka := EncodeKey(nil, F(a))
		kb := EncodeKey(nil, F(b))
		return sign(bytes.Compare(ka, kb)) == sign(F(a).Compare(F(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Explicit sign boundary cases.
	ordered := []float64{math.Inf(-1), -1e300, -1, -0.5, 0, 0.5, 1, 1e300, math.Inf(1)}
	for i := 1; i < len(ordered); i++ {
		ka := EncodeKey(nil, F(ordered[i-1]))
		kb := EncodeKey(nil, F(ordered[i]))
		if bytes.Compare(ka, kb) >= 0 {
			t.Errorf("float order violated at %v < %v", ordered[i-1], ordered[i])
		}
	}
}

func TestKeyEncodingCompositeOrder(t *testing.T) {
	// Composite ordering is column-major: the first column dominates.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		a := Row{I(rng.Int63n(5)), S(randKeyStr(rng)), I(rng.Int63n(5))}
		b := Row{I(rng.Int63n(5)), S(randKeyStr(rng)), I(rng.Int63n(5))}
		want := 0
		for i := range a {
			if c := a[i].Compare(b[i]); c != 0 {
				want = c
				break
			}
		}
		got := bytes.Compare(EncodeKey(nil, a...), EncodeKey(nil, b...))
		if sign(got) != want {
			t.Fatalf("composite order: %v vs %v: got %d want %d", a, b, got, want)
		}
	}
}

func TestKeyEncodingPrefixProperty(t *testing.T) {
	// encode(a) must be a byte prefix of encode(a, b).
	f := func(a string, b int64) bool {
		short := EncodeKey(nil, S(a))
		long := EncodeKey(nil, S(a), I(b))
		return bytes.HasPrefix(long, short)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestNullSortsFirst(t *testing.T) {
	for _, d := range []Datum{I(math.MinInt64), F(math.Inf(-1)), S(""), B(nil)} {
		kn := EncodeKey(nil, Null)
		kd := EncodeKey(nil, d)
		if bytes.Compare(kn, kd) >= 0 {
			t.Errorf("NULL does not sort before %v", d)
		}
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	bad := [][]byte{
		{},               // empty
		{0x01, 0x00},     // truncated int
		{0x03, 'a'},      // unterminated string
		{0x03, 0x00, 7},  // bad escape
		{0x09},           // unknown tag
		{0x02, 1, 2, 3},  // truncated float
		{0x04, 'x', 0x0}, // truncated bytes terminator
	}
	for _, key := range bad {
		if _, _, err := DecodeKey(key, 1); err == nil {
			t.Errorf("DecodeKey(%x) accepted", key)
		}
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{0x00}, []byte{0x01}},
	}
	for _, c := range cases {
		got := PrefixSuccessor(c.in)
		if !bytes.Equal(got, c.want) {
			t.Errorf("PrefixSuccessor(%x) = %x, want %x", c.in, got, c.want)
		}
	}
	// Property: prefix <= any extension < successor.
	f := func(prefix, ext []byte) bool {
		succ := PrefixSuccessor(prefix)
		if succ == nil {
			return true
		}
		full := append(append([]byte(nil), prefix...), ext...)
		return bytes.Compare(full, prefix) >= 0 && bytes.Compare(full, succ) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

func randKeyStr(rng *rand.Rand) string {
	n := rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(4)) // includes 0x00 to stress escaping
	}
	return string(b)
}
