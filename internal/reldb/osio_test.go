package reldb

import "os"

// Thin wrappers so test helpers read naturally at call sites.
func osReadFile(path string) ([]byte, error) { return os.ReadFile(path) }
func osWriteFile(p string, b []byte) error   { return os.WriteFile(p, b, 0o644) }
