package reldb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func eventsSchema() Schema {
	return Schema{
		{Name: "run", Type: TString},
		{Name: "proc", Type: TString},
		{Name: "port", Type: TString},
		{Name: "idx", Type: TString},
		{Name: "val", Type: TInt},
	}
}

func newEventsDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.CreateTable("events", eventsSchema()); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("ev_rpp", "events", "run", "proc", "port", "idx"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateTableErrors(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("t", Schema{{Name: "a", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", Schema{{Name: "a", Type: TInt}}); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.CreateTable("u", Schema{}); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := db.CreateTable("v", Schema{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := db.CreateTable("w", Schema{{Name: "", Type: TInt}}); err == nil {
		t.Error("empty column name accepted")
	}
	if err := db.DropTable("t"); err != nil {
		t.Error(err)
	}
	if err := db.DropTable("t"); err == nil {
		t.Error("double drop accepted")
	}
	names := db.TableNames()
	if len(names) != 0 {
		t.Errorf("TableNames = %v", names)
	}
}

func TestInsertSelect(t *testing.T) {
	db := newEventsDB(t)
	for r := 0; r < 3; r++ {
		for p := 0; p < 4; p++ {
			for i := 0; i < 5; i++ {
				_, err := db.Insert("events", Row{
					S(fmt.Sprintf("run%d", r)), S(fmt.Sprintf("proc%d", p)), S("out"),
					S(fmt.Sprintf("[%d]", i)), I(int64(r*100 + p*10 + i)),
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	rows, err := db.Select("events", []Pred{Eq("run", S("run1")), Eq("proc", S("proc2")), Eq("port", S("out"))}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	// Index order: idx ascending.
	for i, row := range rows {
		if row[3].Str() != fmt.Sprintf("[%d]", i) {
			t.Errorf("row %d idx = %s", i, row[3])
		}
		if row[4].Int() != int64(100+20+i) {
			t.Errorf("row %d val = %d", i, row[4].Int())
		}
	}
	// Exact lookup on the full composite key.
	rows, err = db.Select("events", []Pred{
		Eq("run", S("run0")), Eq("proc", S("proc3")), Eq("port", S("out")), Eq("idx", S("[4]")),
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][4].Int() != 34 {
		t.Fatalf("exact lookup = %v", rows)
	}
	// Limit.
	rows, err = db.Select("events", []Pred{Eq("run", S("run0"))}, 7)
	if err != nil || len(rows) != 7 {
		t.Fatalf("limited select = %d rows, err %v", len(rows), err)
	}
	// No match.
	rows, err = db.Select("events", []Pred{Eq("run", S("nope"))}, -1)
	if err != nil || len(rows) != 0 {
		t.Fatalf("no-match select = %v, %v", rows, err)
	}
	// Count.
	n, err := db.Count("events", []Pred{Eq("proc", S("proc1"))})
	if err != nil || n != 15 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	idx, full, _ := db.Stats()
	if idx == 0 {
		t.Error("no index scans recorded")
	}
	// The proc-only count cannot use the (run,proc,...) index: full scan.
	if full == 0 {
		t.Error("expected a full scan for non-prefix predicate")
	}
}

func TestSelectErrors(t *testing.T) {
	db := newEventsDB(t)
	if _, err := db.Select("nosuch", nil, -1); err == nil {
		t.Error("select from missing table accepted")
	}
	if _, err := db.Select("events", []Pred{Eq("nosuch", S("x"))}, -1); err == nil {
		t.Error("select on missing column accepted")
	}
	if _, err := db.Select("events", []Pred{Eq("run", I(3))}, -1); err == nil {
		t.Error("type-mismatched predicate accepted")
	}
	if _, err := db.Insert("nosuch", Row{}); err == nil {
		t.Error("insert into missing table accepted")
	}
	if _, err := db.Insert("events", Row{S("r")}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := db.Insert("events", Row{S("r"), S("p"), S("x"), I(1), I(1)}); err == nil {
		t.Error("type-mismatched row accepted")
	}
	if err := db.CreateIndex("i2", "nosuch", "a"); err == nil {
		t.Error("index on missing table accepted")
	}
	if err := db.CreateIndex("i2", "events", "nosuch"); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := db.CreateIndex("ev_rpp", "events", "run"); err == nil {
		t.Error("duplicate index name accepted")
	}
	if _, err := db.Count("nosuch", nil); err == nil {
		t.Error("count on missing table accepted")
	}
	if _, err := db.Delete("nosuch", nil); err == nil {
		t.Error("delete on missing table accepted")
	}
}

func TestNullHandling(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("t", Schema{{Name: "a", Type: TString}, {Name: "b", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t_a", "t", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", Row{Null, I(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", Row{S("x"), Null}); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Select("t", []Pred{Eq("a", Null)}, -1)
	if err != nil || len(rows) != 1 || rows[0][1].Int() != 1 {
		t.Fatalf("null select = %v, %v", rows, err)
	}
}

func TestDelete(t *testing.T) {
	db := newEventsDB(t)
	for i := 0; i < 10; i++ {
		run := "a"
		if i%2 == 1 {
			run = "b"
		}
		if _, err := db.Insert("events", Row{S(run), S("p"), S("o"), S(fmt.Sprintf("[%d]", i)), I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := db.Delete("events", []Pred{Eq("run", S("a"))})
	if err != nil || n != 5 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	rows, _ := db.Select("events", nil, -1)
	if len(rows) != 5 {
		t.Fatalf("rows after delete = %d", len(rows))
	}
	for _, row := range rows {
		if row[0].Str() != "b" {
			t.Errorf("surviving row from run %s", row[0])
		}
	}
	tab, _ := db.Table("events")
	if tab.NumRows() != 5 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
	// Deleting everything leaves a functional table.
	if _, err := db.Delete("events", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("events", Row{S("c"), S("p"), S("o"), S("[0]"), I(0)}); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Count("events", nil); n != 1 {
		t.Errorf("count after reinsert = %d", n)
	}
}

func TestIndexAfterData(t *testing.T) {
	// Backfill: creating an index on a populated table must index existing
	// rows.
	db := NewDB()
	if _, err := db.CreateTable("t", eventsSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Insert("t", Row{S("r"), S("p"), S("o"), S(fmt.Sprintf("[%03d]", i)), I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CreateIndex("late", "t", "idx"); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Select("t", []Pred{Eq("idx", S("[042]"))}, -1)
	if err != nil || len(rows) != 1 || rows[0][4].Int() != 42 {
		t.Fatalf("backfilled index lookup = %v, %v", rows, err)
	}
	tab, _ := db.Table("t")
	ix, ok := tab.FindIndex("late")
	if !ok || ix.tree.Len() != 100 {
		t.Fatalf("index not backfilled: %v", ok)
	}
}

func TestSelectAgainstReference(t *testing.T) {
	// Random workload cross-checked against a naive in-memory reference.
	db := newEventsDB(t)
	rng := rand.New(rand.NewSource(9))
	type refRow struct{ run, proc, port, idx string }
	var ref []refRow
	for i := 0; i < 2000; i++ {
		r := refRow{
			run:  fmt.Sprintf("r%d", rng.Intn(5)),
			proc: fmt.Sprintf("p%d", rng.Intn(10)),
			port: fmt.Sprintf("o%d", rng.Intn(3)),
			idx:  fmt.Sprintf("[%d]", rng.Intn(20)),
		}
		ref = append(ref, r)
		if _, err := db.Insert("events", Row{S(r.run), S(r.proc), S(r.port), S(r.idx), I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 200; q++ {
		run := fmt.Sprintf("r%d", rng.Intn(5))
		proc := fmt.Sprintf("p%d", rng.Intn(10))
		want := 0
		for _, r := range ref {
			if r.run == run && r.proc == proc {
				want++
			}
		}
		got, err := db.Count("events", []Pred{Eq("run", S(run)), Eq("proc", S(proc))})
		if err != nil || got != want {
			t.Fatalf("query %d: got %d want %d (err %v)", q, got, want, err)
		}
	}
}

func TestConcurrentReaders(t *testing.T) {
	db := newEventsDB(t)
	for i := 0; i < 500; i++ {
		if _, err := db.Insert("events", Row{S("r"), S("p"), S("o"), S(fmt.Sprintf("[%d]", i)), I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n, err := db.Count("events", []Pred{Eq("run", S("r"))})
				if err != nil {
					errs <- err
					return
				}
				if n < 500 {
					errs <- fmt.Errorf("reader saw %d rows", n)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Insert("events", Row{S("w"), S("p"), S("o"), S(fmt.Sprintf("[%d-%d]", g, i)), I(0)}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	db := newEventsDB(t)
	for i := 0; i < 300; i++ {
		if _, err := db.Insert("events", Row{
			S(fmt.Sprintf("run%d", i%3)), S("p"), S("o"), S(fmt.Sprintf("[%d]", i)), I(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.CreateTable("other", Schema{
		{Name: "k", Type: TString}, {Name: "f", Type: TFloat}, {Name: "blob", Type: TBytes},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("other", Row{S("x"), F(1.5), B([]byte{1, 2, 3})}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("other", Row{Null, Null, Null}); err != nil {
		t.Fatal(err)
	}
	// Tombstone one row so the snapshot contains a gap.
	if _, err := db.Delete("events", []Pred{Eq("idx", S("[5]"))}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "snap.db")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.TableNames(); len(got) != 2 || got[0] != "events" || got[1] != "other" {
		t.Fatalf("TableNames = %v", got)
	}
	n, err := back.Count("events", nil)
	if err != nil || n != 299 {
		t.Fatalf("events after reload = %d, %v", n, err)
	}
	// Index must still work after reload.
	rows, err := back.Select("events", []Pred{Eq("run", S("run1")), Eq("proc", S("p")), Eq("port", S("o")), Eq("idx", S("[7]"))}, -1)
	if err != nil || len(rows) != 1 || rows[0][4].Int() != 7 {
		t.Fatalf("indexed lookup after reload = %v, %v", rows, err)
	}
	rows, err = back.Select("other", nil, -1)
	if err != nil || len(rows) != 2 {
		t.Fatalf("other after reload = %v, %v", rows, err)
	}
	if rows[0][1].Float() != 1.5 || string(rows[0][2].Bytes()) != "\x01\x02\x03" {
		t.Errorf("other row 0 = %v", rows[0])
	}
	if !rows[1][0].IsNull() {
		t.Errorf("null not preserved: %v", rows[1])
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.db")); err == nil {
		t.Error("load of missing file accepted")
	}
	// Corrupt file: flip a byte in a valid snapshot.
	db := newEventsDB(t)
	if _, err := db.Insert("events", Row{S("r"), S("p"), S("o"), S("[0]"), I(1)}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "snap.db")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	bad := filepath.Join(dir, "bad.db")
	if err := writeFile(bad, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted load error = %v", err)
	}
	// Truncated file.
	trunc := filepath.Join(dir, "trunc.db")
	if err := writeFile(trunc, data[:8]); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc); err == nil {
		t.Error("truncated load accepted")
	}
}

func TestDatumAccessors(t *testing.T) {
	if I(5).Int() != 5 || F(2.5).Float() != 2.5 || S("x").Str() != "x" || string(B([]byte("b")).Bytes()) != "b" {
		t.Error("accessor mismatch")
	}
	if !Null.IsNull() || I(0).IsNull() {
		t.Error("IsNull mismatch")
	}
	if I(1).Equal(F(1)) || !S("a").Equal(S("a")) || !Null.Equal(Null) {
		t.Error("Equal mismatch")
	}
	if Null.Compare(I(0)) != -1 || I(1).Compare(S("a")) != -1 {
		t.Error("cross-type Compare mismatch")
	}
	for _, d := range []Datum{Null, I(-3), F(0.5), S("hi"), B([]byte{0xAB})} {
		if d.String() == "" {
			t.Errorf("empty String for %v", d.Type())
		}
	}
	if TInt.String() != "INT" || TString.String() != "TEXT" || TFloat.String() != "FLOAT" || TBytes.String() != "BLOB" {
		t.Error("ColType.String mismatch")
	}
	if ct, ok := ParseColType("VARCHAR"); !ok || ct != TString {
		t.Error("ParseColType VARCHAR")
	}
	if _, ok := ParseColType("JSONB"); ok {
		t.Error("ParseColType accepted unknown type")
	}
}

func readFile(path string) ([]byte, error)  { return osReadFile(path) }
func writeFile(path string, b []byte) error { return osWriteFile(path, b) }

func TestPrefixPredicate(t *testing.T) {
	db := newEventsDB(t)
	for i := 0; i < 30; i++ {
		if _, err := db.Insert("events", Row{
			S("r"), S("p"), S("o"), S(fmt.Sprintf("[%d,%d]", i/10, i%10)), I(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Prefix on the idx column following three equality columns: must use
	// the (run, proc, port, idx) index, not a full scan.
	_, fullBefore, _ := db.Stats()
	rows, err := db.Select("events", []Pred{
		Eq("run", S("r")), Eq("proc", S("p")), Eq("port", S("o")), Prefix("idx", "[1,"),
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("prefix select = %d rows, want 10", len(rows))
	}
	for _, row := range rows {
		if !strings.HasPrefix(row[3].Str(), "[1,") {
			t.Errorf("row idx %s does not match prefix", row[3])
		}
	}
	if _, fullAfter, _ := db.Stats(); fullAfter != fullBefore {
		t.Error("prefix query fell back to a full scan")
	}
	// Prefix-only predicate on an unindexed column: full scan, same answer.
	rows, err = db.Select("events", []Pred{Prefix("idx", "[2,")}, -1)
	if err != nil || len(rows) != 10 {
		t.Fatalf("unassisted prefix = %d rows, %v", len(rows), err)
	}
	// Empty prefix matches everything.
	n, err := db.Count("events", []Pred{Eq("run", S("r")), Eq("proc", S("p")), Eq("port", S("o")), Prefix("idx", "")})
	if err != nil || n != 30 {
		t.Fatalf("empty prefix count = %d, %v", n, err)
	}
	// Type errors.
	if _, err := db.Select("events", []Pred{Prefix("val", "x")}, -1); err == nil {
		t.Error("prefix on INT column accepted")
	}
}

func TestRangePredicates(t *testing.T) {
	db := newEventsDB(t)
	for i := 0; i < 40; i++ {
		run := "a"
		if i%4 == 0 {
			run = "b"
		}
		if _, err := db.Insert("events", Row{S(run), S("p"), S("o"), S(fmt.Sprintf("[%06d]", i)), I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Indexed range on the idx column after three equality columns.
	_, fullBefore, _ := db.Stats()
	rows, err := db.Select("events", []Pred{
		Eq("run", S("a")), Eq("proc", S("p")), Eq("port", S("o")),
		Ge("idx", S("[000010]")), Lt("idx", S("[000020]")),
	}, -1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 10; i < 20; i++ {
		if i%4 != 0 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("range rows = %d, want %d", len(rows), want)
	}
	if _, fullAfter, _ := db.Stats(); fullAfter != fullBefore {
		t.Error("indexed range query fell back to a full scan")
	}
	// Unindexed range on the int column: full scan, same answer.
	n, err := db.Count("events", []Pred{Gt("val", I(35))})
	if err != nil || n != 4 {
		t.Fatalf("Gt count = %d, %v", n, err)
	}
	n, err = db.Count("events", []Pred{Le("val", I(3))})
	if err != nil || n != 4 {
		t.Fatalf("Le count = %d, %v", n, err)
	}
	// Exclusive bounds.
	n, err = db.Count("events", []Pred{Eq("run", S("b")), Eq("proc", S("p")), Eq("port", S("o")), Gt("idx", S("[000000]")), Le("idx", S("[000008]"))})
	if err != nil || n != 2 { // [000004], [000008]
		t.Fatalf("Gt/Le count = %d, %v", n, err)
	}
	// Errors.
	if _, err := db.Select("events", []Pred{Gt("val", S("x"))}, -1); err == nil {
		t.Error("type-mismatched range accepted")
	}
	if _, err := db.Select("events", []Pred{Gt("val", Null)}, -1); err == nil {
		t.Error("NULL range accepted")
	}
	if _, err := db.Select("events", []Pred{{Col: "val", Val: I(1), Op: PredOp(99)}}, -1); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestScanIndexPrefixDirect(t *testing.T) {
	// Exercise the lower-level index scan helper used by engine internals.
	db := newEventsDB(t)
	for i := 0; i < 12; i++ {
		run := "r0"
		if i%3 == 0 {
			run = "r1"
		}
		if _, err := db.Insert("events", Row{S(run), S("p"), S("o"), S(fmt.Sprintf("[%02d]", i)), I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	tab, _ := db.Table("events")
	ix, ok := tab.FindIndex("ev_rpp")
	if !ok {
		t.Fatal("index missing")
	}
	var got []int64
	tab.scanIndexPrefix(ix, []Datum{S("r1")}, func(_ int64, row Row) bool {
		got = append(got, row[4].Int())
		return true
	})
	if len(got) != 4 {
		t.Fatalf("prefix scan = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("prefix scan out of index order")
		}
	}
	// Early stop.
	n := 0
	tab.scanIndexPrefix(ix, nil, func(int64, Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}
