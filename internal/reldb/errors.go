package reldb

import "errors"

// Sentinel errors. Callers classify failures with errors.Is instead of
// matching message strings; every site that wraps one of these uses %w so
// the chain stays inspectable through the sqlike driver and database/sql.
var (
	// ErrCorrupt marks data that fails a structural or checksum validation:
	// a snapshot with a bad magic or CRC, a write-ahead log corrupted before
	// its tail, a secondary index that disagrees with its table.
	ErrCorrupt = errors.New("reldb: corrupt data")

	// ErrClosed is returned by operations that require the write-ahead log
	// of a durable database after CloseDurable.
	ErrClosed = errors.New("reldb: database closed")

	// ErrNotDurable is returned by durability-only operations (Checkpoint)
	// on a database that was not opened with OpenDurable.
	ErrNotDurable = errors.New("reldb: database is not durable")

	// ErrIndexExists is returned when creating an index whose name is taken.
	ErrIndexExists = errors.New("reldb: index already exists")

	// ErrTableExists is returned when creating a table whose name is taken.
	ErrTableExists = errors.New("reldb: table already exists")

	// ErrNoTable is returned when an operation names a missing table.
	ErrNoTable = errors.New("reldb: no such table")
)

// IsTransient reports whether an error is worth retrying: somewhere in its
// chain an error declares itself transient via a `Transient() bool` method
// (injected faults do; permanent corruption does not).
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
