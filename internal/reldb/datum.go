// Package reldb is an embedded relational storage engine: heap-organized
// tables with typed columns, B-tree secondary indexes over order-preserving
// composite key encodings, and whole-database snapshot persistence. It is
// the storage substrate standing in for the MySQL instance used by the
// paper's implementation (§4); the SQL layer in internal/sqlike builds on
// it. The engine is safe for concurrent use: a reader/writer mutex guards
// each database.
package reldb

import (
	"fmt"
	"strconv"
)

// ColType is the type of a column.
type ColType uint8

const (
	TInt ColType = iota + 1 // 64-bit signed integer
	TFloat
	TString
	TBytes
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "TEXT"
	case TBytes:
		return "BLOB"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// ParseColType maps a SQL type name to a ColType.
func ParseColType(s string) (ColType, bool) {
	switch s {
	case "INT", "INTEGER", "BIGINT":
		return TInt, true
	case "FLOAT", "DOUBLE", "REAL":
		return TFloat, true
	case "TEXT", "VARCHAR", "STRING", "CHAR":
		return TString, true
	case "BLOB", "BYTES":
		return TBytes, true
	default:
		return 0, false
	}
}

// Datum is one column value. The zero Datum is NULL.
type Datum struct {
	t ColType // 0 means NULL
	i int64
	f float64
	s string
	b []byte
}

// Null is the NULL datum.
var Null = Datum{}

// I returns an integer datum.
func I(v int64) Datum { return Datum{t: TInt, i: v} }

// F returns a float datum.
func F(v float64) Datum { return Datum{t: TFloat, f: v} }

// S returns a string datum.
func S(v string) Datum { return Datum{t: TString, s: v} }

// B returns a bytes datum. The slice is retained.
func B(v []byte) Datum { return Datum{t: TBytes, b: v} }

// IsNull reports whether the datum is NULL.
func (d Datum) IsNull() bool { return d.t == 0 }

// Type returns the datum's type (0 for NULL).
func (d Datum) Type() ColType { return d.t }

// Int returns the integer payload (0 if not an integer).
func (d Datum) Int() int64 { return d.i }

// Float returns the float payload (0 if not a float).
func (d Datum) Float() float64 { return d.f }

// Str returns the string payload ("" if not a string).
func (d Datum) Str() string { return d.s }

// Bytes returns the bytes payload (nil if not bytes).
func (d Datum) Bytes() []byte { return d.b }

// Equal reports whether two datums have the same type and payload.
func (d Datum) Equal(o Datum) bool {
	if d.t != o.t {
		return false
	}
	switch d.t {
	case 0:
		return true
	case TInt:
		return d.i == o.i
	case TFloat:
		return d.f == o.f
	case TString:
		return d.s == o.s
	case TBytes:
		return string(d.b) == string(o.b)
	}
	return false
}

// Compare orders datums: NULL sorts before everything; mixed types order by
// type tag (matching the key encoding); same types order naturally.
func (d Datum) Compare(o Datum) int {
	if d.t != o.t {
		if d.t < o.t {
			return -1
		}
		return 1
	}
	switch d.t {
	case 0:
		return 0
	case TInt:
		switch {
		case d.i < o.i:
			return -1
		case d.i > o.i:
			return 1
		}
		return 0
	case TFloat:
		switch {
		case d.f < o.f:
			return -1
		case d.f > o.f:
			return 1
		}
		return 0
	case TString:
		switch {
		case d.s < o.s:
			return -1
		case d.s > o.s:
			return 1
		}
		return 0
	case TBytes:
		switch {
		case string(d.b) < string(o.b):
			return -1
		case string(d.b) > string(o.b):
			return 1
		}
		return 0
	}
	return 0
}

// String renders the datum for diagnostics.
func (d Datum) String() string {
	switch d.t {
	case 0:
		return "NULL"
	case TInt:
		return strconv.FormatInt(d.i, 10)
	case TFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case TString:
		return strconv.Quote(d.s)
	case TBytes:
		return fmt.Sprintf("x'%x'", d.b)
	}
	return "?"
}

// Row is one table row: one datum per column in schema order.
type Row []Datum

// Clone returns an independent copy of the row (bytes payloads are shared;
// they are treated as immutable throughout the engine).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
