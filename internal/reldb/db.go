package reldb

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// DB is an embedded relational database: a set of named tables guarded by a
// reader/writer lock for mutations, with reads served lock-free from an
// immutable published version (see dbVersion): every committed mutation
// freezes the tables it touched and atomically publishes a new version
// stamped with a monotonically increasing epoch. Readers — including
// pinned Snapshots — therefore never contend with ingest.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// Durability (optional, see OpenDurable): the write-ahead log every
	// mutation is appended to, and the directory holding log + snapshot.
	wal    *walWriter
	walDir string
	// vfs is the filesystem durability goes through (nil means the OS).
	vfs VFS
	// seq is the sequence number of the last committed WAL record; the
	// snapshot records the value it covers so replay never re-applies.
	seq uint64
	// epoch stamps the currently committed state; it advances by exactly
	// one per committed mutation, and on a durable database it is kept in
	// lockstep with seq, so every committed WAL group is stamped with the
	// epoch at which its effects became visible. Guarded by mu; the
	// published value is read through version.
	epoch uint64
	// version is the latest published immutable state. Stored under mu,
	// loaded lock-free by readers and Snapshot.
	version atomic.Pointer[dbVersion]
	// repairs records integrity repairs made while opening (rebuilt
	// indexes); see RecoveryReport.
	repairs []string
	// stats counters, exported for benchmark instrumentation; atomic
	// because read paths increment them without any lock.
	statIndexScans atomic.Int64
	statFullScans  atomic.Int64
	statRowsRead   atomic.Int64
}

// dbVersion is one immutable published state: the epoch it was committed
// at and a frozen copy of every table. Readers holding a version (directly
// or through a Snapshot) see exactly the data committed at or before its
// epoch, regardless of concurrent mutations.
type dbVersion struct {
	epoch  uint64
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	db := &DB{tables: make(map[string]*Table)}
	db.version.Store(&dbVersion{tables: map[string]*Table{}})
	return db
}

// publishLocked freezes the named dirty tables, reuses the previous frozen
// copy of every clean one, and atomically publishes the result stamped with
// the current epoch. The caller holds the write lock and has already
// committed the mutation (memory + WAL).
func (db *DB) publishLocked(dirty ...string) {
	prev := db.version.Load()
	tables := make(map[string]*Table, len(db.tables))
next:
	for name, t := range db.tables {
		for _, d := range dirty {
			if d == name {
				tables[name] = t.freeze()
				continue next
			}
		}
		if prev != nil {
			if ft, ok := prev.tables[name]; ok {
				tables[name] = ft
				continue
			}
		}
		tables[name] = t.freeze()
	}
	db.version.Store(&dbVersion{epoch: db.epoch, tables: tables})
}

// publishAllLocked freezes every table and publishes; used after bulk state
// replacement (open, replay, adopt, index repair) where per-table dirt
// tracking does not apply.
func (db *DB) publishAllLocked() {
	tables := make(map[string]*Table, len(db.tables))
	for name, t := range db.tables {
		tables[name] = t.freeze()
	}
	db.version.Store(&dbVersion{epoch: db.epoch, tables: tables})
}

// commitLocked advances the epoch and publishes the named dirty tables; it
// is the last step of every successful logged mutation.
func (db *DB) commitLocked(dirty ...string) {
	db.epoch++
	db.publishLocked(dirty...)
}

// Epoch returns the epoch of the last committed mutation. A reader that
// opens a Snapshot afterwards is guaranteed to see at least this epoch.
func (db *DB) Epoch() uint64 { return db.version.Load().epoch }

// fs returns the database's filesystem, defaulting to the OS.
func (db *DB) fs() VFS {
	if db.vfs == nil {
		return OSFS{}
	}
	return db.vfs
}

// FS exposes the filesystem the database's durability goes through, so
// sidecar files maintained next to the snapshot and WAL (e.g. the store's
// column segments) are written through the same VFS — and therefore see the
// same injected faults and crashes under test as the engine's own files.
func (db *DB) FS() VFS { return db.fs() }

// DurableDir returns the directory holding the WAL and snapshot of a durable
// database, or "" when the database is not durable.
func (db *DB) DurableDir() string { return db.walDir }

// Every logged mutation below is fault-atomic: the in-memory change is made
// first, and if the WAL append then fails the change is rolled back before
// the error is returned. A failed commit therefore leaves both the memory
// state and (after the writer's self-repair) the log exactly as they were,
// so callers may safely retry transient failures.

// CreateTable creates a table with the given schema.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	if len(schema) == 0 {
		return nil, fmt.Errorf("reldb: table %q: empty schema", name)
	}
	seen := make(map[string]bool, len(schema))
	for _, c := range schema {
		if c.Name == "" {
			return nil, fmt.Errorf("reldb: table %q: column with empty name", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("reldb: table %q: duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
	}
	t := &Table{Name: name, Schema: append(Schema(nil), schema...)}
	db.tables[name] = t
	if err := db.logCreateTable(name, t.Schema); err != nil {
		delete(db.tables, name)
		return nil, err
	}
	db.commitLocked(name)
	return t, nil
}

// DropTable removes a table and its indexes.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	delete(db.tables, name)
	if err := db.logDropTable(name); err != nil {
		db.tables[name] = t
		return err
	}
	db.commitLocked()
	return nil
}

// Table returns the live table with the given name. Callers reading row
// data concurrently with ingest should go through Select/Count or a
// Snapshot instead; Table exists for schema lookups and white-box access.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableNames returns the names of all tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateIndex creates and backfills a secondary index.
func (db *DB) CreateIndex(indexName, tableName string, cols ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	if _, err := t.buildIndex(indexName, cols); err != nil {
		return err
	}
	if err := db.logCreateIndex(indexName, tableName, cols); err != nil {
		t.removeIndex(indexName)
		return err
	}
	db.commitLocked(tableName)
	return nil
}

// Insert adds a row to a table and returns its row ID.
func (db *DB) Insert(tableName string, row Row) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	rid, err := t.insert(row)
	if err != nil {
		return 0, err
	}
	if err := db.logInsert(tableName, []Row{row}); err != nil {
		t.unInsertTail(rid, 1)
		return 0, err
	}
	db.commitLocked(tableName)
	return rid, nil
}

// InsertBatch adds many rows under one lock acquisition. Index entries are
// maintained in bulk (sorted insertion, bottom-up tree builds for empty or
// small indexes) and the whole batch is group-committed to the write-ahead
// log as one record — one length/CRC frame and one flush, instead of one per
// row. A failing batch leaves the table unchanged.
func (db *DB) InsertBatch(tableName string, rows []Row) error {
	return db.insertBatchMode(tableName, rows, false)
}

// InsertBatchOwned is InsertBatch without the defensive per-row copy: the
// database adopts each row's datum slice as table storage. The rows slice
// itself is copied and may be reused, but the caller must not read or
// modify any row (the []Datum) after the call. Bulk loaders use it to shed
// one allocation and copy per row.
func (db *DB) InsertBatchOwned(tableName string, rows []Row) error {
	return db.insertBatchMode(tableName, rows, true)
}

func (db *DB) insertBatchMode(tableName string, rows []Row, owned bool) error {
	if len(rows) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	base := int64(len(t.rows))
	if err := t.insertBatch(rows, owned); err != nil {
		return err
	}
	if err := db.logInsertBatch(tableName, rows); err != nil {
		t.unInsertTail(base, len(rows))
		return err
	}
	db.commitLocked(tableName)
	return nil
}

// PredOp is the comparison operator of a predicate.
type PredOp uint8

const (
	// OpEq matches rows whose column equals the value.
	OpEq PredOp = iota
	// OpPrefix matches string rows whose column starts with the value
	// (SQL: col LIKE 'prefix%'). Prefix predicates are index-accelerated
	// when the column directly follows the equality columns in an index.
	OpPrefix
	// OpLt, OpLe, OpGt, OpGe are range comparisons against non-NULL values
	// of the column's type. A single range-bounded column directly following
	// the equality columns in an index turns into a bounded index scan.
	OpLt
	OpLe
	OpGt
	OpGe
)

// Pred is a predicate on a named column.
type Pred struct {
	Col string
	Val Datum
	Op  PredOp
}

// Eq builds an equality predicate.
func Eq(col string, val Datum) Pred { return Pred{Col: col, Val: val, Op: OpEq} }

// Prefix builds a string-prefix predicate.
func Prefix(col string, prefix string) Pred {
	return Pred{Col: col, Val: S(prefix), Op: OpPrefix}
}

// Lt builds a "column < value" predicate.
func Lt(col string, val Datum) Pred { return Pred{Col: col, Val: val, Op: OpLt} }

// Le builds a "column <= value" predicate.
func Le(col string, val Datum) Pred { return Pred{Col: col, Val: val, Op: OpLe} }

// Gt builds a "column > value" predicate.
func Gt(col string, val Datum) Pred { return Pred{Col: col, Val: val, Op: OpGt} }

// Ge builds a "column >= value" predicate.
func Ge(col string, val Datum) Pred { return Pred{Col: col, Val: val, Op: OpGe} }

// Select returns the rows of a table matching every equality predicate. It
// uses the index covering the longest prefix of the predicate columns when
// one exists, falling back to a heap scan. Rows are returned in index order
// (or row-ID order for heap scans); limit < 0 means no limit.
//
// Select reads the last published version lock-free: it never blocks on —
// and is never blocked by — concurrent ingest or checkpoints.
func (db *DB) Select(tableName string, preds []Pred, limit int) ([]Row, error) {
	v := db.version.Load()
	t, ok := v.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	var out []Row
	err := db.scanTable(t, preds, func(_ int64, row Row) bool {
		out = append(out, row.Clone())
		return limit < 0 || len(out) < limit
	})
	return out, err
}

// Count returns the number of rows matching the predicates, lock-free
// against the last published version.
func (db *DB) Count(tableName string, preds []Pred) (int, error) {
	v := db.version.Load()
	t, ok := v.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	n := 0
	err := db.scanTable(t, preds, func(int64, Row) bool {
		n++
		return true
	})
	return n, err
}

// Delete removes every row matching the predicates, returning the count.
func (db *DB) Delete(tableName string, preds []Pred) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	var rids []int64
	var rows []Row
	if err := db.scanTable(t, preds, func(rid int64, row Row) bool {
		rids = append(rids, rid)
		rows = append(rows, row)
		return true
	}); err != nil {
		return 0, err
	}
	for _, rid := range rids {
		if err := t.delete(rid); err != nil {
			return 0, err
		}
	}
	if err := db.logDelete(tableName, rids); err != nil {
		t.reinsertAt(rids, rows)
		return 0, err
	}
	db.commitLocked(tableName)
	return len(rids), nil
}

// scanTable runs the planned scan over a table the caller may safely read:
// either a frozen table out of a published version (no lock needed) or the
// live table under the write lock (Delete's collection phase).
func (db *DB) scanTable(t *Table, preds []Pred, fn func(rid int64, row Row) bool) error {
	cols := make([]int, len(preds))
	eqCols := make(map[int]bool, len(preds))
	prefixCols := make(map[int]string, 1)
	rangeCols := make(map[int][]Pred, 1)
	for i, p := range preds {
		pos, ok := t.Schema.ColIndex(p.Col)
		if !ok {
			return fmt.Errorf("reldb: table %q has no column %q", t.Name, p.Col)
		}
		cols[i] = pos
		switch p.Op {
		case OpEq:
			if !p.Val.IsNull() && p.Val.Type() != t.Schema[pos].Type {
				return fmt.Errorf("reldb: table %q: predicate on %q expects %v, got %v",
					t.Name, p.Col, t.Schema[pos].Type, p.Val.Type())
			}
			eqCols[pos] = true
		case OpPrefix:
			if t.Schema[pos].Type != TString || p.Val.Type() != TString {
				return fmt.Errorf("reldb: table %q: prefix predicate on %q requires TEXT", t.Name, p.Col)
			}
			prefixCols[pos] = p.Val.Str()
		case OpLt, OpLe, OpGt, OpGe:
			if p.Val.IsNull() || p.Val.Type() != t.Schema[pos].Type {
				return fmt.Errorf("reldb: table %q: range predicate on %q requires a non-NULL %v",
					t.Name, p.Col, t.Schema[pos].Type)
			}
			rangeCols[pos] = append(rangeCols[pos], p)
		default:
			return fmt.Errorf("reldb: unknown predicate op %d", p.Op)
		}
	}

	matches := func(row Row) bool {
		for i, p := range preds {
			d := row[cols[i]]
			switch p.Op {
			case OpEq:
				if !d.Equal(p.Val) {
					return false
				}
			case OpPrefix:
				if d.Type() != TString || len(d.Str()) < len(p.Val.Str()) || d.Str()[:len(p.Val.Str())] != p.Val.Str() {
					return false
				}
			case OpLt, OpLe, OpGt, OpGe:
				if d.IsNull() || d.Type() != p.Val.Type() {
					return false
				}
				c := d.Compare(p.Val)
				switch p.Op {
				case OpLt:
					if c >= 0 {
						return false
					}
				case OpLe:
					if c > 0 {
						return false
					}
				case OpGt:
					if c <= 0 {
						return false
					}
				case OpGe:
					if c < 0 {
						return false
					}
				}
			}
		}
		return true
	}

	// Plan: choose the index covering the longest run of equality columns,
	// counting a prefix or range predicate on the following index column as
	// half a column of selectivity. Indexes quarantined by an integrity
	// check (see VerifyIndexes) are bypassed — queries degrade to a heap
	// scan rather than returning rows from a structure known to be wrong.
	var ix *Index
	covered, bestScore := 0, 0
	for _, cand := range t.indexes {
		if cand.damaged {
			continue
		}
		n := 0
		for _, c := range cand.Cols {
			if !eqCols[c] {
				break
			}
			n++
		}
		score := 2 * n
		if n < len(cand.Cols) {
			if _, ok := prefixCols[cand.Cols[n]]; ok {
				score++
			} else if _, ok := rangeCols[cand.Cols[n]]; ok {
				score++
			}
		}
		if score > bestScore {
			ix, covered, bestScore = cand, n, score
		}
	}
	if ix != nil && bestScore > 0 {
		db.statIndexScans.Add(1)
		obsIndexScans.Add(1)
		// Build the scan bounds: the covered equality columns form the base
		// prefix; a prefix predicate on the next index column extends it
		// with the partial (unterminated) string encoding; range predicates
		// tighten one or both bounds.
		base := make([]byte, 0, 16*(covered+1))
		for i := 0; i < covered; i++ {
			for j, c := range cols {
				if c == ix.Cols[i] && preds[j].Op == OpEq {
					base = encodeDatum(base, preds[j].Val)
					break
				}
			}
		}
		from, to := base, PrefixSuccessor(base)
		if covered < len(ix.Cols) {
			next := ix.Cols[covered]
			if pfx, ok := prefixCols[next]; ok {
				key := append([]byte(nil), base...)
				key = append(key, 0x03) // string tag
				for _, c := range []byte(pfx) {
					if c == 0x00 {
						key = append(key, 0x00, 0xFF)
					} else {
						key = append(key, c)
					}
				}
				from, to = key, PrefixSuccessor(key)
			} else if bounds, ok := rangeCols[next]; ok {
				for _, p := range bounds {
					bound := encodeDatum(append([]byte(nil), base...), p.Val)
					switch p.Op {
					case OpGe:
						if bytes.Compare(bound, from) > 0 {
							from = bound
						}
					case OpGt:
						if succ := PrefixSuccessor(bound); succ != nil && bytes.Compare(succ, from) > 0 {
							from = succ
						}
					case OpLt:
						if to == nil || bytes.Compare(bound, to) < 0 {
							to = bound
						}
					case OpLe:
						if succ := PrefixSuccessor(bound); succ != nil && (to == nil || bytes.Compare(succ, to) < 0) {
							to = succ
						}
					}
				}
			}
		}
		// The per-row tally is kept local and flushed once after the scan:
		// one atomic add per scan instead of one per row keeps the counter
		// off the B-tree hot path.
		var rowsRead int64
		ix.tree.AscendRange(from, to, func(_ []byte, rid int64) bool {
			row, ok := t.row(rid)
			if !ok {
				return true
			}
			rowsRead++
			if matches(row) {
				return fn(rid, row)
			}
			return true
		})
		db.statRowsRead.Add(rowsRead)
		obsRowsRead.Add(rowsRead)
		return nil
	}

	db.statFullScans.Add(1)
	obsFullScans.Add(1)
	var rowsRead int64
	t.scanAll(func(rid int64, row Row) bool {
		rowsRead++
		if matches(row) {
			return fn(rid, row)
		}
		return true
	})
	db.statRowsRead.Add(rowsRead)
	obsRowsRead.Add(rowsRead)
	return nil
}

// Adopt replaces the contents of db with those of other (used to restore a
// snapshot into an already-shared handle). The other database must not be
// used afterwards. Adopt is not a logged operation: a durable database
// stops logging when adopted into (checkpoint to re-establish durability).
func (db *DB) Adopt(other *DB) {
	db.mu.Lock()
	defer db.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	db.tables = other.tables
	db.seq = other.seq
	if other.epoch > db.epoch {
		db.epoch = other.epoch
	}
	db.epoch++
	if db.wal != nil {
		db.wal.close()
		db.wal = nil
	}
	db.publishAllLocked()
}

// Stats reports cumulative access-path counters (index scans, full scans,
// rows read) since the database was created; used by the benchmark harness
// to verify that hot paths are index-backed.
func (db *DB) Stats() (indexScans, fullScans, rowsRead int64) {
	return db.statIndexScans.Load(), db.statFullScans.Load(), db.statRowsRead.Load()
}
