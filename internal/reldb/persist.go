package reldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"path/filepath"
	"sort"
)

// Snapshot persistence: the whole database is written as a single binary
// file with a magic header, the WAL sequence number the snapshot covers,
// length-prefixed records and a trailing CRC32. Indexes are stored as
// definitions only and rebuilt on load (they are fully derivable, and
// rebuilding keeps the format simple and corruption-safe).

const persistMagic = "RELDBSNAPSHOT\x02"

// Save writes a snapshot of the database to path, atomically (write to a
// temporary file, fsync it, rename over the target, fsync the directory).
func (db *DB) Save(path string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.saveLocked(path)
}

// saveLocked is Save with the caller holding db.mu (either mode); Checkpoint
// uses it under the write lock to make snapshot+truncate atomic. A crash at
// any point leaves either the old snapshot or the complete new one: the
// content is made durable before the rename, and the rename before the
// directory fsync.
func (db *DB) saveLocked(path string) error {
	fs := db.fs()
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("reldb: save: %w", err)
	}
	err = db.writeSnapshot(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("reldb: save: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("reldb: save: %w", err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("reldb: save: sync dir: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save and returns the database.
func Load(path string) (*DB, error) { return LoadVFS(OSFS{}, path) }

// LoadVFS is Load through an explicit filesystem.
func LoadVFS(fs VFS, path string) (*DB, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reldb: load: %w", err)
	}
	db, err := readSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("reldb: load %s: %w", path, err)
	}
	return db, nil
}

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// writeSnapshot serializes the database; the caller holds db.mu.
func (db *DB) writeSnapshot(f File) error {
	bw := bufio.NewWriter(f)
	w := &crcWriter{w: bw}
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	// The WAL sequence this snapshot covers: replay skips records at or
	// below it, so recovery is correct even if a crash prevented the log
	// truncation that normally follows a checkpoint.
	writeUvarint(w, db.seq)

	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)

	writeUvarint(w, uint64(len(names)))
	for _, name := range names {
		t := db.tables[name]
		writeString(w, t.Name)
		writeUvarint(w, uint64(len(t.Schema)))
		for _, c := range t.Schema {
			writeString(w, c.Name)
			writeUvarint(w, uint64(c.Type))
		}
		writeUvarint(w, uint64(len(t.indexes)))
		for _, ix := range t.indexes {
			writeString(w, ix.Name)
			writeUvarint(w, uint64(len(ix.Cols)))
			for _, c := range ix.Cols {
				writeUvarint(w, uint64(c))
			}
		}
		writeUvarint(w, uint64(len(t.rows)))
		for _, row := range t.rows {
			if row == nil {
				writeUvarint(w, 0)
				continue
			}
			writeUvarint(w, 1)
			for _, d := range row {
				writeDatum(w, d)
			}
		}
	}

	// Trailing CRC over everything before it.
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], w.crc)
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

func readSnapshot(data []byte) (*DB, error) {
	if len(data) < len(persistMagic)+4 {
		return nil, fmt.Errorf("%w: snapshot truncated", ErrCorrupt)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if string(body[:len(persistMagic)]) != persistMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}

	r := &byteReader{data: body[len(persistMagic):]}
	db := NewDB()
	seq, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	db.seq = seq
	nTables, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	for ti := uint64(0); ti < nTables; ti++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		nCols, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		schema := make(Schema, nCols)
		for i := range schema {
			cname, err := r.str()
			if err != nil {
				return nil, err
			}
			ctype, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			schema[i] = Column{Name: cname, Type: ColType(ctype)}
		}
		t, err := db.CreateTable(name, schema)
		if err != nil {
			return nil, err
		}

		nIdx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		type idxDef struct {
			name string
			cols []int
		}
		defs := make([]idxDef, nIdx)
		for i := range defs {
			iname, err := r.str()
			if err != nil {
				return nil, err
			}
			nc, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			cols := make([]int, nc)
			for j := range cols {
				c, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if c >= uint64(len(schema)) {
					return nil, fmt.Errorf("%w: index %q references column %d of %d", ErrCorrupt, iname, c, len(schema))
				}
				cols[j] = int(c)
			}
			defs[i] = idxDef{name: iname, cols: cols}
		}

		nRows, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		t.rows = make([]Row, 0, nRows)
		for i := uint64(0); i < nRows; i++ {
			present, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if present == 0 {
				t.rows = append(t.rows, nil)
				continue
			}
			row := make(Row, len(schema))
			for j := range row {
				d, err := r.datum()
				if err != nil {
					return nil, err
				}
				row[j] = d
			}
			t.rows = append(t.rows, row)
			t.live++
		}
		for _, def := range defs {
			colNames := make([]string, len(def.cols))
			for j, c := range def.cols {
				colNames[j] = schema[c].Name
			}
			if _, err := t.buildIndex(def.name, colNames); err != nil {
				return nil, err
			}
		}
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("%w: snapshot has %d trailing bytes", ErrCorrupt, len(r.data)-r.pos)
	}
	// Rows and indexes were filled in behind the per-table CreateTable
	// publishes; align the epoch clock with the covered WAL sequence and
	// publish the complete state.
	db.mu.Lock()
	db.epoch = db.seq
	db.publishAllLocked()
	db.mu.Unlock()
	return db, nil
}

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w io.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s)
}

func writeDatum(w io.Writer, d Datum) {
	writeUvarint(w, uint64(d.t))
	switch d.t {
	case 0:
	case TInt:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(d.i))
		w.Write(buf[:])
	case TFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(d.f))
		w.Write(buf[:])
	case TString:
		writeString(w, d.s)
	case TBytes:
		writeUvarint(w, uint64(len(d.b)))
		w.Write(d.b)
	}
}

type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrCorrupt, r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if r.pos+n > len(r.data) {
		return nil, fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, r.pos)
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *byteReader) datum() (Datum, error) {
	tag, err := r.uvarint()
	if err != nil {
		return Null, err
	}
	switch ColType(tag) {
	case 0:
		return Null, nil
	case TInt:
		b, err := r.bytes(8)
		if err != nil {
			return Null, err
		}
		return I(int64(binary.LittleEndian.Uint64(b))), nil
	case TFloat:
		b, err := r.bytes(8)
		if err != nil {
			return Null, err
		}
		return F(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case TString:
		s, err := r.str()
		if err != nil {
			return Null, err
		}
		return S(s), nil
	case TBytes:
		n, err := r.uvarint()
		if err != nil {
			return Null, err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return Null, err
		}
		return B(append([]byte(nil), b...)), nil
	default:
		return Null, fmt.Errorf("%w: bad datum tag %d", ErrCorrupt, tag)
	}
}
