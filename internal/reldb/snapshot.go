package reldb

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrSnapshotReleased is returned by reads through a Snapshot after Release.
var ErrSnapshotReleased = errors.New("reldb: snapshot released")

// Snapshot is a pinned, immutable view of the database at the epoch of the
// last committed mutation when it was taken. Reads through a snapshot are
// lock-free and see exactly the data committed at or before its epoch, no
// matter how much concurrent ingest, deletion or checkpointing happens
// after the pin. Snapshots are cheap (one atomic load); Release marks the
// snapshot dead — the underlying frozen tables are reclaimed by the garbage
// collector once the last published version moves past them.
type Snapshot struct {
	db       *DB
	v        *dbVersion
	released atomic.Bool
}

// Snapshot pins the current committed state and returns a read handle over
// it. The returned snapshot observes every mutation whose call completed
// before Snapshot was called, and none that commits after.
func (db *DB) Snapshot() *Snapshot {
	return &Snapshot{db: db, v: db.version.Load()}
}

// Epoch returns the epoch the snapshot is pinned at.
func (s *Snapshot) Epoch() uint64 { return s.v.epoch }

// Release marks the snapshot dead. Further reads fail with
// ErrSnapshotReleased; releasing twice is a no-op.
func (s *Snapshot) Release() { s.released.Store(true) }

// Table returns the frozen table with the given name as of the snapshot's
// epoch.
func (s *Snapshot) Table(name string) (*Table, bool) {
	if s.released.Load() {
		return nil, false
	}
	t, ok := s.v.tables[name]
	return t, ok
}

// Select is DB.Select against the pinned epoch.
func (s *Snapshot) Select(tableName string, preds []Pred, limit int) ([]Row, error) {
	if s.released.Load() {
		return nil, ErrSnapshotReleased
	}
	t, ok := s.v.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	var out []Row
	err := s.db.scanTable(t, preds, func(_ int64, row Row) bool {
		out = append(out, row.Clone())
		return limit < 0 || len(out) < limit
	})
	return out, err
}

// Count is DB.Count against the pinned epoch.
func (s *Snapshot) Count(tableName string, preds []Pred) (int, error) {
	if s.released.Load() {
		return 0, ErrSnapshotReleased
	}
	t, ok := s.v.tables[tableName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	n := 0
	err := s.db.scanTable(t, preds, func(int64, Row) bool {
		n++
		return true
	})
	return n, err
}
