package reldb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered list of columns.
type Schema []Column

// ColIndex returns the position of a column by name.
func (s Schema) ColIndex(name string) (int, bool) {
	for i, c := range s {
		if c.Name == name {
			return i, true
		}
	}
	return -1, false
}

// Index is a secondary index over one or more columns of a table. Entries
// are stored in a B-tree under the order-preserving encoding of the indexed
// columns followed by the row ID (making every entry unique and scans
// stable).
type Index struct {
	Name string
	Cols []int // column positions in the table schema
	tree *btree
	// damaged quarantines an index that failed an integrity check: the
	// planner bypasses it (queries fall back to heap scans) until it is
	// rebuilt from the table. Mutations keep maintaining it so a rebuild
	// is only ever needed once.
	damaged bool
}

// Damaged reports whether the index is quarantined (see DB.VerifyIndexes).
func (ix *Index) Damaged() bool { return ix.damaged }

// entryKey builds the stored key for a row.
func (ix *Index) entryKey(row Row, rid int64) []byte {
	key := make([]byte, 0, 16*len(ix.Cols)+8)
	for _, c := range ix.Cols {
		key = encodeDatum(key, row[c])
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(rid))
	return append(key, buf[:]...)
}

// prefixKey builds the scan prefix for leading column values.
func (ix *Index) prefixKey(vals []Datum) []byte {
	key := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		key = encodeDatum(key, v)
	}
	return key
}

// Table is a heap-organized table: rows live in a slice addressed by row ID,
// with tombstones marking deleted rows.
type Table struct {
	Name    string
	Schema  Schema
	rows    []Row // nil entries are tombstones
	live    int
	indexes []*Index
	// rowsShared marks the row heap as shared with a frozen copy (see
	// freeze): appends remain safe (a frozen copy's slice header has the
	// frozen length, so rows past it are invisible), but in-place
	// tombstoning must copy the slice first.
	rowsShared bool
}

// freeze returns an immutable copy of the table sharing its storage: the
// row heap is shared up to the current length (the live table only ever
// appends, and delete copies-on-write while the heap is marked shared), and
// each index B-tree is cloned copy-on-write. The frozen copy is safe to
// read without any lock while the live table keeps mutating; the caller
// must hold the DB write lock for the freeze itself.
func (t *Table) freeze() *Table {
	t.rowsShared = true
	idx := make([]*Index, len(t.indexes))
	for i, ix := range t.indexes {
		idx[i] = &Index{Name: ix.Name, Cols: ix.Cols, tree: ix.tree.clone(), damaged: ix.damaged}
	}
	return &Table{
		Name:       t.Name,
		Schema:     t.Schema,
		rows:       t.rows[:len(t.rows):len(t.rows)],
		live:       t.live,
		indexes:    idx,
		rowsShared: true,
	}
}

// NumRows returns the number of live rows.
func (t *Table) NumRows() int { return t.live }

// Indexes returns the table's indexes.
func (t *Table) Indexes() []*Index { return t.indexes }

// FindIndex returns the index with the given name.
func (t *Table) FindIndex(name string) (*Index, bool) {
	for _, ix := range t.indexes {
		if ix.Name == name {
			return ix, true
		}
	}
	return nil, false
}

// checkRow validates a row against the schema (NULLs are allowed in any
// column).
func (t *Table) checkRow(row Row) error {
	if len(row) != len(t.Schema) {
		return fmt.Errorf("reldb: table %q: row has %d values, schema has %d columns", t.Name, len(row), len(t.Schema))
	}
	for i, d := range row {
		if !d.IsNull() && d.Type() != t.Schema[i].Type {
			return fmt.Errorf("reldb: table %q: column %q expects %v, got %v",
				t.Name, t.Schema[i].Name, t.Schema[i].Type, d.Type())
		}
	}
	return nil
}

// insert appends a row and maintains all indexes, returning the row ID.
func (t *Table) insert(row Row) (int64, error) {
	if err := t.checkRow(row); err != nil {
		return 0, err
	}
	rid := int64(len(t.rows))
	t.rows = append(t.rows, row.Clone())
	t.live++
	for _, ix := range t.indexes {
		ix.tree.Insert(ix.entryKey(row, rid), rid)
	}
	return rid, nil
}

// insertBatch appends many rows and maintains all indexes in bulk. Every row
// is validated up front, so a failing batch leaves the table unchanged; index
// entries are built sorted and added with the B-tree's bulk path (bottom-up
// build or merge-rebuild) instead of one point insert per row. With owned
// set, the table adopts the rows without the defensive per-row copy.
func (t *Table) insertBatch(rows []Row, owned bool) error {
	for _, r := range rows {
		if err := t.checkRow(r); err != nil {
			return err
		}
	}
	base := int64(len(t.rows))
	if owned {
		t.rows = append(t.rows, rows...)
	} else {
		for _, r := range rows {
			t.rows = append(t.rows, r.Clone())
		}
	}
	t.live += len(rows)
	for _, ix := range t.indexes {
		entries := make([]btreeItem, len(rows))
		for i := range rows {
			rid := base + int64(i)
			entries[i] = btreeItem{key: ix.entryKey(t.rows[rid], rid), rid: rid}
		}
		sort.Slice(entries, func(a, b int) bool {
			return bytes.Compare(entries[a].key, entries[b].key) < 0
		})
		ix.tree.insertBulk(entries)
	}
	return nil
}

// unInsertTail rolls back the n most recent insertions (row IDs base on):
// the inverse of a just-failed insert or insertBatch whose WAL append did
// not commit. Only valid while the caller still holds the write lock it
// inserted under, so no other mutation can have appended after base.
func (t *Table) unInsertTail(base int64, n int) {
	for rid := base; rid < base+int64(n); rid++ {
		row := t.rows[rid]
		if row == nil {
			continue
		}
		for _, ix := range t.indexes {
			ix.tree.Delete(ix.entryKey(row, rid))
		}
		t.live--
	}
	t.rows = t.rows[:base]
}

// reinsertAt restores rows previously removed by delete under the same row
// IDs — the rollback of a Delete whose WAL append failed.
func (t *Table) reinsertAt(rids []int64, rows []Row) {
	for i, rid := range rids {
		if t.rows[rid] != nil {
			continue
		}
		t.rows[rid] = rows[i]
		t.live++
		for _, ix := range t.indexes {
			ix.tree.Insert(ix.entryKey(rows[i], rid), rid)
		}
	}
}

// removeIndex drops an index by name (the rollback of a CreateIndex whose
// WAL append failed).
func (t *Table) removeIndex(name string) {
	for i, ix := range t.indexes {
		if ix.Name == name {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return
		}
	}
}

// delete removes the row with the given ID, maintaining indexes. When the
// row heap is shared with a frozen copy, it is copied first so the
// tombstone never shows through a pinned snapshot.
func (t *Table) delete(rid int64) error {
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] == nil {
		return fmt.Errorf("reldb: table %q: no row %d", t.Name, rid)
	}
	if t.rowsShared {
		t.rows = append([]Row(nil), t.rows...)
		t.rowsShared = false
	}
	row := t.rows[rid]
	for _, ix := range t.indexes {
		ix.tree.Delete(ix.entryKey(row, rid))
	}
	t.rows[rid] = nil
	t.live--
	return nil
}

// row returns the live row with the given ID.
func (t *Table) row(rid int64) (Row, bool) {
	if rid < 0 || rid >= int64(len(t.rows)) || t.rows[rid] == nil {
		return nil, false
	}
	return t.rows[rid], true
}

// scanAll visits every live row in row-ID order.
func (t *Table) scanAll(fn func(rid int64, row Row) bool) {
	for rid, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(int64(rid), row) {
			return
		}
	}
}

// scanIndexPrefix visits, in index order, every live row whose leading
// indexed columns equal vals (vals may cover a prefix of the index columns).
func (t *Table) scanIndexPrefix(ix *Index, vals []Datum, fn func(rid int64, row Row) bool) {
	prefix := ix.prefixKey(vals)
	ix.tree.AscendRange(prefix, PrefixSuccessor(prefix), func(_ []byte, rid int64) bool {
		row, ok := t.row(rid)
		if !ok {
			return true // tombstoned between index and heap: skip
		}
		return fn(rid, row)
	})
}

// buildIndex creates and backfills an index over the named columns. The
// backfill is a sorted bulk load: entry keys for every live row are built,
// sorted once, and assembled into a B-tree bottom-up — O(n log n) with a
// single allocation pass, instead of n point inserts with node splits.
func (t *Table) buildIndex(name string, cols []string) (*Index, error) {
	if _, ok := t.FindIndex(name); ok {
		return nil, fmt.Errorf("%w: table %q already has index %q", ErrIndexExists, t.Name, name)
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		pos, ok := t.Schema.ColIndex(c)
		if !ok {
			return nil, fmt.Errorf("reldb: table %q has no column %q", t.Name, c)
		}
		positions[i] = pos
	}
	ix := &Index{Name: name, Cols: positions, tree: newBTree()}
	entries := make([]btreeItem, 0, t.live)
	t.scanAll(func(rid int64, row Row) bool {
		entries = append(entries, btreeItem{key: ix.entryKey(row, rid), rid: rid})
		return true
	})
	sort.Slice(entries, func(a, b int) bool {
		return bytes.Compare(entries[a].key, entries[b].key) < 0
	})
	ix.tree.bulkLoad(entries)
	t.indexes = append(t.indexes, ix)
	sort.Slice(t.indexes, func(i, j int) bool { return t.indexes[i].Name < t.indexes[j].Name })
	return ix, nil
}
