package reldb

import (
	"bytes"
	"fmt"
	"sort"
)

// Integrity checking and repair for secondary indexes. Indexes are fully
// derivable from their tables, so a corrupt index is never fatal: it is
// detected (shape and membership checks), quarantined (the planner bypasses
// it, degrading to heap scans), and repairable in place (rebuilt from the
// table). OpenDurable runs a shape check automatically and rebuilds any
// index that disagrees with its table before the database is shared.

// IndexProblem describes one integrity violation found by VerifyIndexes.
type IndexProblem struct {
	Table string
	Index string
	Desc  string
}

func (p IndexProblem) String() string {
	return fmt.Sprintf("%s.%s: %s", p.Table, p.Index, p.Desc)
}

// VerifyIndexes checks every secondary index against its table: the entry
// count must equal the live row count, every entry must resolve to a live
// row, and the entry key must match the row's current column values. Any
// index that fails is quarantined — the planner stops using it until
// RebuildIndex (or RebuildDamaged) repairs it — and reported.
func (db *DB) VerifyIndexes() []IndexProblem {
	db.mu.Lock()
	defer db.mu.Unlock()
	var problems []IndexProblem
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := db.tables[name]
		for _, ix := range t.indexes {
			if desc, ok := t.checkIndex(ix); !ok {
				ix.damaged = true
				problems = append(problems, IndexProblem{Table: t.Name, Index: ix.Name, Desc: desc})
			}
		}
	}
	if len(problems) > 0 {
		// Republish so lock-free readers see the quarantine flags. The
		// logical content is unchanged, so the epoch does not advance.
		db.publishAllLocked()
	}
	return problems
}

// checkIndex validates one index against the heap; it returns a description
// of the first violation found.
func (t *Table) checkIndex(ix *Index) (string, bool) {
	if got, want := ix.tree.Len(), t.live; got != want {
		return fmt.Sprintf("index has %d entries, table has %d live rows", got, want), false
	}
	bad := ""
	ix.tree.AscendRange(nil, nil, func(key []byte, rid int64) bool {
		row, ok := t.row(rid)
		if !ok {
			bad = fmt.Sprintf("entry references missing row %d", rid)
			return false
		}
		if !bytes.Equal(key, ix.entryKey(row, rid)) {
			bad = fmt.Sprintf("entry key for row %d does not match row contents", rid)
			return false
		}
		return true
	})
	return bad, bad == ""
}

// RebuildIndex reconstructs a secondary index from its table's rows and
// clears its quarantine. It is the recovery action for a VerifyIndexes
// finding; the operation is pure derivation, so nothing is logged.
func (db *DB) RebuildIndex(tableName, indexName string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	for _, ix := range t.indexes {
		if ix.Name == indexName {
			t.rebuildIndex(ix)
			db.publishLocked(tableName)
			return nil
		}
	}
	return fmt.Errorf("reldb: table %q has no index %q", tableName, indexName)
}

// RebuildDamaged rebuilds every quarantined index, returning how many were
// repaired.
func (db *DB) RebuildDamaged() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	n := 0
	for _, t := range db.tables {
		for _, ix := range t.indexes {
			if ix.damaged {
				t.rebuildIndex(ix)
				n++
			}
		}
	}
	if n > 0 {
		db.publishAllLocked()
	}
	return n
}

// rebuildIndex re-derives one index from the heap with the sorted bulk-load
// path; the caller holds the write lock.
func (t *Table) rebuildIndex(ix *Index) {
	entries := make([]btreeItem, 0, t.live)
	t.scanAll(func(rid int64, row Row) bool {
		entries = append(entries, btreeItem{key: ix.entryKey(row, rid), rid: rid})
		return true
	})
	sort.Slice(entries, func(a, b int) bool {
		return bytes.Compare(entries[a].key, entries[b].key) < 0
	})
	fresh := newBTree()
	fresh.bulkLoad(entries)
	ix.tree = fresh
	ix.damaged = false
}

// repairIndexesOnOpen runs the cheap shape check (entry count vs live rows)
// on every index and rebuilds mismatches immediately: on open there is no
// concurrent traffic, so repairing is strictly better than quarantining.
// Repairs are recorded for RecoveryReport.
func (db *DB) repairIndexesOnOpen() {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range db.tables {
		for _, ix := range t.indexes {
			if ix.tree.Len() != t.live {
				t.rebuildIndex(ix)
				db.repairs = append(db.repairs,
					fmt.Sprintf("rebuilt index %s.%s (entry count disagreed with table)", t.Name, ix.Name))
			}
		}
	}
	sort.Strings(db.repairs)
	// Publish the recovered state: the first version readers (and pinned
	// snapshots) of a freshly opened durable database will see.
	db.publishAllLocked()
}

// RecoveryReport lists the integrity repairs performed while opening the
// database (empty for a clean open).
func (db *DB) RecoveryReport() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.repairs...)
}
