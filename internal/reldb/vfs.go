package reldb

import (
	"io/fs"
	"os"
)

// VFS abstracts the file operations the durability layer performs, so tests
// can interpose failures and simulated crashes at any point (see
// internal/faultfs). The operation set is deliberately small: whole-file
// reads, sequential writers, and the metadata operations (rename, truncate,
// directory sync) that atomic snapshot replacement and log repair need.
type VFS interface {
	// ReadFile returns the whole contents of a file.
	ReadFile(path string) ([]byte, error)
	// Create opens a file for writing, truncating it if it exists.
	Create(path string) (File, error)
	// Append opens a file for appending, creating it if needed.
	Append(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// Truncate cuts a file to the given size.
	Truncate(path string, size int64) error
	// Stat returns file metadata.
	Stat(path string) (fs.FileInfo, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string) error
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(path string) error
}

// File is a sequential writer with durability control.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OSFS is the production VFS: direct calls to the operating system.
type OSFS struct{}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) Create(path string) (File, error) { return os.Create(path) }

func (OSFS) Append(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (OSFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
