package reldb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openDurableT(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := openDurableT(t, dir)
	if _, err := db.CreateTable("t", Schema{{Name: "a", Type: TString}, {Name: "n", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t_a", "t", "a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := db.Insert("t", Row{S(fmt.Sprintf("k%02d", i)), I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Delete("t", []Pred{Eq("a", S("k05"))}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the log (no snapshot was ever written).
	back := openDurableT(t, dir)
	defer back.CloseDurable()
	n, err := back.Count("t", nil)
	if err != nil || n != 19 {
		t.Fatalf("recovered rows = %d, %v", n, err)
	}
	rows, err := back.Select("t", []Pred{Eq("a", S("k07"))}, -1)
	if err != nil || len(rows) != 1 || rows[0][1].Int() != 7 {
		t.Fatalf("indexed lookup after recovery = %v, %v", rows, err)
	}
	if _, err := back.Select("t", []Pred{Eq("a", S("k05"))}, -1); err != nil {
		t.Fatal(err)
	}
	if n, _ := back.Count("t", []Pred{Eq("a", S("k05"))}); n != 0 {
		t.Error("deleted row resurrected by replay")
	}
}

func TestDurableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openDurableT(t, dir)
	if _, err := db.CreateTable("t", Schema{{Name: "n", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Insert("t", Row{I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The log is truncated; the snapshot carries the state.
	walInfo, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil || walInfo.Size() != 0 {
		t.Fatalf("wal after checkpoint: size=%d err=%v", walInfo.Size(), err)
	}
	// Post-checkpoint mutations land in the fresh log.
	if _, err := db.Insert("t", Row{I(100)}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	back := openDurableT(t, dir)
	defer back.CloseDurable()
	n, err := back.Count("t", nil)
	if err != nil || n != 11 {
		t.Fatalf("rows after checkpoint+log recovery = %d, %v", n, err)
	}
	// Checkpoint requires durability.
	plain := NewDB()
	if err := plain.Checkpoint(); err == nil {
		t.Error("checkpoint on non-durable database accepted")
	}
}

func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	db := openDurableT(t, dir)
	if _, err := db.CreateTable("t", Schema{{Name: "n", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := db.Insert("t", Row{I(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the log tail.
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	back := openDurableT(t, dir)
	n, err := back.Count("t", nil)
	if err != nil || n != 4 {
		t.Fatalf("rows after torn tail = %d, %v (want the last record dropped)", n, err)
	}
	// The torn bytes were truncated away; appending continues cleanly.
	if _, err := back.Insert("t", Row{I(99)}); err != nil {
		t.Fatal(err)
	}
	if err := back.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	again := openDurableT(t, dir)
	defer again.CloseDurable()
	if n, _ := again.Count("t", nil); n != 5 {
		t.Fatalf("rows after torn-tail repair = %d", n)
	}
}

func TestDurableCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	db := openDurableT(t, dir)
	if _, err := db.CreateTable("t", Schema{{Name: "n", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", Row{I(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Insert("t", Row{I(2)}); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the LAST record: replay keeps everything
	// before it.
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back := openDurableT(t, dir)
	defer back.CloseDurable()
	if n, _ := back.Count("t", nil); n != 1 {
		t.Fatalf("rows after corrupt tail = %d, want 1", n)
	}
}

func TestDurableSchemaEvolution(t *testing.T) {
	dir := t.TempDir()
	db := openDurableT(t, dir)
	if _, err := db.CreateTable("a", Schema{{Name: "x", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("b", Schema{{Name: "y", Type: TString}}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	back := openDurableT(t, dir)
	defer back.CloseDurable()
	names := back.TableNames()
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("tables after replay = %v", names)
	}
}

func TestDurableBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := openDurableT(t, dir)
	if _, err := db.CreateTable("t", Schema{{Name: "a", Type: TString}, {Name: "n", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t_a", "t", "a"); err != nil {
		t.Fatal(err)
	}
	const batches, perBatch = 4, 25
	for b := 0; b < batches; b++ {
		rows := make([]Row, perBatch)
		for i := range rows {
			rows[i] = Row{S(fmt.Sprintf("k%03d", b*perBatch+i)), I(int64(b))}
		}
		if err := db.InsertBatch("t", rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	back := openDurableT(t, dir)
	defer back.CloseDurable()
	if n, err := back.Count("t", nil); err != nil || n != batches*perBatch {
		t.Fatalf("recovered rows = %d, %v", n, err)
	}
	// The replayed index answers point lookups (bulk replay path).
	rows, err := back.Select("t", []Pred{Eq("a", S("k042"))}, -1)
	if err != nil || len(rows) != 1 || rows[0][1].Int() != 1 {
		t.Fatalf("indexed lookup after batch replay = %v, %v", rows, err)
	}
}

// TestDurableTornBatchTail simulates a crash mid-append of a recInsertBatch
// record: the WHOLE final batch is dropped on replay (never a prefix of it),
// indexes stay consistent with the heap, and appending continues cleanly.
func TestDurableTornBatchTail(t *testing.T) {
	dir := t.TempDir()
	db := openDurableT(t, dir)
	if _, err := db.CreateTable("t", Schema{{Name: "n", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t_n", "t", "n"); err != nil {
		t.Fatal(err)
	}
	const batches, perBatch = 3, 20
	for b := 0; b < batches; b++ {
		rows := make([]Row, perBatch)
		for i := range rows {
			rows[i] = Row{I(int64(b*perBatch + i))}
		}
		if err := db.InsertBatch("t", rows); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the last batch record's payload.
	if err := os.WriteFile(path, data[:len(data)-17], 0o644); err != nil {
		t.Fatal(err)
	}
	back := openDurableT(t, dir)
	n, err := back.Count("t", nil)
	if err != nil || n != (batches-1)*perBatch {
		t.Fatalf("rows after torn batch = %d, %v (want the whole last batch dropped)", n, err)
	}
	// Index agrees with the heap: a bounded index scan sees the same rows.
	viaIdx, err := back.Count("t", []Pred{Ge("n", I(0))})
	if err != nil || viaIdx != n {
		t.Fatalf("index sees %d rows, heap %d (%v)", viaIdx, n, err)
	}
	if err := back.InsertBatch("t", []Row{{I(999)}}); err != nil {
		t.Fatal(err)
	}
	if err := back.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	again := openDurableT(t, dir)
	defer again.CloseDurable()
	if n, _ := again.Count("t", nil); n != (batches-1)*perBatch+1 {
		t.Fatalf("rows after torn-batch repair = %d", n)
	}
}
