package reldb

import "repro/internal/obs"

// Metric handles for the embedded engine, resolved once at package init.
// append_ns covers a whole durable WAL append (frame write + buffered flush
// + fsync); fsync_ns isolates the fsync inside it, which dominates durable
// ingest cost. index_scans/full_scans/rows_read mirror the per-DB Stats()
// counters globally, so a metrics dump shows access-path behaviour without a
// handle on the database.
var (
	obsWalAppends   = obs.C("reldb.wal.appends")
	obsWalBytes     = obs.C("reldb.wal.bytes")
	obsWalAppendNs  = obs.H("reldb.wal.append_ns")
	obsWalFsyncNs   = obs.H("reldb.wal.fsync_ns")
	obsWalReplayed  = obs.C("reldb.wal.records_replayed")
	obsCheckpoints  = obs.C("reldb.checkpoints")
	obsCheckpointNs = obs.H("reldb.checkpoint_ns")
	obsIndexScans   = obs.C("reldb.index_scans")
	obsFullScans    = obs.C("reldb.full_scans")
	obsRowsRead     = obs.C("reldb.rows_read")
)
