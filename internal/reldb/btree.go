package reldb

import (
	"bytes"
)

// btree is an in-memory B-tree mapping byte-string keys to row IDs. Index
// entries are made unique by suffixing the encoded column key with the row
// ID (see index.go), so the tree never stores duplicate keys. The tree is
// not internally synchronized; the owning DB's lock guards mutations.
//
// Nodes are copy-on-write: every node carries the ownership token of the
// tree that created it, and a mutation first copies any node whose token
// differs from the tree's (see mutable). clone() hands out a second root
// over the same nodes and gives BOTH trees fresh tokens, so all shared
// nodes become immutable from that point on — the snapshot side can be
// read without locks while the live side keeps mutating, paying one node
// copy per shared node it touches.

const btreeDegree = 32 // max children per node = 2*degree

// cowToken is a unique ownership marker; its identity (address) is all
// that matters.
type cowToken struct{ _ byte }

type btreeItem struct {
	key []byte
	rid int64
}

type btreeNode struct {
	cow      *cowToken
	items    []btreeItem
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// find returns the position of the first item with key >= k, and whether an
// exact match sits there.
func (n *btreeNode) find(k []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.items[mid].key, k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.items) && bytes.Equal(n.items[lo].key, k)
}

type btree struct {
	root *btreeNode
	size int
	cow  *cowToken
}

func newBTree() *btree {
	c := new(cowToken)
	return &btree{root: &btreeNode{cow: c}, cow: c}
}

// clone returns a second tree over the same nodes. Both trees receive fresh
// ownership tokens, so every currently shared node is immutable afterwards:
// whichever side mutates first copies the nodes it touches. The clone is
// O(1); the cost is paid lazily by later mutations.
func (t *btree) clone() *btree {
	t.cow = new(cowToken)
	return &btree{root: t.root, size: t.size, cow: new(cowToken)}
}

// mutable returns a node owned by t, copying it first when it is shared
// with a cloned tree. The caller must store the result back into the
// parent's child slot (or the tree root).
func (t *btree) mutable(n *btreeNode) *btreeNode {
	if n.cow == t.cow {
		return n
	}
	cp := &btreeNode{cow: t.cow, items: append([]btreeItem(nil), n.items...)}
	if n.children != nil {
		cp.children = append([]*btreeNode(nil), n.children...)
	}
	return cp
}

// Len returns the number of stored entries.
func (t *btree) Len() int { return t.size }

// Insert adds an entry; inserting an existing key replaces its row ID and
// returns false.
func (t *btree) Insert(key []byte, rid int64) bool {
	t.root = t.mutable(t.root)
	if len(t.root.items) >= maxNodeItems {
		old := t.root
		t.root = &btreeNode{cow: t.cow, children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
	added := t.insert(t.root, btreeItem{key: key, rid: rid})
	if added {
		t.size++
	}
	return added
}

// splitChild splits the full child at position i of n, lifting its median
// item. n must already be mutable.
func (t *btree) splitChild(n *btreeNode, i int) {
	child := t.mutable(n.children[i])
	n.children[i] = child
	mid := btreeDegree - 1
	median := child.items[mid]
	right := &btreeNode{
		cow:   t.cow,
		items: append([]btreeItem(nil), child.items[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, btreeItem{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insert adds it below n, which must already be mutable.
func (t *btree) insert(n *btreeNode, it btreeItem) bool {
	i, found := n.find(it.key)
	if found {
		n.items[i].rid = it.rid
		return false
	}
	if n.leaf() {
		n.items = append(n.items, btreeItem{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = it
		return true
	}
	if len(n.children[i].items) >= maxNodeItems {
		t.splitChild(n, i)
		switch c := bytes.Compare(it.key, n.items[i].key); {
		case c == 0:
			n.items[i].rid = it.rid
			return false
		case c > 0:
			i++
		}
	}
	child := t.mutable(n.children[i])
	n.children[i] = child
	return t.insert(child, it)
}

// Get returns the row ID stored under an exact key.
func (t *btree) Get(key []byte) (int64, bool) {
	n := t.root
	for {
		i, found := n.find(key)
		if found {
			return n.items[i].rid, true
		}
		if n.leaf() {
			return 0, false
		}
		n = n.children[i]
	}
}

// Delete removes the entry with the exact key, reporting whether it existed.
func (t *btree) Delete(key []byte) bool {
	t.root = t.mutable(t.root)
	if !t.delete(t.root, key) {
		return false
	}
	t.size--
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	return true
}

const minItems = btreeDegree - 1

// delete removes key from the subtree rooted at n, following the classic
// CLRS structure; n must already be mutable. Invariant: when delete is
// called on a non-root node, the node has at least minItems+1 items, so
// removing one cannot underflow it.
func (t *btree) delete(n *btreeNode, key []byte) bool {
	i, found := n.find(key)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		left := t.mutable(n.children[i])
		n.children[i] = left
		if len(left.items) > minItems {
			// Replace with the in-order predecessor and delete it below.
			pred := left.max()
			n.items[i] = pred
			return t.delete(left, pred.key)
		}
		right := t.mutable(n.children[i+1])
		n.children[i+1] = right
		if len(right.items) > minItems {
			// Replace with the in-order successor and delete it below.
			succ := right.min()
			n.items[i] = succ
			return t.delete(right, succ.key)
		}
		// Both neighbours are minimal: merge them around the key and
		// delete from the merged child.
		t.mergeChildren(n, i)
		return t.delete(n.children[i], key)
	}
	// Not here: ensure the child we descend into has room, then recurse.
	i = t.growChild(n, i)
	child := t.mutable(n.children[i])
	n.children[i] = child
	return t.delete(child, key)
}

// max returns the rightmost item of the subtree rooted at n.
func (n *btreeNode) max() btreeItem {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// min returns the leftmost item of the subtree rooted at n.
func (n *btreeNode) min() btreeItem {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// mergeChildren merges child i, item i and child i+1 of n into a single
// child at position i. n must be mutable; the merged child is made mutable
// here (the right sibling is only read).
func (t *btree) mergeChildren(n *btreeNode, i int) {
	child := t.mutable(n.children[i])
	n.children[i] = child
	right := n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// growChild ensures the child at position i of n has more than minItems
// items so a delete can recurse into it, borrowing from a sibling or merging
// with one. It returns the (possibly shifted) child position to descend
// into. n must be mutable.
func (t *btree) growChild(n *btreeNode, i int) int {
	if len(n.children[i].items) > minItems {
		return i
	}
	switch {
	case i > 0 && len(n.children[i-1].items) > minItems:
		// Borrow through the parent from the left sibling.
		child := t.mutable(n.children[i])
		n.children[i] = child
		left := t.mutable(n.children[i-1])
		n.children[i-1] = left
		child.items = append(child.items, btreeItem{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
	case i < len(n.children)-1 && len(n.children[i+1].items) > minItems:
		// Borrow through the parent from the right sibling.
		child := t.mutable(n.children[i])
		n.children[i] = child
		right := t.mutable(n.children[i+1])
		n.children[i+1] = right
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			moved := right.children[0]
			right.children = append(right.children[:0], right.children[1:]...)
			child.children = append(child.children, moved)
		}
	default:
		// Merge with a neighbour; descending position may shift left.
		if i >= len(n.children)-1 {
			i--
		}
		t.mergeChildren(n, i)
	}
	return i
}

// maxItems is the largest number of items a node may hold.
const maxNodeItems = 2*btreeDegree - 1

// bulkLoad replaces the tree's contents with the given items, which must be
// sorted by key and free of duplicates. The tree is built bottom-up in O(n):
// the height is the smallest that can hold n items, and items are spread
// evenly across each level, so every non-root node ends up with between
// minItems and maxNodeItems items and all leaves sit at the same depth —
// exactly the invariants point inserts maintain, at a fraction of the cost.
func (t *btree) bulkLoad(items []btreeItem) {
	t.size = len(items)
	if len(items) == 0 {
		t.root = &btreeNode{cow: t.cow}
		return
	}
	t.root = bulkBuild(items, bulkHeight(len(items)), t.cow)
}

// bulkHeight returns the minimal height of a tree holding n items (0 = a
// single leaf node).
func bulkHeight(n int) int {
	h, c := 0, maxNodeItems
	for c < n {
		c = c*(2*btreeDegree) + maxNodeItems
		h++
	}
	return h
}

// bulkCapacity returns the maximum number of items a subtree of the given
// height can hold.
func bulkCapacity(height int) int {
	c := maxNodeItems
	for i := 0; i < height; i++ {
		c = c*(2*btreeDegree) + maxNodeItems
	}
	return c
}

// bulkBuild builds a subtree of exactly the given height from sorted items.
// The caller guarantees len(items) <= bulkCapacity(height), and — except for
// the root call at minimal height — len(items) > bulkCapacity(height-1), so
// the child count k is always at least 2 and the even split leaves every
// child with at least bulkCapacity(height-1)/2 >= minItems items.
func bulkBuild(items []btreeItem, height int, cow *cowToken) *btreeNode {
	if height == 0 {
		return &btreeNode{cow: cow, items: append([]btreeItem(nil), items...)}
	}
	n := len(items)
	capChild := bulkCapacity(height - 1)
	k := (n + 1 + capChild) / (capChild + 1) // ceil((n+1)/(capChild+1))
	childTotal := n - (k - 1)
	base, extra := childTotal/k, childTotal%k
	node := &btreeNode{
		cow:      cow,
		items:    make([]btreeItem, 0, k-1),
		children: make([]*btreeNode, 0, k),
	}
	pos := 0
	for c := 0; c < k; c++ {
		take := base
		if c < extra {
			take++
		}
		node.children = append(node.children, bulkBuild(items[pos:pos+take], height-1, cow))
		pos += take
		if c < k-1 {
			node.items = append(node.items, items[pos])
			pos++
		}
	}
	return node
}

// insertBulk adds the sorted, duplicate-free entries to the tree, choosing
// the cheapest maintenance strategy: a bottom-up build for an empty tree, a
// merge-and-rebuild when the batch is comparable to the tree, and ordered
// point inserts for small batches.
func (t *btree) insertBulk(sorted []btreeItem) {
	switch {
	case len(sorted) == 0:
	case t.size == 0:
		t.bulkLoad(sorted)
	case len(sorted) >= t.size/4:
		merged := make([]btreeItem, 0, t.size+len(sorted))
		i := 0
		t.AscendRange(nil, nil, func(key []byte, rid int64) bool {
			for i < len(sorted) && bytes.Compare(sorted[i].key, key) < 0 {
				merged = append(merged, sorted[i])
				i++
			}
			merged = append(merged, btreeItem{key: key, rid: rid})
			return true
		})
		merged = append(merged, sorted[i:]...)
		t.bulkLoad(merged)
	default:
		for _, it := range sorted {
			t.Insert(it.key, it.rid)
		}
	}
}

// AscendRange visits entries with from <= key < to in key order. A nil to
// means unbounded. The callback returns false to stop early.
func (t *btree) AscendRange(from, to []byte, fn func(key []byte, rid int64) bool) {
	t.root.ascend(from, to, fn)
}

func (n *btreeNode) ascend(from, to []byte, fn func(key []byte, rid int64) bool) bool {
	i := 0
	if from != nil {
		i, _ = n.find(from)
	}
	for ; i < len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(from, to, fn) {
				return false
			}
		}
		if to != nil && bytes.Compare(n.items[i].key, to) >= 0 {
			return false
		}
		if from == nil || bytes.Compare(n.items[i].key, from) >= 0 {
			if !fn(n.items[i].key, n.items[i].rid) {
				return false
			}
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(from, to, fn)
	}
	return true
}
