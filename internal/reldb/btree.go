package reldb

import (
	"bytes"
)

// btree is an in-memory B-tree mapping byte-string keys to row IDs. Index
// entries are made unique by suffixing the encoded column key with the row
// ID (see index.go), so the tree never stores duplicate keys. The tree is
// not internally synchronized; the owning DB's lock guards it.

const btreeDegree = 32 // max children per node = 2*degree

type btreeItem struct {
	key []byte
	rid int64
}

type btreeNode struct {
	items    []btreeItem
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// find returns the position of the first item with key >= k, and whether an
// exact match sits there.
func (n *btreeNode) find(k []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.items[mid].key, k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.items) && bytes.Equal(n.items[lo].key, k)
}

type btree struct {
	root *btreeNode
	size int
}

func newBTree() *btree { return &btree{root: &btreeNode{}} }

// Len returns the number of stored entries.
func (t *btree) Len() int { return t.size }

// Insert adds an entry; inserting an existing key replaces its row ID and
// returns false.
func (t *btree) Insert(key []byte, rid int64) bool {
	if len(t.root.items) >= 2*btreeDegree-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	added := t.root.insert(btreeItem{key: key, rid: rid})
	if added {
		t.size++
	}
	return added
}

// splitChild splits the full child at position i, lifting its median item.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := btreeDegree - 1
	median := child.items[mid]
	right := &btreeNode{
		items: append([]btreeItem(nil), child.items[mid+1:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.items = child.items[:mid]

	n.items = append(n.items, btreeItem{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *btreeNode) insert(it btreeItem) bool {
	i, found := n.find(it.key)
	if found {
		n.items[i].rid = it.rid
		return false
	}
	if n.leaf() {
		n.items = append(n.items, btreeItem{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = it
		return true
	}
	if len(n.children[i].items) >= 2*btreeDegree-1 {
		n.splitChild(i)
		switch c := bytes.Compare(it.key, n.items[i].key); {
		case c == 0:
			n.items[i].rid = it.rid
			return false
		case c > 0:
			i++
		}
	}
	return n.children[i].insert(it)
}

// Get returns the row ID stored under an exact key.
func (t *btree) Get(key []byte) (int64, bool) {
	n := t.root
	for {
		i, found := n.find(key)
		if found {
			return n.items[i].rid, true
		}
		if n.leaf() {
			return 0, false
		}
		n = n.children[i]
	}
}

// Delete removes the entry with the exact key, reporting whether it existed.
func (t *btree) Delete(key []byte) bool {
	if !t.root.delete(key) {
		return false
	}
	t.size--
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	return true
}

const minItems = btreeDegree - 1

// delete removes key from the subtree rooted at n, following the classic
// CLRS structure. Invariant: when delete is called on a non-root node, the
// node has at least minItems+1 items, so removing one cannot underflow it.
func (n *btreeNode) delete(key []byte) bool {
	i, found := n.find(key)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		switch {
		case len(n.children[i].items) > minItems:
			// Replace with the in-order predecessor and delete it below.
			pred := n.children[i].max()
			n.items[i] = pred
			return n.children[i].delete(pred.key)
		case len(n.children[i+1].items) > minItems:
			// Replace with the in-order successor and delete it below.
			succ := n.children[i+1].min()
			n.items[i] = succ
			return n.children[i+1].delete(succ.key)
		default:
			// Both neighbours are minimal: merge them around the key and
			// delete from the merged child.
			n.mergeChildren(i)
			return n.children[i].delete(key)
		}
	}
	// Not here: ensure the child we descend into has room, then recurse.
	i = n.growChild(i)
	return n.children[i].delete(key)
}

// max returns the rightmost item of the subtree rooted at n.
func (n *btreeNode) max() btreeItem {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

// min returns the leftmost item of the subtree rooted at n.
func (n *btreeNode) min() btreeItem {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// mergeChildren merges child i, item i and child i+1 into a single child at
// position i.
func (n *btreeNode) mergeChildren(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	child.items = append(child.items, right.items...)
	child.children = append(child.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// growChild ensures the child at position i has more than minItems items so
// a delete can recurse into it, borrowing from a sibling or merging with
// one. It returns the (possibly shifted) child position to descend into.
func (n *btreeNode) growChild(i int) int {
	if len(n.children[i].items) > minItems {
		return i
	}
	switch {
	case i > 0 && len(n.children[i-1].items) > minItems:
		// Borrow through the parent from the left sibling.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, btreeItem{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !left.leaf() {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = moved
		}
	case i < len(n.children)-1 && len(n.children[i+1].items) > minItems:
		// Borrow through the parent from the right sibling.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !right.leaf() {
			moved := right.children[0]
			right.children = append(right.children[:0], right.children[1:]...)
			child.children = append(child.children, moved)
		}
	default:
		// Merge with a neighbour; descending position may shift left.
		if i >= len(n.children)-1 {
			i--
		}
		n.mergeChildren(i)
	}
	return i
}

// AscendRange visits entries with from <= key < to in key order. A nil to
// means unbounded. The callback returns false to stop early.
func (t *btree) AscendRange(from, to []byte, fn func(key []byte, rid int64) bool) {
	t.root.ascend(from, to, fn)
}

func (n *btreeNode) ascend(from, to []byte, fn func(key []byte, rid int64) bool) bool {
	i := 0
	if from != nil {
		i, _ = n.find(from)
	}
	for ; i < len(n.items); i++ {
		if !n.leaf() {
			if !n.children[i].ascend(from, to, fn) {
				return false
			}
		}
		if to != nil && bytes.Compare(n.items[i].key, to) >= 0 {
			return false
		}
		if from == nil || bytes.Compare(n.items[i].key, from) >= 0 {
			if !fn(n.items[i].key, n.items[i].rid) {
				return false
			}
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascend(from, to, fn)
	}
	return true
}
