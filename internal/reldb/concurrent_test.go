package reldb

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentScanReaders runs many goroutines issuing index scans, heap
// scans, and counts against one DB while the rows stay fixed. Under -race
// this catches unsynchronized access in the read path (planner, index
// iteration, row materialization, stats counters).
func TestConcurrentScanReaders(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("ev", Schema{
		{Name: "run", Type: TString},
		{Name: "id", Type: TInt},
		{Name: "tag", Type: TString},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("ev_run", "ev", "run", "id"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("ev_id", "ev", "id"); err != nil {
		t.Fatal(err)
	}
	const runs, perRun = 8, 50
	for r := 0; r < runs; r++ {
		rows := make([]Row, perRun)
		for i := range rows {
			rows[i] = Row{S(fmt.Sprintf("run%d", r)), I(int64(i)), S(fmt.Sprintf("t%d.%d", r, i))}
		}
		if err := db.InsertBatch("ev", rows); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch i % 4 {
				case 0: // equality index scan
					run := fmt.Sprintf("run%d", (g+i)%runs)
					rows, err := db.Select("ev", []Pred{Eq("run", S(run))}, -1)
					if err != nil {
						errCh <- err
						return
					}
					if len(rows) != perRun {
						errCh <- fmt.Errorf("scan of %s saw %d rows, want %d", run, len(rows), perRun)
						return
					}
				case 1: // bounded range scan on the secondary index
					lo, hi := int64((g+i)%perRun), int64(perRun-1)
					rows, err := db.Select("ev", []Pred{Ge("id", I(lo)), Le("id", I(hi))}, -1)
					if err != nil {
						errCh <- err
						return
					}
					if want := int(hi-lo+1) * runs; len(rows) != want {
						errCh <- fmt.Errorf("range [%d,%d] saw %d rows, want %d", lo, hi, len(rows), want)
						return
					}
				case 2: // heap scan with a residual predicate
					n, err := db.Count("ev", []Pred{Eq("tag", S(fmt.Sprintf("t%d.%d", g%runs, i%perRun)))})
					if err != nil {
						errCh <- err
						return
					}
					if n != 1 {
						errCh <- fmt.Errorf("tag count = %d, want 1", n)
						return
					}
				case 3: // metadata reads
					if _, ok := db.Table("ev"); !ok {
						errCh <- fmt.Errorf("table vanished")
						return
					}
					db.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentReadersDuringWrites interleaves inserts into fresh runs with
// readers scanning already-committed runs: reads of committed data must stay
// stable and race-free while the writer appends.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("ev", Schema{
		{Name: "run", Type: TString},
		{Name: "id", Type: TInt},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("ev_run", "ev", "run", "id"); err != nil {
		t.Fatal(err)
	}
	const perRun = 25
	insertRun := func(r int) error {
		rows := make([]Row, perRun)
		for i := range rows {
			rows[i] = Row{S(fmt.Sprintf("run%d", r)), I(int64(i))}
		}
		return db.InsertBatch("ev", rows)
	}
	if err := insertRun(0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := db.Select("ev", []Pred{Eq("run", S("run0"))}, -1)
				if err != nil {
					errCh <- err
					return
				}
				if len(rows) != perRun {
					errCh <- fmt.Errorf("reader %d saw %d rows of run0, want %d", g, len(rows), perRun)
					return
				}
			}
		}(g)
	}
	for r := 1; r <= 10; r++ {
		if err := insertRun(r); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestCheckpointDuringConcurrentIngest checkpoints a durable database while
// worker goroutines are group-committing batches into it. Every batch whose
// InsertBatch returned before CloseDurable must survive recovery — captured
// either by a snapshot or by the post-checkpoint log — and the recovered
// indexes must agree with the heap. (Checkpoint holds the write lock across
// snapshot + truncate, so no committed batch can fall between the two.)
func TestCheckpointDuringConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("ev", Schema{
		{Name: "run", Type: TString},
		{Name: "id", Type: TInt},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("ev_run", "ev", "run", "id"); err != nil {
		t.Fatal(err)
	}

	const workers, batches, perBatch = 4, 12, 10
	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := fmt.Sprintf("run%d", w)
			for b := 0; b < batches; b++ {
				rows := make([]Row, perBatch)
				for i := range rows {
					rows[i] = Row{S(run), I(int64(b*perBatch + i))}
				}
				if err := db.InsertBatch("ev", rows); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if err := db.Checkpoint(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	<-done
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := db.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	back, err := OpenDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer back.CloseDurable()
	for w := 0; w < workers; w++ {
		run := fmt.Sprintf("run%d", w)
		n, err := back.Count("ev", []Pred{Eq("run", S(run))})
		if err != nil {
			t.Fatal(err)
		}
		if n != batches*perBatch {
			t.Fatalf("%s recovered %d rows, want %d", run, n, batches*perBatch)
		}
	}
	heap, err := back.Count("ev", nil)
	if err != nil || heap != workers*batches*perBatch {
		t.Fatalf("heap count = %d, %v", heap, err)
	}
}
