package reldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// Ablation: the provenance hot path relies on composite-index point lookups.
// These benchmarks quantify the design choice by comparing an indexed lookup
// against the full-scan fallback on the same data.

func populateBench(b *testing.B, rows int, indexed bool) *DB {
	b.Helper()
	db := NewDB()
	if _, err := db.CreateTable("events", eventsSchema()); err != nil {
		b.Fatal(err)
	}
	if indexed {
		if err := db.CreateIndex("ev", "events", "run", "proc", "port", "idx"); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	batch := make([]Row, 0, rows)
	for i := 0; i < rows; i++ {
		batch = append(batch, Row{
			S(fmt.Sprintf("run%d", rng.Intn(10))),
			S(fmt.Sprintf("proc%d", rng.Intn(100))),
			S("out"),
			S(fmt.Sprintf("[%06d]", i)),
			I(int64(i)),
		})
	}
	if err := db.InsertBatch("events", batch); err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkSelectIndexed(b *testing.B) {
	for _, rows := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			db := populateBench(b, rows, true)
			preds := []Pred{Eq("run", S("run3")), Eq("proc", S("proc42")), Eq("port", S("out"))}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Select("events", preds, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSelectFullScan(b *testing.B) {
	// Same query, no index: the access path NI would be stuck with if the
	// trace tables were unindexed.
	for _, rows := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			db := populateBench(b, rows, false)
			preds := []Pred{Eq("run", S("run3")), Eq("proc", S("proc42")), Eq("port", S("out"))}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Select("events", preds, -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	keys := make([][]byte, 100000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%09d", i*2654435761%100000))
	}
	b.ResetTimer()
	tr := newBTree()
	for i := 0; i < b.N; i++ {
		tr.Insert(keys[i%len(keys)], int64(i))
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	tr := newBTree()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Insert([]byte(fmt.Sprintf("key-%09d", i)), int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tr.Get([]byte(fmt.Sprintf("key-%09d", i%n))); !ok {
			b.Fatal("missing key")
		}
	}
}

func BenchmarkKeyEncode(b *testing.B) {
	row := Row{S("run003"), S("A_042"), S("y"), S("[000017.000023.]"), I(12345)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodeKey(nil, row...)
	}
}

func BenchmarkSnapshotSaveLoad(b *testing.B) {
	db := populateBench(b, 50000, true)
	dir := b.TempDir()
	path := dir + "/snap.db"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Save(path); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(path); err != nil {
			b.Fatal(err)
		}
	}
}
