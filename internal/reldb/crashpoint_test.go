package reldb_test

// Crash-point sweep: a deterministic workload (schema DDL, single-row
// commits, group commits, checkpoints, a delete) runs once against a
// counting fault-injection filesystem to learn the total number of I/O
// operations, then runs again once per operation index with either an
// injected error (fail mode, with and without retries) or a simulated crash
// (everything from that operation on silently stops persisting, with torn
// syncs). After every injected run the database directory is reopened with
// the real filesystem and the recovery invariants are asserted:
//
//   - every acknowledged commit is present, exactly once;
//   - an unacknowledged commit is atomic — all of its rows or none;
//   - a torn tail is dropped, never misread;
//   - secondary indexes agree with table contents.
//
// The sweep covers every injection point in WAL append, group commit,
// checkpoint (snapshot write, rename, directory sync, log truncation), and
// recovery itself. RELDB_CRASHPOINTS caps how many points are exercised
// (strided) so CI can bound the run time.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/reldb"
)

// crashStep is one commit of the sweep workload: an action plus the keys it
// adds to or deletes from the table, for the verifier to check against.
type crashStep struct {
	desc    string
	added   []int
	deleted []int
	run     func(db *reldb.DB) error
}

func crashRow(k int) reldb.Row {
	return reldb.Row{reldb.I(int64(k)), reldb.S(fmt.Sprintf("payload-%04d", k))}
}

func crashRows(ks []int) []reldb.Row {
	rows := make([]reldb.Row, len(ks))
	for i, k := range ks {
		rows[i] = crashRow(k)
	}
	return rows
}

func keyRange(lo, hi int) []int {
	ks := make([]int, 0, hi-lo)
	for k := lo; k < hi; k++ {
		ks = append(ks, k)
	}
	return ks
}

// crashScript is the canonical workload. It deliberately crosses every
// durability mechanism: single-record commits, group commits, two
// checkpoints (so records both covered and not covered by a snapshot
// exist), and a delete.
func crashScript() []crashStep {
	var steps []crashStep
	steps = append(steps,
		crashStep{desc: "create-table", run: func(db *reldb.DB) error {
			_, err := db.CreateTable("t", reldb.Schema{
				{Name: "k", Type: reldb.TInt},
				{Name: "s", Type: reldb.TString},
			})
			return err
		}},
		crashStep{desc: "create-index", run: func(db *reldb.DB) error {
			return db.CreateIndex("t_k", "t", "k")
		}},
	)
	for _, k := range keyRange(0, 4) {
		k := k
		steps = append(steps, crashStep{
			desc: fmt.Sprintf("insert-%d", k), added: []int{k},
			run: func(db *reldb.DB) error { _, err := db.Insert("t", crashRow(k)); return err },
		})
	}
	batch := func(name string, ks []int) crashStep {
		return crashStep{desc: name, added: ks, run: func(db *reldb.DB) error {
			return db.InsertBatch("t", crashRows(ks))
		}}
	}
	steps = append(steps, batch("batch-a", keyRange(10, 18)))
	steps = append(steps, crashStep{desc: "checkpoint-1", run: (*reldb.DB).Checkpoint})
	for _, k := range []int{4, 5} {
		k := k
		steps = append(steps, crashStep{
			desc: fmt.Sprintf("insert-%d", k), added: []int{k},
			run: func(db *reldb.DB) error { _, err := db.Insert("t", crashRow(k)); return err },
		})
	}
	steps = append(steps, crashStep{desc: "delete-4", deleted: []int{4}, run: func(db *reldb.DB) error {
		_, err := db.Delete("t", []reldb.Pred{reldb.Eq("k", reldb.I(4))})
		return err
	}})
	steps = append(steps, batch("batch-b", keyRange(20, 28)))
	steps = append(steps, crashStep{desc: "checkpoint-2", run: (*reldb.DB).Checkpoint})
	steps = append(steps, batch("batch-c", keyRange(30, 34)))
	return steps
}

// applyCrashScript opens a durable database over fs and runs the workload.
// A commit that returns nil while crashed() is still false is acknowledged;
// a commit that returns nil after the simulated crash, or that fails, is
// pending (its effects are indeterminate). With retry set, transient errors
// are retried up to three times — exercising the rollback and log-repair
// paths that make commits retryable. A persistent error aborts the workload
// the way an application would.
func applyCrashScript(fs reldb.VFS, dir string, crashed func() bool, retry bool) (acked, pending []crashStep, err error) {
	db, err := reldb.OpenDurableVFS(fs, dir)
	if err != nil {
		return nil, nil, err
	}
	defer db.CloseDurable()
	for _, s := range crashScript() {
		err := s.run(db)
		if retry {
			for attempt := 0; err != nil && reldb.IsTransient(err) && attempt < 3; attempt++ {
				err = s.run(db)
			}
		}
		if err != nil {
			pending = append(pending, s)
			return acked, pending, nil
		}
		if crashed != nil && crashed() {
			pending = append(pending, s)
			continue
		}
		acked = append(acked, s)
	}
	return acked, pending, nil
}

// verifyCrashState reopens dir with the real filesystem and asserts the
// recovery invariants against the acknowledged and pending commit sets.
func verifyCrashState(t *testing.T, label, dir string, acked, pending []crashStep) {
	t.Helper()
	db, err := reldb.OpenDurable(dir)
	if err != nil {
		t.Fatalf("%s: reopen after injected run: %v", label, err)
	}
	defer db.CloseDurable()

	ackedDesc := make(map[string]bool, len(acked))
	for _, s := range acked {
		ackedDesc[s.desc] = true
	}
	tbl, haveTable := db.Table("t")
	if !haveTable {
		if ackedDesc["create-table"] {
			t.Fatalf("%s: acknowledged create-table lost", label)
		}
		return // nothing else can have been acknowledged
	}
	if ackedDesc["create-index"] {
		if _, ok := tbl.FindIndex("t_k"); !ok {
			t.Fatalf("%s: acknowledged create-index lost", label)
		}
	}

	count := func(k int) int {
		n, err := db.Count("t", []reldb.Pred{reldb.Eq("k", reldb.I(int64(k)))})
		if err != nil {
			t.Fatalf("%s: count key %d: %v", label, k, err)
		}
		return n
	}

	pendingDeleted := map[int]bool{}
	for _, s := range pending {
		for _, k := range s.deleted {
			pendingDeleted[k] = true
		}
	}

	// Fold the acknowledged commits in order into the expected final state:
	// every key it holds must be present exactly once (unless an in-flight
	// delete touched it), and every key an acknowledged delete removed must
	// stay gone.
	expected := map[int]bool{}
	removed := map[int]bool{}
	for _, s := range acked {
		for _, k := range s.added {
			expected[k] = true
			delete(removed, k)
		}
		for _, k := range s.deleted {
			delete(expected, k)
			removed[k] = true
		}
	}
	for k := range expected {
		switch n := count(k); {
		case n == 1:
		case n == 0 && pendingDeleted[k]:
		default:
			t.Fatalf("%s: acked key %d has %d copies, want 1", label, k, n)
		}
	}
	for k := range removed {
		if n := count(k); n != 0 {
			t.Fatalf("%s: acked delete of key %d undone: %d copies present", label, k, n)
		}
	}

	// Unacknowledged commits are atomic: all rows of a batch or none, and
	// never duplicated.
	for _, s := range pending {
		if len(s.added) > 0 {
			first := count(s.added[0])
			if first != 0 && first != 1 {
				t.Fatalf("%s: pending commit %s: key %d has %d copies", label, s.desc, s.added[0], first)
			}
			for _, k := range s.added[1:] {
				if n := count(k); n != first {
					t.Fatalf("%s: pending commit %s persisted partially: key %d count %d, key %d count %d",
						label, s.desc, s.added[0], first, k, n)
				}
			}
		}
		for _, k := range s.deleted {
			if n := count(k); n > 1 {
				t.Fatalf("%s: pending delete %s: key %d has %d copies", label, s.desc, k, n)
			}
		}
	}

	// No phantom or double-counted rows: the heap total equals the sum of
	// per-key counts over every key the workload ever mentions.
	allKeys := map[int]bool{}
	for _, s := range append(append([]crashStep{}, acked...), pending...) {
		for _, k := range s.added {
			allKeys[k] = true
		}
	}
	sum := 0
	for k := range allKeys {
		sum += count(k)
	}
	total, err := db.Count("t", nil)
	if err != nil {
		t.Fatalf("%s: total count: %v", label, err)
	}
	if total != sum {
		t.Fatalf("%s: table holds %d rows but per-key counts sum to %d", label, total, sum)
	}

	// Indexes match table contents.
	if problems := db.VerifyIndexes(); len(problems) > 0 {
		t.Fatalf("%s: index integrity violations after recovery: %v", label, problems)
	}
}

// crashPointStride returns the sweep step for a given total, honoring the
// RELDB_CRASHPOINTS cap (number of points to exercise per mode).
func crashPointStride(total int) int {
	if cap := os.Getenv("RELDB_CRASHPOINTS"); cap != "" {
		if n, err := strconv.Atoi(cap); err == nil && n > 0 && total > n {
			return (total + n - 1) / n
		}
	}
	return 1
}

func TestCrashPointSweep(t *testing.T) {
	// Probe run: learn the operation count and confirm the workload is green
	// without faults.
	probeDir := t.TempDir()
	probe := faultfs.New(reldb.OSFS{})
	acked, pending, err := applyCrashScript(probe, probeDir, probe.Crashed, false)
	if err != nil {
		t.Fatalf("probe open: %v", err)
	}
	if len(pending) != 0 {
		t.Fatalf("clean probe run left pending commits: %v", pending)
	}
	verifyCrashState(t, "probe", probeDir, acked, pending)
	total := probe.Ops()
	if total < 40 {
		t.Fatalf("probe counted only %d operations; the sweep would be vacuous", total)
	}
	stride := crashPointStride(total)
	t.Logf("sweeping %d injection points (stride %d) per mode", total, stride)

	modes := []struct {
		name  string
		retry bool
		crash bool
	}{
		{name: "fail", retry: false},
		{name: "fail-retry", retry: true},
		{name: "crash", crash: true},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			for n := 1; n <= total; n += stride {
				dir := t.TempDir()
				fs := faultfs.New(reldb.OSFS{})
				if m.crash {
					fs.CrashAt(n)
				} else {
					fs.FailAt(n)
				}
				acked, pending, openErr := applyCrashScript(fs, dir, fs.Crashed, m.retry)
				label := fmt.Sprintf("%s@%d", m.name, n)
				if openErr != nil {
					// The injection hit the open itself; the directory must
					// still recover cleanly (to its pre-run state).
					verifyCrashState(t, label, dir, nil, nil)
					continue
				}
				verifyCrashState(t, label, dir, acked, pending)
			}
		})
	}
}

// TestRecoveryFaultPoints aims injections at recovery itself: a directory
// holding a snapshot, live WAL records, and a torn tail is reopened with a
// fault at each recovery operation. An injected error must abort the open
// without damaging the directory; a simulated crash mid-recovery must leave
// a directory that still recovers to the same state.
func TestRecoveryFaultPoints(t *testing.T) {
	// Build the fixture with the real filesystem.
	seedDir := t.TempDir()
	db, err := reldb.OpenDurable(seedDir)
	if err != nil {
		t.Fatalf("seed open: %v", err)
	}
	if _, err := db.CreateTable("t", reldb.Schema{
		{Name: "k", Type: reldb.TInt},
		{Name: "s", Type: reldb.TString},
	}); err != nil {
		t.Fatalf("seed create table: %v", err)
	}
	if err := db.CreateIndex("t_k", "t", "k"); err != nil {
		t.Fatalf("seed create index: %v", err)
	}
	if err := db.InsertBatch("t", crashRows(keyRange(0, 10))); err != nil {
		t.Fatalf("seed batch: %v", err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("seed checkpoint: %v", err)
	}
	if err := db.InsertBatch("t", crashRows(keyRange(10, 15))); err != nil {
		t.Fatalf("seed batch 2: %v", err)
	}
	if err := db.CloseDurable(); err != nil {
		t.Fatalf("seed close: %v", err)
	}
	// Torn tail: garbage bytes shorter than a record header.
	wf, err := os.OpenFile(filepath.Join(seedDir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open wal for tearing: %v", err)
	}
	if _, err := wf.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatalf("tear wal: %v", err)
	}
	wf.Close()

	snap, err := os.ReadFile(filepath.Join(seedDir, "snapshot.db"))
	if err != nil {
		t.Fatalf("read seed snapshot: %v", err)
	}
	wal, err := os.ReadFile(filepath.Join(seedDir, "wal.log"))
	if err != nil {
		t.Fatalf("read seed wal: %v", err)
	}
	restore := func() string {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "snapshot.db"), snap, 0o644); err != nil {
			t.Fatalf("restore snapshot: %v", err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), wal, 0o644); err != nil {
			t.Fatalf("restore wal: %v", err)
		}
		return dir
	}
	checkState := func(label string, db *reldb.DB) {
		t.Helper()
		for _, k := range keyRange(0, 15) {
			n, err := db.Count("t", []reldb.Pred{reldb.Eq("k", reldb.I(int64(k)))})
			if err != nil {
				t.Fatalf("%s: count key %d: %v", label, k, err)
			}
			if n != 1 {
				t.Fatalf("%s: key %d has %d copies, want 1", label, k, n)
			}
		}
		if problems := db.VerifyIndexes(); len(problems) > 0 {
			t.Fatalf("%s: index problems: %v", label, problems)
		}
	}

	// Probe: count the operations one recovery performs.
	probe := faultfs.New(reldb.OSFS{})
	pdb, err := reldb.OpenDurableVFS(probe, restore())
	if err != nil {
		t.Fatalf("probe recovery: %v", err)
	}
	checkState("probe", pdb)
	pdb.CloseDurable()
	total := probe.Ops()
	if total < 3 {
		t.Fatalf("recovery probe counted only %d operations", total)
	}

	for n := 1; n <= total; n++ {
		// Fail mode: the open either fails cleanly or yields the full state;
		// either way the directory still recovers afterwards.
		dir := restore()
		fs := faultfs.New(reldb.OSFS{})
		fs.FailAt(n)
		label := fmt.Sprintf("recovery-fail@%d", n)
		if db, err := reldb.OpenDurableVFS(fs, dir); err == nil {
			checkState(label, db)
			db.CloseDurable()
		}
		again, err := reldb.OpenDurable(dir)
		if err != nil {
			t.Fatalf("%s: directory no longer recovers: %v", label, err)
		}
		checkState(label+"/reopen", again)
		again.CloseDurable()

		// Crash mode: recovery's own writes (tail truncation, log handle)
		// stop persisting; the state read back must be intact now and after
		// a later clean reopen.
		dir = restore()
		fs = faultfs.New(reldb.OSFS{})
		fs.CrashAt(n)
		label = fmt.Sprintf("recovery-crash@%d", n)
		if db, err := reldb.OpenDurableVFS(fs, dir); err == nil {
			checkState(label, db)
			db.CloseDurable()
		} else {
			t.Fatalf("%s: simulated crash surfaced an error: %v", label, err)
		}
		again, err = reldb.OpenDurable(dir)
		if err != nil {
			t.Fatalf("%s: directory no longer recovers: %v", label, err)
		}
		checkState(label+"/reopen", again)
		again.CloseDurable()
	}
}
