package reldb

import (
	"bytes"
	"math"
	"os"
	"testing"
)

// fuzzDatums reconstructs a small []Datum from raw fuzz bytes: the corpus
// drives both the column types and their contents.
func fuzzDatums(data []byte) []Datum {
	var ds []Datum
	for len(data) > 0 && len(ds) < 8 {
		kind := data[0] % 5
		data = data[1:]
		take := func(n int) []byte {
			if n > len(data) {
				n = len(data)
			}
			chunk := data[:n]
			data = data[n:]
			return chunk
		}
		switch kind {
		case 0:
			ds = append(ds, Null)
		case 1:
			var v int64
			for _, b := range take(8) {
				v = v<<8 | int64(b)
			}
			ds = append(ds, I(v))
		case 2:
			var bits uint64
			for _, b := range take(8) {
				bits = bits<<8 | uint64(b)
			}
			f := math.Float64frombits(bits)
			if math.IsNaN(f) {
				f = 0 // NaN breaks ordering by definition; not a valid key
			}
			ds = append(ds, F(f))
		case 3, 4:
			n := 1
			if len(data) > 0 {
				n = int(data[0]%16) + 1
				data = data[1:]
			}
			chunk := take(n)
			if kind == 3 {
				ds = append(ds, S(string(chunk)))
			} else {
				ds = append(ds, B(chunk))
			}
		}
	}
	return ds
}

// FuzzKeyEncRoundTrip checks the two contracts of the key encoding on
// arbitrary datum tuples: DecodeKey inverts EncodeKey exactly, and
// bytes.Compare on encodings agrees with column-wise Datum.Compare
// (order preservation, which every index scan depends on).
func FuzzKeyEncRoundTrip(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 42}, []byte{3, 2, 'h', 'i'})
	f.Add([]byte{0, 2, 63, 240, 0, 0, 0, 0, 0, 0}, []byte{4, 3, 0, 1, 2})
	f.Add([]byte{3, 1, 0}, []byte{3, 1, 0xFF})
	f.Add([]byte{1, 255, 255, 255, 255, 255, 255, 255, 255}, []byte{1, 0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a, b := fuzzDatums(rawA), fuzzDatums(rawB)

		encA := EncodeKey(nil, a...)
		decA, rest, err := DecodeKey(encA, len(a))
		if err != nil {
			t.Fatalf("DecodeKey(EncodeKey(%v)) failed: %v", a, err)
		}
		if len(rest) != 0 {
			t.Fatalf("DecodeKey left %d residual bytes for %v", len(rest), a)
		}
		if len(decA) != len(a) {
			t.Fatalf("round trip count %d != %d", len(decA), len(a))
		}
		for i := range a {
			if a[i].Compare(decA[i]) != 0 {
				t.Fatalf("datum %d: %v round-tripped to %v", i, a[i], decA[i])
			}
		}

		// Order preservation over equal-length tuples (column-wise order is
		// only defined position by position).
		if len(a) == len(b) && len(a) > 0 {
			encB := EncodeKey(nil, b...)
			want := 0
			for i := range a {
				if c := a[i].Compare(b[i]); c != 0 {
					want = c
					break
				}
			}
			got := bytes.Compare(encA, encB)
			if (got < 0) != (want < 0) || (got > 0) != (want > 0) {
				t.Fatalf("ordering mismatch: datums %v vs %v compare %d, keys compare %d",
					a, b, want, got)
			}
		}

		// Prefix property: the encoding of a[:1] must be a byte prefix of the
		// full tuple's encoding.
		if len(a) > 1 {
			if !bytes.HasPrefix(encA, EncodeKey(nil, a[0])) {
				t.Fatalf("encoding of %v does not extend its first column's", a)
			}
		}
	})
}

// FuzzDecodeKey feeds arbitrary bytes to DecodeKey: malformed keys must be
// rejected with an error, never a panic or an out-of-bounds read.
func FuzzDecodeKey(f *testing.F) {
	f.Add([]byte{0x01, 1, 2, 3, 4, 5, 6, 7, 8}, 1)
	f.Add([]byte{0x03, 'a', 0x00, 0x00}, 1)
	f.Add([]byte{0x03, 0x00}, 1)
	f.Add([]byte{0xFF}, 2)
	f.Add([]byte{}, 1)
	f.Fuzz(func(t *testing.T, key []byte, n int) {
		if n < 0 || n > 16 {
			return
		}
		ds, _, err := DecodeKey(key, n)
		if err != nil {
			return
		}
		// A successful decode must re-encode canonically: encoding the decoded
		// datums and decoding again is a fixed point (byte equality with the
		// input is not required — the encoder canonicalizes, e.g. -0.0).
		reenc := EncodeKey(nil, ds...)
		ds2, rest2, err := DecodeKey(reenc, n)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-decoding %x failed: %v (rest %d)", reenc, err, len(rest2))
		}
		for i := range ds {
			if ds[i].Compare(ds2[i]) != 0 {
				t.Fatalf("datum %d: %v re-decoded to %v", i, ds[i], ds2[i])
			}
		}
		if again := EncodeKey(nil, ds2...); !bytes.Equal(again, reenc) {
			t.Fatalf("canonical encoding not a fixed point: %x vs %x", again, reenc)
		}
	})
}

// FuzzPrefixSuccessor: for any prefix with a successor, every extension of
// the prefix must sort strictly below it.
func FuzzPrefixSuccessor(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4})
	f.Add([]byte{0xFF, 0xFF}, []byte{0})
	f.Add([]byte{}, []byte{9})
	f.Fuzz(func(t *testing.T, prefix, ext []byte) {
		succ := PrefixSuccessor(prefix)
		if succ == nil {
			for _, c := range prefix {
				if c != 0xFF {
					t.Fatalf("PrefixSuccessor(%x) = nil with a non-0xFF byte", prefix)
				}
			}
			return
		}
		extended := append(append([]byte(nil), prefix...), ext...)
		if bytes.Compare(extended, succ) >= 0 {
			t.Fatalf("extension %x not below successor %x", extended, succ)
		}
		if bytes.Compare(prefix, succ) >= 0 {
			t.Fatalf("prefix %x not below its successor %x", prefix, succ)
		}
	})
}

// FuzzWALBatchRecovery builds a durable database whose log holds schema
// records plus group-committed recInsertBatch records, then mutilates the
// log — truncating it at an arbitrary offset and optionally flipping a byte
// — and reopens. The recovery contract for batched ingest: opening either
// fails cleanly or yields a database whose row count is a whole number of
// batches (a torn batch is dropped atomically, never split) and whose
// indexes agree with the heap.
func FuzzWALBatchRecovery(f *testing.F) {
	f.Add(uint16(0), false, uint16(0))
	f.Add(uint16(40), false, uint16(0))
	f.Add(uint16(1<<15), true, uint16(7))
	f.Add(uint16(200), true, uint16(199))
	f.Fuzz(func(t *testing.T, cut uint16, flip bool, flipPos uint16) {
		dir := t.TempDir()
		db, err := OpenDurable(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateTable("t", Schema{{Name: "n", Type: TInt}, {Name: "s", Type: TString}}); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("t_n", "t", "n"); err != nil {
			t.Fatal(err)
		}
		const batches, perBatch = 4, 8
		for b := 0; b < batches; b++ {
			rows := make([]Row, perBatch)
			for i := range rows {
				rows[i] = Row{I(int64(b*perBatch + i)), S("v")}
			}
			if err := db.InsertBatch("t", rows); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.CloseDurable(); err != nil {
			t.Fatal(err)
		}

		path := dir + "/" + walFile
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		n := int(cut) % (len(data) + 1)
		mut := append([]byte(nil), data[:n]...)
		if flip && len(mut) > 0 {
			mut[int(flipPos)%len(mut)] ^= 0xA5
		}
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}

		back, err := OpenDurable(dir)
		if err != nil {
			return // corrupt mid-log: a clean failure is allowed
		}
		defer back.CloseDurable()
		tab, ok := back.Table("t")
		if !ok {
			return // log cut before the schema records
		}
		heap := tab.NumRows()
		if heap%perBatch != 0 || heap > batches*perBatch {
			t.Fatalf("recovered %d rows: torn batch replayed partially", heap)
		}
		viaIdx, err := back.Count("t", []Pred{Ge("n", I(0))})
		if _, hasIdx := tab.FindIndex("t_n"); hasIdx {
			if err != nil || viaIdx != heap {
				t.Fatalf("index sees %d rows, heap %d (%v)", viaIdx, heap, err)
			}
		}
	})
}
