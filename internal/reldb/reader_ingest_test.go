package reldb_test

// Reader-during-ingest crash sweep: the crashpoint workload (see
// crashpoint_test.go) runs again under fault injection, this time with a
// snapshot reader interleaved with ingest. Two invariants extend the sweep:
//
//   - acked-commits-visible-at-their-epoch: immediately after a commit is
//     acknowledged, a snapshot pinned at the then-current epoch sees every
//     acknowledged key exactly once (and every acknowledged delete absent) —
//     no matter what faults later operations hit;
//   - pinned-snapshot stability: a snapshot pinned after commit N still
//     answers with commit N's exact state after later commits, faults, and
//     checkpoints have run — ingest never bleeds into a pinned reader.
//
// Reads go through the in-memory version chain, so they must stay correct
// even while the injected filesystem is failing or silently dropping writes
// underneath the ingest path. After recovery, a fresh snapshot must agree
// with the live read path on the recovered state.

import (
	"fmt"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/reldb"
)

// readerExpect is the state an acknowledged prefix of the workload implies:
// present keys and deleted keys, plus the epoch a snapshot of that state was
// pinned at.
type readerExpect struct {
	epoch   uint64
	present map[int]bool
	removed map[int]bool
}

// checkSnapshot asserts a snapshot answers exactly exp.
func checkSnapshot(label string, snap *reldb.Snapshot, exp readerExpect) error {
	if got := snap.Epoch(); got != exp.epoch {
		return fmt.Errorf("%s: snapshot epoch drifted: pinned %d, now reports %d", label, exp.epoch, got)
	}
	count := func(k int) (int, error) {
		return snap.Count("t", []reldb.Pred{reldb.Eq("k", reldb.I(int64(k)))})
	}
	for k := range exp.present {
		n, err := count(k)
		if err != nil {
			return fmt.Errorf("%s: count key %d: %w", label, k, err)
		}
		if n != 1 {
			return fmt.Errorf("%s: acked key %d has %d copies at epoch %d, want 1", label, k, n, exp.epoch)
		}
	}
	for k := range exp.removed {
		n, err := count(k)
		if err != nil {
			return fmt.Errorf("%s: count deleted key %d: %w", label, k, err)
		}
		if n != 0 {
			return fmt.Errorf("%s: acked delete of key %d not visible at epoch %d: %d copies", label, k, exp.epoch, n)
		}
	}
	return nil
}

// applyCrashScriptWithReader runs the crash workload with the interleaved
// reader checks. Snapshot checks only run for acknowledged commits — once
// crashed() reports true the epoch bookkeeping of later commits is
// indeterminate by design.
func applyCrashScriptWithReader(fs reldb.VFS, dir string, crashed func() bool) (acked []crashStep, readerErr, err error) {
	db, err := reldb.OpenDurableVFS(fs, dir)
	if err != nil {
		return nil, nil, err
	}
	defer db.CloseDurable()

	present := map[int]bool{}
	removed := map[int]bool{}
	var (
		pinned    *reldb.Snapshot
		pinnedExp readerExpect
		lastEpoch uint64
	)
	for stepNo, s := range crashScript() {
		if err := s.run(db); err != nil {
			return acked, readerErr, nil
		}
		if crashed != nil && crashed() {
			continue
		}
		acked = append(acked, s)
		for _, k := range s.added {
			present[k] = true
			delete(removed, k)
		}
		for _, k := range s.deleted {
			delete(present, k)
			removed[k] = true
		}

		// The pinned snapshot from an earlier commit must be byte-stable.
		if pinned != nil {
			if err := checkSnapshot(fmt.Sprintf("stability@step%d", stepNo), pinned, pinnedExp); err != nil && readerErr == nil {
				readerErr = err
			}
			pinned.Release()
		}

		// A fresh snapshot must see exactly the acknowledged state, at a
		// non-decreasing epoch.
		snap := db.Snapshot()
		if snap.Epoch() < lastEpoch {
			if readerErr == nil {
				readerErr = fmt.Errorf("epoch went backwards after %s: %d -> %d", s.desc, lastEpoch, snap.Epoch())
			}
		}
		lastEpoch = snap.Epoch()
		exp := readerExpect{epoch: snap.Epoch(), present: copyKeys(present), removed: copyKeys(removed)}
		if err := checkSnapshot(fmt.Sprintf("visible@%s", s.desc), snap, exp); err != nil && readerErr == nil {
			readerErr = err
		}
		pinned, pinnedExp = snap, exp
	}
	if pinned != nil {
		pinned.Release()
	}
	return acked, readerErr, nil
}

func copyKeys(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func TestCrashSweepReaderDuringIngest(t *testing.T) {
	// Probe run: fault-free, every reader invariant must hold, and it counts
	// the injection points.
	probeDir := t.TempDir()
	probe := faultfs.New(reldb.OSFS{})
	acked, readerErr, err := applyCrashScriptWithReader(probe, probeDir, probe.Crashed)
	if err != nil {
		t.Fatalf("probe open: %v", err)
	}
	if readerErr != nil {
		t.Fatalf("probe reader invariant: %v", readerErr)
	}
	if len(acked) != len(crashScript()) {
		t.Fatalf("clean probe acked %d of %d steps", len(acked), len(crashScript()))
	}
	total := probe.Ops()
	stride := crashPointStride(total)
	t.Logf("sweeping %d injection points (stride %d) per mode", total, stride)

	for _, mode := range []string{"fail", "crash"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			for n := 1; n <= total; n += stride {
				dir := t.TempDir()
				fs := faultfs.New(reldb.OSFS{})
				if mode == "crash" {
					fs.CrashAt(n)
				} else {
					fs.FailAt(n)
				}
				label := fmt.Sprintf("%s@%d", mode, n)
				acked, readerErr, openErr := applyCrashScriptWithReader(fs, dir, fs.Crashed)
				if openErr != nil {
					continue // injection hit the open; nothing was read
				}
				if readerErr != nil {
					t.Fatalf("%s: reader invariant violated: %v", label, readerErr)
				}

				// Recovery: a fresh snapshot of the reopened directory must
				// agree with the live read path (same epoch-pinned machinery
				// the sweep exercised under faults).
				db, err := reldb.OpenDurable(dir)
				if err != nil {
					t.Fatalf("%s: reopen: %v", label, err)
				}
				snap := db.Snapshot()
				for _, s := range acked {
					for _, k := range s.added {
						live, err := db.Count("t", []reldb.Pred{reldb.Eq("k", reldb.I(int64(k)))})
						if err != nil {
							t.Fatalf("%s: live count after reopen: %v", label, err)
						}
						pinnedN, err := snap.Count("t", []reldb.Pred{reldb.Eq("k", reldb.I(int64(k)))})
						if err != nil {
							t.Fatalf("%s: snapshot count after reopen: %v", label, err)
						}
						if live != pinnedN {
							t.Fatalf("%s: post-recovery snapshot disagrees with live reads for key %d: %d vs %d",
								label, k, pinnedN, live)
						}
					}
				}
				snap.Release()
				db.CloseDurable()
			}
		})
	}
}
