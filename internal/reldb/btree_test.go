package reldb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

func TestBTreeInsertGet(t *testing.T) {
	tr := newBTree()
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if !tr.Insert(key(i), int64(i)) {
			t.Fatalf("Insert(%d) reported duplicate", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		rid, ok := tr.Get(key(i))
		if !ok || rid != int64(i) {
			t.Fatalf("Get(%d) = %d, %v", i, rid, ok)
		}
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Error("Get found a missing key")
	}
	// Replacing an existing key is not an insertion.
	if tr.Insert(key(7), 999) {
		t.Error("duplicate insert reported as new")
	}
	if rid, _ := tr.Get(key(7)); rid != 999 {
		t.Errorf("replacement not applied: %d", rid)
	}
	if tr.Len() != n {
		t.Errorf("Len changed on replacement: %d", tr.Len())
	}
}

func TestBTreeAscendRange(t *testing.T) {
	tr := newBTree()
	const n = 1000
	for _, i := range rand.New(rand.NewSource(2)).Perm(n) {
		tr.Insert(key(i), int64(i))
	}
	var got []int64
	tr.AscendRange(key(100), key(200), func(k []byte, rid int64) bool {
		got = append(got, rid)
		return true
	})
	if len(got) != 100 {
		t.Fatalf("range size = %d, want 100", len(got))
	}
	for i, rid := range got {
		if rid != int64(100+i) {
			t.Fatalf("range[%d] = %d", i, rid)
		}
	}
	// Unbounded scan returns everything in order.
	var all []int64
	tr.AscendRange(nil, nil, func(k []byte, rid int64) bool {
		all = append(all, rid)
		return true
	})
	if len(all) != n || !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Fatalf("full scan wrong: len=%d", len(all))
	}
	// Early stop.
	count := 0
	tr.AscendRange(nil, nil, func([]byte, int64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := newBTree()
	const n = 3000
	rng := rand.New(rand.NewSource(3))
	for _, i := range rng.Perm(n) {
		tr.Insert(key(i), int64(i))
	}
	// Delete a random half.
	deleted := map[int]bool{}
	for _, i := range rng.Perm(n)[:n/2] {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
		deleted[i] = true
	}
	if tr.Delete([]byte("missing")) {
		t.Error("Delete of missing key succeeded")
	}
	if tr.Len() != n-n/2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(key(i))
		if ok == deleted[i] {
			t.Fatalf("Get(%d) = %v after deletion=%v", i, ok, deleted[i])
		}
	}
	// Remaining keys still come out sorted and complete.
	var rest []int64
	tr.AscendRange(nil, nil, func(k []byte, rid int64) bool {
		rest = append(rest, rid)
		return true
	})
	if len(rest) != n-n/2 {
		t.Fatalf("scan after delete = %d items", len(rest))
	}
	for i := 1; i < len(rest); i++ {
		if rest[i-1] >= rest[i] {
			t.Fatal("scan after delete out of order")
		}
	}
}

func TestBTreeDeleteAll(t *testing.T) {
	tr := newBTree()
	const n = 500
	for i := 0; i < n; i++ {
		tr.Insert(key(i), int64(i))
	}
	for i := n - 1; i >= 0; i-- {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	tr.AscendRange(nil, nil, func([]byte, int64) bool {
		t.Fatal("scan found items in empty tree")
		return false
	})
	// Tree remains usable.
	tr.Insert(key(1), 1)
	if rid, ok := tr.Get(key(1)); !ok || rid != 1 {
		t.Error("tree unusable after full drain")
	}
}

// TestBTreeRandomOpsAgainstMap drives the tree with a random operation mix
// and checks it against a reference map plus invariant checks.
func TestBTreeRandomOpsAgainstMap(t *testing.T) {
	tr := newBTree()
	ref := map[string]int64{}
	rng := rand.New(rand.NewSource(4))
	for op := 0; op < 40000; op++ {
		k := key(rng.Intn(800))
		switch rng.Intn(3) {
		case 0:
			v := rng.Int63()
			tr.Insert(k, v)
			ref[string(k)] = v
		case 1:
			got := tr.Delete(k)
			_, want := ref[string(k)]
			if got != want {
				t.Fatalf("op %d: Delete(%s) = %v, want %v", op, k, got, want)
			}
			delete(ref, string(k))
		case 2:
			rid, ok := tr.Get(k)
			want, wok := ref[string(k)]
			if ok != wok || (ok && rid != want) {
				t.Fatalf("op %d: Get(%s) = %d,%v want %d,%v", op, k, rid, ok, want, wok)
			}
		}
		if op%5000 == 0 {
			checkBTreeInvariants(t, tr)
		}
	}
	checkBTreeInvariants(t, tr)
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
	var keys []string
	tr.AscendRange(nil, nil, func(k []byte, _ int64) bool {
		keys = append(keys, string(k))
		return true
	})
	if len(keys) != len(ref) {
		t.Fatalf("scan = %d keys, ref = %d", len(keys), len(ref))
	}
	for _, k := range keys {
		if _, ok := ref[k]; !ok {
			t.Fatalf("scan produced unknown key %q", k)
		}
	}
}

// checkBTreeInvariants verifies sortedness, key separation, node occupancy
// and uniform leaf depth.
func checkBTreeInvariants(t *testing.T, tr *btree) {
	t.Helper()
	leafDepth := -1
	var walk func(n *btreeNode, depth int, lo, hi []byte)
	walk = func(n *btreeNode, depth int, lo, hi []byte) {
		if n != tr.root && len(n.items) < minItems {
			t.Fatalf("node underflow: %d items", len(n.items))
		}
		if len(n.items) > 2*btreeDegree-1 {
			t.Fatalf("node overflow: %d items", len(n.items))
		}
		for i := 0; i < len(n.items); i++ {
			k := n.items[i].key
			if i > 0 && bytes.Compare(n.items[i-1].key, k) >= 0 {
				t.Fatal("items out of order within node")
			}
			if lo != nil && bytes.Compare(k, lo) <= 0 {
				t.Fatal("item violates lower separator")
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				t.Fatal("item violates upper separator")
			}
		}
		if n.leaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("leaves at depths %d and %d", leafDepth, depth)
			}
			return
		}
		if len(n.children) != len(n.items)+1 {
			t.Fatalf("node has %d items but %d children", len(n.items), len(n.children))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.items[i-1].key
			}
			if i < len(n.items) {
				chi = n.items[i].key
			}
			walk(c, depth+1, clo, chi)
		}
	}
	walk(tr.root, 0, nil, nil)
}

// bulkItems returns n sorted, unique items.
func bulkItems(n int) []btreeItem {
	items := make([]btreeItem, n)
	for i := range items {
		items[i] = btreeItem{key: key(i), rid: int64(i)}
	}
	return items
}

func TestBTreeBulkLoadInvariants(t *testing.T) {
	sizes := []int{0, 1, 2, 30, 31, 32, 63, 64, 65, 126, 127, 128,
		2*63 + 1, 1000, 4095, 4096, 4097, 20000}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10; i++ {
		sizes = append(sizes, rng.Intn(50000))
	}
	for _, n := range sizes {
		tr := newBTree()
		tr.bulkLoad(bulkItems(n))
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		checkBTreeInvariants(t, tr)
		// Full ascent yields every item in order.
		i := 0
		tr.AscendRange(nil, nil, func(k []byte, rid int64) bool {
			if !bytes.Equal(k, key(i)) || rid != int64(i) {
				t.Fatalf("n=%d: ascend[%d] = %s/%d", n, i, k, rid)
			}
			i++
			return true
		})
		if i != n {
			t.Fatalf("n=%d: ascend visited %d items", n, i)
		}
		if n == 0 {
			continue
		}
		// Point lookups, point inserts and deletes keep working on the
		// bulk-built structure.
		for _, probe := range []int{0, n / 2, n - 1} {
			if rid, ok := tr.Get(key(probe)); !ok || rid != int64(probe) {
				t.Fatalf("n=%d: Get(%d) = %d, %v", n, probe, rid, ok)
			}
		}
		if !tr.Insert(key(n+1), int64(n+1)) {
			t.Fatalf("n=%d: post-bulk insert failed", n)
		}
		if !tr.Delete(key(n / 2)) {
			t.Fatalf("n=%d: post-bulk delete failed", n)
		}
		checkBTreeInvariants(t, tr)
	}
}

func TestBTreeInsertBulkAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := newBTree()
	ref := make(map[string]int64)
	next := 0
	addBatch := func(n int) {
		items := make([]btreeItem, n)
		for i := range items {
			items[i] = btreeItem{key: key(next), rid: int64(next)}
			ref[string(items[i].key)] = items[i].rid
			next++
		}
		// insertBulk requires sorted input; shuffle positions via reversed
		// chunks would break it, so sort explicitly after randomizing rids.
		sort.Slice(items, func(a, b int) bool { return bytes.Compare(items[a].key, items[b].key) < 0 })
		tr.insertBulk(items)
	}
	// Empty-tree bulk load, then batches that exercise both the merge
	// rebuild (large) and ordered point-insert (small) paths, interleaved
	// with deletes so the merged stream is not contiguous.
	addBatch(100)
	for i := 0; i < 20; i++ {
		if rng.Intn(2) == 0 {
			addBatch(5) // < size/4: point path
		} else {
			addBatch(tr.size/2 + 1) // >= size/4: merge path
		}
		victim := key(rng.Intn(next))
		if _, ok := ref[string(victim)]; ok {
			tr.Delete(victim)
			delete(ref, string(victim))
		}
		checkBTreeInvariants(t, tr)
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref has %d", tr.Len(), len(ref))
	}
	seen := 0
	tr.AscendRange(nil, nil, func(k []byte, rid int64) bool {
		if want, ok := ref[string(k)]; !ok || want != rid {
			t.Fatalf("unexpected entry %s/%d", k, rid)
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("ascend saw %d of %d entries", seen, len(ref))
	}
}
