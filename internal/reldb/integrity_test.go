package reldb

import (
	"errors"
	"fmt"
	"testing"
)

func integrityFixture(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	if _, err := db.CreateTable("t", Schema{
		{Name: "k", Type: TInt},
		{Name: "s", Type: TString},
	}); err != nil {
		t.Fatalf("create table: %v", err)
	}
	if err := db.CreateIndex("t_k", "t", "k"); err != nil {
		t.Fatalf("create index: %v", err)
	}
	for k := 0; k < 20; k++ {
		if _, err := db.Insert("t", Row{I(int64(k)), S(fmt.Sprintf("row-%d", k))}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	return db
}

func fixtureIndex(t *testing.T, db *DB) (*Table, *Index) {
	t.Helper()
	tbl, ok := db.Table("t")
	if !ok {
		t.Fatal("table missing")
	}
	ix, ok := tbl.FindIndex("t_k")
	if !ok {
		t.Fatal("index missing")
	}
	return tbl, ix
}

// A dangling index entry (pointing at a row that does not exist) is detected
// and the index quarantined.
func TestVerifyIndexesDetectsDanglingEntry(t *testing.T) {
	db := integrityFixture(t)
	_, ix := fixtureIndex(t, db)
	ix.tree.Insert(ix.entryKey(Row{I(999), S("ghost")}, 999), 999)

	problems := db.VerifyIndexes()
	if len(problems) != 1 {
		t.Fatalf("VerifyIndexes found %d problems, want 1: %v", len(problems), problems)
	}
	if problems[0].Table != "t" || problems[0].Index != "t_k" {
		t.Fatalf("problem attributed to %s.%s", problems[0].Table, problems[0].Index)
	}
	if !ix.Damaged() {
		t.Fatal("index not quarantined after failed verification")
	}
}

// An entry whose key disagrees with its row's contents (same entry count, so
// the cheap shape check passes) is caught by the membership check.
func TestVerifyIndexesDetectsKeyMismatch(t *testing.T) {
	db := integrityFixture(t)
	tbl, ix := fixtureIndex(t, db)
	row, ok := tbl.row(5)
	if !ok {
		t.Fatal("row 5 missing")
	}
	ix.tree.Delete(ix.entryKey(row, 5))
	ix.tree.Insert(ix.entryKey(Row{I(12345), row[1]}, 5), 5)

	problems := db.VerifyIndexes()
	if len(problems) != 1 {
		t.Fatalf("VerifyIndexes found %d problems, want 1: %v", len(problems), problems)
	}
}

// A quarantined index is bypassed by the planner — equality queries degrade
// to heap scans but keep returning correct answers — and rebuilding restores
// both correctness and index use.
func TestDamagedIndexBypassAndRebuild(t *testing.T) {
	db := integrityFixture(t)
	_, ix := fixtureIndex(t, db)

	// Sabotage: drop a real entry so the index would give wrong answers.
	tbl, _ := db.Table("t")
	row, _ := tbl.row(7)
	ix.tree.Delete(ix.entryKey(row, 7))

	if got := db.VerifyIndexes(); len(got) != 1 {
		t.Fatalf("VerifyIndexes found %d problems, want 1", len(got))
	}

	idxBefore, scanBefore, _ := db.Stats()
	n, err := db.Count("t", []Pred{Eq("k", I(7))})
	if err != nil {
		t.Fatalf("count through damaged index: %v", err)
	}
	if n != 1 {
		t.Fatalf("damaged-index query returned %d rows, want 1 (bypass failed)", n)
	}
	idxAfter, scanAfter, _ := db.Stats()
	if idxAfter != idxBefore {
		t.Fatal("planner used a quarantined index")
	}
	if scanAfter != scanBefore+1 {
		t.Fatalf("expected one full scan, got %d", scanAfter-scanBefore)
	}

	if repaired := db.RebuildDamaged(); repaired != 1 {
		t.Fatalf("RebuildDamaged repaired %d indexes, want 1", repaired)
	}
	if ix.Damaged() {
		t.Fatal("index still quarantined after rebuild")
	}
	if problems := db.VerifyIndexes(); len(problems) != 0 {
		t.Fatalf("problems remain after rebuild: %v", problems)
	}
	idxBefore, _, _ = db.Stats()
	if n, err := db.Count("t", []Pred{Eq("k", I(7))}); err != nil || n != 1 {
		t.Fatalf("post-rebuild query: n=%d err=%v", n, err)
	}
	idxAfter, _, _ = db.Stats()
	if idxAfter != idxBefore+1 {
		t.Fatal("planner did not return to the rebuilt index")
	}
}

// RebuildIndex targets one index by name and errors on unknown names with
// the sentinel the caller can test for.
func TestRebuildIndexByName(t *testing.T) {
	db := integrityFixture(t)
	_, ix := fixtureIndex(t, db)
	ix.damaged = true
	if err := db.RebuildIndex("t", "t_k"); err != nil {
		t.Fatalf("RebuildIndex: %v", err)
	}
	if ix.Damaged() {
		t.Fatal("index still quarantined")
	}
	if err := db.RebuildIndex("missing", "t_k"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("RebuildIndex on missing table: %v, want ErrNoTable", err)
	}
	if err := db.RebuildIndex("t", "missing"); err == nil {
		t.Fatal("RebuildIndex on missing index succeeded")
	}
}

// repairIndexesOnOpen (the open-time shape check) rebuilds a disagreeing
// index and records the repair for RecoveryReport.
func TestRepairOnOpenRebuildsAndReports(t *testing.T) {
	db := integrityFixture(t)
	tbl, ix := fixtureIndex(t, db)
	row, _ := tbl.row(3)
	ix.tree.Delete(ix.entryKey(row, 3))

	db.repairIndexesOnOpen()
	report := db.RecoveryReport()
	if len(report) != 1 {
		t.Fatalf("RecoveryReport has %d entries, want 1: %v", len(report), report)
	}
	if problems := db.VerifyIndexes(); len(problems) != 0 {
		t.Fatalf("problems remain after open-time repair: %v", problems)
	}
	if n, err := db.Count("t", []Pred{Eq("k", I(3))}); err != nil || n != 1 {
		t.Fatalf("post-repair query: n=%d err=%v", n, err)
	}
}
