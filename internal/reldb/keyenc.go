package reldb

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Order-preserving key encoding: composite keys are the concatenation of
// per-column encodings, each prefixed with a type tag, such that
// bytes.Compare on encoded keys agrees with column-wise Datum.Compare.
// The encoding is also prefix-friendly: the encoding of (a) is a byte
// prefix of the encoding of (a, b), which is what index prefix scans rely
// on.
//
// Per-column layout:
//
//	NULL:   0x00
//	int:    0x01 . 8 bytes big-endian with the sign bit flipped
//	float:  0x02 . 8 bytes of sign-adjusted IEEE-754 bits
//	string: 0x03 . escaped bytes . 0x00 0x00   (0x00 escapes to 0x00 0xFF)
//	bytes:  0x04 . escaped bytes . 0x00 0x00
//
// Tag values coincide with the ColType constants shifted to leave 0x00 for
// NULL, so cross-type ordering matches Datum.Compare.

// EncodeKey appends the order-preserving encoding of the datums to dst and
// returns the extended slice.
func EncodeKey(dst []byte, ds ...Datum) []byte {
	for _, d := range ds {
		dst = encodeDatum(dst, d)
	}
	return dst
}

func encodeDatum(dst []byte, d Datum) []byte {
	switch d.t {
	case 0:
		return append(dst, 0x00)
	case TInt:
		dst = append(dst, 0x01)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(d.i)^(1<<63))
		return append(dst, buf[:]...)
	case TFloat:
		dst = append(dst, 0x02)
		f := d.f
		if f == 0 {
			f = 0 // normalize -0.0: Datum.Compare treats it as equal to +0.0
		}
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative floats: flip everything
		} else {
			bits ^= 1 << 63 // positive floats: flip the sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...)
	case TString:
		dst = append(dst, 0x03)
		return encodeEscaped(dst, []byte(d.s))
	case TBytes:
		dst = append(dst, 0x04)
		return encodeEscaped(dst, d.b)
	}
	panic(fmt.Sprintf("reldb: cannot encode datum of type %v", d.t))
}

func encodeEscaped(dst, src []byte) []byte {
	for _, c := range src {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x00)
}

// DecodeKey decodes n datums from the front of key, returning them and the
// remaining bytes. It is the inverse of EncodeKey and exists for index
// introspection and tests.
func DecodeKey(key []byte, n int) ([]Datum, []byte, error) {
	out := make([]Datum, 0, n)
	for i := 0; i < n; i++ {
		if len(key) == 0 {
			return nil, nil, fmt.Errorf("reldb: truncated key")
		}
		tag := key[0]
		key = key[1:]
		switch tag {
		case 0x00:
			out = append(out, Null)
		case 0x01:
			if len(key) < 8 {
				return nil, nil, fmt.Errorf("reldb: truncated int key")
			}
			u := binary.BigEndian.Uint64(key[:8]) ^ (1 << 63)
			out = append(out, I(int64(u)))
			key = key[8:]
		case 0x02:
			if len(key) < 8 {
				return nil, nil, fmt.Errorf("reldb: truncated float key")
			}
			bits := binary.BigEndian.Uint64(key[:8])
			if bits&(1<<63) != 0 {
				bits ^= 1 << 63
			} else {
				bits = ^bits
			}
			out = append(out, F(math.Float64frombits(bits)))
			key = key[8:]
		case 0x03, 0x04:
			raw, rest, err := decodeEscaped(key)
			if err != nil {
				return nil, nil, err
			}
			if tag == 0x03 {
				out = append(out, S(string(raw)))
			} else {
				out = append(out, B(raw))
			}
			key = rest
		default:
			return nil, nil, fmt.Errorf("reldb: bad key tag 0x%02x", tag)
		}
	}
	return out, key, nil
}

func decodeEscaped(key []byte) (raw, rest []byte, err error) {
	var out []byte
	for i := 0; i < len(key); i++ {
		if key[i] != 0x00 {
			out = append(out, key[i])
			continue
		}
		if i+1 >= len(key) {
			return nil, nil, fmt.Errorf("reldb: truncated escaped key")
		}
		switch key[i+1] {
		case 0x00:
			return out, key[i+2:], nil
		case 0xFF:
			out = append(out, 0x00)
			i++
		default:
			return nil, nil, fmt.Errorf("reldb: bad escape 0x00 0x%02x", key[i+1])
		}
	}
	return nil, nil, fmt.Errorf("reldb: unterminated escaped key")
}

// PrefixSuccessor returns the smallest byte string greater than every string
// having the given prefix, or nil if no such string exists (the prefix is
// all 0xFF). Index prefix scans cover the half-open range
// [prefix, PrefixSuccessor(prefix)).
func PrefixSuccessor(prefix []byte) []byte {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xFF {
			succ := make([]byte, i+1)
			copy(succ, prefix[:i+1])
			succ[i]++
			return succ
		}
	}
	return nil
}
