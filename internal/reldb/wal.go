package reldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"

	"repro/internal/obs"
)

// Write-ahead logging: a durable database pairs a snapshot file with an
// append-only log of mutations. Every mutating operation is applied to the
// in-memory state and appended to the log (synchronously flushed); recovery
// loads the snapshot and replays the log, tolerating a torn final record.
// Checkpoint writes a fresh snapshot and truncates the log.
//
// Record layout: u32 length | u32 crc | u64 seq | payload. The CRC covers
// the sequence number and the payload. Sequence numbers are assigned
// monotonically per committed record and the snapshot stores the last one it
// covers, so replay is idempotent: a crash after the checkpoint snapshot
// lands but before the log truncation cannot re-apply old records (they are
// skipped by sequence), and an interrupted truncation is repaired by the
// next checkpoint.
//
// The payload starts with a one-byte record type followed by type-specific
// fields using the snapshot encoding helpers.

const (
	recCreateTable byte = 1
	recCreateIndex byte = 2
	recDropTable   byte = 3
	recInsert      byte = 4
	recDelete      byte = 5
	// recInsertBatch is the group-committed form of recInsert: all rows of
	// one InsertBatch share a single length/CRC frame and a single flush, so
	// a batch is durable (and replayed) atomically — a torn tail drops the
	// whole batch, never part of it. Replay goes through the bulk index
	// maintenance path, so recovery of batched ingest is itself batched.
	recInsertBatch byte = 6
)

// walFrameHeader is the fixed per-record framing overhead in bytes.
const walFrameHeader = 16

const (
	snapshotFile = "snapshot.db"
	walFile      = "wal.log"
)

// walWriter appends framed records to the log through the database's VFS.
// It tracks the durable byte offset of the last acknowledged record: after a
// failed append (which may have left partial bytes on disk) the writer is
// marked broken, and the next append first repairs the file by truncating it
// back to the last good offset and reopening — so a transient write error
// never poisons the log for later commits.
type walWriter struct {
	fs     VFS
	path   string
	f      File
	w      *bufio.Writer
	good   int64 // durable size after the last acknowledged append
	broken bool  // the tail past good may be garbage; repair before appending
	closed bool
}

func (w *walWriter) append(seq uint64, payload []byte) error {
	if w.closed {
		return ErrClosed
	}
	if w.broken || w.f == nil {
		if err := w.repair(); err != nil {
			return fmt.Errorf("reldb: wal repair: %w", err)
		}
	}
	var hdr [walFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	crc := crc32.ChecksumIEEE(hdr[8:16])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	sp := obs.Start(obsWalAppendNs)
	err := func() error {
		if _, err := w.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.w.Write(payload); err != nil {
			return err
		}
		if err := w.w.Flush(); err != nil {
			return err
		}
		fs := obs.Start(obsWalFsyncNs)
		serr := w.f.Sync()
		fs.End()
		return serr
	}()
	sp.End()
	if err != nil {
		w.broken = true
		return err
	}
	w.good += walFrameHeader + int64(len(payload))
	obsWalAppends.Add(1)
	obsWalBytes.Add(walFrameHeader + int64(len(payload)))
	return nil
}

// repair restores the log to its last acknowledged size and reopens it for
// appending. It runs after a failed append (dropping any partial tail) and
// after a checkpoint (with good reset to zero, truncating the whole log).
func (w *walWriter) repair() error {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	if err := w.fs.Truncate(w.path, w.good); err != nil {
		return err
	}
	f, err := w.fs.Append(w.path)
	if err != nil {
		return err
	}
	w.f = f
	w.w = bufio.NewWriter(f)
	w.broken = false
	return nil
}

// reset empties the log after a checkpoint snapshot has been made durable.
// On failure the old records remain on disk, which is safe: replay skips
// them by sequence number.
func (w *walWriter) reset() error {
	w.good = 0
	w.broken = true
	if err := w.repair(); err != nil {
		return fmt.Errorf("reldb: wal reset: %w", err)
	}
	return nil
}

func (w *walWriter) close() error {
	if w == nil || w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// OpenDurable opens (creating if necessary) a durable database in a
// directory: the state is the snapshot plus the replayed write-ahead log.
func OpenDurable(dir string) (*DB, error) { return OpenDurableVFS(OSFS{}, dir) }

// OpenDurableVFS is OpenDurable through an explicit filesystem; fault
// injection harnesses use it to exercise every I/O failure point.
func OpenDurableVFS(fs VFS, dir string) (*DB, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("reldb: durable open: %w", err)
	}
	snapPath := filepath.Join(dir, snapshotFile)
	var db *DB
	if _, err := fs.Stat(snapPath); err == nil {
		db, err = LoadVFS(fs, snapPath)
		if err != nil {
			return nil, err
		}
	} else {
		db = NewDB()
	}
	db.vfs = fs
	walPath := filepath.Join(dir, walFile)
	goodOff, err := db.replayWAL(walPath)
	if err != nil {
		return nil, err
	}
	f, err := fs.Append(walPath)
	if err != nil {
		return nil, fmt.Errorf("reldb: durable open: %w", err)
	}
	db.mu.Lock()
	db.wal = &walWriter{fs: fs, path: walPath, f: f, w: bufio.NewWriter(f), good: goodOff}
	db.walDir = dir
	// Epochs track WAL sequence numbers on a durable database: every
	// committed record's seq is the epoch at which its effects became
	// visible, and recovery resumes the epoch clock from the last durable
	// record — an acked commit is visible at its epoch across a crash.
	db.epoch = db.seq
	db.mu.Unlock()
	// Secondary indexes are rebuilt from table contents by load/replay, but
	// verify their shape anyway: any index that disagrees with its table is
	// rebuilt before the database is shared, and the repair is reported.
	// repairIndexesOnOpen publishes the recovered state as the first
	// readable version.
	db.repairIndexesOnOpen()
	return db, nil
}

// CloseDurable flushes and closes the write-ahead log. The database remains
// usable in memory but stops logging.
func (db *DB) CloseDurable() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	err := db.wal.close()
	db.wal = nil
	return err
}

// Checkpoint writes a snapshot of the current state and truncates the
// write-ahead log, bounding recovery time. The write lock is held across the
// snapshot AND the log truncation: a mutation committed by a concurrent
// ingest worker is either captured by the snapshot or still present in the
// fresh log — never lost in between. The snapshot replacement is atomic
// (temp file, fsync, rename, directory fsync) and carries the covered WAL
// sequence, so a crash at ANY point — mid-snapshot, between the rename and
// the truncation, or mid-truncation — recovers to a state holding exactly
// the acknowledged commits.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	dir := db.walDir
	if dir == "" {
		return ErrNotDurable
	}
	if db.wal == nil || db.wal.closed {
		return ErrClosed
	}
	sp := obs.Start(obsCheckpointNs)
	defer sp.End()
	if err := db.saveLocked(filepath.Join(dir, snapshotFile)); err != nil {
		return err
	}
	if err := db.wal.reset(); err != nil {
		return err
	}
	obsCheckpoints.Add(1)
	return nil
}

// replayWAL applies the log records at path (if any) with sequence numbers
// above the snapshot's, and returns the byte offset of the end of the last
// intact record. A torn or corrupt tail — the expected shape of a crash —
// stops replay at the last intact record and truncates the file there;
// corruption before the tail is an error.
func (db *DB) replayWAL(path string) (int64, error) {
	fs := db.fs()
	data, err := fs.ReadFile(path)
	if err != nil {
		if _, serr := fs.Stat(path); serr != nil {
			return 0, nil // no log yet
		}
		return 0, fmt.Errorf("reldb: wal replay: %w", err)
	}
	off := 0
	for off < len(data) {
		if off+walFrameHeader > len(data) {
			break // torn header
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		seq := binary.LittleEndian.Uint64(data[off+8 : off+16])
		if off+walFrameHeader+n > len(data) {
			break // torn payload
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+n]
		crc := crc32.ChecksumIEEE(data[off+8 : off+16])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != want {
			break // torn/corrupt record: stop at the last intact one
		}
		if seq > db.seq {
			if err := db.applyRecord(payload); err != nil {
				return 0, fmt.Errorf("reldb: wal replay at offset %d: %w", off, err)
			}
			db.seq = seq
			obsWalReplayed.Add(1)
		}
		off += walFrameHeader + n
	}
	if off < len(data) {
		if err := fs.Truncate(path, int64(off)); err != nil {
			return 0, fmt.Errorf("reldb: wal truncate: %w", err)
		}
	}
	return int64(off), nil
}

func (db *DB) applyRecord(payload []byte) error {
	r := &byteReader{data: payload}
	kind, err := r.bytes(1)
	if err != nil {
		return err
	}
	switch kind[0] {
	case recCreateTable:
		name, err := r.str()
		if err != nil {
			return err
		}
		nCols, err := r.uvarint()
		if err != nil {
			return err
		}
		schema := make(Schema, nCols)
		for i := range schema {
			cname, err := r.str()
			if err != nil {
				return err
			}
			ctype, err := r.uvarint()
			if err != nil {
				return err
			}
			schema[i] = Column{Name: cname, Type: ColType(ctype)}
		}
		_, err = db.createTableLockedFree(name, schema)
		return err
	case recCreateIndex:
		iname, err := r.str()
		if err != nil {
			return err
		}
		tname, err := r.str()
		if err != nil {
			return err
		}
		nCols, err := r.uvarint()
		if err != nil {
			return err
		}
		cols := make([]string, nCols)
		for i := range cols {
			if cols[i], err = r.str(); err != nil {
				return err
			}
		}
		return db.createIndexNoLog(iname, tname, cols...)
	case recDropTable:
		name, err := r.str()
		if err != nil {
			return err
		}
		return db.dropTableNoLog(name)
	case recInsert:
		tname, err := r.str()
		if err != nil {
			return err
		}
		nRows, err := r.uvarint()
		if err != nil {
			return err
		}
		t, ok := db.tables[tname]
		if !ok {
			return fmt.Errorf("insert into missing table %q", tname)
		}
		for i := uint64(0); i < nRows; i++ {
			row := make(Row, len(t.Schema))
			for j := range row {
				if row[j], err = r.datum(); err != nil {
					return err
				}
			}
			if _, err := t.insert(row); err != nil {
				return err
			}
		}
		return nil
	case recInsertBatch:
		tname, err := r.str()
		if err != nil {
			return err
		}
		nRows, err := r.uvarint()
		if err != nil {
			return err
		}
		t, ok := db.tables[tname]
		if !ok {
			return fmt.Errorf("batch insert into missing table %q", tname)
		}
		rows := make([]Row, nRows)
		for i := range rows {
			row := make(Row, len(t.Schema))
			for j := range row {
				if row[j], err = r.datum(); err != nil {
					return err
				}
			}
			rows[i] = row
		}
		// Rows are freshly decoded from the log, so the table can adopt them.
		return t.insertBatch(rows, true)
	case recDelete:
		tname, err := r.str()
		if err != nil {
			return err
		}
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		t, ok := db.tables[tname]
		if !ok {
			return fmt.Errorf("delete from missing table %q", tname)
		}
		for i := uint64(0); i < n; i++ {
			rid, err := r.uvarint()
			if err != nil {
				return err
			}
			if err := t.delete(int64(rid)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown wal record type %d", ErrCorrupt, kind[0])
	}
}

// createTableLockedFree and friends apply schema mutations without logging
// and without taking the lock (replay runs before the database is shared).
func (db *DB) createTableLockedFree(name string, schema Schema) (*Table, error) {
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	t := &Table{Name: name, Schema: append(Schema(nil), schema...)}
	db.tables[name] = t
	return t, nil
}

func (db *DB) createIndexNoLog(indexName, tableName string, cols ...string) error {
	t, ok := db.tables[tableName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	_, err := t.buildIndex(indexName, cols)
	return err
}

func (db *DB) dropTableNoLog(name string) error {
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	delete(db.tables, name)
	return nil
}

// Log-record builders, called with db.mu held after the in-memory mutation
// succeeded. Each commits under a fresh sequence number.

func (db *DB) logCreateTable(name string, schema Schema) error {
	if db.wal == nil {
		return nil
	}
	var buf walBuf
	buf.byte(recCreateTable)
	buf.str(name)
	buf.uvarint(uint64(len(schema)))
	for _, c := range schema {
		buf.str(c.Name)
		buf.uvarint(uint64(c.Type))
	}
	db.seq++
	return db.wal.append(db.seq, buf.b)
}

func (db *DB) logCreateIndex(indexName, tableName string, cols []string) error {
	if db.wal == nil {
		return nil
	}
	var buf walBuf
	buf.byte(recCreateIndex)
	buf.str(indexName)
	buf.str(tableName)
	buf.uvarint(uint64(len(cols)))
	for _, c := range cols {
		buf.str(c)
	}
	db.seq++
	return db.wal.append(db.seq, buf.b)
}

func (db *DB) logDropTable(name string) error {
	if db.wal == nil {
		return nil
	}
	var buf walBuf
	buf.byte(recDropTable)
	buf.str(name)
	db.seq++
	return db.wal.append(db.seq, buf.b)
}

func (db *DB) logInsert(tableName string, rows []Row) error {
	if db.wal == nil {
		return nil
	}
	var buf walBuf
	buf.byte(recInsert)
	buf.str(tableName)
	buf.uvarint(uint64(len(rows)))
	for _, row := range rows {
		for _, d := range row {
			buf.datum(d)
		}
	}
	db.seq++
	return db.wal.append(db.seq, buf.b)
}

// logInsertBatch writes one recInsertBatch record covering every row of the
// batch: one header, one CRC, one flush — group commit.
func (db *DB) logInsertBatch(tableName string, rows []Row) error {
	if db.wal == nil {
		return nil
	}
	var buf walBuf
	buf.byte(recInsertBatch)
	buf.str(tableName)
	buf.uvarint(uint64(len(rows)))
	for _, row := range rows {
		for _, d := range row {
			buf.datum(d)
		}
	}
	db.seq++
	return db.wal.append(db.seq, buf.b)
}

func (db *DB) logDelete(tableName string, rids []int64) error {
	if db.wal == nil {
		return nil
	}
	var buf walBuf
	buf.byte(recDelete)
	buf.str(tableName)
	buf.uvarint(uint64(len(rids)))
	for _, rid := range rids {
		buf.uvarint(uint64(rid))
	}
	db.seq++
	return db.wal.append(db.seq, buf.b)
}

// walBuf accumulates a record payload using the snapshot field encodings.
type walBuf struct {
	b []byte
}

func (w *walBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *walBuf) byte(c byte)      { w.b = append(w.b, c) }
func (w *walBuf) uvarint(v uint64) { writeUvarint(w, v) }
func (w *walBuf) str(s string)     { writeString(w, s) }
func (w *walBuf) datum(d Datum)    { writeDatum(w, d) }

var _ io.Writer = (*walBuf)(nil)
