package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// testRegistry registers the black boxes used across the engine tests.
func testRegistry() *Registry {
	r := NewRegistry()
	r.Register("upper", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Str(strings.ToUpper(s))}, nil
	})
	r.Register("tolist", func(args []value.Value) ([]value.Value, error) {
		s, _ := args[0].StringVal()
		return []value.Value{value.Strs(s+"1", s+"2")}, nil
	})
	r.Register("combine", func(args []value.Value) ([]value.Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = value.Encode(a)
		}
		return []value.Value{value.Str(strings.Join(parts, "+"))}, nil
	})
	r.Register("flatten", func(args []value.Value) ([]value.Value, error) {
		f, err := value.Flatten(args[0])
		if err != nil {
			return nil, err
		}
		return []value.Value{f}, nil
	})
	r.Register("id", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{args[0]}, nil
	})
	r.Register("fail", func(args []value.Value) ([]value.Value, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	r.Register("badarity", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Str("a"), value.Str("b")}, nil
	})
	r.Register("baddepth", func(args []value.Value) ([]value.Value, error) {
		return []value.Value{value.Strs("list", "not", "atom")}, nil
	})
	return r
}

// fig3 rebuilds the abstract workflow of Fig. 3: Q iterates over v, R turns
// atom w into a list, P combines an element of each with the whole list c.
func fig3() *workflow.Workflow {
	w := workflow.New("fig3")
	w.AddInput("v", 1).AddInput("w", 0).AddInput("c", 1)
	w.AddOutput("y", 2)
	w.AddProcessor("Q", "upper", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 0)})
	w.AddProcessor("R", "tolist", []workflow.Port{workflow.In("X", 0)}, []workflow.Port{workflow.Out("Y", 1)})
	w.AddProcessor("P", "combine",
		[]workflow.Port{workflow.In("X1", 0), workflow.In("X2", 1), workflow.In("X3", 0)},
		[]workflow.Port{workflow.Out("Y", 0)})
	w.Connect("", "v", "Q", "X")
	w.Connect("", "w", "R", "X")
	w.Connect("", "c", "P", "X2")
	w.Connect("Q", "Y", "P", "X1")
	w.Connect("R", "Y", "P", "X3")
	w.Connect("P", "Y", "", "y")
	return w
}

func fig3Inputs() map[string]value.Value {
	return map[string]value.Value{
		"v": value.Strs("a", "b", "c"),
		"w": value.Str("w"),
		"c": value.Strs("k"),
	}
}

func TestRunFig3(t *testing.T) {
	e := New(testRegistry())
	outs, tr, err := e.RunTrace(fig3(), "run1", fig3Inputs())
	if err != nil {
		t.Fatal(err)
	}
	y := outs["y"]
	// Q yields [A,B,C]; R yields [w1,w2]; P crosses 3×2 with c passed whole.
	if y.Depth() != 2 || y.Len() != 3 || y.Elems()[0].Len() != 2 {
		t.Fatalf("y shape = %s", y)
	}
	el := y.MustAt(value.Ix(1, 0))
	s, _ := el.StringVal()
	if s != `"B"+["k"]+"w1"` {
		t.Errorf("y[1,0] = %q", s)
	}

	// Trace structure: Q has 3 activations, R has 1, P has 6.
	counts := map[string]int{}
	for _, ev := range tr.Xforms {
		counts[ev.Proc]++
	}
	if counts["Q"] != 3 || counts["R"] != 1 || counts["P"] != 6 {
		t.Errorf("activation counts = %v", counts)
	}
	// Xfers: 5 internal arcs + 1 output arc = 6.
	if len(tr.Xfers) != 6 {
		t.Errorf("xfer count = %d, want 6", len(tr.Xfers))
	}
	// Prop. 1 on recorded events: q = p1·p2·p3 for P.
	for _, ev := range tr.Xforms {
		if ev.Proc != "P" {
			continue
		}
		q := ev.Outputs[0].Index
		cat := ev.Inputs[0].Index.Concat(ev.Inputs[1].Index).Concat(ev.Inputs[2].Index)
		if !q.Equal(cat) {
			t.Errorf("Prop 1 violated: q=%v, concat=%v", q, cat)
		}
		if len(ev.Inputs[1].Index) != 0 {
			t.Errorf("whole-list input should have empty index, got %v", ev.Inputs[1].Index)
		}
	}
	// The provenance graph of the run is acyclic.
	if err := trace.BuildGraph(tr).CheckAcyclic(); err != nil {
		t.Error(err)
	}
}

func TestRunTraceBindingValues(t *testing.T) {
	e := New(testRegistry())
	_, tr, err := e.RunTrace(fig3(), "run1", fig3Inputs())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Xforms {
		for _, b := range append(append([]trace.Binding{}, ev.Inputs...), ev.Outputs...) {
			if _, err := b.Element(); err != nil {
				t.Errorf("binding %s element unresolvable: %v", b, err)
			}
		}
	}
}

func TestGKStyleFlattenPipeline(t *testing.T) {
	// Mirrors the right branch of Fig. 1: flatten then per-element mapping.
	w := workflow.New("gkright")
	w.AddInput("lists", 2)
	w.AddOutput("out", 1)
	w.AddProcessor("merge", "flatten", []workflow.Port{workflow.In("in", 2)}, []workflow.Port{workflow.Out("out", 1)})
	w.AddProcessor("map", "upper", []workflow.Port{workflow.In("s", 0)}, []workflow.Port{workflow.Out("r", 0)})
	w.Connect("", "lists", "merge", "in")
	w.Connect("merge", "out", "map", "s")
	w.Connect("map", "r", "", "out")

	e := New(testRegistry())
	outs, tr, err := e.RunTrace(w, "r", map[string]value.Value{
		"lists": value.List(value.Strs("a", "b"), value.Strs("c")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(outs["out"], value.Strs("A", "B", "C")) {
		t.Errorf("out = %s", outs["out"])
	}
	// merge is a many-to-many black box: its single xform event is coarse.
	for _, ev := range tr.Xforms {
		if ev.Proc == "merge" {
			if len(ev.Inputs[0].Index) != 0 || len(ev.Outputs[0].Index) != 0 {
				t.Errorf("merge event not coarse: %s", ev)
			}
		}
	}
}

func TestDefaultsUsed(t *testing.T) {
	w := workflow.New("defaults")
	w.AddInput("in", 0)
	w.AddOutput("out", 0)
	w.AddProcessor("p", "combine",
		[]workflow.Port{workflow.In("a", 0), workflow.InDefault("b", 0, value.Str("D"))},
		[]workflow.Port{workflow.Out("y", 0)})
	w.Connect("", "in", "p", "a")
	w.Connect("p", "y", "", "out")
	e := New(testRegistry())
	outs, err := e.Run(w, map[string]value.Value{"in": value.Str("x")}, trace.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := outs["out"].StringVal()
	if s != `"x"+"D"` {
		t.Errorf("out = %q", s)
	}
}

func TestDotProcessor(t *testing.T) {
	w := workflow.New("dotwf")
	w.AddInput("a", 1).AddInput("b", 1)
	w.AddOutput("out", 1)
	p := w.AddProcessor("zip", "combine",
		[]workflow.Port{workflow.In("x", 0), workflow.In("y", 0)},
		[]workflow.Port{workflow.Out("r", 0)})
	p.Dot = true
	w.Connect("", "a", "zip", "x")
	w.Connect("", "b", "zip", "y")
	w.Connect("zip", "r", "", "out")
	e := New(testRegistry())
	outs, tr, err := e.RunTrace(w, "r", map[string]value.Value{
		"a": value.Strs("a1", "a2"),
		"b": value.Strs("b1", "b2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := outs["out"]
	if out.Len() != 2 {
		t.Fatalf("dot output = %s", out)
	}
	s, _ := out.Elems()[0].StringVal()
	if s != `"a1"+"b1"` {
		t.Errorf("dot element = %q", s)
	}
	n := 0
	for _, ev := range tr.Xforms {
		if ev.Proc == "zip" {
			n++
			if !ev.Inputs[0].Index.Equal(ev.Inputs[1].Index) {
				t.Errorf("dot indices differ: %s", ev)
			}
		}
	}
	if n != 2 {
		t.Errorf("zip activations = %d, want 2", n)
	}
}

func TestRunErrors(t *testing.T) {
	e := New(testRegistry())
	run := func(mutate func(w *workflow.Workflow), inputs map[string]value.Value) error {
		w := fig3()
		if mutate != nil {
			mutate(w)
		}
		in := inputs
		if in == nil {
			in = fig3Inputs()
		}
		_, err := e.Run(w, in, trace.Discard)
		return err
	}

	if err := run(nil, map[string]value.Value{"v": value.Strs("a")}); err == nil || !strings.Contains(err.Error(), "not bound") {
		t.Errorf("missing input: %v", err)
	}
	bad := fig3Inputs()
	bad["extra"] = value.Str("x")
	if err := run(nil, bad); err == nil || !strings.Contains(err.Error(), "no workflow input port") {
		t.Errorf("extra input: %v", err)
	}
	bad = fig3Inputs()
	bad["v"] = value.Str("atom")
	if err := run(nil, bad); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("wrong depth input: %v", err)
	}
	bad = fig3Inputs()
	bad["v"] = value.List(value.Str("a"), value.Strs("nested"))
	if err := run(nil, bad); err == nil || !strings.Contains(err.Error(), "non-uniform") {
		t.Errorf("non-uniform input: %v", err)
	}
	if err := run(func(w *workflow.Workflow) { w.Processor("Q").Type = "nosuch" }, nil); err == nil || !strings.Contains(err.Error(), "unregistered type") {
		t.Errorf("unregistered type: %v", err)
	}
	if err := run(func(w *workflow.Workflow) { w.Processor("Q").Type = "fail" }, nil); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("failing processor: %v", err)
	}
	if err := run(func(w *workflow.Workflow) { w.Processor("Q").Type = "badarity" }, nil); err == nil || !strings.Contains(err.Error(), "output ports") {
		t.Errorf("bad arity: %v", err)
	}
	if err := run(func(w *workflow.Workflow) { w.Processor("Q").Type = "baddepth" }, nil); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("bad output depth: %v", err)
	}
	// Unconnected input without default.
	w := workflow.New("unconn")
	w.AddInput("in", 0)
	w.AddOutput("out", 0)
	w.AddProcessor("p", "combine",
		[]workflow.Port{workflow.In("a", 0), workflow.In("b", 0)},
		[]workflow.Port{workflow.Out("y", 0)})
	w.Connect("", "in", "p", "a")
	w.Connect("p", "y", "", "out")
	if _, err := e.Run(w, map[string]value.Value{"in": value.Str("x")}, trace.Discard); err == nil || !strings.Contains(err.Error(), "no default") {
		t.Errorf("unconnected input: %v", err)
	}
}

func compositeWorkflow() *workflow.Workflow {
	sub := workflow.New("inner")
	sub.AddInput("a", 0)
	sub.AddOutput("b", 1)
	sub.AddProcessor("mk", "tolist", []workflow.Port{workflow.In("x", 0)}, []workflow.Port{workflow.Out("y", 1)})
	sub.AddProcessor("up", "upper", []workflow.Port{workflow.In("s", 0)}, []workflow.Port{workflow.Out("r", 0)})
	sub.Connect("", "a", "mk", "x")
	sub.Connect("mk", "y", "up", "s") // δ=1 inside the sub-workflow
	sub.Connect("up", "r", "", "b")

	w := workflow.New("outer")
	w.AddInput("in", 1)
	w.AddOutput("out", 2)
	w.AddComposite("comp", sub)
	w.Connect("", "in", "comp", "a")
	w.Connect("comp", "b", "", "out")
	return w
}

func TestCompositeExecution(t *testing.T) {
	w := compositeWorkflow()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	e := New(testRegistry())
	outs, tr, err := e.RunTrace(w, "r", map[string]value.Value{"in": value.Strs("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	want := value.List(value.Strs("A1", "A2"), value.Strs("B1", "B2"))
	if !value.Equal(outs["out"], want) {
		t.Fatalf("out = %s, want %s", outs["out"], want)
	}

	procs := map[string]int{}
	for _, ev := range tr.Xforms {
		procs[ev.Proc]++
	}
	// comp iterates twice; each sub-run has 1 mk activation and 2 up
	// activations.
	if procs["comp"] != 2 || procs["comp/mk"] != 2 || procs["comp/up"] != 4 {
		t.Errorf("activation counts = %v", procs)
	}

	// Sub-run events carry the activation context prefix.
	for _, ev := range tr.Xforms {
		if ev.Proc == "comp/up" {
			if len(ev.Outputs[0].Index) != 2 {
				t.Errorf("comp/up output index = %v, want ctx+local length 2", ev.Outputs[0].Index)
			}
			if ev.Outputs[0].Ctx != 1 {
				t.Errorf("comp/up Ctx = %d, want 1", ev.Outputs[0].Ctx)
			}
			if _, err := ev.Outputs[0].Element(); err != nil {
				t.Errorf("comp/up element: %v", err)
			}
		}
	}

	// Boundary xfers exist: comp:a → comp/:a (index remap) and
	// comp/:b → comp:b.
	var sawIn, sawOut bool
	for _, ev := range tr.Xfers {
		if ev.From.Proc == "comp" && ev.To.Proc == "comp/" && ev.To.Port == "a" {
			sawIn = true
			if len(ev.From.Index) != 1 || len(ev.To.Index) != 1 {
				t.Errorf("boundary-in indices: %s", ev)
			}
		}
		if ev.From.Proc == "comp/" && ev.To.Proc == "comp" && ev.To.Port == "b" {
			sawOut = true
		}
	}
	if !sawIn || !sawOut {
		t.Errorf("boundary xfers missing: in=%v out=%v", sawIn, sawOut)
	}
	if err := trace.BuildGraph(tr).CheckAcyclic(); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	for _, build := range []func() *workflow.Workflow{fig3, compositeWorkflow} {
		w := build()
		var inputs map[string]value.Value
		if w.Name == "fig3" {
			inputs = fig3Inputs()
		} else {
			inputs = map[string]value.Value{"in": value.Strs("a", "b")}
		}
		seq := New(testRegistry())
		con := New(testRegistry(), Concurrent())
		outS, trS, err := seq.RunTrace(w, "r", inputs)
		if err != nil {
			t.Fatal(err)
		}
		outC, trC, err := con.RunTrace(w, "r", inputs)
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range outS {
			if !value.Equal(v, outC[name]) {
				t.Errorf("%s: output %q differs: %s vs %s", w.Name, name, v, outC[name])
			}
		}
		ss, cs := eventSet(trS), eventSet(trC)
		if len(ss) != len(cs) {
			t.Fatalf("%s: event count differs: %d vs %d", w.Name, len(ss), len(cs))
		}
		for k := range ss {
			if !cs[k] {
				t.Errorf("%s: concurrent trace missing event %s", w.Name, k)
			}
		}
	}
}

func eventSet(tr *trace.Trace) map[string]bool {
	out := make(map[string]bool)
	for _, e := range tr.Xforms {
		out["xform:"+e.String()] = true
	}
	for _, e := range tr.Xfers {
		out["xfer:"+e.String()] = true
	}
	return out
}

func TestConcurrentErrorPropagation(t *testing.T) {
	w := fig3()
	w.Processor("P").Type = "fail"
	e := New(testRegistry(), Concurrent())
	_, err := e.Run(w, fig3Inputs(), trace.Discard)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("concurrent error = %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("x", func([]value.Value) ([]value.Value, error) { return nil, nil })
	r.Register("a", func([]value.Value) ([]value.Value, error) { return nil, nil })
	if _, ok := r.Lookup("x"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup invented a type")
	}
	types := r.Types()
	if len(types) != 2 || types[0] != "a" || types[1] != "x" {
		t.Errorf("Types = %v", types)
	}
}

func TestEmptyListInput(t *testing.T) {
	e := New(testRegistry())
	in := fig3Inputs()
	in["v"] = value.List()
	outs, tr, err := e.RunTrace(fig3(), "r", in)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(outs["y"], value.List()) {
		t.Errorf("y = %s, want []", outs["y"])
	}
	for _, ev := range tr.Xforms {
		if ev.Proc == "Q" || ev.Proc == "P" {
			t.Errorf("unexpected activation of %s on empty input", ev.Proc)
		}
	}
}

func TestMaxActivations(t *testing.T) {
	// 3 x 2 activations at P exceed a limit of 5.
	e := New(testRegistry(), MaxActivations(5))
	_, err := e.Run(fig3(), fig3Inputs(), trace.Discard)
	if err == nil || !strings.Contains(err.Error(), "limit is 5") {
		t.Errorf("activation limit not enforced: %v", err)
	}
	// A generous limit passes.
	e = New(testRegistry(), MaxActivations(100))
	if _, err := e.Run(fig3(), fig3Inputs(), trace.Discard); err != nil {
		t.Errorf("generous limit rejected: %v", err)
	}
	// The limit also applies under concurrency.
	e = New(testRegistry(), MaxActivations(5), Concurrent())
	if _, err := e.Run(fig3(), fig3Inputs(), trace.Discard); err == nil {
		t.Error("concurrent activation limit not enforced")
	}
}
