package engine

import (
	"fmt"
	"sync"

	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Concurrent execution: one goroutine per processor, values flowing through
// per-arc channels. This realizes the data-driven model of §2.1 literally —
// a processor fires as soon as all its connected inputs have received
// values. Every arc carries exactly one value per run, so channels are
// buffered with capacity 1 and sends never block; receives are guarded by a
// cancellation channel so a failed upstream processor cannot deadlock its
// consumers.

// lockedCollector serializes event emission from concurrent processors.
type lockedCollector struct {
	mu sync.Mutex
	c  trace.Collector
}

func (l *lockedCollector) Xform(e trace.XformEvent) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Xform(e)
}

func (l *lockedCollector) Xfer(e trace.XferEvent) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Xfer(e)
}

func (e *Engine) runConcurrent(wf *workflow.Workflow, d *workflow.Depths, base string, ctx value.Index, inputs map[string]value.Value, col trace.Collector) (map[string]value.Value, error) {
	if _, ok := col.(*lockedCollector); !ok {
		col = &lockedCollector{c: col}
	}

	chans := make(map[workflow.Arc]chan value.Value, len(wf.Arcs))
	for _, a := range wf.Arcs {
		chans[a] = make(chan value.Value, 1)
	}
	done := make(chan struct{})
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			close(done)
		})
	}

	// Feed workflow inputs into their outgoing arcs.
	for _, p := range wf.Inputs {
		id := workflow.PortID{Proc: workflow.WorkflowPseudoProc, Port: p.Name}
		for _, a := range wf.OutgoingArcs(id) {
			chans[a] <- inputs[p.Name]
		}
	}

	recv := func(a workflow.Arc) (value.Value, bool) {
		select {
		case v := <-chans[a]:
			return v, true
		case <-done:
			return value.Value{}, false
		}
	}

	var wg sync.WaitGroup
	for _, p := range wf.Processors {
		wg.Add(1)
		go func(p *workflow.Processor) {
			defer wg.Done()
			inVals := make([]value.Value, len(p.Inputs))
			for i, port := range p.Inputs {
				id := workflow.PortID{Proc: p.Name, Port: port.Name}
				if arc, ok := wf.IncomingArc(id); ok {
					v, ok := recv(arc)
					if !ok {
						return // cancelled
					}
					inVals[i] = v
					ev := trace.XferEvent{
						From: trace.Binding{Proc: qualifyPortProc(base, arc.From.Proc), Port: arc.From.Port, Index: ctx.Clone(), Value: v, Ctx: len(ctx)},
						To:   trace.Binding{Proc: qualify(base, p.Name), Port: port.Name, Index: ctx.Clone(), Value: v, Ctx: len(ctx)},
					}
					if err := col.Xfer(ev); err != nil {
						fail(err)
						return
					}
				} else if port.HasDefault {
					inVals[i] = port.Default
				} else {
					fail(fmt.Errorf("engine: input %s is unconnected and has no default", id))
					return
				}
			}
			outs, err := e.invoke(d, base, ctx, p, inVals, col)
			if err != nil {
				fail(err)
				return
			}
			for j, port := range p.Outputs {
				id := workflow.PortID{Proc: p.Name, Port: port.Name}
				for _, a := range wf.OutgoingArcs(id) {
					chans[a] <- outs[j]
				}
			}
		}(p)
	}

	// Collect workflow outputs on the main goroutine.
	outputs := make(map[string]value.Value, len(wf.Outputs))
	for _, port := range wf.Outputs {
		id := workflow.PortID{Proc: workflow.WorkflowPseudoProc, Port: port.Name}
		arc, ok := wf.IncomingArc(id)
		if !ok {
			fail(fmt.Errorf("engine: workflow output %q is not connected", port.Name))
			break
		}
		v, ok := recv(arc)
		if !ok {
			break // cancelled
		}
		outputs[port.Name] = v
		ev := trace.XferEvent{
			From: trace.Binding{Proc: qualifyPortProc(base, arc.From.Proc), Port: arc.From.Port, Index: ctx.Clone(), Value: v, Ctx: len(ctx)},
			To:   trace.Binding{Proc: pseudoProc(base), Port: port.Name, Index: ctx.Clone(), Value: v, Ctx: len(ctx)},
		}
		if err := col.Xfer(ev); err != nil {
			fail(err)
			break
		}
	}

	wg.Wait()
	select {
	case <-done:
		return nil, firstErr
	default:
		return outputs, nil
	}
}
