// Package engine executes dataflow specifications under the pure data-driven
// semantics of §2.1 of the paper: a processor fires as soon as all of its
// connected input ports are bound, implicit iteration over collections
// follows the eval_l semantics of §3.2 (implemented in internal/iter), and
// every observable event — one xform per processor activation, one xfer per
// value transfer along an arc — is reported to a trace collector.
//
// Nested dataflows execute recursively. Processor names inside a nested
// dataflow bound to composite C are path-qualified ("C/Q"), the sub-run's
// own pseudo-ports appear under the processor name "C/", and all indices
// recorded inside the sub-run carry the activation index of the composite as
// a context prefix, so one uniform index space addresses the hierarchy. At
// the boundary the engine emits fine-grained xfer events that remap parent
// element indices to sub-run context indices (relation (2) of §2.3 permits
// p ≠ p′), which lets the naïve lineage algorithm traverse into nested
// dataflows without any special casing.
package engine

import (
	"fmt"
	"sort"

	"repro/internal/iter"
	"repro/internal/trace"
	"repro/internal/value"
	"repro/internal/workflow"
)

// Func is the black-box behaviour of a processor type: it consumes one
// element value per input port (in declaration order, already adapted to the
// declared depths by the iteration machinery) and produces one value per
// output port, each of the declared output depth.
type Func func(args []value.Value) ([]value.Value, error)

// Registry maps processor type names to behaviours.
type Registry struct {
	m map[string]Func
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]Func)} }

// Register binds a processor type name to a behaviour, replacing any
// previous binding.
func (r *Registry) Register(typ string, fn Func) { r.m[typ] = fn }

// Lookup returns the behaviour bound to a type name.
func (r *Registry) Lookup(typ string) (Func, bool) {
	fn, ok := r.m[typ]
	return fn, ok
}

// Types returns the registered type names, sorted.
func (r *Registry) Types() []string {
	out := make([]string, 0, len(r.m))
	for t := range r.m {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Engine executes workflows against a registry of processor behaviours.
type Engine struct {
	reg            *Registry
	concurrent     bool
	maxActivations int
}

// Option configures an Engine.
type Option func(*Engine)

// Concurrent makes Run execute independent processors in parallel goroutines
// (one per processor, values flowing through channels). The set of emitted
// events and the computed outputs are identical to sequential execution;
// only event order differs.
func Concurrent() Option { return func(e *Engine) { e.concurrent = true } }

// MaxActivations bounds the number of activations any single processor
// invocation may expand to; cross products over large collections grow
// multiplicatively, and the bound turns a runaway iteration into a clean
// error instead of memory exhaustion. Zero (the default) means unlimited.
func MaxActivations(n int) Option { return func(e *Engine) { e.maxActivations = n } }

// New returns an engine over the given registry.
func New(reg *Registry, opts ...Option) *Engine {
	e := &Engine{reg: reg}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Run executes wf on the given workflow-level input bindings, reporting
// every provenance event to col (use trace.Discard to drop them), and
// returns the workflow-level output bindings. The workflow must be valid;
// inputs must bind every workflow input port with a value of its declared
// depth.
func (e *Engine) Run(wf *workflow.Workflow, inputs map[string]value.Value, col trace.Collector) (map[string]value.Value, error) {
	if err := wf.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	d, err := workflow.PropagateDepths(wf)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := checkInputs(wf, inputs); err != nil {
		return nil, err
	}
	if e.concurrent {
		return e.runConcurrent(wf, d, "", value.EmptyIndex, inputs, col)
	}
	return e.runSequential(wf, d, "", value.EmptyIndex, inputs, col)
}

// RunTrace is like Run but also allocates and returns the trace of the run.
func (e *Engine) RunTrace(wf *workflow.Workflow, runID string, inputs map[string]value.Value) (map[string]value.Value, *trace.Trace, error) {
	t := &trace.Trace{RunID: runID, Workflow: wf.Name}
	outs, err := e.Run(wf, inputs, t)
	if err != nil {
		return nil, nil, err
	}
	return outs, t, nil
}

func checkInputs(wf *workflow.Workflow, inputs map[string]value.Value) error {
	for _, p := range wf.Inputs {
		v, ok := inputs[p.Name]
		if !ok {
			return fmt.Errorf("engine: workflow input %q not bound", p.Name)
		}
		if err := v.CheckUniform(); err != nil {
			return fmt.Errorf("engine: workflow input %q: %w", p.Name, err)
		}
		if dep := v.Depth(); dep != p.DeclaredDepth && !(v.AtomCount() == 0 && dep <= p.DeclaredDepth) {
			return fmt.Errorf("engine: workflow input %q has depth %d, declared %d", p.Name, dep, p.DeclaredDepth)
		}
	}
	for name := range inputs {
		if _, ok := wf.Input(name); !ok {
			return fmt.Errorf("engine: no workflow input port %q", name)
		}
	}
	return nil
}

// qualify returns the trace name of a processor within a run context.
func qualify(base, proc string) string {
	if base == "" {
		return proc
	}
	return base + "/" + proc
}

// pseudoProc returns the trace name under which the run's own workflow ports
// appear: trace.WorkflowProc at the root, "C/" inside composite C.
func pseudoProc(base string) string {
	if base == "" {
		return trace.WorkflowProc
	}
	return base + "/"
}

// runSequential executes one (sub-)run in topological order.
// base is the composite path ("" at the root); ctx is the accumulated
// activation context prefix for all recorded indices.
func (e *Engine) runSequential(wf *workflow.Workflow, d *workflow.Depths, base string, ctx value.Index, inputs map[string]value.Value, col trace.Collector) (map[string]value.Value, error) {
	order, err := wf.Toposort()
	if err != nil {
		return nil, err
	}
	produced := make(map[workflow.PortID]value.Value, len(wf.Arcs))
	for _, p := range wf.Inputs {
		produced[workflow.PortID{Proc: workflow.WorkflowPseudoProc, Port: p.Name}] = inputs[p.Name]
	}

	resolve := func(id workflow.PortID) (value.Value, bool) {
		v, ok := produced[id]
		return v, ok
	}
	for _, p := range order {
		inVals, err := e.gatherInputs(wf, base, ctx, p, resolve, col)
		if err != nil {
			return nil, err
		}
		outs, err := e.invoke(d, base, ctx, p, inVals, col)
		if err != nil {
			return nil, err
		}
		for j, port := range p.Outputs {
			produced[workflow.PortID{Proc: p.Name, Port: port.Name}] = outs[j]
		}
	}
	return e.gatherOutputs(wf, base, ctx, resolve, col)
}

// gatherInputs resolves the input values of processor p, emitting one xfer
// event per incoming arc, and falling back to port defaults.
func (e *Engine) gatherInputs(wf *workflow.Workflow, base string, ctx value.Index, p *workflow.Processor, resolve func(workflow.PortID) (value.Value, bool), col trace.Collector) ([]value.Value, error) {
	inVals := make([]value.Value, len(p.Inputs))
	for i, port := range p.Inputs {
		id := workflow.PortID{Proc: p.Name, Port: port.Name}
		if arc, ok := wf.IncomingArc(id); ok {
			v, ok := resolve(arc.From)
			if !ok {
				return nil, fmt.Errorf("engine: value for %s unavailable (internal scheduling error)", arc.From)
			}
			inVals[i] = v
			ev := trace.XferEvent{
				From: trace.Binding{Proc: qualifyPortProc(base, arc.From.Proc), Port: arc.From.Port, Index: ctx.Clone(), Value: v, Ctx: len(ctx)},
				To:   trace.Binding{Proc: qualify(base, p.Name), Port: port.Name, Index: ctx.Clone(), Value: v, Ctx: len(ctx)},
			}
			if err := col.Xfer(ev); err != nil {
				return nil, err
			}
		} else if port.HasDefault {
			inVals[i] = port.Default
		} else {
			return nil, fmt.Errorf("engine: input %s is unconnected and has no default", id)
		}
	}
	return inVals, nil
}

// qualifyPortProc maps an in-workflow port processor name to its trace name:
// processor names gain the base path, and the pseudo-processor of the
// enclosing run maps to pseudoProc(base).
func qualifyPortProc(base, proc string) string {
	if proc == workflow.WorkflowPseudoProc {
		return pseudoProc(base)
	}
	return qualify(base, proc)
}

// gatherOutputs resolves workflow-level outputs, emitting the final xfer
// events onto the run's pseudo-ports.
func (e *Engine) gatherOutputs(wf *workflow.Workflow, base string, ctx value.Index, resolve func(workflow.PortID) (value.Value, bool), col trace.Collector) (map[string]value.Value, error) {
	outputs := make(map[string]value.Value, len(wf.Outputs))
	for _, port := range wf.Outputs {
		id := workflow.PortID{Proc: workflow.WorkflowPseudoProc, Port: port.Name}
		arc, ok := wf.IncomingArc(id)
		if !ok {
			return nil, fmt.Errorf("engine: workflow output %q is not connected", port.Name)
		}
		v, ok := resolve(arc.From)
		if !ok {
			return nil, fmt.Errorf("engine: value for %s unavailable (internal scheduling error)", arc.From)
		}
		outputs[port.Name] = v
		ev := trace.XferEvent{
			From: trace.Binding{Proc: qualifyPortProc(base, arc.From.Proc), Port: arc.From.Port, Index: ctx.Clone(), Value: v, Ctx: len(ctx)},
			To:   trace.Binding{Proc: pseudoProc(base), Port: port.Name, Index: ctx.Clone(), Value: v, Ctx: len(ctx)},
		}
		if err := col.Xfer(ev); err != nil {
			return nil, err
		}
	}
	return outputs, nil
}

// invoke runs one processor on resolved input values: it enumerates the
// implicit-iteration activations, executes the black box (or the nested
// dataflow) per activation, assembles the wrapped outputs, and emits one
// xform event per activation.
func (e *Engine) invoke(d *workflow.Depths, base string, ctx value.Index, p *workflow.Processor, inVals []value.Value, col trace.Collector) ([]value.Value, error) {
	plan := d.Plan(p.Name)
	if plan == nil {
		return nil, fmt.Errorf("engine: no iteration plan for processor %q", qualify(base, p.Name))
	}
	acts, err := plan.Enumerate(inVals)
	if err != nil {
		return nil, fmt.Errorf("engine: processor %q: %w", qualify(base, p.Name), err)
	}
	if e.maxActivations > 0 && len(acts) > e.maxActivations {
		return nil, fmt.Errorf("engine: processor %q would run %d activations, limit is %d",
			qualify(base, p.Name), len(acts), e.maxActivations)
	}

	results := make([][]value.Value, len(p.Outputs))
	for j := range results {
		results[j] = make([]value.Value, len(acts))
	}
	for k, act := range acts {
		var outs []value.Value
		if p.Sub != nil {
			outs, err = e.invokeComposite(d, base, ctx, p, act, inVals, col)
		} else {
			outs, err = e.invokeBlackBox(base, p, act)
		}
		if err != nil {
			return nil, err
		}
		for j := range p.Outputs {
			results[j][k] = outs[j]
		}
	}

	assembled := make([]value.Value, len(p.Outputs))
	for j := range p.Outputs {
		v, err := plan.Assemble(inVals, results[j])
		if err != nil {
			return nil, fmt.Errorf("engine: processor %q: %w", qualify(base, p.Name), err)
		}
		assembled[j] = v
	}

	name := qualify(base, p.Name)
	for _, act := range acts {
		ev := trace.XformEvent{Proc: name}
		for i, port := range p.Inputs {
			ev.Inputs = append(ev.Inputs, trace.Binding{
				Proc: name, Port: port.Name,
				Index: ctx.Concat(act.InputIndices[i]),
				Value: inVals[i], Ctx: len(ctx),
			})
		}
		for j, port := range p.Outputs {
			ev.Outputs = append(ev.Outputs, trace.Binding{
				Proc: name, Port: port.Name,
				Index: ctx.Concat(act.OutputIndex),
				Value: assembled[j], Ctx: len(ctx),
			})
		}
		if err := col.Xform(ev); err != nil {
			return nil, err
		}
	}
	return assembled, nil
}

// invokeBlackBox executes one activation of a plain processor and validates
// the results against the declared output depths (assumption 1 of §3.1).
func (e *Engine) invokeBlackBox(base string, p *workflow.Processor, act iter.Activation) ([]value.Value, error) {
	name := qualify(base, p.Name)
	fn, ok := e.reg.Lookup(p.Type)
	if !ok {
		return nil, fmt.Errorf("engine: processor %q has unregistered type %q", name, p.Type)
	}
	outs, err := fn(act.Args)
	if err != nil {
		return nil, fmt.Errorf("engine: processor %q failed: %w", name, err)
	}
	if len(outs) != len(p.Outputs) {
		return nil, fmt.Errorf("engine: processor %q returned %d values for %d output ports", name, len(outs), len(p.Outputs))
	}
	for j, port := range p.Outputs {
		dep := outs[j].Depth()
		if dep != port.DeclaredDepth && !(outs[j].AtomCount() == 0 && dep <= port.DeclaredDepth) {
			return nil, fmt.Errorf("engine: processor %q output %q has depth %d, declared %d",
				name, port.Name, dep, port.DeclaredDepth)
		}
	}
	return outs, nil
}

// invokeComposite executes one activation of a nested dataflow. The
// sub-run's context is the parent context extended with the activation's
// output index; fine-grained boundary xfer events remap the parent element
// indices into the sub-run context.
func (e *Engine) invokeComposite(d *workflow.Depths, base string, ctx value.Index, p *workflow.Processor, act iter.Activation, inVals []value.Value, col trace.Collector) ([]value.Value, error) {
	name := qualify(base, p.Name)
	subCtx := ctx.Concat(act.OutputIndex)
	subInputs := make(map[string]value.Value, len(p.Inputs))
	for i, port := range p.Inputs {
		subInputs[port.Name] = act.Args[i]
		// Boundary-in xfer: the parent element at p_i becomes the sub-run's
		// whole input, addressed by the sub context.
		ev := trace.XferEvent{
			From: trace.Binding{Proc: name, Port: port.Name, Index: ctx.Concat(act.InputIndices[i]), Value: inVals[i], Ctx: len(ctx)},
			To:   trace.Binding{Proc: name + "/", Port: port.Name, Index: subCtx.Clone(), Value: act.Args[i], Ctx: len(subCtx)},
		}
		if err := col.Xfer(ev); err != nil {
			return nil, err
		}
	}
	subD := d.Sub(p.Name)
	if subD == nil {
		return nil, fmt.Errorf("engine: no propagated depths for nested dataflow %q", name)
	}
	var subOuts map[string]value.Value
	var err error
	if e.concurrent {
		subOuts, err = e.runConcurrent(p.Sub, subD, name, subCtx, subInputs, col)
	} else {
		subOuts, err = e.runSequential(p.Sub, subD, name, subCtx, subInputs, col)
	}
	if err != nil {
		return nil, err
	}
	outs := make([]value.Value, len(p.Outputs))
	for j, port := range p.Outputs {
		v, ok := subOuts[port.Name]
		if !ok {
			return nil, fmt.Errorf("engine: nested dataflow %q produced no output %q", name, port.Name)
		}
		outs[j] = v
		// Boundary-out xfer: the sub-run's output is the parent's output
		// element at the activation index.
		ev := trace.XferEvent{
			From: trace.Binding{Proc: name + "/", Port: port.Name, Index: subCtx.Clone(), Value: v, Ctx: len(subCtx)},
			To:   trace.Binding{Proc: name, Port: port.Name, Index: subCtx.Clone(), Value: v, Ctx: len(subCtx)},
		}
		if err := col.Xfer(ev); err != nil {
			return nil, err
		}
	}
	return outs, nil
}
