package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Index is a path addressing an element within a nested list value, written
// [p1,...,pk] in the paper. The empty index addresses the whole value.
// Indices are 0-based in this implementation (the paper's examples are
// 1-based; the translation is uniform and does not affect any result).
type Index []int

// EmptyIndex is the index addressing a whole value.
var EmptyIndex = Index{}

// Ix is a convenience constructor for index literals.
func Ix(steps ...int) Index { return Index(steps) }

// Concat returns the concatenation p·q as a fresh index. Neither operand is
// modified. Concatenation of indices is the core of the index projection
// rule (Prop. 1: q = p1···pn).
func (p Index) Concat(q Index) Index {
	out := make(Index, 0, len(p)+len(q))
	out = append(out, p...)
	out = append(out, q...)
	return out
}

// Equal reports whether p and q are the same path.
func (p Index) Equal(q Index) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether q is a prefix of p (including q == p and the
// empty index). Prefix relationships express granularity: an event recorded
// at index q covers every finer index p with prefix q.
func (p Index) HasPrefix(q Index) bool {
	if len(q) > len(p) {
		return false
	}
	for i := range q {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Truncate returns the first n positions of p (all of p if n >= len(p)).
// The result shares no storage with p.
func (p Index) Truncate(n int) Index {
	if n > len(p) {
		n = len(p)
	}
	if n < 0 {
		n = 0
	}
	out := make(Index, n)
	copy(out, p[:n])
	return out
}

// Slice returns the sub-index p[from:to), clamped to the bounds of p. It is
// used by the index projection rule to carve per-port fragments out of an
// output index.
func (p Index) Slice(from, to int) Index {
	if from < 0 {
		from = 0
	}
	if to > len(p) {
		to = len(p)
	}
	if from >= to {
		return Index{}
	}
	out := make(Index, to-from)
	copy(out, p[from:to])
	return out
}

// Clone returns an independent copy of p.
func (p Index) Clone() Index {
	out := make(Index, len(p))
	copy(out, p)
	return out
}

// IsEmpty reports whether p addresses the whole value.
func (p Index) IsEmpty() bool { return len(p) == 0 }

// Compare orders indices lexicographically, with a shorter index ordering
// before any extension of it. It returns -1, 0, or +1.
func (p Index) Compare(q Index) int {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		switch {
		case p[i] < q[i]:
			return -1
		case p[i] > q[i]:
			return 1
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return 1
	}
	return 0
}

// String renders p as "[p1,p2,...]"; the empty index renders as "[]".
func (p Index) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, step := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(step))
	}
	sb.WriteByte(']')
	return sb.String()
}

// ParseIndex parses the textual form produced by String. It accepts
// surrounding whitespace around each component.
func ParseIndex(s string) (Index, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return nil, fmt.Errorf("value: malformed index %q: missing brackets", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return Index{}, nil
	}
	parts := strings.Split(body, ",")
	out := make(Index, len(parts))
	for i, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("value: malformed index %q: component %d: %v", s, i, err)
		}
		if n < 0 {
			return nil, fmt.Errorf("value: malformed index %q: negative component %d", s, i)
		}
		out[i] = n
	}
	return out, nil
}
