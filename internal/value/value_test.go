package value

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestDepth(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Str("a"), 0},
		{Int(7), 0},
		{Float(1.5), 0},
		{Bool(true), 0},
		{List(), 1},
		{Strs("a", "b"), 1},
		{List(Strs("a", "b"), Strs("c")), 2},
		{List(List(List(Str("x")))), 3},
	}
	for _, c := range cases {
		if got := c.v.Depth(); got != c.want {
			t.Errorf("Depth(%s) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestCheckUniform(t *testing.T) {
	ok := List(Strs("a"), Strs("b", "c"))
	if err := ok.CheckUniform(); err != nil {
		t.Errorf("uniform value rejected: %v", err)
	}
	bad := List(Str("a"), Strs("b"))
	if err := bad.CheckUniform(); err == nil {
		t.Error("non-uniform value accepted")
	}
	if err := Str("atom").CheckUniform(); err != nil {
		t.Errorf("atom rejected: %v", err)
	}
	if err := List().CheckUniform(); err != nil {
		t.Errorf("empty list rejected: %v", err)
	}
}

func TestAt(t *testing.T) {
	v := List(Strs("foo", "bar"), Strs("red", "fox"))
	got, err := v.At(Ix(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.StringVal(); s != "bar" {
		t.Errorf("At([0,1]) = %s, want bar", got)
	}
	if whole, err := v.At(EmptyIndex); err != nil || !Equal(whole, v) {
		t.Errorf("At([]) should return the whole value, got %v err %v", whole, err)
	}
	if _, err := v.At(Ix(2)); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := v.At(Ix(0, 0, 0)); err == nil {
		t.Error("index descending into atom accepted")
	}
	if _, err := v.At(Ix(-1)); err == nil {
		t.Error("negative index accepted")
	}
}

func TestIndices(t *testing.T) {
	v := List(Strs("a", "b"), Strs("c"))
	if got := v.Indices(0); len(got) != 1 || !got[0].Equal(EmptyIndex) {
		t.Errorf("Indices(0) = %v", got)
	}
	got1 := v.Indices(1)
	want1 := []Index{Ix(0), Ix(1)}
	if len(got1) != len(want1) {
		t.Fatalf("Indices(1) = %v", got1)
	}
	for i := range got1 {
		if !got1[i].Equal(want1[i]) {
			t.Errorf("Indices(1)[%d] = %v, want %v", i, got1[i], want1[i])
		}
	}
	got2 := v.Indices(2)
	want2 := []Index{Ix(0, 0), Ix(0, 1), Ix(1, 0)}
	if len(got2) != len(want2) {
		t.Fatalf("Indices(2) = %v, want %v", got2, want2)
	}
	for i := range got2 {
		if !got2[i].Equal(want2[i]) {
			t.Errorf("Indices(2)[%d] = %v, want %v", i, got2[i], want2[i])
		}
	}
	// Below the atoms there is nothing to enumerate.
	if got := v.Indices(3); len(got) != 0 {
		t.Errorf("Indices(3) = %v, want empty", got)
	}
}

func TestIndicesAtConsistency(t *testing.T) {
	// Every index produced by Indices must be resolvable by At.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		v := randomValue(rng, rng.Intn(4))
		for depth := 0; depth <= 4; depth++ {
			for _, p := range v.Indices(depth) {
				if _, err := v.At(p); err != nil {
					t.Fatalf("Indices produced unresolvable index %v for %s: %v", p, v, err)
				}
			}
		}
	}
}

func TestWrap(t *testing.T) {
	v := Str("x")
	w := Wrap(v, 2)
	if w.Depth() != 2 {
		t.Errorf("Wrap depth = %d, want 2", w.Depth())
	}
	inner, err := w.At(Ix(0, 0))
	if err != nil || !Equal(inner, v) {
		t.Errorf("Wrap inner = %v, err %v", inner, err)
	}
	if !Equal(Wrap(v, 0), v) {
		t.Error("Wrap(v, 0) != v")
	}
}

func TestFlatten(t *testing.T) {
	v := List(Strs("a", "b"), Strs("c"))
	flat, err := Flatten(v)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(flat, Strs("a", "b", "c")) {
		t.Errorf("Flatten = %s", flat)
	}
	if _, err := Flatten(Str("x")); err == nil {
		t.Error("Flatten of atom accepted")
	}
	if _, err := Flatten(Strs("a")); err == nil {
		t.Error("Flatten of flat list accepted")
	}
	empty, err := Flatten(List())
	if err != nil || empty.Len() != 0 {
		t.Errorf("Flatten([]) = %v, err %v", empty, err)
	}
}

func TestAtomCount(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Str("a"), 1},
		{List(), 0},
		{Strs("a", "b", "c"), 3},
		{List(Strs("a", "b"), Strs("c")), 3},
	}
	for _, c := range cases {
		if got := c.v.AtomCount(); got != c.want {
			t.Errorf("AtomCount(%s) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Strs("a", "b"), Strs("a", "b")) {
		t.Error("equal lists reported unequal")
	}
	if Equal(Strs("a"), Strs("a", "b")) {
		t.Error("lists of different length reported equal")
	}
	if Equal(Str("1"), Int(1)) {
		t.Error("string and int atoms reported equal")
	}
	if Equal(Int(1), Float(1)) {
		t.Error("int and float atoms reported equal")
	}
	if !Equal(List(), List()) {
		t.Error("empty lists reported unequal")
	}
	if Equal(List(), Str("")) {
		t.Error("empty list equal to empty string atom")
	}
}

// randomValue builds a random value of exactly the given depth with small
// fan-out, for use in property tests across the repository.
func randomValue(rng *rand.Rand, depth int) Value {
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return Str(randomString(rng))
		case 1:
			return Int(rng.Int63n(1000) - 500)
		case 2:
			return Float(float64(rng.Intn(2000)-1000) / 16)
		default:
			return Bool(rng.Intn(2) == 0)
		}
	}
	n := 1 + rng.Intn(3)
	elems := make([]Value, n)
	for i := range elems {
		elems[i] = randomValue(rng, depth-1)
	}
	return List(elems...)
}

func randomString(rng *rand.Rand) string {
	const alphabet = `abcXYZ 0,"\[]` + "\t\n日本"
	runes := []rune(alphabet)
	n := rng.Intn(8)
	out := make([]rune, n)
	for i := range out {
		out[i] = runes[rng.Intn(len(runes))]
	}
	return string(out)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		v := randomValue(rng, rng.Intn(4))
		enc := Encode(v)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q) failed: %v", enc, err)
		}
		if !Equal(v, dec) {
			t.Fatalf("round trip mismatch: %s -> %q -> %s", v, enc, dec)
		}
	}
}

func TestEncodeCanonical(t *testing.T) {
	// Decoding and re-encoding a canonical string must be the identity.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		v := randomValue(rng, rng.Intn(4))
		enc := Encode(v)
		dec := MustDecode(enc)
		if got := Encode(dec); got != enc {
			t.Fatalf("non-canonical encoding: %q re-encodes to %q", enc, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"", "[", "]", "[1,", `"unterminated`, "tru", "1.2.3x", "[1]extra",
		"[1,]", "nope", "--3", "[1 2]",
	}
	for _, s := range bad {
		if v, err := Decode(s); err == nil {
			t.Errorf("Decode(%q) accepted as %s", s, v)
		}
	}
}

func TestDecodeExamples(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{`[["foo","bar"],["red","fox"]]`, List(Strs("foo", "bar"), Strs("red", "fox"))},
		{`[ 1 , 2 ]`, Ints(1, 2)},
		{`-3`, Int(-3)},
		{`1.5`, Float(1.5)},
		{`2e3`, Float(2000)},
		{`true`, Bool(true)},
		{`[]`, List()},
		{`"\"quoted\""`, Str(`"quoted"`)},
	}
	for _, c := range cases {
		got, err := Decode(c.in)
		if err != nil {
			t.Errorf("Decode(%q): %v", c.in, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Decode(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestFloatEncodingDistinguishable(t *testing.T) {
	// Whole-number floats must not decode back as ints.
	f := quick.Check(func(n int16) bool {
		v := Float(float64(n))
		dec, err := Decode(Encode(v))
		if err != nil {
			return false
		}
		_, isFloat := dec.FloatVal()
		return isFloat && Equal(v, dec)
	}, nil)
	if f != nil {
		t.Error(f)
	}
}

func TestIndexString(t *testing.T) {
	cases := []struct {
		p    Index
		want string
	}{
		{EmptyIndex, "[]"},
		{Ix(1), "[1]"},
		{Ix(1, 2, 3), "[1,2,3]"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", []int(c.p), got, c.want)
		}
		back, err := ParseIndex(c.want)
		if err != nil || !back.Equal(c.p) {
			t.Errorf("ParseIndex(%q) = %v, err %v", c.want, back, err)
		}
	}
}

func TestParseIndexErrors(t *testing.T) {
	for _, s := range []string{"", "[", "1,2", "[a]", "[1,]", "[-1]", "[1]x"} {
		if p, err := ParseIndex(s); err == nil {
			t.Errorf("ParseIndex(%q) accepted as %v", s, p)
		}
	}
}

func TestIndexRoundTripQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		p := make(Index, len(raw))
		for i, b := range raw {
			p[i] = int(b)
		}
		back, err := ParseIndex(p.String())
		return err == nil && back.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIndexOps(t *testing.T) {
	p := Ix(1, 2)
	q := Ix(3)
	cat := p.Concat(q)
	if !cat.Equal(Ix(1, 2, 3)) {
		t.Errorf("Concat = %v", cat)
	}
	// Concat must not alias its operands.
	cat[0] = 99
	if p[0] != 1 {
		t.Error("Concat aliased operand storage")
	}
	if !Ix(1, 2, 3).HasPrefix(Ix(1, 2)) {
		t.Error("HasPrefix failed on true prefix")
	}
	if Ix(1, 2).HasPrefix(Ix(1, 2, 3)) {
		t.Error("HasPrefix accepted longer prefix")
	}
	if !Ix(1).HasPrefix(EmptyIndex) {
		t.Error("empty index must prefix everything")
	}
	if got := Ix(1, 2, 3).Truncate(2); !got.Equal(Ix(1, 2)) {
		t.Errorf("Truncate = %v", got)
	}
	if got := Ix(1).Truncate(5); !got.Equal(Ix(1)) {
		t.Errorf("Truncate beyond length = %v", got)
	}
	if got := Ix(1, 2, 3, 4).Slice(1, 3); !got.Equal(Ix(2, 3)) {
		t.Errorf("Slice = %v", got)
	}
	if got := Ix(1).Slice(3, 5); len(got) != 0 {
		t.Errorf("Slice out of bounds = %v", got)
	}
}

func TestIndexCompare(t *testing.T) {
	ordered := []Index{EmptyIndex, Ix(0), Ix(0, 0), Ix(0, 1), Ix(1), Ix(1, 0), Ix(2)}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueTypeAccessors(t *testing.T) {
	if s, ok := Str("hi").StringVal(); !ok || s != "hi" {
		t.Error("StringVal failed")
	}
	if _, ok := Int(1).StringVal(); ok {
		t.Error("StringVal on int succeeded")
	}
	if n, ok := Int(-4).IntVal(); !ok || n != -4 {
		t.Error("IntVal failed")
	}
	if f, ok := Float(2.5).FloatVal(); !ok || f != 2.5 {
		t.Error("FloatVal failed")
	}
	if b, ok := Bool(true).BoolVal(); !ok || !b {
		t.Error("BoolVal failed")
	}
	if Str("x").AtomString() != "x" || Int(3).AtomString() != "3" ||
		Bool(false).AtomString() != "false" || Float(0.5).AtomString() != "0.5" {
		t.Error("AtomString mismatch")
	}
	if List().AtomString() != "" {
		t.Error("AtomString on list should be empty")
	}
}

func TestReflectIndependence(t *testing.T) {
	// Clone must produce storage-independent indices.
	p := Ix(1, 2, 3)
	c := p.Clone()
	c[0] = 9
	if p[0] != 1 {
		t.Error("Clone aliased storage")
	}
	if !reflect.DeepEqual([]int(p), []int{1, 2, 3}) {
		t.Error("source index mutated")
	}
}

func TestJSONInterop(t *testing.T) {
	var decoded any
	if err := json.Unmarshal([]byte(`[["a","b"],[1,2.5,true]]`), &decoded); err != nil {
		t.Fatal(err)
	}
	v, err := FromJSON(decoded)
	if err != nil {
		t.Fatal(err)
	}
	want := List(Strs("a", "b"), List(Int(1), Float(2.5), Bool(true)))
	if !Equal(v, want) {
		t.Errorf("FromJSON = %s, want %s", v, want)
	}
	// Round trip through ToJSON.
	data, err := json.Marshal(ToJSON(v))
	if err != nil {
		t.Fatal(err)
	}
	var again any
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(again)
	if err != nil || !Equal(back, v) {
		t.Errorf("JSON round trip = %s (err %v)", back, err)
	}
	// Objects and nulls are rejected.
	if err := json.Unmarshal([]byte(`{"k":1}`), &decoded); err != nil {
		t.Fatal(err)
	}
	if _, err := FromJSON(decoded); err == nil {
		t.Error("JSON object accepted")
	}
	if _, err := FromJSON(nil); err == nil {
		t.Error("JSON null accepted")
	}
}

// TestEncodeQuoteFastPath pins the string fast path to strconv.Quote: the
// canonical encoding must be byte-identical whether or not the fast path
// applies.
func TestEncodeQuoteFastPath(t *testing.T) {
	cases := []string{
		"", "plain", "with space", "path:00042", "a_b-c.d:e",
		`has "quotes"`, `back\slash`, "tab\there", "newline\n", "nul\x00",
		"unicode é", "emoji \U0001F600", "del\x7f", "high\x80bytes",
		"mixed é then ascii", strings.Repeat("x", 300),
	}
	for _, s := range cases {
		got := Encode(Str(s))
		want := strconv.Quote(s)
		if got != want {
			t.Errorf("Encode(Str(%q)) = %s, want %s", s, got, want)
		}
		back, err := Decode(got)
		if err != nil {
			t.Errorf("Decode(%s): %v", got, err)
			continue
		}
		if v, ok := back.StringVal(); !ok || v != s {
			t.Errorf("round trip of %q gave %q", s, v)
		}
	}
}
