// Package value implements the nested-list data model of the Taverna
// dataflow language as described in §2.1 of the paper: a value is either an
// atom of a basic type (string, int, float, bool) or an arbitrarily nested
// list. Elements within a nested value are addressed by index paths
// (see Index). Values are immutable once constructed; all operations return
// new values and never mutate shared state.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// kind discriminates the variants of Value.
type kind uint8

const (
	kindList kind = iota
	kindString
	kindInt
	kindFloat
	kindBool
)

// Value is a nested list of atoms. The zero Value is the empty list.
// Values are cheap to copy; list elements are shared and must be treated as
// immutable.
type Value struct {
	k     kind
	s     string
	i     int64
	f     float64
	b     bool
	elems []Value
}

// Str returns an atomic string value.
func Str(s string) Value { return Value{k: kindString, s: s} }

// Int returns an atomic integer value.
func Int(i int64) Value { return Value{k: kindInt, i: i} }

// Float returns an atomic floating-point value.
func Float(f float64) Value { return Value{k: kindFloat, f: f} }

// Bool returns an atomic boolean value.
func Bool(b bool) Value { return Value{k: kindBool, b: b} }

// List returns a list value with the given elements. The elements slice is
// retained; callers must not mutate it afterwards.
func List(elems ...Value) Value {
	if elems == nil {
		elems = []Value{}
	}
	return Value{k: kindList, elems: elems}
}

// Strs builds a flat list of string atoms. It is a convenience constructor
// for the common case of service outputs such as lists of identifiers.
func Strs(ss ...string) Value {
	elems := make([]Value, len(ss))
	for i, s := range ss {
		elems[i] = Str(s)
	}
	return List(elems...)
}

// Ints builds a flat list of integer atoms.
func Ints(is ...int64) Value {
	elems := make([]Value, len(is))
	for i, v := range is {
		elems[i] = Int(v)
	}
	return List(elems...)
}

// Handle is an opaque identity token for a list value: two values with
// equal valid handles share the same immutable backing array and are
// therefore structurally equal. Handles are comparable and usable as map
// keys; holding one keeps the backing array alive. They let consumers that
// see the same shared list many times (e.g. the provenance writer, which
// encodes every binding's value) cache per-value derived data without
// re-traversing the list.
type Handle struct {
	first *Value
	n     int
}

// Valid reports whether h identifies a value. Atoms and empty lists have no
// backing array and yield the zero, invalid handle.
func (h Handle) Valid() bool { return h.first != nil }

// Handle returns the identity token of a list's backing array, or the
// invalid handle for atoms and empty lists.
func (v Value) Handle() Handle {
	if v.k != kindList || len(v.elems) == 0 {
		return Handle{}
	}
	return Handle{first: &v.elems[0], n: len(v.elems)}
}

// IsList reports whether v is a list (as opposed to an atom).
func (v Value) IsList() bool { return v.k == kindList }

// IsAtom reports whether v is an atomic value.
func (v Value) IsAtom() bool { return v.k != kindList }

// Len returns the number of elements of a list, and 0 for an atom.
func (v Value) Len() int { return len(v.elems) }

// Elems returns the elements of a list (nil for an atom). The returned slice
// must not be mutated.
func (v Value) Elems() []Value { return v.elems }

// AtomString returns the string form of an atomic value. For a list it
// returns the empty string; use String for a full rendering.
func (v Value) AtomString() string {
	switch v.k {
	case kindString:
		return v.s
	case kindInt:
		return strconv.FormatInt(v.i, 10)
	case kindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case kindBool:
		return strconv.FormatBool(v.b)
	default:
		return ""
	}
}

// StringVal returns the payload of a string atom and whether v is one.
func (v Value) StringVal() (string, bool) { return v.s, v.k == kindString }

// IntVal returns the payload of an integer atom and whether v is one.
func (v Value) IntVal() (int64, bool) { return v.i, v.k == kindInt }

// FloatVal returns the payload of a float atom and whether v is one.
func (v Value) FloatVal() (float64, bool) { return v.f, v.k == kindFloat }

// BoolVal returns the payload of a boolean atom and whether v is one.
func (v Value) BoolVal() (bool, bool) { return v.b, v.k == kindBool }

// Depth returns the nesting depth of v: 0 for atoms, and 1 plus the depth of
// the first element for lists. The model assumes all elements of a list are
// at the same depth (§2.1); an empty list has depth 1. Use CheckUniform to
// validate the uniform-depth assumption.
func (v Value) Depth() int {
	d := 0
	for v.k == kindList {
		d++
		if len(v.elems) == 0 {
			return d
		}
		v = v.elems[0]
	}
	return d
}

// CheckUniform verifies the model assumption that all elements of every list
// in v sit at the same depth. It returns a descriptive error naming the
// offending index path if the assumption is violated.
func (v Value) CheckUniform() error {
	_, err := checkUniform(v, nil)
	return err
}

func checkUniform(v Value, at Index) (int, error) {
	if v.k != kindList {
		return 0, nil
	}
	if len(v.elems) == 0 {
		return 1, nil
	}
	first := -1
	for i, e := range v.elems {
		d, err := checkUniform(e, append(at, i))
		if err != nil {
			return 0, err
		}
		if first == -1 {
			first = d
		} else if d != first {
			return 0, fmt.Errorf("value: non-uniform depth at %s[%d]: element depth %d, expected %d",
				Index(at), i, d, first)
		}
	}
	return first + 1, nil
}

// At returns the element of v addressed by the index path p. The empty index
// addresses v itself. It returns an error if any index step is out of range
// or descends into an atom.
func (v Value) At(p Index) (Value, error) {
	cur := v
	for step, i := range p {
		if cur.k != kindList {
			return Value{}, fmt.Errorf("value: index %s descends into atom at step %d", p, step)
		}
		if i < 0 || i >= len(cur.elems) {
			return Value{}, fmt.Errorf("value: index %s out of range at step %d (len %d)", p, step, len(cur.elems))
		}
		cur = cur.elems[i]
	}
	return cur, nil
}

// MustAt is like At but panics on error. It is intended for indices already
// validated by construction (e.g. produced by Indices).
func (v Value) MustAt(p Index) Value {
	r, err := v.At(p)
	if err != nil {
		panic(err)
	}
	return r
}

// Indices enumerates, in lexicographic order, all index paths of exactly the
// given length that are valid in v. Length 0 yields the single empty index.
// Enumerating below an atom yields nothing (the value is too shallow).
func (v Value) Indices(length int) []Index {
	var out []Index
	var walk func(cur Value, prefix Index, remaining int)
	walk = func(cur Value, prefix Index, remaining int) {
		if remaining == 0 {
			p := make(Index, len(prefix))
			copy(p, prefix)
			out = append(out, p)
			return
		}
		if cur.k != kindList {
			return
		}
		for i, e := range cur.elems {
			walk(e, append(prefix, i), remaining-1)
		}
	}
	walk(v, nil, length)
	return out
}

// Wrap nests v inside n singleton lists. Wrap(v, 0) returns v unchanged.
// This implements the treatment of negative depth mismatches in §3.2: a
// value shallower than the declared port depth is promoted by building a
// d-deep singleton.
func Wrap(v Value, n int) Value {
	for ; n > 0; n-- {
		v = List(v)
	}
	return v
}

// Flatten removes one level of nesting from a list of lists, concatenating
// the sublists in order. It returns an error if v is not a list of lists.
func Flatten(v Value) (Value, error) {
	if v.k != kindList {
		return Value{}, fmt.Errorf("value: flatten of atom")
	}
	var out []Value
	for i, e := range v.elems {
		if e.k != kindList {
			return Value{}, fmt.Errorf("value: flatten: element %d is not a list", i)
		}
		out = append(out, e.elems...)
	}
	return List(out...), nil
}

// Equal reports deep structural equality of two values.
func Equal(a, b Value) bool {
	if a.k != b.k {
		return false
	}
	switch a.k {
	case kindList:
		if len(a.elems) != len(b.elems) {
			return false
		}
		for i := range a.elems {
			if !Equal(a.elems[i], b.elems[i]) {
				return false
			}
		}
		return true
	case kindString:
		return a.s == b.s
	case kindInt:
		return a.i == b.i
	case kindFloat:
		return a.f == b.f
	case kindBool:
		return a.b == b.b
	}
	return false
}

// AtomCount returns the total number of atoms contained in v.
func (v Value) AtomCount() int {
	if v.k != kindList {
		return 1
	}
	n := 0
	for _, e := range v.elems {
		n += e.AtomCount()
	}
	return n
}

// String renders v in the canonical textual encoding (see Encode).
func (v Value) String() string {
	var sb strings.Builder
	encode(&sb, v)
	return sb.String()
}

// FromJSON converts a decoded encoding/json value (the result of
// json.Unmarshal into any) to a Value: JSON arrays become lists, strings,
// booleans and numbers become atoms (numbers become Int when integral,
// Float otherwise). JSON objects and nulls have no counterpart in the model
// and are rejected.
func FromJSON(v any) (Value, error) {
	switch x := v.(type) {
	case string:
		return Str(x), nil
	case bool:
		return Bool(x), nil
	case float64:
		if x == float64(int64(x)) {
			return Int(int64(x)), nil
		}
		return Float(x), nil
	case []any:
		elems := make([]Value, len(x))
		for i, e := range x {
			ev, err := FromJSON(e)
			if err != nil {
				return Value{}, err
			}
			elems[i] = ev
		}
		return List(elems...), nil
	default:
		return Value{}, fmt.Errorf("value: cannot convert %T to a workflow value", v)
	}
}

// ToJSON converts a value to the encoding/json representation (lists become
// []any, atoms their native Go types).
func ToJSON(v Value) any {
	switch v.k {
	case kindList:
		out := make([]any, len(v.elems))
		for i, e := range v.elems {
			out[i] = ToJSON(e)
		}
		return out
	case kindString:
		return v.s
	case kindInt:
		return v.i
	case kindFloat:
		return v.f
	case kindBool:
		return v.b
	}
	return nil
}
