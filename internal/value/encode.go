package value

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the canonical textual encoding of values used by the
// provenance store (values are persisted as a single encoded column, exactly
// as the paper's relational implementation stores opaque port values).
//
// Grammar:
//
//	value  = list | string | int | float | bool
//	list   = "[" [ value { "," value } ] "]"
//	string = Go-quoted string literal
//	int    = [ "-" ] digits
//	float  = decimal containing "." or exponent (always printed with one)
//	bool   = "true" | "false"
//
// The encoding is canonical: Encode(Decode(s)) == s for every valid s, and
// Decode(Encode(v)) == v for every value v.

// Encode renders v in the canonical textual encoding.
func Encode(v Value) string { return v.String() }

func encode(sb *strings.Builder, v Value) {
	switch v.k {
	case kindList:
		sb.WriteByte('[')
		for i, e := range v.elems {
			if i > 0 {
				sb.WriteByte(',')
			}
			encode(sb, e)
		}
		sb.WriteByte(']')
	case kindString:
		if quoteSafe(v.s) {
			// Fast path: strconv.Quote escapes nothing in a string of
			// printable ASCII without '"' or '\\', so the quoted form is the
			// string itself — skip Quote's per-rune IsPrint scan, which
			// dominates bulk trace ingestion otherwise.
			sb.WriteByte('"')
			sb.WriteString(v.s)
			sb.WriteByte('"')
		} else {
			sb.WriteString(strconv.Quote(v.s))
		}
	case kindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case kindFloat:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		// Guarantee the float is syntactically distinguishable from an int.
		if !strings.ContainsAny(s, ".eE") || strings.HasPrefix(s, "Inf") ||
			strings.HasPrefix(s, "-Inf") || s == "NaN" {
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
		}
		sb.WriteString(s)
	case kindBool:
		sb.WriteString(strconv.FormatBool(v.b))
	}
}

// quoteSafe reports whether strconv.Quote(s) == `"` + s + `"`: every byte is
// printable ASCII and needs no escaping.
func quoteSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c > 0x7e || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// Decode parses the canonical textual encoding back into a value.
func Decode(s string) (Value, error) {
	p := &decoder{src: s}
	v, err := p.value()
	if err != nil {
		return Value{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Value{}, fmt.Errorf("value: trailing garbage at offset %d in %q", p.pos, s)
	}
	return v, nil
}

// MustDecode is like Decode but panics on error; for use with literals.
func MustDecode(s string) Value {
	v, err := Decode(s)
	if err != nil {
		panic(err)
	}
	return v
}

type decoder struct {
	src string
	pos int
}

func (p *decoder) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *decoder) value() (Value, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return Value{}, fmt.Errorf("value: unexpected end of input")
	}
	switch c := p.src[p.pos]; {
	case c == '[':
		return p.list()
	case c == '"':
		return p.quoted()
	case c == 't' || c == 'f':
		return p.boolean()
	case c == '-' || (c >= '0' && c <= '9'):
		return p.number()
	default:
		return Value{}, fmt.Errorf("value: unexpected character %q at offset %d", c, p.pos)
	}
}

func (p *decoder) list() (Value, error) {
	p.pos++ // consume '['
	var elems []Value
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ']' {
		p.pos++
		return List(), nil
	}
	for {
		e, err := p.value()
		if err != nil {
			return Value{}, err
		}
		elems = append(elems, e)
		p.skipSpace()
		if p.pos >= len(p.src) {
			return Value{}, fmt.Errorf("value: unterminated list")
		}
		switch p.src[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return List(elems...), nil
		default:
			return Value{}, fmt.Errorf("value: expected ',' or ']' at offset %d", p.pos)
		}
	}
}

func (p *decoder) quoted() (Value, error) {
	// Find the end of the Go-quoted literal, honouring escapes.
	start := p.pos
	i := p.pos + 1
	for i < len(p.src) {
		switch p.src[i] {
		case '\\':
			i += 2
		case '"':
			i++
			s, err := strconv.Unquote(p.src[start:i])
			if err != nil {
				return Value{}, fmt.Errorf("value: bad string literal at offset %d: %v", start, err)
			}
			p.pos = i
			return Str(s), nil
		default:
			i++
		}
	}
	return Value{}, fmt.Errorf("value: unterminated string literal at offset %d", start)
}

func (p *decoder) boolean() (Value, error) {
	if strings.HasPrefix(p.src[p.pos:], "true") {
		p.pos += 4
		return Bool(true), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "false") {
		p.pos += 5
		return Bool(false), nil
	}
	return Value{}, fmt.Errorf("value: bad literal at offset %d", p.pos)
}

func (p *decoder) number() (Value, error) {
	start := p.pos
	i := p.pos
	if i < len(p.src) && p.src[i] == '-' {
		i++
	}
	isFloat := false
	for i < len(p.src) {
		c := p.src[i]
		switch {
		case c >= '0' && c <= '9':
			i++
		case c == '.' || c == 'e' || c == 'E':
			isFloat = true
			i++
		case c == '+' || c == '-':
			// Sign inside a number is only valid right after an exponent.
			if i > start && (p.src[i-1] == 'e' || p.src[i-1] == 'E') {
				i++
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	lit := p.src[start:i]
	p.pos = i
	if isFloat {
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad float literal %q: %v", lit, err)
		}
		return Float(f), nil
	}
	n, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("value: bad int literal %q: %v", lit, err)
	}
	return Int(n), nil
}
