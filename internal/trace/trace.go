// Package trace implements the provenance trace model of §2.3 of the paper.
// A trace is the collection of the observable events of one workflow run:
// xform events (one per processor activation, mapping a tuple of fine-grained
// input bindings to the corresponding output bindings) and xfer events (the
// transfer of a value along an arc). Bindings carry list indices, so traces
// are fine-grained whenever the iteration semantics provides element-level
// dependencies.
//
// Processor names in a trace are path-qualified: a processor Q inside a
// nested dataflow bound to composite processor C appears as "C/Q". Indices
// of events inside a nested dataflow are prefixed with the activation index
// of the composite (the context), so a single index space addresses the
// whole hierarchy uniformly.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// WorkflowProc is the processor name under which the (root) workflow's own
// input and output ports appear in bindings.
const WorkflowProc = ""

// Binding is ⟨P:X[p], v⟩: the element of the value v bound to port X of
// processor P addressed by index p ([] denotes the whole value). Value holds
// the whole port value, not the addressed element; the element is recovered
// with Element.
type Binding struct {
	Proc  string
	Port  string
	Index value.Index
	Value value.Value
	// Ctx is the length of the context prefix of Index contributed by
	// enclosing nested-dataflow activations; only Index[Ctx:] addresses into
	// Value. It is 0 for all bindings outside nested dataflows.
	Ctx int
}

// Element returns the element of the binding's value addressed by its index
// (net of the nested-dataflow context prefix).
func (b Binding) Element() (value.Value, error) {
	local := b.Index
	if b.Ctx > 0 {
		local = local.Slice(b.Ctx, len(local))
	}
	return b.Value.At(local)
}

// Key identifies the binding node in the provenance graph (§2.4): bindings
// with the same processor, port and index are the same node.
func (b Binding) Key() BindingKey {
	return BindingKey{Proc: b.Proc, Port: b.Port, Index: b.Index.String()}
}

func (b Binding) String() string {
	proc := b.Proc
	if proc == WorkflowProc {
		proc = "workflow"
	}
	return fmt.Sprintf("<%s:%s%s>", proc, b.Port, b.Index)
}

// BindingKey is the comparable node identity of a binding.
type BindingKey struct {
	Proc  string
	Port  string
	Index string
}

func (k BindingKey) String() string {
	proc := k.Proc
	if proc == WorkflowProc {
		proc = "workflow"
	}
	return fmt.Sprintf("%s:%s%s", proc, k.Port, k.Index)
}

// XformEvent records one elementary execution (activation) of a processor:
// InB_P → OutB_P in the paper's shorthand (relation (1), §2.3).
type XformEvent struct {
	Proc    string
	Inputs  []Binding
	Outputs []Binding
}

func (e XformEvent) String() string {
	ins := make([]string, len(e.Inputs))
	for i, b := range e.Inputs {
		ins[i] = b.String()
	}
	outs := make([]string, len(e.Outputs))
	for i, b := range e.Outputs {
		outs[i] = b.String()
	}
	return strings.Join(ins, ", ") + " -> " + strings.Join(outs, ", ")
}

// XferEvent records the transfer of a value along an arc (relation (2),
// §2.3). Values travel arcs unchanged, so fine-grained indices propagate
// across xfer events verbatim.
type XferEvent struct {
	From Binding
	To   Binding
}

func (e XferEvent) String() string { return e.From.String() + " -> " + e.To.String() }

// Trace is T_{E_D}: all observable events of one run of a dataflow.
type Trace struct {
	RunID    string
	Workflow string
	Xforms   []XformEvent
	Xfers    []XferEvent
}

// Collector receives provenance events as the engine produces them.
// Implementations include the in-memory Trace and the relational store.
type Collector interface {
	Xform(e XformEvent) error
	Xfer(e XferEvent) error
}

// Xform appends an xform event; Trace implements Collector.
func (t *Trace) Xform(e XformEvent) error {
	t.Xforms = append(t.Xforms, e)
	return nil
}

// Xfer appends an xfer event.
func (t *Trace) Xfer(e XferEvent) error {
	t.Xfers = append(t.Xfers, e)
	return nil
}

// NumEvents returns the total number of recorded events.
func (t *Trace) NumEvents() int { return len(t.Xforms) + len(t.Xfers) }

// NumRecords returns the number of rows the trace occupies in the relational
// encoding: one per xform input binding, one per xform output binding, and
// one per xfer event (this is the record count reported in Table 1).
func (t *Trace) NumRecords() int {
	n := len(t.Xfers)
	for _, e := range t.Xforms {
		n += len(e.Inputs) + len(e.Outputs)
	}
	return n
}

// MultiCollector fans events out to several collectors.
type MultiCollector []Collector

// Xform forwards the event to every collector, stopping at the first error.
func (m MultiCollector) Xform(e XformEvent) error {
	for _, c := range m {
		if err := c.Xform(e); err != nil {
			return err
		}
	}
	return nil
}

// Xfer forwards the event to every collector, stopping at the first error.
func (m MultiCollector) Xfer(e XferEvent) error {
	for _, c := range m {
		if err := c.Xfer(e); err != nil {
			return err
		}
	}
	return nil
}

// Discard is a Collector that drops all events (for pure-execution runs).
var Discard Collector = discard{}

type discard struct{}

func (discard) Xform(XformEvent) error { return nil }
func (discard) Xfer(XferEvent) error   { return nil }

// SortedXforms returns the xform events sorted by (proc, first output port,
// first output index); useful for deterministic comparison of traces
// produced by concurrent executions.
func (t *Trace) SortedXforms() []XformEvent {
	out := append([]XformEvent(nil), t.Xforms...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		ak, bk := eventOutputKey(a), eventOutputKey(b)
		return ak < bk
	})
	return out
}

// SortedXfers returns the xfer events in a deterministic order.
func (t *Trace) SortedXfers() []XferEvent {
	out := append([]XferEvent(nil), t.Xfers...)
	sort.Slice(out, func(i, j int) bool {
		return out[i].String() < out[j].String()
	})
	return out
}

func eventOutputKey(e XformEvent) string {
	if len(e.Outputs) == 0 {
		return ""
	}
	b := e.Outputs[0]
	// Render the index with fixed-width components so string order matches
	// numeric order for the sizes we deal with.
	parts := make([]string, len(b.Index))
	for i, n := range b.Index {
		parts[i] = fmt.Sprintf("%08d", n)
	}
	return b.Port + "/" + strings.Join(parts, ",")
}
