package trace

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/value"
)

func eventFixture() *Trace {
	b := func(proc, port string, idx value.Index, v value.Value) Binding {
		return Binding{Proc: proc, Port: port, Index: idx, Value: v}
	}
	t := &Trace{RunID: "r1", Workflow: "wf"}
	t.Xform(XformEvent{
		Proc:    "P",
		Inputs:  []Binding{b("P", "X", value.Ix(0), value.Str("a")), b("P", "X2", value.Ix(1, 2), value.Strs("x", "y"))},
		Outputs: []Binding{b("P", "Y", value.Ix(0), value.Str("A"))},
	})
	t.Xfer(XferEvent{
		From: b("P", "Y", value.Ix(0), value.Str("A")),
		To:   Binding{Proc: "Q", Port: "X", Index: value.Ix(0), Ctx: 1, Value: value.Str("A")},
	})
	return t
}

func TestEventsRendersFeed(t *testing.T) {
	tr := eventFixture()
	evs := tr.Events()
	if len(evs) != tr.NumEvents()+2 {
		t.Fatalf("Events() = %d events, want %d", len(evs), tr.NumEvents()+2)
	}
	if evs[0].Kind != EventRunStart || evs[0].Workflow != "wf" {
		t.Fatalf("first event = %+v, want run_start with workflow", evs[0])
	}
	if last := evs[len(evs)-1]; last.Kind != EventRunEnd {
		t.Fatalf("last event = %+v, want run_end", last)
	}
	for i, ev := range evs {
		if ev.RunID != "r1" {
			t.Fatalf("event %d run_id = %q", i, ev.RunID)
		}
		if ev.Seq != int64(i) {
			t.Fatalf("event %d seq = %d, want consecutive", i, ev.Seq)
		}
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	for i, ev := range eventFixture().Events() {
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("event %d: marshal: %v", i, err)
		}
		var back Event
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("event %d: unmarshal %s: %v", i, data, err)
		}
		if back.Kind != ev.Kind || back.RunID != ev.RunID || back.Seq != ev.Seq || back.Workflow != ev.Workflow {
			t.Fatalf("event %d header round-trip: %+v vs %+v", i, back, ev)
		}
		switch {
		case ev.Xform != nil:
			if back.Xform == nil || !reflect.DeepEqual(*back.Xform, *ev.Xform) {
				t.Fatalf("event %d xform round-trip:\n got %+v\nwant %+v", i, back.Xform, ev.Xform)
			}
		case ev.Xfer != nil:
			if back.Xfer == nil || !reflect.DeepEqual(*back.Xfer, *ev.Xfer) {
				t.Fatalf("event %d xfer round-trip:\n got %+v\nwant %+v", i, back.Xfer, ev.Xfer)
			}
		}
	}
}

func TestBindingJSONRejectsBadFields(t *testing.T) {
	var b Binding
	if err := json.Unmarshal([]byte(`{"proc":"P","port":"X","idx":"not an index","val":"s:a"}`), &b); err == nil {
		t.Error("malformed index accepted")
	}
	if err := json.Unmarshal([]byte(`{"proc":"P","port":"X","idx":"[0]","val":"???"}`), &b); err == nil {
		t.Error("malformed value accepted")
	}
}
