package trace

import (
	"encoding/json"
	"fmt"

	"repro/internal/value"
)

// This file defines the streaming event feed: the wire form in which a
// workflow engine ships provenance to a store while the run is still
// executing, instead of handing over a complete Trace afterwards. A feed is
// a sequence of Events per run — run_start, then the run's xform and xfer
// events in engine order, then run_end — each stamped with a per-run
// sequence number so the consumer can detect reordering and loss.
//
// Events marshal to JSON (one object per line in the NDJSON transport used
// by provd's ingest endpoint). Bindings travel in the same canonical textual
// encodings the relational store persists: value.Index strings for indices
// and value.Encode payloads for port values, so a feed round-trips through
// JSON without loss.

// EventKind discriminates the event types of a streamed provenance feed.
type EventKind string

const (
	// EventRunStart opens a run: it names the run and its workflow, and must
	// precede every other event of the run.
	EventRunStart EventKind = "run_start"
	// EventXform carries one xform (processor activation) event.
	EventXform EventKind = "xform"
	// EventXfer carries one xfer (value transfer) event.
	EventXfer EventKind = "xfer"
	// EventRunEnd closes a run; events for the run arriving after it are
	// rejected.
	EventRunEnd EventKind = "run_end"
)

// Event is one element of a streamed provenance feed.
type Event struct {
	Kind  EventKind `json:"kind"`
	RunID string    `json:"run_id"`
	// Workflow names the run's workflow; run_start only.
	Workflow string `json:"workflow,omitempty"`
	// Seq orders the events of one run: every event must carry a sequence
	// number strictly greater than the previous event of its run.
	Seq   int64       `json:"seq"`
	Xform *XformEvent `json:"xform,omitempty"`
	Xfer  *XferEvent  `json:"xfer,omitempty"`
}

// wireBinding is the JSON form of a Binding: canonical index and payload
// strings rather than structured values.
type wireBinding struct {
	Proc  string `json:"proc"`
	Port  string `json:"port"`
	Index string `json:"idx"`
	Ctx   int    `json:"ctx,omitempty"`
	Value string `json:"val"`
}

// MarshalJSON implements json.Marshaler using the canonical textual
// encodings for the index and the port value.
func (b Binding) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireBinding{
		Proc:  b.Proc,
		Port:  b.Port,
		Index: b.Index.String(),
		Ctx:   b.Ctx,
		Value: value.Encode(b.Value),
	})
}

// UnmarshalJSON implements json.Unmarshaler, the inverse of MarshalJSON.
func (b *Binding) UnmarshalJSON(data []byte) error {
	var w wireBinding
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	idx, err := value.ParseIndex(w.Index)
	if err != nil {
		return fmt.Errorf("trace: binding index: %w", err)
	}
	v, err := value.Decode(w.Value)
	if err != nil {
		return fmt.Errorf("trace: binding value: %w", err)
	}
	*b = Binding{Proc: w.Proc, Port: w.Port, Index: idx, Ctx: w.Ctx, Value: v}
	return nil
}

// Events renders a complete trace as a streamed feed: run_start, the xform
// and xfer events in recorded order, run_end, with consecutive sequence
// numbers. It is the bridge from batch-recorded traces to the streaming
// ingest path (and what the retry path replays dead letters through).
func (t *Trace) Events() []Event {
	out := make([]Event, 0, t.NumEvents()+2)
	seq := int64(0)
	next := func() int64 { seq++; return seq - 1 }
	out = append(out, Event{Kind: EventRunStart, RunID: t.RunID, Workflow: t.Workflow, Seq: next()})
	for i := range t.Xforms {
		out = append(out, Event{Kind: EventXform, RunID: t.RunID, Seq: next(), Xform: &t.Xforms[i]})
	}
	for i := range t.Xfers {
		out = append(out, Event{Kind: EventXfer, RunID: t.RunID, Seq: next(), Xfer: &t.Xfers[i]})
	}
	return append(out, Event{Kind: EventRunEnd, RunID: t.RunID, Seq: next()})
}
